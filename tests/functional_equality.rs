//! Whole-zoo functional bit-equality: every table network, executed by
//! the tiled-GEMM stack and by the accelerator-schedule executors (WS
//! and OS tilings), must reproduce the naive reference operators
//! **bit-for-bit**, layer by layer. This is the tier-1 promotion of the
//! `codesign verify-functional` contract: the reference loop nest is the
//! executable spec, and every faster path is an exact refinement of it.
//!
//! Release builds cover all six table networks; debug builds — where one
//! naive reference pass alone takes minutes — keep the two lightest so
//! plain `cargo test` still exercises every executor end to end.

use codesign::arch::{AcceleratorConfig, Dataflow, DataflowPolicy};
use codesign::dnn::{zoo, Network};
use codesign::sim::{run_network_on_accelerator_jobs, SimOptions};
use codesign::tensor::{
    run_network_reference, run_network_with, NetworkActivations, Tensor, WeightStore,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The zoo slice under test: all six table networks in release, the two
/// lightest in debug.
fn networks() -> Vec<Network> {
    let mut nets = zoo::table_networks();
    if cfg!(debug_assertions) {
        nets.sort_by_key(Network::total_macs);
        nets.truncate(2);
    }
    nets
}

/// Seeded case matching `codesign verify-functional` and the committed
/// `functional_bench` headline: weight range 8 at 40% sparsity, 8-bit-ish
/// input.
fn case(net: &Network) -> (Tensor, WeightStore) {
    let mut rng = StdRng::seed_from_u64(2018);
    let weights = WeightStore::random(net, 8, 0.4, &mut rng);
    let image = Tensor::random(net.input(), 64, &mut rng);
    (image, weights)
}

/// Asserts per-layer bit-equality and names the first divergent layer.
fn assert_layers_identical(
    net: &Network,
    what: &str,
    want: &NetworkActivations,
    got: &NetworkActivations,
) {
    for (name, tensor) in want.iter() {
        match got.get(name) {
            Some(other) if other == tensor => {}
            Some(_) => panic!("{}: {what} diverges from the reference at `{name}`", net.name()),
            None => panic!("{}: {what} produced no activation for `{name}`", net.name()),
        }
    }
}

#[test]
fn gemm_executor_matches_reference_on_zoo() {
    for net in networks() {
        let (image, weights) = case(&net);
        let reference = run_network_reference(&net, &image, &weights).unwrap();
        let gemm = run_network_with(&net, &image, &weights, 1).unwrap();
        assert_layers_identical(&net, "GEMM executor", &reference, &gemm);
    }
}

#[test]
fn accelerator_schedules_match_reference_on_zoo() {
    let cfg = AcceleratorConfig::paper_default();
    let opts = SimOptions::paper_default();
    for net in networks() {
        let (image, weights) = case(&net);
        let reference = run_network_reference(&net, &image, &weights).unwrap();
        for flow in [Dataflow::WeightStationary, Dataflow::OutputStationary] {
            let acts = run_network_on_accelerator_jobs(
                &net,
                &image,
                &weights,
                &cfg,
                DataflowPolicy::Fixed(flow),
                opts,
                1,
            )
            .unwrap();
            assert_layers_identical(&net, flow.tag(), &reference, &acts);
        }
    }
}

#[test]
fn weight_store_seeding_is_deterministic_and_jobs_invariant() {
    let net = zoo::squeezenet_v1_1();

    // Same seed + sparsity: byte-identical stores, independent of any
    // worker-pool configuration (generation is inherently serial).
    let mut a_rng = StdRng::seed_from_u64(2018);
    let mut b_rng = StdRng::seed_from_u64(2018);
    let a = WeightStore::random(&net, 8, 0.4, &mut a_rng);
    let b = WeightStore::random(&net, 8, 0.4, &mut b_rng);
    assert_eq!(a.len(), b.len());
    for layer in net.layers() {
        match (a.get(&layer.name), b.get(&layer.name)) {
            (Some(fa), Some(fb)) => assert_eq!(fa, fb, "weights diverge at `{}`", layer.name),
            (None, None) => {}
            _ => panic!("stores disagree on which layers carry weights: `{}`", layer.name),
        }
    }
    // A different seed must actually change the weights (the seed is live).
    let mut c_rng = StdRng::seed_from_u64(2019);
    let c = WeightStore::random(&net, 8, 0.4, &mut c_rng);
    assert!(
        net.layers().iter().any(|l| a.get(&l.name) != c.get(&l.name)),
        "reseeding produced byte-identical weights"
    );

    // And execution over those weights is --jobs invariant bit-for-bit.
    let mut rng = StdRng::seed_from_u64(2018);
    let weights = WeightStore::random(&net, 8, 0.4, &mut rng);
    let image = Tensor::random(net.input(), 64, &mut rng);
    let serial = run_network_with(&net, &image, &weights, 1).unwrap();
    for jobs in [2, 4, 8] {
        let parallel = run_network_with(&net, &image, &weights, jobs).unwrap();
        assert_layers_identical(&net, "parallel GEMM executor", &serial, &parallel);
    }
}
