//! Cross-crate integration: every zoo network simulated on every
//! architecture, with the structural invariants the whole reproduction
//! rests on.

use codesign::arch::{AcceleratorConfig, Dataflow, DataflowPolicy, EnergyModel};
use codesign::dnn::zoo;
use codesign::sim::{simulate_network, NetworkPerf, SimOptions};

fn all_networks() -> Vec<codesign::dnn::Network> {
    let mut nets = zoo::table_networks();
    nets.extend(zoo::squeezenext_variants());
    nets.extend(zoo::mobilenet_family());
    nets.extend(zoo::squeezenext_family());
    nets
}

fn policies() -> [DataflowPolicy; 3] {
    [
        DataflowPolicy::PerLayer,
        DataflowPolicy::Fixed(Dataflow::WeightStationary),
        DataflowPolicy::Fixed(Dataflow::OutputStationary),
    ]
}

#[test]
fn every_network_simulates_on_every_architecture() {
    let cfg = AcceleratorConfig::paper_default();
    let opts = SimOptions::paper_default();
    let energy = EnergyModel::default();
    for net in all_networks() {
        for policy in policies() {
            let perf = simulate_network(&net, &cfg, policy, opts);
            assert!(perf.total_cycles() > 0, "{} on {policy}", net.name());
            assert!(perf.total_energy(&energy) > 0.0, "{} on {policy}", net.name());
            assert_eq!(perf.layers.len(), net.layers().len());
            for layer in &perf.layers {
                assert!(
                    (0.0..=1.0).contains(&layer.utilization),
                    "{}/{}: utilization {}",
                    net.name(),
                    layer.name,
                    layer.utilization
                );
                assert!(layer.total_cycles >= layer.compute.cycles().min(layer.dram_cycles));
            }
        }
    }
}

#[test]
fn hybrid_is_min_of_fixed_architectures_per_layer() {
    let cfg = AcceleratorConfig::paper_default();
    let opts = SimOptions::paper_default();
    for net in all_networks() {
        let runs: Vec<NetworkPerf> =
            policies().iter().map(|p| simulate_network(&net, &cfg, *p, opts)).collect();
        let (hybrid, ws, os) = (&runs[0], &runs[1], &runs[2]);
        for ((h, w), o) in hybrid.layers.iter().zip(&ws.layers).zip(&os.layers) {
            assert_eq!(h.total_cycles, w.total_cycles.min(o.total_cycles), "{}", h.name);
        }
    }
}

#[test]
fn ws_executes_every_algorithmic_mac() {
    // The WS datapath cannot skip zeros: executed MACs must equal the
    // model's dense MAC count exactly (depthwise layers excepted — the
    // naive dense mapping wastes cycles, not MACs).
    let cfg = AcceleratorConfig::paper_default();
    let opts = SimOptions::paper_default();
    for net in all_networks() {
        let perf =
            simulate_network(&net, &cfg, DataflowPolicy::Fixed(Dataflow::WeightStationary), opts);
        assert_eq!(perf.total_macs(), net.total_macs(), "{}", net.name());
    }
}

#[test]
fn os_sparsity_skips_about_forty_percent_of_conv_macs() {
    let cfg = AcceleratorConfig::paper_default();
    let opts = SimOptions::paper_default();
    // Pick a network without FC dominance (OS FC does not skip zeros).
    let net = zoo::squeezenet_v1_0();
    let perf =
        simulate_network(&net, &cfg, DataflowPolicy::Fixed(Dataflow::OutputStationary), opts);
    let ratio = perf.total_macs() as f64 / net.total_macs() as f64;
    assert!((ratio - 0.6).abs() < 0.02, "executed/dense = {ratio}");
}

#[test]
fn array_size_sweep_is_monotone_for_squeezenet() {
    // Within the paper's 8..=32 range, growing the array never slows the
    // hybrid architecture down.
    let opts = SimOptions::paper_default();
    let net = zoo::squeezenet_v1_0();
    let mut last = u64::MAX;
    for n in [8, 16, 32] {
        let cfg = AcceleratorConfig::builder().array_size(n).build().unwrap();
        let cycles = simulate_network(&net, &cfg, DataflowPolicy::PerLayer, opts).total_cycles();
        assert!(cycles <= last, "array {n} got slower: {cycles} > {last}");
        last = cycles;
    }
}

#[test]
fn disabling_double_buffering_never_helps() {
    let opts = SimOptions::paper_default();
    let with_db = AcceleratorConfig::paper_default();
    let without_db = AcceleratorConfig::builder()
        .double_buffering(false)
        .global_buffer_bytes(64 * 1024) // same working half as the default
        .build()
        .unwrap();
    for net in zoo::table_networks() {
        let a = simulate_network(&net, &with_db, DataflowPolicy::PerLayer, opts).total_cycles();
        let b = simulate_network(&net, &without_db, DataflowPolicy::PerLayer, opts).total_cycles();
        assert!(a <= b, "{}: {a} vs {b}", net.name());
    }
}

#[test]
fn energy_model_scaling_is_linear() {
    let cfg = AcceleratorConfig::paper_default();
    let opts = SimOptions::paper_default();
    let net = zoo::tiny_darknet();
    let perf = simulate_network(&net, &cfg, DataflowPolicy::PerLayer, opts);
    let base = EnergyModel::default();
    let doubled = EnergyModel {
        mac: 2.0 * base.mac,
        register_file: 2.0 * base.register_file,
        inter_pe: 2.0 * base.inter_pe,
        global_buffer: 2.0 * base.global_buffer,
        dram: 2.0 * base.dram,
    };
    let e1 = perf.total_energy(&base);
    let e2 = perf.total_energy(&doubled);
    assert!((e2 / e1 - 2.0).abs() < 1e-9);
}

#[test]
fn accelerator_execution_is_bit_exact_end_to_end() {
    // The schedules the performance models count cycles for must compute
    // the same numbers as the reference executor — whole networks, both
    // fixed dataflows and the hybrid schedule.
    use codesign::dnn::{NetworkBuilder, Shape};
    use codesign::sim::run_network_on_accelerator;
    use codesign::tensor::{run_network, Tensor, WeightStore};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let net = NetworkBuilder::new("mini", Shape::new(3, 40, 40))
        .conv("conv1", 16, 5, 2, 0)
        .max_pool("pool1", 3, 2)
        .fire("fire2", 8, 16, 16)
        .depthwise_conv("dw3", 3, 1, 1)
        .fire("fire4", 12, 24, 24)
        .pointwise_conv("cls", 10)
        .global_avg_pool("gap")
        .finish()
        .unwrap();
    let mut rng = StdRng::seed_from_u64(2018);
    let weights = WeightStore::random(&net, 8, 0.4, &mut rng);
    let image = Tensor::random(net.input(), 64, &mut rng);
    let reference = run_network(&net, &image, &weights).unwrap();

    let cfg = AcceleratorConfig::paper_default();
    let opts = SimOptions::paper_default();
    for policy in policies() {
        let accel = run_network_on_accelerator(&net, &image, &weights, &cfg, policy, opts).unwrap();
        for (name, want) in reference.iter() {
            assert_eq!(accel.get(name), Some(want), "{name} under {policy}");
        }
    }
}
