//! The paper's quantitative claims, asserted end to end. Each test names
//! the artifact it guards (DESIGN.md §5); tolerances reflect that our
//! microarchitectural constants are reconstructions (EXPERIMENTS.md
//! records exact measured values).

use codesign::arch::{AcceleratorConfig, Dataflow, EnergyModel};
use codesign::core::{
    advantage_range, compare_networks, ArchitectureComparison, CodesignStudy, NetworkSchedule,
};
use codesign::dnn::{zoo, LayerClass, MacBreakdown};
use codesign::sim::SimOptions;

fn ctx() -> (AcceleratorConfig, SimOptions, EnergyModel) {
    (AcceleratorConfig::paper_default(), SimOptions::paper_default(), EnergyModel::default())
}

// ---------------------------------------------------------------- T1 --

#[test]
fn t1_table1_mac_shares() {
    // Paper Table 1 (percent of total ops): rows for the networks whose
    // published definitions we can rebuild exactly.
    let cases = [
        ("SqueezeNet v1.0", zoo::squeezenet_v1_0(), [21.0, 25.0, 54.0, 0.0]),
        ("SqueezeNet v1.1", zoo::squeezenet_v1_1(), [6.0, 40.0, 54.0, 0.0]),
        ("MobileNet", zoo::mobilenet_v1(), [1.0, 95.0, 0.0, 3.0]),
        ("Tiny Darknet", zoo::tiny_darknet(), [5.0, 13.0, 82.0, 0.0]),
    ];
    for (name, net, [conv1, pw, fxf, dw]) in cases {
        let b = MacBreakdown::of(&net);
        assert!((b.percent(LayerClass::FirstConv) - conv1).abs() < 3.0, "{name} conv1");
        assert!((b.percent(LayerClass::Pointwise) - pw).abs() < 3.0, "{name} 1x1");
        assert!((b.percent(LayerClass::Spatial) - fxf).abs() < 4.0, "{name} FxF");
        assert!((b.percent(LayerClass::Depthwise) - dw).abs() < 1.5, "{name} DW");
    }
}

// ---------------------------------------------------------------- T2 --

#[test]
fn t2_speedup_orderings_match_table2() {
    let (cfg, opts, em) = ctx();
    let row = |net: &codesign::dnn::Network| ArchitectureComparison::evaluate(net, &cfg, opts, em);
    let alex = row(&zoo::alexnet());
    let mobile = row(&zoo::mobilenet_v1());
    let tiny = row(&zoo::tiny_darknet());
    let sq10 = row(&zoo::squeezenet_v1_0());
    let sq11 = row(&zoo::squeezenet_v1_1());

    // MobileNet gains the most against WS (paper: 6.35x, the largest).
    for other in [&alex, &tiny, &sq10, &sq11] {
        assert!(mobile.speedup_vs_ws() > other.speedup_vs_ws());
    }
    // AlexNet gains the least against OS (paper: 1.00x, the smallest).
    for other in [&mobile, &tiny, &sq10, &sq11] {
        assert!(alex.speedup_vs_os() <= other.speedup_vs_os());
    }
    // SqueezeNet v1.0 favors the WS comparison (2.06 vs 1.26 in the
    // paper); v1.1 flips (1.18 vs 1.34).
    assert!(sq10.speedup_vs_ws() > sq10.speedup_vs_os());
    assert!(sq11.speedup_vs_os() > sq11.speedup_vs_ws());
}

#[test]
fn t2_energy_reductions_have_the_right_shape() {
    let (cfg, opts, em) = ctx();
    for net in zoo::table_networks() {
        let c = ArchitectureComparison::evaluate(&net, &cfg, opts, em);
        // Energy vs WS is positive for every network in Table 2.
        assert!(
            c.energy_reduction_vs_ws() > 0.0,
            "{}: {:.2}",
            net.name(),
            c.energy_reduction_vs_ws()
        );
        // Energy vs OS is small (paper: -2%..8%).
        assert!(
            c.energy_reduction_vs_os().abs() < 0.15,
            "{}: {:.2}",
            net.name(),
            c.energy_reduction_vs_os()
        );
    }
}

#[test]
fn s2_squeezenet_v1_0_improvements() {
    // §4.1.3: "performance improvement of 26% and 106% compared to the
    // reference OS and WS architectures". Shape: solid gain vs both,
    // roughly 2x larger against WS.
    let (cfg, opts, em) = ctx();
    let c = ArchitectureComparison::evaluate(&zoo::squeezenet_v1_0(), &cfg, opts, em);
    assert!(c.speedup_vs_os() > 1.15, "vs OS = {:.2}", c.speedup_vs_os());
    assert!(c.speedup_vs_ws() > 1.8, "vs WS = {:.2}", c.speedup_vs_ws());
    assert!(c.speedup_vs_ws() > c.speedup_vs_os());
}

// ---------------------------------------------------------------- F1 --

#[test]
fn f1_squeezelerator_tracks_ws_with_a_fixed_first_layer() {
    // "The overall trend is similar to that of the WS architecture, but
    // the performance of the first layer is noticeably improved."
    let (cfg, opts, _) = ctx();
    let s = NetworkSchedule::build(&zoo::squeezenet_v1_0(), &cfg, opts);
    let conv1 = s.entry("conv1").unwrap();
    assert_eq!(conv1.chosen, Some(Dataflow::OutputStationary));
    assert!(conv1.ws_cycles as f64 / conv1.os_cycles as f64 > 2.0);
    // 1x1 squeeze layers stay on WS (trend follows WS).
    for e in &s.entries {
        if e.name.contains("squeeze1x1") || e.name == "conv10" {
            assert_eq!(e.chosen, Some(Dataflow::WeightStationary), "{}", e.name);
        }
    }
}

#[test]
fn f1_early_3x3_picks_os_late_3x3_picks_ws() {
    // "For most of the 3x3 convolutions, the accelerator chooses OS ...
    // In the latter layers, the mismatch between the size of the PE
    // array and the size of the feature map is the main cause of the
    // performance degradation."
    let (cfg, opts, _) = ctx();
    let s = NetworkSchedule::build(&zoo::squeezenet_v1_0(), &cfg, opts);
    assert_eq!(s.entry("fire2/expand3x3").unwrap().chosen, Some(Dataflow::OutputStationary));
    let late = s.entry("fire9/expand3x3").unwrap();
    assert!(late.os_cycles > late.ws_cycles, "13x13 map should degrade OS");
}

// ---------------------------------------------------------------- F3 --

#[test]
fn f3_variant_ladder_descends_and_first_layer_shrink_helps() {
    let (cfg, opts, em) = ctx();
    let variants = zoo::squeezenext_variants();
    let cycles: Vec<u64> =
        variants.iter().map(|v| NetworkSchedule::build(v, &cfg, opts).total_cycles()).collect();
    for w in cycles.windows(2) {
        assert!(w[1] <= w[0], "ladder must descend: {cycles:?}");
    }
    // v1 -> v2 isolates the 7x7 -> 5x5 first-filter reduction.
    let s1 = NetworkSchedule::build(&variants[0], &cfg, opts);
    let s2 = NetworkSchedule::build(&variants[1], &cfg, opts);
    assert!(s2.entry("conv1").unwrap().hybrid_cycles < s1.entry("conv1").unwrap().hybrid_cycles);
    let _ = em;
}

#[test]
fn f3_early_layers_have_low_utilization() {
    // "the initial layers have very low utilization which adversely
    // affects inference time and energy consumption".
    let (cfg, opts, _) = ctx();
    let s = NetworkSchedule::build(&zoo::squeezenext_variant(1), &cfg, opts);
    let early: Vec<f64> = s
        .entries
        .iter()
        .filter(|e| e.name.starts_with("s1b") && e.chosen.is_some())
        .map(|e| e.utilization)
        .collect();
    let late: Vec<f64> = s
        .entries
        .iter()
        .filter(|e| e.name.starts_with("s3b") && e.chosen.is_some())
        .map(|e| e.utilization)
        .collect();
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    assert!(
        avg(&early) < avg(&late),
        "early util {:.3} should be below late util {:.3}",
        avg(&early),
        avg(&late)
    );
}

// ---------------------------------------------------------------- F4 --

#[test]
fn f4_squeezenext_dominates_squeezenet_and_darknet() {
    // "SqueezeNext shows superior performance (in both plots higher and
    // to the left is better)". The robust part of that claim — the part
    // the co-design produced — is SqueezeNext dominating SqueezeNet
    // v1.0/v1.1 and Tiny DarkNet on both axes. (Whether SqueezeNext also
    // beats the MobileNet width family depends on energy constants the
    // paper does not publish; our reproduction has the MobileNet family
    // slightly ahead — recorded as a deviation in EXPERIMENTS.md.)
    let (cfg, opts, em) = ctx();
    let mut nets = zoo::squeezenext_family();
    nets.push(zoo::squeezenet_v1_0());
    nets.push(zoo::squeezenet_v1_1());
    nets.push(zoo::tiny_darknet());
    let points = codesign::core::spectrum(&nets, &cfg, opts, &em);
    for axis in [codesign::core::CostAxis::Time, codesign::core::CostAxis::Energy] {
        let front = codesign::core::pareto_front(&points, axis);
        assert!(!front.is_empty());
        for loser in ["SqueezeNet v1.0", "SqueezeNet v1.1", "Tiny Darknet"] {
            assert!(!front.iter().any(|p| p.name == loser), "{loser} on {axis:?} front");
        }
        assert!(front.iter().all(|p| p.name.contains("SqNxt")), "{axis:?}");
    }
}

// ---------------------------------------------------------------- S1 --

#[test]
fn s1_dataflow_advantage_ranges() {
    let (cfg, opts, _) = ctx();
    let nets = zoo::table_networks();

    // 1x1: paper 1.4x-7.0x faster on WS.
    let pw = advantage_range(&nets, LayerClass::Pointwise, Dataflow::WeightStationary, &cfg, opts)
        .unwrap();
    assert!(pw.max > 2.0 && pw.max < 20.0, "1x1 max = {:.2}", pw.max);

    // First conv: paper 1.6x-6.3x faster on OS.
    let c1 = advantage_range(&nets, LayerClass::FirstConv, Dataflow::OutputStationary, &cfg, opts)
        .unwrap();
    assert!(c1.min > 1.0, "conv1 min = {:.2}", c1.min);
    assert!(c1.max < 30.0, "conv1 max = {:.2}", c1.max);

    // Depthwise: paper 19x-96x faster on OS.
    let dw = advantage_range(&nets, LayerClass::Depthwise, Dataflow::OutputStationary, &cfg, opts)
        .unwrap();
    assert!(dw.max > 10.0 && dw.max < 300.0, "dw max = {:.1}", dw.max);
}

// ---------------------------------------------------------------- S3 --

#[test]
fn s3_headline_squeezenext_vs_squeezenet() {
    // "2.59x faster and 2.25x more energy efficient than SqueezeNet 1.0".
    let (cfg, opts, em) = ctx();
    let r = compare_networks(&zoo::squeezenext(), &zoo::squeezenet_v1_0(), &cfg, opts, &em);
    assert!((r.speedup - 2.59).abs() < 0.7, "speedup = {:.2}", r.speedup);
    assert!((r.energy_gain - 2.25).abs() < 0.8, "energy = {:.2}", r.energy_gain);
}

#[test]
fn s3_headline_squeezenext_vs_alexnet() {
    // "8.26x and 7.5x when compared to AlexNet".
    let (cfg, opts, em) = ctx();
    let r = compare_networks(&zoo::squeezenext(), &zoo::alexnet(), &cfg, opts, &em);
    assert!(r.speedup > 4.5 && r.speedup < 12.0, "speedup = {:.2}", r.speedup);
    assert!(r.energy_gain > 4.5 && r.energy_gain < 12.0, "energy = {:.2}", r.energy_gain);
}

#[test]
fn s3_rf_tuneup_completes_the_codesign() {
    // "only some fine-tuning of register file size was required".
    let study = CodesignStudy::run(SimOptions::paper_default(), &EnergyModel::default());
    let v5_rf8 = study.before_tuneup.last().unwrap().cycles;
    let v5_rf16 = study.after_tuneup.last().unwrap().cycles;
    assert!(v5_rf16 < v5_rf8);
    let (speed, energy) = study.end_to_end_gain();
    assert!(speed > 1.2 && energy > 1.1, "gain = {speed:.2}x / {energy:.2}x");
}

#[test]
fn alexnet_runtime_is_fc_dominated() {
    // "AlexNet ... takes up 80% of energy and 73% of its run time in the
    // three fully-connected layers".
    let (cfg, opts, _) = ctx();
    let perf = codesign::sim::simulate_network(
        &zoo::alexnet(),
        &cfg,
        codesign::arch::DataflowPolicy::PerLayer,
        opts,
    );
    let fc_share = perf.cycle_fraction(|l| l.name.starts_with("fc"));
    assert!((0.55..0.90).contains(&fc_share), "fc share = {fc_share:.2}");
}

#[test]
fn mobilenet_energy_is_dram_dominated() {
    // "DRAM access consumes a larger proportion of total energy
    // consumption in this network than in other DNNs".
    let (cfg, opts, em) = ctx();
    let dram_share = |net: &codesign::dnn::Network| {
        let perf = codesign::sim::simulate_network(
            net,
            &cfg,
            codesign::arch::DataflowPolicy::PerLayer,
            opts,
        );
        let acc = perf.total_accesses();
        acc.dram as f64 * em.dram / perf.total_energy(&em)
    };
    // Robust subset of the claim: MobileNet tops the conventional
    // conv-mix networks. (In our model the reconstructed SqueezeNext —
    // many tiny bottleneck layers per MAC — and FC-dominated AlexNet
    // also have high DRAM shares; see EXPERIMENTS.md.)
    let mobile = dram_share(&zoo::mobilenet_v1());
    for other in [zoo::squeezenet_v1_0(), zoo::tiny_darknet()] {
        assert!(
            mobile > dram_share(&other),
            "MobileNet DRAM share {:.2} should top {}",
            mobile,
            other.name()
        );
    }
}
