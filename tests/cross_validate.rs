//! Cross-validation of the analytical performance estimator against the
//! independently implemented cycle-stepped machines: over a grid of
//! small dense / pointwise / depthwise / strided layers, the analytic
//! PE-array cycle counts must track the stepped WS/OS machines within a
//! tight tolerance, and both levels must agree on which dataflow wins
//! whenever the gap is decisive.

use codesign::arch::{AcceleratorConfig, Dataflow};
use codesign::dnn::{Network, NetworkBuilder, Shape};
use codesign::sim::{compare_dataflows, cycle, ConvWork, SimOptions};

/// Relative tolerance between the analytic estimator and the stepped
/// machine. The two implementations intend to model the same schedule
/// exactly, so this is a guard band for rounding (OS broadcast
/// quantization), not a fudge factor.
const CYCLE_TOLERANCE: f64 = 0.01;

/// Minimum relative WS-vs-OS gap before the winner must be unambiguous
/// at both modeling levels.
const WINNER_BAND: f64 = 2.0 * CYCLE_TOLERANCE;

fn rel_diff(a: u64, b: u64) -> f64 {
    let m = a.max(b);
    if m == 0 {
        0.0
    } else {
        a.abs_diff(b) as f64 / m as f64
    }
}

/// A grid of small layers covering the shapes the paper's networks are
/// built from: stem convs, fire/expand 3x3 and 1x1, MobileNet-style
/// depthwise + pointwise pairs, and strided reductions.
fn layer_grid() -> Network {
    let mut b = NetworkBuilder::new("cross-validate-grid", Shape::new(8, 28, 28));
    b.conv("conv3x3", 16, 3, 1, 1);
    b.conv("conv3x3-s2", 24, 3, 2, 1);
    b.pointwise_conv("pw-expand", 48);
    b.depthwise_conv("dw3x3", 3, 1, 1);
    b.pointwise_conv("pw-project", 32);
    b.depthwise_conv("dw3x3-s2", 3, 2, 1);
    b.conv("conv5x5", 40, 5, 1, 2);
    b.pointwise_conv("pw-head", 64);
    b.finish().expect("grid network is well-formed")
}

fn configs() -> Vec<AcceleratorConfig> {
    vec![
        AcceleratorConfig::paper_default(),
        AcceleratorConfig::builder().array_size(8).rf_depth(8).build().unwrap(),
    ]
}

#[test]
fn analytic_cycles_match_stepped_machines_within_tolerance() {
    let opts = SimOptions::paper_default();
    let net = layer_grid();
    for cfg in configs() {
        for layer in net.layers() {
            let Some(work) = ConvWork::from_layer(layer) else { continue };
            let (ws, os, _) = compare_dataflows(layer, &cfg, opts);
            let ws_machine = cycle::trace_ws(&work, &cfg).cycles();
            let os_machine = cycle::trace_os(&work, &cfg, opts.os).cycles();
            let ws_analytic = ws.compute.cycles();
            let os_analytic = os.compute.cycles();
            assert!(
                rel_diff(ws_analytic, ws_machine) <= CYCLE_TOLERANCE,
                "{} on {cfg}: analytic WS {ws_analytic} vs machine {ws_machine}",
                layer.name
            );
            assert!(
                rel_diff(os_analytic, os_machine) <= CYCLE_TOLERANCE,
                "{} on {cfg}: analytic OS {os_analytic} vs machine {os_machine}",
                layer.name
            );
        }
    }
}

#[test]
fn dataflow_winner_agrees_across_modeling_levels() {
    let opts = SimOptions::paper_default();
    let net = layer_grid();
    let mut decisive = 0usize;
    for cfg in configs() {
        for layer in net.layers() {
            let Some(work) = ConvWork::from_layer(layer) else { continue };
            let (ws, os, _) = compare_dataflows(layer, &cfg, opts);
            let ws_analytic = ws.compute.cycles();
            let os_analytic = os.compute.cycles();
            // Only adjudicate layers where the PE-array gap exceeds the
            // combined model tolerance; inside the band either choice is
            // defensible at machine granularity.
            if rel_diff(ws_analytic, os_analytic) <= WINNER_BAND {
                continue;
            }
            decisive += 1;
            let analytic_winner = if os_analytic < ws_analytic {
                Dataflow::OutputStationary
            } else {
                Dataflow::WeightStationary
            };
            let ws_machine = cycle::trace_ws(&work, &cfg).cycles();
            let os_machine = cycle::trace_os(&work, &cfg, opts.os).cycles();
            let machine_winner = if os_machine < ws_machine {
                Dataflow::OutputStationary
            } else {
                Dataflow::WeightStationary
            };
            assert_eq!(
                analytic_winner, machine_winner,
                "{} on {cfg}: analytic picks {analytic_winner:?} \
                 (ws {ws_analytic}, os {os_analytic}) but the machine picks \
                 {machine_winner:?} (ws {ws_machine}, os {os_machine})",
                layer.name
            );
        }
    }
    assert!(decisive >= 8, "grid too easy: only {decisive} decisive layers");
}

#[test]
fn depthwise_layers_prefer_os_at_both_levels() {
    // The paper's core observation: depthwise layers starve the WS array
    // (one useful diagonal) while OS keeps the array busy. Both modeling
    // levels must reproduce it.
    let opts = SimOptions::paper_default();
    let cfg = AcceleratorConfig::paper_default();
    let net = layer_grid();
    for layer in net.layers().iter().filter(|l| l.name.starts_with("dw")) {
        let work = ConvWork::from_layer(layer).expect("dw layers map to the PE array");
        let (ws, os, best) = compare_dataflows(layer, &cfg, opts);
        assert_eq!(best, Dataflow::OutputStationary, "{}", layer.name);
        assert!(os.compute.cycles() < ws.compute.cycles(), "{}", layer.name);
        assert!(
            cycle::trace_os(&work, &cfg, opts.os).cycles() < cycle::trace_ws(&work, &cfg).cycles(),
            "{}",
            layer.name
        );
    }
}
