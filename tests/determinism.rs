//! The tentpole contract of the parallel + memoized simulation engine:
//! worker-thread count and cache state change wall-time only, never
//! results. A parallel sweep through a caching [`Simulator`] must be
//! bit-identical — same points, same order, same f64 bits — to a serial
//! sweep that recomputes everything.

use codesign::arch::EnergyModel;
use codesign::core::{sweep_with, SweepSpace};
use codesign::dnn::zoo;
use codesign::sim::{SimOptions, Simulator};
use codesign::trace::Tracer;

fn assert_bit_identical(
    serial: &[codesign::core::DesignPoint],
    parallel: &[codesign::core::DesignPoint],
) {
    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(parallel) {
        assert_eq!(s.params, p.params, "grid order must be deterministic");
        assert_eq!(s.cycles, p.cycles, "{}", s.params);
        // Bit-for-bit float equality, not approximate: the cache memoizes a
        // deterministic function, so even the f64 payloads must match.
        assert_eq!(s.energy.to_bits(), p.energy.to_bits(), "{}", s.params);
        assert_eq!(s.utilization.to_bits(), p.utilization.to_bits(), "{}", s.params);
        assert_eq!(s.area.to_bits(), p.area.to_bits(), "{}", s.params);
    }
}

#[test]
fn parallel_cached_sweep_is_bit_identical_to_serial_uncached() {
    let space = SweepSpace::paper_default();
    let opts = SimOptions::paper_default();
    let energy = EnergyModel::default();
    for net in [zoo::squeezenet_v1_1(), zoo::squeezenext()] {
        let serial = sweep_with(&Simulator::uncached(), &net, &space, opts, &energy, 1).unwrap();
        let sim = Simulator::new();
        let parallel = sweep_with(&sim, &net, &space, opts, &energy, 8).unwrap();
        assert_bit_identical(&serial, &parallel);
        assert_eq!(serial.len(), space.len(), "paper grid is fully valid");
        // Traffic entries are shared across every sweep point with the
        // same buffer size (and across both dataflows), so the parallel
        // sweep hits heavily even with per-network dedup absorbing the
        // fire-module repeats.
        assert!(sim.stats().hits > 0, "{}", sim.stats());
    }
}

#[test]
fn tracing_on_preserves_determinism() {
    // The observability layer must be a pure observer: sweeping with an
    // enabled tracer — serial or parallel — reproduces the untraced
    // results bit-for-bit, and everything the trace derives from spans
    // is independent of the worker schedule.
    let space = SweepSpace::paper_default();
    let opts = SimOptions::paper_default();
    let energy = EnergyModel::default();
    let net = zoo::squeezenet_v1_1();
    let untraced = sweep_with(&Simulator::uncached(), &net, &space, opts, &energy, 1).unwrap();

    let serial_tracer = Tracer::enabled();
    let serial = sweep_with(
        &Simulator::new().with_tracer(serial_tracer.clone()),
        &net,
        &space,
        opts,
        &energy,
        1,
    )
    .unwrap();
    let parallel_tracer = Tracer::enabled();
    let parallel = sweep_with(
        &Simulator::new().with_tracer(parallel_tracer.clone()),
        &net,
        &space,
        opts,
        &energy,
        8,
    )
    .unwrap();
    assert_bit_identical(&untraced, &serial);
    assert_bit_identical(&untraced, &parallel);

    // Span-derived trace data (tracks are canonically ordered in the
    // snapshot) must not depend on the thread count...
    let serial_data = serial_tracer.snapshot();
    let parallel_data = parallel_tracer.snapshot();
    assert!(serial_data.span_count() > 0);
    assert_eq!(serial_data.tracks, parallel_data.tracks);

    // ...and neither must any global counter except the cache hit/miss
    // pair, which is documented as schedule-dependent (racing workers may
    // both miss the same key).
    let non_cache = |data: &codesign::trace::TraceData| {
        data.counters
            .iter()
            .filter(|(name, _)| !name.starts_with("sim.cache."))
            .cloned()
            .collect::<Vec<_>>()
    };
    assert_eq!(non_cache(&serial_data), non_cache(&parallel_data));
}

#[test]
fn repeated_cached_sweeps_are_stable() {
    // A second sweep over a warm cache answers conv layers entirely from
    // memo entries and must reproduce the cold run exactly.
    let space = SweepSpace::paper_default();
    let opts = SimOptions::paper_default();
    let energy = EnergyModel::default();
    let net = zoo::squeezenet_v1_1();
    let sim = Simulator::new();
    let cold = sweep_with(&sim, &net, &space, opts, &energy, 4).unwrap();
    let misses_after_cold = sim.stats().misses;
    let warm = sweep_with(&sim, &net, &space, opts, &energy, 4).unwrap();
    assert_bit_identical(&cold, &warm);
    assert_eq!(sim.stats().misses, misses_after_cold, "warm sweep must not re-simulate");
}
