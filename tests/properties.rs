//! Property-based tests spanning the whole stack: random layer shapes
//! and accelerator configurations must uphold the simulator's structural
//! invariants, and randomly built networks must survive the full
//! pipeline.

use codesign::arch::{AcceleratorConfig, Dataflow, DataflowPolicy};
use codesign::dnn::{Network, NetworkBuilder, Shape};
use codesign::sim::{
    simulate_network, simulate_network_batched, ConvWork, OsModelOptions, SimOptions,
    SparsityModel, WorkKind,
};
use proptest::prelude::*;

/// A random but well-formed accelerator configuration.
fn config() -> impl Strategy<Value = AcceleratorConfig> {
    (
        prop_oneof![Just(8usize), Just(16), Just(32)],
        prop_oneof![Just(4usize), Just(8), Just(16), Just(32)],
        prop_oneof![Just(64usize), Just(128), Just(256)],
        any::<bool>(),
    )
        .prop_map(|(n, rf, kb, db)| {
            AcceleratorConfig::builder()
                .array_size(n)
                .rf_depth(rf)
                .global_buffer_bytes(kb * 1024)
                .double_buffering(db)
                .build()
                .expect("generated configurations are valid")
        })
}

/// A random convolution workload.
fn conv_work() -> impl Strategy<Value = ConvWork> {
    (
        prop_oneof![Just(WorkKind::Dense), Just(WorkKind::Depthwise)],
        1usize..=128, // channels
        1usize..=128, // filters
        prop_oneof![Just(1usize), Just(3), Just(5), Just(7)],
        1usize..=2,  // stride
        1usize..=64, // output extent
    )
        .prop_map(|(kind, c, k, f, stride, oh)| {
            let (cin, cout) = match kind {
                WorkKind::Depthwise => (c, c),
                _ => (c, k),
            };
            ConvWork {
                kind,
                groups: 1,
                in_channels: cin,
                out_channels: cout,
                kernel_h: f,
                kernel_w: f,
                stride,
                in_h: (oh - 1) * stride + f,
                in_w: (oh - 1) * stride + f,
                out_h: oh,
                out_w: oh,
            }
        })
}

/// A random small network with mixed layer types.
fn network() -> impl Strategy<Value = Network> {
    (
        2usize..=4,   // input channels
        12usize..=48, // input extent
        1usize..=4,   // block count
        any::<u64>(),
    )
        .prop_map(|(c, hw, blocks, seed)| {
            let mut b = NetworkBuilder::new("prop", Shape::new(c, hw, hw));
            let mut width = 8 + (seed % 8) as usize;
            b.conv("stem", width, 3, 1, 1);
            for i in 0..blocks {
                match (seed >> (i * 8)) % 4 {
                    0 => {
                        b.pointwise_conv(&format!("pw{i}"), width * 2);
                        width *= 2;
                    }
                    1 => {
                        b.depthwise_conv(&format!("dw{i}"), 3, 1, 1);
                    }
                    2 => {
                        b.conv(&format!("sp{i}"), width, 3, 1, 1);
                    }
                    _ => {
                        b.fire(&format!("fire{i}"), width / 2, width, width);
                        width *= 2;
                    }
                }
            }
            b.global_avg_pool("gap");
            b.fully_connected("fc", 10);
            b.finish().expect("generated networks are shape-consistent")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Per-layer hybrid choice is exactly min(WS, OS); utilizations stay
    /// in range; cycles and energy are positive.
    #[test]
    fn hybrid_invariants(net in network(), cfg in config()) {
        let opts = SimOptions::paper_default();
        let hybrid = simulate_network(&net, &cfg, DataflowPolicy::PerLayer, opts);
        let ws = simulate_network(&net, &cfg, DataflowPolicy::Fixed(Dataflow::WeightStationary), opts);
        let os = simulate_network(&net, &cfg, DataflowPolicy::Fixed(Dataflow::OutputStationary), opts);
        for ((h, w), o) in hybrid.layers.iter().zip(&ws.layers).zip(&os.layers) {
            prop_assert_eq!(h.total_cycles, w.total_cycles.min(o.total_cycles));
            prop_assert!((0.0..=1.0).contains(&h.utilization));
            prop_assert!(h.total_cycles > 0);
        }
    }

    /// The WS dataflow executes every algorithmic MAC.
    #[test]
    fn ws_mac_conservation(net in network(), cfg in config()) {
        let opts = SimOptions::paper_default();
        let ws = simulate_network(&net, &cfg, DataflowPolicy::Fixed(Dataflow::WeightStationary), opts);
        prop_assert_eq!(ws.total_macs(), net.total_macs());
    }

    /// OS zero-skipping removes work monotonically in the zero fraction,
    /// up to per-pass rounding (broadcast and stall counts quantize to
    /// whole cycles, so a sparser layer may cost a few cycles more).
    #[test]
    fn os_sparsity_is_monotone(work in conv_work(), cfg in config()) {
        let mut last = u64::MAX;
        for tenths in [0u8, 2, 4, 6, 8] {
            let opts = OsModelOptions::paper_default().with_sparsity(SparsityModel {
                zero_fraction: f64::from(tenths) / 10.0,
                exploit: true,
            });
            let perf = codesign::sim::simulate_os(&work, &cfg, opts);
            let slack = 2 + last / 50; // 2% + 2 cycles of rounding head-room
            prop_assert!(
                perf.cycles() <= last.saturating_add(slack),
                "{} > {last} + {slack}",
                perf.cycles()
            );
            last = last.min(perf.cycles());
        }
    }

    /// A deeper register file never slows the OS dataflow down.
    #[test]
    fn os_rf_depth_is_monotone(work in conv_work()) {
        let mut last = u64::MAX;
        for rf in [4usize, 8, 16, 32] {
            let cfg = AcceleratorConfig::builder().rf_depth(rf).build().unwrap();
            let perf = codesign::sim::simulate_os(&work, &cfg, OsModelOptions::paper_default());
            prop_assert!(perf.cycles() <= last, "rf {} got slower", rf);
            last = perf.cycles();
        }
    }

    /// The tiling search always returns a plan that fits (or honestly
    /// reports the overflow), and its traffic is at least the
    /// move-everything-once lower bound. Note the input bound counts only
    /// the rows the convolution actually reads — with stride > kernel,
    /// whole input rows are skipped and never fetched.
    #[test]
    fn tiling_plan_is_sound(work in conv_work(), cfg in config()) {
        let Ok(plan) = codesign::sim::optimize_tiling(&work, &cfg) else {
            // An honest InfeasibleTiling rejection is a sound outcome.
            return Ok(());
        };
        let e = cfg.bytes_per_element() as u64;
        // Row *count* actually read: bounded by the span and, when the
        // stride exceeds the kernel, by out_h disjoint kernel_h-row bands.
        let needed_rows = ((work.out_h - 1) * work.stride + work.kernel_h)
            .min(work.in_h)
            .min(work.out_h * work.kernel_h);
        let input_lower = (work.in_channels * needed_rows * work.in_w) as u64;
        let lower = input_lower * e
            + work.weight_elements() * e
            + work.output_elements() * e;
        prop_assert!(plan.traffic.total() >= lower, "{} < {lower}", plan.traffic.total());
        prop_assert!(plan.working_set > 0);
    }

    /// Per-image cost never increases with batch size.
    #[test]
    fn batching_is_monotone(net in network(), batch in 1u64..=8) {
        let cfg = AcceleratorConfig::paper_default();
        let opts = SimOptions::paper_default();
        let b1 = simulate_network_batched(&net, &cfg, DataflowPolicy::PerLayer, opts, 1)
            .total_cycles() as f64;
        let bn = simulate_network_batched(&net, &cfg, DataflowPolicy::PerLayer, opts, batch)
            .total_cycles() as f64 / batch as f64;
        prop_assert!(bn <= b1 * 1.0001, "batch {batch}: {bn} > {b1}");
    }

    /// The cycle-stepped machines agree with the analytic models for
    /// arbitrary workloads and configurations, not just the corpus.
    #[test]
    fn machines_match_analytic(work in conv_work(), cfg in config()) {
        let ws = codesign::sim::simulate_ws(&work, &cfg);
        let ws_trace = codesign::sim::cycle::trace_ws(&work, &cfg);
        prop_assert_eq!(ws_trace.phase_totals(), ws.phases);
        prop_assert_eq!(ws_trace.macs(), ws.executed_macs);

        let opts = OsModelOptions::paper_default();
        let os = codesign::sim::simulate_os(&work, &cfg, opts);
        let os_trace = codesign::sim::cycle::trace_os(&work, &cfg, opts);
        prop_assert_eq!(os_trace.phase_totals(), os.phases);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Networks that the text format can express round-trip through it
    /// without changing structure or cost.
    #[test]
    fn textfmt_round_trips(net in network()) {
        if let Some(text) = codesign::dnn::write_network(&net) {
            let again = codesign::dnn::parse_network(&text)
                .expect("serialized networks parse back");
            prop_assert_eq!(net.total_macs(), again.total_macs());
            prop_assert_eq!(net.total_params(), again.total_params());
            prop_assert_eq!(net.layers().len(), again.layers().len());
            prop_assert_eq!(net.output(), again.output());
        }
    }

    /// The compiled command stream replays to exactly the simulator's
    /// totals on arbitrary networks.
    #[test]
    fn program_replay_matches(net in network()) {
        let cfg = AcceleratorConfig::paper_default();
        let opts = SimOptions::paper_default();
        let program = codesign::sim::Program::compile(&net, &cfg, DataflowPolicy::PerLayer, opts);
        let simulated = simulate_network(&net, &cfg, DataflowPolicy::PerLayer, opts);
        prop_assert_eq!(program.estimate(&cfg), simulated.total_cycles());
    }

    /// Fusion plans partition the layer list for any network and buffer.
    #[test]
    fn fusion_plans_partition(net in network(), kib in 64usize..=4096) {
        let Ok(cfg) = AcceleratorConfig::builder().global_buffer_bytes(kib * 1024).build()
        else { return Ok(()); };
        let groups = codesign::core::plan_fusion(&net, &cfg);
        let covered: Vec<&str> =
            groups.iter().flat_map(|g| g.layers.iter().map(String::as_str)).collect();
        let expected: Vec<&str> = net.layers().iter().map(|l| l.name.as_str()).collect();
        prop_assert_eq!(covered, expected);
    }
}
