//! Property tests for the fast-forward execution layer.
//!
//! The run-length WS/OS/RS machines (`codesign::sim::cycle`) must be
//! bit-identical to the step-by-step loop walks kept in `cycle::spec` on
//! every aggregate the simulator consumes — total cycles, per-phase
//! cycles, MACs, busy-PE cycles, step counts, and the per-cycle
//! expansion. Likewise the event model's steady-state time skip must
//! reproduce the tile-by-tile baseline exactly. These invariants are the
//! licence to ship the fast paths as the defaults.

use codesign::arch::{AcceleratorConfig, DataflowPolicy};
use codesign::dnn::zoo;
use codesign::sim::cycle::{self, spec, MachineTrace};
use codesign::sim::{
    try_simulate_network_event_mode, ConvWork, OsModelOptions, SimOptions, SparsityModel, TimeSkip,
    WorkKind,
};
use proptest::prelude::*;

/// Every aggregate a consumer can observe must agree between the
/// fast-forward machine and the executable spec.
fn assert_fast_matches_spec(fast: &MachineTrace, spec: &MachineTrace, what: &str) {
    assert_eq!(fast.cycles(), spec.cycles(), "{what}: total cycles");
    assert_eq!(fast.phase_totals(), spec.phase_totals(), "{what}: per-phase cycles");
    assert_eq!(fast.macs(), spec.macs(), "{what}: MACs");
    assert_eq!(fast.active_pe_cycles(), spec.active_pe_cycles(), "{what}: busy-PE cycles");
    assert_eq!(fast.steps(), spec.steps(), "{what}: expanded step count");
    // The per-cycle expansion walk is O(total cycles); cap it so huge
    // random shapes don't dominate the suite (the aggregate equalities
    // above already pin every total unconditionally).
    if fast.cycles() < 2_000_000 {
        assert_eq!(
            fast.iter_cycles().count() as u64,
            spec.iter_cycles().count() as u64,
            "{what}: expansion length"
        );
        assert_eq!(
            fast.iter_cycles().map(|c| c.macs).sum::<u64>(),
            spec.iter_cycles().map(|c| c.macs).sum::<u64>(),
            "{what}: expansion MACs"
        );
    }
}

fn check_all_machines(work: &ConvWork, cfg: &AcceleratorConfig, os_opts: OsModelOptions) {
    assert_fast_matches_spec(
        &cycle::trace_ws(work, cfg),
        &spec::trace_ws(work, cfg),
        &format!("ws {work:?} on {cfg}"),
    );
    assert_fast_matches_spec(
        &cycle::trace_os(work, cfg, os_opts),
        &spec::trace_os(work, cfg, os_opts),
        &format!("os {work:?} on {cfg} with {os_opts:?}"),
    );
    assert_fast_matches_spec(
        &cycle::trace_rs(work, cfg),
        &spec::trace_rs(work, cfg),
        &format!("rs {work:?} on {cfg}"),
    );
}

/// A random but well-formed accelerator configuration.
fn config() -> impl Strategy<Value = AcceleratorConfig> {
    (
        prop_oneof![Just(8usize), Just(16), Just(32)],
        prop_oneof![Just(4usize), Just(8), Just(16), Just(32)],
        prop_oneof![Just(64usize), Just(128), Just(256)],
        any::<bool>(),
    )
        .prop_map(|(n, rf, kb, db)| {
            AcceleratorConfig::builder()
                .array_size(n)
                .rf_depth(rf)
                .global_buffer_bytes(kb * 1024)
                .double_buffering(db)
                .build()
                .expect("generated configurations are valid")
        })
}

/// A random convolution workload covering dense, grouped, depthwise,
/// and fully-connected shapes.
fn work() -> impl Strategy<Value = ConvWork> {
    (
        prop_oneof![
            Just(WorkKind::Dense),
            Just(WorkKind::Depthwise),
            Just(WorkKind::FullyConnected),
        ],
        1usize..=96, // channels (per group)
        1usize..=96, // filters (per group)
        prop_oneof![Just(1usize), Just(3), Just(5), Just(7)],
        1usize..=2,  // stride
        1usize..=32, // output extent
        prop_oneof![Just(1usize), Just(2), Just(4)],
    )
        .prop_map(|(kind, c, k, f, stride, oh, g)| {
            let (groups, cin, cout, f, stride, oh) = match kind {
                WorkKind::Depthwise => (1, c, c, f, stride, oh),
                WorkKind::FullyConnected => (1, c * 16, k * 8, 1, 1, 1),
                _ => (g, c * g, k * g, f, stride, oh),
            };
            ConvWork {
                kind,
                groups,
                in_channels: cin,
                out_channels: cout,
                kernel_h: f,
                kernel_w: f,
                stride,
                in_h: (oh - 1) * stride + f,
                in_w: (oh - 1) * stride + f,
                out_h: oh,
                out_w: oh,
            }
        })
}

/// Random OS datapath model switches.
fn os_opts() -> impl Strategy<Value = OsModelOptions> {
    (prop_oneof![Just(0.0f64), Just(0.25), Just(0.4)], any::<bool>(), any::<bool>(), any::<bool>())
        .prop_map(|(zero_fraction, exploit, preload_overlap, channel_packing)| OsModelOptions {
            sparsity: SparsityModel { zero_fraction, exploit },
            preload_overlap,
            channel_packing,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The tentpole contract: fast-forward == spec, bit for bit, over
    /// arbitrary `ConvWork` × `AcceleratorConfig` × OS model options.
    #[test]
    fn fast_forward_machines_match_the_spec(
        work in work(),
        cfg in config(),
        os_opts in os_opts(),
    ) {
        work.validate().expect("generated workloads are well-formed");
        check_all_machines(&work, &cfg, os_opts);
    }
}

fn pinned(
    kind: WorkKind,
    groups: usize,
    c: usize,
    k: usize,
    f: usize,
    s: usize,
    oh: usize,
) -> ConvWork {
    ConvWork {
        kind,
        groups,
        in_channels: c,
        out_channels: k,
        kernel_h: f,
        kernel_w: f,
        stride: s,
        in_h: (oh - 1) * s + f,
        in_w: (oh - 1) * s + f,
        out_h: oh,
        out_w: oh,
    }
}

/// Shapes that have historically exercised distinct aggregation paths:
/// depthwise (off-diagonal dead tiles), grouped dense, 1×1 pointwise,
/// and a single-tile layer whose whole schedule is one repeat block.
#[test]
fn pinned_regressions_match_the_spec() {
    let cases = [
        pinned(WorkKind::Depthwise, 1, 32, 32, 3, 1, 112), // MobileNet stem block
        pinned(WorkKind::Depthwise, 1, 512, 512, 3, 2, 7),
        pinned(WorkKind::Dense, 2, 48, 128, 5, 1, 27), // AlexNet-style grouped conv
        pinned(WorkKind::Dense, 4, 64, 64, 3, 1, 14),
        pinned(WorkKind::Dense, 1, 96, 16, 1, 1, 55), // fire-module squeeze (1×1)
        pinned(WorkKind::Dense, 1, 8, 8, 3, 1, 4),    // single tile on every array size
        pinned(WorkKind::FullyConnected, 1, 4096, 1000, 1, 1, 1),
    ];
    let cfgs = [
        AcceleratorConfig::paper_default(),
        AcceleratorConfig::builder().array_size(8).rf_depth(32).build().expect("valid config"),
    ];
    for cfg in &cfgs {
        for work in &cases {
            work.validate().expect("pinned workloads are well-formed");
            check_all_machines(work, cfg, OsModelOptions::paper_default());
        }
    }
}

/// The event pipeline's steady-state time skip must reproduce the
/// tile-by-tile baseline exactly — totals, per-layer results, stall and
/// utilization accounting — across the whole six-network zoo.
#[test]
fn event_time_skip_matches_the_interleaved_baseline_on_the_zoo() {
    let cfg = AcceleratorConfig::paper_default();
    let opts = SimOptions::paper_default();
    for net in zoo::table_networks() {
        let fast = try_simulate_network_event_mode(
            &net,
            &cfg,
            DataflowPolicy::PerLayer,
            opts,
            TimeSkip::Enabled,
        )
        .expect("zoo networks simulate");
        let baseline = try_simulate_network_event_mode(
            &net,
            &cfg,
            DataflowPolicy::PerLayer,
            opts,
            TimeSkip::Disabled,
        )
        .expect("zoo networks simulate");
        assert_eq!(fast, baseline, "{}", net.name());
    }
}
