//! Golden-file regression tests: the paper-reproduction tables the
//! report binary writes to `results/` must regenerate byte-identically
//! against snapshots checked into `tests/golden/`. Any intentional model
//! change must re-bless the snapshots with `UPDATE_GOLDEN=1 cargo test`.

use std::fs;
use std::path::PathBuf;

use codesign_bench::experiments::{headlines, table1, table2, Context};
use codesign_bench::Table;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(format!("{name}.csv"))
}

/// Compares `generate`'s CSV against the checked-in snapshot, or
/// re-blesses the snapshot when `UPDATE_GOLDEN` is set.
fn check_golden(name: &str, generate: fn(&Context) -> Table) {
    let got = generate(&Context::paper_default()).to_csv();
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        fs::create_dir_all(path.parent().expect("golden dir has a parent"))
            .expect("create tests/golden");
        fs::write(&path, &got).expect("write golden snapshot");
        return;
    }
    let want = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {} ({e}); bless it with `UPDATE_GOLDEN=1 cargo test`",
            path.display()
        )
    });
    if got != want {
        let mismatch = got
            .lines()
            .zip(want.lines())
            .enumerate()
            .find(|(_, (g, w))| g != w)
            .map(|(i, (g, w))| format!("first diff at line {}:\n  got:  {g}\n  want: {w}", i + 1))
            .unwrap_or_else(|| {
                format!(
                    "line count differs: got {}, want {}",
                    got.lines().count(),
                    want.lines().count()
                )
            });
        panic!(
            "{name}.csv drifted from tests/golden ({mismatch})\n\
             If the change is intentional, re-bless with `UPDATE_GOLDEN=1 cargo test`."
        );
    }
}

#[test]
fn table1_matches_golden() {
    check_golden("table1", table1);
}

#[test]
fn table2_matches_golden() {
    check_golden("table2", table2);
}

#[test]
fn headlines_match_golden() {
    check_golden("headlines", headlines);
}
