//! Stress and failure-injection tests: extreme configurations, degenerate
//! networks, and hostile inputs must degrade gracefully, never panic or
//! produce nonsense.

use codesign::arch::{AcceleratorConfig, Dataflow, DataflowPolicy, DramModel, EnergyModel};
use codesign::dnn::{parse_network, zoo, NetworkBuilder, Shape};
use codesign::sim::{simulate_network, simulate_network_event, try_simulate_network, SimOptions};

fn opts() -> SimOptions {
    SimOptions::paper_default()
}

#[test]
fn tiny_array_tiny_buffer_rejects_with_infeasible_tiling() {
    // A 64-byte buffer cannot hold even the smallest tile of a real
    // network: the simulator must refuse with a typed error naming the
    // layer — never panic, never fall back to a tiling that doesn't fit.
    let cfg = AcceleratorConfig::builder()
        .array_size(2)
        .rf_depth(1)
        .global_buffer_bytes(64)
        .build()
        .unwrap();
    let net = zoo::squeezenet_v1_1();
    for policy in [
        DataflowPolicy::PerLayer,
        DataflowPolicy::Fixed(Dataflow::WeightStationary),
        DataflowPolicy::Fixed(Dataflow::OutputStationary),
    ] {
        let err =
            try_simulate_network(&net, &cfg, policy, opts()).expect_err("64 B cannot fit any tile");
        assert_eq!(err.kind(), "infeasible_tiling");
        assert!(err.layer().is_some(), "error should name the layer: {err}");
    }
}

#[test]
fn tiny_array_small_buffer_still_simulates() {
    // The same tiny array with a small-but-sufficient buffer simulates
    // the whole network under every policy.
    let cfg = AcceleratorConfig::builder()
        .array_size(2)
        .rf_depth(1)
        .global_buffer_bytes(64 * 1024)
        .build()
        .unwrap();
    let net = zoo::squeezenet_v1_1();
    for policy in [
        DataflowPolicy::PerLayer,
        DataflowPolicy::Fixed(Dataflow::WeightStationary),
        DataflowPolicy::Fixed(Dataflow::OutputStationary),
    ] {
        let perf = simulate_network(&net, &cfg, policy, opts());
        assert!(perf.total_cycles() > 0);
        for l in &perf.layers {
            assert!((0.0..=1.0).contains(&l.utilization), "{}", l.name);
        }
    }
}

#[test]
fn huge_array_on_tiny_network() {
    let cfg = AcceleratorConfig::builder()
        .array_size(256)
        .global_buffer_bytes(8 * 1024 * 1024)
        .build()
        .unwrap();
    let net =
        NetworkBuilder::new("tiny", Shape::new(1, 4, 4)).conv("c", 1, 1, 1, 0).finish().unwrap();
    let perf = simulate_network(&net, &cfg, DataflowPolicy::PerLayer, opts());
    assert!(perf.total_cycles() > 0);
    // 16 MACs on 65536 PEs: utilization is minuscule but well-formed.
    assert!(perf.layers[0].utilization < 1e-3);
}

#[test]
fn pathological_dram_models() {
    let net = zoo::tiny_darknet();
    // Glacial DRAM: everything is memory bound, nothing panics.
    let slow = AcceleratorConfig::builder()
        .dram(DramModel { latency_cycles: 100_000, bytes_per_cycle: 0.01 })
        .build()
        .unwrap();
    let p_slow = simulate_network(&net, &slow, DataflowPolicy::PerLayer, opts());
    // Instant DRAM: everything is compute bound.
    let fast = AcceleratorConfig::builder()
        .dram(DramModel { latency_cycles: 0, bytes_per_cycle: 1e12 })
        .build()
        .unwrap();
    let p_fast = simulate_network(&net, &fast, DataflowPolicy::PerLayer, opts());
    assert!(p_slow.total_cycles() > 100 * p_fast.total_cycles());
    for l in &p_fast.layers {
        assert_eq!(l.dram_cycles, if l.dram_bytes == 0 { 0 } else { 1 }.min(l.dram_cycles));
    }
}

#[test]
fn detection_scale_input_simulates_everywhere() {
    // The SqueezeDet trunk's 18 MB activations exercise every tiling path.
    let cfg = AcceleratorConfig::paper_default();
    let net = zoo::squeezedet_trunk();
    let analytic = simulate_network(&net, &cfg, DataflowPolicy::PerLayer, opts());
    let event = simulate_network_event(&net, &cfg, DataflowPolicy::PerLayer, opts());
    assert!(analytic.total_cycles() > 0);
    let ratio = event.total_cycles() as f64 / analytic.total_cycles() as f64;
    assert!((0.8..1.5).contains(&ratio), "event/analytic = {ratio:.3}");
}

#[test]
fn degenerate_networks_are_handled() {
    // 1x1 input image.
    let dot = NetworkBuilder::new("dot", Shape::new(8, 1, 1))
        .pointwise_conv("pw", 4)
        .fully_connected("fc", 2)
        .finish()
        .unwrap();
    let cfg = AcceleratorConfig::paper_default();
    let perf = simulate_network(&dot, &cfg, DataflowPolicy::PerLayer, opts());
    assert_eq!(perf.layers.len(), 2);

    // Single-channel depthwise.
    let mono = NetworkBuilder::new("mono", Shape::new(1, 16, 16))
        .depthwise_conv("dw", 3, 1, 1)
        .finish()
        .unwrap();
    assert!(simulate_network(&mono, &cfg, DataflowPolicy::PerLayer, opts()).total_cycles() > 0);
}

#[test]
fn hostile_model_files_error_cleanly() {
    for text in [
        "",
        "network",
        "network x 3x3",                    // 2-dim shape
        "network x 0x3x3\nconv c 1 1 s1\n", // zero channel... builder output 0? conv on 0 channels
        &"conv c 8 3 s1\n".repeat(10_000),  // no network header, large input
        "network x 3x8x8\nfire f 0 0 0\n",
        "network x 3x8x8\nconv c 99999999999999999999 3 s1\n", // overflow
    ] {
        let result = parse_network(text);
        assert!(result.is_err(), "should reject: {:.40}...", text);
    }
}

#[test]
fn energy_is_finite_under_extreme_unit_costs() {
    let net = zoo::mobilenet_v1();
    let cfg = AcceleratorConfig::paper_default();
    let perf = simulate_network(&net, &cfg, DataflowPolicy::PerLayer, opts());
    let extreme = EnergyModel {
        mac: 1e-9,
        register_file: 1e9,
        inter_pe: 0.0,
        global_buffer: 1e9,
        dram: 1e12,
    };
    let e = perf.total_energy(&extreme);
    assert!(e.is_finite() && e > 0.0);
}

#[test]
fn sixty_four_cores_saturate_not_crash() {
    use codesign::sim::{simulate_network_multicore, MultiCoreConfig};
    let mc = MultiCoreConfig { core: AcceleratorConfig::paper_default(), cores: 64 };
    let net = zoo::squeezenet_v1_1();
    let perf = simulate_network_multicore(&net, &mc, DataflowPolicy::PerLayer, opts());
    let single = simulate_network(&net, &mc.core, DataflowPolicy::PerLayer, opts());
    assert!(perf.total_cycles() > 0);
    assert!(perf.total_cycles() <= single.total_cycles());
}
