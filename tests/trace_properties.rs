//! Property-based tests of the observability layer: global counters must
//! aggregate independently of recording order (and thread), every track
//! a random program records must satisfy the span-nesting invariants,
//! and attaching a tracer must never change simulation results.

use codesign::arch::{Dataflow, DataflowPolicy};
use codesign::dnn::{Network, NetworkBuilder, Shape};
use codesign::sim::{SimOptions, Simulator};
use codesign::trace::{Category, Tracer};
use proptest::prelude::*;

/// Small deterministic generator so one `u64` seed expands into an
/// arbitrary-length op sequence (the vendored proptest has no collection
/// strategies).
fn lcg(state: &mut u64) -> u64 {
    *state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    *state
}

const KEYS: [&str; 5] = ["sim.macs", "sim.dram.bytes", "sim.layer_sims", "alpha", "beta"];

fn counter_ops(seed: u64, n: usize) -> Vec<(&'static str, u64)> {
    let mut s = seed;
    (0..n)
        .map(|_| {
            let key = KEYS[(lcg(&mut s) % KEYS.len() as u64) as usize];
            (key, lcg(&mut s) % 1_000_000)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn counter_aggregation_is_order_independent(seed in any::<u64>(), n in 1usize..=64) {
        let ops = counter_ops(seed, n);
        let forward = Tracer::enabled();
        for (k, v) in &ops {
            forward.add_counter(k, *v);
        }
        let reversed = Tracer::enabled();
        for (k, v) in ops.iter().rev() {
            reversed.add_counter(k, *v);
        }
        let threaded = Tracer::enabled();
        std::thread::scope(|scope| {
            for chunk in ops.chunks(ops.len().div_ceil(4)) {
                let t = threaded.clone();
                scope.spawn(move || {
                    for (k, v) in chunk {
                        t.add_counter(k, *v);
                    }
                });
            }
        });
        let want = forward.snapshot().counters;
        prop_assert_eq!(&want, &reversed.snapshot().counters);
        prop_assert_eq!(&want, &threaded.snapshot().counters);
    }

    #[test]
    fn random_track_programs_nest_well_formed(seed in any::<u64>(), n in 1usize..=100) {
        let tracer = Tracer::enabled();
        let mut s = seed;
        {
            let mut track = tracer.track("prop");
            for _ in 0..n {
                match lcg(&mut s) % 4 {
                    0 => track.open("o", Category::Network),
                    1 => track.leaf("l", Category::Layer, lcg(&mut s) % 1000, &[("macs", 1)]),
                    2 => track.advance(lcg(&mut s) % 100),
                    _ => track.close(),
                }
            }
            // Dropping the track must close whatever is still open.
        }
        for track in &tracer.snapshot().tracks {
            let checked = track.check_nesting();
            prop_assert!(checked.is_ok(), "{}", checked.unwrap_err());
        }
    }

    #[test]
    fn tracing_never_changes_simulation_results(
        channels in 2usize..=4,
        extent in 12usize..=32,
        blocks in 1usize..=3,
        seed in any::<u64>(),
    ) {
        let net = random_network(channels, extent, blocks, seed);
        for policy in [
            DataflowPolicy::PerLayer,
            DataflowPolicy::Fixed(Dataflow::WeightStationary),
            DataflowPolicy::Fixed(Dataflow::OutputStationary),
        ] {
            let cfg = codesign::arch::AcceleratorConfig::paper_default();
            let opts = SimOptions::paper_default();
            let plain = Simulator::uncached().simulate_network(&net, &cfg, policy, opts);
            let traced = Simulator::uncached()
                .with_tracer(Tracer::enabled())
                .simulate_network(&net, &cfg, policy, opts);
            // Bit-for-bit: `NetworkPerf` equality covers every per-layer
            // cycle count, f64 utilization, and access tally.
            prop_assert_eq!(&plain, &traced, "policy {:?} on {}", policy, net.name());
        }
    }
}

/// A random small network mixing the layer types the tracer instruments
/// (PE-array convolutions and SIMD-path pooling).
fn random_network(channels: usize, extent: usize, blocks: usize, seed: u64) -> Network {
    let mut b = NetworkBuilder::new("trace-prop", Shape::new(channels, extent, extent));
    let mut s = seed;
    let mut width = 8 + (lcg(&mut s) % 8) as usize;
    b.conv("stem", width, 3, 1, 1);
    for i in 0..blocks {
        match lcg(&mut s) % 4 {
            0 => {
                b.pointwise_conv(&format!("pw{i}"), width * 2);
                width *= 2;
            }
            1 => {
                b.depthwise_conv(&format!("dw{i}"), 3, 1, 1);
            }
            2 => {
                b.conv(&format!("conv{i}"), width, 3, 1, 1);
            }
            _ => {
                b.max_pool(&format!("pool{i}"), 2, 2);
            }
        }
    }
    b.finish().expect("generated networks are well-formed")
}
