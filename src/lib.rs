//! # codesign — co-design of deep neural nets and NN accelerators
//!
//! Facade crate for the reproduction of Kwon et al., *"Co-Design of Deep
//! Neural Nets and Neural Net Accelerators for Embedded Vision
//! Applications"* (DAC 2018). Re-exports the full API:
//!
//! * [`dnn`] — model IR, Table-1 accounting, and the model zoo;
//! * [`tensor`] — functional ground truth (reference operators, network
//!   executor);
//! * [`arch`] — accelerator hardware description and energy model;
//! * [`sim`] — the Squeezelerator performance/energy simulator
//!   (analytic models, cycle-stepped machine, functional dataflow
//!   executors);
//! * [`core`] — the co-design engine (hybrid scheduling, DSE, model
//!   transformations, Pareto analysis);
//! * [`trace`] — the observability layer (spans, counters, Chrome-trace
//!   / JSONL / metrics sinks).
//!
//! # Examples
//!
//! ```
//! use codesign::arch::{AcceleratorConfig, DataflowPolicy};
//! use codesign::dnn::zoo;
//! use codesign::sim::{simulate_network, SimOptions};
//!
//! let cfg = AcceleratorConfig::paper_default();
//! let perf = simulate_network(
//!     &zoo::squeezenet_v1_0(),
//!     &cfg,
//!     DataflowPolicy::PerLayer,
//!     SimOptions::paper_default(),
//! );
//! println!("SqueezeNet v1.0: {:.2} ms", cfg.cycles_to_ms(perf.total_cycles()));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use codesign_arch as arch;
pub use codesign_core as core;
pub use codesign_dnn as dnn;
pub use codesign_sim as sim;
pub use codesign_tensor as tensor;
pub use codesign_trace as trace;
