//! Beyond the paper: the three extension studies this reproduction adds
//! on top of the DAC'18 evaluation —
//!
//! 1. the **full dataflow taxonomy** (§3.2 names WS/OS/RS/NLR; the paper
//!    builds two — was that the right call?);
//! 2. the **discrete-event pipeline** bracketing the analytic
//!    `max(compute, dram)` shortcut from above;
//! 3. the **cross-layer fusion** question: how much buffer would on-chip
//!    forwarding of intermediate maps need?
//!
//! ```text
//! cargo run --release --example beyond_the_paper
//! ```

use codesign::arch::{AcceleratorConfig, DataflowPolicy, EnergyModel};
use codesign::core::fusion_savings;
use codesign::dnn::zoo;
use codesign::sim::{
    compare_taxonomy, simulate_network, simulate_network_event, SimOptions, TaxonomyDataflow,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = AcceleratorConfig::paper_default();
    let opts = SimOptions::paper_default();
    let energy = EnergyModel::default();

    println!("== 1. would RS or NLR have helped? (four-way vs two-way hybrid) ==");
    println!(
        "{:<20} {:>10} {:>10} {:>10} {:>11} {:>8}",
        "network", "RS", "NLR", "hybrid2", "hybrid4", "gain"
    );
    for net in zoo::table_networks() {
        let t = compare_taxonomy(&net, &cfg, opts);
        println!(
            "{:<20} {:>10} {:>10} {:>10} {:>11} {:>7.3}x",
            net.name(),
            t.fixed_cycles(TaxonomyDataflow::Rs),
            t.fixed_cycles(TaxonomyDataflow::Nlr),
            t.hybrid2,
            t.hybrid4,
            t.hybrid4_gain()
        );
    }
    println!("-> zero gain on SqueezeNet v1.0, the network the accelerator was built for.\n");

    println!("== 2. what does the analytic max(compute, dram) shortcut hide? ==");
    println!("{:<20} {:>12} {:>12} {:>8} {:>8}", "network", "analytic", "event", "ratio", "stalls");
    for net in zoo::table_networks() {
        let a = simulate_network(&net, &cfg, DataflowPolicy::PerLayer, opts);
        let e = simulate_network_event(&net, &cfg, DataflowPolicy::PerLayer, opts);
        println!(
            "{:<20} {:>12} {:>12} {:>7.2}x {:>7.0}%",
            net.name(),
            a.total_cycles(),
            e.total_cycles(),
            e.total_cycles() as f64 / a.total_cycles() as f64,
            100.0 * e.total_stalls() as f64 / e.total_cycles() as f64
        );
    }
    println!("-> the gap concentrates in single-tile layers that cannot hide their own loads.\n");

    println!("== 3. how much buffer would on-chip forwarding need? ==");
    println!("{:<20} {:>9} {:>9} {:>9} {:>9}", "network", "128KiB", "512KiB", "2MiB", "8MiB");
    for net in zoo::table_networks() {
        let mut cells = Vec::new();
        for kib in [128usize, 512, 2048, 8192] {
            let buf = AcceleratorConfig::builder().global_buffer_bytes(kib * 1024).build()?;
            let s = fusion_savings(&net, &buf, opts, &energy);
            cells.push(format!("{:>8.0}%", 100.0 * s.dram_fraction_saved()));
        }
        println!("{:<20} {}", net.name(), cells.join(" "));
    }
    println!("-> SqueezeNext's small tensors forward earliest: co-design pays twice.");
    Ok(())
}
