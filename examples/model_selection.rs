//! Constraint-driven model selection — §4.2's closing use case: the
//! SqueezeNext family "allows the user to select the right DNN from this
//! family based on the target application's constraints".
//!
//! Simulates the whole Figure-4 spectrum once, then answers a few
//! embedded-product questions against it.
//!
//! ```text
//! cargo run --release --example model_selection
//! ```

use codesign::arch::{AcceleratorConfig, EnergyModel};
use codesign::core::{select_model, spectrum, Constraints};
use codesign::dnn::zoo;
use codesign::sim::SimOptions;

fn main() {
    let cfg = AcceleratorConfig::paper_default();
    let opts = SimOptions::paper_default();
    let energy = EnergyModel::default();

    let mut nets = zoo::squeezenext_family();
    nets.push(zoo::squeezenet_v1_0());
    nets.push(zoo::squeezenet_v1_1());
    nets.push(zoo::tiny_darknet());
    nets.extend(zoo::mobilenet_family());
    let points = spectrum(&nets, &cfg, opts, &energy);

    println!("model spectrum on {cfg}:");
    for p in &points {
        println!("  {p}");
    }

    let median_energy = {
        let mut es: Vec<f64> = points.iter().map(|p| p.energy).collect();
        es.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        es[es.len() / 2]
    };

    let scenarios = [
        ("dash-cam, 30 fps", Constraints::real_time_ms(1000.0 / 30.0)),
        ("drone, 120 fps", Constraints::real_time_ms(1000.0 / 120.0)),
        (
            "battery camera, tight energy + >58% top-1",
            Constraints {
                max_energy: Some(median_energy),
                min_accuracy: Some(58.0),
                max_time_ms: None,
            },
        ),
        (
            "impossible ask (>90% top-1)",
            Constraints { min_accuracy: Some(90.0), ..Constraints::default() },
        ),
    ];

    println!("\nselection:");
    for (name, c) in scenarios {
        match select_model(&points, &c) {
            Some(p) => println!("  {name:<42} [{c}] -> {}", p.name),
            None => println!("  {name:<42} [{c}] -> no model qualifies"),
        }
    }
}
