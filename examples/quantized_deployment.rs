//! Quantized deployment: calibrate float weights into the
//! Squeezelerator's 16-bit integer datapath, check the quantization SNR,
//! and run the quantized model through the accelerator's dataflow
//! schedules.
//!
//! ```text
//! cargo run --release --example quantized_deployment
//! ```

use codesign::arch::{AcceleratorConfig, DataflowPolicy};
use codesign::dnn::{LayerOp, NetworkBuilder, Shape};
use codesign::sim::{run_network_on_accelerator, SimOptions};
use codesign::tensor::{run_network, sqnr_db, Filters, QuantScale, Tensor, WeightStore};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Pretend-trained float weights: smooth pseudo-random values in
/// [-0.25, 0.25] with 40% pruned to zero, like a sparsified checkpoint.
fn float_weights(count: usize, rng: &mut StdRng) -> Vec<f32> {
    (0..count)
        .map(|_| if rng.gen::<f64>() < 0.4 { 0.0 } else { (rng.gen::<f32>() - 0.5) * 0.5 })
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(16);
    let net = NetworkBuilder::new("quantized-edge-net", Shape::new(3, 48, 48))
        .conv("conv1", 16, 5, 2, 0)
        .fire("fire2", 8, 16, 16)
        .max_pool("pool2", 3, 2)
        .fire("fire3", 12, 24, 24)
        .pointwise_conv("cls", 10)
        .global_avg_pool("gap")
        .finish()?;
    println!("{net}\n");

    // Calibrate one symmetric scale per layer and quantize.
    let mut store = WeightStore::new();
    println!("{:<18} {:>8} {:>10} {:>10}", "layer", "taps", "scale", "SQNR (dB)");
    for layer in net.compute_layers() {
        let LayerOp::Conv(spec) = &layer.op else { continue };
        let cg = layer.input.channels / spec.groups;
        let count = cg * spec.kernel.taps() * spec.out_channels;
        let floats = float_weights(count, &mut rng);
        let scale = QuantScale::calibrate_from(&floats, 16).expect("non-degenerate weights");
        println!(
            "{:<18} {:>8} {:>10.3e} {:>10.1}",
            layer.name,
            count,
            scale.step(),
            sqnr_db(&floats, &scale)
        );
        let mut k = 0;
        let quantized = Filters::from_fn(
            spec.out_channels,
            cg,
            spec.kernel.height,
            spec.kernel.width,
            |_, _, _, _| {
                let q = scale.quantize(floats[k]);
                k += 1;
                q
            },
        );
        store.insert(layer.name.clone(), quantized);
    }

    // Run the quantized model: reference executor vs the accelerator's
    // dataflow schedules must agree bit for bit.
    let image = Tensor::random(net.input(), 127, &mut rng);
    let reference = run_network(&net, &image, &store)?;
    let cfg = AcceleratorConfig::paper_default();
    let accel = run_network_on_accelerator(
        &net,
        &image,
        &store,
        &cfg,
        DataflowPolicy::PerLayer,
        SimOptions::paper_default(),
    )?;
    for (name, want) in reference.iter() {
        assert_eq!(accel.get(name), Some(want), "{name} diverged");
    }
    let logits = accel.final_output();
    let class = logits
        .as_slice()
        .iter()
        .enumerate()
        .max_by_key(|(_, &v)| v)
        .map(|(i, _)| i)
        .expect("ten logits");
    println!("\nquantized inference agrees across executors; predicted class {class}");
    Ok(())
}
