//! Functional end-to-end inference: runs a small fire-module classifier
//! on a random image with the reference operators, then re-executes every
//! convolution with the WS and OS hardware schedules and verifies all
//! three agree bit-for-bit — the schedules the performance models count
//! cycles for really compute the convolution.
//!
//! ```text
//! cargo run --release --example functional_inference
//! ```

use codesign::arch::AcceleratorConfig;
use codesign::dnn::{LayerOp, NetworkBuilder, Shape};
use codesign::sim::{conv2d_os, conv2d_ws};
use codesign::tensor::{run_network, Tensor, WeightStore};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(2018);
    let net = NetworkBuilder::new("mini-squeeze", Shape::new(3, 64, 64))
        .conv("conv1", 24, 5, 2, 0)
        .max_pool("pool1", 3, 2)
        .fire("fire2", 8, 16, 16)
        .fire("fire3", 12, 24, 24)
        .max_pool("pool3", 3, 2)
        .fire("fire4", 16, 32, 32)
        .pointwise_conv("conv_cls", 10)
        .global_avg_pool("gap")
        .finish()?;
    println!("{net}");

    let weights = WeightStore::random(&net, 8, 0.4, &mut rng);
    let image = Tensor::random(net.input(), 64, &mut rng);
    let activations = run_network(&net, &image, &weights)?;
    let logits = activations.final_output();
    let (class, score) =
        logits.as_slice().iter().enumerate().max_by_key(|(_, &v)| v).expect("ten logits");
    println!("reference inference: class {class} (score {score})\n");

    // Re-execute every convolution with both hardware schedules.
    let cfg = AcceleratorConfig::paper_default();
    let mut checked = 0;
    for layer in net.compute_layers() {
        let LayerOp::Conv(spec) = &layer.op else { continue };
        let input = match &layer.primary_input {
            Some(name) => activations.get(name).expect("producer ran"),
            None => &image,
        };
        let reference = activations.get(&layer.name).expect("layer ran");
        let filters = weights.get(&layer.name).expect("weights exist");

        let ws = conv2d_ws(input, filters, spec, &cfg)?;
        let os = conv2d_os(input, filters, spec, &cfg)?;
        assert_eq!(&ws, reference, "WS schedule diverged on {}", layer.name);
        assert_eq!(&os, reference, "OS schedule diverged on {}", layer.name);
        println!("  {:<22} WS == OS == reference  ({})", layer.name, layer.output);
        checked += 1;
    }
    println!("\nall {checked} convolutions verified bit-exact under both dataflows");
    Ok(())
}
