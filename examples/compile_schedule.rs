//! Compile a network into the Squeezelerator's command stream — the
//! static schedule §4.1.2 describes, as an assembly-like listing — and
//! verify the replayed stream reproduces the simulator's cycle count.
//!
//! ```text
//! cargo run --release --example compile_schedule -- squeezenet-v1.1
//! ```

use std::env;
use std::process::ExitCode;

use codesign::arch::{AcceleratorConfig, DataflowPolicy};
use codesign::dnn::zoo;
use codesign::sim::{simulate_network, Program, SimOptions};

fn main() -> ExitCode {
    let name = env::args().nth(1).unwrap_or_else(|| "squeezenet-v1.1".to_owned());
    let Some(net) = zoo::by_name(&name) else {
        eprintln!("unknown network `{name}`");
        return ExitCode::FAILURE;
    };

    let cfg = AcceleratorConfig::paper_default();
    let opts = SimOptions::paper_default();
    let program = Program::compile(&net, &cfg, DataflowPolicy::PerLayer, opts);

    // Print the first few layers' streams; the full listing for a real
    // network runs to thousands of lines.
    let listing = program.listing();
    for line in listing.lines().take(40) {
        println!("{line}");
    }
    println!("    ... ({} commands across {} layers)", program.len(), program.layers.len());

    let replayed = program.estimate(&cfg);
    let simulated = simulate_network(&net, &cfg, DataflowPolicy::PerLayer, opts).total_cycles();
    println!("\nreplayed program: {replayed} cycles");
    println!("simulator:        {simulated} cycles");
    assert_eq!(replayed, simulated, "compiled schedule must match the model");
    println!("exact match — the compiled schedule and the performance model agree.");
    ExitCode::SUCCESS
}
