//! Deployment study: what the embedded constraints of §2 cost, and what
//! relaxing them buys — batch size (cloud vs embedded), core count, and
//! measured vs assumed weight sparsity.
//!
//! ```text
//! cargo run --release --example deployment_study
//! ```

use codesign::arch::{AcceleratorConfig, Dataflow, DataflowPolicy};
use codesign::dnn::zoo;
use codesign::sim::{
    measure_sparsity, simulate_network, simulate_network_batched, simulate_network_measured,
    simulate_network_multicore, MultiCoreConfig, SimOptions,
};
use codesign::tensor::WeightStore;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let cfg = AcceleratorConfig::paper_default();
    let opts = SimOptions::paper_default();

    println!("== batch size: what batch-1 embedded inference costs ==");
    println!("{:<20} {:>12} {:>12} {:>10}", "network", "ms @ b=1", "ms @ b=16", "gain");
    for net in [zoo::alexnet(), zoo::squeezenet_v1_0(), zoo::mobilenet_v1()] {
        let b1 = simulate_network_batched(&net, &cfg, DataflowPolicy::PerLayer, opts, 1)
            .total_cycles() as f64;
        let b16 = simulate_network_batched(&net, &cfg, DataflowPolicy::PerLayer, opts, 16)
            .total_cycles() as f64
            / 16.0;
        println!(
            "{:<20} {:>12.2} {:>12.2} {:>9.2}x",
            net.name(),
            cfg.cycles_to_ms(b1 as u64),
            cfg.cycles_to_ms(b16 as u64),
            b1 / b16
        );
    }

    println!("\n== core count: scaling behind one shared DRAM channel ==");
    println!("{:<20} {:>10} {:>10} {:>10}", "network", "1 core", "2 cores", "4 cores");
    for net in [zoo::alexnet(), zoo::squeezenet_v1_0(), zoo::tiny_darknet()] {
        let run = |cores| {
            let mc = MultiCoreConfig { core: cfg.clone(), cores };
            let cycles = simulate_network_multicore(&net, &mc, DataflowPolicy::PerLayer, opts)
                .total_cycles();
            format!("{:.2}ms", cfg.cycles_to_ms(cycles))
        };
        println!("{:<20} {:>10} {:>10} {:>10}", net.name(), run(1), run(2), run(4));
    }

    println!("\n== sparsity: the 40% assumption vs measured weights ==");
    let net = zoo::squeezenet_v1_1();
    let mut rng = StdRng::seed_from_u64(42);
    for (label, zero_fraction) in [("40% zeros", 0.4), ("60% zeros", 0.6), ("dense", 0.0)] {
        let store = WeightStore::random(&net, 8, zero_fraction, &mut rng);
        let map = measure_sparsity(&net, &store);
        let measured = simulate_network_measured(
            &net,
            &cfg,
            DataflowPolicy::Fixed(Dataflow::OutputStationary),
            opts,
            &map,
        );
        println!(
            "  weights {label:<10} -> OS-only inference {:>9} cycles",
            measured.total_cycles()
        );
    }
    let assumed =
        simulate_network(&net, &cfg, DataflowPolicy::Fixed(Dataflow::OutputStationary), opts);
    println!("  uniform 40% model  -> OS-only inference {:>9} cycles", assumed.total_cycles());
}
