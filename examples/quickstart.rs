//! Quickstart: simulate SqueezeNet v1.0 on the Squeezelerator and the two
//! fixed-dataflow reference architectures, and print the headline
//! comparison (one Table-2 row).
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use codesign::arch::{AcceleratorConfig, EnergyModel};
use codesign::core::ArchitectureComparison;
use codesign::dnn::zoo;
use codesign::sim::SimOptions;

fn main() {
    let cfg = AcceleratorConfig::paper_default();
    let opts = SimOptions::paper_default();
    let energy = EnergyModel::default();

    let net = zoo::squeezenet_v1_0();
    println!("network: {net}");
    println!("hardware: {cfg}\n");

    let cmp = ArchitectureComparison::evaluate(&net, &cfg, opts, energy);
    println!("{:<16} {:>12} {:>10} {:>14}", "architecture", "cycles", "ms", "energy (MMAC)");
    for (name, perf) in
        [("WS only", &cmp.ws), ("OS only", &cmp.os), ("Squeezelerator", &cmp.hybrid)]
    {
        println!(
            "{:<16} {:>12} {:>10.2} {:>14.1}",
            name,
            perf.total_cycles(),
            cfg.cycles_to_ms(perf.total_cycles()),
            perf.total_energy(&energy) / 1e6
        );
    }

    println!(
        "\nSqueezelerator speedup: {:.2}x vs OS, {:.2}x vs WS",
        cmp.speedup_vs_os(),
        cmp.speedup_vs_ws()
    );
    println!(
        "energy reduction:       {:+.0}% vs OS, {:+.0}% vs WS",
        100.0 * cmp.energy_reduction_vs_os(),
        100.0 * cmp.energy_reduction_vs_ws()
    );
    println!("(paper Table 2:         1.26x / 2.06x speedup, 6% / 23% energy)");
}
