//! A tour of the §3.2 accelerator taxonomy: the same networks on three
//! very different spatial-architecture design points —
//!
//! * an 8×8 OS-only array (ShiDianNao-like),
//! * a 256×256 WS-only array (TPU-like),
//! * the paper's 32×32 per-layer-hybrid Squeezelerator —
//!
//! showing why neither extreme serves embedded DNNs and how the hybrid
//! closes the gap with three orders of magnitude fewer PEs than a TPU.
//!
//! ```text
//! cargo run --release --example taxonomy_tour
//! ```

use codesign::arch::{AcceleratorConfig, Dataflow, DataflowPolicy, EnergyModel};
use codesign::dnn::zoo;
use codesign::sim::{simulate_network, SimOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = SimOptions::paper_default();
    let energy = EnergyModel::default();

    // ShiDianNao-like: tiny OS array, small on-chip buffer.
    let shidiannao = AcceleratorConfig::builder()
        .array_size(8)
        .rf_depth(8)
        .global_buffer_bytes(64 * 1024)
        .build()?;
    // TPU-like: huge WS array, large unified buffer.
    let tpu = AcceleratorConfig::builder()
        .array_size(256)
        .rf_depth(4)
        .global_buffer_bytes(8 * 1024 * 1024)
        .build()?;
    // The paper's Squeezelerator.
    let squeezelerator = AcceleratorConfig::paper_default();

    let points = [
        (
            "8x8 OS (ShiDianNao-like)",
            &shidiannao,
            DataflowPolicy::Fixed(Dataflow::OutputStationary),
        ),
        ("256x256 WS (TPU-like)", &tpu, DataflowPolicy::Fixed(Dataflow::WeightStationary)),
        ("32x32 hybrid (paper)", &squeezelerator, DataflowPolicy::PerLayer),
    ];

    for net in [zoo::squeezenet_v1_0(), zoo::mobilenet_v1()] {
        println!("{net}");
        println!(
            "  {:<28} {:>8} {:>10} {:>8} {:>14}",
            "architecture", "PEs", "ms", "util", "energy (MMAC)"
        );
        for (name, cfg, policy) in &points {
            let perf = simulate_network(&net, cfg, *policy, opts);
            println!(
                "  {:<28} {:>8} {:>10.2} {:>7.1}% {:>14.0}",
                name,
                cfg.pe_count(),
                cfg.cycles_to_ms(perf.total_cycles()),
                100.0 * perf.average_utilization(cfg.pe_count()),
                perf.total_energy(&energy) / 1e6
            );
        }
        println!();
    }
    println!("batch-1 embedded inference cannot feed a TPU-sized WS array:");
    println!("its utilization collapses, while the small hybrid array stays busy.");
    Ok(())
}
