//! Per-layer dataflow exploration: prints the static WS/OS schedule the
//! Squeezelerator derives for a zoo network (the data behind Figures 1
//! and 3).
//!
//! ```text
//! cargo run --release --example dataflow_explorer -- mobilenet
//! cargo run --release --example dataflow_explorer -- squeezenet-v1.0
//! ```

use std::env;
use std::process::ExitCode;

use codesign::arch::{AcceleratorConfig, Dataflow};
use codesign::core::NetworkSchedule;
use codesign::dnn::zoo;
use codesign::sim::SimOptions;

fn main() -> ExitCode {
    let name = env::args().nth(1).unwrap_or_else(|| "squeezenet-v1.0".to_owned());
    let Some(net) = zoo::by_name(&name) else {
        eprintln!("unknown network `{name}`; try alexnet, mobilenet, tiny-darknet,");
        eprintln!("squeezenet-v1.0, squeezenet-v1.1, squeezenext, sqnxt-23v1..v5");
        return ExitCode::FAILURE;
    };

    let cfg = AcceleratorConfig::paper_default();
    let schedule = NetworkSchedule::build(&net, &cfg, SimOptions::paper_default());

    println!("{net}");
    println!("{cfg}\n");
    println!(
        "{:<26} {:>6} {:>12} {:>12} {:>8} {:>7}",
        "layer", "class", "WS cycles", "OS cycles", "chosen", "util"
    );
    for e in &schedule.entries {
        println!(
            "{:<26} {:>6} {:>12} {:>12} {:>8} {:>6.1}%",
            e.name,
            e.class.to_string(),
            e.ws_cycles,
            e.os_cycles,
            e.chosen.map_or("SIMD", |d| d.tag()),
            100.0 * e.utilization
        );
    }
    println!(
        "\ntotal: {} cycles ({:.2} ms); layer choices: {:.0}% WS, {:.0}% OS",
        schedule.total_cycles(),
        cfg.cycles_to_ms(schedule.total_cycles()),
        100.0 * schedule.dataflow_share(Dataflow::WeightStationary),
        100.0 * schedule.dataflow_share(Dataflow::OutputStationary),
    );
    ExitCode::SUCCESS
}
