//! The full co-design loop of §4 — accelerator tailoring, model
//! transformation, and the hardware tune-up — end to end:
//!
//! 1. sweep the accelerator design space for the baseline model;
//! 2. walk the SqueezeNext v1→v5 transformation ladder (7×7→5×5 first
//!    filter, stage reallocation);
//! 3. apply the register-file 8→16 tune-up;
//! 4. report the headline comparison against SqueezeNet v1.0 and AlexNet.
//!
//! ```text
//! cargo run --release --example codesign_loop
//! ```

use codesign::arch::{AcceleratorConfig, EnergyModel};
use codesign::core::{best_by_energy_delay, compare_networks, sweep, CodesignStudy, SweepSpace};
use codesign::dnn::zoo;
use codesign::sim::SimOptions;

fn main() {
    let opts = SimOptions::paper_default();
    let energy = EnergyModel::default();

    println!("step 1: hardware design-space sweep on the baseline (1.0-SqNxt-23v1)");
    let baseline = zoo::squeezenext_variant(1);
    let points = sweep(&baseline, &SweepSpace::paper_default(), opts, &energy)
        .expect("the paper sweep space has no empty axis");
    let best = best_by_energy_delay(&points).expect("the paper sweep produces valid points");
    println!(
        "  best energy-delay point: {} ({} cycles, util {:.1}%)\n",
        best.params,
        best.cycles,
        100.0 * best.utilization
    );

    println!("step 2+3: model transformation ladder v1..v5, RF 8 vs RF 16");
    let study = CodesignStudy::run(opts, &energy);
    println!(
        "  {:<18} {:>12} {:>12} {:>8} {:>8}",
        "variant", "cycles rf8", "cycles rf16", "util", "MMACs"
    );
    for (b, a) in study.before_tuneup.iter().zip(&study.after_tuneup) {
        println!(
            "  {:<18} {:>12} {:>12} {:>7.1}% {:>8.0}",
            a.name,
            b.cycles,
            a.cycles,
            100.0 * a.utilization,
            a.macs as f64 / 1e6
        );
    }
    let (speed, egain) = study.end_to_end_gain();
    println!("  end-to-end co-design gain: {speed:.2}x speed, {egain:.2}x energy\n");

    println!("step 4: headline comparisons (tuned hardware, hybrid dataflow)");
    let cfg = AcceleratorConfig::paper_default();
    let sqnxt = zoo::squeezenext();
    for (base, paper) in
        [(zoo::squeezenet_v1_0(), "2.59x / 2.25x"), (zoo::alexnet(), "8.26x / 7.5x")]
    {
        let r = compare_networks(&sqnxt, &base, &cfg, opts, &energy);
        println!(
            "  vs {:<18} {:.2}x faster, {:.2}x less energy   (paper: {})",
            base.name(),
            r.speedup,
            r.energy_gain,
            paper
        );
    }
}
