//! SqueezeNet v1.0 and v1.1 (Iandola et al., 2016), the Squeezelerator's
//! original target DNN.

use crate::network::{Network, NetworkBuilder};
use crate::shape::Shape;

/// Builds SqueezeNet v1.0 (Caffe reference model, 227×227 input).
///
/// The paper reports the Table-1 MAC split for this model as
/// Conv1 21 % / 1×1 25 % / 3×3 54 %.
pub fn squeezenet_v1_0() -> Network {
    NetworkBuilder::new("SqueezeNet v1.0", Shape::new(3, 227, 227))
        .conv("conv1", 96, 7, 2, 0)
        .max_pool("pool1", 3, 2)
        .fire("fire2", 16, 64, 64)
        .fire("fire3", 16, 64, 64)
        .fire("fire4", 32, 128, 128)
        .max_pool("pool4", 3, 2)
        .fire("fire5", 32, 128, 128)
        .fire("fire6", 48, 192, 192)
        .fire("fire7", 48, 192, 192)
        .fire("fire8", 64, 256, 256)
        .max_pool("pool8", 3, 2)
        .fire("fire9", 64, 256, 256)
        .pointwise_conv("conv10", 1000)
        .global_avg_pool("pool10")
        .top1_accuracy(57.1)
        .finish()
        .unwrap_or_else(|e| unreachable!("SqueezeNet v1.0 definition is shape-consistent: {e}"))
}

/// Builds SqueezeNet v1.1 (the 2.4×-cheaper revision: 3×3 first conv,
/// pooling moved earlier).
pub fn squeezenet_v1_1() -> Network {
    NetworkBuilder::new("SqueezeNet v1.1", Shape::new(3, 227, 227))
        .conv("conv1", 64, 3, 2, 0)
        .max_pool("pool1", 3, 2)
        .fire("fire2", 16, 64, 64)
        .fire("fire3", 16, 64, 64)
        .max_pool("pool3", 3, 2)
        .fire("fire4", 32, 128, 128)
        .fire("fire5", 32, 128, 128)
        .max_pool("pool5", 3, 2)
        .fire("fire6", 48, 192, 192)
        .fire("fire7", 48, 192, 192)
        .fire("fire8", 64, 256, 256)
        .fire("fire9", 64, 256, 256)
        .pointwise_conv("conv10", 1000)
        .global_avg_pool("pool10")
        .top1_accuracy(57.1)
        .finish()
        .unwrap_or_else(|e| unreachable!("SqueezeNet v1.1 definition is shape-consistent: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::LayerClass;
    use crate::stats::MacBreakdown;

    #[test]
    fn v1_0_shapes() {
        let net = squeezenet_v1_0();
        assert_eq!(net.layer("conv1").unwrap().output, Shape::new(96, 111, 111));
        assert_eq!(net.layer("fire2/concat").unwrap().output, Shape::new(128, 55, 55));
        assert_eq!(net.layer("fire9/concat").unwrap().output, Shape::new(512, 13, 13));
        assert_eq!(net.output(), Shape::vector(1000));
    }

    #[test]
    fn v1_0_params_about_1_25_million() {
        let p = squeezenet_v1_0().total_params();
        assert!((1_150_000..1_350_000).contains(&p), "params = {p}");
    }

    #[test]
    fn v1_0_table1_row() {
        // Table 1: Conv1 21%, 1x1 25%, FxF 54%.
        let b = MacBreakdown::of(&squeezenet_v1_0());
        assert!((b.percent(LayerClass::FirstConv) - 21.0).abs() < 2.0);
        assert!((b.percent(LayerClass::Pointwise) - 25.0).abs() < 2.0);
        assert!((b.percent(LayerClass::Spatial) - 54.0).abs() < 2.0);
        assert_eq!(b.macs(LayerClass::Depthwise), 0);
        assert_eq!(b.macs(LayerClass::FullyConnected), 0);
    }

    #[test]
    fn v1_1_table1_row() {
        // Table 1: Conv1 6%, 1x1 40%, FxF 54%.
        let b = MacBreakdown::of(&squeezenet_v1_1());
        assert!((b.percent(LayerClass::FirstConv) - 6.0).abs() < 2.0);
        assert!((b.percent(LayerClass::Pointwise) - 40.0).abs() < 3.0);
        assert!((b.percent(LayerClass::Spatial) - 54.0).abs() < 3.0);
    }

    #[test]
    fn v1_1_is_much_cheaper_than_v1_0() {
        let m0 = squeezenet_v1_0().total_macs();
        let m1 = squeezenet_v1_1().total_macs();
        let ratio = m0 as f64 / m1 as f64;
        assert!((2.0..3.0).contains(&ratio), "ratio = {ratio:.2}");
    }

    #[test]
    fn fire_layer_count() {
        // conv1 + 8 fires * 4 layers (3 conv + concat) + conv10 = 34 conv-ish
        let net = squeezenet_v1_0();
        assert_eq!(net.compute_layers().count(), 1 + 8 * 3 + 1);
    }
}
