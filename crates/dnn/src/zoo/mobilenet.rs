//! MobileNet v1 (Howard et al., 2017) with width multipliers.
//!
//! MobileNet is the paper's stress case for dataflow flexibility: 95 % of
//! its MACs are `1×1` convolutions (which want WS) and 3 % are depthwise
//! convolutions (which are 19–96× faster on OS), so single-dataflow
//! accelerators lose badly on one side or the other.

use crate::network::{Network, NetworkBuilder};
use crate::shape::Shape;

/// Width-multiplier variants published with the MobileNet paper, with their
/// ImageNet top-1 accuracies.
const WIDTH_VARIANTS: [(f64, f64); 4] = [(1.0, 70.6), (0.75, 68.4), (0.5, 63.7), (0.25, 50.6)];

fn scaled(width: f64, channels: usize) -> usize {
    ((channels as f64 * width).round() as usize).max(1)
}

/// Builds `width`-MobileNet-224.
///
/// `width` is the channel multiplier (`1.0`, `0.75`, `0.5`, `0.25` are the
/// published points). Accuracy metadata is attached for published widths.
///
/// # Panics
///
/// Panics if `width` is not finite and positive.
pub fn mobilenet(width: f64) -> Network {
    assert!(width.is_finite() && width > 0.0, "width multiplier must be positive");
    let name = format!("{width:.2}-MobileNet-224");
    let mut b = NetworkBuilder::new(name, Shape::new(3, 224, 224));
    b.conv("conv1", scaled(width, 32), 3, 2, 1);

    // (pointwise output channels, stride of the depthwise conv)
    let blocks: [(usize, usize); 13] = [
        (64, 1),
        (128, 2),
        (128, 1),
        (256, 2),
        (256, 1),
        (512, 2),
        (512, 1),
        (512, 1),
        (512, 1),
        (512, 1),
        (512, 1),
        (1024, 2),
        (1024, 1),
    ];
    for (i, (out, stride)) in blocks.iter().enumerate() {
        let n = i + 2;
        b.depthwise_conv(&format!("conv{n}/dw"), 3, *stride, 1);
        b.pointwise_conv(&format!("conv{n}/pw"), scaled(width, *out));
    }
    b.global_avg_pool("pool");
    b.fully_connected("fc", 1000);
    if let Some((_, acc)) = WIDTH_VARIANTS.iter().find(|(w, _)| (w - width).abs() < 1e-9) {
        b.top1_accuracy(*acc);
    }
    b.finish().unwrap_or_else(|e| unreachable!("MobileNet definition is shape-consistent: {e}"))
}

/// Builds 1.0-MobileNet-224, the variant in the paper's tables.
pub fn mobilenet_v1() -> Network {
    mobilenet(1.0)
}

/// All published width variants, widest first (for the Figure-4 spectrum).
pub fn mobilenet_family() -> Vec<Network> {
    WIDTH_VARIANTS.iter().map(|(w, _)| mobilenet(*w)).collect()
}

/// Published resolution variants of 1.0-MobileNet with their ImageNet
/// top-1 accuracies — the second scaling axis of the MobileNet paper,
/// relevant to §2's discussion of input-resolution sensitivity.
const RESOLUTION_VARIANTS: [(usize, f64); 4] = [(224, 70.6), (192, 69.1), (160, 67.2), (128, 64.4)];

/// Builds 1.0-MobileNet at one of the published input resolutions
/// (224, 192, 160, 128). Other resolutions build without accuracy
/// metadata.
///
/// # Panics
///
/// Panics if `resolution < 32` (the 5-stride-2 trunk would collapse).
pub fn mobilenet_resolution(resolution: usize) -> Network {
    assert!(resolution >= 32, "resolution must be at least 32");
    let mut b = NetworkBuilder::new(
        format!("1.0-MobileNet-{resolution}"),
        Shape::new(3, resolution, resolution),
    );
    b.conv("conv1", 32, 3, 2, 1);
    let blocks: [(usize, usize); 13] = [
        (64, 1),
        (128, 2),
        (128, 1),
        (256, 2),
        (256, 1),
        (512, 2),
        (512, 1),
        (512, 1),
        (512, 1),
        (512, 1),
        (512, 1),
        (1024, 2),
        (1024, 1),
    ];
    for (i, (out, stride)) in blocks.iter().enumerate() {
        let n = i + 2;
        b.depthwise_conv(&format!("conv{n}/dw"), 3, *stride, 1);
        b.pointwise_conv(&format!("conv{n}/pw"), *out);
    }
    b.global_avg_pool("pool");
    b.fully_connected("fc", 1000);
    if let Some((_, acc)) = RESOLUTION_VARIANTS.iter().find(|(r, _)| *r == resolution) {
        b.top1_accuracy(*acc);
    }
    b.finish()
        .unwrap_or_else(|e| unreachable!("MobileNet resolution variant is shape-consistent: {e}"))
}

/// The published resolution family, largest first.
pub fn mobilenet_resolution_family() -> Vec<Network> {
    RESOLUTION_VARIANTS.iter().map(|(r, _)| mobilenet_resolution(*r)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::LayerClass;
    use crate::stats::MacBreakdown;

    #[test]
    fn reference_macs_and_params() {
        let net = mobilenet_v1();
        // Published: 569 M MACs, 4.2 M params.
        let macs = net.total_macs();
        let params = net.total_params();
        assert!((540_000_000..600_000_000).contains(&macs), "macs = {macs}");
        assert!((4_000_000..4_500_000).contains(&params), "params = {params}");
    }

    #[test]
    fn table1_row() {
        // Table 1: Conv1 1%, 1x1 95%, DW 3%.
        let b = MacBreakdown::of(&mobilenet_v1());
        assert!((b.percent(LayerClass::FirstConv) - 1.0).abs() < 1.0);
        assert!((b.percent(LayerClass::Pointwise) - 95.0).abs() < 1.5);
        assert!((b.percent(LayerClass::Depthwise) - 3.0).abs() < 1.0);
        assert_eq!(b.macs(LayerClass::Spatial), 0);
    }

    #[test]
    fn final_shape_is_1000_vector() {
        let net = mobilenet_v1();
        assert_eq!(net.output(), Shape::vector(1000));
        assert_eq!(net.layer("conv14/pw").unwrap().output, Shape::new(1024, 7, 7));
    }

    #[test]
    fn width_scales_channels_not_depth() {
        let half = mobilenet(0.5);
        assert_eq!(half.layers().len(), mobilenet_v1().layers().len());
        assert_eq!(half.layer("conv14/pw").unwrap().output.channels, 512);
        assert!(half.total_macs() * 3 < mobilenet_v1().total_macs());
    }

    #[test]
    fn family_has_accuracy_metadata() {
        for net in mobilenet_family() {
            assert!(net.top1_accuracy().is_some(), "{} missing accuracy", net.name());
        }
    }

    #[test]
    #[should_panic(expected = "width multiplier")]
    fn rejects_nonpositive_width() {
        let _ = mobilenet(0.0);
    }

    #[test]
    fn resolution_scales_macs_quadratically() {
        let r224 = mobilenet_resolution(224);
        let r128 = mobilenet_resolution(128);
        // Params are resolution independent; MACs scale ~(224/128)^2.
        assert_eq!(r224.total_params(), r128.total_params());
        let ratio = r224.total_macs() as f64 / r128.total_macs() as f64;
        assert!((2.4..3.8).contains(&ratio), "ratio = {ratio:.2}");
    }

    #[test]
    fn resolution_family_has_accuracy_metadata() {
        let fam = mobilenet_resolution_family();
        assert_eq!(fam.len(), 4);
        for net in &fam {
            assert!(net.top1_accuracy().is_some(), "{}", net.name());
        }
        // 224 builds identically to the width-1.0 model up to its name.
        assert_eq!(fam[0].total_macs(), mobilenet_v1().total_macs());
    }

    #[test]
    #[should_panic(expected = "resolution")]
    fn rejects_tiny_resolution() {
        let _ = mobilenet_resolution(16);
    }
}
