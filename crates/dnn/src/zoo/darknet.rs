//! Tiny Darknet (Redmon's darknet reference "tiny" classifier).
//!
//! A compact 1×1/3×3 interleaved classifier; the paper includes it as a
//! lightweight model whose layer mix (13 % 1×1, 82 % F×F) favors the OS
//! dataflow more than SqueezeNet's.

use crate::network::{Network, NetworkBuilder};
use crate::shape::Shape;

/// Builds Tiny Darknet for 224×224 ImageNet inference.
pub fn tiny_darknet() -> Network {
    NetworkBuilder::new("Tiny Darknet", Shape::new(3, 224, 224))
        .conv("conv1", 16, 3, 1, 1)
        .max_pool("pool1", 2, 2)
        .conv("conv2", 32, 3, 1, 1)
        .max_pool("pool2", 2, 2)
        .pointwise_conv("conv3", 16)
        .conv("conv4", 128, 3, 1, 1)
        .pointwise_conv("conv5", 16)
        .conv("conv6", 128, 3, 1, 1)
        .max_pool("pool6", 2, 2)
        .pointwise_conv("conv7", 32)
        .conv("conv8", 256, 3, 1, 1)
        .pointwise_conv("conv9", 32)
        .conv("conv10", 256, 3, 1, 1)
        .max_pool("pool10", 2, 2)
        .pointwise_conv("conv11", 64)
        .conv("conv12", 512, 3, 1, 1)
        .pointwise_conv("conv13", 64)
        .conv("conv14", 512, 3, 1, 1)
        .pointwise_conv("conv15", 128)
        .pointwise_conv("conv16", 1000)
        .global_avg_pool("pool16")
        .top1_accuracy(58.7)
        .finish()
        .unwrap_or_else(|e| unreachable!("Tiny Darknet definition is shape-consistent: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::LayerClass;
    use crate::stats::MacBreakdown;

    #[test]
    fn shapes() {
        let net = tiny_darknet();
        assert_eq!(net.layer("conv1").unwrap().output, Shape::new(16, 224, 224));
        assert_eq!(net.layer("conv12").unwrap().output, Shape::new(512, 14, 14));
        assert_eq!(net.output(), Shape::vector(1000));
    }

    #[test]
    fn table1_row() {
        // Table 1: Conv1 5%, 1x1 13%, FxF 82%.
        let b = MacBreakdown::of(&tiny_darknet());
        assert!((b.percent(LayerClass::FirstConv) - 5.0).abs() < 2.0);
        assert!((b.percent(LayerClass::Pointwise) - 13.0).abs() < 3.0);
        assert!((b.percent(LayerClass::Spatial) - 82.0).abs() < 4.0);
        assert_eq!(b.macs(LayerClass::Depthwise), 0);
    }

    #[test]
    fn params_about_1_million() {
        let p = tiny_darknet().total_params();
        assert!((900_000..1_300_000).contains(&p), "params = {p}");
    }
}
