//! The SqueezeNext family (Gholami et al., 2018) and the five co-design
//! variants (v1..v5) evaluated in Figure 3 of the DAC paper.
//!
//! A SqueezeNext block is a two-stage bottleneck with separable spatial
//! convolutions and a residual shortcut:
//!
//! ```text
//! in ──1×1 (out/2)──1×1 (out/4)──1×3 (out/2)──3×1 (out/2)──1×1 (out)──+──
//!  └────────────────1×1 shortcut when shape changes────────────────────┘
//! ```
//!
//! Exact intermediate channel widths of the historical variants are
//! reconstructed from the SqueezeNext paper's description (see DESIGN.md
//! §3: documented substitution). The co-design transformations the DAC
//! paper studies are faithfully represented:
//!
//! * **v1 → v2**: first-layer filter reduction 7×7 → 5×5;
//! * **v2 → v5**: moving blocks from the low-utilization early stages to
//!   the high-utilization late stages, `[6,6,8,1] → [2,4,14,1]`.

use crate::network::{Network, NetworkBuilder};
use crate::shape::Shape;

/// Configuration of one SqueezeNext model.
#[derive(Debug, Clone, PartialEq)]
pub struct SqueezeNextConfig {
    /// Model name, e.g. `"1.0-SqNxt-23"` or `"1.0-SqNxt-23v2"`.
    pub name: String,
    /// Channel width multiplier (1.0, 1.5, 2.0 published).
    pub width: f64,
    /// Blocks per stage; the baseline 23-layer model is `[6, 6, 8, 1]`.
    pub stage_blocks: [usize; 4],
    /// First-layer filter size (7 in the baseline, 5 after co-design).
    pub conv1_kernel: usize,
    /// Published (or interpolated; see module docs) ImageNet top-1 accuracy.
    pub top1_accuracy: f64,
}

impl SqueezeNextConfig {
    /// The baseline 1.0-SqNxt-23 configuration (identical to [`variant`]
    /// `1`).
    pub fn baseline() -> Self {
        variant_config(1)
    }

    /// Builds the network for this configuration.
    pub fn build(&self) -> Network {
        let w = |c: usize| ((c as f64 * self.width).round() as usize).max(1);
        let mut b = NetworkBuilder::new(self.name.clone(), Shape::new(3, 227, 227));
        b.conv("conv1", w(64), self.conv1_kernel, 2, 0);
        b.max_pool("pool1", 3, 2);

        let stage_channels = [w(32), w(64), w(128), w(256)];
        for (stage, (&blocks, &out)) in
            self.stage_blocks.iter().zip(stage_channels.iter()).enumerate()
        {
            for block in 0..blocks {
                let stride = if stage > 0 && block == 0 { 2 } else { 1 };
                append_block(&mut b, stage + 1, block + 1, out, stride);
            }
        }
        b.pointwise_conv("conv_final", w(128));
        b.global_avg_pool("pool_final");
        b.fully_connected("fc", 1000);
        b.top1_accuracy(self.top1_accuracy);
        b.finish()
            .unwrap_or_else(|e| unreachable!("SqueezeNext definition is shape-consistent: {e}"))
    }
}

/// Appends one SqueezeNext bottleneck block. `stride` is applied at the
/// first reduction conv (and the shortcut).
fn append_block(b: &mut NetworkBuilder, stage: usize, block: usize, out: usize, stride: usize) {
    let p = format!("s{stage}b{block}");
    let in_shape = b.current_shape();
    let block_input = b.last_layer_name().map(str::to_owned);
    let needs_shortcut = stride != 1 || in_shape.channels != out;
    let reduce1 = format!("{p}/reduce1");
    let expand = format!("{p}/expand");
    b.conv(&reduce1, (out / 2).max(1), 1, stride, 0);
    b.pointwise_conv(&format!("{p}/reduce2"), (out / 4).max(1));
    b.conv_rect(&format!("{p}/conv1x3"), (out / 2).max(1), 1, 3, 1);
    b.conv_rect(&format!("{p}/conv3x1"), (out / 2).max(1), 3, 1, 1);
    b.pointwise_conv(&expand, out);
    if needs_shortcut {
        // The shortcut conv reads the block input; append it after the
        // body by branching back to reduce1's input, then merge. The
        // network is a linearized DAG; the accelerator runs layers in
        // order either way.
        let shortcut = format!("{p}/shortcut");
        b.branch_from_input_of(&reduce1);
        b.conv(&shortcut, out, 1, stride, 0);
        b.branch_from(&expand);
        b.eltwise_add(&format!("{p}/add"), Some(&shortcut));
    } else {
        b.eltwise_add(&format!("{p}/add"), block_input.as_deref());
    }
}

/// Builds co-design variant `v` (1..=5) of 1.0-SqNxt-23, as swept in
/// Figure 3.
///
/// # Panics
///
/// Panics if `v` is not in `1..=5`.
pub fn squeezenext_variant(v: usize) -> Network {
    variant_config(v).build()
}

fn variant_config(v: usize) -> SqueezeNextConfig {
    // Depth reallocation and accuracy trajectory: the DAC paper reports the
    // optimized variants have "slightly better accuracy", ending at 59.2 %
    // top-1. Intermediate accuracies are interpolated (documented
    // assumption).
    assert!((1..=5).contains(&v), "SqueezeNext variant must be in 1..=5, got {v}");
    let (stage_blocks, conv1_kernel, acc) = match v {
        1 => ([6, 6, 8, 1], 7, 58.2),
        2 => ([6, 6, 8, 1], 5, 58.5),
        3 => ([4, 8, 8, 1], 5, 58.9),
        4 => ([2, 10, 8, 1], 5, 59.1),
        _ => ([2, 4, 14, 1], 5, 59.2),
    };
    SqueezeNextConfig {
        name: format!("1.0-SqNxt-23v{v}"),
        width: 1.0,
        stage_blocks,
        conv1_kernel,
        top1_accuracy: acc,
    }
}

/// Builds the final co-designed model (`1.0-SqNxt-23v5`) — "SqueezeNext"
/// in the paper's Tables 1 and 2.
pub fn squeezenext() -> Network {
    squeezenext_variant(5)
}

/// All five Figure-3 variants in order v1..v5.
pub fn squeezenext_variants() -> Vec<Network> {
    (1..=5).map(squeezenext_variant).collect()
}

/// The width/depth family plotted in Figure 4.
///
/// Depth configurations for the 34- and 44-layer models and accuracies for
/// the scaled models follow the SqueezeNext paper (±: reconstructed, see
/// module docs).
pub fn squeezenext_family() -> Vec<Network> {
    let points = [
        ("1.0-SqNxt-23", 1.0, [2, 4, 14, 1], 59.2),
        ("1.0-SqNxt-34", 1.0, [8, 10, 12, 2], 61.4),
        ("1.0-SqNxt-44", 1.0, [10, 14, 16, 2], 62.6),
        ("1.5-SqNxt-23", 1.5, [2, 4, 14, 1], 63.5),
        ("2.0-SqNxt-23", 2.0, [2, 4, 14, 1], 67.2),
    ];
    points
        .iter()
        .map(|(name, width, blocks, acc)| {
            SqueezeNextConfig {
                name: (*name).to_owned(),
                width: *width,
                stage_blocks: *blocks,
                conv1_kernel: 5,
                top1_accuracy: *acc,
            }
            .build()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::LayerClass;
    use crate::stats::MacBreakdown;

    #[test]
    fn baseline_shapes() {
        let net = squeezenext_variant(1);
        assert_eq!(net.layer("conv1").unwrap().output, Shape::new(64, 111, 111));
        // Stage 1 keeps 55x55 with 32 channels.
        assert_eq!(net.layer("s1b1/add").unwrap().output.channels, 32);
        // Stage 4 output is 256 channels at 7x7.
        let s4 = net.layer("s4b1/add").unwrap().output;
        assert_eq!(s4.channels, 256);
        assert_eq!(net.output(), Shape::vector(1000));
    }

    #[test]
    fn table1_row_for_v5() {
        // Table 1 SqueezeNext: Conv1 16%, 1x1 44%, FxF 40%, DW 0%.
        // Our reconstruction (parameters match the published 0.72 M, MACs
        // land at 224 M) weights conv1 more heavily (26.9/39.2/33.9) —
        // the paper's exact channel widths are unpublished. Assert the
        // qualitative shape: no DW, 1x1 > FxF, all three classes
        // significant. The absolute delta is recorded in EXPERIMENTS.md.
        let b = MacBreakdown::of(&squeezenext());
        assert_eq!(b.macs(LayerClass::Depthwise), 0);
        assert_eq!(b.macs(LayerClass::FullyConnected), 128 * 1000);
        assert!(b.percent(LayerClass::FirstConv) > 10.0);
        assert!(b.percent(LayerClass::Pointwise) > b.percent(LayerClass::Spatial));
        assert!(b.percent(LayerClass::Spatial) > 25.0);
    }

    #[test]
    fn v2_shrinks_first_layer_only() {
        let v1 = squeezenext_variant(1);
        let v2 = squeezenext_variant(2);
        let c1v1 = v1.layer("conv1").unwrap().macs();
        let c1v2 = v2.layer("conv1").unwrap().macs();
        assert!(c1v2 * 3 < c1v1 * 2, "5x5 should cut conv1 MACs by ~half");
        // Block structure unchanged.
        assert_eq!(
            v1.layers().iter().filter(|l| l.name.contains("reduce1")).count(),
            v2.layers().iter().filter(|l| l.name.contains("reduce1")).count()
        );
    }

    #[test]
    fn v5_reallocates_depth_to_late_stages() {
        let v5 = squeezenext_variant(5);
        let count = |stage: usize| {
            v5.layers()
                .iter()
                .filter(|l| l.name.starts_with(&format!("s{stage}b")) && l.name.ends_with("add"))
                .count()
        };
        assert_eq!(count(1), 2);
        assert_eq!(count(2), 4);
        assert_eq!(count(3), 14);
        assert_eq!(count(4), 1);
    }

    #[test]
    fn variants_keep_total_macs_similar() {
        // "a very small change in the overall MACs used in inference"
        let v1 = squeezenext_variant(1).total_macs() as f64;
        for v in 2..=5 {
            let m = squeezenext_variant(v).total_macs() as f64;
            assert!(
                (m / v1 - 1.0).abs() < 0.30,
                "variant {v}: {m} vs baseline {v1} differs by more than 30%"
            );
        }
    }

    #[test]
    fn params_are_sub_alexnet() {
        // SqueezeNext-23 is designed for small model size (~0.7 M params).
        let p = squeezenext().total_params();
        assert!(p < 2_000_000, "params = {p}");
    }

    #[test]
    fn family_is_monotone_in_accuracy_and_macs() {
        let family = squeezenext_family();
        assert_eq!(family.len(), 5);
        for net in &family {
            assert!(net.top1_accuracy().is_some());
        }
        // Wider models cost more MACs.
        let m10 = family[0].total_macs();
        let m15 = family[3].total_macs();
        let m20 = family[4].total_macs();
        assert!(m10 < m15 && m15 < m20);
    }

    #[test]
    #[should_panic(expected = "variant must be in 1..=5")]
    fn variant_bounds() {
        let _ = squeezenext_variant(6);
    }

    #[test]
    fn shortcuts_exist_only_on_shape_change() {
        let net = squeezenext_variant(1);
        // First block of stage 1 changes channels 64 -> 32: shortcut.
        assert!(net.layer("s1b1/shortcut").is_some());
        // Second block of stage 1 is identity: no shortcut.
        assert!(net.layer("s1b2/shortcut").is_none());
        // First block of stage 2 strides: shortcut.
        assert!(net.layer("s2b1/shortcut").is_some());
    }
}
