//! SqueezeDet detection trunk (Wu et al., CVPR-W 2017 — reference [18]
//! of the paper).
//!
//! §2 motivates it: "object detection and semantic segmentation are more
//! sensitive to image resolutions ... their input size can range from
//! hundreds to thousands of pixels, and the intermediate feature map
//! usually cannot be over sub-sampled ... As a result, DNN for object
//! detection ... have much larger memory footprint." SqueezeDet is the
//! paper authors' own detector: a SqueezeNet backbone on a KITTI-sized
//! 1242×375 image plus the fully-convolutional ConvDet head.

use crate::network::{Network, NetworkBuilder};
use crate::shape::Shape;

/// Number of anchors per ConvDet output position.
const ANCHORS_PER_GRID: usize = 9;
/// KITTI classes (car, cyclist, pedestrian).
const CLASSES: usize = 3;

/// Builds the SqueezeDet trunk for KITTI-resolution (3×375×1242) object
/// detection.
///
/// The ConvDet head emits, per grid cell, `ANCHORS_PER_GRID` anchors ×
/// (`CLASSES` class scores + 1 confidence + 4 box deltas). No accuracy
/// metadata is attached (detection mAP is not comparable to the
/// classification spectrum of Figure 4).
pub fn squeezedet_trunk() -> Network {
    let outputs = ANCHORS_PER_GRID * (CLASSES + 1 + 4);
    NetworkBuilder::new("SqueezeDet trunk", Shape::new(3, 375, 1242))
        .conv("conv1", 64, 3, 2, 0)
        .max_pool("pool1", 3, 2)
        .fire("fire2", 16, 64, 64)
        .fire("fire3", 16, 64, 64)
        .max_pool("pool3", 3, 2)
        .fire("fire4", 32, 128, 128)
        .fire("fire5", 32, 128, 128)
        .max_pool("pool5", 3, 2)
        .fire("fire6", 48, 192, 192)
        .fire("fire7", 48, 192, 192)
        .fire("fire8", 64, 256, 256)
        .fire("fire9", 64, 256, 256)
        // SqueezeDet appends two extra fire modules to grow the receptive
        // field without further down-sampling.
        .fire("fire10", 96, 384, 384)
        .fire("fire11", 96, 384, 384)
        .conv("convdet", outputs, 3, 1, 1)
        .finish()
        .unwrap_or_else(|e| unreachable!("SqueezeDet trunk definition is shape-consistent: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::peak_activation_bytes;
    use crate::zoo::squeezenet_v1_1;

    #[test]
    fn keeps_spatial_detail() {
        // §2: detection feature maps "cannot be over sub-sampled" — the
        // final grid keeps hundreds of cells.
        let net = squeezedet_trunk();
        let out = net.output();
        assert_eq!(out.channels, 9 * 8);
        assert!(out.plane() > 1000, "detection grid is {out}");
    }

    #[test]
    fn memory_footprint_dwarfs_classification() {
        // §2: "much larger memory footprint".
        let det = peak_activation_bytes(&squeezedet_trunk(), 2);
        let cls = peak_activation_bytes(&squeezenet_v1_1(), 2);
        assert!(det > 5 * cls, "detection {det} vs classification {cls}");
    }

    #[test]
    fn macs_scale_with_resolution() {
        let det = squeezedet_trunk().total_macs();
        let cls = squeezenet_v1_1().total_macs();
        assert!(det > 5 * cls, "detection {det} vs classification {cls}");
    }

    #[test]
    fn convdet_is_the_head() {
        let net = squeezedet_trunk();
        let head = net.layer("convdet").unwrap();
        assert_eq!(head.output.channels, 72);
        assert_eq!(head.input.channels, 768);
    }
}
