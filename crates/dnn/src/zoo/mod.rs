//! The model zoo: every DNN evaluated in the paper, built from scratch
//! with the shape-checked [`crate::NetworkBuilder`].

mod alexnet;
mod darknet;
mod mobilenet;
mod squeezedet;
mod squeezenet;
mod squeezenext;

pub use alexnet::alexnet;
pub use darknet::tiny_darknet;
pub use mobilenet::{
    mobilenet, mobilenet_family, mobilenet_resolution, mobilenet_resolution_family, mobilenet_v1,
};
pub use squeezedet::squeezedet_trunk;
pub use squeezenet::{squeezenet_v1_0, squeezenet_v1_1};
pub use squeezenext::{
    squeezenext, squeezenext_family, squeezenext_variant, squeezenext_variants, SqueezeNextConfig,
};

use crate::network::Network;

/// The six networks of Tables 1 and 2, in the paper's row order.
pub fn table_networks() -> Vec<Network> {
    vec![
        alexnet(),
        mobilenet_v1(),
        tiny_darknet(),
        squeezenet_v1_0(),
        squeezenet_v1_1(),
        squeezenext(),
    ]
}

/// Looks up a zoo network by (case-insensitive) name.
///
/// Recognized names include `"alexnet"`, `"mobilenet"`,
/// `"tiny-darknet"`, `"squeezenet-v1.0"`, `"squeezenet-v1.1"`,
/// `"squeezenext"` and `"sqnxt-23v1"` .. `"sqnxt-23v5"`.
pub fn by_name(name: &str) -> Option<Network> {
    let key: String =
        name.to_ascii_lowercase().chars().filter(|c| c.is_ascii_alphanumeric()).collect();
    let net = match key.as_str() {
        "alexnet" => alexnet(),
        "mobilenet" | "mobilenetv1" | "10mobilenet224" => mobilenet_v1(),
        "tinydarknet" | "darknet" => tiny_darknet(),
        "squeezenet" | "squeezenetv10" => squeezenet_v1_0(),
        "squeezenetv11" => squeezenet_v1_1(),
        "squeezenext" | "10sqnxt23" => squeezenext(),
        "squeezedet" | "squeezedettrunk" => squeezedet_trunk(),
        "sqnxt23v1" | "10sqnxt23v1" => squeezenext_variant(1),
        "sqnxt23v2" | "10sqnxt23v2" => squeezenext_variant(2),
        "sqnxt23v3" | "10sqnxt23v3" => squeezenext_variant(3),
        "sqnxt23v4" | "10sqnxt23v4" => squeezenext_variant(4),
        "sqnxt23v5" | "10sqnxt23v5" => squeezenext_variant(5),
        _ => return None,
    };
    Some(net)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_networks_are_the_six_rows() {
        let nets = table_networks();
        let names: Vec<&str> = nets.iter().map(|n| n.name()).collect();
        assert_eq!(
            names,
            [
                "AlexNet",
                "1.00-MobileNet-224",
                "Tiny Darknet",
                "SqueezeNet v1.0",
                "SqueezeNet v1.1",
                "1.0-SqNxt-23v5",
            ]
        );
    }

    #[test]
    fn lookup_is_forgiving() {
        assert!(by_name("AlexNet").is_some());
        assert!(by_name("squeezenet-v1.1").is_some());
        assert!(by_name("SqNxt-23v3").is_some());
        assert!(by_name("MobileNet").is_some());
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn every_zoo_network_classifies_to_1000_classes() {
        for net in table_networks() {
            assert_eq!(net.output().elements(), 1000, "{}", net.name());
        }
    }

    #[test]
    fn every_zoo_network_has_positive_macs() {
        for net in table_networks() {
            assert!(net.total_macs() > 10_000_000, "{}", net.name());
        }
    }
}
