//! AlexNet (Krizhevsky et al., NIPS 2012), Caffe single-tower layout with
//! the original two-GPU grouping on conv2/4/5.
//!
//! The paper evaluates AlexNet "just for comparison": its fat-and-shallow
//! architecture and three large FC layers make it unrepresentative of
//! modern embedded vision workloads (73 % of its runtime and 80 % of its
//! energy are FC at batch 1).

use crate::network::{Network, NetworkBuilder};
use crate::shape::Shape;

/// Builds AlexNet for 227×227 ImageNet inference.
///
/// # Examples
///
/// ```
/// let net = codesign_dnn::zoo::alexnet();
/// assert_eq!(net.name(), "AlexNet");
/// ```
pub fn alexnet() -> Network {
    NetworkBuilder::new("AlexNet", Shape::new(3, 227, 227))
        .conv("conv1", 96, 11, 4, 0)
        .max_pool("pool1", 3, 2)
        .grouped_conv("conv2", 256, 5, 1, 2, 2)
        .max_pool("pool2", 3, 2)
        .conv("conv3", 384, 3, 1, 1)
        .grouped_conv("conv4", 384, 3, 1, 1, 2)
        .grouped_conv("conv5", 256, 3, 1, 1, 2)
        .max_pool("pool5", 3, 2)
        .fully_connected("fc6", 4096)
        .fully_connected("fc7", 4096)
        .fully_connected("fc8", 1000)
        .top1_accuracy(57.2)
        .finish()
        .unwrap_or_else(|e| unreachable!("AlexNet definition is shape-consistent: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::LayerClass;
    use crate::stats::MacBreakdown;

    #[test]
    fn shapes_match_the_published_table() {
        let net = alexnet();
        assert_eq!(net.layer("conv1").unwrap().output, Shape::new(96, 55, 55));
        assert_eq!(net.layer("conv2").unwrap().output, Shape::new(256, 27, 27));
        assert_eq!(net.layer("conv5").unwrap().output, Shape::new(256, 13, 13));
        assert_eq!(net.layer("fc6").unwrap().input, Shape::new(256, 6, 6));
        assert_eq!(net.output(), Shape::vector(1000));
    }

    #[test]
    fn parameter_count_is_about_61_million() {
        let params = alexnet().total_params();
        assert!((58_000_000..64_000_000).contains(&params), "params = {params}");
    }

    #[test]
    fn macs_are_about_0_7_billion() {
        let macs = alexnet().total_macs();
        assert!((650_000_000..800_000_000).contains(&macs), "macs = {macs}");
    }

    #[test]
    fn breakdown_shape_matches_table1_row() {
        // Table 1: Conv1 20%, 1x1 0%, FxF 69%, DW 0%. Our grouped-conv
        // accounting lands close; assert the qualitative shape.
        let b = MacBreakdown::of(&alexnet());
        assert_eq!(b.macs(LayerClass::Pointwise), 0);
        assert_eq!(b.macs(LayerClass::Depthwise), 0);
        assert!(b.percent(LayerClass::FirstConv) > 10.0);
        assert!(b.percent(LayerClass::Spatial) > 60.0);
        assert!(b.percent(LayerClass::FullyConnected) > 5.0);
    }
}
