//! Layer descriptors and per-layer operation accounting.

use std::fmt;

use crate::shape::{conv_out_dim, pool_out_dim_ceil, Shape};

/// Two-dimensional kernel extent (`height × width`).
///
/// SqueezeNext uses separable `1×3` / `3×1` kernels, so the two extents are
/// tracked independently.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Kernel {
    /// Kernel height in pixels.
    pub height: usize,
    /// Kernel width in pixels.
    pub width: usize,
}

impl Kernel {
    /// Creates a possibly non-square kernel.
    pub const fn new(height: usize, width: usize) -> Self {
        Self { height, width }
    }

    /// Creates a square `k × k` kernel.
    pub const fn square(k: usize) -> Self {
        Self::new(k, k)
    }

    /// Number of taps (`height * width`).
    pub const fn taps(&self) -> usize {
        self.height * self.width
    }

    /// Whether this is a `1×1` (pointwise) kernel.
    pub const fn is_pointwise(&self) -> bool {
        self.height == 1 && self.width == 1
    }
}

impl fmt::Display for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", self.height, self.width)
    }
}

/// Parameters of a convolution layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConvSpec {
    /// Number of output channels.
    pub out_channels: usize,
    /// Kernel extent.
    pub kernel: Kernel,
    /// Spatial stride (same in both dimensions).
    pub stride: usize,
    /// Zero padding above and below (rows added on each side).
    pub pad_h: usize,
    /// Zero padding left and right (columns added on each side).
    pub pad_w: usize,
    /// Number of filter groups. `1` is a dense convolution; equal to the
    /// channel count it is a depthwise convolution (AlexNet uses `2`).
    pub groups: usize,
}

/// Pooling flavor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PoolKind {
    /// Max pooling (Caffe ceil-mode output rounding).
    Max,
    /// Average pooling (floor-mode output rounding).
    Average,
}

/// The operation a [`Layer`] performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayerOp {
    /// Convolution (dense, grouped, or depthwise; square or separable).
    Conv(ConvSpec),
    /// Fully-connected layer producing `out_features` activations.
    FullyConnected {
        /// Number of output activations.
        out_features: usize,
    },
    /// Spatial pooling window.
    Pool {
        /// Max or average.
        kind: PoolKind,
        /// Window extent (square).
        kernel: usize,
        /// Window stride.
        stride: usize,
        /// Zero padding.
        pad: usize,
    },
    /// Global average pooling down to `c × 1 × 1`.
    GlobalAvgPool,
    /// Element-wise addition with the output of an earlier layer
    /// (residual shortcut); shape preserving.
    EltwiseAdd,
    /// Channel concatenation marker; shape bookkeeping for fire modules.
    /// `extra_channels` are appended to the input channel count.
    Concat {
        /// Channels contributed by the other branch.
        extra_channels: usize,
    },
}

/// The paper's Table-1 taxonomy of layer types, extended with the
/// non-convolutional categories needed for whole-network accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LayerClass {
    /// The first convolution layer of a network (large input, few input
    /// channels).
    FirstConv,
    /// `1×1` (pointwise) dense convolution.
    Pointwise,
    /// `F×F` (or separable `1×F`/`F×1`) dense or grouped convolution with
    /// `F > 1`, other than the first layer.
    Spatial,
    /// Depthwise convolution.
    Depthwise,
    /// Fully-connected layer.
    FullyConnected,
    /// Anything with negligible MACs (pooling, element-wise, concat).
    Other,
}

impl LayerClass {
    /// All classes in display order (Table 1 order, then FC and Other).
    pub const ALL: [LayerClass; 6] = [
        LayerClass::FirstConv,
        LayerClass::Pointwise,
        LayerClass::Spatial,
        LayerClass::Depthwise,
        LayerClass::FullyConnected,
        LayerClass::Other,
    ];
}

impl fmt::Display for LayerClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LayerClass::FirstConv => "Conv1",
            LayerClass::Pointwise => "1x1",
            LayerClass::Spatial => "FxF",
            LayerClass::Depthwise => "DW",
            LayerClass::FullyConnected => "FC",
            LayerClass::Other => "Other",
        };
        f.write_str(s)
    }
}

/// One layer of a network: an operation plus its resolved input and output
/// shapes.
///
/// Layers are produced by [`crate::NetworkBuilder`], which performs shape
/// inference and validation; the fields here are therefore always
/// consistent with each other.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Layer {
    /// Human-readable unique name (e.g. `"fire2/expand3x3"`).
    pub name: String,
    /// The operation performed.
    pub op: LayerOp,
    /// Shape of the input feature map.
    pub input: Shape,
    /// Shape of the output feature map.
    pub output: Shape,
    /// Whether this is the first convolution of the network.
    pub is_first_conv: bool,
    /// Name of the layer producing this layer's (primary) input; `None`
    /// when the layer reads the network input.
    pub primary_input: Option<String>,
    /// For merge layers ([`LayerOp::Concat`], [`LayerOp::EltwiseAdd`]):
    /// the name of the layer producing the second operand. `None` for
    /// non-merge layers, or when the merge reads the network input.
    pub extra_input: Option<String>,
}

impl Layer {
    /// Multiply-accumulate operations performed by this layer.
    ///
    /// Pooling, element-wise and concat layers report `0`: the paper treats
    /// them as negligible ("very small computational complexity ...
    /// processed in a 1D SIMD manner").
    pub fn macs(&self) -> u64 {
        match self.op {
            LayerOp::Conv(spec) => {
                let per_output = spec.kernel.taps() * self.input.channels / spec.groups;
                (self.output.elements() * per_output) as u64
            }
            LayerOp::FullyConnected { .. } => (self.input.elements() * self.output.channels) as u64,
            _ => 0,
        }
    }

    /// Number of weight parameters (biases excluded; they are negligible
    /// and the paper's model sizes track weights).
    pub fn params(&self) -> u64 {
        match self.op {
            LayerOp::Conv(spec) => {
                let per_filter = spec.kernel.taps() * self.input.channels / spec.groups;
                (per_filter * spec.out_channels) as u64
            }
            LayerOp::FullyConnected { out_features } => {
                (self.input.elements() * out_features) as u64
            }
            _ => 0,
        }
    }

    /// Whether this layer is a depthwise convolution.
    pub fn is_depthwise(&self) -> bool {
        match self.op {
            LayerOp::Conv(spec) => {
                spec.groups > 1
                    && spec.groups == self.input.channels
                    && spec.groups == spec.out_channels
            }
            _ => false,
        }
    }

    /// The Table-1 class of this layer.
    pub fn class(&self) -> LayerClass {
        match self.op {
            LayerOp::Conv(spec) => {
                if self.is_first_conv {
                    LayerClass::FirstConv
                } else if self.is_depthwise() {
                    LayerClass::Depthwise
                } else if spec.kernel.is_pointwise() {
                    LayerClass::Pointwise
                } else {
                    LayerClass::Spatial
                }
            }
            LayerOp::FullyConnected { .. } => LayerClass::FullyConnected,
            _ => LayerClass::Other,
        }
    }

    /// Whether the layer performs any MAC work that the PE array can
    /// accelerate (convolutions and fully-connected layers).
    pub fn is_compute(&self) -> bool {
        matches!(self.op, LayerOp::Conv(_) | LayerOp::FullyConnected { .. })
    }

    /// Convolution spec if this is a convolution layer.
    pub fn conv_spec(&self) -> Option<&ConvSpec> {
        match &self.op {
            LayerOp::Conv(spec) => Some(spec),
            _ => None,
        }
    }
}

impl fmt::Display for Layer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {} -> {}", self.name, self.input, self.output)
    }
}

/// Infers the output shape of `op` applied to `input`.
///
/// Returns `None` when the operation does not fit the input (e.g. kernel
/// larger than the padded feature map, channel counts not divisible by the
/// group count).
pub fn infer_output(op: &LayerOp, input: Shape) -> Option<Shape> {
    match *op {
        LayerOp::Conv(spec) => {
            if spec.groups == 0
                || spec.out_channels == 0
                || !input.channels.is_multiple_of(spec.groups)
                || spec.out_channels % spec.groups != 0
            {
                return None;
            }
            let oh = conv_out_dim(input.height, spec.kernel.height, spec.stride, spec.pad_h)?;
            let ow = conv_out_dim(input.width, spec.kernel.width, spec.stride, spec.pad_w)?;
            Some(Shape::new(spec.out_channels, oh, ow))
        }
        LayerOp::FullyConnected { out_features } => {
            if out_features == 0 {
                None
            } else {
                Some(Shape::vector(out_features))
            }
        }
        LayerOp::Pool { kind, kernel, stride, pad } => {
            let dim = match kind {
                PoolKind::Max => pool_out_dim_ceil,
                PoolKind::Average => conv_out_dim,
            };
            let oh = dim(input.height, kernel, stride, pad)?;
            let ow = dim(input.width, kernel, stride, pad)?;
            Some(Shape::new(input.channels, oh, ow))
        }
        LayerOp::GlobalAvgPool => Some(Shape::vector(input.channels)),
        LayerOp::EltwiseAdd => Some(input),
        LayerOp::Concat { extra_channels } => {
            Some(Shape::new(input.channels + extra_channels, input.height, input.width))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conv(out: usize, k: usize, s: usize, p: usize, groups: usize) -> LayerOp {
        LayerOp::Conv(ConvSpec {
            out_channels: out,
            kernel: Kernel::square(k),
            stride: s,
            pad_h: p,
            pad_w: p,
            groups,
        })
    }

    fn layer(op: LayerOp, input: Shape, first: bool) -> Layer {
        let output = infer_output(&op, input).expect("valid layer");
        Layer {
            name: "t".into(),
            op,
            input,
            output,
            is_first_conv: first,
            primary_input: None,
            extra_input: None,
        }
    }

    #[test]
    fn alexnet_conv1_macs() {
        // 227x227x3, 11x11 s4, 96 filters -> 55x55x96, 105.4 M MACs.
        let l = layer(conv(96, 11, 4, 0, 1), Shape::new(3, 227, 227), true);
        assert_eq!(l.output, Shape::new(96, 55, 55));
        assert_eq!(l.macs(), 55 * 55 * 11 * 11 * 3 * 96);
        assert_eq!(l.params(), 11 * 11 * 3 * 96);
        assert_eq!(l.class(), LayerClass::FirstConv);
    }

    #[test]
    fn grouped_conv_halves_macs() {
        let dense = layer(conv(256, 5, 1, 2, 1), Shape::new(96, 27, 27), false);
        let grouped = layer(conv(256, 5, 1, 2, 2), Shape::new(96, 27, 27), false);
        assert_eq!(dense.macs(), 2 * grouped.macs());
        assert_eq!(dense.params(), 2 * grouped.params());
        assert_eq!(grouped.class(), LayerClass::Spatial);
    }

    #[test]
    fn depthwise_classification() {
        let dw = LayerOp::Conv(ConvSpec {
            out_channels: 32,
            kernel: Kernel::square(3),
            stride: 1,
            pad_h: 1,
            pad_w: 1,
            groups: 32,
        });
        let l = layer(dw, Shape::new(32, 112, 112), false);
        assert!(l.is_depthwise());
        assert_eq!(l.class(), LayerClass::Depthwise);
        // One filter tap set per channel.
        assert_eq!(l.macs(), 112 * 112 * 9 * 32);
        assert_eq!(l.params(), 9 * 32);
    }

    #[test]
    fn pointwise_classification() {
        let l = layer(conv(64, 1, 1, 0, 1), Shape::new(96, 55, 55), false);
        assert_eq!(l.class(), LayerClass::Pointwise);
        assert_eq!(l.macs(), 55 * 55 * 96 * 64);
    }

    #[test]
    fn separable_kernels_are_spatial() {
        let op = LayerOp::Conv(ConvSpec {
            out_channels: 32,
            kernel: Kernel::new(1, 3),
            stride: 1,
            pad_h: 0,
            pad_w: 0,
            groups: 1,
        });
        let input = Shape::new(16, 28, 28);
        let out = infer_output(&op, input).unwrap();
        assert_eq!(out, Shape::new(32, 28, 26));
        let l = Layer {
            name: "sep".into(),
            op,
            input,
            output: out,
            is_first_conv: false,
            primary_input: None,
            extra_input: None,
        };
        assert_eq!(l.class(), LayerClass::Spatial);
        assert_eq!(l.macs(), (28 * 26 * 3 * 16 * 32) as u64);
    }

    #[test]
    fn fc_macs_and_class() {
        let op = LayerOp::FullyConnected { out_features: 4096 };
        let l = layer(op, Shape::new(256, 6, 6), false);
        assert_eq!(l.output, Shape::vector(4096));
        assert_eq!(l.macs(), 256 * 6 * 6 * 4096);
        assert_eq!(l.class(), LayerClass::FullyConnected);
    }

    #[test]
    fn pool_and_concat_have_no_macs() {
        let pool = layer(
            LayerOp::Pool { kind: PoolKind::Max, kernel: 3, stride: 2, pad: 0 },
            Shape::new(96, 55, 55),
            false,
        );
        assert_eq!(pool.macs(), 0);
        assert_eq!(pool.class(), LayerClass::Other);
        assert_eq!(pool.output, Shape::new(96, 27, 27));

        let cat = layer(LayerOp::Concat { extra_channels: 64 }, Shape::new(64, 55, 55), false);
        assert_eq!(cat.output.channels, 128);
        assert_eq!(cat.macs(), 0);
    }

    #[test]
    fn infer_rejects_bad_groups() {
        assert_eq!(infer_output(&conv(64, 3, 1, 1, 5), Shape::new(96, 28, 28)), None);
        assert_eq!(infer_output(&conv(65, 3, 1, 1, 2), Shape::new(96, 28, 28)), None);
        assert_eq!(infer_output(&conv(64, 3, 1, 1, 0), Shape::new(96, 28, 28)), None);
    }

    #[test]
    fn infer_rejects_oversized_kernel() {
        assert_eq!(infer_output(&conv(64, 9, 1, 0, 1), Shape::new(3, 5, 5)), None);
    }

    #[test]
    fn eltwise_preserves_shape() {
        let s = Shape::new(32, 28, 28);
        assert_eq!(infer_output(&LayerOp::EltwiseAdd, s), Some(s));
    }

    #[test]
    fn global_pool_vectorizes() {
        assert_eq!(
            infer_output(&LayerOp::GlobalAvgPool, Shape::new(1000, 13, 13)),
            Some(Shape::vector(1000))
        );
    }

    #[test]
    fn class_display_matches_table1_headers() {
        assert_eq!(LayerClass::FirstConv.to_string(), "Conv1");
        assert_eq!(LayerClass::Pointwise.to_string(), "1x1");
        assert_eq!(LayerClass::Spatial.to_string(), "FxF");
        assert_eq!(LayerClass::Depthwise.to_string(), "DW");
    }
}
