//! Feature-map shape algebra.
//!
//! All shapes in this crate describe a single image (batch size 1, the
//! paper's evaluation setting) in channel-height-width order.

use std::fmt;

/// Shape of a feature map: `channels × height × width`.
///
/// # Examples
///
/// ```
/// use codesign_dnn::Shape;
///
/// let s = Shape::new(3, 227, 227);
/// assert_eq!(s.elements(), 3 * 227 * 227);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Shape {
    /// Number of channels.
    pub channels: usize,
    /// Spatial height in pixels.
    pub height: usize,
    /// Spatial width in pixels.
    pub width: usize,
}

impl Shape {
    /// Creates a new shape.
    pub const fn new(channels: usize, height: usize, width: usize) -> Self {
        Self { channels, height, width }
    }

    /// Creates a `channels × 1 × 1` shape, as produced by global pooling or
    /// consumed by fully-connected layers.
    pub const fn vector(channels: usize) -> Self {
        Self::new(channels, 1, 1)
    }

    /// Total number of scalar elements.
    pub const fn elements(&self) -> usize {
        self.channels * self.height * self.width
    }

    /// Number of pixels in one channel plane.
    pub const fn plane(&self) -> usize {
        self.height * self.width
    }

    /// Size in bytes when stored with `bytes_per_element`-byte elements
    /// (the Squeezelerator uses 16-bit integers, i.e. 2 bytes).
    pub const fn bytes(&self, bytes_per_element: usize) -> usize {
        self.elements() * bytes_per_element
    }

    /// Whether this is a `c × 1 × 1` vector shape.
    pub const fn is_vector(&self) -> bool {
        self.height == 1 && self.width == 1
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}x{}", self.channels, self.height, self.width)
    }
}

/// Computes one spatial output dimension of a convolution or pooling
/// window: `floor((in + 2*pad - kernel) / stride) + 1`.
///
/// Returns `None` when the window does not fit even once (the layer is
/// malformed) or `stride == 0`.
///
/// # Examples
///
/// ```
/// use codesign_dnn::shape::conv_out_dim;
///
/// // AlexNet conv1: 227 input, 11x11 kernel, stride 4, no padding -> 55.
/// assert_eq!(conv_out_dim(227, 11, 4, 0), Some(55));
/// ```
pub fn conv_out_dim(input: usize, kernel: usize, stride: usize, pad: usize) -> Option<usize> {
    if stride == 0 || kernel == 0 {
        return None;
    }
    let padded = input + 2 * pad;
    if padded < kernel {
        return None;
    }
    Some((padded - kernel) / stride + 1)
}

/// Computes a pooling output dimension with ceil-mode rounding, as used by
/// Caffe-style max pooling (`ceil((in + 2*pad - kernel) / stride) + 1`).
///
/// Returns `None` for malformed parameters, as [`conv_out_dim`] does.
pub fn pool_out_dim_ceil(input: usize, kernel: usize, stride: usize, pad: usize) -> Option<usize> {
    if stride == 0 || kernel == 0 {
        return None;
    }
    let padded = input + 2 * pad;
    if padded < kernel {
        return None;
    }
    Some((padded - kernel).div_ceil(stride) + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_c_h_w() {
        assert_eq!(Shape::new(3, 227, 227).to_string(), "3x227x227");
    }

    #[test]
    fn elements_and_bytes() {
        let s = Shape::new(64, 55, 55);
        assert_eq!(s.elements(), 64 * 55 * 55);
        assert_eq!(s.bytes(2), 2 * 64 * 55 * 55);
        assert_eq!(s.plane(), 55 * 55);
    }

    #[test]
    fn vector_shape() {
        let v = Shape::vector(1000);
        assert!(v.is_vector());
        assert_eq!(v.elements(), 1000);
        assert!(!Shape::new(1000, 2, 1).is_vector());
    }

    #[test]
    fn conv_out_dim_basic() {
        // SqueezeNet conv1: 227, 7x7, stride 2 -> 111.
        assert_eq!(conv_out_dim(227, 7, 2, 0), Some(111));
        // Same-padding 3x3 stride 1.
        assert_eq!(conv_out_dim(13, 3, 1, 1), Some(13));
        // 1x1 stride 1 preserves size.
        assert_eq!(conv_out_dim(55, 1, 1, 0), Some(55));
    }

    #[test]
    fn conv_out_dim_rejects_malformed() {
        assert_eq!(conv_out_dim(5, 7, 1, 0), None);
        assert_eq!(conv_out_dim(5, 3, 0, 0), None);
        assert_eq!(conv_out_dim(5, 0, 1, 0), None);
        // Padding can make a too-small input legal.
        assert_eq!(conv_out_dim(5, 7, 1, 1), Some(1));
    }

    #[test]
    fn pool_ceil_mode_rounds_up() {
        // SqueezeNet pool1: 111, 3x3, stride 2, ceil -> 55.
        assert_eq!(pool_out_dim_ceil(111, 3, 2, 0), Some(55));
        // 13 -> with 3x3 s2 ceil: (13-3)/2 ceil = 5, +1 = 6.
        assert_eq!(pool_out_dim_ceil(13, 3, 2, 0), Some(6));
        // Floor-mode comparison: conv_out_dim gives 6 for 13? (13-3)/2+1 = 6 too.
        assert_eq!(conv_out_dim(13, 3, 2, 0), Some(6));
        // A case where they differ: input 6, 3x3 s2: floor -> 2, ceil -> 3.
        assert_eq!(conv_out_dim(6, 3, 2, 0), Some(2));
        assert_eq!(pool_out_dim_ceil(6, 3, 2, 0), Some(3));
    }

    #[test]
    fn ordering_and_hash_derives_exist() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(Shape::new(1, 2, 3));
        assert!(set.contains(&Shape::new(1, 2, 3)));
        assert!(Shape::new(1, 2, 3) < Shape::new(2, 0, 0));
    }
}
