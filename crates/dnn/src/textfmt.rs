//! A plain-text network description format.
//!
//! Lets users bring their own models to the simulator without writing
//! Rust: one directive per line, darknet-cfg-flavored, built through the
//! same shape-checked [`NetworkBuilder`] as the zoo.
//!
//! ```text
//! # mini classifier
//! network mini 3x32x32
//! conv      conv1   16 3x3 s2 p1
//! maxpool   pool1   3 s2
//! fire      fire2   8 16 16
//! depthwise dw3     3 s1 p1
//! pointwise pw4     32
//! gap       pool4
//! fc        logits  10
//! accuracy  61.5
//! ```
//!
//! Grammar per line (whitespace separated, `#` starts a comment):
//!
//! Layer names must not contain whitespace; the network name may.
//!
//! | directive | operands |
//! |---|---|
//! | `network` | name, input `CxHxW` |
//! | `conv` | name, out-channels, `KxK` (or `KhxKw`), `s<stride>`, `p<pad>`, optional `g<groups>` |
//! | `pointwise` | name, out-channels |
//! | `depthwise` | name, kernel, `s<stride>`, `p<pad>` |
//! | `fire` | name, squeeze, expand1x1, expand3x3 |
//! | `maxpool` / `avgpool` | name, kernel, `s<stride>` |
//! | `gap` | name |
//! | `fc` | name, out-features |
//! | `accuracy` | published top-1 percent |

use std::error::Error;
use std::fmt;

use crate::network::{Network, NetworkBuilder};
use crate::shape::Shape;

/// Error from [`parse_network`], carrying the offending line number.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseNetworkError {
    line: usize,
    detail: String,
}

impl ParseNetworkError {
    fn new(line: usize, detail: impl Into<String>) -> Self {
        Self { line, detail: detail.into() }
    }
}

impl fmt::Display for ParseNetworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.detail)
    }
}

impl Error for ParseNetworkError {}

fn parse_dims(token: &str, line: usize) -> Result<Vec<usize>, ParseNetworkError> {
    token
        .split('x')
        .map(|p| {
            p.parse::<usize>()
                .map_err(|_| ParseNetworkError::new(line, format!("bad dimension `{p}`")))
        })
        .collect()
}

fn parse_prefixed(token: &str, prefix: char, line: usize) -> Result<usize, ParseNetworkError> {
    token.strip_prefix(prefix).and_then(|v| v.parse().ok()).ok_or_else(|| {
        ParseNetworkError::new(line, format!("expected `{prefix}<n>`, got `{token}`"))
    })
}

fn parse_num<T: std::str::FromStr>(
    token: &str,
    what: &str,
    line: usize,
) -> Result<T, ParseNetworkError> {
    token.parse().map_err(|_| ParseNetworkError::new(line, format!("bad {what} `{token}`")))
}

/// Parses a network description.
///
/// # Errors
///
/// Returns [`ParseNetworkError`] on malformed directives, and converts
/// shape errors from the underlying builder (reported against the last
/// line).
pub fn parse_network(text: &str) -> Result<Network, ParseNetworkError> {
    let mut builder: Option<NetworkBuilder> = None;
    let mut last_line = 0;
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let content = raw.split('#').next().unwrap_or("").trim();
        if content.is_empty() {
            continue;
        }
        last_line = line;
        let mut it = content.split_whitespace();
        let Some(directive) = it.next() else { continue };
        let toks: Vec<&str> = it.collect();
        // Both bounds are enforced: too few operands is obviously
        // malformed, but so is too many — a silently ignored trailing
        // token (a typo'd flag, a forgotten `#`) would give the user a
        // different network than the one they wrote down.
        let arity = |min: usize, max: usize| {
            if toks.len() < min {
                Err(ParseNetworkError::new(
                    line,
                    format!("`{directive}` needs {min} operands, got {}", toks.len()),
                ))
            } else if toks.len() > max {
                Err(ParseNetworkError::new(
                    line,
                    format!(
                        "`{directive}` takes at most {max} operands, got {}: surplus `{}` (use `#` for comments)",
                        toks.len(),
                        toks[max]
                    ),
                ))
            } else {
                Ok(())
            }
        };
        if directive == "network" {
            // No upper bound: the network name may contain spaces.
            arity(2, usize::MAX)?;
            // The shape is the last token; everything before it is the
            // (possibly space-containing) network name.
            let dims = parse_dims(toks[toks.len() - 1], line)?;
            if dims.len() != 3 {
                return Err(ParseNetworkError::new(line, "input must be CxHxW"));
            }
            let name = toks[..toks.len() - 1].join(" ");
            builder = Some(NetworkBuilder::new(name, Shape::new(dims[0], dims[1], dims[2])));
            continue;
        }
        let b = builder
            .as_mut()
            .ok_or_else(|| ParseNetworkError::new(line, "`network` must come first"))?;
        match directive {
            "conv" => {
                arity(4, 6)?;
                let out: usize = parse_num(toks[1], "channel count", line)?;
                let k = parse_dims(toks[2], line)?;
                let stride = parse_prefixed(toks[3], 's', line)?;
                let pad = if toks.len() > 4 { parse_prefixed(toks[4], 'p', line)? } else { 0 };
                let groups = if toks.len() > 5 { parse_prefixed(toks[5], 'g', line)? } else { 1 };
                match k.as_slice() {
                    [kk] => {
                        if groups == 1 {
                            b.conv(toks[0], out, *kk, stride, pad);
                        } else {
                            b.grouped_conv(toks[0], out, *kk, stride, pad, groups);
                        }
                    }
                    [kh, kw] if groups == 1 => {
                        b.conv_rect(toks[0], out, *kh, *kw, stride);
                    }
                    _ => {
                        return Err(ParseNetworkError::new(
                            line,
                            "kernel must be K or KhxKw (grouped conv needs a square kernel)",
                        ));
                    }
                }
            }
            "pointwise" => {
                arity(2, 2)?;
                let out = parse_num(toks[1], "channel count", line)?;
                b.pointwise_conv(toks[0], out);
            }
            "depthwise" => {
                arity(3, 4)?;
                let k = parse_num(toks[1], "kernel", line)?;
                let stride = parse_prefixed(toks[2], 's', line)?;
                let pad = if toks.len() > 3 { parse_prefixed(toks[3], 'p', line)? } else { 0 };
                b.depthwise_conv(toks[0], k, stride, pad);
            }
            "fire" => {
                arity(4, 4)?;
                let s = parse_num(toks[1], "squeeze width", line)?;
                let e1 = parse_num(toks[2], "expand1x1 width", line)?;
                let e3 = parse_num(toks[3], "expand3x3 width", line)?;
                b.fire(toks[0], s, e1, e3);
            }
            "maxpool" | "avgpool" => {
                arity(3, 3)?;
                let k = parse_num(toks[1], "kernel", line)?;
                let stride = parse_prefixed(toks[2], 's', line)?;
                if directive == "maxpool" {
                    b.max_pool(toks[0], k, stride);
                } else {
                    b.avg_pool(toks[0], k, stride);
                }
            }
            "gap" => {
                arity(1, 1)?;
                b.global_avg_pool(toks[0]);
            }
            "fc" => {
                arity(2, 2)?;
                let out = parse_num(toks[1], "feature count", line)?;
                b.fully_connected(toks[0], out);
            }
            "accuracy" => {
                arity(1, 1)?;
                let acc: f64 = parse_num(toks[0], "accuracy", line)?;
                b.top1_accuracy(acc);
            }
            other => {
                return Err(ParseNetworkError::new(line, format!("unknown directive `{other}`")));
            }
        }
    }
    builder
        .ok_or_else(|| ParseNetworkError::new(last_line.max(1), "missing `network` directive"))?
        .finish()
        .map_err(|e| ParseNetworkError::new(last_line, e.to_string()))
}

/// Serializes a network built of representable layers back to the text
/// format. Returns `None` when the network contains constructs the
/// format cannot express (merge layers outside fire modules, rectangular
/// pads, ...).
pub fn write_network(network: &Network) -> Option<String> {
    use crate::layer::{LayerOp, PoolKind};
    use std::fmt::Write as _;

    let mut out = String::new();
    let input = network.input();
    let _ = writeln!(
        out,
        "network {} {}x{}x{}",
        network.name(),
        input.channels,
        input.height,
        input.width
    );
    let mut skip_until_concat: Option<String> = None;
    for layer in network.layers() {
        // Fire modules serialize as one directive; recognize the builder's
        // naming convention and skip the expanded layers.
        if let Some(prefix) = &skip_until_concat {
            let done = layer.name == format!("{prefix}/concat");
            if layer.name.starts_with(prefix.as_str()) {
                if done {
                    skip_until_concat = None;
                }
                continue;
            }
            return None; // unexpected interleaving
        }
        if let Some(prefix) = layer.name.strip_suffix("/squeeze1x1") {
            let e1 = network.layer(&format!("{prefix}/expand1x1"))?;
            let e3 = network.layer(&format!("{prefix}/expand3x3"))?;
            let _ = writeln!(
                out,
                "fire {prefix} {} {} {}",
                layer.output.channels, e1.output.channels, e3.output.channels
            );
            skip_until_concat = Some(prefix.to_owned());
            continue;
        }
        match &layer.op {
            LayerOp::Conv(spec) => {
                if layer.is_depthwise() {
                    let _ = writeln!(
                        out,
                        "depthwise {} {} s{} p{}",
                        layer.name, spec.kernel.height, spec.stride, spec.pad_h
                    );
                } else if spec.kernel.is_pointwise() && spec.stride == 1 && spec.pad_h == 0 {
                    let _ = writeln!(out, "pointwise {} {}", layer.name, spec.out_channels);
                } else {
                    if spec.pad_h != spec.pad_w && spec.kernel.height == spec.kernel.width {
                        return None;
                    }
                    let kernel = if spec.kernel.height == spec.kernel.width {
                        format!("{}", spec.kernel.height)
                    } else {
                        format!("{}x{}", spec.kernel.height, spec.kernel.width)
                    };
                    let groups =
                        if spec.groups > 1 { format!(" g{}", spec.groups) } else { String::new() };
                    let _ = writeln!(
                        out,
                        "conv {} {} {} s{} p{}{}",
                        layer.name, spec.out_channels, kernel, spec.stride, spec.pad_h, groups
                    );
                }
            }
            LayerOp::Pool { kind, kernel, stride, .. } => {
                let d = match kind {
                    PoolKind::Max => "maxpool",
                    PoolKind::Average => "avgpool",
                };
                let _ = writeln!(out, "{d} {} {kernel} s{stride}", layer.name);
            }
            LayerOp::GlobalAvgPool => {
                let _ = writeln!(out, "gap {}", layer.name);
            }
            LayerOp::FullyConnected { out_features } => {
                let _ = writeln!(out, "fc {} {out_features}", layer.name);
            }
            LayerOp::EltwiseAdd | LayerOp::Concat { .. } => return None,
        }
    }
    if let Some(acc) = network.top1_accuracy() {
        let _ = writeln!(out, "accuracy {acc}");
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    const MINI: &str = "\
# mini classifier
network mini 3x32x32
conv      conv1   16 3 s2 p1
maxpool   pool1   3 s2
fire      fire2   8 16 16
depthwise dw3     3 s1 p1
pointwise pw4     32
gap       pool4
fc        logits  10
accuracy  61.5
";

    #[test]
    fn parses_the_example() {
        let net = parse_network(MINI).unwrap();
        assert_eq!(net.name(), "mini");
        assert_eq!(net.output(), Shape::vector(10));
        assert_eq!(net.top1_accuracy(), Some(61.5));
        assert!(net.layer("fire2/expand3x3").is_some());
        assert!(net.layer("dw3").unwrap().is_depthwise());
    }

    #[test]
    fn round_trips_the_example() {
        let net = parse_network(MINI).unwrap();
        let text = write_network(&net).unwrap();
        let again = parse_network(&text).unwrap();
        assert_eq!(net, again);
    }

    #[test]
    fn round_trips_zoo_classifiers() {
        for net in [
            zoo::squeezenet_v1_0(),
            zoo::squeezenet_v1_1(),
            zoo::mobilenet_v1(),
            zoo::tiny_darknet(),
            zoo::alexnet(),
        ] {
            let text =
                write_network(&net).unwrap_or_else(|| panic!("{} should serialize", net.name()));
            let again = parse_network(&text).unwrap_or_else(|e| panic!("{}: {e}", net.name()));
            assert_eq!(net.total_macs(), again.total_macs(), "{}", net.name());
            assert_eq!(net.layers().len(), again.layers().len(), "{}", net.name());
        }
    }

    #[test]
    fn squeezenext_is_not_representable() {
        // Residual adds fall outside the format: write_network must say
        // so instead of silently dropping layers.
        assert!(write_network(&zoo::squeezenext()).is_none());
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse_network("network t 3x8x8\nconv c 8 3 zz\n").unwrap_err();
        assert_eq!(err.to_string(), "line 2: expected `s<n>`, got `zz`");
        let err = parse_network("conv c 8 3 s1\n").unwrap_err();
        assert!(err.to_string().contains("`network` must come first"));
        let err = parse_network("# nothing\n").unwrap_err();
        assert!(err.to_string().contains("missing `network`"));
        let err = parse_network("network t 3x8x8\nwarp w\n").unwrap_err();
        assert!(err.to_string().contains("unknown directive"));
    }

    #[test]
    fn surplus_operands_are_rejected_not_ignored() {
        // Regression: trailing operands used to be silently dropped, so
        // a typo'd flag produced a *different* network than written.
        let err = parse_network("network t 3x8x8\nconv c 8 3 s1 p1 g1 extra\n").unwrap_err();
        assert_eq!(
            err.to_string(),
            "line 2: `conv` takes at most 6 operands, got 7: surplus `extra` (use `#` for comments)"
        );
        let err = parse_network("network t 3x8x8\ngap g bogus\n").unwrap_err();
        assert!(err.to_string().contains("surplus `bogus`"), "{err}");
        assert!(err.to_string().starts_with("line 2:"), "{err}");
        let err = parse_network("network t 3x8x8\nconv c 8 3 s1\nfc out 10 20\n").unwrap_err();
        assert!(err.to_string().starts_with("line 3:"), "{err}");
        let err = parse_network("network t 3x8x8\nmaxpool p 3 s2 p1\n").unwrap_err();
        assert!(err.to_string().contains("`maxpool` takes at most 3"), "{err}");
        let err = parse_network("network t 3x8x8\ndepthwise d 3 s1 p1 p2\n").unwrap_err();
        assert!(err.to_string().contains("surplus `p2`"), "{err}");
        let err = parse_network("network t 3x8x8\npointwise p 8 s1\n").unwrap_err();
        assert!(err.to_string().contains("surplus `s1`"), "{err}");
        let err = parse_network("network t 3x8x8\nfire f 8 16 16 16\n").unwrap_err();
        assert!(err.to_string().contains("`fire` takes at most 4"), "{err}");
        let err = parse_network("network t 3x8x8\nconv c 8 3 s1\naccuracy 61.5 60\n").unwrap_err();
        assert!(err.to_string().contains("`accuracy` takes at most 1"), "{err}");
    }

    #[test]
    fn trailing_comments_are_not_surplus_operands() {
        // The `#` comment path must survive the arity tightening: words
        // after a `#` never count as operands.
        let net = parse_network(
            "network t 3x8x8\nconv c 8 3 s1 p1 # five words of commentary here\ngap g # done\n",
        )
        .unwrap();
        assert_eq!(net.layers().len(), 2);
        // Network names may still contain spaces (no upper bound).
        let net = parse_network("network spaced out name 3x8x8\nconv c 8 3 s1\n").unwrap();
        assert_eq!(net.name(), "spaced out name");
    }

    #[test]
    fn shape_errors_surface() {
        let err = parse_network("network t 3x8x8\nconv c 8 11 s1\n").unwrap_err();
        assert!(err.to_string().contains("does not fit"));
    }

    #[test]
    fn comments_and_blanks_are_ignored() {
        let net = parse_network("\n# hi\nnetwork t 1x4x4\nconv c 2 3 s1 p1 # same pad\n").unwrap();
        assert_eq!(net.layers().len(), 1);
    }
}
