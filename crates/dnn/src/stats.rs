//! Operation-count statistics: the accounting behind Table 1 of the paper.

use std::fmt;

use crate::layer::LayerClass;
use crate::network::Network;

/// MAC breakdown of a network across the Table-1 layer classes.
///
/// Percentages are of **total** network operations (which is why the
/// paper's AlexNet row sums to 89 % — the remaining 11 % is FC work).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MacBreakdown {
    macs: [u64; LayerClass::ALL.len()],
}

impl MacBreakdown {
    /// Computes the breakdown for a network.
    pub fn of(network: &Network) -> Self {
        let mut macs = [0u64; LayerClass::ALL.len()];
        for layer in network.layers() {
            let idx = LayerClass::ALL
                .iter()
                .position(|c| *c == layer.class())
                .unwrap_or_else(|| unreachable!("every class is in ALL"));
            macs[idx] += layer.macs();
        }
        Self { macs }
    }

    /// MACs in the given class.
    pub fn macs(&self, class: LayerClass) -> u64 {
        let idx = LayerClass::ALL
            .iter()
            .position(|c| *c == class)
            .unwrap_or_else(|| unreachable!("class in ALL"));
        self.macs[idx]
    }

    /// Total MACs across all classes.
    pub fn total(&self) -> u64 {
        self.macs.iter().sum()
    }

    /// Fraction (0..=1) of total MACs in the given class. Returns 0 for an
    /// empty network.
    pub fn fraction(&self, class: LayerClass) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.macs(class) as f64 / total as f64
        }
    }

    /// Percentage (0..=100) of total MACs in the given class.
    pub fn percent(&self, class: LayerClass) -> f64 {
        100.0 * self.fraction(class)
    }

    /// Iterates `(class, macs, fraction)` in Table-1 order.
    pub fn iter(&self) -> impl Iterator<Item = (LayerClass, u64, f64)> + '_ {
        let total = self.total();
        LayerClass::ALL.iter().enumerate().map(move |(i, class)| {
            let frac = if total == 0 { 0.0 } else { self.macs[i] as f64 / total as f64 };
            (*class, self.macs[i], frac)
        })
    }
}

impl fmt::Display for MacBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (class, _, frac) in self.iter() {
            if frac > 0.0 {
                if !first {
                    write!(f, ", ")?;
                }
                write!(f, "{}: {:.0}%", class, 100.0 * frac)?;
                first = false;
            }
        }
        if first {
            write!(f, "no MAC work")?;
        }
        Ok(())
    }
}

/// Weight footprint of a network in bytes at the given element width.
///
/// The Squeezelerator stores 16-bit integer weights, so pass `2`.
pub fn weight_bytes(network: &Network, bytes_per_element: usize) -> u64 {
    network.total_params() * bytes_per_element as u64
}

/// Peak single-layer activation working set (input + output bytes) — a
/// proxy for the feature-map memory pressure the paper's §2 discusses.
pub fn peak_activation_bytes(network: &Network, bytes_per_element: usize) -> u64 {
    network
        .layers()
        .iter()
        .map(|l| (l.input.bytes(bytes_per_element) + l.output.bytes(bytes_per_element)) as u64)
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NetworkBuilder;
    use crate::shape::Shape;

    fn toy() -> Network {
        NetworkBuilder::new("toy", Shape::new(3, 16, 16))
            .conv("first", 8, 3, 1, 1) // FirstConv: 16*16*9*3*8 = 55296
            .pointwise_conv("pw", 16) // Pointwise: 16*16*8*16 = 32768
            .depthwise_conv("dw", 3, 1, 1) // DW: 16*16*9*16 = 36864
            .conv("sp", 8, 3, 1, 1) // Spatial: 16*16*9*16*8 = 294912
            .global_avg_pool("gap")
            .fully_connected("fc", 10) // FC: 8*10 = 80
            .finish()
            .unwrap()
    }

    #[test]
    fn breakdown_partitions_total() {
        let net = toy();
        let b = MacBreakdown::of(&net);
        assert_eq!(b.total(), net.total_macs());
        assert_eq!(b.macs(LayerClass::FirstConv), 55_296);
        assert_eq!(b.macs(LayerClass::Pointwise), 32_768);
        assert_eq!(b.macs(LayerClass::Depthwise), 36_864);
        assert_eq!(b.macs(LayerClass::Spatial), 294_912);
        assert_eq!(b.macs(LayerClass::FullyConnected), 80);
        assert_eq!(b.macs(LayerClass::Other), 0);
        let frac_sum: f64 = b.iter().map(|(_, _, f)| f).sum();
        assert!((frac_sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn percent_is_fraction_times_100() {
        let b = MacBreakdown::of(&toy());
        for class in LayerClass::ALL {
            assert!((b.percent(class) - 100.0 * b.fraction(class)).abs() < 1e-12);
        }
    }

    #[test]
    fn display_lists_nonzero_classes() {
        let s = MacBreakdown::of(&toy()).to_string();
        assert!(s.contains("Conv1"));
        assert!(s.contains("DW"));
        assert!(!s.contains("Other"));
    }

    #[test]
    fn footprints() {
        let net = toy();
        assert_eq!(weight_bytes(&net, 2), net.total_params() * 2);
        // Peak is the depthwise conv: input 16x16x16 + output 16x16x16 at 2 B.
        assert_eq!(peak_activation_bytes(&net, 2), (16 * 256 + 16 * 256) * 2);
    }
}
