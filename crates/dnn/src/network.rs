//! Whole-network representation and the shape-checked builder.

use std::error::Error;
use std::fmt;

use crate::layer::{infer_output, ConvSpec, Kernel, Layer, LayerOp, PoolKind};
use crate::shape::Shape;

/// Error produced when a [`NetworkBuilder`] is asked to append a layer that
/// does not fit the running feature-map shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BuildNetworkError {
    layer_name: String,
    input: Shape,
    detail: String,
}

impl BuildNetworkError {
    fn new(layer_name: impl Into<String>, input: Shape, detail: impl Into<String>) -> Self {
        Self { layer_name: layer_name.into(), input, detail: detail.into() }
    }
}

impl fmt::Display for BuildNetworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "layer `{}` does not fit input {}: {}", self.layer_name, self.input, self.detail)
    }
}

impl Error for BuildNetworkError {}

/// A feed-forward network: an ordered list of shape-consistent layers.
///
/// Branching topologies (fire modules, SqueezeNext residual blocks) are
/// linearized: each branch's layers appear in order and a
/// [`LayerOp::Concat`] / [`LayerOp::EltwiseAdd`] records the merge. This is
/// exactly the granularity the Squeezelerator schedules at — it processes
/// the network "layer by layer".
#[derive(Debug, Clone, PartialEq)]
pub struct Network {
    name: String,
    input: Shape,
    layers: Vec<Layer>,
    top1_accuracy: Option<f64>,
}

impl Network {
    /// The network's name (e.g. `"SqueezeNet v1.0"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The input image shape.
    pub fn input(&self) -> Shape {
        self.input
    }

    /// All layers in execution order.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Layers that perform MAC work (convolutions and FC layers), i.e. the
    /// layers the accelerator schedules onto the PE array.
    pub fn compute_layers(&self) -> impl Iterator<Item = &Layer> {
        self.layers.iter().filter(|l| l.is_compute())
    }

    /// Total MAC operations over all layers.
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(Layer::macs).sum()
    }

    /// Total weight parameters over all layers.
    pub fn total_params(&self) -> u64 {
        self.layers.iter().map(Layer::params).sum()
    }

    /// Published ImageNet top-1 accuracy, when known.
    ///
    /// Accuracies are metadata (this reproduction does not train models);
    /// see DESIGN.md §3.
    pub fn top1_accuracy(&self) -> Option<f64> {
        self.top1_accuracy
    }

    /// The shape produced by the final layer.
    pub fn output(&self) -> Shape {
        self.layers.last().map_or(self.input, |l| l.output)
    }

    /// Looks up a layer by name.
    pub fn layer(&self, name: &str) -> Option<&Layer> {
        self.layers.iter().find(|l| l.name == name)
    }
}

impl fmt::Display for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} layers, {:.1} MMACs, {:.2} M params)",
            self.name,
            self.layers.len(),
            self.total_macs() as f64 / 1e6,
            self.total_params() as f64 / 1e6
        )
    }
}

/// Shape-checked incremental builder for [`Network`].
///
/// Every append method validates the layer against the running feature-map
/// shape and returns `&mut Self` for chaining. The first error is latched
/// and reported by [`NetworkBuilder::finish`], which keeps call sites free
/// of per-layer `?`s — model-zoo definitions read like the layer tables in
/// the original papers.
///
/// # Examples
///
/// ```
/// use codesign_dnn::{NetworkBuilder, Shape};
///
/// # fn main() -> Result<(), codesign_dnn::BuildNetworkError> {
/// let net = NetworkBuilder::new("toy", Shape::new(3, 32, 32))
///     .conv("conv1", 16, 3, 1, 1)
///     .max_pool("pool1", 2, 2)
///     .global_avg_pool("gap")
///     .fully_connected("fc", 10)
///     .finish()?;
/// assert_eq!(net.output(), Shape::vector(10));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct NetworkBuilder {
    name: String,
    input: Shape,
    current: Shape,
    layers: Vec<Layer>,
    saw_conv: bool,
    current_producer: Option<String>,
    top1_accuracy: Option<f64>,
    error: Option<BuildNetworkError>,
}

impl NetworkBuilder {
    /// Starts a network with the given input image shape.
    pub fn new(name: impl Into<String>, input: Shape) -> Self {
        Self {
            name: name.into(),
            input,
            current: input,
            layers: Vec::new(),
            saw_conv: false,
            current_producer: None,
            top1_accuracy: None,
            error: None,
        }
    }

    /// Records the published top-1 accuracy for this model.
    pub fn top1_accuracy(&mut self, accuracy: f64) -> &mut Self {
        self.top1_accuracy = Some(accuracy);
        self
    }

    /// The feature-map shape after the last appended layer.
    pub fn current_shape(&self) -> Shape {
        self.current
    }

    fn push(&mut self, name: &str, op: LayerOp) -> &mut Self {
        self.push_with(name, op, None)
    }

    fn push_with(&mut self, name: &str, op: LayerOp, extra_input: Option<String>) -> &mut Self {
        if self.error.is_some() {
            return self;
        }
        if self.layers.iter().any(|l| l.name == name) {
            self.error = Some(BuildNetworkError::new(name, self.current, "duplicate layer name"));
            return self;
        }
        if self.current.elements() == 0 {
            self.error = Some(BuildNetworkError::new(
                name,
                self.current,
                "input shape has a zero dimension",
            ));
            return self;
        }
        let is_conv = matches!(op, LayerOp::Conv(_));
        match infer_output(&op, self.current) {
            Some(output) => {
                let is_first_conv = is_conv && !self.saw_conv;
                self.saw_conv |= is_conv;
                if let Some(extra) = &extra_input {
                    if !self.layers.iter().any(|l| &l.name == extra) {
                        self.error = Some(BuildNetworkError::new(
                            name,
                            self.current,
                            format!("merge input layer `{extra}` not found"),
                        ));
                        return self;
                    }
                }
                self.layers.push(Layer {
                    name: name.to_owned(),
                    op,
                    input: self.current,
                    output,
                    is_first_conv,
                    primary_input: self.current_producer.clone(),
                    extra_input,
                });
                self.current = output;
                self.current_producer = Some(name.to_owned());
            }
            None => {
                self.error = Some(BuildNetworkError::new(
                    name,
                    self.current,
                    "operation does not fit the input shape",
                ));
            }
        }
        self
    }

    /// Appends a dense square convolution.
    pub fn conv(
        &mut self,
        name: &str,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
    ) -> &mut Self {
        self.push(
            name,
            LayerOp::Conv(ConvSpec {
                out_channels,
                kernel: Kernel::square(kernel),
                stride,
                pad_h: pad,
                pad_w: pad,
                groups: 1,
            }),
        )
    }

    /// Appends a grouped square convolution (AlexNet-style groups).
    pub fn grouped_conv(
        &mut self,
        name: &str,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        groups: usize,
    ) -> &mut Self {
        self.push(
            name,
            LayerOp::Conv(ConvSpec {
                out_channels,
                kernel: Kernel::square(kernel),
                stride,
                pad_h: pad,
                pad_w: pad,
                groups,
            }),
        )
    }

    /// Appends a convolution with a possibly non-square kernel
    /// (SqueezeNext's separable `1×3` / `3×1`). Padding is applied on the
    /// dimension(s) the kernel extends over so the spatial size is
    /// preserved at stride 1.
    pub fn conv_rect(
        &mut self,
        name: &str,
        out_channels: usize,
        kernel_h: usize,
        kernel_w: usize,
        stride: usize,
    ) -> &mut Self {
        self.push(
            name,
            LayerOp::Conv(ConvSpec {
                out_channels,
                kernel: Kernel::new(kernel_h, kernel_w),
                stride,
                pad_h: kernel_h / 2,
                pad_w: kernel_w / 2,
                groups: 1,
            }),
        )
    }

    /// Appends a depthwise convolution (one filter per channel).
    pub fn depthwise_conv(
        &mut self,
        name: &str,
        kernel: usize,
        stride: usize,
        pad: usize,
    ) -> &mut Self {
        let channels = self.current.channels;
        self.push(
            name,
            LayerOp::Conv(ConvSpec {
                out_channels: channels,
                kernel: Kernel::square(kernel),
                stride,
                pad_h: pad,
                pad_w: pad,
                groups: channels,
            }),
        )
    }

    /// Appends a pointwise (`1×1`) convolution.
    pub fn pointwise_conv(&mut self, name: &str, out_channels: usize) -> &mut Self {
        self.conv(name, out_channels, 1, 1, 0)
    }

    /// Appends max pooling (ceil-mode rounding, Caffe convention).
    pub fn max_pool(&mut self, name: &str, kernel: usize, stride: usize) -> &mut Self {
        self.push(name, LayerOp::Pool { kind: PoolKind::Max, kernel, stride, pad: 0 })
    }

    /// Appends average pooling.
    pub fn avg_pool(&mut self, name: &str, kernel: usize, stride: usize) -> &mut Self {
        self.push(name, LayerOp::Pool { kind: PoolKind::Average, kernel, stride, pad: 0 })
    }

    /// Appends global average pooling.
    pub fn global_avg_pool(&mut self, name: &str) -> &mut Self {
        self.push(name, LayerOp::GlobalAvgPool)
    }

    /// Appends a fully-connected layer.
    pub fn fully_connected(&mut self, name: &str, out_features: usize) -> &mut Self {
        self.push(name, LayerOp::FullyConnected { out_features })
    }

    /// Appends a residual element-wise addition (shape preserving).
    /// `other` names the layer producing the second operand; `None` means
    /// the network input.
    pub fn eltwise_add(&mut self, name: &str, other: Option<&str>) -> &mut Self {
        self.push_with(name, LayerOp::EltwiseAdd, other.map(str::to_owned))
    }

    /// The name of the most recently appended layer, if any.
    pub fn last_layer_name(&self) -> Option<&str> {
        self.layers.last().map(|l| l.name.as_str())
    }

    /// Rewinds the running shape to the output of an earlier layer, so the
    /// next appended layer reads that layer's output — how parallel
    /// branches (fire expands, residual shortcuts) are linearized.
    ///
    /// Latches an error if no layer with that name exists.
    pub fn branch_from(&mut self, layer_name: &str) -> &mut Self {
        if self.error.is_some() {
            return self;
        }
        match self.layers.iter().find(|l| l.name == layer_name) {
            Some(l) => {
                self.current = l.output;
                self.current_producer = Some(l.name.clone());
            }
            None => {
                self.error = Some(BuildNetworkError::new(
                    layer_name,
                    self.current,
                    "branch source layer not found",
                ));
            }
        }
        self
    }

    /// Rewinds the running shape to the **input** of an earlier layer —
    /// used for residual shortcuts that read the same tensor a block's
    /// first layer reads.
    ///
    /// Latches an error if no layer with that name exists.
    pub fn branch_from_input_of(&mut self, layer_name: &str) -> &mut Self {
        if self.error.is_some() {
            return self;
        }
        match self.layers.iter().find(|l| l.name == layer_name) {
            Some(l) => {
                self.current = l.input;
                self.current_producer = l.primary_input.clone();
            }
            None => {
                self.error = Some(BuildNetworkError::new(
                    layer_name,
                    self.current,
                    "branch source layer not found",
                ));
            }
        }
        self
    }

    /// Appends a SqueezeNet fire module: a `1×1` squeeze to
    /// `squeeze_channels`, then parallel `1×1` and `3×3` expands whose
    /// outputs are concatenated.
    pub fn fire(
        &mut self,
        name: &str,
        squeeze_channels: usize,
        expand1x1: usize,
        expand3x3: usize,
    ) -> &mut Self {
        let squeeze = format!("{name}/squeeze1x1");
        let e1 = format!("{name}/expand1x1");
        let e3 = format!("{name}/expand3x3");
        let cat = format!("{name}/concat");
        self.pointwise_conv(&squeeze, squeeze_channels);
        // Branch 1: 1x1 expand.
        self.pointwise_conv(&e1, expand1x1);
        // Branch 2: 3x3 expand reads the squeeze output.
        self.branch_from(&squeeze);
        self.conv(&e3, expand3x3, 3, 1, 1);
        // Merge: expand3x3 output plus the expand1x1 channels.
        self.push_with(&cat, LayerOp::Concat { extra_channels: expand1x1 }, Some(e1))
    }

    /// Finishes the network.
    ///
    /// # Errors
    ///
    /// Returns the first shape error encountered while appending layers,
    /// or an error if the network has no layers.
    pub fn finish(&mut self) -> Result<Network, BuildNetworkError> {
        if let Some(err) = self.error.take() {
            return Err(err);
        }
        if self.layers.is_empty() {
            return Err(BuildNetworkError::new(
                self.name.clone(),
                self.input,
                "network has no layers",
            ));
        }
        Ok(Network {
            name: std::mem::take(&mut self.name),
            input: self.input,
            layers: std::mem::take(&mut self.layers),
            top1_accuracy: self.top1_accuracy,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::LayerClass;

    #[test]
    fn builder_tracks_shapes() {
        let net = NetworkBuilder::new("t", Shape::new(3, 227, 227))
            .conv("conv1", 96, 7, 2, 0)
            .max_pool("pool1", 3, 2)
            .finish()
            .unwrap();
        assert_eq!(net.layers()[0].output, Shape::new(96, 111, 111));
        assert_eq!(net.output(), Shape::new(96, 55, 55));
        assert!(net.layers()[0].is_first_conv);
    }

    #[test]
    fn fire_module_shapes_and_macs() {
        let net = NetworkBuilder::new("t", Shape::new(96, 55, 55))
            .fire("fire2", 16, 64, 64)
            .finish()
            .unwrap();
        // squeeze output 16x55x55; both expands see 16 channels; concat 128.
        assert_eq!(net.output(), Shape::new(128, 55, 55));
        let e3 = net.layer("fire2/expand3x3").unwrap();
        assert_eq!(e3.input.channels, 16);
        assert_eq!(e3.macs(), (55 * 55 * 9 * 16 * 64) as u64);
        let e1 = net.layer("fire2/expand1x1").unwrap();
        assert_eq!(e1.input.channels, 16);
        // First conv flag not set inside fire (no preceding conv here means
        // squeeze is first).
        assert!(net.layer("fire2/squeeze1x1").unwrap().is_first_conv);
        assert!(!e1.is_first_conv);
        assert_eq!(e1.class(), LayerClass::Pointwise);
    }

    #[test]
    fn error_is_latched_and_reported() {
        let err = NetworkBuilder::new("t", Shape::new(3, 8, 8))
            .conv("c1", 8, 3, 1, 1)
            .conv("bad", 8, 11, 1, 0) // kernel larger than feature map
            .conv("c2", 8, 3, 1, 1) // ignored after error
            .finish()
            .unwrap_err();
        assert!(err.to_string().contains("bad"));
        assert!(err.to_string().contains("8x8x8"));
    }

    #[test]
    fn duplicate_names_rejected() {
        let err = NetworkBuilder::new("t", Shape::new(3, 8, 8))
            .conv("c", 8, 3, 1, 1)
            .conv("c", 8, 3, 1, 1)
            .finish()
            .unwrap_err();
        assert!(err.to_string().contains("duplicate"));
    }

    #[test]
    fn empty_network_rejected() {
        assert!(NetworkBuilder::new("t", Shape::new(3, 8, 8)).finish().is_err());
    }

    #[test]
    fn depthwise_builder_uses_running_channels() {
        let net = NetworkBuilder::new("t", Shape::new(3, 32, 32))
            .conv("c1", 32, 3, 2, 1)
            .depthwise_conv("dw", 3, 1, 1)
            .finish()
            .unwrap();
        let dw = net.layer("dw").unwrap();
        assert!(dw.is_depthwise());
        assert_eq!(dw.output.channels, 32);
    }

    #[test]
    fn totals_accumulate() {
        let net = NetworkBuilder::new("t", Shape::new(1, 4, 4))
            .conv("c1", 2, 3, 1, 1)
            .conv("c2", 4, 3, 1, 1)
            .finish()
            .unwrap();
        assert_eq!(net.total_macs(), (16 * 9 * 2) as u64 + (16 * 9 * 2 * 4) as u64);
        assert_eq!(net.total_params(), (9 * 2) as u64 + (9 * 2 * 4) as u64);
        assert_eq!(net.compute_layers().count(), 2);
    }

    #[test]
    fn accuracy_metadata_round_trips() {
        let net = NetworkBuilder::new("t", Shape::new(1, 4, 4))
            .conv("c", 1, 1, 1, 0)
            .top1_accuracy(57.1)
            .finish()
            .unwrap();
        assert_eq!(net.top1_accuracy(), Some(57.1));
    }

    #[test]
    fn display_summarizes() {
        let net = NetworkBuilder::new("tiny", Shape::new(1, 4, 4))
            .conv("c", 1, 1, 1, 0)
            .finish()
            .unwrap();
        let s = net.to_string();
        assert!(s.contains("tiny"));
        assert!(s.contains("1 layers"));
    }
}
