//! # codesign-dnn — DNN model IR and zoo
//!
//! The model-side substrate of the DAC'18 co-design reproduction: a small
//! intermediate representation for feed-forward convolutional networks,
//! a shape-checked builder, MAC/parameter accounting in the paper's
//! Table-1 taxonomy, and a zoo with every network the paper evaluates
//! (AlexNet, SqueezeNet v1.0/v1.1, MobileNet, Tiny Darknet, and the
//! SqueezeNext family including the five co-design variants).
//!
//! # Examples
//!
//! ```
//! use codesign_dnn::{zoo, LayerClass, MacBreakdown};
//!
//! let net = zoo::squeezenet_v1_0();
//! let breakdown = MacBreakdown::of(&net);
//! // Table 1: 1x1 convolutions are ~25 % of SqueezeNet v1.0's MACs.
//! assert!((breakdown.percent(LayerClass::Pointwise) - 25.0).abs() < 2.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod layer;
pub mod network;
pub mod shape;
pub mod stats;
pub mod textfmt;
pub mod zoo;

pub use layer::{ConvSpec, Kernel, Layer, LayerClass, LayerOp, PoolKind};
pub use network::{BuildNetworkError, Network, NetworkBuilder};
pub use shape::Shape;
pub use stats::{peak_activation_bytes, weight_bytes, MacBreakdown};
pub use textfmt::{parse_network, write_network, ParseNetworkError};
