//! Eyeriss-style energy accounting (§4.1.3: "calculates the number of
//! accesses of the MAC units and each memory layer, and then multiplies
//! each by its unit energy, which is normalized by the energy consumption
//! of the MAC unit").

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign};

/// Normalized unit energies per access, relative to one MAC operation.
///
/// Defaults follow the Eyeriss hierarchy ratios (MAC 1×, register file
/// 1×, inter-PE transfer 2×, global buffer 6×, DRAM 200×). The paper
/// "modified the unit energy slightly to match this hardware
/// configuration"; the exact constants are unpublished, so they are
/// configuration here (see DESIGN.md §3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Energy of one MAC operation (the normalization unit).
    pub mac: f64,
    /// Energy of one register-file access.
    pub register_file: f64,
    /// Energy of one inter-PE (mesh/broadcast) transfer.
    pub inter_pe: f64,
    /// Energy of one global-buffer access.
    pub global_buffer: f64,
    /// Energy of one DRAM element access.
    pub dram: f64,
}

impl EnergyModel {
    /// The Eyeriss-normalized default table.
    pub fn eyeriss_normalized() -> Self {
        Self { mac: 1.0, register_file: 1.0, inter_pe: 2.0, global_buffer: 6.0, dram: 200.0 }
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self::eyeriss_normalized()
    }
}

/// Access counts at every level of the memory hierarchy for some unit of
/// work (a layer, or a whole network).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AccessCounts {
    /// MAC operations actually executed (zero-skipped MACs excluded).
    pub macs: u64,
    /// Register-file reads + writes.
    pub register_file: u64,
    /// Inter-PE transfers (mesh shifts, broadcasts, adder-chain hops).
    pub inter_pe: u64,
    /// Global-buffer reads + writes (elements).
    pub global_buffer: u64,
    /// DRAM traffic (elements).
    pub dram: u64,
}

impl AccessCounts {
    /// No accesses.
    pub const fn zero() -> Self {
        Self { macs: 0, register_file: 0, inter_pe: 0, global_buffer: 0, dram: 0 }
    }

    /// Total energy under `model`, in MAC-normalized units.
    pub fn energy(&self, model: &EnergyModel) -> f64 {
        self.macs as f64 * model.mac
            + self.register_file as f64 * model.register_file
            + self.inter_pe as f64 * model.inter_pe
            + self.global_buffer as f64 * model.global_buffer
            + self.dram as f64 * model.dram
    }

    /// Fraction of total energy spent in DRAM (interesting because the
    /// paper attributes MobileNet's weak energy win to DRAM dominance).
    pub fn dram_energy_fraction(&self, model: &EnergyModel) -> f64 {
        let total = self.energy(model);
        if total == 0.0 {
            0.0
        } else {
            self.dram as f64 * model.dram / total
        }
    }
}

impl Add for AccessCounts {
    type Output = AccessCounts;

    fn add(self, rhs: AccessCounts) -> AccessCounts {
        AccessCounts {
            macs: self.macs + rhs.macs,
            register_file: self.register_file + rhs.register_file,
            inter_pe: self.inter_pe + rhs.inter_pe,
            global_buffer: self.global_buffer + rhs.global_buffer,
            dram: self.dram + rhs.dram,
        }
    }
}

impl AddAssign for AccessCounts {
    fn add_assign(&mut self, rhs: AccessCounts) {
        *self = *self + rhs;
    }
}

impl Sum for AccessCounts {
    fn sum<I: Iterator<Item = AccessCounts>>(iter: I) -> AccessCounts {
        iter.fold(AccessCounts::zero(), Add::add)
    }
}

impl fmt::Display for AccessCounts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "macs={} rf={} pe2pe={} gb={} dram={}",
            self.macs, self.register_file, self.inter_pe, self.global_buffer, self.dram
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_is_weighted_sum() {
        let m = EnergyModel::eyeriss_normalized();
        let c =
            AccessCounts { macs: 10, register_file: 20, inter_pe: 5, global_buffer: 2, dram: 1 };
        assert!((c.energy(&m) - (10.0 + 20.0 + 10.0 + 12.0 + 200.0)).abs() < 1e-12);
    }

    #[test]
    fn counts_add() {
        let a = AccessCounts { macs: 1, register_file: 2, inter_pe: 3, global_buffer: 4, dram: 5 };
        let b = a;
        let c = a + b;
        assert_eq!(c.macs, 2);
        assert_eq!(c.dram, 10);
        let total: AccessCounts = [a, b].into_iter().sum();
        assert_eq!(total, c);
        let mut d = a;
        d += b;
        assert_eq!(d, c);
    }

    #[test]
    fn dram_fraction() {
        let m = EnergyModel::eyeriss_normalized();
        let c = AccessCounts { macs: 0, register_file: 0, inter_pe: 0, global_buffer: 0, dram: 3 };
        assert!((c.dram_energy_fraction(&m) - 1.0).abs() < 1e-12);
        assert_eq!(AccessCounts::zero().dram_energy_fraction(&m), 0.0);
    }

    #[test]
    fn dram_dominates_per_access() {
        let m = EnergyModel::default();
        assert!(m.dram > m.global_buffer);
        assert!(m.global_buffer > m.inter_pe);
        assert!(m.inter_pe >= m.register_file);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!AccessCounts::zero().to_string().is_empty());
    }
}
