//! # codesign-arch — accelerator hardware description
//!
//! Structural and cost parameters of the Squeezelerator (Figure 2 of the
//! paper): PE array geometry, register-file depth, global/preload/stream
//! buffer organization, DRAM timing, and the Eyeriss-style normalized
//! energy table.
//!
//! # Examples
//!
//! ```
//! use codesign_arch::{AcceleratorConfig, Dataflow, EnergyModel};
//!
//! let cfg = AcceleratorConfig::paper_default();
//! assert_eq!(cfg.pe_count(), 32 * 32);
//! assert_eq!(Dataflow::WeightStationary.tag(), "WS");
//! assert_eq!(EnergyModel::default().mac, 1.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod area;
pub mod config;
pub mod dataflow;
pub mod energy;

pub use area::{area, AreaBreakdown, AreaModel};
pub use config::{AcceleratorConfig, AcceleratorConfigBuilder, DramModel, InvalidConfigError};
pub use dataflow::{Dataflow, DataflowPolicy};
pub use energy::{AccessCounts, EnergyModel};
