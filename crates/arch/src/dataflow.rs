//! Dataflow taxonomy (after Eyeriss [3] and §3.2 of the paper).

use std::fmt;

/// The two dataflows the Squeezelerator supports, selectable per layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Dataflow {
    /// Weight stationary: PEs hold a tile of the (input-channel ×
    /// output-channel) weight matrix; activations stream through
    /// (TPU-style systolic matrix-vector).
    WeightStationary,
    /// Output stationary: PEs hold partial sums for a 2-D block of output
    /// pixels; weights broadcast one per cycle (ShiDianNao-style).
    OutputStationary,
}

impl Dataflow {
    /// Both dataflows, WS first.
    pub const ALL: [Dataflow; 2] = [Dataflow::WeightStationary, Dataflow::OutputStationary];

    /// Short tag used in reports ("WS" / "OS").
    pub const fn tag(&self) -> &'static str {
        match self {
            Dataflow::WeightStationary => "WS",
            Dataflow::OutputStationary => "OS",
        }
    }
}

impl fmt::Display for Dataflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tag())
    }
}

/// Which dataflows an accelerator instance may use.
///
/// The paper's reference architectures are the two fixed variants; the
/// Squeezelerator is [`DataflowPolicy::PerLayer`] ("the accelerator
/// architecture must be able to choose WS dataflow or OS on a layer by
/// layer basis", with no switching overhead).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataflowPolicy {
    /// Every layer runs the given dataflow (the reference WS or OS
    /// architecture).
    Fixed(Dataflow),
    /// Each layer picks whichever dataflow simulates faster (the
    /// Squeezelerator).
    PerLayer,
}

impl DataflowPolicy {
    /// Human-readable name used in tables ("WS", "OS", "Squeezelerator").
    pub const fn name(&self) -> &'static str {
        match self {
            DataflowPolicy::Fixed(d) => d.tag(),
            DataflowPolicy::PerLayer => "Squeezelerator",
        }
    }
}

impl fmt::Display for DataflowPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags() {
        assert_eq!(Dataflow::WeightStationary.to_string(), "WS");
        assert_eq!(Dataflow::OutputStationary.to_string(), "OS");
        assert_eq!(DataflowPolicy::PerLayer.to_string(), "Squeezelerator");
        assert_eq!(DataflowPolicy::Fixed(Dataflow::WeightStationary).to_string(), "WS");
    }

    #[test]
    fn all_lists_both() {
        assert_eq!(Dataflow::ALL.len(), 2);
        assert_ne!(Dataflow::ALL[0], Dataflow::ALL[1]);
    }
}
