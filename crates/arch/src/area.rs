//! Silicon area model.
//!
//! §4.1.1: "In order to support two dataflows, we implemented all the
//! interconnections and functions required for both dataflows. The area
//! overhead is minimized..." — this module quantifies that trade. Unit
//! areas are normalized to one 16-bit MAC datapath (the same style of
//! normalization the energy model uses); absolute mm² are not claimed.

use crate::config::AcceleratorConfig;

/// Normalized unit areas (1.0 = one 16-bit multiply-accumulate datapath).
///
/// Defaults are synthetic but ordered like published 28 nm blocks: an RF
/// entry is a small fraction of a MAC, SRAM is dense per byte, and the
/// dual-dataflow muxing/interconnect adds a small per-PE overhead.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaModel {
    /// One MAC datapath (multiplier + adder).
    pub mac: f64,
    /// One register-file entry.
    pub rf_entry: f64,
    /// One byte of on-chip SRAM (global/preload/stream buffers).
    pub sram_byte: f64,
    /// Per-PE overhead of supporting *both* dataflows (input muxes, mesh
    /// + broadcast ports, mode control).
    pub dual_dataflow_per_pe: f64,
    /// Fixed overhead (DMA engine, controller, buffer switching logic).
    pub fixed: f64,
}

impl AreaModel {
    /// The default normalized table.
    pub fn normalized_default() -> Self {
        Self {
            mac: 1.0,
            rf_entry: 0.02,
            sram_byte: 0.002,
            dual_dataflow_per_pe: 0.08,
            fixed: 200.0,
        }
    }
}

impl Default for AreaModel {
    fn default() -> Self {
        Self::normalized_default()
    }
}

/// Area breakdown of one accelerator configuration, in MAC-normalized
/// units.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaBreakdown {
    /// PE datapaths.
    pub pes: f64,
    /// Register files.
    pub register_files: f64,
    /// On-chip buffers.
    pub buffers: f64,
    /// Dual-dataflow support overhead.
    pub dual_dataflow: f64,
    /// Fixed blocks.
    pub fixed: f64,
}

impl AreaBreakdown {
    /// Total area.
    pub fn total(&self) -> f64 {
        self.pes + self.register_files + self.buffers + self.dual_dataflow + self.fixed
    }

    /// Fraction of total area spent on dual-dataflow support — the
    /// overhead §4.1.1 says is minimized.
    pub fn dual_dataflow_fraction(&self) -> f64 {
        let total = self.total();
        if total == 0.0 {
            0.0
        } else {
            self.dual_dataflow / total
        }
    }
}

/// Computes the area of a configuration. `dual_dataflow` selects whether
/// the array carries both dataflows' plumbing (the Squeezelerator) or
/// only one (the fixed references).
pub fn area(cfg: &AcceleratorConfig, model: &AreaModel, dual_dataflow: bool) -> AreaBreakdown {
    let pes = cfg.pe_count() as f64;
    // Preload + stream buffers: one array row's worth of double-buffered
    // staging each.
    let staging_bytes = 4 * cfg.array_size() * cfg.bytes_per_element();
    AreaBreakdown {
        pes: pes * model.mac,
        register_files: pes * cfg.rf_depth() as f64 * model.rf_entry,
        buffers: (cfg.global_buffer_bytes() + staging_bytes) as f64 * model.sram_byte,
        dual_dataflow: if dual_dataflow { pes * model.dual_dataflow_per_pe } else { 0.0 },
        fixed: model.fixed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> AcceleratorConfig {
        AcceleratorConfig::paper_default()
    }

    #[test]
    fn dual_dataflow_overhead_is_small() {
        // The paper's design claim: supporting both dataflows costs little.
        let a = area(&cfg(), &AreaModel::default(), true);
        let frac = a.dual_dataflow_fraction();
        assert!(frac > 0.0 && frac < 0.08, "overhead fraction = {frac:.3}");
    }

    #[test]
    fn fixed_dataflow_references_are_smaller_but_barely() {
        let m = AreaModel::default();
        let hybrid = area(&cfg(), &m, true).total();
        let fixed = area(&cfg(), &m, false).total();
        assert!(fixed < hybrid);
        assert!(hybrid / fixed < 1.08, "ratio = {:.3}", hybrid / fixed);
    }

    #[test]
    fn rf_tuneup_costs_area() {
        let m = AreaModel::default();
        let rf8 = AcceleratorConfig::builder().rf_depth(8).build().unwrap();
        let rf16 = AcceleratorConfig::builder().rf_depth(16).build().unwrap();
        let a8 = area(&rf8, &m, true);
        let a16 = area(&rf16, &m, true);
        assert!(a16.register_files > a8.register_files);
        assert_eq!(a16.register_files, 2.0 * a8.register_files);
        // ...but the whole-accelerator cost is modest.
        assert!(a16.total() / a8.total() < 1.15, "ratio = {:.3}", a16.total() / a8.total());
    }

    #[test]
    fn area_scales_with_array_and_buffer() {
        let m = AreaModel::default();
        let small = AcceleratorConfig::builder().array_size(8).build().unwrap();
        let big = AcceleratorConfig::builder().array_size(32).build().unwrap();
        assert!(area(&big, &m, true).pes > area(&small, &m, true).pes);
        let buf_big = AcceleratorConfig::builder().global_buffer_bytes(512 * 1024).build().unwrap();
        assert!(area(&buf_big, &m, true).buffers > area(&cfg(), &m, true).buffers);
    }

    #[test]
    fn breakdown_sums() {
        let a = area(&cfg(), &AreaModel::default(), true);
        let total = a.pes + a.register_files + a.buffers + a.dual_dataflow + a.fixed;
        assert!((a.total() - total).abs() < 1e-9);
    }
}
