//! Accelerator configuration: the structural parameters of Figure 2.
//!
//! The Squeezelerator consists of an N×N PE array with mesh inter-PE
//! links, a preload buffer feeding the top row, a stream (broadcast)
//! buffer, a 128 KB global buffer, and a DMA controller to DRAM. Each PE
//! has a 16-bit multiplier, an accumulator, and a small register file.

use std::error::Error;
use std::fmt;

/// DRAM timing model: fixed latency plus effective streaming bandwidth.
///
/// The paper approximates DRAM with exactly these two numbers
/// (§4.1.3: 100 cycles and 16 GB/s).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramModel {
    /// Access latency in core cycles.
    pub latency_cycles: u64,
    /// Effective bandwidth in bytes per core cycle.
    pub bytes_per_cycle: f64,
}

impl DramModel {
    /// The paper's model at the given core clock: 100-cycle latency,
    /// 16 GB/s effective bandwidth.
    pub fn paper_default(clock_mhz: f64) -> Self {
        Self { latency_cycles: 100, bytes_per_cycle: 16.0e9 / (clock_mhz * 1.0e6) }
    }

    /// Cycles to transfer `bytes` (latency excluded).
    pub fn transfer_cycles(&self, bytes: u64) -> u64 {
        (bytes as f64 / self.bytes_per_cycle).ceil() as u64
    }
}

/// Error returned by [`AcceleratorConfigBuilder::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidConfigError {
    detail: String,
}

impl fmt::Display for InvalidConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid accelerator configuration: {}", self.detail)
    }
}

impl Error for InvalidConfigError {}

/// A validated accelerator configuration.
///
/// Use [`AcceleratorConfig::paper_default`] for the configuration the
/// paper evaluates (32×32 PEs, RF 16, 128 KB global buffer), or the
/// [`AcceleratorConfigBuilder`] for sweeps.
///
/// # Examples
///
/// ```
/// use codesign_arch::AcceleratorConfig;
///
/// # fn main() -> Result<(), codesign_arch::InvalidConfigError> {
/// let cfg = AcceleratorConfig::builder().array_size(16).rf_depth(8).build()?;
/// assert_eq!(cfg.array_size(), 16);
/// assert_eq!(cfg.pe_count(), 256);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AcceleratorConfig {
    array_size: usize,
    rf_depth: usize,
    global_buffer_bytes: usize,
    bytes_per_element: usize,
    clock_mhz: f64,
    dram: DramModel,
    double_buffering: bool,
}

impl AcceleratorConfig {
    /// The configuration evaluated in the paper: 32×32 PEs, 16-entry RF
    /// (after the 8→16 tune-up), 128 KB global buffer, 16-bit data,
    /// 100-cycle / 16 GB/s DRAM, double buffering on. Core clock 200 MHz
    /// (not stated in the paper; chosen so AlexNet's FC runtime share
    /// lands near the reported 73 % — documented assumption in DESIGN.md).
    pub fn paper_default() -> Self {
        // The builder's defaults are the paper constants, which satisfy
        // every range check in `build` by construction.
        Self::builder()
            .build()
            .unwrap_or_else(|e| unreachable!("paper default configuration is valid: {e}"))
    }

    /// Starts a builder initialized to [`AcceleratorConfig::paper_default`].
    pub fn builder() -> AcceleratorConfigBuilder {
        AcceleratorConfigBuilder::new()
    }

    /// The smallest global buffer the builder accepts for this array
    /// size and element width: two PE-array tiles (the double-buffering
    /// minimum). Exposed so sweeps can test buffer-axis feasibility in
    /// bulk without constructing a builder per candidate.
    pub fn min_global_buffer_bytes(array_size: usize, bytes_per_element: usize) -> usize {
        2 * array_size * array_size * bytes_per_element
    }

    /// PE array edge length N (the array is N×N).
    pub fn array_size(&self) -> usize {
        self.array_size
    }

    /// Total PE count (N²).
    pub fn pe_count(&self) -> usize {
        self.array_size * self.array_size
    }

    /// Per-PE register-file depth in elements (8 in the initial
    /// Squeezelerator, 16 after the SqueezeNext tune-up).
    pub fn rf_depth(&self) -> usize {
        self.rf_depth
    }

    /// Global buffer capacity in bytes.
    pub fn global_buffer_bytes(&self) -> usize {
        self.global_buffer_bytes
    }

    /// Bytes per activation/weight element (2 for the 16-bit datapath).
    pub fn bytes_per_element(&self) -> usize {
        self.bytes_per_element
    }

    /// Core clock in MHz.
    pub fn clock_mhz(&self) -> f64 {
        self.clock_mhz
    }

    /// The DRAM timing model.
    pub fn dram(&self) -> DramModel {
        self.dram
    }

    /// Whether DRAM transfers overlap compute via double buffering
    /// (§4.1.3; can be disabled for the ablation study).
    pub fn double_buffering(&self) -> bool {
        self.double_buffering
    }

    /// Converts a cycle count to milliseconds at the configured clock.
    pub fn cycles_to_ms(&self, cycles: u64) -> f64 {
        cycles as f64 / (self.clock_mhz * 1.0e3)
    }

    /// Usable capacity of one double-buffer half in bytes: with double
    /// buffering the global buffer is split in two halves so the DMA can
    /// fill one while the PE array drains the other.
    pub fn working_buffer_bytes(&self) -> usize {
        if self.double_buffering {
            self.global_buffer_bytes / 2
        } else {
            self.global_buffer_bytes
        }
    }
}

impl fmt::Display for AcceleratorConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}x{} PEs, RF {}, GB {} KB, {} MHz",
            self.array_size,
            self.array_size,
            self.rf_depth,
            self.global_buffer_bytes / 1024,
            self.clock_mhz
        )
    }
}

/// Builder for [`AcceleratorConfig`]; all setters default to the paper
/// configuration.
#[derive(Debug, Clone)]
pub struct AcceleratorConfigBuilder {
    array_size: usize,
    rf_depth: usize,
    global_buffer_bytes: usize,
    bytes_per_element: usize,
    clock_mhz: f64,
    dram: Option<DramModel>,
    double_buffering: bool,
}

impl Default for AcceleratorConfigBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl AcceleratorConfigBuilder {
    /// Starts from the paper defaults.
    pub fn new() -> Self {
        Self {
            array_size: 32,
            rf_depth: 16,
            global_buffer_bytes: 128 * 1024,
            bytes_per_element: 2,
            clock_mhz: 200.0,
            dram: None,
            double_buffering: true,
        }
    }

    /// Sets the PE array edge length N (paper: 8..=32).
    pub fn array_size(&mut self, n: usize) -> &mut Self {
        self.array_size = n;
        self
    }

    /// Sets the per-PE register-file depth.
    pub fn rf_depth(&mut self, depth: usize) -> &mut Self {
        self.rf_depth = depth;
        self
    }

    /// Sets the global buffer capacity in bytes.
    pub fn global_buffer_bytes(&mut self, bytes: usize) -> &mut Self {
        self.global_buffer_bytes = bytes;
        self
    }

    /// Sets the element width in bytes.
    pub fn bytes_per_element(&mut self, bytes: usize) -> &mut Self {
        self.bytes_per_element = bytes;
        self
    }

    /// Sets the core clock in MHz (also used to derive the default DRAM
    /// bytes/cycle).
    pub fn clock_mhz(&mut self, mhz: f64) -> &mut Self {
        self.clock_mhz = mhz;
        self
    }

    /// Overrides the DRAM model.
    pub fn dram(&mut self, dram: DramModel) -> &mut Self {
        self.dram = Some(dram);
        self
    }

    /// Enables or disables double buffering.
    pub fn double_buffering(&mut self, enabled: bool) -> &mut Self {
        self.double_buffering = enabled;
        self
    }

    /// Validates and builds the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidConfigError`] when a parameter is out of its
    /// physical range (array size 2..=256, RF depth ≥ 1, buffer at least
    /// large enough for one PE-array tile, positive clock).
    pub fn build(&self) -> Result<AcceleratorConfig, InvalidConfigError> {
        let err = |detail: &str| InvalidConfigError { detail: detail.to_owned() };
        if !(2..=256).contains(&self.array_size) {
            return Err(err("array size must be in 2..=256"));
        }
        if self.rf_depth == 0 {
            return Err(err("register file depth must be at least 1"));
        }
        if self.bytes_per_element == 0 || self.bytes_per_element > 8 {
            return Err(err("bytes per element must be in 1..=8"));
        }
        let min_buffer =
            AcceleratorConfig::min_global_buffer_bytes(self.array_size, self.bytes_per_element);
        if self.global_buffer_bytes < min_buffer {
            return Err(err("global buffer must hold at least two PE-array tiles"));
        }
        if !(self.clock_mhz.is_finite() && self.clock_mhz > 0.0) {
            return Err(err("clock must be positive"));
        }
        Ok(AcceleratorConfig {
            array_size: self.array_size,
            rf_depth: self.rf_depth,
            global_buffer_bytes: self.global_buffer_bytes,
            bytes_per_element: self.bytes_per_element,
            clock_mhz: self.clock_mhz,
            dram: self.dram.unwrap_or_else(|| DramModel::paper_default(self.clock_mhz)),
            double_buffering: self.double_buffering,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_the_text() {
        let cfg = AcceleratorConfig::paper_default();
        assert_eq!(cfg.array_size(), 32);
        assert_eq!(cfg.pe_count(), 1024);
        assert_eq!(cfg.rf_depth(), 16);
        assert_eq!(cfg.global_buffer_bytes(), 128 * 1024);
        assert_eq!(cfg.bytes_per_element(), 2);
        assert_eq!(cfg.dram().latency_cycles, 100);
        // 16 GB/s at 200 MHz = 80 B/cycle.
        assert!((cfg.dram().bytes_per_cycle - 80.0).abs() < 1e-9);
        assert!(cfg.double_buffering());
    }

    #[test]
    fn builder_overrides() {
        let cfg = AcceleratorConfig::builder()
            .array_size(8)
            .rf_depth(8)
            .global_buffer_bytes(64 * 1024)
            .double_buffering(false)
            .build()
            .unwrap();
        assert_eq!(cfg.array_size(), 8);
        assert_eq!(cfg.working_buffer_bytes(), 64 * 1024);
    }

    #[test]
    fn double_buffering_halves_working_set() {
        let cfg = AcceleratorConfig::paper_default();
        assert_eq!(cfg.working_buffer_bytes(), 64 * 1024);
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        assert!(AcceleratorConfig::builder().array_size(1).build().is_err());
        assert!(AcceleratorConfig::builder().array_size(512).build().is_err());
        assert!(AcceleratorConfig::builder().rf_depth(0).build().is_err());
        assert!(AcceleratorConfig::builder().global_buffer_bytes(16).build().is_err());
        assert!(AcceleratorConfig::builder().clock_mhz(0.0).build().is_err());
        assert!(AcceleratorConfig::builder().bytes_per_element(0).build().is_err());
    }

    #[test]
    fn min_buffer_helper_matches_the_builder_check() {
        for n in [2usize, 8, 32, 64] {
            let min = AcceleratorConfig::min_global_buffer_bytes(n, 2);
            let build = |bytes: usize| {
                AcceleratorConfig::builder().array_size(n).global_buffer_bytes(bytes).build()
            };
            assert!(build(min).is_ok(), "N={n}: exactly two tiles must build");
            assert!(build(min - 1).is_err(), "N={n}: one byte under must not");
        }
    }

    #[test]
    fn dram_transfer_cycles_round_up() {
        let d = DramModel { latency_cycles: 100, bytes_per_cycle: 32.0 };
        assert_eq!(d.transfer_cycles(0), 0);
        assert_eq!(d.transfer_cycles(32), 1);
        assert_eq!(d.transfer_cycles(33), 2);
    }

    #[test]
    fn cycles_to_ms() {
        let cfg = AcceleratorConfig::paper_default();
        // 200 MHz -> 200k cycles per ms.
        assert!((cfg.cycles_to_ms(200_000) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn display_mentions_geometry() {
        let s = AcceleratorConfig::paper_default().to_string();
        assert!(s.contains("32x32"));
        assert!(s.contains("128 KB"));
    }
}
