//! Minimal JSON writing helpers shared by every sink (the environment is
//! offline, so there is no serde; the subset written here — strings,
//! integers, fixed-point floats, arrays, objects — is all the sinks
//! need).

use std::fmt::Write as _;

/// Escapes `s` for inclusion inside a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders `s` as a quoted JSON string.
pub fn quote(s: &str) -> String {
    format!("\"{}\"", escape(s))
}

/// Renders an `f64` as a JSON number. JSON has no NaN/Infinity, so
/// non-finite values become `null`.
pub fn number(v: f64) -> String {
    if v.is_finite() {
        // Shortest round-trippable form Rust offers without a dependency.
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

/// Renders `(name, value)` integer pairs as a JSON object.
pub fn counter_object(counters: &[(impl AsRef<str>, u64)]) -> String {
    let body: Vec<String> =
        counters.iter().map(|(n, v)| format!("{}:{v}", quote(n.as_ref()))).collect();
    format!("{{{}}}", body.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(quote("x"), "\"x\"");
    }

    #[test]
    fn numbers_are_json_safe() {
        assert_eq!(number(1.5), "1.5");
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
    }

    #[test]
    fn counter_objects_render() {
        let empty: &[(&str, u64)] = &[];
        assert_eq!(counter_object(empty), "{}");
        assert_eq!(counter_object(&[("a", 1u64), ("b", 2)]), "{\"a\":1,\"b\":2}");
    }
}
