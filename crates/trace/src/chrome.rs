//! Chrome `about:tracing` / Perfetto sink.
//!
//! Emits the JSON object form of the [Trace Event Format] with complete
//! (`"ph":"X"`) events: one per span, on one `tid` per track, with the
//! span counters as `args`. Timestamps are simulated cycles rendered in
//! the format's microsecond field — the viewer's time axis then reads
//! directly in cycles.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use std::fmt::Write as _;

use crate::json::{counter_object, quote};
use crate::tracer::TraceData;

/// Renders a snapshot as Chrome-trace JSON (loadable in `about:tracing`
/// and [ui.perfetto.dev](https://ui.perfetto.dev)).
pub fn chrome_trace(data: &TraceData) -> String {
    let mut events: Vec<String> = Vec::with_capacity(data.span_count() + data.tracks.len() + 1);
    for (tid, track) in data.tracks.iter().enumerate() {
        events.push(format!(
            "{{\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"name\":\"thread_name\",\
             \"args\":{{\"name\":{}}}}}",
            quote(&track.name)
        ));
        for span in &track.spans {
            events.push(format!(
                "{{\"ph\":\"X\",\"pid\":1,\"tid\":{tid},\"name\":{},\"cat\":{},\
                 \"ts\":{},\"dur\":{},\"args\":{}}}",
                quote(&span.name),
                quote(span.category.tag()),
                span.start,
                span.duration,
                counter_object(&span.counters),
            ));
        }
    }
    for (name, value) in &data.counters {
        // Global counters become one counter event at t=0 on a dedicated
        // counter "process" so they render as a summary row.
        events.push(format!(
            "{{\"ph\":\"C\",\"pid\":2,\"tid\":0,\"name\":{},\"ts\":0,\
             \"args\":{{\"value\":{value}}}}}",
            quote(name)
        ));
    }
    let mut out = String::new();
    let _ = writeln!(out, "{{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    let _ = writeln!(out, "{}", events.join(",\n"));
    let _ = writeln!(out, "]}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Category;
    use crate::Tracer;

    fn demo() -> TraceData {
        let tracer = Tracer::enabled();
        let mut t = tracer.track("net:\"quoted\"");
        t.open("simulate", Category::Network);
        t.leaf("conv1", Category::Layer, 10, &[("macs", 42)]);
        t.close();
        drop(t);
        tracer.add_counter("sim.cache.hits", 3);
        tracer.snapshot()
    }

    #[test]
    fn emits_metadata_span_and_counter_events() {
        let json = chrome_trace(&demo());
        assert!(json.contains("\"ph\":\"M\""), "thread-name metadata");
        assert!(json.contains("\"ph\":\"X\""), "complete spans");
        assert!(json.contains("\"ph\":\"C\""), "global counters");
        assert!(json.contains("\"cat\":\"layer\""));
        assert!(json.contains("\"args\":{\"macs\":42}"));
        assert!(json.contains("net:\\\"quoted\\\""), "names are escaped");
    }

    #[test]
    fn structure_is_balanced() {
        // Sanity parse: every brace/bracket opened is closed, and the
        // document is one object (about:tracing requires valid JSON).
        let json = chrome_trace(&demo());
        let mut depth = 0i64;
        let mut in_string = false;
        let mut escaped = false;
        for c in json.chars() {
            if in_string {
                match (escaped, c) {
                    (false, '\\') => escaped = true,
                    (false, '"') => in_string = false,
                    _ => escaped = false,
                }
                continue;
            }
            match c {
                '"' => in_string = true,
                '{' | '[' => depth += 1,
                '}' | ']' => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0);
        }
        assert_eq!(depth, 0);
        assert!(!in_string);
    }

    #[test]
    fn empty_snapshot_is_still_valid() {
        let json = chrome_trace(&TraceData::default());
        assert!(json.contains("traceEvents"));
    }
}
