//! # codesign-trace — simulator observability
//!
//! A lightweight, dependency-free span/counter tracing layer for the
//! co-design toolkit, in the spirit of SCALE-Sim's cycle traces and
//! MAESTRO's per-dataflow counters: every per-layer simulation can emit
//! a span on a simulated-time (cycle) timeline carrying machine-readable
//! counters (cycles, MACs, DRAM bytes, buffer occupancy, cache
//! hits/misses), and whole runs aggregate into a deterministic metrics
//! snapshot.
//!
//! Design constraints, in order:
//!
//! * **zero-cost when disabled** — a [`Tracer::disabled`] handle is a
//!   `None`; every recording call is a branch on that option and
//!   returns immediately, so instrumented hot paths pay no allocation
//!   and no locking;
//! * **deterministic** — all timestamps are *simulated* cycles, never
//!   wall-clock; counters are `u64` (integer sums are order-independent,
//!   unlike floats); and tracks are canonically sorted at snapshot time,
//!   so neither thread ids nor scheduling order leak into any sink;
//! * **no dependencies** — vendored like `rand`/`proptest`; the JSON
//!   writers live in [`json`].
//!
//! Three sinks render a [`TraceData`] snapshot:
//!
//! * [`chrome::chrome_trace`] — Chrome `about:tracing` / Perfetto JSON;
//! * [`jsonl::jsonl`] — one JSON object per line, for ad-hoc tooling;
//! * [`metrics::MetricsSnapshot`] — aggregated per-category totals.
//!
//! # Examples
//!
//! ```
//! use codesign_trace::{Category, Tracer};
//!
//! let tracer = Tracer::enabled();
//! let mut track = tracer.track("net:demo");
//! track.open("simulate", Category::Network);
//! track.leaf("conv1", Category::Layer, 120, &[("macs", 960)]);
//! track.leaf("pool1", Category::Layer, 30, &[("macs", 0)]);
//! track.close();
//! drop(track);
//!
//! let data = tracer.snapshot();
//! assert_eq!(data.tracks.len(), 1);
//! assert_eq!(data.tracks[0].spans[0].duration, 150);
//! let metrics = codesign_trace::MetricsSnapshot::of(&data);
//! assert_eq!(metrics.category_counter(Category::Layer, "macs"), Some(960));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod chrome;
pub mod json;
pub mod jsonl;
pub mod metrics;
pub mod span;
pub mod tracer;

pub use chrome::chrome_trace;
pub use jsonl::jsonl;
pub use metrics::{CategoryMetrics, MetricsSnapshot};
pub use span::{Category, SpanRecord, Track, TrackData};
pub use tracer::{TraceData, Tracer};
