//! JSONL sink: one self-describing JSON object per line, for `jq`-style
//! ad-hoc analysis and append-friendly event logs.

use std::fmt::Write as _;

use crate::json::{counter_object, quote};
use crate::tracer::TraceData;

/// Renders a snapshot as JSON Lines: first one `span` record per span
/// (in canonical track order), then one `counter` record per global
/// counter.
pub fn jsonl(data: &TraceData) -> String {
    let mut out = String::new();
    for track in &data.tracks {
        for span in &track.spans {
            let _ = writeln!(
                out,
                "{{\"type\":\"span\",\"track\":{},\"name\":{},\"cat\":{},\
                 \"start\":{},\"dur\":{},\"depth\":{},\"counters\":{}}}",
                quote(&track.name),
                quote(&span.name),
                quote(span.category.tag()),
                span.start,
                span.duration,
                span.depth,
                counter_object(&span.counters),
            );
        }
    }
    for (name, value) in &data.counters {
        let _ =
            writeln!(out, "{{\"type\":\"counter\",\"name\":{},\"value\":{value}}}", quote(name));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Category;
    use crate::Tracer;

    #[test]
    fn one_record_per_line() {
        let tracer = Tracer::enabled();
        let mut t = tracer.track("t");
        t.leaf("a", Category::Layer, 5, &[("macs", 1)]);
        t.leaf("b", Category::Layer, 5, &[]);
        drop(t);
        tracer.add_counter("c", 9);
        let text = jsonl(&tracer.snapshot());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"type\":\"span\""));
        assert!(lines[0].contains("\"counters\":{\"macs\":1}"));
        assert!(lines[2].contains("\"type\":\"counter\""));
        assert!(lines.iter().all(|l| l.starts_with('{') && l.ends_with('}')));
    }

    #[test]
    fn empty_snapshot_renders_empty() {
        assert_eq!(jsonl(&TraceData::default()), "");
    }
}
