//! Aggregated metrics snapshot: the order-independent roll-up of a trace.
//!
//! Aggregation sums `u64` span counters per category, so the result is
//! identical however the underlying spans were interleaved across worker
//! threads — the property the trace layer's determinism tests pin down.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::json::{counter_object, quote};
use crate::span::Category;
use crate::tracer::TraceData;

/// Totals for one span category.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CategoryMetrics {
    /// The category.
    pub category: Category,
    /// Number of spans.
    pub spans: u64,
    /// Summed span durations (simulated cycles).
    pub cycles: u64,
    /// Summed span counters, sorted by name.
    pub counters: Vec<(String, u64)>,
}

/// The aggregated view of a [`TraceData`] snapshot.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// Number of tracks.
    pub tracks: u64,
    /// Total spans across all tracks.
    pub spans: u64,
    /// Per-category totals, in canonical category order (categories with
    /// no spans are omitted).
    pub categories: Vec<CategoryMetrics>,
    /// Global tracer counters, sorted by name.
    pub counters: Vec<(String, u64)>,
}

impl MetricsSnapshot {
    /// Aggregates a snapshot.
    pub fn of(data: &TraceData) -> Self {
        let mut by_cat: BTreeMap<Category, CategoryMetrics> = BTreeMap::new();
        for track in &data.tracks {
            for span in &track.spans {
                let m = by_cat.entry(span.category).or_insert_with(|| CategoryMetrics {
                    category: span.category,
                    spans: 0,
                    cycles: 0,
                    counters: Vec::new(),
                });
                m.spans += 1;
                m.cycles += span.duration;
                for &(name, value) in &span.counters {
                    match m.counters.iter_mut().find(|(n, _)| n == name) {
                        Some((_, v)) => *v += value,
                        None => m.counters.push((name.to_owned(), value)),
                    }
                }
            }
        }
        let mut categories: Vec<CategoryMetrics> = by_cat.into_values().collect();
        for m in &mut categories {
            m.counters.sort();
        }
        Self {
            tracks: data.tracks.len() as u64,
            spans: data.span_count() as u64,
            categories,
            counters: data.counters.clone(),
        }
    }

    /// The totals for one category, if any spans carried it.
    pub fn category(&self, category: Category) -> Option<&CategoryMetrics> {
        self.categories.iter().find(|m| m.category == category)
    }

    /// A summed span counter within one category.
    pub fn category_counter(&self, category: Category, name: &str) -> Option<u64> {
        self.category(category)?.counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// A global tracer counter.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Renders the snapshot as a JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"schema\": \"codesign-metrics/1\",");
        let _ = writeln!(out, "  \"tracks\": {},", self.tracks);
        let _ = writeln!(out, "  \"spans\": {},", self.spans);
        let cats: Vec<String> = self
            .categories
            .iter()
            .map(|m| {
                format!(
                    "    {{\"category\":{},\"spans\":{},\"cycles\":{},\"counters\":{}}}",
                    quote(m.category.tag()),
                    m.spans,
                    m.cycles,
                    counter_object(&m.counters),
                )
            })
            .collect();
        let _ = writeln!(out, "  \"categories\": [\n{}\n  ],", cats.join(",\n"));
        let _ = writeln!(out, "  \"counters\": {}", counter_object(&self.counters));
        let _ = writeln!(out, "}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tracer;

    fn demo(order: &[usize]) -> TraceData {
        // Three tracks published in the given order; aggregation must not
        // care.
        let tracer = Tracer::enabled();
        let specs = [("a", 10u64, 100u64), ("b", 20, 200), ("c", 30, 300)];
        for &i in order {
            let (name, cycles, macs) = specs[i];
            let mut t = tracer.track(name);
            t.leaf("layer", Category::Layer, cycles, &[("macs", macs)]);
        }
        tracer.add_counter("sim.cache.hits", 5);
        tracer.snapshot()
    }

    #[test]
    fn aggregation_is_order_independent() {
        let a = MetricsSnapshot::of(&demo(&[0, 1, 2]));
        let b = MetricsSnapshot::of(&demo(&[2, 0, 1]));
        assert_eq!(a, b);
        assert_eq!(a.category_counter(Category::Layer, "macs"), Some(600));
        assert_eq!(a.category(Category::Layer).unwrap().cycles, 60);
        assert_eq!(a.counter("sim.cache.hits"), Some(5));
        assert_eq!(a.counter("absent"), None);
        assert!(a.category(Category::Sweep).is_none());
    }

    #[test]
    fn json_renders_schema_and_totals() {
        let json = MetricsSnapshot::of(&demo(&[0, 1, 2])).to_json();
        assert!(json.contains("\"schema\": \"codesign-metrics/1\""));
        assert!(json.contains("\"category\":\"layer\""));
        assert!(json.contains("\"macs\":600"));
        assert!(json.contains("\"sim.cache.hits\":5"));
    }

    #[test]
    fn empty_trace_aggregates_to_empty() {
        let m = MetricsSnapshot::of(&TraceData::default());
        assert_eq!(m.spans, 0);
        assert!(m.categories.is_empty());
        assert!(m.to_json().contains("\"spans\": 0"));
    }
}
