//! The tracer handle and the snapshot it produces.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, PoisonError};

use crate::span::{Track, TrackData};

/// State shared by every clone of an enabled [`Tracer`].
#[derive(Debug, Default)]
pub(crate) struct Shared {
    tracks: Mutex<Vec<TrackData>>,
    /// Global named counters. A `BTreeMap` keeps snapshot order
    /// deterministic; `u64` sums keep aggregation order-independent.
    counters: Mutex<BTreeMap<String, u64>>,
}

impl Shared {
    pub(crate) fn publish(&self, track: TrackData) {
        self.tracks.lock().unwrap_or_else(PoisonError::into_inner).push(track);
    }
}

/// A cheap, cloneable tracing handle.
///
/// A disabled tracer (the default) is a `None`: recording calls branch
/// on it and return immediately, with no allocation and no locking, so
/// instrumented code can keep its tracer argument unconditionally.
/// Cloning shares the underlying buffers, so one handle can fan out
/// across parallel sweep workers.
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    shared: Option<Arc<Shared>>,
}

impl Tracer {
    /// A tracer that records spans and counters.
    pub fn enabled() -> Self {
        Self { shared: Some(Arc::new(Shared::default())) }
    }

    /// A no-op tracer (same as `Tracer::default()`).
    pub fn disabled() -> Self {
        Self { shared: None }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.shared.is_some()
    }

    /// Starts a new logical timeline. The name should identify the unit
    /// of work (`"sim:SqueezeNet v1.0:hybrid"`, `"sweep:16x16/rf8/64KB"`),
    /// never a thread. The track publishes itself when dropped.
    pub fn track(&self, name: impl Into<String>) -> Track {
        match &self.shared {
            Some(shared) => Track {
                shared: Some(Arc::clone(shared)),
                name: name.into(),
                spans: Vec::new(),
                open: Vec::new(),
                cursor: 0,
            },
            None => Track {
                shared: None,
                name: String::new(),
                spans: Vec::new(),
                open: Vec::new(),
                cursor: 0,
            },
        }
    }

    /// Adds `delta` to the global counter `name` (creating it at zero).
    pub fn add_counter(&self, name: &str, delta: u64) {
        if let Some(shared) = &self.shared {
            let mut counters = shared.counters.lock().unwrap_or_else(PoisonError::into_inner);
            match counters.get_mut(name) {
                Some(v) => *v += delta,
                None => {
                    counters.insert(name.to_owned(), delta);
                }
            }
        }
    }

    /// A deterministic snapshot of everything recorded so far.
    ///
    /// Tracks are sorted by `(name, content)`: two tracks with the same
    /// name and identical spans are interchangeable, so the sort is a
    /// canonical order that does not depend on which thread finished
    /// first. Live (undropped) tracks are not included.
    pub fn snapshot(&self) -> TraceData {
        let Some(shared) = &self.shared else {
            return TraceData::default();
        };
        let mut tracks = shared.tracks.lock().unwrap_or_else(PoisonError::into_inner).clone();
        tracks.sort();
        let counters = shared
            .counters
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
            .into_iter()
            .collect();
        TraceData { tracks, counters }
    }
}

/// An immutable snapshot of a tracer's recordings.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TraceData {
    /// All published tracks, in canonical `(name, content)` order.
    pub tracks: Vec<TrackData>,
    /// Global counters, sorted by name.
    pub counters: Vec<(String, u64)>,
}

impl TraceData {
    /// Total spans across all tracks.
    pub fn span_count(&self) -> usize {
        self.tracks.iter().map(|t| t.spans.len()).sum()
    }

    /// Looks up a global counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| self.counters[i].1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Category;

    #[test]
    fn disabled_is_free_and_empty() {
        let t = Tracer::disabled();
        assert!(!t.is_enabled());
        t.add_counter("x", 5);
        assert_eq!(t.snapshot(), TraceData::default());
        assert!(!Tracer::default().is_enabled());
    }

    #[test]
    fn counters_accumulate_and_sort() {
        let t = Tracer::enabled();
        t.add_counter("b", 2);
        t.add_counter("a", 1);
        t.add_counter("b", 3);
        let data = t.snapshot();
        assert_eq!(data.counters, vec![("a".to_owned(), 1), ("b".to_owned(), 5)]);
        assert_eq!(data.counter("b"), Some(5));
        assert_eq!(data.counter("zz"), None);
    }

    #[test]
    fn snapshot_order_ignores_publication_order() {
        let mk = |names: [&str; 3]| {
            let t = Tracer::enabled();
            for n in names {
                let mut track = t.track(n);
                track.leaf("work", Category::Layer, 1, &[]);
            }
            t.snapshot()
        };
        assert_eq!(mk(["c", "a", "b"]), mk(["b", "c", "a"]));
    }

    #[test]
    fn clones_share_buffers() {
        let t = Tracer::enabled();
        let clone = t.clone();
        clone.add_counter("shared", 7);
        let mut track = clone.track("t");
        track.leaf("x", Category::Layer, 2, &[]);
        drop(track);
        let data = t.snapshot();
        assert_eq!(data.counter("shared"), Some(7));
        assert_eq!(data.span_count(), 1);
    }

    #[test]
    fn live_tracks_are_not_snapshotted() {
        let t = Tracer::enabled();
        let mut track = t.track("t");
        track.leaf("x", Category::Layer, 2, &[]);
        assert_eq!(t.snapshot().span_count(), 0, "track not yet dropped");
        drop(track);
        assert_eq!(t.snapshot().span_count(), 1);
    }
}
