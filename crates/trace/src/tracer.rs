//! The tracer handle and the snapshot it produces.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, PoisonError};

use crate::span::{Track, TrackData};

/// State shared by every clone of an enabled [`Tracer`].
#[derive(Debug, Default)]
pub(crate) struct Shared {
    tracks: Mutex<Vec<TrackData>>,
    /// Global named counters. A `BTreeMap` keeps snapshot order
    /// deterministic; `u64` sums keep aggregation order-independent.
    counters: Mutex<BTreeMap<String, u64>>,
}

impl Shared {
    pub(crate) fn publish(&self, track: TrackData) {
        self.tracks.lock().unwrap_or_else(PoisonError::into_inner).push(track);
    }
}

/// A cheap, cloneable tracing handle.
///
/// A disabled tracer (the default) is a `None`: recording calls branch
/// on it and return immediately, with no allocation and no locking, so
/// instrumented code can keep its tracer argument unconditionally.
/// Cloning shares the underlying buffers, so one handle can fan out
/// across parallel sweep workers.
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    shared: Option<Arc<Shared>>,
}

impl Tracer {
    /// A tracer that records spans and counters.
    pub fn enabled() -> Self {
        Self { shared: Some(Arc::new(Shared::default())) }
    }

    /// A no-op tracer (same as `Tracer::default()`).
    pub fn disabled() -> Self {
        Self { shared: None }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.shared.is_some()
    }

    /// Starts a new logical timeline. The name should identify the unit
    /// of work (`"sim:SqueezeNet v1.0:hybrid"`, `"sweep:16x16/rf8/64KB"`),
    /// never a thread. The track publishes itself when dropped.
    pub fn track(&self, name: impl Into<String>) -> Track {
        match &self.shared {
            Some(shared) => Track {
                shared: Some(Arc::clone(shared)),
                name: name.into(),
                spans: Vec::new(),
                open: Vec::new(),
                cursor: 0,
            },
            None => Track {
                shared: None,
                name: String::new(),
                spans: Vec::new(),
                open: Vec::new(),
                cursor: 0,
            },
        }
    }

    /// Adds `delta` to the global counter `name` (creating it at zero).
    pub fn add_counter(&self, name: &str, delta: u64) {
        if let Some(shared) = &self.shared {
            let mut counters = shared.counters.lock().unwrap_or_else(PoisonError::into_inner);
            match counters.get_mut(name) {
                Some(v) => *v += delta,
                None => {
                    counters.insert(name.to_owned(), delta);
                }
            }
        }
    }

    /// Folds every counter of `data` into this tracer's counters.
    ///
    /// The server uses this to merge per-request tracer snapshots into
    /// the long-lived server tracer: counters sum (order-independent),
    /// so absorbing N request snapshots equals having recorded against
    /// one tracer all along. Tracks are *not* absorbed — per-request
    /// spans stay with the request. No-op on a disabled tracer.
    pub fn absorb_counters(&self, data: &TraceData) {
        for (name, delta) in &data.counters {
            self.add_counter(name, *delta);
        }
    }

    /// A deterministic snapshot of everything recorded so far.
    ///
    /// Tracks are sorted by `(name, content)`: two tracks with the same
    /// name and identical spans are interchangeable, so the sort is a
    /// canonical order that does not depend on which thread finished
    /// first. Live (undropped) tracks are not included.
    pub fn snapshot(&self) -> TraceData {
        let Some(shared) = &self.shared else {
            return TraceData::default();
        };
        let mut tracks = shared.tracks.lock().unwrap_or_else(PoisonError::into_inner).clone();
        tracks.sort();
        let counters = shared
            .counters
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
            .into_iter()
            .collect();
        TraceData { tracks, counters }
    }
}

/// An immutable snapshot of a tracer's recordings.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TraceData {
    /// All published tracks, in canonical `(name, content)` order.
    pub tracks: Vec<TrackData>,
    /// Global counters, sorted by name.
    pub counters: Vec<(String, u64)>,
}

impl TraceData {
    /// Total spans across all tracks.
    pub fn span_count(&self) -> usize {
        self.tracks.iter().map(|t| t.spans.len()).sum()
    }

    /// Looks up a global counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| self.counters[i].1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Category;

    #[test]
    fn disabled_is_free_and_empty() {
        let t = Tracer::disabled();
        assert!(!t.is_enabled());
        t.add_counter("x", 5);
        assert_eq!(t.snapshot(), TraceData::default());
        assert!(!Tracer::default().is_enabled());
    }

    #[test]
    fn counters_accumulate_and_sort() {
        let t = Tracer::enabled();
        t.add_counter("b", 2);
        t.add_counter("a", 1);
        t.add_counter("b", 3);
        let data = t.snapshot();
        assert_eq!(data.counters, vec![("a".to_owned(), 1), ("b".to_owned(), 5)]);
        assert_eq!(data.counter("b"), Some(5));
        assert_eq!(data.counter("zz"), None);
    }

    #[test]
    fn snapshot_order_ignores_publication_order() {
        let mk = |names: [&str; 3]| {
            let t = Tracer::enabled();
            for n in names {
                let mut track = t.track(n);
                track.leaf("work", Category::Layer, 1, &[]);
            }
            t.snapshot()
        };
        assert_eq!(mk(["c", "a", "b"]), mk(["b", "c", "a"]));
    }

    #[test]
    fn absorbing_counters_equals_recording_directly() {
        let request_a = Tracer::enabled();
        request_a.add_counter("sim.cache.hits", 3);
        request_a.add_counter("serve.dedup", 1);
        let request_b = Tracer::enabled();
        request_b.add_counter("sim.cache.hits", 4);

        let server = Tracer::enabled();
        server.add_counter("sim.cache.hits", 1);
        server.absorb_counters(&request_a.snapshot());
        server.absorb_counters(&request_b.snapshot());

        let direct = Tracer::enabled();
        direct.add_counter("sim.cache.hits", 8);
        direct.add_counter("serve.dedup", 1);
        assert_eq!(server.snapshot().counters, direct.snapshot().counters);

        // Absorbing into a disabled tracer stays a no-op.
        let off = Tracer::disabled();
        off.absorb_counters(&request_a.snapshot());
        assert_eq!(off.snapshot(), TraceData::default());
    }

    #[test]
    fn clones_share_buffers() {
        let t = Tracer::enabled();
        let clone = t.clone();
        clone.add_counter("shared", 7);
        let mut track = clone.track("t");
        track.leaf("x", Category::Layer, 2, &[]);
        drop(track);
        let data = t.snapshot();
        assert_eq!(data.counter("shared"), Some(7));
        assert_eq!(data.span_count(), 1);
    }

    #[test]
    fn live_tracks_are_not_snapshotted() {
        let t = Tracer::enabled();
        let mut track = t.track("t");
        track.leaf("x", Category::Layer, 2, &[]);
        assert_eq!(t.snapshot().span_count(), 0, "track not yet dropped");
        drop(track);
        assert_eq!(t.snapshot().span_count(), 1);
    }
}
