//! Spans, tracks, and the nesting rules that make traces well-formed.

use std::fmt;
use std::sync::Arc;

use crate::tracer::Shared;

/// What kind of work a span covers. The variant order is the canonical
/// reporting order used by every sink.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Category {
    /// A whole-network simulation.
    Network,
    /// One layer inside a network simulation.
    Layer,
    /// One phase segment of the cycle-stepped machine (load/compute/drain).
    Phase,
    /// One design point of a hardware sweep.
    Sweep,
    /// One model-variant evaluation of the co-design study.
    Codesign,
    /// One hybrid-vs-fixed architecture comparison.
    Compare,
    /// One bench-report experiment generator.
    Experiment,
}

impl Category {
    /// Short stable tag used in sink output.
    pub fn tag(&self) -> &'static str {
        match self {
            Category::Network => "network",
            Category::Layer => "layer",
            Category::Phase => "phase",
            Category::Sweep => "sweep",
            Category::Codesign => "codesign",
            Category::Compare => "compare",
            Category::Experiment => "experiment",
        }
    }

    /// Every category, in canonical order.
    pub fn all() -> [Category; 7] {
        [
            Category::Network,
            Category::Layer,
            Category::Phase,
            Category::Sweep,
            Category::Codesign,
            Category::Compare,
            Category::Experiment,
        ]
    }
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tag())
    }
}

/// One closed span on a track's simulated-time (cycle) timeline.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct SpanRecord {
    /// Span name (layer name, design-point label, ...).
    pub name: String,
    /// Kind of work.
    pub category: Category,
    /// Start, in cycles from the track origin.
    pub start: u64,
    /// Duration in cycles.
    pub duration: u64,
    /// Nesting depth (0 = top level of the track).
    pub depth: usize,
    /// Attached integer counters (MACs, DRAM bytes, ...). Counter names
    /// are `&'static str` so recording never allocates for the keys.
    pub counters: Vec<(&'static str, u64)>,
}

impl SpanRecord {
    /// End of the span (`start + duration`).
    pub fn end(&self) -> u64 {
        self.start + self.duration
    }

    /// Looks up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| *n == name).map(|(_, v)| *v)
    }
}

/// All spans recorded on one logical timeline, in pre-order (a parent
/// precedes its children; siblings are in start order).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct TrackData {
    /// Track name — a *logical* lane (one network run, one sweep point),
    /// never an OS thread id.
    pub name: String,
    /// Spans in pre-order.
    pub spans: Vec<SpanRecord>,
}

impl TrackData {
    /// Total timeline extent: the maximum span end.
    pub fn extent(&self) -> u64 {
        self.spans.iter().map(SpanRecord::end).max().unwrap_or(0)
    }

    /// Verifies the nesting invariants a [`Track`] guarantees by
    /// construction: depth steps down freely but up by at most one,
    /// every child interval is contained in its parent's, and siblings
    /// at the same depth do not overlap.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first offending span.
    pub fn check_nesting(&self) -> Result<(), String> {
        let mut stack: Vec<&SpanRecord> = Vec::new();
        let mut last_end: Vec<u64> = Vec::new();
        for s in &self.spans {
            stack.truncate(s.depth);
            last_end.truncate(s.depth + 1);
            if stack.len() != s.depth {
                return Err(format!(
                    "span `{}` jumps to depth {} with only {} ancestors",
                    s.name,
                    s.depth,
                    stack.len()
                ));
            }
            if let Some(parent) = stack.last() {
                if s.start < parent.start || s.end() > parent.end() {
                    return Err(format!(
                        "span `{}` [{}, {}) escapes parent `{}` [{}, {})",
                        s.name,
                        s.start,
                        s.end(),
                        parent.name,
                        parent.start,
                        parent.end()
                    ));
                }
            }
            if let Some(&prev) = last_end.get(s.depth) {
                if s.start < prev {
                    return Err(format!(
                        "span `{}` starts at {} before its sibling ended at {}",
                        s.name, s.start, prev
                    ));
                }
            }
            if last_end.len() == s.depth {
                last_end.push(s.end());
            } else {
                last_end[s.depth] = s.end();
            }
            stack.push(s);
        }
        Ok(())
    }
}

/// A live recording handle for one logical timeline.
///
/// A track owns a simulated-time cursor that starts at 0. [`Track::leaf`]
/// appends a complete span at the cursor and advances it;
/// [`Track::open`]/[`Track::close`] bracket nested spans whose duration
/// is however far the cursor moved in between. All methods are no-ops on
/// a disabled tracer's tracks.
///
/// Dropping the track closes any still-open spans and publishes the
/// recorded data to the owning [`crate::Tracer`].
#[derive(Debug)]
pub struct Track {
    pub(crate) shared: Option<Arc<Shared>>,
    pub(crate) name: String,
    pub(crate) spans: Vec<SpanRecord>,
    /// Indices into `spans` of the currently open spans, outermost first.
    pub(crate) open: Vec<usize>,
    pub(crate) cursor: u64,
}

impl Track {
    /// Whether this track records anything.
    pub fn is_enabled(&self) -> bool {
        self.shared.is_some()
    }

    /// The current simulated-time cursor.
    pub fn now(&self) -> u64 {
        self.cursor
    }

    /// Opens a nested span at the cursor. Pair with [`Track::close`].
    pub fn open(&mut self, name: &str, category: Category) {
        if self.shared.is_none() {
            return;
        }
        let depth = self.open.len();
        self.open.push(self.spans.len());
        self.spans.push(SpanRecord {
            name: name.to_owned(),
            category,
            start: self.cursor,
            duration: 0,
            depth,
            counters: Vec::new(),
        });
    }

    /// Closes the innermost open span; its duration is the cursor
    /// movement since [`Track::open`]. No-op when nothing is open.
    pub fn close(&mut self) {
        self.close_with(&[]);
    }

    /// Closes the innermost open span, attaching `counters` to it.
    pub fn close_with(&mut self, counters: &[(&'static str, u64)]) {
        if self.shared.is_none() {
            return;
        }
        if let Some(i) = self.open.pop() {
            let start = self.spans[i].start;
            self.spans[i].duration = self.cursor - start;
            self.spans[i].counters.extend_from_slice(counters);
        }
    }

    /// Appends a complete span of `duration` cycles at the cursor and
    /// advances the cursor past it.
    pub fn leaf(
        &mut self,
        name: &str,
        category: Category,
        duration: u64,
        counters: &[(&'static str, u64)],
    ) {
        if self.shared.is_none() {
            return;
        }
        self.spans.push(SpanRecord {
            name: name.to_owned(),
            category,
            start: self.cursor,
            duration,
            depth: self.open.len(),
            counters: counters.to_vec(),
        });
        self.cursor += duration;
    }

    /// Advances the cursor without recording a span (idle time).
    pub fn advance(&mut self, cycles: u64) {
        if self.shared.is_some() {
            self.cursor += cycles;
        }
    }
}

impl Drop for Track {
    fn drop(&mut self) {
        if self.shared.is_none() {
            return;
        }
        while !self.open.is_empty() {
            self.close();
        }
        let Some(shared) = self.shared.take() else { return };
        if !self.spans.is_empty() {
            shared.publish(TrackData {
                name: std::mem::take(&mut self.name),
                spans: std::mem::take(&mut self.spans),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tracer;

    #[test]
    fn leaf_spans_tile_the_timeline() {
        let tracer = Tracer::enabled();
        let mut t = tracer.track("t");
        t.leaf("a", Category::Layer, 10, &[("macs", 5)]);
        t.leaf("b", Category::Layer, 20, &[]);
        assert_eq!(t.now(), 30);
        drop(t);
        let data = tracer.snapshot();
        let track = &data.tracks[0];
        assert_eq!(track.spans[0].end(), 10);
        assert_eq!(track.spans[1].start, 10);
        assert_eq!(track.spans[0].counter("macs"), Some(5));
        assert_eq!(track.spans[0].counter("absent"), None);
        assert_eq!(track.extent(), 30);
        track.check_nesting().expect("leaf spans are well-formed");
    }

    #[test]
    fn open_close_brackets_children() {
        let tracer = Tracer::enabled();
        let mut t = tracer.track("t");
        t.open("outer", Category::Network);
        t.leaf("a", Category::Layer, 7, &[]);
        t.open("inner", Category::Network);
        t.leaf("b", Category::Layer, 3, &[]);
        t.close();
        t.close_with(&[("total", 10)]);
        drop(t);
        let data = tracer.snapshot();
        let spans = &data.tracks[0].spans;
        assert_eq!(spans[0].duration, 10, "outer covers both leaves");
        assert_eq!(spans[0].depth, 0);
        assert_eq!(spans[1].depth, 1);
        assert_eq!(spans[2].name, "inner");
        assert_eq!(spans[2].start, 7);
        assert_eq!(spans[2].duration, 3);
        assert_eq!(spans[3].depth, 2);
        assert_eq!(spans[0].counter("total"), Some(10));
        data.tracks[0].check_nesting().expect("bracketed spans are well-formed");
    }

    #[test]
    fn disabled_tracks_record_nothing() {
        let tracer = Tracer::disabled();
        let mut t = tracer.track("t");
        assert!(!t.is_enabled());
        t.open("outer", Category::Network);
        t.leaf("a", Category::Layer, 10, &[]);
        t.advance(5);
        t.close();
        assert_eq!(t.now(), 0, "disabled cursor never moves");
        drop(t);
        assert!(tracer.snapshot().tracks.is_empty());
    }

    #[test]
    fn dropping_with_open_spans_closes_them() {
        let tracer = Tracer::enabled();
        let mut t = tracer.track("t");
        t.open("outer", Category::Network);
        t.leaf("a", Category::Layer, 4, &[]);
        drop(t); // no explicit close
        let data = tracer.snapshot();
        assert_eq!(data.tracks[0].spans[0].duration, 4);
        data.tracks[0].check_nesting().expect("auto-closed spans are well-formed");
    }

    #[test]
    fn check_nesting_rejects_malformed_traces() {
        let span = |name: &str, start: u64, duration: u64, depth: usize| SpanRecord {
            name: name.into(),
            category: Category::Layer,
            start,
            duration,
            depth,
            counters: Vec::new(),
        };
        // Depth jump without an ancestor.
        let t = TrackData { name: "t".into(), spans: vec![span("a", 0, 5, 1)] };
        assert!(t.check_nesting().is_err());
        // Child escaping its parent.
        let t =
            TrackData { name: "t".into(), spans: vec![span("p", 0, 5, 0), span("c", 3, 10, 1)] };
        assert!(t.check_nesting().is_err());
        // Overlapping siblings.
        let t = TrackData { name: "t".into(), spans: vec![span("a", 0, 5, 0), span("b", 3, 5, 0)] };
        assert!(t.check_nesting().is_err());
        // A well-formed tree passes.
        let t = TrackData {
            name: "t".into(),
            spans: vec![span("p", 0, 10, 0), span("a", 0, 4, 1), span("b", 4, 6, 1)],
        };
        t.check_nesting().expect("well-formed tree");
    }
}
