//! Analytic weight-stationary (WS) dataflow model.
//!
//! Mapping (§3.2/§4.1.2 of the paper, TPU-style): PE rows hold input
//! channels, PE columns hold output channels. An `rt × ct` weight tile is
//! preloaded one row per cycle, then the stream buffer broadcasts one
//! pixel from each of the `rt` input channels per cycle while per-column
//! adder chains reduce the products; this repeats for every output pixel,
//! every filter tap, and every `(row-tile, column-tile)` pair.
//!
//! Consequences the paper leans on, all reproduced by this model:
//!
//! * `1×1` layers stream at full array utilization — WS's best case;
//! * the first conv layer has only 3 input channels, so only 3 of N rows
//!   are ever active;
//! * depthwise convolutions present a diagonal weight matrix, which the
//!   ("naive WS") array executes as a dense `C × C` matrix of mostly
//!   zeros;
//! * weight zeros cannot be skipped — the weights are resident, and the
//!   streaming schedule is oblivious to their values.

use codesign_arch::{AcceleratorConfig, AccessCounts};

use crate::perf::{ComputePerf, PhaseCycles};
use crate::workload::{split, ConvWork, WorkKind};

/// Simulates one layer's MAC work under the WS dataflow.
///
/// Weight sparsity is intentionally ignored (WS cannot exploit it).
pub fn simulate_ws(work: &ConvWork, cfg: &AcceleratorConfig) -> ComputePerf {
    let n = cfg.array_size();
    let out_plane = work.out_plane() as u64;
    let taps = work.taps() as u64;

    // The WS array maps (input channel x output channel); depthwise
    // weight matrices are diagonal but the naive reference architecture
    // executes them densely.
    let rows_total = work.in_channels;
    let cols_total = work.out_channels;

    let row_tiles = split(rows_total, n);
    let col_tiles = split(cols_total, n);

    let mut load = 0u64;
    let mut stream = 0u64;
    let mut useful_macs = 0u64;
    let mut acc = AccessCounts::zero();

    for _group in 0..work.groups {
        for &ct in &col_tiles {
            // Partial sums for this column tile's output channels
            // accumulate in the global buffer across row tiles and taps;
            // the very first contribution is a pure write.
            let mut first_accumulation = true;
            for &rt in &row_tiles {
                for _tap in 0..taps {
                    let (rt, ct) = (rt as u64, ct as u64);
                    // Preload the weight tile, one row per cycle.
                    load += rt;
                    acc.global_buffer += rt * ct; // weight reads
                                                  // Stream every output pixel position.
                    stream += out_plane;
                    acc.global_buffer += out_plane * rt; // input reads
                                                         // Each streamed cycle drives rt*ct PEs.
                    acc.register_file += out_plane * rt * ct; // weight read per MAC
                    acc.inter_pe += out_plane * rt // input injection
                        + out_plane * rt * ct; // adder-chain hops
                                               // Partial sums accumulate in the global buffer across
                                               // row tiles and taps.
                    acc.global_buffer += out_plane * ct; // psum write
                    if !first_accumulation {
                        acc.global_buffer += out_plane * ct; // psum read-modify
                    }
                    first_accumulation = false;
                }
            }
        }
    }

    // Useful MACs: dense layers use the whole tile; depthwise only the
    // diagonal (one input channel per output channel).
    useful_macs += match work.kind {
        WorkKind::Depthwise => out_plane * taps * work.in_channels as u64,
        _ => out_plane * taps * (work.in_channels * work.out_channels * work.groups) as u64,
    };
    acc.macs = useful_macs;

    // A depthwise weight matrix is diagonal: the dense schedule still
    // burns the cycles, but PEs holding zero weights neither switch their
    // multipliers nor move data, so the energy-relevant access counts are
    // those of the useful diagonal (inputs must still stream fully).
    if work.kind == WorkKind::Depthwise {
        let c = work.in_channels as u64;
        acc.register_file = useful_macs;
        acc.inter_pe = 2 * useful_macs;
        acc.global_buffer = c * taps // diagonal weights
            + out_plane * c * taps // streamed inputs
            + 2 * out_plane * c * taps; // partial-sum traffic
    }

    ComputePerf {
        phases: PhaseCycles { load, compute: stream, drain: 0 },
        executed_macs: useful_macs,
        accesses: acc,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> AcceleratorConfig {
        AcceleratorConfig::paper_default()
    }

    fn dense(c: usize, k: usize, f: usize, oh: usize, ow: usize) -> ConvWork {
        ConvWork {
            kind: WorkKind::Dense,
            groups: 1,
            in_channels: c,
            out_channels: k,
            kernel_h: f,
            kernel_w: f,
            stride: 1,
            in_h: oh + f - 1,
            in_w: ow + f - 1,
            out_h: oh,
            out_w: ow,
        }
    }

    #[test]
    fn pointwise_single_tile_cycle_count() {
        // C=32, K=32 fits one tile: preload 32 + stream OHW.
        let w = dense(32, 32, 1, 55, 55);
        let p = simulate_ws(&w, &cfg());
        assert_eq!(p.phases.load, 32);
        assert_eq!(p.phases.compute, 55 * 55);
        assert_eq!(p.executed_macs, w.macs());
        // Full array active while streaming: utilization just under 1.
        let util = p.utilization(1024);
        assert!(util > 0.95, "util = {util}");
    }

    #[test]
    fn multi_tile_scales_linearly() {
        let small = simulate_ws(&dense(32, 32, 1, 13, 13), &cfg());
        let big = simulate_ws(&dense(64, 64, 1, 13, 13), &cfg());
        // 2x2 tiles: 4x the passes.
        assert_eq!(big.phases.compute, 4 * small.phases.compute);
        assert_eq!(big.executed_macs, 4 * small.executed_macs);
    }

    #[test]
    fn first_conv_rows_limited() {
        // SqueezeNet conv1 shape: C=3 limits active rows to 3/32.
        let w = ConvWork {
            kind: WorkKind::Dense,
            groups: 1,
            in_channels: 3,
            out_channels: 96,
            kernel_h: 7,
            kernel_w: 7,
            stride: 2,
            in_h: 227,
            in_w: 227,
            out_h: 111,
            out_w: 111,
        };
        let p = simulate_ws(&w, &cfg());
        let util = p.utilization(1024);
        assert!(util < 0.12, "conv1 WS utilization should be poor, got {util}");
        assert_eq!(p.executed_macs, w.macs());
    }

    #[test]
    fn depthwise_is_dense_cycles_sparse_utility() {
        let w = ConvWork {
            kind: WorkKind::Depthwise,
            groups: 1,
            in_channels: 64,
            out_channels: 64,
            kernel_h: 3,
            kernel_w: 3,
            stride: 1,
            in_h: 58,
            in_w: 58,
            out_h: 56,
            out_w: 56,
        };
        let p = simulate_ws(&w, &cfg());
        // Cycles are those of a dense 64x64 map (2x2 tiles)...
        let dense_equiv = simulate_ws(&dense(64, 64, 3, 56, 56), &cfg());
        assert_eq!(p.cycles(), dense_equiv.cycles());
        // ...but only the diagonal MACs are useful.
        assert_eq!(p.executed_macs, (56 * 56 * 9 * 64) as u64);
        assert!(p.utilization(1024) < 0.04);
    }

    #[test]
    fn fc_is_one_pixel_stream() {
        let w = ConvWork {
            kind: WorkKind::FullyConnected,
            groups: 1,
            in_channels: 256,
            out_channels: 128,
            kernel_h: 1,
            kernel_w: 1,
            stride: 1,
            in_h: 1,
            in_w: 1,
            out_h: 1,
            out_w: 1,
        };
        let p = simulate_ws(&w, &cfg());
        // 8 row tiles x 4 col tiles, each: preload 32 + stream 1.
        assert_eq!(p.phases.load, 8 * 4 * 32);
        assert_eq!(p.phases.compute, 8 * 4);
        assert_eq!(p.executed_macs, 256 * 128);
    }

    #[test]
    fn grouped_conv_repeats_groups() {
        let mut w = dense(8, 8, 3, 13, 13);
        w.groups = 2;
        let single = simulate_ws(&dense(8, 8, 3, 13, 13), &cfg());
        let grouped = simulate_ws(&w, &cfg());
        assert_eq!(grouped.cycles(), 2 * single.cycles());
        assert_eq!(grouped.executed_macs, 2 * single.executed_macs);
    }

    #[test]
    fn access_counts_are_consistent() {
        let w = dense(32, 32, 3, 14, 14);
        let p = simulate_ws(&w, &cfg());
        assert_eq!(p.accesses.macs, p.executed_macs);
        // One RF (weight) access per MAC in a dense layer.
        assert_eq!(p.accesses.register_file, p.executed_macs);
        assert!(p.accesses.global_buffer > 0);
        assert_eq!(p.phases.drain, 0);
    }
}
