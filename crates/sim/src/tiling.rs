//! Loop-tiling search for layers whose footprint exceeds the global
//! buffer.
//!
//! §4.1.3 of the paper: "If the memory footprint of the layer exceeds the
//! capacity of the buffer, some of the six convolution loops are tiled.
//! The size of the tile and the order of loops that give the shortest
//! execution time are selected."
//!
//! The six loops are (output channel K, input channel C, output row,
//! output column, kernel row, kernel column). Kernel loops are never
//! worth tiling (tiny extent), and columns are kept whole so DMA bursts
//! stay contiguous; the search therefore tiles **output rows**, **output
//! channels**, and **input channels**, and picks between the two loop
//! orders that matter for DRAM traffic:
//!
//! * **weights outer** — each weight tile visits every spatial strip:
//!   inputs are fetched once per output-channel tile;
//! * **spatial outer** — each strip visits every weight tile: weights
//!   are fetched once per strip.
//!
//! Tiling the input-channel loop spills partial sums: every non-final
//! input-channel tile writes and re-reads the output strip once.

use codesign_arch::AcceleratorConfig;

use crate::dram::DramTraffic;
use crate::error::{checked_product, SimError, SimResult};
use crate::workload::{ConvWork, WorkKind};

/// Which of the two traffic-relevant loop orders a tiling uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LoopOrder {
    /// Output-channel tiles outermost; input re-fetched per weight tile.
    WeightsOuter,
    /// Spatial strips outermost; weights re-fetched per strip.
    SpatialOuter,
}

/// A concrete tiling of the convolution loop nest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Tiling {
    /// Output rows per spatial strip.
    pub out_rows: usize,
    /// Output channels per weight tile.
    pub out_channels: usize,
    /// Input channels per reduction tile.
    pub in_channels: usize,
    /// Loop order.
    pub order: LoopOrder,
}

/// A tiling together with its DRAM cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TilingPlan {
    /// The chosen tiling.
    pub tiling: Tiling,
    /// Resulting DRAM traffic.
    pub traffic: DramTraffic,
    /// Peak on-chip working set in bytes (≤ the working buffer).
    pub working_set: u64,
}

fn candidates(extent: usize) -> Vec<usize> {
    let mut v = vec![extent];
    let mut c = 1usize;
    while c < extent {
        v.push(c);
        c *= 2;
    }
    v.sort_unstable();
    v.dedup();
    v
}

/// On-chip bytes needed by one tile of the given tiling
/// (overflow-checked — overflow-scale tiles report honestly instead of
/// wrapping).
fn working_set(work: &ConvWork, t: &Tiling, bytes: usize) -> SimResult<u64> {
    let in_rows = (t.out_rows - 1) * work.stride + work.kernel_h;
    let input = checked_product(&[t.in_channels, in_rows, work.in_w], "tile input footprint")?;
    let weights = match work.kind {
        WorkKind::Depthwise => checked_product(&[t.in_channels, work.taps()], "tile weights")?,
        _ => checked_product(&[t.in_channels, t.out_channels, work.taps()], "tile weights")?,
    };
    let output =
        checked_product(&[t.out_channels, t.out_rows, work.out_w], "tile output footprint")?;
    input
        .checked_add(weights)
        .and_then(|s| s.checked_add(output))
        .and_then(|s| s.checked_mul(bytes as u64))
        .ok_or(SimError::overflow("tile working set"))
}

/// DRAM traffic of the tiling over the whole layer (one group; groups
/// scale all operands linearly so they cancel in the comparison and are
/// re-applied by the caller). Overflow-checked.
fn traffic(work: &ConvWork, t: &Tiling, bytes: u64) -> SimResult<DramTraffic> {
    const CTX: &str = "tiling DRAM traffic";
    let of = || SimError::overflow(CTX);
    let strips = work.out_h.div_ceil(t.out_rows) as u64;
    let k_tiles = work.out_channels.div_ceil(t.out_channels) as u64;
    let c_tiles = work.in_channels.div_ceil(t.in_channels) as u64;

    // Halo: adjacent strips re-fetch kernel_h - stride overlapping rows.
    let in_rows_per_strip = |rows: usize| (rows - 1) * work.stride + work.kernel_h;
    let input_once: u64 = if strips == 1 {
        work.input_elements() / work.groups as u64
    } else {
        let full_rows = in_rows_per_strip(t.out_rows);
        checked_product(&[work.in_channels, full_rows, work.in_w], CTX)?
            .checked_mul(strips)
            .ok_or_else(of)?
    };
    let weights_once = match work.kind {
        WorkKind::Depthwise => checked_product(&[work.in_channels, work.taps()], CTX)?,
        _ => checked_product(&[work.in_channels, work.out_channels, work.taps()], CTX)?,
    };
    let output_once = work.output_elements() / work.groups as u64;

    // Depthwise layers have no cross-channel reduction and one filter
    // per channel: each operand moves exactly once however the channel
    // and spatial loops nest (only the strip halo costs extra).
    if work.kind == WorkKind::Depthwise {
        return Ok(DramTraffic {
            input: input_once.checked_mul(bytes).ok_or_else(of)?,
            weights: weights_once.checked_mul(bytes).ok_or_else(of)?,
            output: output_once.checked_mul(bytes).ok_or_else(of)?,
        });
    }

    let (input, weights) = match t.order {
        LoopOrder::WeightsOuter => (input_once.checked_mul(k_tiles).ok_or_else(of)?, weights_once),
        LoopOrder::SpatialOuter => (input_once, weights_once.checked_mul(strips).ok_or_else(of)?),
    };
    // Partial-sum spills for a tiled reduction loop.
    let spill = output_once.checked_mul(2 * (c_tiles - 1)).ok_or_else(of)?;

    Ok(DramTraffic {
        input: input.checked_mul(bytes).ok_or_else(of)?,
        weights: weights.checked_mul(bytes).ok_or_else(of)?,
        output: output_once.checked_add(spill).and_then(|o| o.checked_mul(bytes)).ok_or_else(of)?,
    })
}

/// Number of tile iterations a tiling induces (tie-break metric: fewer,
/// larger tiles mean less control overhead).
fn tile_count(work: &ConvWork, t: &Tiling) -> u64 {
    (work.out_h.div_ceil(t.out_rows)
        * work.out_channels.div_ceil(t.out_channels)
        * work.in_channels.div_ceil(t.in_channels)) as u64
}

/// Scales one group's traffic by the group count (overflow-checked).
fn grouped(tr: DramTraffic, groups: u64) -> SimResult<DramTraffic> {
    let of = || SimError::overflow("tiling DRAM traffic");
    Ok(DramTraffic {
        input: tr.input.checked_mul(groups).ok_or_else(of)?,
        weights: tr.weights.checked_mul(groups).ok_or_else(of)?,
        output: tr.output.checked_mul(groups).ok_or_else(of)?,
    })
}

/// Builds the full [`TilingPlan`] for one candidate and folds it into the
/// running best under the selection rule both searches share: strictly
/// less total traffic wins, equal traffic falls back to strictly fewer
/// tiles, and exact ties keep the first candidate encountered.
fn consider(
    work: &ConvWork,
    t: Tiling,
    ws: u64,
    bytes: usize,
    best: &mut Option<TilingPlan>,
) -> SimResult<()> {
    let tr = traffic(work, &t, bytes as u64)?;
    let plan = TilingPlan { tiling: t, traffic: grouped(tr, work.groups as u64)?, working_set: ws };
    let better = |b: &TilingPlan| {
        plan.traffic.total() < b.traffic.total()
            || (plan.traffic.total() == b.traffic.total()
                && tile_count(work, &t) < tile_count(work, &b.tiling))
    };
    if best.as_ref().is_none_or(better) {
        *best = Some(plan);
    }
    Ok(())
}

/// Lower bound on the total traffic of *any* candidate with this strip
/// height: the full-channel tile `(out_rows, K, C)` moves every operand
/// exactly once (plus the strip halo), and shrinking the channel tiles
/// only adds re-fetches and partial-sum spills — `traffic` is
/// non-increasing in both channel-tile sizes for every loop order.
fn lower_bound_rows(work: &ConvWork, out_rows: usize, bytes: usize) -> SimResult<u64> {
    let t = Tiling {
        out_rows,
        out_channels: work.out_channels,
        in_channels: work.in_channels,
        order: LoopOrder::WeightsOuter,
    };
    Ok(grouped(traffic(work, &t, bytes as u64)?, work.groups as u64)?.total())
}

/// Lower bound on the total traffic of any candidate with this strip
/// height *and* output-channel tile: evaluate both loop orders at the
/// full input-channel tile (no spills, minimal re-fetch) and take the
/// cheaper one.
fn lower_bound_rows_channels(
    work: &ConvWork,
    out_rows: usize,
    out_channels: usize,
    bytes: usize,
) -> SimResult<u64> {
    let t = |order| Tiling { out_rows, out_channels, in_channels: work.in_channels, order };
    let wo =
        grouped(traffic(work, &t(LoopOrder::WeightsOuter), bytes as u64)?, work.groups as u64)?;
    let so =
        grouped(traffic(work, &t(LoopOrder::SpatialOuter), bytes as u64)?, work.groups as u64)?;
    Ok(wo.total().min(so.total()))
}

/// Searches tile sizes and loop orders for the DRAM-minimal plan that
/// fits the working buffer.
///
/// This is the branch-and-bound search on the sweep hot path. It visits
/// the same candidate grid as [`optimize_tiling_exhaustive`] in the same
/// order and applies the same selection rule, but prunes sub-grids that
/// provably cannot win using two monotonicity facts:
///
/// * the working set is non-decreasing in every tile dimension, so a
///   sub-grid whose smallest tile already overflows the buffer is
///   entirely infeasible;
/// * total traffic is non-increasing in both channel-tile dimensions
///   (shrinking them only adds re-fetches and spills), so the
///   full-channel tile bounds every candidate sharing its strip height
///   from below.
///
/// Pruning compares with *strict* inequality against the best total seen
/// so far, so equal-traffic candidates still reach the tile-count
/// tie-break and the chosen plan is bit-identical to the exhaustive
/// search (the equivalence property test in `tests/properties.rs` pins
/// this).
///
/// # Errors
///
/// * [`SimError::InvalidWorkload`] / [`SimError::ArithmeticOverflow`]
///   for malformed or overflow-scale workloads
///   (see [`ConvWork::validate`]);
/// * [`SimError::InfeasibleTiling`] when even the smallest candidate
///   tile exceeds the working buffer (a huge layer on a tiny buffer) —
///   the error reports the smallest achievable working set so sweeps
///   can record *how far* the point missed.
pub fn optimize_tiling(work: &ConvWork, cfg: &AcceleratorConfig) -> SimResult<TilingPlan> {
    work.validate()?;
    let bytes = cfg.bytes_per_element();
    let budget = cfg.working_buffer_bytes() as u64;
    let row_cands = candidates(work.out_h);
    let k_cands = candidates(work.out_channels);
    let c_cands = candidates(work.in_channels);

    // Seed an upper bound on the winning total before the scan: every
    // strip height whose full-channel tile fits contributes a *feasible*
    // plan whose total equals that strip height's lower bound, so the
    // minimum over them already caps the optimum and prunes most of the
    // grid up front (ascending iteration otherwise visits the
    // worst-traffic tiny tiles first).
    let mut bound: Option<u64> = None;
    for &out_rows in &row_cands {
        let full = Tiling {
            out_rows,
            out_channels: work.out_channels,
            in_channels: work.in_channels,
            order: LoopOrder::WeightsOuter,
        };
        if working_set(work, &full, bytes)? <= budget {
            // An overflowing bound just means "no bound": pruning is an
            // optimization and must never surface an error the
            // exhaustive search would not.
            if let Ok(lb) = lower_bound_rows(work, out_rows, bytes) {
                if bound.is_none_or(|b| lb < b) {
                    bound = Some(lb);
                }
            }
        }
    }

    let mut best: Option<TilingPlan> = None;
    let mut smallest_ws: Option<u64> = None;
    for &out_rows in &row_cands {
        // Feasibility floor: the working set is non-decreasing in both
        // channel tiles, so if (out_rows, 1, 1) overflows the buffer the
        // whole strip height is infeasible. The floor at out_rows = 1 is
        // the global minimum, keeping the infeasibility diagnostic
        // identical to the exhaustive search's.
        let floor = working_set(
            work,
            &Tiling { out_rows, out_channels: 1, in_channels: 1, order: LoopOrder::WeightsOuter },
            bytes,
        )?;
        if smallest_ws.is_none_or(|s| floor < s) {
            smallest_ws = Some(floor);
        }
        if floor > budget {
            continue;
        }
        let cap = match (bound, best.as_ref().map(|b| b.traffic.total())) {
            (Some(u), Some(t)) => Some(u.min(t)),
            (u, t) => u.or(t),
        };
        if let Some(cap) = cap {
            if lower_bound_rows(work, out_rows, bytes).is_ok_and(|lb| lb > cap) {
                continue;
            }
        }
        for &out_channels in &k_cands {
            let t1 =
                Tiling { out_rows, out_channels, in_channels: 1, order: LoopOrder::WeightsOuter };
            if working_set(work, &t1, bytes)? > budget {
                break; // monotone in the output-channel tile; candidates ascend
            }
            let cap = match (bound, best.as_ref().map(|b| b.traffic.total())) {
                (Some(u), Some(t)) => Some(u.min(t)),
                (u, t) => u.or(t),
            };
            if let Some(cap) = cap {
                if lower_bound_rows_channels(work, out_rows, out_channels, bytes)
                    .is_ok_and(|lb| lb > cap)
                {
                    continue;
                }
            }
            for &in_channels in &c_cands {
                let t =
                    Tiling { out_rows, out_channels, in_channels, order: LoopOrder::WeightsOuter };
                let ws = working_set(work, &t, bytes)?;
                if ws > budget {
                    break; // monotone in the input-channel tile
                }
                consider(work, t, ws, bytes, &mut best)?;
                consider(
                    work,
                    Tiling { order: LoopOrder::SpatialOuter, ..t },
                    ws,
                    bytes,
                    &mut best,
                )?;
            }
        }
    }
    best.ok_or(SimError::InfeasibleTiling {
        layer: None,
        working_set: smallest_ws.unwrap_or(0),
        buffer: budget,
    })
}

/// The reference exhaustive search: every candidate tiling of every loop
/// order, no pruning. [`optimize_tiling`] must return exactly this
/// function's result (or error) on every input — kept as the executable
/// specification the pruned-vs-exhaustive property test compares
/// against. Not on any hot path.
///
/// # Errors
///
/// Same contract as [`optimize_tiling`].
pub fn optimize_tiling_exhaustive(
    work: &ConvWork,
    cfg: &AcceleratorConfig,
) -> SimResult<TilingPlan> {
    work.validate()?;
    let bytes = cfg.bytes_per_element();
    let budget = cfg.working_buffer_bytes() as u64;
    let mut best: Option<TilingPlan> = None;
    let mut smallest_ws: Option<u64> = None;

    for &out_rows in &candidates(work.out_h) {
        for &out_channels in &candidates(work.out_channels) {
            for &in_channels in &candidates(work.in_channels) {
                for order in [LoopOrder::WeightsOuter, LoopOrder::SpatialOuter] {
                    let t = Tiling { out_rows, out_channels, in_channels, order };
                    let ws = working_set(work, &t, bytes)?;
                    if smallest_ws.is_none_or(|s| ws < s) {
                        smallest_ws = Some(ws);
                    }
                    if ws > budget {
                        continue;
                    }
                    consider(work, t, ws, bytes, &mut best)?;
                }
            }
        }
    }
    best.ok_or(SimError::InfeasibleTiling {
        layer: None,
        working_set: smallest_ws.unwrap_or(0),
        buffer: budget,
    })
}

/// Budget-independent floor on the total DRAM traffic of *any* feasible
/// tiling of `work`: the untiled plan (whole output height, full channel
/// tiles, weights outer) moves every operand exactly once, and every
/// other candidate only adds strip halo, re-fetches, or partial-sum
/// spills. Because the floor never consults the buffer budget, it
/// lower-bounds what [`optimize_tiling`] can return at **every** buffer
/// capacity — the monotone bound the sweep's dominance branch-and-bound
/// (`codesign-core`'s streaming sweep) leans on.
///
/// # Errors
///
/// [`SimError::InvalidWorkload`] / [`SimError::ArithmeticOverflow`] for
/// malformed or overflow-scale workloads.
pub fn traffic_lower_bound(work: &ConvWork, cfg: &AcceleratorConfig) -> SimResult<u64> {
    work.validate()?;
    lower_bound_rows(work, work.out_h, cfg.bytes_per_element())
}

/// The smallest on-chip working set any candidate tiling of `work`
/// achieves — the quantity pre-flight buffer-feasibility validation
/// compares against the working buffer.
pub(crate) fn min_working_set(work: &ConvWork, cfg: &AcceleratorConfig) -> SimResult<u64> {
    work.validate()?;
    // The minimum lies at the all-ones tile (smallest extent on every
    // tiled loop); loop order does not affect the footprint.
    let t = Tiling { out_rows: 1, out_channels: 1, in_channels: 1, order: LoopOrder::WeightsOuter };
    working_set(work, &t, cfg.bytes_per_element())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn work(c: usize, k: usize, f: usize, hw: usize) -> ConvWork {
        ConvWork {
            kind: WorkKind::Dense,
            groups: 1,
            in_channels: c,
            out_channels: k,
            kernel_h: f,
            kernel_w: f,
            stride: 1,
            in_h: hw + f - 1,
            in_w: hw + f - 1,
            out_h: hw,
            out_w: hw,
        }
    }

    fn cfg() -> AcceleratorConfig {
        AcceleratorConfig::paper_default()
    }

    #[test]
    fn small_layer_is_untiled() {
        let w = work(16, 16, 3, 14);
        let plan = optimize_tiling(&w, &cfg()).unwrap();
        assert_eq!(plan.tiling.out_rows, 14);
        assert_eq!(plan.tiling.out_channels, 16);
        assert_eq!(plan.tiling.in_channels, 16);
        // Minimal traffic: each operand exactly once.
        assert_eq!(plan.traffic.input, w.input_elements() * 2);
        assert_eq!(plan.traffic.weights, w.weight_elements() * 2);
        assert_eq!(plan.traffic.output, w.output_elements() * 2);
        assert!(plan.working_set <= cfg().working_buffer_bytes() as u64);
    }

    #[test]
    fn big_layer_fits_after_tiling() {
        // 128x56x56 in, 128 filters of 3x3: ~780 KB input, far over 64 KB.
        let w = work(128, 128, 3, 56);
        let plan = optimize_tiling(&w, &cfg()).unwrap();
        assert!(plan.working_set <= cfg().working_buffer_bytes() as u64);
        assert!(
            plan.tiling.out_rows < 56
                || plan.tiling.out_channels < 128
                || plan.tiling.in_channels < 128
        );
        // Weights fit easily (288 KB? no: 9*128*128*2 = 288 KB > 64 KB),
        // so some re-fetch is inevitable; but the search must beat the
        // worst naive plan (input x all k-tiles with tiny tiles).
        assert!(plan.traffic.total() < 10 * (w.input_elements() + w.weight_elements()) * 2);
    }

    #[test]
    fn search_beats_or_matches_the_closed_form() {
        let cfg = cfg();
        for w in [work(128, 128, 3, 56), work(512, 1000, 1, 13), work(64, 192, 3, 28)] {
            let plan = optimize_tiling(&w, &cfg).unwrap();
            let closed = crate::dram::conv_traffic(&w, &cfg);
            assert!(
                plan.traffic.total() <= closed.total(),
                "search {} should beat closed form {} for {w:?}",
                plan.traffic.total(),
                closed.total()
            );
        }
    }

    #[test]
    fn reduction_tiling_costs_spills() {
        let w = work(64, 64, 3, 28);
        let t_full = Tiling {
            out_rows: 28,
            out_channels: 64,
            in_channels: 64,
            order: LoopOrder::WeightsOuter,
        };
        let t_split = Tiling { in_channels: 32, ..t_full };
        let full = traffic(&w, &t_full, 2).unwrap();
        let split = traffic(&w, &t_split, 2).unwrap();
        assert_eq!(split.output, full.output + 2 * w.output_elements() * 2);
    }

    #[test]
    fn loop_orders_trade_input_for_weight_refetch() {
        let w = work(64, 256, 3, 28);
        let t = |order| Tiling { out_rows: 7, out_channels: 64, in_channels: 64, order };
        let wo = traffic(&w, &t(LoopOrder::WeightsOuter), 2).unwrap();
        let so = traffic(&w, &t(LoopOrder::SpatialOuter), 2).unwrap();
        assert!(wo.input > so.input);
        assert!(wo.weights < so.weights);
    }

    #[test]
    fn depthwise_weights_are_tiny() {
        let w = ConvWork {
            kind: WorkKind::Depthwise,
            groups: 1,
            in_channels: 512,
            out_channels: 512,
            kernel_h: 3,
            kernel_w: 3,
            stride: 1,
            in_h: 16,
            in_w: 16,
            out_h: 14,
            out_w: 14,
        };
        let plan = optimize_tiling(&w, &cfg()).unwrap();
        assert_eq!(plan.traffic.weights, 512 * 9 * 2);
    }

    #[test]
    fn impossible_budget_is_a_typed_error() {
        let tiny = AcceleratorConfig::builder()
            .array_size(2)
            .global_buffer_bytes(64)
            .double_buffering(false)
            .build()
            .unwrap();
        let w = work(256, 256, 3, 56);
        match optimize_tiling(&w, &tiny) {
            Err(SimError::InfeasibleTiling { layer, working_set, buffer }) => {
                assert_eq!(layer, None, "anonymous at this level; engine attaches the name");
                assert!(working_set > buffer, "{working_set} must exceed {buffer}");
                assert_eq!(working_set, min_working_set(&w, &tiny).unwrap());
            }
            other => panic!("expected InfeasibleTiling, got {other:?}"),
        }
    }

    #[test]
    fn min_working_set_is_a_lower_bound_on_plans() {
        let w = work(128, 128, 3, 56);
        let cfg = cfg();
        let floor = min_working_set(&w, &cfg).unwrap();
        let plan = optimize_tiling(&w, &cfg).unwrap();
        assert!(floor <= plan.working_set);
    }

    #[test]
    fn degenerate_work_is_rejected_before_the_search() {
        let mut w = work(16, 16, 3, 14);
        w.out_h = 0;
        assert!(matches!(optimize_tiling(&w, &cfg()), Err(SimError::InvalidWorkload { .. })));
    }

    #[test]
    fn pruned_matches_exhaustive_on_representative_shapes() {
        let shapes = [
            work(16, 16, 3, 14),   // fits untiled
            work(128, 128, 3, 56), // needs tiling
            work(512, 1000, 1, 13),
            work(64, 192, 3, 28),
            work(3, 96, 7, 111),   // first-conv-like, few input channels
            work(512, 1000, 1, 1), // single-strip classifier head
        ];
        let dw = ConvWork {
            kind: WorkKind::Depthwise,
            groups: 1,
            in_channels: 512,
            out_channels: 512,
            kernel_h: 3,
            kernel_w: 3,
            stride: 1,
            in_h: 16,
            in_w: 16,
            out_h: 14,
            out_w: 14,
        };
        let grp = ConvWork { kind: WorkKind::Dense, groups: 4, ..work(32, 32, 3, 28) };
        let mut cfgs = vec![cfg()];
        for buf in [16 * 1024, 64 * 1024, 256 * 1024, 1024 * 1024] {
            cfgs.push(AcceleratorConfig::builder().global_buffer_bytes(buf).build().unwrap());
        }
        for cfg in &cfgs {
            for w in shapes.iter().chain([&dw, &grp]) {
                let pruned = optimize_tiling(w, cfg);
                let exhaustive = optimize_tiling_exhaustive(w, cfg);
                match (&pruned, &exhaustive) {
                    (Ok(p), Ok(e)) => assert_eq!(p, e, "plan mismatch for {w:?} on {cfg}"),
                    (Err(p), Err(e)) => {
                        assert_eq!(format!("{p:?}"), format!("{e:?}"), "error mismatch for {w:?}");
                    }
                    _ => panic!("feasibility mismatch for {w:?}: {pruned:?} vs {exhaustive:?}"),
                }
            }
        }
    }

    #[test]
    fn candidate_grid_contains_extent_and_powers() {
        assert_eq!(candidates(13), vec![1, 2, 4, 8, 13]);
        assert_eq!(candidates(8), vec![1, 2, 4, 8]);
        assert_eq!(candidates(1), vec![1]);
    }
}
