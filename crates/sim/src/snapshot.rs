//! Versioned, checksummed serialization of a [`SimCache`].
//!
//! A snapshot lets the memo table outlive the process: `codesign serve`
//! saves its cache on shutdown and warm-starts from it on boot, and the
//! one-shot CLI does the same through `--cache-load` / `--cache-save`.
//! The format is deliberately dependency-free and plain:
//!
//! ```text
//! magic     8 bytes   b"CDSIMCS\0"
//! version   u32 LE    SNAPSHOT_VERSION
//! n_compute u64 LE    compute-record count
//! n_traffic u64 LE    traffic-record count
//! records   n_compute × 27 u64-LE words, then n_traffic × 19 words
//! checksum  u64 LE    FNV-1a over every preceding byte
//! ```
//!
//! Every field is a `u64` little-endian word: dimensions directly,
//! enums as documented tags, booleans as 0/1, and `f64` option fields
//! as their IEEE-754 bit patterns (the same bitwise identity the cache
//! keys hash by). Records are sorted by their encoded bytes, so the
//! same cache contents always serialize to the same bytes regardless of
//! shard iteration order.
//!
//! Loading validates in a fixed order — magic, version, length,
//! checksum, then per-record tags — and refuses the file with a typed
//! [`SnapshotError`] at the first violation. The version is checked
//! *before* the checksum: a snapshot from an incompatible schema reports
//! [`SnapshotError::WrongVersion`] rather than a useless checksum
//! mismatch. Any change to the key or value layout (new fields,
//! reordered fields, new enum variants) must bump [`SNAPSHOT_VERSION`];
//! there is no migration path by design — a stale snapshot is merely a
//! cold start, never a wrong answer, because loading only ever preloads
//! entries the simulator would have recomputed identically.

use std::fmt;

use codesign_arch::{AccessCounts, Dataflow};

use crate::cache::{Bits, ComputeKey, OsOptsKey, SimCache, TrafficKey};
use crate::engine::TrafficModel;
use crate::perf::{ComputePerf, PhaseCycles};
use crate::workload::{ConvWork, WorkKind};

/// Schema version written into (and demanded from) every snapshot.
/// Bump on any change to the record layout or the enum tag assignments.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Leading magic bytes identifying a codesign cache snapshot.
const MAGIC: &[u8; 8] = b"CDSIMCS\0";

/// `u64` words per encoded [`ComputeKey`] + [`ComputePerf`] record.
const COMPUTE_WORDS: usize = 27;
/// `u64` words per encoded [`TrafficKey`] + byte-count record.
const TRAFFIC_WORDS: usize = 19;
/// Fixed header bytes: magic + version + two record counts.
const HEADER_BYTES: usize = 8 + 4 + 8 + 8;

/// Why a snapshot was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The bytes do not start with the snapshot magic — not a snapshot
    /// file at all.
    BadMagic,
    /// Written by an incompatible schema version; re-generate the
    /// snapshot with the current binary.
    WrongVersion {
        /// Version found in the file.
        found: u32,
        /// Version this binary reads and writes.
        expected: u32,
    },
    /// Shorter than its header (or record counts) claims.
    Truncated {
        /// Bytes the header implies.
        expected: usize,
        /// Bytes actually present.
        actual: usize,
    },
    /// The trailing checksum does not match the payload — the file was
    /// corrupted in storage or transit.
    ChecksumMismatch {
        /// Checksum stored in the file.
        stored: u64,
        /// Checksum recomputed over the payload.
        computed: u64,
    },
    /// Structurally invalid contents (bad enum tag, non-boolean flag,
    /// out-of-range dimension, trailing bytes).
    Corrupted(String),
    /// The simulator carries no cache to snapshot or warm (it was built
    /// with [`crate::Simulator::uncached`]).
    Uncached,
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadMagic => write!(f, "not a codesign cache snapshot (bad magic)"),
            Self::WrongVersion { found, expected } => {
                write!(f, "snapshot schema version {found} is not the supported {expected}")
            }
            Self::Truncated { expected, actual } => {
                write!(f, "snapshot truncated: {actual} bytes where {expected} were expected")
            }
            Self::ChecksumMismatch { stored, computed } => write!(
                f,
                "snapshot checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
            Self::Corrupted(what) => write!(f, "snapshot corrupted: {what}"),
            Self::Uncached => write!(f, "simulator has no cache to snapshot or warm"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// What a successful [`SimCache::load_snapshot`] brought in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SnapshotStats {
    /// Compute (cycle-model) entries preloaded.
    pub compute_entries: usize,
    /// Traffic (tiling/closed-form) entries preloaded.
    pub traffic_entries: usize,
    /// Size of the snapshot consumed, in bytes.
    pub bytes: usize,
}

impl SnapshotStats {
    /// Total entries preloaded.
    pub fn entries(&self) -> usize {
        self.compute_entries + self.traffic_entries
    }
}

/// FNV-1a over `bytes` — cheap, dependency-free, and plenty for
/// detecting storage corruption (this is an integrity check, not an
/// authenticity one).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Sequential word reader over the record region.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    fn u64(&mut self) -> Result<u64, SnapshotError> {
        let end = self.pos + 8;
        let chunk = self
            .bytes
            .get(self.pos..end)
            .ok_or(SnapshotError::Truncated { expected: end, actual: self.bytes.len() })?;
        self.pos = end;
        let mut word = [0u8; 8];
        word.copy_from_slice(chunk);
        Ok(u64::from_le_bytes(word))
    }

    fn dim(&mut self, what: &str) -> Result<usize, SnapshotError> {
        let v = self.u64()?;
        usize::try_from(v)
            .map_err(|_| SnapshotError::Corrupted(format!("{what} out of range: {v}")))
    }

    fn flag(&mut self, what: &str) -> Result<bool, SnapshotError> {
        match self.u64()? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(SnapshotError::Corrupted(format!("{what} flag is {v}, not 0/1"))),
        }
    }

    fn u32(&mut self, what: &str) -> Result<u32, SnapshotError> {
        let v = self.u64()?;
        u32::try_from(v).map_err(|_| SnapshotError::Corrupted(format!("{what} out of range: {v}")))
    }
}

fn encode_work(out: &mut Vec<u8>, work: &ConvWork) {
    let kind = match work.kind {
        WorkKind::Dense => 0u64,
        WorkKind::Depthwise => 1,
        WorkKind::FullyConnected => 2,
    };
    push_u64(out, kind);
    for dim in [
        work.groups,
        work.in_channels,
        work.out_channels,
        work.kernel_h,
        work.kernel_w,
        work.stride,
        work.in_h,
        work.in_w,
        work.out_h,
        work.out_w,
    ] {
        push_u64(out, dim as u64);
    }
}

fn decode_work(r: &mut Reader<'_>) -> Result<ConvWork, SnapshotError> {
    let kind = match r.u64()? {
        0 => WorkKind::Dense,
        1 => WorkKind::Depthwise,
        2 => WorkKind::FullyConnected,
        v => return Err(SnapshotError::Corrupted(format!("unknown work kind tag {v}"))),
    };
    Ok(ConvWork {
        kind,
        groups: r.dim("groups")?,
        in_channels: r.dim("in_channels")?,
        out_channels: r.dim("out_channels")?,
        kernel_h: r.dim("kernel_h")?,
        kernel_w: r.dim("kernel_w")?,
        stride: r.dim("stride")?,
        in_h: r.dim("in_h")?,
        in_w: r.dim("in_w")?,
        out_h: r.dim("out_h")?,
        out_w: r.dim("out_w")?,
    })
}

fn encode_compute_record(out: &mut Vec<u8>, key: &ComputeKey, perf: &ComputePerf) {
    encode_work(out, &key.work);
    push_u64(out, matches!(key.dataflow, Dataflow::OutputStationary) as u64);
    push_u64(out, key.array_size as u64);
    push_u64(out, key.rf_depth as u64);
    push_u64(out, key.os.zero_fraction.0);
    push_u64(out, key.os.exploit_sparsity as u64);
    push_u64(out, key.os.preload_overlap as u64);
    push_u64(out, key.os.channel_packing as u64);
    push_u64(out, perf.phases.load);
    push_u64(out, perf.phases.compute);
    push_u64(out, perf.phases.drain);
    push_u64(out, perf.executed_macs);
    push_u64(out, perf.accesses.macs);
    push_u64(out, perf.accesses.register_file);
    push_u64(out, perf.accesses.inter_pe);
    push_u64(out, perf.accesses.global_buffer);
    push_u64(out, perf.accesses.dram);
}

fn decode_compute_record(r: &mut Reader<'_>) -> Result<(ComputeKey, ComputePerf), SnapshotError> {
    let work = decode_work(r)?;
    let dataflow =
        if r.flag("dataflow")? { Dataflow::OutputStationary } else { Dataflow::WeightStationary };
    let key = ComputeKey {
        work,
        dataflow,
        array_size: r.dim("array_size")?,
        rf_depth: r.dim("rf_depth")?,
        os: OsOptsKey {
            zero_fraction: Bits(r.u64()?),
            exploit_sparsity: r.flag("exploit_sparsity")?,
            preload_overlap: r.flag("preload_overlap")?,
            channel_packing: r.flag("channel_packing")?,
        },
    };
    let perf = ComputePerf {
        phases: PhaseCycles { load: r.u64()?, compute: r.u64()?, drain: r.u64()? },
        executed_macs: r.u64()?,
        accesses: AccessCounts {
            macs: r.u64()?,
            register_file: r.u64()?,
            inter_pe: r.u64()?,
            global_buffer: r.u64()?,
            dram: r.u64()?,
        },
    };
    Ok((key, perf))
}

fn encode_traffic_record(out: &mut Vec<u8>, key: &TrafficKey, bytes: u64) {
    encode_work(out, &key.work);
    push_u64(out, matches!(key.model, TrafficModel::TilingSearch) as u64);
    push_u64(out, key.bytes_per_element as u64);
    push_u64(out, key.working_buffer_bytes as u64);
    match key.compression {
        Some((data_bits, index_bits, zero_fraction)) => {
            push_u64(out, 1);
            push_u64(out, u64::from(data_bits));
            push_u64(out, u64::from(index_bits));
            push_u64(out, zero_fraction.0);
        }
        None => {
            push_u64(out, 0);
            push_u64(out, 0);
            push_u64(out, 0);
            push_u64(out, 0);
        }
    }
    push_u64(out, bytes);
}

fn decode_traffic_record(r: &mut Reader<'_>) -> Result<(TrafficKey, u64), SnapshotError> {
    let work = decode_work(r)?;
    let model = if r.flag("traffic model")? {
        TrafficModel::TilingSearch
    } else {
        TrafficModel::ClosedForm
    };
    let bytes_per_element = r.dim("bytes_per_element")?;
    let working_buffer_bytes = r.dim("working_buffer_bytes")?;
    let present = r.flag("compression present")?;
    let data_bits = r.u32("compression data_bits")?;
    let index_bits = r.u32("compression index_bits")?;
    let zero_fraction = Bits(r.u64()?);
    let compression = present.then_some((data_bits, index_bits, zero_fraction));
    let bytes = r.u64()?;
    Ok((TrafficKey { work, model, bytes_per_element, working_buffer_bytes, compression }, bytes))
}

impl SimCache {
    /// Serializes every resident entry into a self-validating snapshot.
    ///
    /// The output is deterministic for a given set of entries (records
    /// are sorted), so identical caches snapshot to identical bytes. The
    /// hit/miss counters are *not* serialized — they describe a process
    /// lifetime, not the memo contents.
    pub fn to_snapshot(&self) -> Vec<u8> {
        let mut compute_records: Vec<Vec<u8>> = self
            .export_compute()
            .iter()
            .map(|(key, perf)| {
                let mut rec = Vec::with_capacity(COMPUTE_WORDS * 8);
                encode_compute_record(&mut rec, key, perf);
                rec
            })
            .collect();
        let mut traffic_records: Vec<Vec<u8>> = self
            .export_traffic()
            .iter()
            .map(|(key, bytes)| {
                let mut rec = Vec::with_capacity(TRAFFIC_WORDS * 8);
                encode_traffic_record(&mut rec, key, *bytes);
                rec
            })
            .collect();
        compute_records.sort_unstable();
        traffic_records.sort_unstable();

        let body = (compute_records.len() + traffic_records.len()) * 8;
        let mut out = Vec::with_capacity(HEADER_BYTES + body + 8);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        push_u64(&mut out, compute_records.len() as u64);
        push_u64(&mut out, traffic_records.len() as u64);
        for rec in compute_records.iter().chain(&traffic_records) {
            out.extend_from_slice(rec);
        }
        let checksum = fnv1a(&out);
        push_u64(&mut out, checksum);
        out
    }

    /// Preloads every entry from a snapshot into this cache (a union
    /// with whatever is already resident — by the cache's determinism
    /// contract, colliding keys carry identical values).
    ///
    /// Preloaded entries do not touch the hit/miss counters: a
    /// warm-started run reports pure hits, exactly as if an earlier run
    /// in the same process had populated the cache.
    ///
    /// # Errors
    ///
    /// A typed [`SnapshotError`] and an untouched cache: validation
    /// (magic, version, length, checksum, record tags) completes before
    /// the first entry is inserted.
    pub fn load_snapshot(&self, bytes: &[u8]) -> Result<SnapshotStats, SnapshotError> {
        let magic =
            bytes.get(..8).ok_or(SnapshotError::Truncated { expected: 8, actual: bytes.len() })?;
        if magic != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version_bytes = bytes
            .get(8..12)
            .ok_or(SnapshotError::Truncated { expected: 12, actual: bytes.len() })?;
        let mut v = [0u8; 4];
        v.copy_from_slice(version_bytes);
        let version = u32::from_le_bytes(v);
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::WrongVersion { found: version, expected: SNAPSHOT_VERSION });
        }

        let mut header = Reader { bytes, pos: 12 };
        let n_compute = header.dim("compute record count")?;
        let n_traffic = header.dim("traffic record count")?;
        let expected = n_compute
            .checked_mul(COMPUTE_WORDS * 8)
            .and_then(|c| n_traffic.checked_mul(TRAFFIC_WORDS * 8).map(|t| (c, t)))
            .and_then(|(c, t)| c.checked_add(t))
            .and_then(|body| body.checked_add(HEADER_BYTES + 8))
            .ok_or_else(|| {
                SnapshotError::Corrupted(format!(
                    "record counts overflow: {n_compute} compute + {n_traffic} traffic"
                ))
            })?;
        if bytes.len() < expected {
            return Err(SnapshotError::Truncated { expected, actual: bytes.len() });
        }
        if bytes.len() > expected {
            return Err(SnapshotError::Corrupted(format!(
                "{} trailing bytes after the checksum",
                bytes.len() - expected
            )));
        }

        let payload_len = bytes.len() - 8;
        let mut tail = Reader { bytes, pos: payload_len };
        let stored = tail.u64()?;
        let computed = fnv1a(&bytes[..payload_len]);
        if stored != computed {
            return Err(SnapshotError::ChecksumMismatch { stored, computed });
        }

        // Decode everything before inserting anything, so a corrupted
        // record never leaves a half-loaded cache.
        let mut r = Reader { bytes: &bytes[..payload_len], pos: HEADER_BYTES };
        let mut compute_entries = Vec::with_capacity(n_compute);
        for _ in 0..n_compute {
            compute_entries.push(decode_compute_record(&mut r)?);
        }
        let mut traffic_entries = Vec::with_capacity(n_traffic);
        for _ in 0..n_traffic {
            traffic_entries.push(decode_traffic_record(&mut r)?);
        }

        for (key, perf) in &compute_entries {
            self.preload_compute(*key, *perf);
        }
        for (key, traffic_bytes) in &traffic_entries {
            self.preload_traffic(*key, *traffic_bytes);
        }
        Ok(SnapshotStats {
            compute_entries: compute_entries.len(),
            traffic_entries: traffic_entries.len(),
            bytes: bytes.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_cache_round_trips() {
        let cache = SimCache::new();
        let snap = cache.to_snapshot();
        assert_eq!(snap.len(), HEADER_BYTES + 8);
        let fresh = SimCache::new();
        let stats = fresh.load_snapshot(&snap).unwrap();
        assert_eq!(
            stats,
            SnapshotStats { compute_entries: 0, traffic_entries: 0, bytes: snap.len() }
        );
        assert_eq!(fresh.stats().entries, 0);
    }

    #[test]
    fn snapshot_bytes_are_deterministic() {
        let cache = SimCache::new();
        assert_eq!(cache.to_snapshot(), cache.to_snapshot());
    }

    #[test]
    fn bad_magic_is_refused() {
        let cache = SimCache::new();
        let mut snap = cache.to_snapshot();
        snap[0] ^= 0xff;
        assert_eq!(SimCache::new().load_snapshot(&snap), Err(SnapshotError::BadMagic));
        assert_eq!(
            SimCache::new().load_snapshot(b"nope"),
            Err(SnapshotError::Truncated { expected: 8, actual: 4 })
        );
    }

    #[test]
    fn wrong_version_reported_before_checksum() {
        let cache = SimCache::new();
        let mut snap = cache.to_snapshot();
        snap[8] = 99; // version field, LSB
        assert_eq!(
            SimCache::new().load_snapshot(&snap),
            Err(SnapshotError::WrongVersion { found: 99, expected: SNAPSHOT_VERSION })
        );
    }

    #[test]
    fn fnv1a_known_vector() {
        // FNV-1a 64-bit test vectors from the reference implementation.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
