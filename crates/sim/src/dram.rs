//! DRAM traffic and timing model.
//!
//! The paper approximates DRAM with a latency and an effective bandwidth,
//! hides transfers behind compute via double buffering, and tiles the six
//! convolution loops when a layer's footprint exceeds the global buffer.
//! This module reproduces that methodology with a documented tiling
//! approximation (DESIGN.md §4): the smaller of the two streamed operands
//! is kept resident, and when neither input nor weights fit in half the
//! working buffer the input is re-fetched once per weight chunk (the
//! classic GEMM tiling bound).

use codesign_arch::AcceleratorConfig;

use crate::workload::ConvWork;

/// DRAM traffic of one layer in bytes, split by operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DramTraffic {
    /// Input feature-map bytes fetched (including tiling re-fetches).
    pub input: u64,
    /// Weight bytes fetched.
    pub weights: u64,
    /// Output feature-map bytes written.
    pub output: u64,
}

impl DramTraffic {
    /// Total bytes moved.
    pub fn total(&self) -> u64 {
        self.input + self.weights + self.output
    }

    /// The per-operand byte counts as trace counters, ready to attach to
    /// a `codesign-trace` span.
    pub fn counter_items(&self) -> [(&'static str, u64); 3] {
        [
            ("dram.input.bytes", self.input),
            ("dram.weights.bytes", self.weights),
            ("dram.output.bytes", self.output),
        ]
    }
}

/// Computes the DRAM traffic of a convolution-shaped layer.
///
/// Feature maps live in DRAM between layers (the 128 KB global buffer is
/// far smaller than most activation footprints), so each layer fetches
/// its input and writes its output once, plus any tiling re-fetches.
pub fn conv_traffic(work: &ConvWork, cfg: &AcceleratorConfig) -> DramTraffic {
    let e = cfg.bytes_per_element() as u64;
    let input = work.input_elements() * e;
    let weights = work.weight_elements() * e;
    let output = work.output_elements() * e;
    let buffer = cfg.working_buffer_bytes() as u64;

    // Reserve half the working buffer for the operand kept resident and
    // half for the streamed one.
    let half = (buffer / 2).max(1);
    // No re-fetch when everything fits, or when either operand fits in
    // half the buffer (it stays resident while the other streams once).
    let refetch = if input + weights + output <= buffer || weights <= half || input <= half {
        1
    } else {
        // Neither fits: stream weights once, re-fetch the input once per
        // weight chunk.
        weights.div_ceil(half).max(1)
    };
    DramTraffic { input: input * refetch, weights, output }
}

/// Traffic of a non-PE (SIMD-path) layer: input read once, output written
/// once, no weights.
pub fn simd_traffic(
    input_elements: u64,
    output_elements: u64,
    cfg: &AcceleratorConfig,
) -> DramTraffic {
    let e = cfg.bytes_per_element() as u64;
    DramTraffic { input: input_elements * e, weights: 0, output: output_elements * e }
}

/// Combines PE-array busy cycles with DRAM cycles into end-to-end layer
/// cycles.
///
/// With double buffering the DMA streams tile `i+1` while the array works
/// on tile `i`, so the layer takes `max(compute, dram)` plus the initial
/// fill latency; without it, transfers serialize.
pub fn combine_cycles(compute_cycles: u64, dram_cycles: u64, cfg: &AcceleratorConfig) -> u64 {
    let latency = cfg.dram().latency_cycles;
    if cfg.double_buffering() {
        compute_cycles.max(dram_cycles) + latency
    } else {
        compute_cycles + dram_cycles + latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::WorkKind;

    fn work(c: usize, k: usize, f: usize, hw: usize) -> ConvWork {
        ConvWork {
            kind: WorkKind::Dense,
            groups: 1,
            in_channels: c,
            out_channels: k,
            kernel_h: f,
            kernel_w: f,
            stride: 1,
            in_h: hw,
            in_w: hw,
            out_h: hw,
            out_w: hw,
        }
    }

    #[test]
    fn small_layer_moves_each_operand_once() {
        let cfg = AcceleratorConfig::paper_default();
        let w = work(16, 16, 3, 14); // tiny: fits in 64 KB easily
        let t = conv_traffic(&w, &cfg);
        assert_eq!(t.input, 16 * 14 * 14 * 2);
        assert_eq!(t.weights, 9 * 16 * 16 * 2);
        assert_eq!(t.output, 16 * 14 * 14 * 2);
    }

    #[test]
    fn huge_weights_trigger_input_refetch() {
        let cfg = AcceleratorConfig::paper_default();
        // Both operands exceed 32 KB: input 128x56x56x2 = 784 KB,
        // weights 9*128*128*2 = 288 KB.
        let w = work(128, 128, 3, 56);
        let t = conv_traffic(&w, &cfg);
        let base_input = 128 * 56 * 56 * 2u64;
        assert!(t.input > base_input, "input should be re-fetched");
        assert_eq!(t.weights, 9 * 128 * 128 * 2);
        // Re-fetch factor is ceil(288 KB / 32 KB) = 9.
        assert_eq!(t.input, base_input * 9);
    }

    #[test]
    fn resident_input_avoids_refetch() {
        let cfg = AcceleratorConfig::paper_default();
        // FC-like: input tiny (fits), weights huge -> weights stream once.
        let w = ConvWork {
            kind: WorkKind::FullyConnected,
            groups: 1,
            in_channels: 4096,
            out_channels: 4096,
            kernel_h: 1,
            kernel_w: 1,
            stride: 1,
            in_h: 1,
            in_w: 1,
            out_h: 1,
            out_w: 1,
        };
        let t = conv_traffic(&w, &cfg);
        assert_eq!(t.input, 4096 * 2);
        assert_eq!(t.weights, 4096 * 4096 * 2);
        assert_eq!(t.output, 4096 * 2);
    }

    #[test]
    fn double_buffering_overlaps() {
        let db = AcceleratorConfig::paper_default();
        let no_db = AcceleratorConfig::builder().double_buffering(false).build().unwrap();
        assert_eq!(combine_cycles(1000, 400, &db), 1000 + 100);
        assert_eq!(combine_cycles(400, 1000, &db), 1000 + 100);
        assert_eq!(combine_cycles(1000, 400, &no_db), 1400 + 100);
    }

    #[test]
    fn simd_traffic_has_no_weights() {
        let cfg = AcceleratorConfig::paper_default();
        let t = simd_traffic(100, 25, &cfg);
        assert_eq!(t.total(), 250);
        assert_eq!(t.weights, 0);
    }

    #[test]
    fn counter_items_cover_the_total() {
        let t = DramTraffic { input: 10, weights: 20, output: 5 };
        let items = t.counter_items();
        assert_eq!(items.iter().map(|(_, v)| v).sum::<u64>(), t.total());
        assert_eq!(items[1], ("dram.weights.bytes", 20));
    }
}
