//! Analytic no-local-reuse (NLR) dataflow model (DianNao-style, the
//! fourth entry of §3.2's taxonomy).
//!
//! NLR PEs have no register files: every operand streams from the global
//! buffer every cycle, so the datapath is gated by the buffer's port
//! width rather than by PE count. We model a wide unified SRAM that
//! delivers `port_width = 4·N` elements per cycle (DianNao's split
//! NBin/NBout/SB buffers are similarly wide relative to its adder
//! trees), feeding `N²` multipliers backed by adder trees.

use codesign_arch::{AcceleratorConfig, AccessCounts};

use crate::perf::{ComputePerf, PhaseCycles};
use crate::workload::ConvWork;

/// Elements per cycle the NLR buffer hierarchy can supply.
fn port_width(cfg: &AcceleratorConfig) -> u64 {
    4 * cfg.array_size() as u64
}

/// Simulates one layer's MAC work under the NLR dataflow.
///
/// Each MAC consumes one input and one weight from the buffer (partial
/// sums ride the adder trees), so the layer needs `2·MACs / port` cycles
/// of supply, floored by the pure compute time `MACs / N²`.
pub fn simulate_nlr(work: &ConvWork, cfg: &AcceleratorConfig) -> ComputePerf {
    let macs = work.macs();
    let supply = (2 * macs).div_ceil(port_width(cfg));
    let compute_floor = macs.div_ceil(cfg.pe_count() as u64);
    let compute = supply.max(compute_floor);
    let drain = work.output_elements().div_ceil(cfg.array_size() as u64);

    let accesses = AccessCounts {
        macs,
        register_file: 0, // NLR's defining property: no local storage
        inter_pe: macs,   // adder-tree hops
        global_buffer: 2 * macs + work.output_elements(),
        dram: 0,
    };
    ComputePerf { phases: PhaseCycles { load: 0, compute, drain }, executed_macs: macs, accesses }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::WorkKind;

    fn cfg() -> AcceleratorConfig {
        AcceleratorConfig::paper_default()
    }

    fn dense(c: usize, k: usize, f: usize, oh: usize) -> ConvWork {
        ConvWork {
            kind: WorkKind::Dense,
            groups: 1,
            in_channels: c,
            out_channels: k,
            kernel_h: f,
            kernel_w: f,
            stride: 1,
            in_h: oh + f - 1,
            in_w: oh + f - 1,
            out_h: oh,
            out_w: oh,
        }
    }

    #[test]
    fn supply_bound_dominates_on_the_paper_array() {
        // 2 MACs of operands per cycle vs 128 elements/cycle of port:
        // only 64 of 1024 PEs can be fed.
        let w = dense(64, 64, 3, 28);
        let p = simulate_nlr(&w, &cfg());
        assert_eq!(p.phases.compute, (2 * w.macs()).div_ceil(128));
        let util = p.utilization(1024);
        assert!(util < 0.07, "NLR cannot keep a big array busy: {util:.3}");
    }

    #[test]
    fn no_register_file_accesses() {
        let p = simulate_nlr(&dense(16, 16, 3, 14), &cfg());
        assert_eq!(p.accesses.register_file, 0);
        assert_eq!(p.accesses.global_buffer, 2 * p.executed_macs + 16 * 14 * 14);
    }

    #[test]
    fn small_arrays_hit_the_compute_floor() {
        // On a 2x2 array the port (8/cycle) feeds all 4 PEs: compute bound.
        let tiny =
            AcceleratorConfig::builder().array_size(2).global_buffer_bytes(1024).build().unwrap();
        let w = dense(8, 8, 3, 10);
        let p = simulate_nlr(&w, &tiny);
        assert_eq!(p.phases.compute, w.macs().div_ceil(4));
    }

    #[test]
    fn executes_every_mac() {
        for w in [dense(3, 96, 7, 111), dense(512, 64, 1, 13)] {
            assert_eq!(simulate_nlr(&w, &cfg()).executed_macs, w.macs());
        }
    }
}
