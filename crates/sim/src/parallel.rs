//! Deterministic parallel maps over the process-wide worker pool.
//!
//! The implementation lives in the dependency-free `codesign-parallel`
//! crate (it moved out of this crate so `codesign-tensor`'s GEMM-backed
//! functional executor can share the same pool without depending on the
//! simulator); this module re-exports it so every existing
//! `codesign_sim::parallel` / `codesign_sim::par_map` call site keeps
//! working unchanged.

pub use codesign_parallel::{
    max_jobs, par_map, par_map_catch, par_map_catch_range, par_map_range, pool_size, resolve_jobs,
    MAX_POOL_WORKERS,
};
