//! Deterministic scoped-thread fan-out.
//!
//! The design-space sweep, the Table-2 evaluation, and the bench report
//! all map an independent, pure function over a work list. Rayon is
//! unavailable in the offline build environment, so this module provides
//! the one primitive those call sites need: [`par_map`], a scoped-thread
//! work-stealing map whose output order is always the input order —
//! parallel runs are bit-identical to serial runs, just faster.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of worker threads the host supports (`1` when undetectable).
pub fn max_jobs() -> usize {
    std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
}

/// Resolves a user-facing `--jobs` value: `0` means "one per core".
pub fn resolve_jobs(jobs: usize) -> usize {
    if jobs == 0 {
        max_jobs()
    } else {
        jobs
    }
}

/// Maps `f` over `items` on up to `jobs` threads (`0` = one per core),
/// returning results in input order.
///
/// Work is claimed from a shared atomic counter, so uneven item costs
/// balance across workers. `f` receives the item index alongside the
/// item. Panics in `f` propagate after all workers stop.
pub fn par_map<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let jobs = resolve_jobs(jobs).min(items.len());
    if jobs <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let next = AtomicUsize::new(0);
    let buckets: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..jobs)
            .map(|_| {
                scope.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else { break };
                        out.push((i, f(i, item)));
                    }
                    out
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("parallel worker panicked")).collect()
    });

    // Reassemble in input order regardless of which worker ran what.
    let mut slots: Vec<Option<R>> = std::iter::repeat_with(|| None).take(items.len()).collect();
    for bucket in buckets {
        for (i, r) in bucket {
            slots[i] = Some(r);
        }
    }
    slots.into_iter().map(|s| s.expect("every index was claimed exactly once")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..257).collect();
        let out = par_map(4, &items, |i, &x| {
            assert_eq!(i, x);
            x * 2
        });
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let items: Vec<u64> = (0..100).collect();
        let f = |_: usize, &x: &u64| x.wrapping_mul(0x9E3779B97F4A7C15).rotate_left(13);
        assert_eq!(par_map(1, &items, f), par_map(8, &items, f));
    }

    #[test]
    fn empty_and_single_items() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(8, &empty, |_, &x| x).is_empty());
        assert_eq!(par_map(8, &[7u32], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn zero_jobs_means_auto() {
        assert!(resolve_jobs(0) >= 1);
        assert_eq!(resolve_jobs(3), 3);
        let items: Vec<u32> = (0..16).collect();
        assert_eq!(par_map(0, &items, |_, &x| x), items);
    }

    #[test]
    #[should_panic(expected = "parallel worker panicked")]
    fn worker_panics_propagate() {
        let items: Vec<u32> = (0..16).collect();
        let _ = par_map(2, &items, |_, &x| {
            assert!(x < 8, "boom");
            x
        });
    }
}
