//! Deterministic scoped-thread fan-out.
//!
//! The design-space sweep, the Table-2 evaluation, and the bench report
//! all map an independent, pure function over a work list. Rayon is
//! unavailable in the offline build environment, so this module provides
//! the one primitive those call sites need: [`par_map`], a scoped-thread
//! work-stealing map whose output order is always the input order —
//! parallel runs are bit-identical to serial runs, just faster.

use std::num::NonZeroUsize;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of worker threads the host supports (`1` when undetectable).
pub fn max_jobs() -> usize {
    std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
}

/// Resolves a user-facing `--jobs` value: `0` means "one per core".
pub fn resolve_jobs(jobs: usize) -> usize {
    if jobs == 0 {
        max_jobs()
    } else {
        jobs
    }
}

/// Maps `f` over `items` on up to `jobs` threads (`0` = one per core),
/// returning results in input order.
///
/// Work is claimed from a shared atomic counter, so uneven item costs
/// balance across workers. `f` receives the item index alongside the
/// item. Panics in `f` propagate after all workers stop.
pub fn par_map<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let jobs = resolve_jobs(jobs).min(items.len());
    if jobs <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let next = AtomicUsize::new(0);
    let buckets: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..jobs)
            .map(|_| {
                scope.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else { break };
                        out.push((i, f(i, item)));
                    }
                    out
                })
            })
            .collect();
        // Deliberate panic propagation: `par_map`'s contract is that a
        // panicking `f` panics the caller, after every worker stopped
        // (use `par_map_catch` for per-item isolation instead).
        #[allow(clippy::expect_used)]
        handles.into_iter().map(|h| h.join().expect("parallel worker panicked")).collect()
    });

    // Reassemble in input order regardless of which worker ran what.
    // Every index was claimed exactly once, so after sorting the
    // concatenated buckets the result is a permutation-free 0..n list.
    let mut tagged: Vec<(usize, R)> = buckets.into_iter().flatten().collect();
    tagged.sort_by_key(|(i, _)| *i);
    tagged.into_iter().map(|(_, r)| r).collect()
}

/// [`par_map`] with per-item panic isolation: each application of `f`
/// runs under [`catch_unwind`], so one panicking item cannot poison its
/// siblings or the caller — it degrades into an `Err` carrying the panic
/// message while every other item completes normally.
///
/// This is the worker primitive behind degradation-tolerant sweeps: the
/// `try_*` simulation APIs make panics unreachable for well-formed
/// inputs, and this catches anything that slips through (including
/// future bugs), converting it into a per-item diagnostic.
///
/// Output order is input order; serial (`jobs == 1`) and parallel runs
/// are bit-identical.
pub fn par_map_catch<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<Result<R, String>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map(jobs, items, |i, item| {
        catch_unwind(AssertUnwindSafe(|| f(i, item))).map_err(|payload| {
            if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_owned()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "worker panicked with a non-string payload".to_owned()
            }
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..257).collect();
        let out = par_map(4, &items, |i, &x| {
            assert_eq!(i, x);
            x * 2
        });
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let items: Vec<u64> = (0..100).collect();
        let f = |_: usize, &x: &u64| x.wrapping_mul(0x9E3779B97F4A7C15).rotate_left(13);
        assert_eq!(par_map(1, &items, f), par_map(8, &items, f));
    }

    #[test]
    fn empty_and_single_items() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(8, &empty, |_, &x| x).is_empty());
        assert_eq!(par_map(8, &[7u32], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn zero_jobs_means_auto() {
        assert!(resolve_jobs(0) >= 1);
        assert_eq!(resolve_jobs(3), 3);
        let items: Vec<u32> = (0..16).collect();
        assert_eq!(par_map(0, &items, |_, &x| x), items);
    }

    #[test]
    #[should_panic(expected = "parallel worker panicked")]
    fn worker_panics_propagate() {
        let items: Vec<u32> = (0..16).collect();
        let _ = par_map(2, &items, |_, &x| {
            assert!(x < 8, "boom");
            x
        });
    }

    #[test]
    fn catch_isolates_panicking_items() {
        let items: Vec<u32> = (0..16).collect();
        let out = par_map_catch(4, &items, |_, &x| {
            assert!(x != 7, "item 7 exploded");
            x * 2
        });
        assert_eq!(out.len(), 16);
        for (i, r) in out.iter().enumerate() {
            if i == 7 {
                let msg = r.as_ref().unwrap_err();
                assert!(msg.contains("item 7 exploded"), "{msg}");
            } else {
                assert_eq!(r.as_ref().unwrap(), &(i as u32 * 2));
            }
        }
    }

    #[test]
    fn catch_is_schedule_independent() {
        let items: Vec<u32> = (0..64).collect();
        let f = |_: usize, &x: &u32| {
            assert!(!x.is_multiple_of(13), "multiple of 13");
            x
        };
        assert_eq!(par_map_catch(1, &items, f), par_map_catch(8, &items, f));
    }
}
