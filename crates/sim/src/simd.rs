//! The 1-D SIMD side path for non-convolutional layers.
//!
//! §3.1 of the paper: layers other than convolutions "have a very small
//! computational complexity [and] are usually processed in a 1D SIMD
//! manner". We model an N-lane vector unit fed from the global buffer.

use codesign_arch::{AcceleratorConfig, AccessCounts};
use codesign_dnn::{Layer, LayerOp};

use crate::error::{SimError, SimResult};
use crate::perf::{ComputePerf, PhaseCycles};

/// Simulates a non-PE layer on the N-lane SIMD path.
///
/// # Errors
///
/// [`SimError::UnsupportedLayer`] for convolution/FC layers (which
/// belong on the PE array), [`SimError::ArithmeticOverflow`] when the
/// element-operation count leaves the 64-bit modeling range, and
/// [`SimError::InvalidWorkload`] when the accelerator has no lanes.
pub fn simulate_simd(layer: &Layer, cfg: &AcceleratorConfig) -> SimResult<ComputePerf> {
    let lanes = cfg.array_size() as u64;
    if lanes == 0 {
        return Err(SimError::invalid("SIMD path needs at least one lane").for_layer(&layer.name));
    }
    let out = layer.output.elements() as u64;
    let input = layer.input.elements() as u64;
    let of = || SimError::ArithmeticOverflow {
        layer: Some(layer.name.clone()),
        context: "SIMD element operations",
    };
    // Element operations the vector unit performs.
    let ops = match &layer.op {
        LayerOp::Pool { kernel, .. } => {
            let window = kernel.checked_mul(*kernel).ok_or_else(of)? as u64;
            out.checked_mul(window).ok_or_else(of)?
        }
        LayerOp::GlobalAvgPool => input,
        LayerOp::EltwiseAdd => out.checked_mul(2).ok_or_else(of)?,
        LayerOp::Concat { .. } => 0, // pure global-buffer bookkeeping
        LayerOp::Conv(_) | LayerOp::FullyConnected { .. } => {
            return Err(SimError::UnsupportedLayer {
                layer: layer.name.clone(),
                op: format!("{} on the SIMD path", layer.class()),
            });
        }
    };
    let cycles = ops.div_ceil(lanes);
    let accesses = AccessCounts {
        macs: 0,
        register_file: 0,
        inter_pe: 0,
        global_buffer: ops.checked_add(out).ok_or_else(of)?,
        dram: 0,
    };
    Ok(ComputePerf {
        phases: PhaseCycles { load: 0, compute: cycles, drain: 0 },
        executed_macs: 0,
        accesses,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use codesign_dnn::{NetworkBuilder, Shape};

    #[test]
    fn pool_cycles_scale_with_window() {
        let net =
            NetworkBuilder::new("t", Shape::new(4, 16, 16)).max_pool("p2", 2, 2).finish().unwrap();
        let cfg = AcceleratorConfig::paper_default();
        let p = simulate_simd(&net.layers()[0], &cfg).unwrap();
        // 4*8*8 outputs * 4 window ops / 32 lanes = 32 cycles.
        assert_eq!(p.cycles(), 32);
        assert_eq!(p.executed_macs, 0);
    }

    #[test]
    fn conv_is_not_simd() {
        let net =
            NetworkBuilder::new("t", Shape::new(4, 16, 16)).conv("c", 4, 3, 1, 1).finish().unwrap();
        let cfg = AcceleratorConfig::paper_default();
        assert!(matches!(
            simulate_simd(&net.layers()[0], &cfg),
            Err(SimError::UnsupportedLayer { .. })
        ));
    }

    #[test]
    fn concat_is_free_compute() {
        let net =
            NetworkBuilder::new("t", Shape::new(4, 8, 8)).fire("f", 2, 4, 4).finish().unwrap();
        let cfg = AcceleratorConfig::paper_default();
        let cat = net.layer("f/concat").unwrap();
        let p = simulate_simd(cat, &cfg).unwrap();
        assert_eq!(p.phases.compute, 0);
    }
}
