//! Analytic row-stationary (RS) dataflow model (Eyeriss [3]).
//!
//! §3.2 lists four dataflows — WS, OS, RS, NLR — and the paper builds its
//! accelerator on the first two. This model (and [`crate::nlr`]) fills in
//! the other half of the taxonomy so the choice can be examined: would a
//! Squeezelerator that also offered RS or NLR per layer be faster?
//!
//! Mapping (after Eyeriss): PE `(i, j)` keeps **filter row i** resident
//! and processes **input row i+j**, producing partial sums of **output
//! row j**; a column of `Fh` PEs composes one output row through
//! vertical psum hops. The array holds `Fh` rows × up to `N` output rows,
//! and folds additional (input-channel, output-channel) plane pairs onto
//! leftover vertical space. Each resident PE streams its row pair: `W'`
//! output positions × `Fw` taps per position.

use codesign_arch::{AcceleratorConfig, AccessCounts};

use crate::perf::{ComputePerf, PhaseCycles};
use crate::workload::{split, ConvWork, WorkKind};

/// Simulates one layer's MAC work under the RS dataflow.
///
/// Like WS, row-stationary keeps weights resident, so weight sparsity is
/// not exploitable. Fully-connected layers degenerate to `Fh = Fw = 1`
/// row pairs — effectively a worse WS — and are modeled the same way.
pub fn simulate_rs(work: &ConvWork, cfg: &AcceleratorConfig) -> ComputePerf {
    let n = cfg.array_size();
    let fh = work.kernel_h.min(n);
    let fw = work.kernel_w as u64;
    let ow = work.out_w as u64;

    // Output-row strips of at most N rows sit across the array.
    let row_strips = split(work.out_h, n);
    // Plane pairs folded side by side: each pair needs fh PE rows.
    let fold = (n / fh).max(1);

    // Plane pairs to process per group: depthwise pairs each channel with
    // its own filter; dense crosses C x K.
    let pairs_per_group = match work.kind {
        WorkKind::Depthwise => work.in_channels as u64,
        _ => (work.in_channels * work.out_channels) as u64,
    };
    let pair_waves = pairs_per_group.div_ceil(fold as u64);

    let mut load = 0u64;
    let mut compute = 0u64;
    let mut drain = 0u64;
    let mut acc = AccessCounts::zero();

    for _group in 0..work.groups {
        for &strip in &row_strips {
            let strip = strip as u64;
            // Preload filter rows for the folded pairs: fh rows of fw
            // taps each, one row per cycle per fold slot.
            load += pair_waves * fh as u64;
            acc.global_buffer += pair_waves * (fh as u64 * fw) * fold as u64;
            // Stream: each PE walks W' output positions x Fw taps.
            let stream = ow * fw;
            compute += pair_waves * stream;
            // Active PEs: fh x strip per folded pair.
            let active = fh as u64 * strip * fold as u64;
            acc.register_file += pair_waves * stream * active * 2; // weight + input regs
            acc.inter_pe += pair_waves * stream * active; // vertical psum hops
                                                          // Input rows stream in diagonally from the buffer.
            acc.global_buffer += pair_waves * (strip + fh as u64 - 1) * work.in_w as u64;
            // Output rows drain per pair wave (each wave's rows leave
            // the array before the next wave's preload).
            drain += pair_waves * (strip * ow).div_ceil(n as u64);
            acc.global_buffer += strip * ow * pair_waves;
        }
    }

    // Useful MACs: the dense count (no sparsity skipping in RS).
    let macs = work.macs();
    acc.macs = macs;

    ComputePerf { phases: PhaseCycles { load, compute, drain }, executed_macs: macs, accesses: acc }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ws::simulate_ws;

    fn cfg() -> AcceleratorConfig {
        AcceleratorConfig::paper_default()
    }

    fn dense(c: usize, k: usize, f: usize, oh: usize, ow: usize) -> ConvWork {
        ConvWork {
            kind: WorkKind::Dense,
            groups: 1,
            in_channels: c,
            out_channels: k,
            kernel_h: f,
            kernel_w: f,
            stride: 1,
            in_h: oh + f - 1,
            in_w: ow + f - 1,
            out_h: oh,
            out_w: ow,
        }
    }

    #[test]
    fn executes_every_algorithmic_mac() {
        let w = dense(16, 32, 3, 28, 28);
        let p = simulate_rs(&w, &cfg());
        assert_eq!(p.executed_macs, w.macs());
        assert!(p.cycles() > 0);
    }

    #[test]
    fn spatial_convs_are_competitive_with_ws() {
        // RS's home turf: 3x3 layers with large maps.
        let w = dense(64, 64, 3, 56, 56);
        let rs = simulate_rs(&w, &cfg()).cycles();
        let ws = simulate_ws(&w, &cfg()).cycles();
        let ratio = rs as f64 / ws as f64;
        assert!((0.2..5.0).contains(&ratio), "rs/ws = {ratio:.2}");
    }

    #[test]
    fn pointwise_layers_degenerate() {
        // Fh = 1: no filter-row reuse to exploit; pair count C*K explodes
        // relative to the fold.
        let w = dense(512, 64, 1, 13, 13);
        let rs = simulate_rs(&w, &cfg()).cycles();
        let ws = simulate_ws(&w, &cfg()).cycles();
        assert!(rs > ws, "1x1 should favor WS: rs={rs} ws={ws}");
    }

    #[test]
    fn depthwise_pairs_per_channel() {
        let w = ConvWork {
            kind: WorkKind::Depthwise,
            groups: 1,
            in_channels: 64,
            out_channels: 64,
            kernel_h: 3,
            kernel_w: 3,
            stride: 1,
            in_h: 30,
            in_w: 30,
            out_h: 28,
            out_w: 28,
        };
        let p = simulate_rs(&w, &cfg());
        assert_eq!(p.executed_macs, w.macs());
        // Far fewer pair waves than a dense 64x64 crossing.
        let dense_equiv = simulate_rs(&dense(64, 64, 3, 28, 28), &cfg());
        assert!(p.cycles() < dense_equiv.cycles() / 8);
    }

    #[test]
    fn oversized_kernels_clamp_to_the_array() {
        let w = dense(3, 8, 11, 20, 20);
        let small = AcceleratorConfig::builder().array_size(8).build().unwrap();
        let p = simulate_rs(&w, &small);
        assert!(p.cycles() > 0);
        assert_eq!(p.executed_macs, w.macs());
    }
}
