//! Fault-injection harness for the panic-free simulation core.
//!
//! Runs a fixed corpus of deliberately hostile inputs — degenerate
//! layers, overflow-scale shapes, infeasible buffer configurations,
//! truncated `.net` files — through the fallible `try_*` simulation
//! APIs and records, per case, whether the simulator **completed**,
//! **rejected** the input with a typed [`SimError`], or **panicked**.
//! The contract under test: hostile inputs are *rejected, never
//! panicked on*, and well-formed control inputs still complete.
//!
//! Each rejection bumps the matching `sim.error.<kind>` counter on the
//! tracer passed to [`run_corpus`], so a traced run shows exactly which
//! error classes the corpus exercised. The CLI `faultinject` subcommand
//! prints [`FaultReport::render`] and exits non-zero when any case
//! panics or lands on the wrong side of its expectation.

use std::panic::{catch_unwind, AssertUnwindSafe};

use codesign_arch::{AcceleratorConfig, Dataflow, DataflowPolicy};
use codesign_dnn::{parse_network, ConvSpec, Kernel, Layer, LayerOp, Shape};
use codesign_trace::Tracer;

use crate::engine::{try_simulate_layer, try_simulate_network, SimOptions};
use crate::error::{SimError, SimResult};
use crate::multicore::{try_simulate_network_multicore, MultiCoreConfig};
use crate::validate::validate_network;

/// What happened when one fault case ran.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CaseOutcome {
    /// The simulation completed (expected only for control cases).
    Completed,
    /// A typed [`SimError`] was surfaced — the desired outcome for every
    /// hostile case.
    Rejected {
        /// Machine-readable error class ([`SimError::kind`]).
        kind: String,
        /// Human-readable error message.
        message: String,
    },
    /// A panic escaped the `try_*` API — always a harness failure.
    Panicked {
        /// The panic payload, when it was a string.
        message: String,
    },
}

impl CaseOutcome {
    fn tag(&self) -> &'static str {
        match self {
            CaseOutcome::Completed => "completed",
            CaseOutcome::Rejected { .. } => "rejected",
            CaseOutcome::Panicked { .. } => "PANICKED",
        }
    }
}

/// One corpus entry: a named, deliberately hostile (or deliberately
/// well-formed) input plus the expectation against which its outcome is
/// judged.
pub struct FaultCase {
    /// Case name, stable across runs (used in the report).
    pub name: &'static str,
    /// Whether the case must be rejected with a typed error (`true`) or
    /// must complete (`false`, control case).
    pub expect_rejection: bool,
    run: Box<dyn Fn() -> SimResult<()> + Send + Sync>,
}

impl FaultCase {
    fn hostile(
        name: &'static str,
        run: impl Fn() -> SimResult<()> + Send + Sync + 'static,
    ) -> Self {
        Self { name, expect_rejection: true, run: Box::new(run) }
    }

    fn control(
        name: &'static str,
        run: impl Fn() -> SimResult<()> + Send + Sync + 'static,
    ) -> Self {
        Self { name, expect_rejection: false, run: Box::new(run) }
    }

    /// Runs the case with panic isolation.
    pub fn execute(&self) -> CaseOutcome {
        match catch_unwind(AssertUnwindSafe(|| (self.run)())) {
            Ok(Ok(())) => CaseOutcome::Completed,
            Ok(Err(e)) => {
                CaseOutcome::Rejected { kind: e.kind().to_owned(), message: e.to_string() }
            }
            Err(payload) => {
                let message = if let Some(s) = payload.downcast_ref::<&str>() {
                    (*s).to_owned()
                } else if let Some(s) = payload.downcast_ref::<String>() {
                    s.clone()
                } else {
                    "non-string panic payload".to_owned()
                };
                CaseOutcome::Panicked { message }
            }
        }
    }

    /// The built-in corpus: every hostile-input class the robustness
    /// work targets, plus control cases proving the happy path still
    /// completes. Deliberately ≥ 30 cases.
    pub fn corpus() -> Vec<FaultCase> {
        let mut cases = corpus_degenerate_layers();
        cases.extend(corpus_overflow_shapes());
        cases.extend(corpus_infeasible_buffers());
        cases.extend(corpus_malformed_netfiles());
        cases.extend(corpus_controls());
        cases
    }
}

impl std::fmt::Debug for FaultCase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultCase")
            .field("name", &self.name)
            .field("expect_rejection", &self.expect_rejection)
            .finish_non_exhaustive()
    }
}

/// The outcome of running the whole corpus.
#[derive(Debug, Clone)]
pub struct FaultReport {
    /// Per case, in corpus order: name, whether rejection was expected,
    /// and what actually happened.
    pub cases: Vec<(String, bool, CaseOutcome)>,
}

impl FaultReport {
    /// Number of cases run.
    pub fn total(&self) -> usize {
        self.cases.len()
    }

    /// Number of cases that panicked (must be zero).
    pub fn panics(&self) -> usize {
        self.cases.iter().filter(|(_, _, o)| matches!(o, CaseOutcome::Panicked { .. })).count()
    }

    /// Number of cases rejected with a typed error.
    pub fn rejections(&self) -> usize {
        self.cases.iter().filter(|(_, _, o)| matches!(o, CaseOutcome::Rejected { .. })).count()
    }

    /// Number of cases whose outcome contradicts their expectation
    /// (hostile case completed, or control case failed).
    pub fn mismatches(&self) -> usize {
        self.cases
            .iter()
            .filter(|(_, expect_rejection, o)| match o {
                CaseOutcome::Completed => *expect_rejection,
                CaseOutcome::Rejected { .. } => !*expect_rejection,
                CaseOutcome::Panicked { .. } => true,
            })
            .count()
    }

    /// Whether the corpus upheld the panic-free contract: no panics, no
    /// expectation mismatches.
    pub fn passed(&self) -> bool {
        self.panics() == 0 && self.mismatches() == 0
    }

    /// Human-readable per-case listing plus a summary line.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let width = self.cases.iter().map(|(n, _, _)| n.len()).max().unwrap_or(0);
        for (name, expect_rejection, outcome) in &self.cases {
            let expected = if *expect_rejection { "reject" } else { "complete" };
            let detail = match outcome {
                CaseOutcome::Completed => String::new(),
                CaseOutcome::Rejected { kind, .. } => format!(" [{kind}]"),
                CaseOutcome::Panicked { message } => format!(" !! {message}"),
            };
            let _ =
                writeln!(out, "  {name:width$}  expect {expected:8}  -> {}{detail}", outcome.tag());
        }
        let _ = writeln!(
            out,
            "{} cases: {} rejected, {} completed, {} panicked, {} mismatched -> {}",
            self.total(),
            self.rejections(),
            self.total() - self.rejections() - self.panics(),
            self.panics(),
            self.mismatches(),
            if self.passed() { "PASS" } else { "FAIL" }
        );
        out
    }
}

/// Runs the built-in corpus. Every typed rejection bumps the
/// `sim.error.<kind>` counter on `tracer` (no-op when disabled), so the
/// trace shows which error classes were exercised.
pub fn run_corpus(tracer: &Tracer) -> FaultReport {
    let cases = FaultCase::corpus()
        .iter()
        .map(|case| {
            let outcome = case.execute();
            if let CaseOutcome::Rejected { kind, .. } = &outcome {
                tracer.add_counter(&format!("sim.error.{kind}"), 1);
            }
            (case.name.to_owned(), case.expect_rejection, outcome)
        })
        .collect();
    FaultReport { cases }
}

// ---------------------------------------------------------------------
// Corpus construction
// ---------------------------------------------------------------------

fn conv_layer(name: &str, input: Shape, output: Shape, spec: ConvSpec) -> Layer {
    Layer {
        name: name.to_owned(),
        op: LayerOp::Conv(spec),
        input,
        output,
        is_first_conv: false,
        primary_input: None,
        extra_input: None,
    }
}

fn spec(out_channels: usize, k: usize, stride: usize, groups: usize) -> ConvSpec {
    ConvSpec { out_channels, kernel: Kernel::square(k), stride, pad_h: 0, pad_w: 0, groups }
}

fn run_layer(layer: Layer) -> impl Fn() -> SimResult<()> + Send + Sync {
    move || {
        let cfg = AcceleratorConfig::paper_default();
        let opts = SimOptions::paper_default();
        try_simulate_layer(&layer, &cfg, opts, Dataflow::WeightStationary)?;
        try_simulate_layer(&layer, &cfg, opts, Dataflow::OutputStationary)?;
        Ok(())
    }
}

fn corpus_degenerate_layers() -> Vec<FaultCase> {
    let mk = |name: &'static str, input: Shape, output: Shape, s: ConvSpec| {
        FaultCase::hostile(name, run_layer(conv_layer(name, input, output, s)))
    };
    vec![
        mk("conv/7x7-on-1x1-input", Shape::new(4, 1, 1), Shape::new(4, 1, 1), spec(4, 7, 1, 1)),
        mk("conv/3x3-on-2x2-input", Shape::new(8, 2, 2), Shape::new(8, 2, 2), spec(8, 3, 1, 1)),
        mk("conv/zero-in-channels", Shape::new(0, 8, 8), Shape::new(4, 8, 8), spec(4, 3, 1, 1)),
        mk("conv/zero-out-channels", Shape::new(4, 8, 8), Shape::new(0, 8, 8), spec(0, 3, 1, 1)),
        mk("conv/zero-height-input", Shape::new(4, 0, 8), Shape::new(4, 1, 8), spec(4, 1, 1, 1)),
        mk("conv/zero-width-input", Shape::new(4, 8, 0), Shape::new(4, 8, 1), spec(4, 1, 1, 1)),
        mk("conv/zero-kernel", Shape::new(4, 8, 8), Shape::new(4, 8, 8), spec(4, 0, 1, 1)),
        mk("conv/zero-stride", Shape::new(4, 8, 8), Shape::new(4, 8, 8), spec(4, 3, 0, 1)),
        mk("conv/zero-groups", Shape::new(4, 8, 8), Shape::new(4, 8, 8), spec(4, 3, 1, 0)),
        mk("conv/zero-output-plane", Shape::new(4, 8, 8), Shape::new(4, 0, 0), spec(4, 3, 1, 1)),
        FaultCase::hostile("fc/zero-features", {
            run_layer(Layer {
                name: "fc/zero-features".to_owned(),
                op: LayerOp::FullyConnected { out_features: 0 },
                input: Shape::vector(64),
                output: Shape::vector(0),
                is_first_conv: false,
                primary_input: None,
                extra_input: None,
            })
        }),
        FaultCase::hostile("fc/zero-input", {
            run_layer(Layer {
                name: "fc/zero-input".to_owned(),
                op: LayerOp::FullyConnected { out_features: 10 },
                input: Shape::vector(0),
                output: Shape::vector(10),
                is_first_conv: false,
                primary_input: None,
                extra_input: None,
            })
        }),
    ]
}

fn corpus_overflow_shapes() -> Vec<FaultCase> {
    const HUGE: usize = 1 << 21; // HUGE^3 overflows the bounded 64-bit range
    let mk = |name: &'static str, input: Shape, output: Shape, s: ConvSpec| {
        FaultCase::hostile(name, run_layer(conv_layer(name, input, output, s)))
    };
    vec![
        mk(
            "overflow/mac-count",
            Shape::new(HUGE, HUGE, HUGE),
            Shape::new(HUGE, HUGE, HUGE),
            spec(HUGE, 1, 1, 1),
        ),
        mk(
            "overflow/channel-square",
            Shape::new(1 << 30, 16, 16),
            Shape::new(1 << 30, 1, 1),
            spec(1 << 30, 16, 1, 1),
        ),
        mk(
            "overflow/input-elements",
            Shape::new(1 << 30, 1 << 30, 1 << 14),
            Shape::new(1, 1, 1),
            spec(1, 1, 1, 1),
        ),
        FaultCase::hostile("overflow/fc-features", {
            run_layer(Layer {
                name: "overflow/fc-features".to_owned(),
                op: LayerOp::FullyConnected { out_features: usize::MAX / 2 },
                input: Shape::vector(1 << 20),
                output: Shape::vector(usize::MAX / 2),
                is_first_conv: false,
                primary_input: None,
                extra_input: None,
            })
        }),
        FaultCase::hostile("overflow/batch-scale", || {
            let cfg = AcceleratorConfig::paper_default();
            let opts = SimOptions::paper_default();
            let net = codesign_dnn::zoo::alexnet();
            crate::batch::try_simulate_network_batched(
                &net,
                &cfg,
                DataflowPolicy::PerLayer,
                opts,
                u64::MAX / 2,
            )?;
            Ok(())
        }),
        FaultCase::hostile("overflow/zero-batch", || {
            let cfg = AcceleratorConfig::paper_default();
            let opts = SimOptions::paper_default();
            let net = codesign_dnn::zoo::tiny_darknet();
            crate::batch::try_simulate_network_batched(
                &net,
                &cfg,
                DataflowPolicy::PerLayer,
                opts,
                0,
            )?;
            Ok(())
        }),
        FaultCase::hostile("overflow/zero-cores", || {
            let core = AcceleratorConfig::paper_default();
            let opts = SimOptions::paper_default();
            let net = codesign_dnn::zoo::tiny_darknet();
            let mc = MultiCoreConfig { core, cores: 0 };
            try_simulate_network_multicore(&net, &mc, DataflowPolicy::PerLayer, opts)?;
            Ok(())
        }),
        FaultCase::hostile("overflow/core-scale", || {
            let core = AcceleratorConfig::paper_default();
            let opts = SimOptions::paper_default();
            let net = codesign_dnn::zoo::tiny_darknet();
            let mc = MultiCoreConfig { core, cores: usize::MAX / 2 };
            try_simulate_network_multicore(&net, &mc, DataflowPolicy::PerLayer, opts)?;
            Ok(())
        }),
    ]
}

fn tiny_buffer_config() -> AcceleratorConfig {
    // Smallest buffer the builder accepts: feasible for almost nothing.
    AcceleratorConfig::builder()
        .array_size(2)
        .bytes_per_element(1)
        .global_buffer_bytes(8)
        .double_buffering(false)
        .build()
        .unwrap_or_else(|e| unreachable!("tiny config satisfies the builder ranges: {e}"))
}

fn corpus_infeasible_buffers() -> Vec<FaultCase> {
    vec![
        FaultCase::hostile("buffer/squeezenet-on-8-bytes", || {
            let cfg = tiny_buffer_config();
            let opts = SimOptions::paper_default();
            let net = codesign_dnn::zoo::squeezenet_v1_0();
            try_simulate_network(&net, &cfg, DataflowPolicy::PerLayer, opts)?;
            Ok(())
        }),
        FaultCase::hostile("buffer/mobilenet-on-8-bytes", || {
            let cfg = tiny_buffer_config();
            let opts = SimOptions::paper_default();
            let net = codesign_dnn::zoo::mobilenet_v1();
            try_simulate_network(&net, &cfg, DataflowPolicy::PerLayer, opts)?;
            Ok(())
        }),
        FaultCase::hostile("buffer/preflight-catches-it", || {
            let cfg = tiny_buffer_config();
            let net = codesign_dnn::zoo::squeezenet_v1_0();
            validate_network(&net, &cfg)?;
            Ok(())
        }),
        FaultCase::hostile("buffer/single-conv-tiling", || {
            let cfg = tiny_buffer_config();
            let opts = SimOptions::paper_default();
            let layer = conv_layer(
                "big",
                Shape::new(128, 56, 56),
                Shape::new(128, 56, 56),
                spec(128, 3, 1, 1),
            );
            try_simulate_layer(&layer, &cfg, opts, Dataflow::WeightStationary)?;
            Ok(())
        }),
    ]
}

fn corpus_malformed_netfiles() -> Vec<FaultCase> {
    // Parse failures are IR-level, not SimError — normalize them into
    // the InvalidWorkload class so the report counts them uniformly.
    fn parse_case(text: &'static str) -> impl Fn() -> SimResult<()> + Send + Sync {
        move || match parse_network(text) {
            Ok(net) => {
                let cfg = AcceleratorConfig::paper_default();
                try_simulate_network(&net, &cfg, DataflowPolicy::PerLayer, SimOptions::default())?;
                Ok(())
            }
            Err(e) => Err(SimError::invalid(format!("unparseable network: {e}"))),
        }
    }
    vec![
        FaultCase::hostile("netfile/empty", parse_case("")),
        FaultCase::hostile("netfile/header-only", parse_case("network t 3x224x224\n")),
        FaultCase::hostile(
            "netfile/truncated-mid-line",
            parse_case("network t 3x224x224\nconv conv1 64 3"),
        ),
        FaultCase::hostile(
            "netfile/garbage-op",
            parse_case("network t 3x224x224\nfrobnicate x 1 2 3\n"),
        ),
        FaultCase::hostile(
            "netfile/non-numeric-dims",
            parse_case("network t 3x224x224\nconv conv1 sixty-four 3 1 1\n"),
        ),
        FaultCase::hostile(
            "netfile/bad-stride-token",
            parse_case("network t 3x224x224\nconv conv1 64 3 zz p1\n"),
        ),
        FaultCase::hostile(
            "netfile/kernel-exceeds-input",
            parse_case("network t 3x8x8\nconv conv1 64 11 s1\n"),
        ),
    ]
}

fn corpus_controls() -> Vec<FaultCase> {
    fn net_case(
        build: impl Fn() -> codesign_dnn::Network + Send + Sync + 'static,
    ) -> impl Fn() -> SimResult<()> + Send + Sync {
        move || {
            let cfg = AcceleratorConfig::paper_default();
            let opts = SimOptions::paper_default();
            try_simulate_network(&build(), &cfg, DataflowPolicy::PerLayer, opts)?;
            Ok(())
        }
    }
    vec![
        FaultCase::control("control/squeezenet-v1.0", net_case(codesign_dnn::zoo::squeezenet_v1_0)),
        FaultCase::control("control/squeezenet-v1.1", net_case(codesign_dnn::zoo::squeezenet_v1_1)),
        FaultCase::control("control/mobilenet-v1", net_case(codesign_dnn::zoo::mobilenet_v1)),
        FaultCase::control("control/alexnet-fc-path", net_case(codesign_dnn::zoo::alexnet)),
        FaultCase::control("control/tiny-darknet", net_case(codesign_dnn::zoo::tiny_darknet)),
        FaultCase::control("control/batched-4", || {
            let cfg = AcceleratorConfig::paper_default();
            let opts = SimOptions::paper_default();
            let net = codesign_dnn::zoo::tiny_darknet();
            crate::batch::try_simulate_network_batched(
                &net,
                &cfg,
                DataflowPolicy::PerLayer,
                opts,
                4,
            )?;
            Ok(())
        }),
        FaultCase::control("control/multicore-4", || {
            let core = AcceleratorConfig::paper_default();
            let opts = SimOptions::paper_default();
            let net = codesign_dnn::zoo::tiny_darknet();
            let mc = MultiCoreConfig { core, cores: 4 };
            try_simulate_network_multicore(&net, &mc, DataflowPolicy::PerLayer, opts)?;
            Ok(())
        }),
        FaultCase::control("control/preflight-paper-default", || {
            let cfg = AcceleratorConfig::paper_default();
            let net = codesign_dnn::zoo::squeezenet_v1_0();
            validate_network(&net, &cfg)?;
            Ok(())
        }),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_large_enough() {
        assert!(FaultCase::corpus().len() >= 30, "corpus = {}", FaultCase::corpus().len());
    }

    #[test]
    fn corpus_runs_clean() {
        let tracer = Tracer::enabled();
        let report = run_corpus(&tracer);
        assert_eq!(report.panics(), 0, "\n{}", report.render());
        assert_eq!(report.mismatches(), 0, "\n{}", report.render());
        assert!(report.passed());
    }

    #[test]
    fn rejections_bump_error_counters() {
        let tracer = Tracer::enabled();
        let report = run_corpus(&tracer);
        let data = tracer.snapshot();
        let counted: u64 = [
            "infeasible_tiling",
            "unsupported_layer",
            "arithmetic_overflow",
            "buffer_exceeded",
            "invalid_workload",
        ]
        .iter()
        .filter_map(|k| data.counter(&format!("sim.error.{k}")))
        .sum();
        assert_eq!(counted, report.rejections() as u64);
        assert!(data.counter("sim.error.invalid_workload").unwrap_or(0) > 0);
        assert!(data.counter("sim.error.arithmetic_overflow").unwrap_or(0) > 0);
        assert!(data.counter("sim.error.infeasible_tiling").unwrap_or(0) > 0);
    }

    #[test]
    fn report_renders_every_case() {
        let report = run_corpus(&Tracer::disabled());
        let rendered = report.render();
        for (name, _, _) in &report.cases {
            assert!(rendered.contains(name), "{name} missing from render");
        }
        assert!(rendered.contains("PASS"));
    }
}
