//! Performance-result types produced by the simulator.

use std::fmt;

use codesign_arch::{AccessCounts, Dataflow, EnergyModel};

/// Cycle breakdown of one PE-array execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PhaseCycles {
    /// Cycles loading stationary data into the array (weights in WS,
    /// input tiles in OS).
    pub load: u64,
    /// Cycles performing MAC work (streaming in WS, weight broadcasts in
    /// OS).
    pub compute: u64,
    /// Cycles storing results to the global buffer (OS drain; zero for WS
    /// whose outputs stream out continuously).
    pub drain: u64,
}

impl PhaseCycles {
    /// Total cycles across phases.
    pub fn total(&self) -> u64 {
        self.load + self.compute + self.drain
    }
}

/// Result of running one layer's MAC work on the PE array under one
/// dataflow (DRAM excluded — see [`LayerPerf`]).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ComputePerf {
    /// Phase breakdown; `phases.total()` is the PE-array busy time.
    pub phases: PhaseCycles,
    /// MAC operations actually executed (zero-skipped work excluded,
    /// wasted idle PEs excluded).
    pub executed_macs: u64,
    /// Memory-hierarchy access counts for energy accounting.
    pub accesses: AccessCounts,
}

impl ComputePerf {
    /// PE-array busy cycles.
    pub fn cycles(&self) -> u64 {
        self.phases.total()
    }

    /// Average PE utilization: useful MACs per PE per cycle.
    pub fn utilization(&self, pe_count: usize) -> f64 {
        let denom = self.cycles() as f64 * pe_count as f64;
        if denom == 0.0 {
            0.0
        } else {
            self.executed_macs as f64 / denom
        }
    }
}

/// Full per-layer simulation result: PE-array work plus the DRAM picture.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerPerf {
    /// Layer name.
    pub name: String,
    /// Dataflow used; `None` for layers handled by the 1-D SIMD path
    /// (pooling, element-wise, concat).
    pub dataflow: Option<Dataflow>,
    /// PE-array (or SIMD-path) execution.
    pub compute: ComputePerf,
    /// DRAM traffic in bytes (input + weights + output, including tiling
    /// re-fetches).
    pub dram_bytes: u64,
    /// Cycles the DMA needs for that traffic.
    pub dram_cycles: u64,
    /// End-to-end layer cycles after double-buffering overlap.
    pub total_cycles: u64,
    /// Useful-MAC utilization of the PE array over `total_cycles`.
    pub utilization: f64,
}

impl LayerPerf {
    /// Total energy of this layer under `model`.
    pub fn energy(&self, model: &EnergyModel) -> f64 {
        self.compute.accesses.energy(model)
    }
}

impl fmt::Display for LayerPerf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} cycles ({}), util {:.1}%",
            self.name,
            self.total_cycles,
            self.dataflow.map_or("SIMD", |d| d.tag()),
            100.0 * self.utilization
        )
    }
}

/// Whole-network simulation result.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkPerf {
    /// Network name.
    pub name: String,
    /// Per-layer results in execution order.
    pub layers: Vec<LayerPerf>,
}

impl NetworkPerf {
    /// Total inference cycles (batch 1, layers sequential).
    pub fn total_cycles(&self) -> u64 {
        self.layers.iter().map(|l| l.total_cycles).sum()
    }

    /// Total energy under `model` (MAC-normalized units).
    pub fn total_energy(&self, model: &EnergyModel) -> f64 {
        self.layers.iter().map(|l| l.energy(model)).sum()
    }

    /// Aggregated access counts.
    pub fn total_accesses(&self) -> AccessCounts {
        self.layers.iter().map(|l| l.compute.accesses).sum()
    }

    /// Total executed MACs.
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(|l| l.compute.executed_macs).sum()
    }

    /// MAC-weighted average PE utilization over the whole inference.
    pub fn average_utilization(&self, pe_count: usize) -> f64 {
        let cycles: u64 = self.total_cycles();
        if cycles == 0 {
            return 0.0;
        }
        self.total_macs() as f64 / (cycles as f64 * pe_count as f64)
    }

    /// Looks up a layer's result by name.
    pub fn layer(&self, name: &str) -> Option<&LayerPerf> {
        self.layers.iter().find(|l| l.name == name)
    }

    /// Fraction of total cycles spent in layers matching `pred`.
    pub fn cycle_fraction(&self, mut pred: impl FnMut(&LayerPerf) -> bool) -> f64 {
        let total = self.total_cycles();
        if total == 0 {
            return 0.0;
        }
        let m: u64 = self.layers.iter().filter(|l| pred(l)).map(|l| l.total_cycles).sum();
        m as f64 / total as f64
    }
}

impl fmt::Display for NetworkPerf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {} cycles over {} layers", self.name, self.total_cycles(), self.layers.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn perf(name: &str, cycles: u64, macs: u64) -> LayerPerf {
        LayerPerf {
            name: name.into(),
            dataflow: Some(Dataflow::WeightStationary),
            compute: ComputePerf {
                phases: PhaseCycles { load: 0, compute: cycles, drain: 0 },
                executed_macs: macs,
                accesses: AccessCounts { macs, ..AccessCounts::zero() },
            },
            dram_bytes: 0,
            dram_cycles: 0,
            total_cycles: cycles,
            utilization: 0.5,
        }
    }

    #[test]
    fn phases_sum() {
        let p = PhaseCycles { load: 1, compute: 2, drain: 3 };
        assert_eq!(p.total(), 6);
    }

    #[test]
    fn utilization_counts_useful_macs() {
        let c = ComputePerf {
            phases: PhaseCycles { load: 0, compute: 100, drain: 0 },
            executed_macs: 6400,
            accesses: AccessCounts::zero(),
        };
        assert!((c.utilization(256) - 0.25).abs() < 1e-12);
        assert_eq!(ComputePerf::default().utilization(256), 0.0);
    }

    #[test]
    fn network_totals() {
        let net = NetworkPerf {
            name: "t".into(),
            layers: vec![perf("a", 100, 1000), perf("b", 300, 3000)],
        };
        assert_eq!(net.total_cycles(), 400);
        assert_eq!(net.total_macs(), 4000);
        assert!((net.cycle_fraction(|l| l.name == "b") - 0.75).abs() < 1e-12);
        assert!(net.layer("a").is_some());
        assert!(net.layer("zz").is_none());
        let m = EnergyModel::default();
        assert!((net.total_energy(&m) - 4000.0).abs() < 1e-9);
    }
}
