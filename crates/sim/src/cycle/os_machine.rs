//! Stepped output-stationary machine.

use codesign_arch::AcceleratorConfig;

use crate::os::OsModelOptions;
use crate::workload::{split, ConvWork, WorkKind};

use super::machine::{MachineTrace, Phase};

/// Walks the OS schedule step by step: for each output tile and filter
/// pass — preload the input tile (overlapped with broadcasts when
/// enabled), broadcast the non-zero weights channel by channel, then
/// drain the finished partial sums.
pub fn trace_os(work: &ConvWork, cfg: &AcceleratorConfig, opts: OsModelOptions) -> MachineTrace {
    match work.kind {
        WorkKind::FullyConnected => trace_os_fc(work, cfg),
        WorkKind::Dense => trace_os_conv(work, cfg, opts, false),
        WorkKind::Depthwise => trace_os_conv(work, cfg, opts, true),
    }
}

/// Splits `total` units over `parts` consumers: everyone gets the floor
/// share and the last consumer absorbs the remainder — mirroring how the
/// stream buffer's fractional per-channel broadcast quota materializes.
fn distribute(total: u64, parts: u64) -> Vec<u64> {
    if parts == 0 {
        return Vec::new();
    }
    let base = total / parts;
    let mut v = vec![base; parts as usize];
    if let Some(last) = v.last_mut() {
        *last += total % parts;
    }
    v
}

fn trace_os_conv(
    work: &ConvWork,
    cfg: &AcceleratorConfig,
    opts: OsModelOptions,
    depthwise: bool,
) -> MachineTrace {
    let n = cfg.array_size();
    let eff = opts.sparsity.efficiency();
    let taps = work.taps() as u64;
    let th_tiles = split(work.out_h, n);
    let tw_tiles = split(work.out_w, n);

    let mut trace = MachineTrace::new();
    for _group in 0..work.groups {
        for &th in &th_tiles {
            for &tw in &tw_tiles {
                let rows = (th - 1) * work.stride + work.kernel_h;
                let cols = (tw - 1) * work.stride + work.kernel_w;
                let row_load = rows as u64 * (cols as u64).div_ceil(n as u64);
                let pixels = (th * tw) as u64;
                let c = work.in_channels as u64;

                let kg_list: Vec<usize> = if depthwise {
                    vec![0] // sentinel: one pass over all channels
                } else {
                    let packing =
                        if opts.channel_packing { ((n * n) / (th * tw).max(1)).max(1) } else { 1 };
                    let resident = (cfg.rf_depth() * packing).min(work.out_channels.max(1));
                    split(work.out_channels, resident)
                };

                // Per filter pass: an optional pipeline fill, two pushes
                // per channel, and a drain.
                trace.reserve(kg_list.len() * (2 * c as usize + 2));
                for kg in kg_list {
                    let per_channel =
                        if depthwise { taps as f64 * eff } else { (kg as u64 * taps) as f64 * eff };
                    // Per-pass integer budgets, matching the analytic
                    // model's rounding.
                    let broadcasts = (per_channel * c as f64).ceil() as u64;
                    let stall_total = if opts.preload_overlap {
                        ((row_load as f64 - per_channel).max(0.0) * c as f64).round() as u64
                    } else {
                        0
                    };
                    if opts.preload_overlap {
                        trace.push(Phase::Load, row_load, 0, 0); // pipeline fill
                    }
                    let stalls = distribute(stall_total, c);
                    let casts = distribute(broadcasts, c);
                    for ch in 0..c as usize {
                        if opts.preload_overlap {
                            trace.push(Phase::Load, stalls[ch], 0, 0);
                        } else {
                            trace.push(Phase::Load, row_load, 0, 0);
                        }
                        trace.push(Phase::Compute, casts[ch], pixels, pixels);
                    }
                    let produced = if depthwise { pixels * c } else { pixels * kg as u64 };
                    trace.push(Phase::Drain, produced.div_ceil(n as u64), 0, 0);
                }
            }
        }
    }
    trace
}

fn trace_os_fc(work: &ConvWork, cfg: &AcceleratorConfig) -> MachineTrace {
    let n = cfg.array_size() as u64;
    let c = work.in_channels as u64;
    let parts = split(work.out_channels, cfg.pe_count());
    // Exactly three pushes (two compute rates + drain) per filter part.
    let mut trace = MachineTrace::with_capacity(3 * parts.len());
    for kp in parts {
        let kp = kp as u64;
        let cycles = (c * kp).div_ceil(n).max(c);
        let macs = c * kp;
        // Two-rate split so the trace's MAC total is exact.
        let lo_rate = macs / cycles;
        let hi_cycles = macs - lo_rate * cycles;
        trace.push(Phase::Compute, hi_cycles, lo_rate + 1, kp.min(cfg.pe_count() as u64));
        trace.push(Phase::Compute, cycles - hi_cycles, lo_rate, kp.min(cfg.pe_count() as u64));
        trace.push(Phase::Drain, kp.div_ceil(n), 0, 0);
    }
    trace
}

/// [`trace_os`], additionally publishing the machine trace as one
/// `cycle:os` track of phase spans when `tracer` is enabled.
pub fn trace_os_recorded(
    work: &ConvWork,
    cfg: &AcceleratorConfig,
    opts: OsModelOptions,
    tracer: &codesign_trace::Tracer,
) -> MachineTrace {
    let trace = trace_os(work, cfg, opts);
    if tracer.is_enabled() {
        let mut track = tracer.track("cycle:os");
        trace.record_spans(&mut track);
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::os::SparsityModel;

    #[test]
    fn distribute_conserves_total() {
        assert_eq!(distribute(10, 3), vec![3, 3, 4]);
        assert_eq!(distribute(0, 2), vec![0, 0]);
        assert_eq!(distribute(5, 1), vec![5]);
        assert!(distribute(5, 0).is_empty());
    }

    #[test]
    fn fc_trace_mac_total_is_exact() {
        let cfg = AcceleratorConfig::paper_default();
        let work = ConvWork {
            kind: WorkKind::FullyConnected,
            groups: 1,
            in_channels: 4096,
            out_channels: 1000,
            kernel_h: 1,
            kernel_w: 1,
            stride: 1,
            in_h: 1,
            in_w: 1,
            out_h: 1,
            out_w: 1,
        };
        let t = trace_os(&work, &cfg, OsModelOptions::paper_default());
        assert_eq!(t.macs(), 4096 * 1000);
    }

    #[test]
    fn serial_loads_appear_per_channel() {
        let cfg = AcceleratorConfig::builder().array_size(8).rf_depth(8).build().unwrap();
        let work = ConvWork {
            kind: WorkKind::Dense,
            groups: 1,
            in_channels: 4,
            out_channels: 8,
            kernel_h: 3,
            kernel_w: 3,
            stride: 1,
            in_h: 10,
            in_w: 10,
            out_h: 8,
            out_w: 8,
        };
        let opts = OsModelOptions {
            sparsity: SparsityModel::dense(),
            preload_overlap: false,
            channel_packing: false,
        };
        let t = trace_os(&work, &cfg, opts);
        // One tile, one pass, 4 channels: load = 4 * 10 rows * ceil(10/8).
        assert_eq!(t.phase_totals().load, 4 * 10 * 2);
        // Broadcasts: 8 filters * 9 taps per channel.
        assert_eq!(t.phase_totals().compute, 4 * 72);
        assert_eq!(t.macs(), work.macs());
    }
}
