//! Fast-forward output-stationary machine.
//!
//! Closed-form rewrite of the OS schedule walk. Every step of the
//! step-by-step machine ([`super::spec::trace_os`]) is determined by its
//! (output-tile shape, filter-pass size, channel position) alone:
//! `split` caps the distinct tile shapes at four and the distinct pass
//! sizes at two, and within a pass the per-channel budgets take exactly
//! two values (the floor share and the last channel's share, see
//! [`super::spec::distribute`]). So the whole walk collapses to a few
//! macro-segments with repeat counts computed up front.

use codesign_arch::AcceleratorConfig;

use crate::os::OsModelOptions;
use crate::workload::{split, ConvWork, WorkKind};

use super::machine::{MachineTrace, Phase};
use super::ws_machine::run_lengths;

/// Fast-forward OS trace: run-length aggregated over output tiles,
/// filter passes, and channels. Bit-identical in aggregate to the spec
/// walk.
pub fn trace_os(work: &ConvWork, cfg: &AcceleratorConfig, opts: OsModelOptions) -> MachineTrace {
    match work.kind {
        WorkKind::FullyConnected => trace_os_fc(work, cfg),
        WorkKind::Dense => trace_os_conv(work, cfg, opts, false),
        WorkKind::Depthwise => trace_os_conv(work, cfg, opts, true),
    }
}

/// The two values [`super::spec::distribute`] hands out: `parts - 1`
/// consumers get the floor share and the last absorbs the remainder.
fn floor_and_last(total: u64, parts: u64) -> (u64, u64) {
    if parts == 0 {
        return (0, 0);
    }
    let base = total / parts;
    (base, base + total % parts)
}

fn trace_os_conv(
    work: &ConvWork,
    cfg: &AcceleratorConfig,
    opts: OsModelOptions,
    depthwise: bool,
) -> MachineTrace {
    let n = cfg.array_size();
    let eff = opts.sparsity.efficiency();
    let taps = work.taps() as u64;
    let groups = work.groups as u64;
    let th_runs = run_lengths(&split(work.out_h, n));
    let tw_runs = run_lengths(&split(work.out_w, n));

    let mut trace = MachineTrace::new();
    for &(th, hc) in &th_runs {
        for &(tw, wc) in &tw_runs {
            let tile_repeat = groups * hc * wc;
            let rows = (th - 1) * work.stride + work.kernel_h;
            let cols = (tw - 1) * work.stride + work.kernel_w;
            let row_load = rows as u64 * (cols as u64).div_ceil(n as u64);
            let pixels = (th * tw) as u64;
            let c = work.in_channels as u64;

            let kg_runs: Vec<(usize, u64)> = if depthwise {
                vec![(0, 1)] // sentinel: one pass over all channels
            } else {
                let packing =
                    if opts.channel_packing { ((n * n) / (th * tw).max(1)).max(1) } else { 1 };
                let resident = (cfg.rf_depth() * packing).min(work.out_channels.max(1));
                run_lengths(&split(work.out_channels, resident))
            };

            // Per distinct pass size: a fill, two channel-budget rates,
            // and a drain — at most seven macro-segments.
            trace.reserve(kg_runs.len() * 7);
            for &(kg, kc) in &kg_runs {
                let repeat = tile_repeat * kc;
                let per_channel =
                    if depthwise { taps as f64 * eff } else { (kg as u64 * taps) as f64 * eff };
                // Per-pass integer budgets, matching the analytic
                // model's rounding.
                let broadcasts = (per_channel * c as f64).ceil() as u64;
                let stall_total = if opts.preload_overlap {
                    ((row_load as f64 - per_channel).max(0.0) * c as f64).round() as u64
                } else {
                    0
                };
                if opts.preload_overlap {
                    trace.push_repeated(Phase::Load, row_load, 0, 0, repeat); // pipeline fill
                }
                let (stall_floor, stall_last) = floor_and_last(stall_total, c);
                let (cast_floor, cast_last) = floor_and_last(broadcasts, c);
                // Channels 0..c-1 share the floor budgets; the last
                // channel absorbs both remainders.
                if c > 1 {
                    let bulk = repeat * (c - 1);
                    if opts.preload_overlap {
                        trace.push_repeated(Phase::Load, stall_floor, 0, 0, bulk);
                    } else {
                        trace.push_repeated(Phase::Load, row_load, 0, 0, bulk);
                    }
                    trace.push_repeated(Phase::Compute, cast_floor, pixels, pixels, bulk);
                }
                if c > 0 {
                    if opts.preload_overlap {
                        trace.push_repeated(Phase::Load, stall_last, 0, 0, repeat);
                    } else {
                        trace.push_repeated(Phase::Load, row_load, 0, 0, repeat);
                    }
                    trace.push_repeated(Phase::Compute, cast_last, pixels, pixels, repeat);
                }
                let produced = if depthwise { pixels * c } else { pixels * kg as u64 };
                trace.push_repeated(Phase::Drain, produced.div_ceil(n as u64), 0, 0, repeat);
            }
        }
    }
    trace
}

fn trace_os_fc(work: &ConvWork, cfg: &AcceleratorConfig) -> MachineTrace {
    let n = cfg.array_size() as u64;
    let c = work.in_channels as u64;
    let part_runs = run_lengths(&split(work.out_channels, cfg.pe_count()));
    // Exactly three pushes (two compute rates + drain) per distinct
    // filter-part size.
    let mut trace = MachineTrace::with_capacity(3 * part_runs.len());
    for &(kp, count) in &part_runs {
        let kp = kp as u64;
        let cycles = (c * kp).div_ceil(n).max(c);
        let macs = c * kp;
        // Two-rate split so the trace's MAC total is exact.
        let lo_rate = macs / cycles;
        let hi_cycles = macs - lo_rate * cycles;
        let active = kp.min(cfg.pe_count() as u64);
        trace.push_repeated(Phase::Compute, hi_cycles, lo_rate + 1, active, count);
        trace.push_repeated(Phase::Compute, cycles - hi_cycles, lo_rate, active, count);
        trace.push_repeated(Phase::Drain, kp.div_ceil(n), 0, 0, count);
    }
    trace
}

/// [`trace_os`], additionally publishing the machine trace as one
/// `cycle:os` track of phase spans when `tracer` is enabled.
pub fn trace_os_recorded(
    work: &ConvWork,
    cfg: &AcceleratorConfig,
    opts: OsModelOptions,
    tracer: &codesign_trace::Tracer,
) -> MachineTrace {
    let trace = trace_os(work, cfg, opts);
    if tracer.is_enabled() {
        let mut track = tracer.track("cycle:os");
        trace.record_spans(&mut track);
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::os::SparsityModel;

    #[test]
    fn floor_and_last_conserve_the_total() {
        assert_eq!(floor_and_last(10, 3), (3, 4));
        assert_eq!(floor_and_last(0, 2), (0, 0));
        assert_eq!(floor_and_last(5, 1), (5, 5));
        assert_eq!(floor_and_last(5, 0), (0, 0));
    }

    #[test]
    fn fc_trace_mac_total_is_exact() {
        let cfg = AcceleratorConfig::paper_default();
        let work = ConvWork {
            kind: WorkKind::FullyConnected,
            groups: 1,
            in_channels: 4096,
            out_channels: 1000,
            kernel_h: 1,
            kernel_w: 1,
            stride: 1,
            in_h: 1,
            in_w: 1,
            out_h: 1,
            out_w: 1,
        };
        let t = trace_os(&work, &cfg, OsModelOptions::paper_default());
        assert_eq!(t.macs(), 4096 * 1000);
    }

    #[test]
    fn serial_loads_appear_per_channel() {
        let cfg = AcceleratorConfig::builder().array_size(8).rf_depth(8).build().unwrap();
        let work = ConvWork {
            kind: WorkKind::Dense,
            groups: 1,
            in_channels: 4,
            out_channels: 8,
            kernel_h: 3,
            kernel_w: 3,
            stride: 1,
            in_h: 10,
            in_w: 10,
            out_h: 8,
            out_w: 8,
        };
        let opts = OsModelOptions {
            sparsity: SparsityModel::dense(),
            preload_overlap: false,
            channel_packing: false,
        };
        let t = trace_os(&work, &cfg, opts);
        // One tile, one pass, 4 channels: load = 4 * 10 rows * ceil(10/8).
        assert_eq!(t.phase_totals().load, 4 * 10 * 2);
        // Broadcasts: 8 filters * 9 taps per channel.
        assert_eq!(t.phase_totals().compute, 4 * 72);
        assert_eq!(t.macs(), work.macs());
    }

    #[test]
    fn channel_walk_stays_aggregated() {
        // A 512-channel pass emits two channel-budget rates, not 1024
        // per-channel segments.
        let cfg = AcceleratorConfig::paper_default();
        let work = ConvWork {
            kind: WorkKind::Dense,
            groups: 1,
            in_channels: 512,
            out_channels: 64,
            kernel_h: 3,
            kernel_w: 3,
            stride: 1,
            in_h: 15,
            in_w: 15,
            out_h: 13,
            out_w: 13,
        };
        let t = trace_os(&work, &cfg, OsModelOptions::paper_default());
        let spec = super::super::spec::trace_os(&work, &cfg, OsModelOptions::paper_default());
        assert!(t.segments().len() < 64, "{} macro-segments", t.segments().len());
        assert_eq!(t.steps(), spec.steps());
        assert_eq!(t.cycles(), spec.cycles());
        assert_eq!(t.phase_totals(), spec.phase_totals());
        assert_eq!(t.macs(), spec.macs());
    }
}
