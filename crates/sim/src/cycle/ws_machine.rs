//! Fast-forward weight-stationary machine.
//!
//! Closed-form rewrite of the WS schedule walk: every (group, col-tile,
//! row-tile, tap) step emits the same (preload, stream) pair for a given
//! tile shape, so instead of enumerating the steps we count them. `split`
//! produces at most two distinct tile extents per axis (the full tile
//! and one remainder), which bounds the trace at O(distinct-tile-shapes)
//! macro-segments regardless of channel count. The original loop walk
//! lives on as [`super::spec::trace_ws`]; the property suite keeps the
//! two bit-identical on every aggregate.

use codesign_arch::AcceleratorConfig;

use crate::workload::{split, ConvWork, WorkKind};

use super::machine::{MachineTrace, Phase};

/// Run-length encodes a tile list: `[(extent, count)]` in first-seen
/// order. `split` yields runs of the full chunk followed by at most one
/// remainder, so this is at most two entries.
pub(super) fn run_lengths(tiles: &[usize]) -> Vec<(usize, u64)> {
    let mut runs: Vec<(usize, u64)> = Vec::with_capacity(2);
    for &t in tiles {
        match runs.last_mut() {
            Some((v, c)) if *v == t => *c += 1,
            _ => runs.push((t, 1)),
        }
    }
    runs
}

/// Fast-forward WS trace: one macro (preload, stream) pair per distinct
/// (col-tile, row-tile) shape, repeated `groups × count × taps` times.
///
/// Depthwise layers split each shape into the diagonal bucket (useful
/// MACs flow) and the off-diagonal bucket (the array burns the cycles
/// with zero useful MACs). The off-diagonal steps — O(tiles²) dead
/// segments per tap in the step-by-step walk, MobileNet's worst case —
/// collapse to a single macro-segment here.
pub fn trace_ws(work: &ConvWork, cfg: &AcceleratorConfig) -> MachineTrace {
    let n = cfg.array_size();
    let out_plane = work.out_plane() as u64;
    let taps = work.taps() as u64;
    let groups = work.groups as u64;
    let row_tiles = split(work.in_channels, n);
    let col_tiles = split(work.out_channels, n);
    let row_runs = run_lengths(&row_tiles);
    let col_runs = run_lengths(&col_tiles);

    // At most two macro-segments per (col-run, row-run) bucket, doubled
    // for the depthwise diagonal/off-diagonal split.
    let mut trace = MachineTrace::with_capacity(col_runs.len() * row_runs.len() * 4);
    for &(ct, cc) in &col_runs {
        for &(rt, rc) in &row_runs {
            let pairs = cc * rc;
            match work.kind {
                WorkKind::Depthwise => {
                    // Diagonal pairs need positional agreement (ri == ci),
                    // an O(tiles) count over the shorter tile list.
                    let diag = row_tiles
                        .iter()
                        .zip(&col_tiles)
                        .filter(|&(&r, &c)| r == rt && c == ct)
                        .count() as u64;
                    emit(&mut trace, out_plane, rt, ct, rt.min(ct) as u64, diag * taps * groups);
                    emit(&mut trace, out_plane, rt, ct, 0, (pairs - diag) * taps * groups);
                }
                _ => {
                    emit(&mut trace, out_plane, rt, ct, (rt * ct) as u64, pairs * taps * groups);
                }
            }
        }
    }
    trace
}

/// One (preload, stream) macro pair for a tile-shape bucket.
fn emit(
    trace: &mut MachineTrace,
    out_plane: u64,
    rt: usize,
    ct: usize,
    useful_per_cycle: u64,
    repeat: u64,
) {
    trace.push_repeated(Phase::Load, rt as u64, 0, 0, repeat);
    trace.push_repeated(Phase::Compute, out_plane, useful_per_cycle, (rt * ct) as u64, repeat);
}

/// [`trace_ws`], additionally publishing the machine trace as one
/// `cycle:ws` track of phase spans when `tracer` is enabled.
pub fn trace_ws_recorded(
    work: &ConvWork,
    cfg: &AcceleratorConfig,
    tracer: &codesign_trace::Tracer,
) -> MachineTrace {
    let trace = trace_ws(work, cfg);
    if tracer.is_enabled() {
        let mut track = tracer.track("cycle:ws");
        trace.record_spans(&mut track);
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::WorkKind;

    #[test]
    fn segment_structure() {
        let cfg = AcceleratorConfig::builder().array_size(8).build().unwrap();
        let work = ConvWork {
            kind: WorkKind::Dense,
            groups: 1,
            in_channels: 16,
            out_channels: 8,
            kernel_h: 1,
            kernel_w: 1,
            stride: 1,
            in_h: 4,
            in_w: 4,
            out_h: 4,
            out_w: 4,
        };
        let t = trace_ws(&work, &cfg);
        // 2 row tiles x 1 col tile x 1 tap collapse to one macro pair
        // (both row tiles are full 8-channel tiles).
        assert_eq!(t.segments().len(), 2);
        assert_eq!(t.steps(), 4);
        assert_eq!(t.phase_totals().load, 16);
        assert_eq!(t.phase_totals().compute, 32);
        assert_eq!(t.macs(), work.macs());
    }

    #[test]
    fn depthwise_diagonal_only() {
        let cfg = AcceleratorConfig::builder().array_size(8).build().unwrap();
        let work = ConvWork {
            kind: WorkKind::Depthwise,
            groups: 1,
            in_channels: 16,
            out_channels: 16,
            kernel_h: 3,
            kernel_w: 3,
            stride: 1,
            in_h: 6,
            in_w: 6,
            out_h: 4,
            out_w: 4,
        };
        let t = trace_ws(&work, &cfg);
        // Useful MACs = out_plane * taps * channels (diagonal only).
        assert_eq!(t.macs(), (16 * 9 * 16) as u64);
        // But the array burns 2x2 tiles worth of cycles.
        assert_eq!(t.phase_totals().compute, 4 * 9 * 16);
    }

    #[test]
    fn depthwise_dead_steps_stay_aggregated() {
        // MobileNet-style depthwise layer: 512 channels on a 16-wide
        // array is 32×32 tile pairs × 9 taps = 9216 steps in the spec
        // walk, 992 of them off-diagonal dead pairs per tap. The
        // fast-forward trace keeps them as a handful of macro-segments.
        let cfg = AcceleratorConfig::builder().array_size(16).build().unwrap();
        let work = ConvWork {
            kind: WorkKind::Depthwise,
            groups: 1,
            in_channels: 512,
            out_channels: 512,
            kernel_h: 3,
            kernel_w: 3,
            stride: 1,
            in_h: 9,
            in_w: 9,
            out_h: 7,
            out_w: 7,
        };
        let t = trace_ws(&work, &cfg);
        assert!(t.segments().len() <= 8, "{} macro-segments", t.segments().len());
        assert_eq!(t.steps(), 2 * 32 * 32 * 9);
        let spec = super::super::spec::trace_ws(&work, &cfg);
        assert_eq!(t.cycles(), spec.cycles());
        assert_eq!(t.macs(), spec.macs());
    }

    #[test]
    fn run_lengths_encode_split_lists() {
        assert_eq!(run_lengths(&[8, 8, 8, 5]), vec![(8, 3), (5, 1)]);
        assert_eq!(run_lengths(&[4]), vec![(4, 1)]);
        assert!(run_lengths(&[]).is_empty());
    }
}
