//! Stepped weight-stationary machine.

use codesign_arch::AcceleratorConfig;

use crate::workload::{split, ConvWork, WorkKind};

use super::machine::{MachineTrace, Phase};

/// Walks the WS schedule step by step: for each group, column tile, row
/// tile, and filter tap — preload the weight tile one row per cycle, then
/// stream every output pixel, one per cycle.
pub fn trace_ws(work: &ConvWork, cfg: &AcceleratorConfig) -> MachineTrace {
    let n = cfg.array_size();
    let out_plane = work.out_plane() as u64;
    let taps = work.taps() as u64;
    let row_tiles = split(work.in_channels, n);
    let col_tiles = split(work.out_channels, n);

    // Exactly two pushes (preload + stream) per (group, col, row, tap).
    let mut trace = MachineTrace::with_capacity(
        work.groups * col_tiles.len() * row_tiles.len() * taps as usize * 2,
    );
    for _group in 0..work.groups {
        for (ci, &ct) in col_tiles.iter().enumerate() {
            for (ri, &rt) in row_tiles.iter().enumerate() {
                // Useful MACs per streamed cycle: the whole tile for dense
                // layers; for depthwise only diagonal tiles carry the
                // diagonal's worth of useful work.
                let useful_per_cycle = match work.kind {
                    WorkKind::Depthwise => {
                        if ri == ci {
                            rt.min(ct) as u64
                        } else {
                            0
                        }
                    }
                    _ => (rt * ct) as u64,
                };
                for _tap in 0..taps {
                    trace.push(Phase::Load, rt as u64, 0, 0);
                    trace.push(Phase::Compute, out_plane, useful_per_cycle, (rt * ct) as u64);
                }
            }
        }
    }
    trace
}

/// [`trace_ws`], additionally publishing the machine trace as one
/// `cycle:ws` track of phase spans when `tracer` is enabled.
pub fn trace_ws_recorded(
    work: &ConvWork,
    cfg: &AcceleratorConfig,
    tracer: &codesign_trace::Tracer,
) -> MachineTrace {
    let trace = trace_ws(work, cfg);
    if tracer.is_enabled() {
        let mut track = tracer.track("cycle:ws");
        trace.record_spans(&mut track);
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::WorkKind;

    #[test]
    fn segment_structure() {
        let cfg = AcceleratorConfig::builder().array_size(8).build().unwrap();
        let work = ConvWork {
            kind: WorkKind::Dense,
            groups: 1,
            in_channels: 16,
            out_channels: 8,
            kernel_h: 1,
            kernel_w: 1,
            stride: 1,
            in_h: 4,
            in_w: 4,
            out_h: 4,
            out_w: 4,
        };
        let t = trace_ws(&work, &cfg);
        // 2 row tiles x 1 col tile x 1 tap: 2 preloads + 2 streams.
        assert_eq!(t.segments().len(), 4);
        assert_eq!(t.phase_totals().load, 16);
        assert_eq!(t.phase_totals().compute, 32);
        assert_eq!(t.macs(), work.macs());
    }

    #[test]
    fn depthwise_diagonal_only() {
        let cfg = AcceleratorConfig::builder().array_size(8).build().unwrap();
        let work = ConvWork {
            kind: WorkKind::Depthwise,
            groups: 1,
            in_channels: 16,
            out_channels: 16,
            kernel_h: 3,
            kernel_w: 3,
            stride: 1,
            in_h: 6,
            in_w: 6,
            out_h: 4,
            out_w: 4,
        };
        let t = trace_ws(&work, &cfg);
        // Useful MACs = out_plane * taps * channels (diagonal only).
        assert_eq!(t.macs(), (16 * 9 * 16) as u64);
        // But the array burns 2x2 tiles worth of cycles.
        assert_eq!(t.phase_totals().compute, 4 * 9 * 16);
    }
}
