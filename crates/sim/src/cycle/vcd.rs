//! VCD (Value Change Dump) export of machine traces.
//!
//! Dumps a [`MachineTrace`] as an IEEE-1364 VCD waveform with three
//! signals — the phase, the busy-PE count, and the per-cycle MAC rate —
//! so a layer's execution can be inspected in GTKWave or any other
//! waveform viewer next to RTL simulations of a real implementation.

use std::fmt::Write as _;

use super::machine::{MachineTrace, Phase};

fn phase_code(p: Phase) -> &'static str {
    match p {
        Phase::Load => "b00",
        Phase::Compute => "b01",
        Phase::Drain => "b10",
    }
}

fn binary(v: u64, width: usize) -> String {
    format!("b{v:0width$b}")
}

/// Renders the trace as a VCD document. `module` names the enclosing
/// scope (e.g. the layer); the timescale is one cycle = 1 ns nominal.
///
/// Signals:
///
/// * `phase[1:0]` — 00 load, 01 compute, 10 drain;
/// * `active_pes[15:0]` — PEs busy this segment;
/// * `macs_per_cycle[15:0]` — useful MACs per cycle.
pub fn trace_to_vcd(trace: &MachineTrace, module: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "$date codesign-sim $end");
    let _ = writeln!(out, "$timescale 1ns $end");
    let _ = writeln!(out, "$scope module {} $end", module.replace(char::is_whitespace, "_"));
    let _ = writeln!(out, "$var wire 2 p phase[1:0] $end");
    let _ = writeln!(out, "$var wire 16 a active_pes[15:0] $end");
    let _ = writeln!(out, "$var wire 16 m macs_per_cycle[15:0] $end");
    let _ = writeln!(out, "$upscope $end");
    let _ = writeln!(out, "$enddefinitions $end");

    let mut time = 0u64;
    let mut last: Option<(Phase, u64, u64)> = None;
    for seg in trace.segments() {
        let state = (seg.phase, seg.active_pes, seg.macs_per_cycle);
        if last != Some(state) {
            let _ = writeln!(out, "#{time}");
            let _ = writeln!(out, "{} p", phase_code(seg.phase));
            let _ = writeln!(out, "{} a", binary(seg.active_pes.min(0xffff), 16));
            let _ = writeln!(out, "{} m", binary(seg.macs_per_cycle.min(0xffff), 16));
            last = Some(state);
        }
        time += seg.cycles;
    }
    let _ = writeln!(out, "#{time}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cycle::trace_ws;
    use crate::workload::{ConvWork, WorkKind};
    use codesign_arch::AcceleratorConfig;

    fn trace() -> MachineTrace {
        let cfg = AcceleratorConfig::builder().array_size(8).build().unwrap();
        let work = ConvWork {
            kind: WorkKind::Dense,
            groups: 1,
            in_channels: 8,
            out_channels: 8,
            kernel_h: 3,
            kernel_w: 3,
            stride: 1,
            in_h: 6,
            in_w: 6,
            out_h: 4,
            out_w: 4,
        };
        trace_ws(&work, &cfg)
    }

    #[test]
    fn header_and_footprint() {
        let t = trace();
        let vcd = trace_to_vcd(&t, "conv demo");
        assert!(vcd.contains("$scope module conv_demo $end"));
        assert!(vcd.contains("$enddefinitions $end"));
        // Final timestamp equals total cycles.
        let last_ts = vcd
            .lines()
            .filter_map(|l| l.strip_prefix('#'))
            .next_back()
            .and_then(|v| v.parse::<u64>().ok())
            .expect("at least one timestamp");
        assert_eq!(last_ts, t.cycles());
    }

    #[test]
    fn timestamps_are_monotone() {
        let vcd = trace_to_vcd(&trace(), "m");
        let ts: Vec<u64> = vcd
            .lines()
            .filter_map(|l| l.strip_prefix('#'))
            .map(|v| v.parse().expect("numeric timestamp"))
            .collect();
        assert!(ts.windows(2).all(|w| w[0] < w[1]), "{ts:?}");
        assert!(ts.len() > 2, "expect multiple change points");
    }

    #[test]
    fn consecutive_identical_states_are_merged() {
        let vcd = trace_to_vcd(&trace(), "m");
        // WS alternates load/compute; state changes = timestamps - final.
        let changes =
            vcd.lines().filter(|l| l.starts_with("b00 p") || l.starts_with("b01 p")).count();
        let segments = trace().segments().len();
        assert!(changes <= segments);
        assert!(changes >= 2);
    }

    #[test]
    fn phase_codes_are_two_bit() {
        assert_eq!(phase_code(Phase::Load), "b00");
        assert_eq!(phase_code(Phase::Compute), "b01");
        assert_eq!(phase_code(Phase::Drain), "b10");
        assert_eq!(binary(5, 4), "b0101");
    }
}
