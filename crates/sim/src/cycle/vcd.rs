//! VCD (Value Change Dump) export of machine traces.
//!
//! Dumps a [`MachineTrace`] as an IEEE-1364 VCD waveform with three
//! signals — the phase, the busy-PE count, and the per-cycle MAC rate —
//! so a layer's execution can be inspected in GTKWave or any other
//! waveform viewer next to RTL simulations of a real implementation.
//!
//! The writer streams through a [`BufWriter`] and defaults to
//! *segment granularity*: one value-change record per macro-segment
//! state change, so dumping a layer never re-expands the run-length
//! aggregated trace to single cycles. [`VcdGranularity::Cycle`] keeps
//! the old exhaustive per-cycle dump for viewers that want every
//! timestep spelled out.

use std::io::{self, BufWriter, Write};

use super::machine::{MachineTrace, Phase};

/// How densely the waveform samples the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VcdGranularity {
    /// One value-change record per macro-segment state change; repeats
    /// stay folded. The dump size is O(segments), not O(cycles).
    #[default]
    Segment,
    /// One timestamp per machine cycle (exhaustive expansion).
    Cycle,
}

fn phase_code(p: Phase) -> &'static str {
    match p {
        Phase::Load => "b00",
        Phase::Compute => "b01",
        Phase::Drain => "b10",
    }
}

fn binary(v: u64, width: usize) -> String {
    format!("b{v:0width$b}")
}

fn write_header<W: Write>(out: &mut W, module: &str) -> io::Result<()> {
    writeln!(out, "$date codesign-sim $end")?;
    writeln!(out, "$timescale 1ns $end")?;
    writeln!(out, "$scope module {} $end", module.replace(char::is_whitespace, "_"))?;
    writeln!(out, "$var wire 2 p phase[1:0] $end")?;
    writeln!(out, "$var wire 16 a active_pes[15:0] $end")?;
    writeln!(out, "$var wire 16 m macs_per_cycle[15:0] $end")?;
    writeln!(out, "$upscope $end")?;
    writeln!(out, "$enddefinitions $end")
}

fn write_state<W: Write>(
    out: &mut W,
    time: u64,
    phase: Phase,
    pes: u64,
    macs: u64,
) -> io::Result<()> {
    writeln!(out, "#{time}")?;
    writeln!(out, "{} p", phase_code(phase))?;
    writeln!(out, "{} a", binary(pes.min(0xffff), 16))?;
    writeln!(out, "{} m", binary(macs.min(0xffff), 16))
}

/// Streams the trace as a VCD document into `sink` (wrapped in a
/// [`BufWriter`], so handing a raw [`File`](std::fs::File) or stdout
/// lock is fine). `module` names the enclosing scope (e.g. the layer);
/// the timescale is one cycle = 1 ns nominal.
///
/// Signals:
///
/// * `phase[1:0]` — 00 load, 01 compute, 10 drain;
/// * `active_pes[15:0]` — PEs busy this segment;
/// * `macs_per_cycle[15:0]` — useful MACs per cycle.
///
/// # Errors
///
/// Propagates the sink's I/O errors.
pub fn write_vcd<W: Write>(
    trace: &MachineTrace,
    module: &str,
    granularity: VcdGranularity,
    sink: W,
) -> io::Result<()> {
    let mut out = BufWriter::new(sink);
    write_header(&mut out, module)?;
    match granularity {
        VcdGranularity::Segment => {
            let mut time = 0u64;
            let mut last: Option<(Phase, u64, u64)> = None;
            for seg in trace.segments() {
                let state = (seg.phase, seg.active_pes, seg.macs_per_cycle);
                if last != Some(state) {
                    write_state(&mut out, time, seg.phase, seg.active_pes, seg.macs_per_cycle)?;
                    last = Some(state);
                }
                time += seg.total_cycles();
            }
            writeln!(out, "#{time}")?;
        }
        VcdGranularity::Cycle => {
            let mut time = 0u64;
            for c in trace.iter_cycles() {
                write_state(&mut out, c.cycle, c.phase, c.active_pes, c.macs)?;
                time = c.cycle + 1;
            }
            writeln!(out, "#{time}")?;
        }
    }
    out.flush()
}

/// Renders the trace as a VCD document at segment granularity.
/// Convenience wrapper over [`write_vcd`] for in-memory consumers.
pub fn trace_to_vcd(trace: &MachineTrace, module: &str) -> String {
    let mut buf = Vec::new();
    // Writing into a Vec cannot fail; an I/O error here would mean a
    // formatter bug, surfaced as an empty document.
    if write_vcd(trace, module, VcdGranularity::Segment, &mut buf).is_err() {
        return String::new();
    }
    String::from_utf8_lossy(&buf).into_owned()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cycle::trace_ws;
    use crate::workload::{ConvWork, WorkKind};
    use codesign_arch::AcceleratorConfig;

    fn trace() -> MachineTrace {
        let cfg = AcceleratorConfig::builder().array_size(8).build().unwrap();
        let work = ConvWork {
            kind: WorkKind::Dense,
            groups: 1,
            in_channels: 8,
            out_channels: 8,
            kernel_h: 3,
            kernel_w: 3,
            stride: 1,
            in_h: 6,
            in_w: 6,
            out_h: 4,
            out_w: 4,
        };
        trace_ws(&work, &cfg)
    }

    #[test]
    fn header_and_footprint() {
        let t = trace();
        let vcd = trace_to_vcd(&t, "conv demo");
        assert!(vcd.contains("$scope module conv_demo $end"));
        assert!(vcd.contains("$enddefinitions $end"));
        // Final timestamp equals total cycles, repeats included.
        let last_ts = vcd
            .lines()
            .filter_map(|l| l.strip_prefix('#'))
            .next_back()
            .and_then(|v| v.parse::<u64>().ok())
            .expect("at least one timestamp");
        assert_eq!(last_ts, t.cycles());
    }

    #[test]
    fn timestamps_are_monotone() {
        let vcd = trace_to_vcd(&trace(), "m");
        let ts: Vec<u64> = vcd
            .lines()
            .filter_map(|l| l.strip_prefix('#'))
            .map(|v| v.parse().expect("numeric timestamp"))
            .collect();
        assert!(ts.windows(2).all(|w| w[0] < w[1]), "{ts:?}");
        assert!(ts.len() >= 2, "expect change points plus the final stamp");
    }

    #[test]
    fn consecutive_identical_states_are_merged() {
        let vcd = trace_to_vcd(&trace(), "m");
        // WS alternates load/compute; state changes = timestamps - final.
        let changes =
            vcd.lines().filter(|l| l.starts_with("b00 p") || l.starts_with("b01 p")).count();
        let segments = trace().segments().len();
        assert!(changes <= segments);
        assert!(changes >= 2);
    }

    #[test]
    fn segment_mode_never_expands_repeats() {
        let t = trace();
        let vcd = trace_to_vcd(&t, "m");
        let timestamps = vcd.lines().filter(|l| l.starts_with('#')).count() as u64;
        assert!(timestamps <= t.segments().len() as u64 + 1);
        assert!(timestamps < t.cycles());
    }

    #[test]
    fn cycle_mode_expands_every_cycle() {
        let t = trace();
        let mut buf = Vec::new();
        write_vcd(&t, "m", VcdGranularity::Cycle, &mut buf).expect("vec sink");
        let vcd = String::from_utf8_lossy(&buf);
        let timestamps = vcd.lines().filter(|l| l.starts_with('#')).count() as u64;
        assert_eq!(timestamps, t.cycles() + 1);
        // Both modes agree on the final timestamp.
        let last_ts = vcd
            .lines()
            .filter_map(|l| l.strip_prefix('#'))
            .next_back()
            .and_then(|v| v.parse::<u64>().ok())
            .expect("final timestamp");
        assert_eq!(last_ts, t.cycles());
    }

    #[test]
    fn phase_codes_are_two_bit() {
        assert_eq!(phase_code(Phase::Load), "b00");
        assert_eq!(phase_code(Phase::Drain), "b10");
        assert_eq!(phase_code(Phase::Compute), "b01");
        assert_eq!(binary(5, 4), "b0101");
    }
}
