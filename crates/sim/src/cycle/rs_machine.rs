//! Fast-forward row-stationary machine.
//!
//! Closed-form rewrite of the RS schedule walk
//! ([`super::spec::trace_rs`]). The spec walk streams one wave at a time
//! and splits each wave's MAC quota with a running two-rate Bresenham
//! accumulator: after wave `j` the cumulative quota is
//! `floor(total_macs · j / total_waves)`, so each wave receives either
//! `q = total_macs / total_waves` or `q + 1` MACs. Over any contiguous
//! run of waves the number of `q + 1` waves is a difference of two
//! cumulative quotas — no per-wave iteration needed. Each (group, strip)
//! run therefore collapses to at most six macro-segments: one preload,
//! two compute rates per quota class, and one drain.

use codesign_arch::AcceleratorConfig;

use crate::workload::{split, ConvWork, WorkKind};

use super::machine::{MachineTrace, Phase};

/// Fast-forward RS trace: per (group, output-row strip), the folded pair
/// waves are aggregated by their Bresenham MAC-quota class instead of
/// being enumerated. Bit-identical in aggregate to the spec walk.
pub fn trace_rs(work: &ConvWork, cfg: &AcceleratorConfig) -> MachineTrace {
    let n = cfg.array_size();
    let fh = work.kernel_h.min(n);
    let fw = work.kernel_w as u64;
    let ow = work.out_w as u64;
    let fold = (n / fh).max(1);
    let pairs_per_group = match work.kind {
        WorkKind::Depthwise => work.in_channels as u64,
        _ => (work.in_channels * work.out_channels) as u64,
    };
    let pair_waves = pairs_per_group.div_ceil(fold as u64);
    let strips = split(work.out_h, n);
    let total_macs = work.macs();
    let stream = ow * fw;
    // The spec accumulator divides by total *stream cycles*; the stream
    // length is constant per wave, so the quota reduces to MACs over
    // wave counts (u128 guards the intermediate product).
    let total_waves = work.groups as u64 * strips.len() as u64 * pair_waves;
    let quota = |waves: u64| -> u64 {
        if total_waves == 0 || stream == 0 {
            return 0;
        }
        ((total_macs as u128 * waves as u128) / total_waves as u128) as u64
    };
    let q = quota_step(total_macs, total_waves, stream);

    let mut trace = MachineTrace::with_capacity(work.groups * strips.len() * 6);
    let mut done_waves = 0u64;
    for _group in 0..work.groups {
        for &strip in &strips {
            let t0 = quota(done_waves);
            done_waves += pair_waves;
            let t1 = quota(done_waves);
            // Waves in this run carrying q+1 MACs (the rest carry q).
            let hi_waves = (t1 - t0) - q * pair_waves;
            let lo_waves = pair_waves - hi_waves;
            let active = (fh * strip * fold) as u64;

            trace.push_repeated(Phase::Load, fh as u64, 0, 0, pair_waves);
            emit_wave_class(&mut trace, q, stream, active, lo_waves);
            emit_wave_class(&mut trace, q + 1, stream, active, hi_waves);
            trace.push_repeated(
                Phase::Drain,
                (strip as u64 * ow).div_ceil(n as u64),
                0,
                0,
                pair_waves,
            );
        }
    }
    trace
}

/// Per-wave MAC quota floor: what the spec's running accumulator hands
/// every wave before the Bresenham remainder tops some of them up.
fn quota_step(total_macs: u64, total_waves: u64, stream: u64) -> u64 {
    if total_waves == 0 || stream == 0 {
        0
    } else {
        total_macs / total_waves
    }
}

/// The spec's two-rate compute split for one quota class, repeated for
/// every wave in the class.
fn emit_wave_class(trace: &mut MachineTrace, macs: u64, stream: u64, active: u64, waves: u64) {
    if waves == 0 || stream == 0 {
        return;
    }
    let lo = macs / stream;
    let hi_cycles = macs % stream;
    trace.push_repeated(Phase::Compute, hi_cycles, lo + 1, active, waves);
    trace.push_repeated(Phase::Compute, stream - hi_cycles, lo, active, waves);
}

/// [`trace_rs`], additionally publishing the machine trace as one
/// `cycle:rs` track of phase spans when `tracer` is enabled.
pub fn trace_rs_recorded(
    work: &ConvWork,
    cfg: &AcceleratorConfig,
    tracer: &codesign_trace::Tracer,
) -> MachineTrace {
    let trace = trace_rs(work, cfg);
    if tracer.is_enabled() {
        let mut track = tracer.track("cycle:rs");
        trace.record_spans(&mut track);
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rs::simulate_rs;

    fn corpus() -> Vec<ConvWork> {
        let mk = |kind, c: usize, k: usize, f: usize, oh: usize| ConvWork {
            kind,
            groups: 1,
            in_channels: c,
            out_channels: k,
            kernel_h: f,
            kernel_w: f,
            stride: 1,
            in_h: oh + f - 1,
            in_w: oh + f - 1,
            out_h: oh,
            out_w: oh,
        };
        vec![
            mk(WorkKind::Dense, 16, 32, 3, 28),
            mk(WorkKind::Dense, 512, 64, 1, 13),
            mk(WorkKind::Dense, 3, 96, 7, 111),
            mk(WorkKind::Depthwise, 64, 64, 3, 28),
            ConvWork { groups: 2, ..mk(WorkKind::Dense, 48, 128, 5, 27) },
        ]
    }

    #[test]
    fn matches_analytic_compute_and_macs() {
        for cfg in [
            AcceleratorConfig::paper_default(),
            AcceleratorConfig::builder().array_size(8).build().unwrap(),
        ] {
            for work in corpus() {
                let analytic = simulate_rs(&work, &cfg);
                let trace = trace_rs(&work, &cfg);
                let totals = trace.phase_totals();
                assert_eq!(totals.load, analytic.phases.load, "{work:?}");
                assert_eq!(totals.compute, analytic.phases.compute, "{work:?}");
                assert_eq!(totals.drain, analytic.phases.drain, "{work:?}");
                assert_eq!(trace.macs(), analytic.executed_macs, "{work:?}");
            }
        }
    }

    #[test]
    fn drains_follow_every_wave() {
        let cfg = AcceleratorConfig::builder().array_size(8).build().unwrap();
        let work = corpus()[0];
        let trace = trace_rs(&work, &cfg);
        let drains: u64 =
            trace.segments().iter().filter(|s| s.phase == Phase::Drain).map(|s| s.repeat).sum();
        let waves: u64 =
            trace.segments().iter().filter(|s| s.phase == Phase::Load).map(|s| s.repeat).sum();
        assert!(drains > 0);
        assert_eq!(drains, waves, "one drain per wave");
    }

    #[test]
    fn wave_walk_stays_aggregated() {
        // 512×64 pairs fold into thousands of waves; the macro trace
        // stays at a handful of segments per strip.
        let cfg = AcceleratorConfig::paper_default();
        let work = corpus()[1];
        let trace = trace_rs(&work, &cfg);
        let spec = super::super::spec::trace_rs(&work, &cfg);
        assert!(trace.segments().len() < 16, "{} macro-segments", trace.segments().len());
        assert_eq!(trace.cycles(), spec.cycles());
        assert_eq!(trace.phase_totals(), spec.phase_totals());
        assert_eq!(trace.macs(), spec.macs());
        assert_eq!(trace.active_pe_cycles(), spec.active_pe_cycles());
    }
}
