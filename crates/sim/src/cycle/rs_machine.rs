//! Stepped row-stationary machine, validating [`crate::rs`] the same way
//! the WS/OS machines validate their analytic models.

use codesign_arch::AcceleratorConfig;

use crate::workload::{split, ConvWork, WorkKind};

use super::machine::{MachineTrace, Phase};

/// Walks the RS schedule step by step: for each group and output-row
/// strip — per folded pair wave, preload the filter rows, stream the
/// `W'·Fw` broadcast walk, then drain the finished output rows.
pub fn trace_rs(work: &ConvWork, cfg: &AcceleratorConfig) -> MachineTrace {
    let n = cfg.array_size();
    let fh = work.kernel_h.min(n);
    let fw = work.kernel_w as u64;
    let ow = work.out_w as u64;
    let fold = (n / fh).max(1);
    let pairs_per_group = match work.kind {
        WorkKind::Depthwise => work.in_channels as u64,
        _ => (work.in_channels * work.out_channels) as u64,
    };
    let pair_waves = pairs_per_group.div_ceil(fold as u64);
    // Useful MACs, distributed uniformly over the streamed cycles so the
    // trace total matches the analytic model's dense count exactly.
    let total_macs = work.macs();
    let stream_cycles_total =
        work.groups as u64 * split(work.out_h, n).len() as u64 * pair_waves * ow * fw;

    let mut trace = MachineTrace::new();
    let mut emitted_macs = 0u64;
    let mut emitted_stream = 0u64;
    for _group in 0..work.groups {
        for &strip in &split(work.out_h, n) {
            for _wave in 0..pair_waves {
                trace.push(Phase::Load, fh as u64, 0, 0);
                let stream = ow * fw;
                // Two-rate split keeps the integer MAC total exact.
                let target = (total_macs * (emitted_stream + stream))
                    .checked_div(stream_cycles_total)
                    .unwrap_or(0);
                let macs_this = target - emitted_macs;
                let lo = macs_this / stream.max(1);
                let hi_cycles = macs_this - lo * stream;
                let active = (fh * strip * fold) as u64;
                trace.push(Phase::Compute, hi_cycles, lo + 1, active);
                trace.push(Phase::Compute, stream - hi_cycles, lo, active);
                emitted_macs = target;
                emitted_stream += stream;
                trace.push(Phase::Drain, (strip as u64 * ow).div_ceil(n as u64), 0, 0);
            }
        }
    }
    trace
}

/// [`trace_rs`], additionally publishing the machine trace as one
/// `cycle:rs` track of phase spans when `tracer` is enabled.
pub fn trace_rs_recorded(
    work: &ConvWork,
    cfg: &AcceleratorConfig,
    tracer: &codesign_trace::Tracer,
) -> MachineTrace {
    let trace = trace_rs(work, cfg);
    if tracer.is_enabled() {
        let mut track = tracer.track("cycle:rs");
        trace.record_spans(&mut track);
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rs::simulate_rs;

    fn corpus() -> Vec<ConvWork> {
        let mk = |kind, c: usize, k: usize, f: usize, oh: usize| ConvWork {
            kind,
            groups: 1,
            in_channels: c,
            out_channels: k,
            kernel_h: f,
            kernel_w: f,
            stride: 1,
            in_h: oh + f - 1,
            in_w: oh + f - 1,
            out_h: oh,
            out_w: oh,
        };
        vec![
            mk(WorkKind::Dense, 16, 32, 3, 28),
            mk(WorkKind::Dense, 512, 64, 1, 13),
            mk(WorkKind::Dense, 3, 96, 7, 111),
            mk(WorkKind::Depthwise, 64, 64, 3, 28),
            ConvWork { groups: 2, ..mk(WorkKind::Dense, 48, 128, 5, 27) },
        ]
    }

    #[test]
    fn matches_analytic_compute_and_macs() {
        for cfg in [
            AcceleratorConfig::paper_default(),
            AcceleratorConfig::builder().array_size(8).build().unwrap(),
        ] {
            for work in corpus() {
                let analytic = simulate_rs(&work, &cfg);
                let trace = trace_rs(&work, &cfg);
                let totals = trace.phase_totals();
                assert_eq!(totals.load, analytic.phases.load, "{work:?}");
                assert_eq!(totals.compute, analytic.phases.compute, "{work:?}");
                assert_eq!(totals.drain, analytic.phases.drain, "{work:?}");
                assert_eq!(trace.macs(), analytic.executed_macs, "{work:?}");
            }
        }
    }

    #[test]
    fn drains_follow_every_wave() {
        let cfg = AcceleratorConfig::builder().array_size(8).build().unwrap();
        let work = corpus()[0];
        let trace = trace_rs(&work, &cfg);
        let drains = trace.segments().iter().filter(|s| s.phase == Phase::Drain).count();
        assert!(drains > 0);
    }
}
