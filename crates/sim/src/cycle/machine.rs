//! Trace representation shared by the WS and OS machines.

use crate::perf::PhaseCycles;

/// What the PE array is doing during a segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Loading stationary data (weights in WS, input tiles in OS).
    Load,
    /// Performing MAC work.
    Compute,
    /// Draining results to the global buffer.
    Drain,
}

impl Phase {
    /// Short stable tag used in traces and waveforms.
    pub fn tag(&self) -> &'static str {
        match self {
            Phase::Load => "load",
            Phase::Compute => "compute",
            Phase::Drain => "drain",
        }
    }
}

/// A run of consecutive cycles in the same machine state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseSegment {
    /// Activity during the segment.
    pub phase: Phase,
    /// Number of cycles.
    pub cycles: u64,
    /// Useful MACs performed per cycle (0 outside compute).
    pub macs_per_cycle: u64,
    /// PEs busy per cycle (for utilization traces).
    pub active_pes: u64,
}

/// Snapshot of one machine cycle (produced by
/// [`MachineTrace::iter_cycles`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CycleState {
    /// Cycle index from the start of the layer.
    pub cycle: u64,
    /// Activity.
    pub phase: Phase,
    /// Useful MACs this cycle.
    pub macs: u64,
    /// Busy PEs this cycle.
    pub active_pes: u64,
}

/// The full execution trace of one layer on the stepped machine.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MachineTrace {
    segments: Vec<PhaseSegment>,
}

impl MachineTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty trace with room for `segments` pushes — the
    /// stepped machines know their segment counts up front, so the hot
    /// tracing path never reallocates.
    pub fn with_capacity(segments: usize) -> Self {
        Self { segments: Vec::with_capacity(segments) }
    }

    /// Reserves room for at least `additional` further segments.
    pub fn reserve(&mut self, additional: usize) {
        self.segments.reserve(additional);
    }

    /// Appends a segment (no-op when `cycles == 0`).
    pub fn push(&mut self, phase: Phase, cycles: u64, macs_per_cycle: u64, active_pes: u64) {
        if cycles > 0 {
            self.segments.push(PhaseSegment { phase, cycles, macs_per_cycle, active_pes });
        }
    }

    /// The raw segments.
    pub fn segments(&self) -> &[PhaseSegment] {
        &self.segments
    }

    /// Total cycles.
    pub fn cycles(&self) -> u64 {
        self.segments.iter().map(|s| s.cycles).sum()
    }

    /// Total useful MACs.
    pub fn macs(&self) -> u64 {
        self.segments.iter().map(|s| s.cycles * s.macs_per_cycle).sum()
    }

    /// Busy-PE cycle integral (for average utilization).
    pub fn active_pe_cycles(&self) -> u64 {
        self.segments.iter().map(|s| s.cycles * s.active_pes).sum()
    }

    /// Per-phase totals in [`PhaseCycles`] form, comparable with the
    /// analytic models' output.
    pub fn phase_totals(&self) -> PhaseCycles {
        let mut t = PhaseCycles::default();
        for s in &self.segments {
            match s.phase {
                Phase::Load => t.load += s.cycles,
                Phase::Compute => t.compute += s.cycles,
                Phase::Drain => t.drain += s.cycles,
            }
        }
        t
    }

    /// Records the trace onto a `codesign-trace` track: one
    /// [`codesign_trace::Category::Phase`] leaf span per segment, tiling
    /// the track's cycle timeline exactly as the machine tiled its own.
    pub fn record_spans(&self, track: &mut codesign_trace::Track) {
        if !track.is_enabled() {
            return;
        }
        for s in &self.segments {
            track.leaf(
                s.phase.tag(),
                codesign_trace::Category::Phase,
                s.cycles,
                &[("macs", s.cycles * s.macs_per_cycle), ("active_pes", s.active_pes)],
            );
        }
    }

    /// Expands the trace to one [`CycleState`] per machine cycle.
    pub fn iter_cycles(&self) -> impl Iterator<Item = CycleState> + '_ {
        self.segments.iter().flat_map(|s| (0..s.cycles).map(move |_| s)).enumerate().map(
            |(i, s)| CycleState {
                cycle: i as u64,
                phase: s.phase,
                macs: s.macs_per_cycle,
                active_pes: s.active_pes,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_spans_mirrors_the_segments() {
        let mut t = MachineTrace::new();
        t.push(Phase::Load, 3, 0, 0);
        t.push(Phase::Compute, 2, 64, 64);
        t.push(Phase::Drain, 1, 0, 0);
        let tracer = codesign_trace::Tracer::enabled();
        let mut track = tracer.track("cycle:test");
        t.record_spans(&mut track);
        drop(track);
        let data = tracer.snapshot();
        let spans = &data.tracks[0].spans;
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].name, "load");
        assert_eq!(spans[1].counter("macs"), Some(128));
        assert_eq!(data.tracks[0].extent(), t.cycles());
        data.tracks[0].check_nesting().expect("phase spans tile the timeline");
    }

    #[test]
    fn totals_and_expansion() {
        let mut t = MachineTrace::new();
        t.push(Phase::Load, 3, 0, 0);
        t.push(Phase::Compute, 2, 64, 64);
        t.push(Phase::Drain, 0, 0, 0); // dropped
        t.push(Phase::Drain, 1, 0, 0);
        assert_eq!(t.segments().len(), 3);
        assert_eq!(t.cycles(), 6);
        assert_eq!(t.macs(), 128);
        assert_eq!(t.active_pe_cycles(), 128);
        let p = t.phase_totals();
        assert_eq!((p.load, p.compute, p.drain), (3, 2, 1));
        let states: Vec<_> = t.iter_cycles().collect();
        assert_eq!(states.len(), 6);
        assert_eq!(states[3].phase, Phase::Compute);
        assert_eq!(states[5].phase, Phase::Drain);
        assert_eq!(states[4].cycle, 4);
    }
}
