//! Trace representation shared by the WS and OS machines.

use crate::perf::PhaseCycles;

/// What the PE array is doing during a segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Loading stationary data (weights in WS, input tiles in OS).
    Load,
    /// Performing MAC work.
    Compute,
    /// Draining results to the global buffer.
    Drain,
}

impl Phase {
    /// Short stable tag used in traces and waveforms.
    pub fn tag(&self) -> &'static str {
        match self {
            Phase::Load => "load",
            Phase::Compute => "compute",
            Phase::Drain => "drain",
        }
    }
}

/// A run of consecutive cycles in the same machine state, repeated
/// `repeat` times back to back.
///
/// `repeat` is the fast-forward lever: the closed-form machines emit one
/// macro-segment per distinct tile shape instead of one segment per
/// schedule step, so a thousand identical (group × tile × tap) steps
/// collapse to a single entry. All aggregate accessors on
/// [`MachineTrace`] weight by `repeat`; nothing needs to re-expand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseSegment {
    /// Activity during the segment.
    pub phase: Phase,
    /// Number of cycles per repetition.
    pub cycles: u64,
    /// Useful MACs performed per cycle (0 outside compute).
    pub macs_per_cycle: u64,
    /// PEs busy per cycle (for utilization traces).
    pub active_pes: u64,
    /// How many times the segment runs back to back (>= 1).
    pub repeat: u64,
}

impl PhaseSegment {
    /// Total cycles across all repetitions.
    pub fn total_cycles(&self) -> u64 {
        self.cycles * self.repeat
    }

    /// Total useful MACs across all repetitions.
    pub fn total_macs(&self) -> u64 {
        self.cycles * self.repeat * self.macs_per_cycle
    }
}

/// Snapshot of one machine cycle (produced by
/// [`MachineTrace::iter_cycles`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CycleState {
    /// Cycle index from the start of the layer.
    pub cycle: u64,
    /// Activity.
    pub phase: Phase,
    /// Useful MACs this cycle.
    pub macs: u64,
    /// Busy PEs this cycle.
    pub active_pes: u64,
}

/// The full execution trace of one layer on the stepped machine.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MachineTrace {
    segments: Vec<PhaseSegment>,
}

impl MachineTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty trace with room for `segments` pushes — the
    /// stepped machines know their segment counts up front, so the hot
    /// tracing path never reallocates.
    pub fn with_capacity(segments: usize) -> Self {
        Self { segments: Vec::with_capacity(segments) }
    }

    /// Reserves room for at least `additional` further segments.
    pub fn reserve(&mut self, additional: usize) {
        self.segments.reserve(additional);
    }

    /// Appends a segment (no-op when `cycles == 0`).
    pub fn push(&mut self, phase: Phase, cycles: u64, macs_per_cycle: u64, active_pes: u64) {
        self.push_repeated(phase, cycles, macs_per_cycle, active_pes, 1);
    }

    /// Appends a macro-segment standing for `repeat` back-to-back runs
    /// (no-op when `cycles == 0` or `repeat == 0`). Coalesces with the
    /// previous segment when every field matches.
    pub fn push_repeated(
        &mut self,
        phase: Phase,
        cycles: u64,
        macs_per_cycle: u64,
        active_pes: u64,
        repeat: u64,
    ) {
        if cycles == 0 || repeat == 0 {
            return;
        }
        if let Some(last) = self.segments.last_mut() {
            if last.phase == phase
                && last.cycles == cycles
                && last.macs_per_cycle == macs_per_cycle
                && last.active_pes == active_pes
            {
                last.repeat += repeat;
                return;
            }
        }
        self.segments.push(PhaseSegment { phase, cycles, macs_per_cycle, active_pes, repeat });
    }

    /// The raw (macro-)segments.
    pub fn segments(&self) -> &[PhaseSegment] {
        &self.segments
    }

    /// Number of schedule steps the trace stands for once repeats are
    /// expanded (what `segments().len()` was before run-length
    /// aggregation).
    pub fn steps(&self) -> u64 {
        self.segments.iter().map(|s| s.repeat).sum()
    }

    /// Total cycles.
    pub fn cycles(&self) -> u64 {
        self.segments.iter().map(PhaseSegment::total_cycles).sum()
    }

    /// Total useful MACs.
    pub fn macs(&self) -> u64 {
        self.segments.iter().map(PhaseSegment::total_macs).sum()
    }

    /// Busy-PE cycle integral (for average utilization).
    pub fn active_pe_cycles(&self) -> u64 {
        self.segments.iter().map(|s| s.cycles * s.repeat * s.active_pes).sum()
    }

    /// Per-phase totals in [`PhaseCycles`] form, comparable with the
    /// analytic models' output.
    pub fn phase_totals(&self) -> PhaseCycles {
        let mut t = PhaseCycles::default();
        for s in &self.segments {
            let cycles = s.total_cycles();
            match s.phase {
                Phase::Load => t.load += cycles,
                Phase::Compute => t.compute += cycles,
                Phase::Drain => t.drain += cycles,
            }
        }
        t
    }

    /// Records the trace onto a `codesign-trace` track: one
    /// [`codesign_trace::Category::Phase`] leaf span per macro-segment,
    /// tiling the track's cycle timeline exactly as the machine tiled its
    /// own. Repeats stay aggregated — a span covers all repetitions and
    /// carries the repeat count as a counter.
    pub fn record_spans(&self, track: &mut codesign_trace::Track) {
        if !track.is_enabled() {
            return;
        }
        for s in &self.segments {
            track.leaf(
                s.phase.tag(),
                codesign_trace::Category::Phase,
                s.total_cycles(),
                &[("macs", s.total_macs()), ("active_pes", s.active_pes), ("repeat", s.repeat)],
            );
        }
    }

    /// Expands the trace to one [`CycleState`] per machine cycle,
    /// repeats included.
    pub fn iter_cycles(&self) -> impl Iterator<Item = CycleState> + '_ {
        self.segments.iter().flat_map(|s| (0..s.total_cycles()).map(move |_| s)).enumerate().map(
            |(i, s)| CycleState {
                cycle: i as u64,
                phase: s.phase,
                macs: s.macs_per_cycle,
                active_pes: s.active_pes,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_spans_mirrors_the_segments() {
        let mut t = MachineTrace::new();
        t.push(Phase::Load, 3, 0, 0);
        t.push(Phase::Compute, 2, 64, 64);
        t.push(Phase::Drain, 1, 0, 0);
        let tracer = codesign_trace::Tracer::enabled();
        let mut track = tracer.track("cycle:test");
        t.record_spans(&mut track);
        drop(track);
        let data = tracer.snapshot();
        let spans = &data.tracks[0].spans;
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].name, "load");
        assert_eq!(spans[1].counter("macs"), Some(128));
        assert_eq!(data.tracks[0].extent(), t.cycles());
        data.tracks[0].check_nesting().expect("phase spans tile the timeline");
    }

    #[test]
    fn totals_and_expansion() {
        let mut t = MachineTrace::new();
        t.push(Phase::Load, 3, 0, 0);
        t.push(Phase::Compute, 2, 64, 64);
        t.push(Phase::Drain, 0, 0, 0); // dropped
        t.push(Phase::Drain, 1, 0, 0);
        assert_eq!(t.segments().len(), 3);
        assert_eq!(t.cycles(), 6);
        assert_eq!(t.macs(), 128);
        assert_eq!(t.active_pe_cycles(), 128);
        let p = t.phase_totals();
        assert_eq!((p.load, p.compute, p.drain), (3, 2, 1));
        let states: Vec<_> = t.iter_cycles().collect();
        assert_eq!(states.len(), 6);
        assert_eq!(states[3].phase, Phase::Compute);
        assert_eq!(states[5].phase, Phase::Drain);
        assert_eq!(states[4].cycle, 4);
    }

    #[test]
    fn repeats_weight_every_accessor() {
        let mut t = MachineTrace::new();
        t.push_repeated(Phase::Load, 2, 0, 0, 3);
        t.push_repeated(Phase::Compute, 5, 8, 16, 4);
        t.push_repeated(Phase::Drain, 1, 0, 0, 0); // dropped: repeat 0
        assert_eq!(t.segments().len(), 2);
        assert_eq!(t.steps(), 7);
        assert_eq!(t.cycles(), 2 * 3 + 5 * 4);
        assert_eq!(t.macs(), 5 * 4 * 8);
        assert_eq!(t.active_pe_cycles(), 5 * 4 * 16);
        let p = t.phase_totals();
        assert_eq!((p.load, p.compute, p.drain), (6, 20, 0));
        assert_eq!(t.iter_cycles().count() as u64, t.cycles());
        let macs: u64 = t.iter_cycles().map(|c| c.macs).sum();
        assert_eq!(macs, t.macs());
    }

    #[test]
    fn identical_pushes_coalesce() {
        let mut t = MachineTrace::new();
        t.push_repeated(Phase::Load, 2, 0, 0, 3);
        t.push_repeated(Phase::Load, 2, 0, 0, 2);
        t.push_repeated(Phase::Load, 3, 0, 0, 1); // different cycles: new segment
        assert_eq!(t.segments().len(), 2);
        assert_eq!(t.segments()[0].repeat, 5);
        assert_eq!(t.cycles(), 13);
    }

    #[test]
    fn record_spans_aggregates_repeats() {
        let mut t = MachineTrace::new();
        t.push_repeated(Phase::Compute, 4, 2, 8, 5);
        let tracer = codesign_trace::Tracer::enabled();
        let mut track = tracer.track("cycle:test");
        t.record_spans(&mut track);
        drop(track);
        let data = tracer.snapshot();
        let spans = &data.tracks[0].spans;
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].counter("macs"), Some(40));
        assert_eq!(spans[0].counter("repeat"), Some(5));
        assert_eq!(data.tracks[0].extent(), 20);
    }
}
