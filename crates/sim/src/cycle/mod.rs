//! Cycle-stepped PE-array machine.
//!
//! An independent implementation of the two dataflow schedules as explicit
//! state machines that advance phase segments (and can be expanded to
//! single cycles): the machine walks the *actual* tile/pass/channel loop
//! structure, where the analytic models in [`crate::ws`]/[`crate::os`]
//! sum closed forms. Agreement between the two is asserted by the
//! validation tests — a bug in either loop structure breaks the equality.
//!
//! Two implementations coexist. The public `trace_*` functions are the
//! *fast-forward* machines: they compute each distinct schedule step's
//! repeat count up front and emit O(distinct-tile-shapes) macro-segments
//! ([`PhaseSegment::repeat`]). The [`spec`] module keeps the original
//! step-by-step loop walks as the executable specification; the property
//! suite holds the pair bit-identical on every aggregate.

mod machine;
mod os_machine;
mod rs_machine;
pub mod spec;
pub mod vcd;
mod ws_machine;

pub use machine::{CycleState, MachineTrace, Phase, PhaseSegment};
pub use os_machine::{trace_os, trace_os_recorded};
pub use rs_machine::{trace_rs, trace_rs_recorded};
pub use vcd::{trace_to_vcd, write_vcd, VcdGranularity};
pub use ws_machine::{trace_ws, trace_ws_recorded};

#[cfg(test)]
mod validation {
    use super::*;
    use crate::os::{simulate_os, OsModelOptions, SparsityModel};
    use crate::workload::{ConvWork, WorkKind};
    use crate::ws::simulate_ws;
    use codesign_arch::AcceleratorConfig;

    fn corpus() -> Vec<ConvWork> {
        let mk = |kind, c: usize, k: usize, f: usize, s: usize, oh: usize, ow: usize| ConvWork {
            kind,
            groups: 1,
            in_channels: c,
            out_channels: k,
            kernel_h: f,
            kernel_w: f,
            stride: s,
            in_h: (oh - 1) * s + f,
            in_w: (ow - 1) * s + f,
            out_h: oh,
            out_w: ow,
        };
        vec![
            mk(WorkKind::Dense, 3, 96, 7, 2, 111, 111),
            mk(WorkKind::Dense, 96, 16, 1, 1, 55, 55),
            mk(WorkKind::Dense, 16, 64, 3, 1, 55, 55),
            mk(WorkKind::Dense, 512, 1000, 1, 1, 13, 13),
            mk(WorkKind::Dense, 64, 256, 3, 1, 13, 13),
            mk(WorkKind::Depthwise, 32, 32, 3, 1, 112, 112),
            mk(WorkKind::Depthwise, 512, 512, 3, 1, 7, 7),
            mk(WorkKind::FullyConnected, 4096, 1000, 1, 1, 1, 1),
            ConvWork { groups: 2, ..mk(WorkKind::Dense, 48, 128, 5, 1, 27, 27) },
        ]
    }

    fn configs() -> Vec<AcceleratorConfig> {
        vec![
            AcceleratorConfig::paper_default(),
            AcceleratorConfig::builder().array_size(16).rf_depth(8).build().unwrap(),
            AcceleratorConfig::builder().array_size(8).rf_depth(32).build().unwrap(),
        ]
    }

    #[test]
    fn ws_machine_matches_analytic_phases_exactly() {
        for cfg in configs() {
            for work in corpus() {
                let analytic = simulate_ws(&work, &cfg);
                let trace = trace_ws(&work, &cfg);
                assert_eq!(
                    trace.phase_totals(),
                    analytic.phases,
                    "WS phases diverge for {work:?} on {cfg}"
                );
                assert_eq!(
                    trace.macs(),
                    analytic.executed_macs,
                    "WS MACs diverge for {work:?} on {cfg}"
                );
            }
        }
    }

    #[test]
    fn os_machine_matches_analytic_phases() {
        let opt_sets = [
            OsModelOptions::paper_default(),
            OsModelOptions {
                sparsity: SparsityModel::dense(),
                preload_overlap: false,
                channel_packing: false,
            },
            OsModelOptions {
                sparsity: SparsityModel { zero_fraction: 0.4, exploit: true },
                preload_overlap: false,
                channel_packing: true,
            },
        ];
        for cfg in configs() {
            for work in corpus() {
                for opts in opt_sets {
                    let analytic = simulate_os(&work, &cfg, opts);
                    let trace = trace_os(&work, &cfg, opts);
                    assert_eq!(
                        trace.phase_totals(),
                        analytic.phases,
                        "OS phases diverge for {work:?} on {cfg} with {opts:?}"
                    );
                    // Broadcast quantization differs by at most one
                    // pixel-tile worth of MACs per expanded compute
                    // step (repeats count as steps).
                    let diff = trace.macs().abs_diff(analytic.executed_macs);
                    let bound = trace
                        .segments()
                        .iter()
                        .filter(|s| s.phase == Phase::Compute)
                        .map(|s| s.repeat)
                        .sum::<u64>()
                        * cfg.pe_count() as u64;
                    assert!(
                        diff <= bound,
                        "OS MACs diverge beyond rounding for {work:?}: {diff} > {bound}"
                    );
                }
            }
        }
    }

    /// Every aggregate the simulator consumes must agree between the
    /// fast-forward machine and the step-by-step spec walk.
    fn assert_fast_matches_spec(fast: &MachineTrace, spec: &MachineTrace, what: &str) {
        assert_eq!(fast.cycles(), spec.cycles(), "{what}: total cycles");
        assert_eq!(fast.phase_totals(), spec.phase_totals(), "{what}: per-phase cycles");
        assert_eq!(fast.macs(), spec.macs(), "{what}: MACs");
        assert_eq!(fast.active_pe_cycles(), spec.active_pe_cycles(), "{what}: busy-PE cycles");
        assert_eq!(fast.steps(), spec.steps(), "{what}: expanded step count");
        assert_eq!(
            fast.iter_cycles().count() as u64,
            spec.iter_cycles().count() as u64,
            "{what}: expansion length"
        );
        assert_eq!(
            fast.iter_cycles().map(|c| c.macs).sum::<u64>(),
            spec.iter_cycles().map(|c| c.macs).sum::<u64>(),
            "{what}: expansion MACs"
        );
    }

    #[test]
    fn fast_forward_matches_spec_on_the_corpus() {
        for cfg in configs() {
            for work in corpus() {
                assert_fast_matches_spec(
                    &trace_ws(&work, &cfg),
                    &spec::trace_ws(&work, &cfg),
                    "ws",
                );
                assert_fast_matches_spec(
                    &trace_rs(&work, &cfg),
                    &spec::trace_rs(&work, &cfg),
                    "rs",
                );
                for opts in [
                    OsModelOptions::paper_default(),
                    OsModelOptions {
                        sparsity: SparsityModel::dense(),
                        preload_overlap: false,
                        channel_packing: false,
                    },
                ] {
                    assert_fast_matches_spec(
                        &trace_os(&work, &cfg, opts),
                        &spec::trace_os(&work, &cfg, opts),
                        "os",
                    );
                }
            }
        }
    }

    #[test]
    fn per_cycle_expansion_is_consistent() {
        let cfg = AcceleratorConfig::builder().array_size(8).rf_depth(8).build().unwrap();
        let work = ConvWork {
            kind: WorkKind::Dense,
            groups: 1,
            in_channels: 8,
            out_channels: 16,
            kernel_h: 3,
            kernel_w: 3,
            stride: 1,
            in_h: 12,
            in_w: 12,
            out_h: 10,
            out_w: 10,
        };
        for trace in [trace_ws(&work, &cfg), trace_os(&work, &cfg, OsModelOptions::paper_default())]
        {
            let cycles = trace.iter_cycles().count() as u64;
            assert_eq!(cycles, trace.cycles());
            let macs: u64 = trace.iter_cycles().map(|c| c.macs).sum();
            assert_eq!(macs, trace.macs());
        }
    }
}
