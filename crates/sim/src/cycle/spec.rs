//! Executable specification of the stepped machines.
//!
//! These are the original loop machines: they walk every (group ×
//! col-tile × row-tile × tap) schedule step — or, for OS, every (tile ×
//! filter pass × channel) step — and emit one segment per step. The
//! public `trace_ws`/`trace_os`/`trace_rs` functions in this crate are
//! closed-form fast-forward rewrites that emit run-length macro-segments
//! instead; the property suite asserts the two agree bit-for-bit on
//! total cycles, per-phase cycles, MACs, busy-PE integrals, and the
//! `iter_cycles` expansion's per-state cycle counts. The spec machines
//! additionally fix the exact step *order*, which the fast machines
//! canonicalize (identical steps are grouped), so order-sensitive
//! consumers that need the literal schedule walk should trace here.
//!
//! Keep these loops dumb: their value is being obviously equivalent to
//! the schedule described in the paper, not being fast.

use codesign_arch::AcceleratorConfig;

use crate::os::OsModelOptions;
use crate::workload::{split, ConvWork, WorkKind};

use super::machine::{MachineTrace, Phase};

/// Step-by-step WS schedule walk: for each group, column tile, row tile,
/// and filter tap — preload the weight tile one row per cycle, then
/// stream every output pixel, one per cycle.
pub fn trace_ws(work: &ConvWork, cfg: &AcceleratorConfig) -> MachineTrace {
    let n = cfg.array_size();
    let out_plane = work.out_plane() as u64;
    let taps = work.taps() as u64;
    let row_tiles = split(work.in_channels, n);
    let col_tiles = split(work.out_channels, n);

    // Exactly two pushes (preload + stream) per (group, col, row, tap).
    let mut trace = MachineTrace::with_capacity(
        work.groups * col_tiles.len() * row_tiles.len() * taps as usize * 2,
    );
    for _group in 0..work.groups {
        for (ci, &ct) in col_tiles.iter().enumerate() {
            for (ri, &rt) in row_tiles.iter().enumerate() {
                // Useful MACs per streamed cycle: the whole tile for dense
                // layers; for depthwise only diagonal tiles carry the
                // diagonal's worth of useful work.
                let useful_per_cycle = match work.kind {
                    WorkKind::Depthwise => {
                        if ri == ci {
                            rt.min(ct) as u64
                        } else {
                            0
                        }
                    }
                    _ => (rt * ct) as u64,
                };
                for _tap in 0..taps {
                    trace.push(Phase::Load, rt as u64, 0, 0);
                    trace.push(Phase::Compute, out_plane, useful_per_cycle, (rt * ct) as u64);
                }
            }
        }
    }
    trace
}

/// Step-by-step OS schedule walk: for each output tile and filter pass —
/// preload the input tile (overlapped with broadcasts when enabled),
/// broadcast the non-zero weights channel by channel, then drain the
/// finished partial sums.
pub fn trace_os(work: &ConvWork, cfg: &AcceleratorConfig, opts: OsModelOptions) -> MachineTrace {
    match work.kind {
        WorkKind::FullyConnected => trace_os_fc(work, cfg),
        WorkKind::Dense => trace_os_conv(work, cfg, opts, false),
        WorkKind::Depthwise => trace_os_conv(work, cfg, opts, true),
    }
}

/// Splits `total` units over `parts` consumers: everyone gets the floor
/// share and the last consumer absorbs the remainder — mirroring how the
/// stream buffer's fractional per-channel broadcast quota materializes.
pub(super) fn distribute(total: u64, parts: u64) -> Vec<u64> {
    if parts == 0 {
        return Vec::new();
    }
    let base = total / parts;
    let mut v = vec![base; parts as usize];
    if let Some(last) = v.last_mut() {
        *last += total % parts;
    }
    v
}

fn trace_os_conv(
    work: &ConvWork,
    cfg: &AcceleratorConfig,
    opts: OsModelOptions,
    depthwise: bool,
) -> MachineTrace {
    let n = cfg.array_size();
    let eff = opts.sparsity.efficiency();
    let taps = work.taps() as u64;
    let th_tiles = split(work.out_h, n);
    let tw_tiles = split(work.out_w, n);

    let mut trace = MachineTrace::new();
    for _group in 0..work.groups {
        for &th in &th_tiles {
            for &tw in &tw_tiles {
                let rows = (th - 1) * work.stride + work.kernel_h;
                let cols = (tw - 1) * work.stride + work.kernel_w;
                let row_load = rows as u64 * (cols as u64).div_ceil(n as u64);
                let pixels = (th * tw) as u64;
                let c = work.in_channels as u64;

                let kg_list: Vec<usize> = if depthwise {
                    vec![0] // sentinel: one pass over all channels
                } else {
                    let packing =
                        if opts.channel_packing { ((n * n) / (th * tw).max(1)).max(1) } else { 1 };
                    let resident = (cfg.rf_depth() * packing).min(work.out_channels.max(1));
                    split(work.out_channels, resident)
                };

                // Per filter pass: an optional pipeline fill, two pushes
                // per channel, and a drain.
                trace.reserve(kg_list.len() * (2 * c as usize + 2));
                for kg in kg_list {
                    let per_channel =
                        if depthwise { taps as f64 * eff } else { (kg as u64 * taps) as f64 * eff };
                    // Per-pass integer budgets, matching the analytic
                    // model's rounding.
                    let broadcasts = (per_channel * c as f64).ceil() as u64;
                    let stall_total = if opts.preload_overlap {
                        ((row_load as f64 - per_channel).max(0.0) * c as f64).round() as u64
                    } else {
                        0
                    };
                    if opts.preload_overlap {
                        trace.push(Phase::Load, row_load, 0, 0); // pipeline fill
                    }
                    let stalls = distribute(stall_total, c);
                    let casts = distribute(broadcasts, c);
                    for ch in 0..c as usize {
                        if opts.preload_overlap {
                            trace.push(Phase::Load, stalls[ch], 0, 0);
                        } else {
                            trace.push(Phase::Load, row_load, 0, 0);
                        }
                        trace.push(Phase::Compute, casts[ch], pixels, pixels);
                    }
                    let produced = if depthwise { pixels * c } else { pixels * kg as u64 };
                    trace.push(Phase::Drain, produced.div_ceil(n as u64), 0, 0);
                }
            }
        }
    }
    trace
}

fn trace_os_fc(work: &ConvWork, cfg: &AcceleratorConfig) -> MachineTrace {
    let n = cfg.array_size() as u64;
    let c = work.in_channels as u64;
    let parts = split(work.out_channels, cfg.pe_count());
    // Exactly three pushes (two compute rates + drain) per filter part.
    let mut trace = MachineTrace::with_capacity(3 * parts.len());
    for kp in parts {
        let kp = kp as u64;
        let cycles = (c * kp).div_ceil(n).max(c);
        let macs = c * kp;
        // Two-rate split so the trace's MAC total is exact.
        let lo_rate = macs / cycles;
        let hi_cycles = macs - lo_rate * cycles;
        trace.push(Phase::Compute, hi_cycles, lo_rate + 1, kp.min(cfg.pe_count() as u64));
        trace.push(Phase::Compute, cycles - hi_cycles, lo_rate, kp.min(cfg.pe_count() as u64));
        trace.push(Phase::Drain, kp.div_ceil(n), 0, 0);
    }
    trace
}

/// Step-by-step RS schedule walk: for each group and output-row strip —
/// per folded pair wave, preload the filter rows, stream the `W'·Fw`
/// broadcast walk, then drain the finished output rows.
pub fn trace_rs(work: &ConvWork, cfg: &AcceleratorConfig) -> MachineTrace {
    let n = cfg.array_size();
    let fh = work.kernel_h.min(n);
    let fw = work.kernel_w as u64;
    let ow = work.out_w as u64;
    let fold = (n / fh).max(1);
    let pairs_per_group = match work.kind {
        WorkKind::Depthwise => work.in_channels as u64,
        _ => (work.in_channels * work.out_channels) as u64,
    };
    let pair_waves = pairs_per_group.div_ceil(fold as u64);
    // Useful MACs, distributed uniformly over the streamed cycles so the
    // trace total matches the analytic model's dense count exactly.
    let total_macs = work.macs();
    let stream_cycles_total =
        work.groups as u64 * split(work.out_h, n).len() as u64 * pair_waves * ow * fw;

    let mut trace = MachineTrace::new();
    let mut emitted_macs = 0u64;
    let mut emitted_stream = 0u64;
    for _group in 0..work.groups {
        for &strip in &split(work.out_h, n) {
            for _wave in 0..pair_waves {
                trace.push(Phase::Load, fh as u64, 0, 0);
                let stream = ow * fw;
                // Two-rate split keeps the integer MAC total exact.
                let target = (total_macs * (emitted_stream + stream))
                    .checked_div(stream_cycles_total)
                    .unwrap_or(0);
                let macs_this = target - emitted_macs;
                let lo = macs_this / stream.max(1);
                let hi_cycles = macs_this - lo * stream;
                let active = (fh * strip * fold) as u64;
                trace.push(Phase::Compute, hi_cycles, lo + 1, active);
                trace.push(Phase::Compute, stream - hi_cycles, lo, active);
                emitted_macs = target;
                emitted_stream += stream;
                trace.push(Phase::Drain, (strip as u64 * ow).div_ceil(n as u64), 0, 0);
            }
        }
    }
    trace
}
