//! Analytic output-stationary (OS) dataflow model.
//!
//! Mapping (§4.1.2 of the paper, ShiDianNao-style): the PE array holds a
//! 2-D block of output pixels. Per block, output channels are processed
//! in groups of up to the register-file depth (each PE keeps one partial
//! sum per resident filter). For every input channel the input tile is
//! preloaded row-by-row (mesh links reuse interior pixels), then the
//! stream buffer broadcasts weights one per cycle — **skipping zero
//! weights**, the paper's sparsity optimization — and every active PE
//! performs one MAC per broadcast. Finished blocks drain to the global
//! buffer, which "takes additional processing time".
//!
//! Consequences the paper leans on, reproduced here:
//!
//! * `1×1` layers do one useful broadcast per loaded input pixel — load
//!   dominated, OS's worst case (mitigated by a deeper RF: the tune-up);
//! * the first conv layer has a huge output plane and only 3 channels —
//!   OS's best case;
//! * depthwise layers need no cross-channel reduction and a single
//!   resident partial sum — near-ideal on OS;
//! * small late-layer feature maps underfill the N×N array ("mismatch
//!   between the size of the PE array and the size of the feature map").

use codesign_arch::{AcceleratorConfig, AccessCounts};

use crate::perf::{ComputePerf, PhaseCycles};
use crate::workload::{split, ConvWork, WorkKind};

/// Sparsity treatment for the OS weight broadcast.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SparsityModel {
    /// Fraction of zero weights in the layer (the paper conservatively
    /// uses 0.4).
    pub zero_fraction: f64,
    /// Whether the stream buffer skips zero weights (true for the
    /// Squeezelerator; false for the ablation).
    pub exploit: bool,
}

impl SparsityModel {
    /// The paper's setting: 40 % zeros, skipped.
    pub fn paper_default() -> Self {
        Self { zero_fraction: 0.4, exploit: true }
    }

    /// No sparsity exploitation at all.
    pub fn dense() -> Self {
        Self { zero_fraction: 0.0, exploit: false }
    }

    /// Effective fraction of broadcasts that actually occur.
    pub fn efficiency(&self) -> f64 {
        if self.exploit {
            (1.0 - self.zero_fraction).clamp(0.0, 1.0)
        } else {
            1.0
        }
    }
}

impl Default for SparsityModel {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Microarchitectural options of the OS datapath. Each switch models one
/// optimization the Squeezelerator's operation sequence (§4.1.2) implies;
/// all default on, and each can be disabled for the ablation benches.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OsModelOptions {
    /// Weight-sparsity treatment of the broadcast stream.
    pub sparsity: SparsityModel,
    /// Overlap the next channel's input-tile preload with the current
    /// channel's broadcasts ("the preload buffer prepares the data to be
    /// transferred to the PE array before the operation starts").
    pub preload_overlap: bool,
    /// When a small output tile underfills the N×N array, replicate it for
    /// several output-channel groups so one input load feeds more filters.
    pub channel_packing: bool,
}

impl OsModelOptions {
    /// The paper's configuration: 40 % sparsity skipped, preload
    /// overlapped, channel packing on.
    pub fn paper_default() -> Self {
        Self {
            sparsity: SparsityModel::paper_default(),
            preload_overlap: true,
            channel_packing: true,
        }
    }

    /// Replaces the sparsity model.
    pub fn with_sparsity(mut self, sparsity: SparsityModel) -> Self {
        self.sparsity = sparsity;
        self
    }
}

impl Default for OsModelOptions {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Simulates one layer's MAC work under the OS dataflow.
pub fn simulate_os(work: &ConvWork, cfg: &AcceleratorConfig, opts: OsModelOptions) -> ComputePerf {
    match work.kind {
        WorkKind::FullyConnected => simulate_os_fc(work, cfg),
        WorkKind::Dense => simulate_os_conv(work, cfg, opts, false),
        WorkKind::Depthwise => simulate_os_conv(work, cfg, opts, true),
    }
}

fn simulate_os_conv(
    work: &ConvWork,
    cfg: &AcceleratorConfig,
    opts: OsModelOptions,
    depthwise: bool,
) -> ComputePerf {
    let n = cfg.array_size();
    let eff = opts.sparsity.efficiency();
    let taps = work.taps() as u64;

    let th_tiles = split(work.out_h, n);
    let tw_tiles = split(work.out_w, n);

    let mut load = 0u64;
    let mut compute_f = 0f64;
    let mut drain = 0u64;
    let mut macs_f = 0f64;
    let mut acc = AccessCounts::zero();
    let mut gb_reads_f = 0f64;

    for _group in 0..work.groups {
        for &th in &th_tiles {
            for &tw in &tw_tiles {
                let rows = (th - 1) * work.stride + work.kernel_h;
                let cols = (tw - 1) * work.stride + work.kernel_w;
                let row_load = rows as u64 * (cols as u64).div_ceil(n as u64);
                let pixels = (th * tw) as u64;
                // Distributing a loaded tile across the mesh costs each
                // element about half the tile height in neighbour hops.
                let distribute_hops = (rows * cols) as u64 * (th as u64 / 2).max(1);
                // Overlapped preload: channel i+1's tile loads while
                // channel i's weights broadcast, so a pass costs one fill
                // load plus, per channel, only the excess of load over
                // compute. Without overlap loads are fully serial.
                let visible_load = |compute_per_channel: f64, channels: u64| -> u64 {
                    if opts.preload_overlap {
                        let stall = (row_load as f64 - compute_per_channel).max(0.0);
                        row_load + (stall * channels as f64).round() as u64
                    } else {
                        row_load * channels
                    }
                };
                if depthwise {
                    // One pass; each channel loads its own tile and runs
                    // its taps. Broadcast counts round up per channel
                    // (the stream buffer issues whole weights).
                    let c = work.in_channels as u64;
                    let per_channel = taps as f64 * eff;
                    load += visible_load(per_channel, c);
                    acc.global_buffer += (rows * cols) as u64 * c;
                    acc.inter_pe += distribute_hops * c;
                    compute_f += (per_channel * c as f64).ceil();
                    macs_f += pixels as f64 * per_channel * c as f64;
                    gb_reads_f += per_channel * c as f64; // weight broadcasts
                                                          // All channels' results drain.
                    drain += (pixels * c).div_ceil(n as u64);
                    acc.global_buffer += pixels * c;
                    acc.inter_pe += pixels * c;
                } else {
                    // Channel packing: replicate an underfilling tile for
                    // several output-channel groups, so one input load
                    // feeds packing × rf_depth resident filters.
                    let packing =
                        if opts.channel_packing { ((n * n) / (th * tw).max(1)).max(1) } else { 1 };
                    let resident = (cfg.rf_depth() * packing).min(work.out_channels.max(1));
                    for kg in split(work.out_channels, resident) {
                        // Input tiles reload once per filter pass — this
                        // is what a deeper RF (8 -> 16) halves.
                        let c = work.in_channels as u64;
                        let per_channel = (kg as u64 * taps) as f64 * eff;
                        load += visible_load(per_channel, c);
                        acc.global_buffer += (rows * cols) as u64 * c;
                        acc.inter_pe += distribute_hops * c;
                        compute_f += (per_channel * c as f64).ceil();
                        macs_f += pixels as f64 * per_channel * c as f64;
                        gb_reads_f += per_channel * c as f64;
                        drain += (pixels * kg as u64).div_ceil(n as u64);
                        acc.global_buffer += pixels * kg as u64;
                        acc.inter_pe += pixels * kg as u64;
                    }
                }
            }
        }
    }

    let compute = compute_f.ceil() as u64;
    let macs = macs_f.round() as u64;
    acc.macs = macs;
    acc.global_buffer += gb_reads_f.round() as u64;
    // Each MAC reads the resident input register and read-modify-writes
    // its partial sum: 3 RF accesses.
    acc.register_file += 3 * macs;
    // Mesh shifts distribute loaded pixels: one hop per loaded element is
    // subsumed in the load counts; broadcasts reach all active PEs.
    acc.inter_pe += macs;

    ComputePerf { phases: PhaseCycles { load, compute, drain }, executed_macs: macs, accesses: acc }
}

/// OS execution of a fully-connected layer: output neurons tile the whole
/// N×N array, inputs broadcast one per cycle, but each PE then needs its
/// own weight — the stream buffer's N-wide port becomes the bottleneck.
fn simulate_os_fc(work: &ConvWork, cfg: &AcceleratorConfig) -> ComputePerf {
    let n = cfg.array_size() as u64;
    let c = work.in_channels as u64;
    let mut compute = 0u64;
    let mut drain = 0u64;
    let mut macs = 0u64;
    let mut acc = AccessCounts::zero();
    for kp in split(work.out_channels, cfg.pe_count()) {
        let kp = kp as u64;
        // Weight supply at N per cycle gates the broadcast rate.
        compute += (c * kp).div_ceil(n).max(c);
        drain += kp.div_ceil(n);
        macs += c * kp;
        acc.global_buffer += c * kp // weights
            + c // input broadcasts
            + kp; // drained outputs
        acc.inter_pe += kp;
    }
    acc.macs = macs;
    acc.register_file += 3 * macs;
    acc.inter_pe += macs;
    ComputePerf {
        phases: PhaseCycles { load: 0, compute, drain },
        executed_macs: macs,
        accesses: acc,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> AcceleratorConfig {
        AcceleratorConfig::paper_default()
    }

    /// Options with overlap/packing off — the raw operation sequence,
    /// used by the hand-calculation tests.
    fn raw(sparsity: SparsityModel) -> OsModelOptions {
        OsModelOptions { sparsity, preload_overlap: false, channel_packing: false }
    }

    fn dense(c: usize, k: usize, f: usize, stride: usize, oh: usize, ow: usize) -> ConvWork {
        ConvWork {
            kind: WorkKind::Dense,
            groups: 1,
            in_channels: c,
            out_channels: k,
            kernel_h: f,
            kernel_w: f,
            stride,
            in_h: (oh - 1) * stride + f,
            in_w: (ow - 1) * stride + f,
            out_h: oh,
            out_w: ow,
        }
    }

    #[test]
    fn squeeze_layer_cycle_count_matches_hand_calculation() {
        // fire2/squeeze1x1: C=96, K=16, 55x55 output, N=32, RF=16, 40%.
        let w = dense(96, 16, 1, 1, 55, 55);
        let p = simulate_os(&w, &cfg(), raw(SparsityModel::paper_default()));
        // 4 tiles: (32,32),(32,23),(23,32),(23,23); one filter pass each.
        // load per tile = 96 * th (cols fit the preload row).
        let expected_load = 96 * (32 + 32 + 23 + 23) as u64;
        assert_eq!(p.phases.load, expected_load);
        // compute per tile = ceil(96 * 16 * 0.6) = 922; full plane covered.
        assert_eq!(p.phases.compute, 4 * 922);
        // drains: ceil(th*tw*16/32) summed.
        let expected_drain = [(32, 32), (32, 23), (23, 32), (23, 23)]
            .iter()
            .map(|&(a, b)| ((a * b * 16) as u64).div_ceil(32))
            .sum::<u64>();
        assert_eq!(p.phases.drain, expected_drain);
    }

    #[test]
    fn sparsity_reduces_compute_but_not_load() {
        let w = dense(64, 64, 3, 1, 28, 28);
        let sparse = simulate_os(&w, &cfg(), raw(SparsityModel::paper_default()));
        let dense_run = simulate_os(&w, &cfg(), raw(SparsityModel::dense()));
        assert!(sparse.phases.compute < dense_run.phases.compute);
        assert_eq!(sparse.phases.load, dense_run.phases.load);
        assert_eq!(sparse.phases.drain, dense_run.phases.drain);
        // 40% of MACs skipped.
        let ratio = sparse.executed_macs as f64 / dense_run.executed_macs as f64;
        assert!((ratio - 0.6).abs() < 0.01, "ratio = {ratio}");
        assert_eq!(dense_run.executed_macs, w.macs());
    }

    #[test]
    fn deeper_rf_halves_input_loads() {
        let w = dense(64, 64, 3, 1, 28, 28);
        let rf8 = AcceleratorConfig::builder().rf_depth(8).build().unwrap();
        let rf16 = AcceleratorConfig::builder().rf_depth(16).build().unwrap();
        let p8 = simulate_os(&w, &rf8, raw(SparsityModel::paper_default()));
        let p16 = simulate_os(&w, &rf16, raw(SparsityModel::paper_default()));
        assert_eq!(p8.phases.load, 2 * p16.phases.load);
        assert_eq!(p8.phases.compute, p16.phases.compute);
        assert!(p8.cycles() > p16.cycles());
    }

    #[test]
    fn first_conv_utilizes_well() {
        // SqueezeNet conv1 on OS: large output plane, 3 channels.
        let w = ConvWork {
            kind: WorkKind::Dense,
            groups: 1,
            in_channels: 3,
            out_channels: 96,
            kernel_h: 7,
            kernel_w: 7,
            stride: 2,
            in_h: 227,
            in_w: 227,
            out_h: 111,
            out_w: 111,
        };
        let p = simulate_os(&w, &cfg(), OsModelOptions::paper_default());
        let util = p.utilization(1024);
        assert!(util > 0.3, "conv1 OS utilization should be decent, got {util}");
    }

    #[test]
    fn late_small_maps_underfill_the_array() {
        // 13x13 plane on a 32x32 array: at most 169/1024 PEs active.
        let w = dense(64, 256, 3, 1, 13, 13);
        let p = simulate_os(&w, &cfg(), raw(SparsityModel::paper_default()));
        assert!(p.utilization(1024) < 0.17);
    }

    #[test]
    fn depthwise_single_pass() {
        let w = ConvWork {
            kind: WorkKind::Depthwise,
            groups: 1,
            in_channels: 512,
            out_channels: 512,
            kernel_h: 3,
            kernel_w: 3,
            stride: 1,
            in_h: 9,
            in_w: 9,
            out_h: 7,
            out_w: 7,
        };
        let p = simulate_os(&w, &cfg(), raw(SparsityModel::paper_default()));
        // One tile, per channel: 9-row load + ceil(9*0.6) compute.
        assert_eq!(p.phases.load, 512 * 9);
        assert_eq!(p.phases.compute, (512.0 * 9.0 * 0.6_f64).ceil() as u64);
        assert_eq!(p.phases.drain, (49u64 * 512).div_ceil(32));
    }

    #[test]
    fn fc_is_weight_supply_bound() {
        let w = ConvWork {
            kind: WorkKind::FullyConnected,
            groups: 1,
            in_channels: 4096,
            out_channels: 4096,
            kernel_h: 1,
            kernel_w: 1,
            stride: 1,
            in_h: 1,
            in_w: 1,
            out_h: 1,
            out_w: 1,
        };
        let p = simulate_os(&w, &cfg(), OsModelOptions::paper_default());
        // 4 chunks of 1024 outputs; each needs 4096*1024/32 cycles.
        assert_eq!(p.phases.compute, 4 * (4096 * 1024 / 32));
        assert_eq!(p.executed_macs, 4096 * 4096);
    }

    #[test]
    fn stride_widens_the_loaded_tile() {
        let s1 = simulate_os(&dense(3, 16, 7, 1, 32, 32), &cfg(), raw(SparsityModel::dense()));
        let s2 = simulate_os(&dense(3, 16, 7, 2, 32, 32), &cfg(), raw(SparsityModel::dense()));
        assert!(s2.phases.load > s1.phases.load);
        assert_eq!(s2.phases.compute, s1.phases.compute);
    }

    #[test]
    fn preload_overlap_hides_loads_behind_compute() {
        // 3x3 with RF-16 filters: compute per channel (86.4) exceeds the
        // 34-cycle load, so overlapped loads almost vanish.
        let w = dense(64, 16, 3, 1, 32, 32);
        let overlapped = simulate_os(&w, &cfg(), OsModelOptions::paper_default());
        let serial = simulate_os(&w, &cfg(), raw(SparsityModel::paper_default()));
        assert!(overlapped.phases.load < serial.phases.load / 10);
        assert_eq!(overlapped.phases.compute, serial.phases.compute);
    }

    #[test]
    fn channel_packing_amortizes_loads_on_small_maps() {
        // 13x13 output on a 32x32 array: 6 channel groups fit.
        let w = dense(512, 1000, 1, 1, 13, 13);
        let packed = simulate_os(
            &w,
            &cfg(),
            OsModelOptions {
                channel_packing: true,
                preload_overlap: false,
                ..OsModelOptions::paper_default()
            },
        );
        let unpacked = simulate_os(&w, &cfg(), raw(SparsityModel::paper_default()));
        assert!(packed.phases.load * 4 < unpacked.phases.load);
        assert_eq!(packed.executed_macs, unpacked.executed_macs);
        assert!(packed.utilization(1024) > unpacked.utilization(1024));
    }

    #[test]
    fn access_counts_are_consistent() {
        let w = dense(32, 32, 3, 1, 14, 14);
        let p = simulate_os(&w, &cfg(), OsModelOptions::paper_default());
        assert_eq!(p.accesses.macs, p.executed_macs);
        assert_eq!(p.accesses.register_file, 3 * p.executed_macs);
        assert!(p.accesses.global_buffer > 0);
    }
}
