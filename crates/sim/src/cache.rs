//! Memoization of per-layer simulation results.
//!
//! The co-design loop re-simulates the same layer shapes over and over:
//! SqueezeNet/SqueezeNext fire modules repeat identical [`ConvWork`]
//! shapes dozens of times within one network, the hybrid scheduler
//! simulates every layer under both dataflows, and the design-space
//! sweep replays the whole model zoo across 27 configurations.
//! [`SimCache`] memoizes the two expensive, input-independent parts of a
//! layer simulation *separately*, each keyed by exactly the inputs that
//! influence it:
//!
//! * **compute** — the [`ComputePerf`] from the WS/OS cycle model, keyed
//!   by `(ConvWork, Dataflow, array size, RF depth, OS options)`. The WS
//!   model ignores both the RF depth and the OS datapath options, so WS
//!   keys canonicalize them away and one WS entry serves every RF depth.
//! * **traffic** — the total DRAM bytes from the tiling search (or the
//!   closed form), keyed by `(ConvWork, traffic model, element width,
//!   working-buffer bytes, compression)`. Traffic is independent of the
//!   dataflow, the array size, and the RF depth, so one search serves
//!   both dataflows and every configuration sharing a buffer size —
//!   in the paper-default sweep that collapses 54 `(config, dataflow)`
//!   pairs per layer shape into 3 tiling searches.
//!
//! Each sub-cache is way-partitioned into [`SHARD_COUNT`] shards by key
//! hash with a lock per shard, so parallel sweep workers rarely touch
//! the same lock; cross-thread hit/miss/contention counters are cheap
//! atomics. The cache is purely an accelerator: cached and uncached
//! runs produce bit-identical results, because the memoized functions
//! are deterministic in their keys.

use std::collections::HashMap;
use std::hash::{BuildHasher, Hash};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError, TryLockError};

use codesign_arch::{AcceleratorConfig, Dataflow};

use crate::engine::{SimOptions, TrafficModel};
use crate::perf::ComputePerf;
use crate::workload::ConvWork;

/// Number of lock-partitioned shards per sub-cache (a power of two so
/// shard selection is a mask). 16 shards keep the worst-case lock
/// collision probability low for the core counts the sweep fans out to,
/// at a memory cost of one empty `HashMap` per shard.
const SHARD_COUNT: usize = 16;

/// An `f64` treated as its bit pattern so it can participate in a hash
/// key (the simulator never produces NaN configuration fields, and bitwise
/// equality is exactly the determinism contract the cache needs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub(crate) struct Bits(pub(crate) u64);

impl From<f64> for Bits {
    fn from(v: f64) -> Self {
        Self(v.to_bits())
    }
}

/// The OS-datapath option fields that influence the OS cycle model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub(crate) struct OsOptsKey {
    pub(crate) zero_fraction: Bits,
    pub(crate) exploit_sparsity: bool,
    pub(crate) preload_overlap: bool,
    pub(crate) channel_packing: bool,
}

impl OsOptsKey {
    fn of(opts: &SimOptions) -> Self {
        Self {
            zero_fraction: opts.os.sparsity.zero_fraction.into(),
            exploit_sparsity: opts.os.sparsity.exploit,
            preload_overlap: opts.os.preload_overlap,
            channel_packing: opts.os.channel_packing,
        }
    }
}

/// Cache key for the PE-array cycle model: exactly the inputs
/// [`crate::ws::simulate_ws`] / [`crate::os::simulate_os`] read.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct ComputeKey {
    pub(crate) work: ConvWork,
    pub(crate) dataflow: Dataflow,
    pub(crate) array_size: usize,
    pub(crate) rf_depth: usize,
    pub(crate) os: OsOptsKey,
}

impl ComputeKey {
    pub(crate) fn new(
        work: &ConvWork,
        cfg: &AcceleratorConfig,
        opts: &SimOptions,
        dataflow: Dataflow,
    ) -> Self {
        // The WS model reads only the array size: canonicalizing the RF
        // depth and OS options away lets one WS entry serve every RF
        // depth in a sweep and every OS-option variation in the bench.
        let (rf_depth, os) = match dataflow {
            Dataflow::WeightStationary => (0, OsOptsKey::default()),
            Dataflow::OutputStationary => (cfg.rf_depth(), OsOptsKey::of(opts)),
        };
        Self { work: *work, dataflow, array_size: cfg.array_size(), rf_depth, os }
    }
}

/// Cache key for per-layer DRAM traffic: exactly the inputs the tiling
/// search (or the closed form) and the optional weight compression read.
/// Deliberately *not* keyed by dataflow, array size, or RF depth — the
/// traffic derivation reads none of them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct TrafficKey {
    pub(crate) work: ConvWork,
    pub(crate) model: TrafficModel,
    pub(crate) bytes_per_element: usize,
    pub(crate) working_buffer_bytes: usize,
    /// `(data_bits, index_bits, zero_fraction)` — the zero fraction only
    /// affects traffic through compression, so it is folded in here and
    /// uncompressed runs share entries across sparsity settings.
    pub(crate) compression: Option<(u32, u32, Bits)>,
}

impl TrafficKey {
    pub(crate) fn new(work: &ConvWork, cfg: &AcceleratorConfig, opts: &SimOptions) -> Self {
        Self {
            work: *work,
            model: opts.traffic,
            bytes_per_element: cfg.bytes_per_element(),
            working_buffer_bytes: cfg.working_buffer_bytes(),
            compression: opts
                .weight_compression
                .map(|c| (c.data_bits, c.index_bits, opts.os.sparsity.zero_fraction.into())),
        }
    }
}

/// One cache consultation: the value, whether it was answered from the
/// cache, and how many shard-lock acquisitions had to block behind
/// another thread.
pub(crate) struct Lookup<V> {
    pub(crate) value: V,
    pub(crate) hit: bool,
    pub(crate) contended: u64,
}

/// Cache observability counters, aggregated across both sub-caches and
/// all shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to simulate.
    pub misses: u64,
    /// Resident entries (compute + traffic).
    pub entries: usize,
    /// Shard-lock acquisitions that found the lock held by another
    /// thread and had to block.
    pub contended: u64,
}

impl CacheStats {
    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of lookups answered from the cache (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups() as f64
        }
    }
}

impl std::fmt::Display for CacheStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} hits / {} lookups ({:.1}% hit rate, {} entries, {} contended)",
            self.hits,
            self.lookups(),
            100.0 * self.hit_rate(),
            self.entries,
            self.contended
        )
    }
}

/// Locks a shard, recovered from poisoning (the maps only ever hold
/// fully-written `Copy` values, so a panic in another thread between map
/// operations cannot leave them torn), reporting whether the lock was
/// contended: a failed `try_lock` bumps the contention count before
/// falling back to a blocking acquisition.
fn lock_counting<T>(mutex: &Mutex<T>) -> (MutexGuard<'_, T>, u64) {
    match mutex.try_lock() {
        Ok(guard) => (guard, 0),
        Err(TryLockError::Poisoned(poisoned)) => (poisoned.into_inner(), 0),
        Err(TryLockError::WouldBlock) => (mutex.lock().unwrap_or_else(PoisonError::into_inner), 1),
    }
}

/// A way-partitioned concurrent memo map: `SHARD_COUNT` independent
/// `Mutex<HashMap>` shards selected by key hash.
#[derive(Debug)]
struct ShardedMap<K, V> {
    hasher: std::collections::hash_map::RandomState,
    shards: Vec<Mutex<HashMap<K, V>>>,
}

impl<K: Eq + Hash + Copy, V: Copy> Default for ShardedMap<K, V> {
    fn default() -> Self {
        Self {
            hasher: std::collections::hash_map::RandomState::new(),
            shards: (0..SHARD_COUNT).map(|_| Mutex::new(HashMap::new())).collect(),
        }
    }
}

impl<K: Eq + Hash + Copy, V: Copy> ShardedMap<K, V> {
    fn shard(&self, key: &K) -> &Mutex<HashMap<K, V>> {
        let h = self.hasher.hash_one(key) as usize;
        // SHARD_COUNT is a power of two and the vec holds exactly that
        // many shards, so the mask stays in bounds.
        &self.shards[h & (SHARD_COUNT - 1)]
    }

    /// Returns the cached value for `key` (hit) or computes, inserts, and
    /// returns it (miss). Errors are returned to the caller and never
    /// cached. The shard lock is *not* held while computing, so parallel
    /// workers never serialize on a miss; two threads racing on the same
    /// key both compute it (deterministically identical values) and one
    /// insert wins.
    fn get_or_compute<E>(
        &self,
        key: K,
        compute: impl FnOnce() -> Result<V, E>,
    ) -> Result<Lookup<V>, E> {
        let shard = self.shard(&key);
        let mut contended = 0;
        let cached = {
            let (map, c) = lock_counting(shard);
            contended += c;
            map.get(&key).copied()
        };
        if let Some(value) = cached {
            return Ok(Lookup { value, hit: true, contended });
        }
        let value = compute()?;
        let (mut map, c) = lock_counting(shard);
        contended += c;
        map.insert(key, value);
        Ok(Lookup { value, hit: false, contended })
    }

    fn len(&self) -> usize {
        self.shards.iter().map(|s| lock_counting(s).0.len()).sum()
    }

    /// Copies out every resident entry, in unspecified order (one shard
    /// at a time, so concurrent writers are never blocked for long).
    fn entries(&self) -> Vec<(K, V)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            out.extend(lock_counting(shard).0.iter().map(|(k, v)| (*k, *v)));
        }
        out
    }

    /// Inserts an entry directly — the snapshot preload path, which must
    /// not perturb the hit/miss accounting a lookup would.
    fn insert(&self, key: K, value: V) {
        lock_counting(self.shard(&key)).0.insert(key, value);
    }

    fn clear(&self) {
        for shard in &self.shards {
            lock_counting(shard).0.clear();
        }
    }
}

/// Thread-safe, sharded memo table for per-layer simulation results.
///
/// Holds two independent sub-caches — the PE-array cycle model keyed by
/// [`ComputeKey`] and the DRAM traffic derivation keyed by
/// [`TrafficKey`] — so each result is shared across every configuration
/// that cannot change it (see the module docs for the exact keying).
#[derive(Debug, Default)]
pub struct SimCache {
    compute: ShardedMap<ComputeKey, ComputePerf>,
    traffic: ShardedMap<TrafficKey, u64>,
    hits: AtomicU64,
    misses: AtomicU64,
    contended: AtomicU64,
}

impl SimCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    fn account<V>(&self, lookup: &Lookup<V>) {
        let counter = if lookup.hit { &self.hits } else { &self.misses };
        counter.fetch_add(1, Ordering::Relaxed);
        if lookup.contended > 0 {
            self.contended.fetch_add(lookup.contended, Ordering::Relaxed);
        }
    }

    /// Memoized PE-array cycle model: returns the cached
    /// [`ComputePerf`] for `key` or computes and inserts it.
    ///
    /// # Errors
    ///
    /// Whatever `compute` returns; errors are never cached (failure
    /// diagnostics are cheap to recompute and carry per-call layer
    /// attribution).
    pub(crate) fn compute_or<E>(
        &self,
        key: ComputeKey,
        compute: impl FnOnce() -> Result<ComputePerf, E>,
    ) -> Result<Lookup<ComputePerf>, E> {
        let lookup = self.compute.get_or_compute(key, compute)?;
        self.account(&lookup);
        Ok(lookup)
    }

    /// Memoized DRAM traffic derivation: returns the cached total byte
    /// count for `key` or computes and inserts it.
    ///
    /// # Errors
    ///
    /// Whatever `compute` returns; errors are never cached.
    pub(crate) fn traffic_or<E>(
        &self,
        key: TrafficKey,
        compute: impl FnOnce() -> Result<u64, E>,
    ) -> Result<Lookup<u64>, E> {
        let lookup = self.traffic.get_or_compute(key, compute)?;
        self.account(&lookup);
        Ok(lookup)
    }

    /// Counters and occupancy.
    ///
    /// The hit/miss counters are the one piece of cache state that is
    /// *not* schedule-independent: a key one run answers from cache may
    /// race and recompute in another (see
    /// [`ShardedMap::get_or_compute`]'s miss policy), and the contention
    /// counter depends entirely on thread timing.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.compute.len() + self.traffic.len(),
            contended: self.contended.load(Ordering::Relaxed),
        }
    }

    /// Copies out every resident compute entry (snapshot export).
    pub(crate) fn export_compute(&self) -> Vec<(ComputeKey, ComputePerf)> {
        self.compute.entries()
    }

    /// Copies out every resident traffic entry (snapshot export).
    pub(crate) fn export_traffic(&self) -> Vec<(TrafficKey, u64)> {
        self.traffic.entries()
    }

    /// Inserts a compute entry without touching the hit/miss counters
    /// (snapshot preload).
    pub(crate) fn preload_compute(&self, key: ComputeKey, value: ComputePerf) {
        self.compute.insert(key, value);
    }

    /// Inserts a traffic entry without touching the hit/miss counters
    /// (snapshot preload).
    pub(crate) fn preload_traffic(&self, key: TrafficKey, value: u64) {
        self.traffic.insert(key, value);
    }

    /// Drops all entries and resets the counters.
    pub fn clear(&self) {
        self.compute.clear();
        self.traffic.clear();
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.contended.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use codesign_arch::DataflowPolicy;
    use codesign_dnn::{zoo, NetworkBuilder, Shape};

    use crate::engine::Simulator;

    fn work() -> ConvWork {
        ConvWork {
            kind: crate::workload::WorkKind::Dense,
            groups: 1,
            in_channels: 8,
            out_channels: 16,
            kernel_h: 3,
            kernel_w: 3,
            stride: 1,
            in_h: 18,
            in_w: 18,
            out_h: 16,
            out_w: 16,
        }
    }

    fn compute_key(rf: usize) -> ComputeKey {
        let cfg = AcceleratorConfig::builder().rf_depth(rf).build().unwrap();
        ComputeKey::new(&work(), &cfg, &SimOptions::paper_default(), Dataflow::OutputStationary)
    }

    fn traffic_key(buffer: usize) -> TrafficKey {
        let cfg = AcceleratorConfig::builder().global_buffer_bytes(buffer).build().unwrap();
        TrafficKey::new(&work(), &cfg, &SimOptions::paper_default())
    }

    type Infallible<T> = Result<T, std::convert::Infallible>;

    #[test]
    fn hit_after_miss() {
        let cache = SimCache::new();
        let fresh = ComputePerf::default();
        let first = cache.compute_or(compute_key(8), || Infallible::Ok(fresh)).unwrap();
        assert!(!first.hit);
        let second = cache
            .compute_or(compute_key(8), || -> Infallible<ComputePerf> {
                panic!("must not recompute")
            })
            .unwrap();
        assert!(second.hit);
        assert_eq!(first.value, second.value);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn distinct_configs_do_not_collide() {
        let cache = SimCache::new();
        cache.compute_or(compute_key(8), || Infallible::Ok(ComputePerf::default())).unwrap();
        let other =
            cache.compute_or(compute_key(16), || Infallible::Ok(ComputePerf::default())).unwrap();
        assert!(!other.hit, "a different RF depth is a different OS compute key");
        cache.traffic_or(traffic_key(64 * 1024), || Infallible::Ok(1)).unwrap();
        let t = cache.traffic_or(traffic_key(128 * 1024), || Infallible::Ok(2)).unwrap();
        assert_eq!(t.value, 2);
        assert!(!t.hit, "a different buffer size is a different traffic key");
        assert_eq!(cache.stats().entries, 4);
    }

    #[test]
    fn ws_compute_key_ignores_rf_depth() {
        // The WS cycle model reads only the array size, so one WS entry
        // must serve every RF depth in a sweep.
        let opts = SimOptions::paper_default();
        let rf8 = AcceleratorConfig::builder().rf_depth(8).build().unwrap();
        let rf16 = AcceleratorConfig::builder().rf_depth(16).build().unwrap();
        let ws8 = ComputeKey::new(&work(), &rf8, &opts, Dataflow::WeightStationary);
        let ws16 = ComputeKey::new(&work(), &rf16, &opts, Dataflow::WeightStationary);
        assert_eq!(ws8, ws16);
        let os8 = ComputeKey::new(&work(), &rf8, &opts, Dataflow::OutputStationary);
        let os16 = ComputeKey::new(&work(), &rf16, &opts, Dataflow::OutputStationary);
        assert_ne!(os8, os16, "the OS model does read the RF depth");
    }

    #[test]
    fn traffic_key_is_dataflow_and_array_independent() {
        let opts = SimOptions::paper_default();
        let small = AcceleratorConfig::builder().array_size(8).rf_depth(8).build().unwrap();
        let large = AcceleratorConfig::builder().array_size(32).rf_depth(32).build().unwrap();
        assert_eq!(
            TrafficKey::new(&work(), &small, &opts),
            TrafficKey::new(&work(), &large, &opts),
            "same buffer ⇒ same tiling search, whatever the array/RF"
        );
    }

    #[test]
    fn errors_are_not_cached() {
        let cache = SimCache::new();
        let err = cache.compute_or(compute_key(8), || Err("boom")).map(|l| l.value);
        assert_eq!(err, Err("boom"));
        assert_eq!(cache.stats().entries, 0, "failed computations leave no entry");
        // The key still computes (and caches) fine afterwards.
        let l = cache.compute_or(compute_key(8), || Ok::<_, &str>(ComputePerf::default())).unwrap();
        assert!(!l.hit);
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn clear_resets_everything() {
        let cache = SimCache::new();
        cache.compute_or(compute_key(8), || Infallible::Ok(ComputePerf::default())).unwrap();
        cache.traffic_or(traffic_key(64 * 1024), || Infallible::Ok(1)).unwrap();
        cache.clear();
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries, s.contended), (0, 0, 0, 0));
        assert_eq!(s.hit_rate(), 0.0);
    }

    #[test]
    fn shards_hold_disjoint_key_sets() {
        // Many distinct keys must all remain retrievable — shard routing
        // is stable per key and no shard swallows another's entries.
        let cache = SimCache::new();
        for buffer_kb in 64..128 {
            cache
                .traffic_or(traffic_key(buffer_kb * 1024), || Infallible::Ok(buffer_kb as u64))
                .unwrap();
        }
        for buffer_kb in 64..128 {
            let l = cache
                .traffic_or(traffic_key(buffer_kb * 1024), || -> Infallible<u64> {
                    panic!("must hit")
                })
                .unwrap();
            assert!(l.hit);
            assert_eq!(l.value, buffer_kb as u64);
        }
        let s = cache.stats();
        assert_eq!(s.entries, 64);
        assert_eq!((s.hits, s.misses), (64, 64));
    }

    #[test]
    fn repeated_layer_shapes_share_cache_entries() {
        // Two identically-shaped conv layers: network-level dedup answers
        // layer b without consulting the shared cache at all, and layer
        // a's OS traffic lookup hits the entry its WS lookup created
        // (traffic is dataflow-independent).
        let net = NetworkBuilder::new("twins", Shape::new(16, 16, 16))
            .conv("a", 16, 3, 1, 1)
            .conv("b", 16, 3, 1, 1)
            .finish()
            .unwrap();
        let sim = Simulator::new();
        let cfg = AcceleratorConfig::paper_default();
        sim.simulate_network(&net, &cfg, DataflowPolicy::PerLayer, SimOptions::paper_default());
        let s = sim.stats();
        assert_eq!(s.hits, 1, "the OS traffic lookup hits the WS-created entry: {s}");
        assert_eq!(s.misses, 3, "WS compute, OS compute, one tiling search: {s}");
        assert_eq!(s.entries, 3, "{s}");
    }

    #[test]
    fn fire_modules_give_high_hit_rates() {
        // The paper's own workloads: the fixed WS and OS reference runs
        // replay layer shapes the hybrid run already simulated, so they
        // answer everything from the cache.
        let sim = Simulator::new();
        let cfg = AcceleratorConfig::paper_default();
        let opts = SimOptions::paper_default();
        let net = zoo::squeezenet_v1_1();
        sim.simulate_network(&net, &cfg, DataflowPolicy::PerLayer, opts);
        sim.simulate_network(&net, &cfg, DataflowPolicy::Fixed(Dataflow::WeightStationary), opts);
        sim.simulate_network(&net, &cfg, DataflowPolicy::Fixed(Dataflow::OutputStationary), opts);
        let s = sim.stats();
        assert!(s.hit_rate() > 0.5, "expected > 50% hit rate, got {s}");
    }

    #[test]
    fn simulator_clear_cache_resets_accounting_and_recomputes() {
        let sim = Simulator::new();
        let cfg = AcceleratorConfig::paper_default();
        let opts = SimOptions::paper_default();
        let net = zoo::squeezenet_v1_1();
        let cold = sim.simulate_network(&net, &cfg, DataflowPolicy::PerLayer, opts);
        let cold_stats = sim.stats();
        assert!(cold_stats.misses > 0 && cold_stats.entries > 0);

        sim.clear_cache();
        assert_eq!(sim.stats(), CacheStats::default(), "clear resets counters and entries");

        // A post-clear run must rebuild exactly the cold-run picture:
        // same misses, same entries, bit-identical results.
        let rebuilt = sim.simulate_network(&net, &cfg, DataflowPolicy::PerLayer, opts);
        assert_eq!(rebuilt, cold);
        let s = sim.stats();
        assert_eq!(s.misses, cold_stats.misses, "{s}");
        assert_eq!(s.entries, cold_stats.entries, "{s}");
        assert_eq!(s.hits, cold_stats.hits, "{s}");
    }

    #[test]
    fn cross_thread_accounting_is_conserved() {
        let cfg = AcceleratorConfig::paper_default();
        let opts = SimOptions::paper_default();
        let net = zoo::squeezenet_v1_1();

        // Reference: one serial run tells us lookups-per-run and the final
        // entry count for this workload.
        let serial = Simulator::new();
        let baseline = serial.simulate_network(&net, &cfg, DataflowPolicy::PerLayer, opts);
        let per_run = serial.stats().lookups();
        let entries = serial.stats().entries;

        // Four threads share one cache through cloned handles. Which
        // thread hits vs misses is a race, but the conservation laws are
        // not: every lookup is counted exactly once, every entry was
        // missed at least once, and results stay bit-identical.
        let sim = Simulator::new();
        let threads = 4u64;
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let worker = sim.clone();
                let (net, cfg, baseline) = (&net, &cfg, &baseline);
                scope.spawn(move || {
                    let perf = worker.simulate_network(net, cfg, DataflowPolicy::PerLayer, opts);
                    assert_eq!(&perf, baseline);
                });
            }
        });
        let s = sim.stats();
        assert_eq!(s.lookups(), threads * per_run, "no lookup lost or double-counted: {s}");
        assert_eq!(s.entries, entries, "same key set regardless of schedule: {s}");
        assert!(s.misses >= entries as u64, "every entry was missed at least once: {s}");
        assert!(s.hits >= per_run, "later runs mostly hit: {s}");
        assert!(s.hit_rate() > 0.0 && s.hit_rate() < 1.0, "{s}");
    }

    #[test]
    fn cached_equals_uncached() {
        let cfg = AcceleratorConfig::paper_default();
        let opts = SimOptions::paper_default();
        let net = zoo::squeezenet_v1_1();
        let cached = Simulator::new();
        let uncached = Simulator::uncached();
        let a = cached.simulate_network(&net, &cfg, DataflowPolicy::PerLayer, opts);
        let b = uncached.simulate_network(&net, &cfg, DataflowPolicy::PerLayer, opts);
        // Run the cached simulator twice so the second pass is all hits.
        let c = cached.simulate_network(&net, &cfg, DataflowPolicy::PerLayer, opts);
        assert_eq!(a, b);
        assert_eq!(a, c);
        assert_eq!(uncached.stats(), CacheStats::default());
    }
}
