//! Memoization of per-layer simulation results.
//!
//! The co-design loop re-simulates the same layer shapes over and over:
//! SqueezeNet/SqueezeNext fire modules repeat identical [`ConvWork`]
//! shapes dozens of times within one network, the hybrid scheduler
//! simulates every layer under both dataflows, and the fixed WS/OS
//! reference runs repeat exactly the work the hybrid run already did.
//! [`SimCache`] memoizes the expensive, input-independent part of a
//! layer simulation — the [`ComputePerf`] and the DRAM traffic byte
//! count — keyed by `(ConvWork, AcceleratorConfig, Dataflow, SimOptions)`.
//!
//! The cache is thread-safe (shared by the parallel sweep workers in
//! `codesign-core::dse`) and purely an accelerator: cached and uncached
//! runs produce bit-identical results, because the memoized functions
//! are deterministic in the key.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

use codesign_arch::{AcceleratorConfig, Dataflow};

use crate::engine::{SimOptions, TrafficModel};
use crate::perf::ComputePerf;
use crate::workload::ConvWork;

/// An `f64` treated as its bit pattern so it can participate in a hash
/// key (the simulator never produces NaN configuration fields, and bitwise
/// equality is exactly the determinism contract the cache needs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Bits(u64);

impl From<f64> for Bits {
    fn from(v: f64) -> Self {
        Self(v.to_bits())
    }
}

/// The configuration fields that influence per-layer simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct ConfigKey {
    array_size: usize,
    rf_depth: usize,
    global_buffer_bytes: usize,
    bytes_per_element: usize,
    clock_mhz: Bits,
    dram_latency: u64,
    dram_bytes_per_cycle: Bits,
    double_buffering: bool,
}

impl ConfigKey {
    fn of(cfg: &AcceleratorConfig) -> Self {
        Self {
            array_size: cfg.array_size(),
            rf_depth: cfg.rf_depth(),
            global_buffer_bytes: cfg.global_buffer_bytes(),
            bytes_per_element: cfg.bytes_per_element(),
            clock_mhz: cfg.clock_mhz().into(),
            dram_latency: cfg.dram().latency_cycles,
            dram_bytes_per_cycle: cfg.dram().bytes_per_cycle.into(),
            double_buffering: cfg.double_buffering(),
        }
    }
}

/// The simulation-option fields that influence per-layer simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct OptsKey {
    zero_fraction: Bits,
    exploit_sparsity: bool,
    preload_overlap: bool,
    channel_packing: bool,
    traffic: TrafficModel,
    compression: Option<(u32, u32)>,
}

impl OptsKey {
    fn of(opts: &SimOptions) -> Self {
        Self {
            zero_fraction: opts.os.sparsity.zero_fraction.into(),
            exploit_sparsity: opts.os.sparsity.exploit,
            preload_overlap: opts.os.preload_overlap,
            channel_packing: opts.os.channel_packing,
            traffic: opts.traffic,
            compression: opts.weight_compression.map(|c| (c.data_bits, c.index_bits)),
        }
    }
}

/// Full cache key for one conv-shaped layer simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct LayerKey {
    work: ConvWork,
    dataflow: Dataflow,
    cfg: ConfigKey,
    opts: OptsKey,
}

impl LayerKey {
    pub(crate) fn new(
        work: &ConvWork,
        cfg: &AcceleratorConfig,
        opts: &SimOptions,
        dataflow: Dataflow,
    ) -> Self {
        Self { work: *work, dataflow, cfg: ConfigKey::of(cfg), opts: OptsKey::of(opts) }
    }
}

/// The memoized result: PE-array work plus total DRAM traffic bytes
/// (everything in a [`crate::perf::LayerPerf`] except the layer name,
/// which is re-attached per layer).
pub(crate) type CachedLayer = (ComputePerf, u64);

/// Cache observability counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to simulate.
    pub misses: u64,
    /// Resident entries.
    pub entries: usize,
}

impl CacheStats {
    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of lookups answered from the cache (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups() as f64
        }
    }
}

impl std::fmt::Display for CacheStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} hits / {} lookups ({:.1}% hit rate, {} entries)",
            self.hits,
            self.lookups(),
            100.0 * self.hit_rate(),
            self.entries
        )
    }
}

/// Thread-safe memo table for per-layer simulation results.
#[derive(Debug, Default)]
pub struct SimCache {
    map: Mutex<HashMap<LayerKey, CachedLayer>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl SimCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The memo map, recovered from lock poisoning: the map only ever
    /// holds fully-written `Copy` values, so a panic in *another* thread
    /// (between map operations) cannot leave it torn, and continuing is
    /// sound — exactly the degradation the catch-unwind sweep workers
    /// rely on.
    fn lock_map(&self) -> MutexGuard<'_, HashMap<LayerKey, CachedLayer>> {
        self.map.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Returns the cached result for `key` plus a hit flag, computing and
    /// inserting the value with `compute` on a miss. Errors are returned
    /// to the caller and never cached (failure diagnostics are cheap to
    /// recompute and carry per-call layer attribution).
    ///
    /// The lock is *not* held while computing, so parallel workers never
    /// serialize on a miss; two threads racing on the same key both
    /// compute it (deterministically identical values) and one insert
    /// wins. The hit flag (and therefore the hit/miss counters) is the one
    /// piece of cache state that is *not* schedule-independent: a key one
    /// run answers from cache may race and recompute in another.
    pub(crate) fn get_or_compute<E>(
        &self,
        key: LayerKey,
        compute: impl FnOnce() -> Result<CachedLayer, E>,
    ) -> Result<(CachedLayer, bool), E> {
        if let Some(hit) = self.lock_map().get(&key).copied() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok((hit, true));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let value = compute()?;
        self.lock_map().insert(key, value);
        Ok((value, false))
    }

    /// Counters and occupancy.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.lock_map().len(),
        }
    }

    /// Drops all entries and resets the counters.
    pub fn clear(&self) {
        self.lock_map().clear();
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use codesign_arch::DataflowPolicy;
    use codesign_dnn::{zoo, NetworkBuilder, Shape};

    use crate::engine::Simulator;

    fn key(rf: usize) -> LayerKey {
        let cfg = AcceleratorConfig::builder().rf_depth(rf).build().unwrap();
        let work = ConvWork {
            kind: crate::workload::WorkKind::Dense,
            groups: 1,
            in_channels: 8,
            out_channels: 16,
            kernel_h: 3,
            kernel_w: 3,
            stride: 1,
            in_h: 18,
            in_w: 18,
            out_h: 16,
            out_w: 16,
        };
        LayerKey::new(&work, &cfg, &SimOptions::paper_default(), Dataflow::WeightStationary)
    }

    type Infallible = Result<CachedLayer, std::convert::Infallible>;

    #[test]
    fn hit_after_miss() {
        let cache = SimCache::new();
        let fresh = (ComputePerf::default(), 42u64);
        let (first, was_hit) = cache.get_or_compute(key(8), || Infallible::Ok(fresh)).unwrap();
        assert!(!was_hit);
        let (second, was_hit) = cache
            .get_or_compute(key(8), || -> Infallible { panic!("must not recompute") })
            .unwrap();
        assert!(was_hit);
        assert_eq!(first, second);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn distinct_configs_do_not_collide() {
        let cache = SimCache::new();
        cache.get_or_compute(key(8), || Infallible::Ok((ComputePerf::default(), 1))).unwrap();
        let ((_, d), was_hit) =
            cache.get_or_compute(key(16), || Infallible::Ok((ComputePerf::default(), 2))).unwrap();
        assert_eq!(d, 2);
        assert!(!was_hit);
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn errors_are_not_cached() {
        let cache = SimCache::new();
        let err = cache.get_or_compute(key(8), || Err("boom"));
        assert_eq!(err, Err("boom"));
        assert_eq!(cache.stats().entries, 0, "failed computations leave no entry");
        // The key still computes (and caches) fine afterwards.
        let (_, was_hit) =
            cache.get_or_compute(key(8), || Ok::<_, &str>((ComputePerf::default(), 7))).unwrap();
        assert!(!was_hit);
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn clear_resets_everything() {
        let cache = SimCache::new();
        cache.get_or_compute(key(8), || Infallible::Ok((ComputePerf::default(), 1))).unwrap();
        cache.clear();
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (0, 0, 0));
        assert_eq!(s.hit_rate(), 0.0);
    }

    #[test]
    fn repeated_layer_shapes_hit() {
        // Two identically-shaped conv layers: the second layer's WS and OS
        // simulations must both be answered from the cache.
        let net = NetworkBuilder::new("twins", Shape::new(16, 16, 16))
            .conv("a", 16, 3, 1, 1)
            .conv("b", 16, 3, 1, 1)
            .finish()
            .unwrap();
        let sim = Simulator::new();
        let cfg = AcceleratorConfig::paper_default();
        sim.simulate_network(&net, &cfg, DataflowPolicy::PerLayer, SimOptions::paper_default());
        let s = sim.stats();
        assert_eq!(s.hits, 2, "layer b should hit for both dataflows: {s}");
        assert_eq!(s.misses, 2, "layer a misses once per dataflow: {s}");
    }

    #[test]
    fn fire_modules_give_high_hit_rates() {
        // The paper's own workloads: repeated fire-module shapes make the
        // intra-network hit rate substantial (> 50 % across hybrid + the
        // two fixed-reference runs, which replay the hybrid's layers).
        let sim = Simulator::new();
        let cfg = AcceleratorConfig::paper_default();
        let opts = SimOptions::paper_default();
        let net = zoo::squeezenet_v1_1();
        sim.simulate_network(&net, &cfg, DataflowPolicy::PerLayer, opts);
        sim.simulate_network(&net, &cfg, DataflowPolicy::Fixed(Dataflow::WeightStationary), opts);
        sim.simulate_network(&net, &cfg, DataflowPolicy::Fixed(Dataflow::OutputStationary), opts);
        let s = sim.stats();
        assert!(s.hit_rate() > 0.5, "expected > 50% hit rate, got {s}");
    }

    #[test]
    fn simulator_clear_cache_resets_accounting_and_recomputes() {
        let sim = Simulator::new();
        let cfg = AcceleratorConfig::paper_default();
        let opts = SimOptions::paper_default();
        let net = zoo::squeezenet_v1_1();
        let cold = sim.simulate_network(&net, &cfg, DataflowPolicy::PerLayer, opts);
        let cold_stats = sim.stats();
        assert!(cold_stats.misses > 0 && cold_stats.entries > 0);

        sim.clear_cache();
        assert_eq!(sim.stats(), CacheStats::default(), "clear resets counters and entries");

        // A post-clear run must rebuild exactly the cold-run picture:
        // same misses, same entries, bit-identical results.
        let rebuilt = sim.simulate_network(&net, &cfg, DataflowPolicy::PerLayer, opts);
        assert_eq!(rebuilt, cold);
        let s = sim.stats();
        assert_eq!(s.misses, cold_stats.misses, "{s}");
        assert_eq!(s.entries, cold_stats.entries, "{s}");
        assert_eq!(s.hits, cold_stats.hits, "{s}");
    }

    #[test]
    fn cross_thread_accounting_is_conserved() {
        let cfg = AcceleratorConfig::paper_default();
        let opts = SimOptions::paper_default();
        let net = zoo::squeezenet_v1_1();

        // Reference: one serial run tells us lookups-per-run and the final
        // entry count for this workload.
        let serial = Simulator::new();
        let baseline = serial.simulate_network(&net, &cfg, DataflowPolicy::PerLayer, opts);
        let per_run = serial.stats().lookups();
        let entries = serial.stats().entries;

        // Four threads share one cache through cloned handles. Which
        // thread hits vs misses is a race, but the conservation laws are
        // not: every lookup is counted exactly once, every entry was
        // missed at least once, and results stay bit-identical.
        let sim = Simulator::new();
        let threads = 4u64;
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let worker = sim.clone();
                let (net, cfg, baseline) = (&net, &cfg, &baseline);
                scope.spawn(move || {
                    let perf = worker.simulate_network(net, cfg, DataflowPolicy::PerLayer, opts);
                    assert_eq!(&perf, baseline);
                });
            }
        });
        let s = sim.stats();
        assert_eq!(s.lookups(), threads * per_run, "no lookup lost or double-counted: {s}");
        assert_eq!(s.entries, entries, "same key set regardless of schedule: {s}");
        assert!(s.misses >= entries as u64, "every entry was missed at least once: {s}");
        assert!(s.hits >= per_run, "later runs mostly hit: {s}");
        assert!(s.hit_rate() > 0.0 && s.hit_rate() < 1.0, "{s}");
    }

    #[test]
    fn cached_equals_uncached() {
        let cfg = AcceleratorConfig::paper_default();
        let opts = SimOptions::paper_default();
        let net = zoo::squeezenet_v1_1();
        let cached = Simulator::new();
        let uncached = Simulator::uncached();
        let a = cached.simulate_network(&net, &cfg, DataflowPolicy::PerLayer, opts);
        let b = uncached.simulate_network(&net, &cfg, DataflowPolicy::PerLayer, opts);
        // Run the cached simulator twice so the second pass is all hits.
        let c = cached.simulate_network(&net, &cfg, DataflowPolicy::PerLayer, opts);
        assert_eq!(a, b);
        assert_eq!(a, c);
        assert_eq!(uncached.stats(), CacheStats::default());
    }
}
