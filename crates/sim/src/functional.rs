//! Functional dataflow executors: run the WS and OS schedules over real
//! tensor data.
//!
//! Each executor exists as a **spec/fast twin** (the same convention the
//! cycle machines use):
//!
//! * the `*_spec` functions ([`conv2d_ws_spec`], [`conv2d_os_spec`],
//!   [`fc_ws_spec`]) follow the exact scalar loop structure of the
//!   hardware schedules — tile loops, register-file-bounded filter
//!   passes, per-column adder chains, zero-weight skipping. They are the
//!   executable specification of what the schedule computes;
//! * the fast twins ([`conv2d_ws`], [`conv2d_os`], [`fc_ws`] and their
//!   `_jobs` variants) keep the schedules' tile partitioning but compute
//!   each tile's contribution with the packed, register-blocked GEMM
//!   micro-kernel from `codesign_tensor::gemm`, parallelised over the
//!   worker pool.
//!
//! Every output element is an exact `i64` sum saturated once at the end,
//! so reordering the additions cannot change a single bit: spec twin,
//! fast twin, and the reference convolution in `codesign-tensor` are all
//! **bit-identical**, and the tests (plus the zoo-wide CI suite in
//! `tests/functional_equality.rs`) assert it. They are the proof that
//! the schedules the performance models count cycles for actually
//! compute the right convolution.

use codesign_arch::AcceleratorConfig;
use codesign_dnn::ConvSpec;
use codesign_tensor::gemm::{gemm_accumulate, is_depthwise, pack_patches, valid_range};
use codesign_tensor::ops::check_conv_args;
use codesign_tensor::{Filters, ShapeMismatchError, Tensor};

use crate::workload::split;

/// Layers below this many multiply-accumulates run serially — worker-pool
/// latency would dominate the work (same threshold as the GEMM path).
const MIN_PAR_MACS: u64 = 1 << 22;

fn effective_jobs(jobs: usize, macs: u64) -> usize {
    if macs < MIN_PAR_MACS {
        1
    } else {
        jobs
    }
}

/// Executes a convolution with the weight-stationary schedule, walking
/// the scalar loop structure literally: weight tiles of at most N×N stay
/// resident while every output pixel streams through; partial sums
/// accumulate in a global-buffer image across row tiles and taps, with
/// per-column adder chains. This is the executable specification of the
/// WS schedule; [`conv2d_ws`] computes the same bits fast.
///
/// # Errors
///
/// Returns [`ShapeMismatchError`] under the same conditions as
/// [`codesign_tensor::ops::conv2d`].
pub fn conv2d_ws_spec(
    input: &Tensor,
    filters: &Filters,
    spec: &ConvSpec,
    cfg: &AcceleratorConfig,
) -> Result<Tensor, ShapeMismatchError> {
    let out_shape = check_conv_args(input, filters, spec, "conv2d_ws")?;
    let n = cfg.array_size();
    let cg = input.shape().channels / spec.groups;
    let kg = spec.out_channels / spec.groups;

    // The global buffer's partial-sum image.
    let mut psum = vec![0i64; out_shape.elements()];
    let plane = out_shape.plane();

    for group in 0..spec.groups {
        let mut k0 = 0usize;
        for ct in split(kg, n) {
            let mut c0 = 0usize;
            for rt in split(cg, n) {
                for dy in 0..spec.kernel.height {
                    for dx in 0..spec.kernel.width {
                        // Weight tile (rt rows x ct cols) is resident;
                        // stream every output pixel through the array.
                        for oy in 0..out_shape.height {
                            for ox in 0..out_shape.width {
                                let iy = (oy * spec.stride + dy) as isize - spec.pad_h as isize;
                                let ix = (ox * spec.stride + dx) as isize - spec.pad_w as isize;
                                for kk in 0..ct {
                                    let k = group * kg + k0 + kk;
                                    // Adder chain down column kk.
                                    let mut chain = 0i64;
                                    for cc in 0..rt {
                                        let c = group * cg + c0 + cc;
                                        let v = input.at_padded(c, iy, ix) as i64;
                                        let w = filters.tap(k, c0 + cc, dy, dx) as i64;
                                        chain += v * w;
                                    }
                                    psum[k * plane + oy * out_shape.width + ox] += chain;
                                }
                            }
                        }
                    }
                }
                c0 += rt;
            }
            k0 += ct;
        }
    }

    let data = psum.into_iter().map(saturate).collect();
    Ok(Tensor::from_vec(out_shape, data))
}

/// Executes a convolution with the weight-stationary schedule — fast
/// twin of [`conv2d_ws_spec`], bit-identical to it (and to the
/// reference convolution). [`conv2d_ws_jobs`] with one worker.
///
/// # Errors
///
/// Returns [`ShapeMismatchError`] under the same conditions as
/// [`codesign_tensor::ops::conv2d`].
pub fn conv2d_ws(
    input: &Tensor,
    filters: &Filters,
    spec: &ConvSpec,
    cfg: &AcceleratorConfig,
) -> Result<Tensor, ShapeMismatchError> {
    conv2d_ws_jobs(input, filters, spec, cfg, 1)
}

/// Fast weight-stationary executor: the WS schedule partitions the
/// filter dimension into the same `split(kg, N)` weight-column tiles the
/// array loads, and each tile's entire `(row-tile, dy, dx)` reduction is
/// collapsed into packed dots by the GEMM micro-kernel (exact `i64`
/// sums, so the reordering is invisible). Tiles are distributed over
/// `jobs` workers (`0` = one per core); results are byte-identical for
/// every `jobs` value.
///
/// Depthwise convolutions delegate to the dedicated direct path in
/// `codesign_tensor::gemm` — under WS their weight tiles are 1×1 and the
/// im2col form would only duplicate pixels.
///
/// # Errors
///
/// Returns [`ShapeMismatchError`] under the same conditions as
/// [`codesign_tensor::ops::conv2d`].
pub fn conv2d_ws_jobs(
    input: &Tensor,
    filters: &Filters,
    spec: &ConvSpec,
    cfg: &AcceleratorConfig,
    jobs: usize,
) -> Result<Tensor, ShapeMismatchError> {
    let out_shape = check_conv_args(input, filters, spec, "conv2d_ws")?;
    if is_depthwise(spec, input.shape()) {
        return codesign_tensor::gemm::conv2d_gemm_jobs(input, filters, spec, jobs);
    }
    let n = cfg.array_size();
    let cg = input.shape().channels / spec.groups;
    let kg = spec.out_channels / spec.groups;
    let rows = cg * spec.kernel.height * spec.kernel.width;
    let cols = out_shape.plane();
    let jobs = effective_jobs(jobs, (spec.out_channels * rows * cols) as u64);

    let mut data = Vec::with_capacity(out_shape.elements());
    for group in 0..spec.groups {
        let patches = pack_patches(input, spec, group, out_shape);
        let tiles = tile_bounds(kg, n);
        let blocks = codesign_parallel::par_map(jobs, &tiles, |_, &(k0, ct)| {
            let wrows: Vec<&[i32]> =
                (k0..k0 + ct).map(|kk| filters.filter_taps(group * kg + kk)).collect();
            let mut acc = vec![0i64; ct * cols];
            gemm_accumulate(&wrows, &patches, rows, cols, &mut acc);
            acc.into_iter().map(saturate).collect::<Vec<i32>>()
        });
        for b in &blocks {
            data.extend_from_slice(b);
        }
    }
    Ok(Tensor::from_vec(out_shape, data))
}

/// `(start, len)` bounds of the [`split`] partitioning.
fn tile_bounds(total: usize, tile: usize) -> Vec<(usize, usize)> {
    let mut bounds = Vec::new();
    let mut start = 0usize;
    for len in split(total, tile) {
        bounds.push((start, len));
        start += len;
    }
    bounds
}

/// Executes a convolution with the output-stationary schedule, walking
/// the scalar loop structure literally: N×N output tiles stay resident
/// in per-PE register files (bounded by `rf_depth × packing` filters per
/// pass), weights broadcast one at a time with **zero weights skipped**,
/// finished tiles drain to the output. This is the executable
/// specification of the OS schedule; [`conv2d_os`] computes the same
/// bits fast.
///
/// # Errors
///
/// Returns [`ShapeMismatchError`] under the same conditions as
/// [`codesign_tensor::ops::conv2d`].
pub fn conv2d_os_spec(
    input: &Tensor,
    filters: &Filters,
    spec: &ConvSpec,
    cfg: &AcceleratorConfig,
) -> Result<Tensor, ShapeMismatchError> {
    let out_shape = check_conv_args(input, filters, spec, "conv2d_os")?;
    let n = cfg.array_size();
    let cg = input.shape().channels / spec.groups;
    let kg_total = spec.out_channels / spec.groups;
    let depthwise = is_depthwise(spec, input.shape());

    let mut out = Tensor::zeros(out_shape);

    for y0 in tile_starts(out_shape.height, n) {
        for x0 in tile_starts(out_shape.width, n) {
            let th = n.min(out_shape.height - y0);
            let tw = n.min(out_shape.width - x0);
            if depthwise {
                // Each channel independently: one resident partial sum
                // per PE.
                for c in 0..input.shape().channels {
                    let mut rf = vec![0i64; th * tw];
                    for dy in 0..spec.kernel.height {
                        for dx in 0..spec.kernel.width {
                            let w = filters.tap(c, 0, dy, dx) as i64;
                            if w == 0 {
                                continue; // zero-weight broadcast skipped
                            }
                            accumulate_tile(&mut rf, input, c, w, y0, x0, th, tw, dy, dx, spec);
                        }
                    }
                    drain(&mut out, c, y0, x0, th, tw, &rf);
                }
                continue;
            }
            let packing = ((n * n) / (th * tw).max(1)).max(1);
            let resident = (cfg.rf_depth() * packing).min(kg_total.max(1));
            for group in 0..spec.groups {
                let mut k0 = 0usize;
                for pass in split(kg_total, resident) {
                    // Register files: one partial sum per (pixel, filter).
                    let mut rf = vec![0i64; th * tw * pass];
                    for c in 0..cg {
                        let ic = group * cg + c;
                        // Input tile is resident; broadcast each non-zero
                        // weight of the pass's filters.
                        for f in 0..pass {
                            let kabs = group * kg_total + k0 + f;
                            for dy in 0..spec.kernel.height {
                                for dx in 0..spec.kernel.width {
                                    let w = filters.tap(kabs, c, dy, dx) as i64;
                                    if w == 0 {
                                        continue; // zero-weight skip
                                    }
                                    accumulate_tile(
                                        &mut rf[f * th * tw..(f + 1) * th * tw],
                                        input,
                                        ic,
                                        w,
                                        y0,
                                        x0,
                                        th,
                                        tw,
                                        dy,
                                        dx,
                                        spec,
                                    );
                                }
                            }
                        }
                    }
                    for f in 0..pass {
                        let kabs = group * kg_total + k0 + f;
                        drain(&mut out, kabs, y0, x0, th, tw, &rf[f * th * tw..(f + 1) * th * tw]);
                    }
                    k0 += pass;
                }
            }
        }
    }
    Ok(out)
}

/// Executes a convolution with the output-stationary schedule — fast
/// twin of [`conv2d_os_spec`], bit-identical to it (and to the
/// reference convolution). [`conv2d_os_jobs`] with one worker.
///
/// # Errors
///
/// Returns [`ShapeMismatchError`] under the same conditions as
/// [`codesign_tensor::ops::conv2d`].
pub fn conv2d_os(
    input: &Tensor,
    filters: &Filters,
    spec: &ConvSpec,
    cfg: &AcceleratorConfig,
) -> Result<Tensor, ShapeMismatchError> {
    conv2d_os_jobs(input, filters, spec, cfg, 1)
}

/// Fast output-stationary executor: keeps the OS schedule's structure —
/// N×N spatial output tiles, register-file-bounded filter passes with
/// per-tile packing, zero-weight skipping (a zero tap contributes an
/// exact `0`, so skipping it never changes the sums) — but replaces the
/// per-pixel padding branches with row-sliced multiply-accumulate spans
/// and distributes spatial tiles over `jobs` workers (`0` = one per
/// core). Results are byte-identical for every `jobs` value.
///
/// # Errors
///
/// Returns [`ShapeMismatchError`] under the same conditions as
/// [`codesign_tensor::ops::conv2d`].
pub fn conv2d_os_jobs(
    input: &Tensor,
    filters: &Filters,
    spec: &ConvSpec,
    cfg: &AcceleratorConfig,
    jobs: usize,
) -> Result<Tensor, ShapeMismatchError> {
    let out_shape = check_conv_args(input, filters, spec, "conv2d_os")?;
    let n = cfg.array_size();
    let s = input.shape();
    let cg = s.channels / spec.groups;
    let kg_total = spec.out_channels / spec.groups;
    let depthwise = is_depthwise(spec, s);
    let dense_macs = spec.out_channels * cg * spec.kernel.height * spec.kernel.width;
    let jobs = effective_jobs(jobs, (dense_macs * out_shape.plane()) as u64);

    let tiles: Vec<(usize, usize)> = tile_starts(out_shape.height, n)
        .flat_map(|y0| tile_starts(out_shape.width, n).map(move |x0| (y0, x0)))
        .collect();

    // Each spatial tile is an independent (all-channels × tile-region)
    // block; workers never share an output region.
    let blocks = codesign_parallel::par_map(jobs, &tiles, |_, &(y0, x0)| {
        let th = n.min(out_shape.height - y0);
        let tw = n.min(out_shape.width - x0);
        let mut block = vec![0i32; spec.out_channels * th * tw];
        if depthwise {
            for c in 0..s.channels {
                let mut rf = vec![0i64; th * tw];
                let src = input.channel_plane(c);
                for dy in 0..spec.kernel.height {
                    for dx in 0..spec.kernel.width {
                        let w = filters.tap(c, 0, dy, dx) as i64;
                        if w == 0 {
                            continue; // zero-weight broadcast skipped
                        }
                        accumulate_tile_rows(&mut rf, src, s, w, y0, x0, th, tw, dy, dx, spec);
                    }
                }
                for (dst, &acc) in block[c * th * tw..(c + 1) * th * tw].iter_mut().zip(&rf) {
                    *dst = saturate(acc);
                }
            }
            return block;
        }
        let packing = ((n * n) / (th * tw).max(1)).max(1);
        let resident = (cfg.rf_depth() * packing).min(kg_total.max(1));
        for group in 0..spec.groups {
            let mut k0 = 0usize;
            for pass in split(kg_total, resident) {
                let mut rf = vec![0i64; th * tw * pass];
                for c in 0..cg {
                    let src = input.channel_plane(group * cg + c);
                    for f in 0..pass {
                        let kabs = group * kg_total + k0 + f;
                        for dy in 0..spec.kernel.height {
                            for dx in 0..spec.kernel.width {
                                let w = filters.tap(kabs, c, dy, dx) as i64;
                                if w == 0 {
                                    continue; // zero-weight skip
                                }
                                accumulate_tile_rows(
                                    &mut rf[f * th * tw..(f + 1) * th * tw],
                                    src,
                                    s,
                                    w,
                                    y0,
                                    x0,
                                    th,
                                    tw,
                                    dy,
                                    dx,
                                    spec,
                                );
                            }
                        }
                    }
                }
                for f in 0..pass {
                    let kabs = group * kg_total + k0 + f;
                    let rf_f = &rf[f * th * tw..(f + 1) * th * tw];
                    for (dst, &acc) in
                        block[kabs * th * tw..(kabs + 1) * th * tw].iter_mut().zip(rf_f)
                    {
                        *dst = saturate(acc);
                    }
                }
                k0 += pass;
            }
        }
        block
    });

    // Scatter the finished tile blocks into the CHW output.
    let mut out = Tensor::zeros(out_shape);
    let (ow, plane) = (out_shape.width, out_shape.plane());
    let data = out.as_mut_slice();
    for (block, &(y0, x0)) in blocks.iter().zip(&tiles) {
        let th = n.min(out_shape.height - y0);
        let tw = n.min(out_shape.width - x0);
        for k in 0..spec.out_channels {
            for ty in 0..th {
                let dst = k * plane + (y0 + ty) * ow + x0;
                data[dst..dst + tw].copy_from_slice(&block[(k * th + ty) * tw..][..tw]);
            }
        }
    }
    Ok(out)
}

/// One weight broadcast: every PE of the tile multiplies its (shifted)
/// input pixel by `w` and accumulates. Scalar spec form with per-pixel
/// padding checks; [`accumulate_tile_rows`] is the branch-free fast form.
#[allow(clippy::too_many_arguments)]
fn accumulate_tile(
    rf: &mut [i64],
    input: &Tensor,
    channel: usize,
    w: i64,
    y0: usize,
    x0: usize,
    th: usize,
    tw: usize,
    dy: usize,
    dx: usize,
    spec: &ConvSpec,
) {
    for ty in 0..th {
        for tx in 0..tw {
            let iy = ((y0 + ty) * spec.stride + dy) as isize - spec.pad_h as isize;
            let ix = ((x0 + tx) * spec.stride + dx) as isize - spec.pad_w as isize;
            rf[ty * tw + tx] += input.at_padded(channel, iy, ix) as i64 * w;
        }
    }
}

/// Fast form of [`accumulate_tile`]: the valid output span is computed
/// once per row ([`valid_range`]) so the inner multiply-accumulate loop
/// indexes the input plane directly with no padding branches. Pixels
/// outside the span read zero padding and contribute nothing.
#[allow(clippy::too_many_arguments)]
fn accumulate_tile_rows(
    rf: &mut [i64],
    src_plane: &[i32],
    in_shape: codesign_dnn::Shape,
    w: i64,
    y0: usize,
    x0: usize,
    th: usize,
    tw: usize,
    dy: usize,
    dx: usize,
    spec: &ConvSpec,
) {
    let (tylo, tyhi) = valid_range(th, y0, spec.stride, dy, spec.pad_h, in_shape.height);
    let (txlo, txhi) = valid_range(tw, x0, spec.stride, dx, spec.pad_w, in_shape.width);
    for ty in tylo..tyhi {
        let iy = (y0 + ty) * spec.stride + dy - spec.pad_h;
        let row = &src_plane[iy * in_shape.width..(iy + 1) * in_shape.width];
        let dst = &mut rf[ty * tw..(ty + 1) * tw];
        let mut ix = (x0 + txlo) * spec.stride + dx - spec.pad_w;
        for d in dst.iter_mut().take(txhi).skip(txlo) {
            *d += w * row[ix] as i64;
            ix += spec.stride;
        }
    }
}

fn tile_starts(extent: usize, tile: usize) -> impl Iterator<Item = usize> {
    (0..extent).step_by(tile.max(1))
}

fn drain(out: &mut Tensor, k: usize, y0: usize, x0: usize, th: usize, tw: usize, rf: &[i64]) {
    for ty in 0..th {
        for tx in 0..tw {
            *out.at_mut(k, y0 + ty, x0 + tx) = saturate(rf[ty * tw + tx]);
        }
    }
}

#[inline]
fn saturate(acc: i64) -> i32 {
    codesign_tensor::ops::clamp_acc(acc)
}

/// Executes a fully-connected layer with the weight-stationary schedule,
/// walking the scalar tile loops literally: N×N weight tiles resident,
/// the input vector streamed through per-column adder chains — the
/// degenerate (one-pixel) case of [`conv2d_ws_spec`], which is how the
/// array §4.1.2 describes runs "the FC layer operations". This is the
/// executable specification; [`fc_ws`] computes the same bits fast.
///
/// # Errors
///
/// Returns [`ShapeMismatchError`] when the weight matrix does not match
/// the flattened input length.
pub fn fc_ws_spec(
    input: &Tensor,
    weights: &Filters,
    cfg: &AcceleratorConfig,
) -> Result<Tensor, ShapeMismatchError> {
    let flat = input.as_slice();
    if weights.in_channels() != flat.len()
        || weights.kernel_height() != 1
        || weights.kernel_width() != 1
    {
        return Err(ShapeMismatchError::new("fc_ws", "weight matrix mismatch"));
    }
    let n = cfg.array_size();
    let out_features = weights.out_channels();
    let mut psum = vec![0i64; out_features];
    let mut k0 = 0usize;
    for ct in split(out_features, n) {
        let mut c0 = 0usize;
        for rt in split(flat.len(), n) {
            // Weight tile resident; one streamed input vector slice.
            for kk in 0..ct {
                let mut chain = 0i64;
                for cc in 0..rt {
                    chain += flat[c0 + cc] as i64 * weights.tap(k0 + kk, c0 + cc, 0, 0) as i64;
                }
                psum[k0 + kk] += chain;
            }
            c0 += rt;
        }
        k0 += ct;
    }
    let data = psum.into_iter().map(saturate).collect();
    Ok(Tensor::from_vec(codesign_dnn::Shape::vector(out_features), data))
}

/// Executes a fully-connected layer with the weight-stationary schedule —
/// fast twin of [`fc_ws_spec`]. [`fc_ws_jobs`] with one worker.
///
/// # Errors
///
/// Returns [`ShapeMismatchError`] when the weight matrix does not match
/// the flattened input length.
pub fn fc_ws(
    input: &Tensor,
    weights: &Filters,
    cfg: &AcceleratorConfig,
) -> Result<Tensor, ShapeMismatchError> {
    fc_ws_jobs(input, weights, cfg, 1)
}

/// Fast FC executor: the WS tiling only changes the order of the exact
/// `i64` additions, so the blocked matrix-vector product from
/// `codesign_tensor::gemm` produces the identical bits. The accelerator
/// config is validated against but does not affect the result.
///
/// # Errors
///
/// Returns [`ShapeMismatchError`] when the weight matrix does not match
/// the flattened input length.
pub fn fc_ws_jobs(
    input: &Tensor,
    weights: &Filters,
    cfg: &AcceleratorConfig,
    jobs: usize,
) -> Result<Tensor, ShapeMismatchError> {
    let _ = cfg; // tiling granularity does not change the exact sums
    if weights.in_channels() != input.as_slice().len()
        || weights.kernel_height() != 1
        || weights.kernel_width() != 1
    {
        return Err(ShapeMismatchError::new("fc_ws", "weight matrix mismatch"));
    }
    codesign_tensor::gemm::fully_connected_gemm_jobs(input, weights, jobs)
}

/// Executes a whole network functionally — [`run_network_on_accelerator_jobs`]
/// with a single worker.
///
/// # Errors
///
/// Returns [`codesign_tensor::RunNetworkError`] under the same conditions
/// as the reference executor.
pub fn run_network_on_accelerator(
    network: &codesign_dnn::Network,
    image: &Tensor,
    weights: &codesign_tensor::WeightStore,
    cfg: &AcceleratorConfig,
    policy: codesign_arch::DataflowPolicy,
    opts: crate::engine::SimOptions,
) -> Result<codesign_tensor::NetworkActivations, codesign_tensor::RunNetworkError> {
    run_network_on_accelerator_jobs(network, image, weights, cfg, policy, opts, 1)
}

/// Executes a whole network functionally, running every convolution with
/// the dataflow the given policy selects (fast WS/OS executors,
/// parallelised with `jobs` workers) and every FC layer with the
/// degenerate-WS schedule ([`fc_ws_jobs`]); non-compute layers use the
/// reference operators. Activations are resolved by reference through
/// [`codesign_tensor::ActivationBuilder`] — nothing is cloned between
/// layers. The result must be bit-identical to
/// [`codesign_tensor::run_network`] for every `jobs` value; the
/// integration tests and the zoo-wide CI suite assert it.
///
/// # Errors
///
/// Returns [`codesign_tensor::RunNetworkError`] under the same conditions
/// as the reference executor.
#[allow(clippy::too_many_arguments)]
pub fn run_network_on_accelerator_jobs(
    network: &codesign_dnn::Network,
    image: &Tensor,
    weights: &codesign_tensor::WeightStore,
    cfg: &AcceleratorConfig,
    policy: codesign_arch::DataflowPolicy,
    opts: crate::engine::SimOptions,
    jobs: usize,
) -> Result<codesign_tensor::NetworkActivations, codesign_tensor::RunNetworkError> {
    use codesign_arch::{Dataflow, DataflowPolicy};
    use codesign_dnn::LayerOp;
    use codesign_tensor::RunNetworkError;

    let mut acts = codesign_tensor::ActivationBuilder::with_capacity(network.layers().len());
    for layer in network.layers() {
        let input = acts.primary_input(layer, image)?;
        let out = match &layer.op {
            LayerOp::Conv(spec) => {
                let filters = weights
                    .get(&layer.name)
                    .ok_or_else(|| RunNetworkError::MissingWeights(layer.name.clone()))?;
                let dataflow = match policy {
                    DataflowPolicy::Fixed(d) => d,
                    DataflowPolicy::PerLayer => {
                        crate::engine::compare_dataflows(layer, cfg, opts).2
                    }
                };
                match dataflow {
                    Dataflow::WeightStationary => conv2d_ws_jobs(input, filters, spec, cfg, jobs)?,
                    Dataflow::OutputStationary => conv2d_os_jobs(input, filters, spec, cfg, jobs)?,
                }
            }
            LayerOp::FullyConnected { .. } => {
                let filters = weights
                    .get(&layer.name)
                    .ok_or_else(|| RunNetworkError::MissingWeights(layer.name.clone()))?;
                fc_ws_jobs(input, filters, cfg, jobs)?
            }
            _ => {
                let merge = acts.merge_operand(layer, image)?;
                codesign_tensor::run_layer(layer, input, merge, weights)?
            }
        };
        acts.push(layer.name.clone(), out);
    }
    Ok(acts.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use codesign_dnn::{Kernel, Shape};
    use codesign_tensor::ops::conv2d;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn small_cfg() -> AcceleratorConfig {
        AcceleratorConfig::builder()
            .array_size(4)
            .rf_depth(3)
            .global_buffer_bytes(4096)
            .build()
            .unwrap()
    }

    fn random_case(rng: &mut StdRng) -> (Tensor, Filters, ConvSpec) {
        let depthwise = rng.gen_bool(0.25);
        let (groups, cg, cout) = if depthwise {
            let c = rng.gen_range(2..=9usize);
            (c, 1, c)
        } else {
            let groups = [1, 1, 1, 2][rng.gen_range(0..4usize)];
            let cg = rng.gen_range(1..=6usize);
            (groups, cg, groups * rng.gen_range(1..=7usize))
        };
        let (kh, kw): (usize, usize) =
            [(1, 1), (3, 3), (1, 3), (3, 1), (5, 5), (7, 7)][rng.gen_range(0..6usize)];
        let stride = rng.gen_range(1..=3usize);
        let h = rng.gen_range(kh.max(kw)..kh.max(kw) + 9);
        let w = rng.gen_range(kh.max(kw)..kh.max(kw) + 9);
        let input = Tensor::random(Shape::new(groups * cg, h, w), 64, rng);
        let filters = Filters::random(cout, cg, kh, kw, 16, 0.4, rng);
        let spec = ConvSpec {
            out_channels: cout,
            kernel: Kernel::new(kh, kw),
            stride,
            pad_h: rng.gen_range(0..=kh / 2),
            pad_w: rng.gen_range(0..=kw / 2),
            groups,
        };
        (input, filters, spec)
    }

    #[test]
    fn ws_spec_matches_reference() {
        let mut rng = StdRng::seed_from_u64(7);
        let cfg = small_cfg();
        for i in 0..60 {
            let (input, filters, spec) = random_case(&mut rng);
            let want = conv2d(&input, &filters, &spec).unwrap();
            let got = conv2d_ws_spec(&input, &filters, &spec, &cfg).unwrap();
            assert_eq!(got, want, "case {i}: {spec:?}");
        }
    }

    #[test]
    fn ws_fast_matches_spec() {
        let mut rng = StdRng::seed_from_u64(7);
        let cfg = small_cfg();
        for i in 0..60 {
            let (input, filters, spec) = random_case(&mut rng);
            let want = conv2d_ws_spec(&input, &filters, &spec, &cfg).unwrap();
            let got = conv2d_ws(&input, &filters, &spec, &cfg).unwrap();
            assert_eq!(got, want, "case {i}: {spec:?}");
        }
    }

    #[test]
    fn os_spec_matches_reference() {
        let mut rng = StdRng::seed_from_u64(8);
        let cfg = small_cfg();
        for i in 0..60 {
            let (input, filters, spec) = random_case(&mut rng);
            let want = conv2d(&input, &filters, &spec).unwrap();
            let got = conv2d_os_spec(&input, &filters, &spec, &cfg).unwrap();
            assert_eq!(got, want, "case {i}: {spec:?}");
        }
    }

    #[test]
    fn os_fast_matches_spec() {
        let mut rng = StdRng::seed_from_u64(8);
        let cfg = small_cfg();
        for i in 0..60 {
            let (input, filters, spec) = random_case(&mut rng);
            let want = conv2d_os_spec(&input, &filters, &spec, &cfg).unwrap();
            let got = conv2d_os(&input, &filters, &spec, &cfg).unwrap();
            assert_eq!(got, want, "case {i}: {spec:?}");
        }
    }

    #[test]
    fn both_schedules_match_on_paper_array_size() {
        let mut rng = StdRng::seed_from_u64(9);
        let cfg = AcceleratorConfig::paper_default();
        for _ in 0..10 {
            let (input, filters, spec) = random_case(&mut rng);
            let want = conv2d(&input, &filters, &spec).unwrap();
            assert_eq!(conv2d_ws(&input, &filters, &spec, &cfg).unwrap(), want);
            assert_eq!(conv2d_os(&input, &filters, &spec, &cfg).unwrap(), want);
        }
    }

    #[test]
    fn fast_executors_are_jobs_invariant() {
        let mut rng = StdRng::seed_from_u64(10);
        let cfg = small_cfg();
        for _ in 0..10 {
            let (input, filters, spec) = random_case(&mut rng);
            let ws1 = conv2d_ws_jobs(&input, &filters, &spec, &cfg, 1).unwrap();
            let os1 = conv2d_os_jobs(&input, &filters, &spec, &cfg, 1).unwrap();
            for jobs in [2, 5] {
                assert_eq!(conv2d_ws_jobs(&input, &filters, &spec, &cfg, jobs).unwrap(), ws1);
                assert_eq!(conv2d_os_jobs(&input, &filters, &spec, &cfg, jobs).unwrap(), os1);
            }
        }
    }

    #[test]
    fn fc_schedule_matches_reference() {
        let mut rng = StdRng::seed_from_u64(11);
        let cfg = small_cfg();
        for _ in 0..20 {
            let n = rng.gen_range(1..40);
            let k = rng.gen_range(1..40);
            let input = Tensor::random(Shape::new(n, 1, 1), 64, &mut rng);
            let w = Filters::random(k, n, 1, 1, 16, 0.4, &mut rng);
            let want = codesign_tensor::ops::fully_connected(&input, &w).unwrap();
            assert_eq!(fc_ws_spec(&input, &w, &cfg).unwrap(), want);
            assert_eq!(fc_ws(&input, &w, &cfg).unwrap(), want);
        }
        let bad = Filters::zeros(4, 7, 1, 1);
        let input = Tensor::zeros(Shape::new(3, 1, 1));
        assert!(fc_ws_spec(&input, &bad, &cfg).is_err());
        assert!(fc_ws(&input, &bad, &cfg).is_err());
    }

    #[test]
    fn executors_validate_arguments() {
        let cfg = small_cfg();
        let input = Tensor::zeros(Shape::new(3, 8, 8));
        let bad = Filters::zeros(8, 4, 3, 3);
        let spec = ConvSpec {
            out_channels: 8,
            kernel: Kernel::square(3),
            stride: 1,
            pad_h: 1,
            pad_w: 1,
            groups: 1,
        };
        assert!(conv2d_ws(&input, &bad, &spec, &cfg).is_err());
        assert!(conv2d_os(&input, &bad, &spec, &cfg).is_err());
        assert!(conv2d_ws_spec(&input, &bad, &spec, &cfg).is_err());
        assert!(conv2d_os_spec(&input, &bad, &spec, &cfg).is_err());
    }
}
