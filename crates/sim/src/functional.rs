//! Functional dataflow executors: run the WS and OS schedules over real
//! tensor data.
//!
//! These follow the exact loop structure of the hardware schedules — tile
//! loops, register-file-bounded filter passes, per-column adder chains,
//! zero-weight skipping — and must produce **bit-identical** results to
//! the reference convolution in `codesign-tensor`. They are the proof
//! that the schedules the performance models count cycles for actually
//! compute the right convolution.

use codesign_arch::AcceleratorConfig;
use codesign_dnn::ConvSpec;
use codesign_tensor::{Filters, ShapeMismatchError, Tensor};

use crate::workload::split;

fn check_conv_args(
    input: &Tensor,
    filters: &Filters,
    spec: &ConvSpec,
    op: &'static str,
) -> Result<codesign_dnn::Shape, ShapeMismatchError> {
    let in_shape = input.shape();
    if spec.groups == 0
        || !in_shape.channels.is_multiple_of(spec.groups)
        || !spec.out_channels.is_multiple_of(spec.groups)
    {
        return Err(ShapeMismatchError::new(op, "invalid group count"));
    }
    if filters.in_channels() != in_shape.channels / spec.groups
        || filters.out_channels() != spec.out_channels
        || filters.kernel_height() != spec.kernel.height
        || filters.kernel_width() != spec.kernel.width
    {
        return Err(ShapeMismatchError::new(op, "filter bank does not match spec"));
    }
    codesign_dnn::layer::infer_output(&codesign_dnn::LayerOp::Conv(*spec), in_shape)
        .ok_or_else(|| ShapeMismatchError::new(op, "spec does not fit input"))
}

/// Executes a convolution with the weight-stationary schedule: weight
/// tiles of at most N×N stay resident while every output pixel streams
/// through; partial sums accumulate in a global-buffer image across row
/// tiles and taps.
///
/// # Errors
///
/// Returns [`ShapeMismatchError`] under the same conditions as
/// [`codesign_tensor::ops::conv2d`].
pub fn conv2d_ws(
    input: &Tensor,
    filters: &Filters,
    spec: &ConvSpec,
    cfg: &AcceleratorConfig,
) -> Result<Tensor, ShapeMismatchError> {
    let out_shape = check_conv_args(input, filters, spec, "conv2d_ws")?;
    let n = cfg.array_size();
    let cg = input.shape().channels / spec.groups;
    let kg = spec.out_channels / spec.groups;

    // The global buffer's partial-sum image.
    let mut psum = vec![0i64; out_shape.elements()];
    let plane = out_shape.plane();

    for group in 0..spec.groups {
        let mut k0 = 0usize;
        for ct in split(kg, n) {
            let mut c0 = 0usize;
            for rt in split(cg, n) {
                for dy in 0..spec.kernel.height {
                    for dx in 0..spec.kernel.width {
                        // Weight tile (rt rows x ct cols) is resident;
                        // stream every output pixel through the array.
                        for oy in 0..out_shape.height {
                            for ox in 0..out_shape.width {
                                let iy = (oy * spec.stride + dy) as isize - spec.pad_h as isize;
                                let ix = (ox * spec.stride + dx) as isize - spec.pad_w as isize;
                                for kk in 0..ct {
                                    let k = group * kg + k0 + kk;
                                    // Adder chain down column kk.
                                    let mut chain = 0i64;
                                    for cc in 0..rt {
                                        let c = group * cg + c0 + cc;
                                        let v = input.at_padded(c, iy, ix) as i64;
                                        let w = filters.tap(k, c0 + cc, dy, dx) as i64;
                                        chain += v * w;
                                    }
                                    psum[k * plane + oy * out_shape.width + ox] += chain;
                                }
                            }
                        }
                    }
                }
                c0 += rt;
            }
            k0 += ct;
        }
    }

    let data = psum.into_iter().map(saturate).collect();
    Ok(Tensor::from_vec(out_shape, data))
}

/// Executes a convolution with the output-stationary schedule: N×N output
/// tiles stay resident in per-PE register files (bounded by
/// `rf_depth × packing` filters per pass), weights broadcast one at a
/// time with **zero weights skipped**, finished tiles drain to the output.
///
/// # Errors
///
/// Returns [`ShapeMismatchError`] under the same conditions as
/// [`codesign_tensor::ops::conv2d`].
pub fn conv2d_os(
    input: &Tensor,
    filters: &Filters,
    spec: &ConvSpec,
    cfg: &AcceleratorConfig,
) -> Result<Tensor, ShapeMismatchError> {
    let out_shape = check_conv_args(input, filters, spec, "conv2d_os")?;
    let n = cfg.array_size();
    let cg = input.shape().channels / spec.groups;
    let kg_total = spec.out_channels / spec.groups;
    let depthwise = spec.groups > 1
        && spec.groups == input.shape().channels
        && spec.groups == spec.out_channels;

    let mut out = Tensor::zeros(out_shape);

    for y0 in tile_starts(out_shape.height, n) {
        for x0 in tile_starts(out_shape.width, n) {
            let th = n.min(out_shape.height - y0);
            let tw = n.min(out_shape.width - x0);
            if depthwise {
                // Each channel independently: one resident partial sum
                // per PE.
                for c in 0..input.shape().channels {
                    let mut rf = vec![0i64; th * tw];
                    for dy in 0..spec.kernel.height {
                        for dx in 0..spec.kernel.width {
                            let w = filters.tap(c, 0, dy, dx) as i64;
                            if w == 0 {
                                continue; // zero-weight broadcast skipped
                            }
                            accumulate_tile(&mut rf, input, c, w, y0, x0, th, tw, dy, dx, spec);
                        }
                    }
                    drain(&mut out, c, y0, x0, th, tw, &rf);
                }
                continue;
            }
            let packing = ((n * n) / (th * tw).max(1)).max(1);
            let resident = (cfg.rf_depth() * packing).min(kg_total.max(1));
            for group in 0..spec.groups {
                let mut k0 = 0usize;
                for pass in split(kg_total, resident) {
                    // Register files: one partial sum per (pixel, filter).
                    let mut rf = vec![0i64; th * tw * pass];
                    for c in 0..cg {
                        let ic = group * cg + c;
                        // Input tile is resident; broadcast each non-zero
                        // weight of the pass's filters.
                        for f in 0..pass {
                            let kabs = group * kg_total + k0 + f;
                            for dy in 0..spec.kernel.height {
                                for dx in 0..spec.kernel.width {
                                    let w = filters.tap(kabs, c, dy, dx) as i64;
                                    if w == 0 {
                                        continue; // zero-weight skip
                                    }
                                    accumulate_tile(
                                        &mut rf[f * th * tw..(f + 1) * th * tw],
                                        input,
                                        ic,
                                        w,
                                        y0,
                                        x0,
                                        th,
                                        tw,
                                        dy,
                                        dx,
                                        spec,
                                    );
                                }
                            }
                        }
                    }
                    for f in 0..pass {
                        let kabs = group * kg_total + k0 + f;
                        drain(&mut out, kabs, y0, x0, th, tw, &rf[f * th * tw..(f + 1) * th * tw]);
                    }
                    k0 += pass;
                }
            }
        }
    }
    Ok(out)
}

/// One weight broadcast: every PE of the tile multiplies its (shifted)
/// input pixel by `w` and accumulates.
#[allow(clippy::too_many_arguments)]
fn accumulate_tile(
    rf: &mut [i64],
    input: &Tensor,
    channel: usize,
    w: i64,
    y0: usize,
    x0: usize,
    th: usize,
    tw: usize,
    dy: usize,
    dx: usize,
    spec: &ConvSpec,
) {
    for ty in 0..th {
        for tx in 0..tw {
            let iy = ((y0 + ty) * spec.stride + dy) as isize - spec.pad_h as isize;
            let ix = ((x0 + tx) * spec.stride + dx) as isize - spec.pad_w as isize;
            rf[ty * tw + tx] += input.at_padded(channel, iy, ix) as i64 * w;
        }
    }
}

fn tile_starts(extent: usize, tile: usize) -> impl Iterator<Item = usize> {
    (0..extent).step_by(tile.max(1))
}

fn drain(out: &mut Tensor, k: usize, y0: usize, x0: usize, th: usize, tw: usize, rf: &[i64]) {
    for ty in 0..th {
        for tx in 0..tw {
            *out.at_mut(k, y0 + ty, x0 + tx) = saturate(rf[ty * tw + tx]);
        }
    }
}

#[inline]
fn saturate(acc: i64) -> i32 {
    acc.clamp(i32::MIN as i64, i32::MAX as i64) as i32
}

/// Executes a fully-connected layer with the weight-stationary schedule:
/// N×N weight tiles resident, the input vector streamed through per-column
/// adder chains — the degenerate (one-pixel) case of [`conv2d_ws`], which
/// is how the array §4.1.2 describes runs "the FC layer operations".
///
/// # Errors
///
/// Returns [`ShapeMismatchError`] when the weight matrix does not match
/// the flattened input length.
pub fn fc_ws(
    input: &Tensor,
    weights: &Filters,
    cfg: &AcceleratorConfig,
) -> Result<Tensor, ShapeMismatchError> {
    let flat = input.as_slice();
    if weights.in_channels() != flat.len()
        || weights.kernel_height() != 1
        || weights.kernel_width() != 1
    {
        return Err(ShapeMismatchError::new("fc_ws", "weight matrix mismatch"));
    }
    let n = cfg.array_size();
    let out_features = weights.out_channels();
    let mut psum = vec![0i64; out_features];
    let mut k0 = 0usize;
    for ct in split(out_features, n) {
        let mut c0 = 0usize;
        for rt in split(flat.len(), n) {
            // Weight tile resident; one streamed input vector slice.
            for kk in 0..ct {
                let mut chain = 0i64;
                for cc in 0..rt {
                    chain += flat[c0 + cc] as i64 * weights.tap(k0 + kk, c0 + cc, 0, 0) as i64;
                }
                psum[k0 + kk] += chain;
            }
            c0 += rt;
        }
        k0 += ct;
    }
    let data = psum.into_iter().map(saturate).collect();
    Ok(Tensor::from_vec(codesign_dnn::Shape::vector(out_features), data))
}

/// Executes a whole network functionally, running every convolution with
/// the dataflow the given policy selects and every FC layer with the
/// degenerate-WS schedule ([`fc_ws`]); non-compute layers use the
/// reference operators. The result must be bit-identical to
/// [`codesign_tensor::run_network`]; the integration tests assert it.
///
/// # Errors
///
/// Returns [`codesign_tensor::RunNetworkError`] under the same conditions
/// as the reference executor.
pub fn run_network_on_accelerator(
    network: &codesign_dnn::Network,
    image: &Tensor,
    weights: &codesign_tensor::WeightStore,
    cfg: &AcceleratorConfig,
    policy: codesign_arch::DataflowPolicy,
    opts: crate::engine::SimOptions,
) -> Result<codesign_tensor::NetworkActivations, codesign_tensor::RunNetworkError> {
    use codesign_arch::{Dataflow, DataflowPolicy};
    use codesign_dnn::LayerOp;
    use codesign_tensor::RunNetworkError;

    let mut outputs: Vec<(String, Tensor)> = Vec::with_capacity(network.layers().len());
    for layer in network.layers() {
        let input: &Tensor = match &layer.primary_input {
            Some(name) => {
                &outputs
                    .iter()
                    .find(|(n, _)| n == name)
                    .ok_or_else(|| RunNetworkError::MissingMergeInput(layer.name.clone()))?
                    .1
            }
            None => image,
        };
        let out = match &layer.op {
            LayerOp::Conv(spec) => {
                let filters = weights
                    .get(&layer.name)
                    .ok_or_else(|| RunNetworkError::MissingWeights(layer.name.clone()))?;
                let dataflow = match policy {
                    DataflowPolicy::Fixed(d) => d,
                    DataflowPolicy::PerLayer => {
                        crate::engine::compare_dataflows(layer, cfg, opts).2
                    }
                };
                match dataflow {
                    Dataflow::WeightStationary => conv2d_ws(input, filters, spec, cfg)?,
                    Dataflow::OutputStationary => conv2d_os(input, filters, spec, cfg)?,
                }
            }
            LayerOp::FullyConnected { .. } => {
                let filters = weights
                    .get(&layer.name)
                    .ok_or_else(|| RunNetworkError::MissingWeights(layer.name.clone()))?;
                fc_ws(input, filters, cfg)?
            }
            _ => {
                let merge = match &layer.extra_input {
                    Some(name) => {
                        Some(outputs.iter().find(|(n, _)| n == name).map(|(_, t)| t).ok_or_else(
                            || RunNetworkError::MissingMergeInput(layer.name.clone()),
                        )?)
                    }
                    None => match layer.op {
                        LayerOp::EltwiseAdd => Some(image),
                        _ => None,
                    },
                };
                codesign_tensor::run_layer(layer, input, merge, weights)?
            }
        };
        outputs.push((layer.name.clone(), out));
    }
    Ok(codesign_tensor::execute::NetworkActivations::from_outputs(outputs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use codesign_dnn::{Kernel, Shape};
    use codesign_tensor::ops::conv2d;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn small_cfg() -> AcceleratorConfig {
        AcceleratorConfig::builder()
            .array_size(4)
            .rf_depth(3)
            .global_buffer_bytes(4096)
            .build()
            .unwrap()
    }

    fn random_case(rng: &mut StdRng) -> (Tensor, Filters, ConvSpec) {
        let depthwise = rng.gen_bool(0.25);
        let (groups, cg, cout) = if depthwise {
            let c = rng.gen_range(2..=9usize);
            (c, 1, c)
        } else {
            let groups = [1, 1, 1, 2][rng.gen_range(0..4usize)];
            let cg = rng.gen_range(1..=6usize);
            (groups, cg, groups * rng.gen_range(1..=7usize))
        };
        let (kh, kw): (usize, usize) =
            [(1, 1), (3, 3), (1, 3), (3, 1), (5, 5), (7, 7)][rng.gen_range(0..6usize)];
        let stride = rng.gen_range(1..=3usize);
        let h = rng.gen_range(kh.max(kw)..kh.max(kw) + 9);
        let w = rng.gen_range(kh.max(kw)..kh.max(kw) + 9);
        let input = Tensor::random(Shape::new(groups * cg, h, w), 64, rng);
        let filters = Filters::random(cout, cg, kh, kw, 16, 0.4, rng);
        let spec = ConvSpec {
            out_channels: cout,
            kernel: Kernel::new(kh, kw),
            stride,
            pad_h: rng.gen_range(0..=kh / 2),
            pad_w: rng.gen_range(0..=kw / 2),
            groups,
        };
        (input, filters, spec)
    }

    #[test]
    fn ws_schedule_matches_reference() {
        let mut rng = StdRng::seed_from_u64(7);
        let cfg = small_cfg();
        for i in 0..60 {
            let (input, filters, spec) = random_case(&mut rng);
            let want = conv2d(&input, &filters, &spec).unwrap();
            let got = conv2d_ws(&input, &filters, &spec, &cfg).unwrap();
            assert_eq!(got, want, "case {i}: {spec:?}");
        }
    }

    #[test]
    fn os_schedule_matches_reference() {
        let mut rng = StdRng::seed_from_u64(8);
        let cfg = small_cfg();
        for i in 0..60 {
            let (input, filters, spec) = random_case(&mut rng);
            let want = conv2d(&input, &filters, &spec).unwrap();
            let got = conv2d_os(&input, &filters, &spec, &cfg).unwrap();
            assert_eq!(got, want, "case {i}: {spec:?}");
        }
    }

    #[test]
    fn both_schedules_match_on_paper_array_size() {
        let mut rng = StdRng::seed_from_u64(9);
        let cfg = AcceleratorConfig::paper_default();
        for _ in 0..10 {
            let (input, filters, spec) = random_case(&mut rng);
            let want = conv2d(&input, &filters, &spec).unwrap();
            assert_eq!(conv2d_ws(&input, &filters, &spec, &cfg).unwrap(), want);
            assert_eq!(conv2d_os(&input, &filters, &spec, &cfg).unwrap(), want);
        }
    }

    #[test]
    fn fc_schedule_matches_reference() {
        let mut rng = StdRng::seed_from_u64(11);
        let cfg = small_cfg();
        for _ in 0..20 {
            let n = rng.gen_range(1..40);
            let k = rng.gen_range(1..40);
            let input = Tensor::random(Shape::new(n, 1, 1), 64, &mut rng);
            let w = Filters::random(k, n, 1, 1, 16, 0.4, &mut rng);
            let want = codesign_tensor::ops::fully_connected(&input, &w).unwrap();
            let got = fc_ws(&input, &w, &cfg).unwrap();
            assert_eq!(got, want);
        }
        let bad = Filters::zeros(4, 7, 1, 1);
        let input = Tensor::zeros(Shape::new(3, 1, 1));
        assert!(fc_ws(&input, &bad, &cfg).is_err());
    }

    #[test]
    fn executors_validate_arguments() {
        let cfg = small_cfg();
        let input = Tensor::zeros(Shape::new(3, 8, 8));
        let bad = Filters::zeros(8, 4, 3, 3);
        let spec = ConvSpec {
            out_channels: 8,
            kernel: Kernel::square(3),
            stride: 1,
            pad_h: 1,
            pad_w: 1,
            groups: 1,
        };
        assert!(conv2d_ws(&input, &bad, &spec, &cfg).is_err());
        assert!(conv2d_os(&input, &bad, &spec, &cfg).is_err());
    }
}
