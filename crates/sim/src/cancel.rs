//! Cooperative cancellation: a shared deadline + cancel flag.
//!
//! A [`CancelToken`] is the request-scoped "stop asking for more work"
//! signal threaded through the long-running entry points (the chunked
//! sweep loop, the three-way architecture comparison). It is *checked*,
//! never *enforced*: holders poll [`CancelToken::is_cancelled`] at
//! natural boundaries — sweep chunk edges, between whole-network
//! simulations — so work units complete atomically and everything
//! delivered before a cancellation is bit-identical to a prefix of the
//! uncancelled run.
//!
//! Tokens are cheap to clone (one `Arc`); all clones observe the same
//! flag and deadline. A deadline, once passed, latches: the token stays
//! cancelled even if the clock could be read again faster than the
//! deadline check.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A shared cancel flag with an optional deadline.
///
/// Cancellation is sticky and one-way: there is no "uncancel".
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A token that never cancels on its own (no deadline). It can still
    /// be cancelled explicitly via [`CancelToken::cancel`].
    pub fn never() -> Self {
        Self::default()
    }

    /// A token that auto-cancels once `budget` has elapsed from now.
    /// A zero budget is already expired: the first check cancels.
    pub fn with_deadline(budget: Duration) -> Self {
        Self {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: Instant::now().checked_add(budget),
            }),
        }
    }

    /// Cancels the token (and every clone of it) immediately.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::SeqCst);
    }

    /// Whether the token has been cancelled, either explicitly or by its
    /// deadline passing. Deadline expiry latches the flag, so repeated
    /// checks cost one atomic load.
    pub fn is_cancelled(&self) -> bool {
        if self.inner.cancelled.load(Ordering::SeqCst) {
            return true;
        }
        if let Some(deadline) = self.inner.deadline {
            if Instant::now() >= deadline {
                self.inner.cancelled.store(true, Ordering::SeqCst);
                return true;
            }
        }
        false
    }

    /// Time left before the deadline (`None` when the token has no
    /// deadline; zero once it has passed).
    pub fn remaining(&self) -> Option<Duration> {
        self.inner.deadline.map(|d| d.saturating_duration_since(Instant::now()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_is_never_cancelled_until_asked() {
        let t = CancelToken::never();
        assert!(!t.is_cancelled());
        assert_eq!(t.remaining(), None);
        let clone = t.clone();
        clone.cancel();
        assert!(t.is_cancelled(), "clones share the flag");
    }

    #[test]
    fn zero_deadline_is_already_expired() {
        let t = CancelToken::with_deadline(Duration::ZERO);
        assert!(t.is_cancelled());
        assert_eq!(t.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn generous_deadline_is_not_expired() {
        let t = CancelToken::with_deadline(Duration::from_secs(3600));
        assert!(!t.is_cancelled());
        assert!(t.remaining().is_some_and(|r| r > Duration::from_secs(3000)));
    }

    #[test]
    fn deadline_expiry_latches() {
        let t = CancelToken::with_deadline(Duration::from_millis(1));
        std::thread::sleep(Duration::from_millis(5));
        assert!(t.is_cancelled());
        assert!(t.is_cancelled(), "stays cancelled");
    }
}
