//! Weight compression for DRAM traffic (§3.2 lists "data compression,
//! sparsity exploitation" among the distinguishing accelerator features).
//!
//! EIE-style sparse encoding: only non-zero weights move through DRAM,
//! each carrying a small run-length index alongside its data bits. The
//! decoder sits between the DMA and the global buffer, so on-chip
//! schedules are unchanged — only the weight portion of the DRAM traffic
//! shrinks (when the sparsity is high enough to pay for the indices).

use crate::dram::DramTraffic;

/// A sparse weight encoding.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeightCompression {
    /// Bits per stored (non-zero) weight value.
    pub data_bits: u32,
    /// Bits per run-length index accompanying each stored value.
    pub index_bits: u32,
}

impl WeightCompression {
    /// The EIE-flavored default for a 16-bit datapath: 16 data bits plus
    /// a 4-bit zero-run index.
    pub fn eie_default() -> Self {
        Self { data_bits: 16, index_bits: 4 }
    }

    /// Compressed size in bytes of `elements` weights of which
    /// `zero_fraction` are zero, given `raw_bytes_per_element` uncompressed
    /// bytes. Returns the raw size when compression does not pay off
    /// (the encoder falls back to dense storage per the usual format
    /// escape hatch).
    ///
    /// # Panics
    ///
    /// Panics if `zero_fraction` is outside `0.0..=1.0`.
    pub fn compressed_bytes(
        &self,
        elements: u64,
        zero_fraction: f64,
        raw_bytes_per_element: u64,
    ) -> u64 {
        assert!((0.0..=1.0).contains(&zero_fraction), "zero fraction must be in 0..=1");
        let raw = elements * raw_bytes_per_element;
        let nonzero = (elements as f64 * (1.0 - zero_fraction)).ceil() as u64;
        let bits = nonzero * (self.data_bits + self.index_bits) as u64;
        let compressed = bits.div_ceil(8);
        compressed.min(raw)
    }

    /// Applies the encoding to a layer's DRAM traffic: weights shrink,
    /// activations are untouched.
    pub fn apply(
        &self,
        traffic: DramTraffic,
        weight_elements: u64,
        zero_fraction: f64,
        bytes_per_element: u64,
    ) -> DramTraffic {
        // Weight traffic may include re-fetches; scale the compressed
        // size by the same re-fetch factor.
        let raw_once = weight_elements * bytes_per_element;
        if raw_once == 0 {
            return traffic;
        }
        let refetch = traffic.weights / raw_once.max(1);
        let once = self.compressed_bytes(weight_elements, zero_fraction, bytes_per_element);
        DramTraffic { weights: once * refetch.max(1), ..traffic }
    }
}

impl Default for WeightCompression {
    fn default() -> Self {
        Self::eie_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forty_percent_zeros_save_a_quarter() {
        let c = WeightCompression::eie_default();
        // 1000 x 16-bit weights raw = 2000 B; 600 nonzero x 20 bits = 1500 B.
        assert_eq!(c.compressed_bytes(1000, 0.4, 2), 1500);
    }

    #[test]
    fn dense_weights_fall_back_to_raw() {
        let c = WeightCompression::eie_default();
        // 0% zeros: 20 bits/weight would be 25% bigger than raw -> raw.
        assert_eq!(c.compressed_bytes(1000, 0.0, 2), 2000);
    }

    #[test]
    fn all_zero_weights_compress_to_nothing() {
        let c = WeightCompression::eie_default();
        assert_eq!(c.compressed_bytes(1000, 1.0, 2), 0);
    }

    #[test]
    fn apply_touches_only_weights() {
        let c = WeightCompression::eie_default();
        let t = DramTraffic { input: 100, weights: 2000, output: 50 };
        let out = c.apply(t, 1000, 0.4, 2);
        assert_eq!(out.input, 100);
        assert_eq!(out.output, 50);
        assert_eq!(out.weights, 1500);
    }

    #[test]
    fn refetch_factor_is_preserved() {
        let c = WeightCompression::eie_default();
        // Weights fetched three times.
        let t = DramTraffic { input: 0, weights: 6000, output: 0 };
        let out = c.apply(t, 1000, 0.4, 2);
        assert_eq!(out.weights, 3 * 1500);
    }

    #[test]
    fn zero_weight_layers_are_untouched() {
        let c = WeightCompression::eie_default();
        let t = DramTraffic { input: 10, weights: 0, output: 10 };
        assert_eq!(c.apply(t, 0, 0.4, 2), t);
    }

    #[test]
    #[should_panic(expected = "zero fraction")]
    fn bad_fraction_rejected() {
        let _ = WeightCompression::eie_default().compressed_bytes(10, 1.5, 2);
    }
}
