//! Measured per-layer weight sparsity.
//!
//! The paper "conservatively model[s] the sparsity ... of each DNN layer
//! at 40%". With a concrete weight store we can do better: measure each
//! layer's actual zero fraction and feed it to the OS dataflow's
//! zero-skipping broadcast, layer by layer.

use std::collections::HashMap;

use codesign_arch::{AcceleratorConfig, Dataflow, DataflowPolicy};
use codesign_dnn::Network;
use codesign_tensor::WeightStore;

use crate::engine::{compare_dataflows, simulate_layer, SimOptions};
use crate::os::SparsityModel;
use crate::perf::NetworkPerf;

/// Per-layer zero-weight fractions, keyed by layer name.
pub type SparsityMap = HashMap<String, f64>;

/// Measures each compute layer's zero-weight fraction from a weight
/// store. Layers without weights are omitted (the simulator falls back
/// to the uniform model for them).
pub fn measure_sparsity(network: &Network, weights: &WeightStore) -> SparsityMap {
    network
        .compute_layers()
        .filter_map(|l| Some((l.name.clone(), weights.get(&l.name)?.zero_fraction())))
        .collect()
}

fn layer_options(base: SimOptions, zero_fraction: Option<f64>) -> SimOptions {
    match zero_fraction {
        Some(z) => SimOptions {
            os: base.os.with_sparsity(SparsityModel {
                zero_fraction: z,
                exploit: base.os.sparsity.exploit,
            }),
            ..base
        },
        None => base,
    }
}

/// Simulates a network with per-layer measured sparsity instead of the
/// uniform 40 % assumption.
pub fn simulate_network_measured(
    network: &Network,
    cfg: &AcceleratorConfig,
    policy: DataflowPolicy,
    opts: SimOptions,
    sparsity: &SparsityMap,
) -> NetworkPerf {
    let layers = network
        .layers()
        .iter()
        .map(|layer| {
            let opts = layer_options(opts, sparsity.get(&layer.name).copied());
            match policy {
                DataflowPolicy::Fixed(d) => simulate_layer(layer, cfg, opts, d),
                DataflowPolicy::PerLayer => {
                    let (ws, os, best) = compare_dataflows(layer, cfg, opts);
                    match best {
                        Dataflow::WeightStationary => ws,
                        Dataflow::OutputStationary => os,
                    }
                }
            }
        })
        .collect();
    NetworkPerf { name: network.name().to_owned(), layers }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::simulate_network;
    use codesign_dnn::{NetworkBuilder, Shape};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_net() -> Network {
        NetworkBuilder::new("t", Shape::new(16, 28, 28))
            .conv("c1", 32, 3, 1, 1)
            .conv("c2", 32, 3, 1, 1)
            .max_pool("p", 2, 2)
            .finish()
            .unwrap()
    }

    #[test]
    fn measured_map_covers_compute_layers() {
        let net = small_net();
        let mut rng = StdRng::seed_from_u64(4);
        let ws = WeightStore::random(&net, 8, 0.4, &mut rng);
        let map = measure_sparsity(&net, &ws);
        assert_eq!(map.len(), 2);
        for z in map.values() {
            assert!((z - 0.4).abs() < 0.05, "measured {z}");
        }
    }

    #[test]
    fn forty_percent_weights_match_the_uniform_model_closely() {
        let net = small_net();
        let mut rng = StdRng::seed_from_u64(5);
        let store = WeightStore::random(&net, 8, 0.4, &mut rng);
        let map = measure_sparsity(&net, &store);
        let cfg = AcceleratorConfig::paper_default();
        let opts = SimOptions::paper_default();
        let uniform =
            simulate_network(&net, &cfg, DataflowPolicy::Fixed(Dataflow::OutputStationary), opts);
        let measured = simulate_network_measured(
            &net,
            &cfg,
            DataflowPolicy::Fixed(Dataflow::OutputStationary),
            opts,
            &map,
        );
        let ratio = measured.total_cycles() as f64 / uniform.total_cycles() as f64;
        assert!((ratio - 1.0).abs() < 0.05, "ratio = {ratio}");
    }

    #[test]
    fn dense_weights_slow_the_os_dataflow_down() {
        let net = small_net();
        let mut rng = StdRng::seed_from_u64(6);
        let store = WeightStore::random(&net, 8, 0.0, &mut rng);
        let map = measure_sparsity(&net, &store);
        let cfg = AcceleratorConfig::paper_default();
        let opts = SimOptions::paper_default();
        let assumed_sparse =
            simulate_network(&net, &cfg, DataflowPolicy::Fixed(Dataflow::OutputStationary), opts);
        let measured = simulate_network_measured(
            &net,
            &cfg,
            DataflowPolicy::Fixed(Dataflow::OutputStationary),
            opts,
            &map,
        );
        assert!(measured.total_cycles() > assumed_sparse.total_cycles());
    }

    #[test]
    fn layers_without_weights_fall_back_to_uniform() {
        let net = small_net();
        let cfg = AcceleratorConfig::paper_default();
        let opts = SimOptions::paper_default();
        let empty = SparsityMap::new();
        let fallback =
            simulate_network_measured(&net, &cfg, DataflowPolicy::PerLayer, opts, &empty);
        let uniform = simulate_network(&net, &cfg, DataflowPolicy::PerLayer, opts);
        assert_eq!(fallback.total_cycles(), uniform.total_cycles());
    }
}
