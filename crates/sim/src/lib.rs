//! # codesign-sim — the Squeezelerator simulator
//!
//! Reimplementation of the paper's "performance estimator": per-layer
//! cycle, utilization, and energy modeling of an N×N-PE spatial
//! accelerator that can run each layer in weight-stationary (WS) or
//! output-stationary (OS) dataflow.
//!
//! Three cooperating layers of fidelity:
//!
//! * **analytic model** ([`ws`], [`os`], [`engine`]) — closed-form cycle
//!   and access counts; drives every table/figure reproduction;
//! * **cycle-stepped machine** ([`cycle`]) — an independent state-machine
//!   implementation stepped one cycle at a time, used to validate the
//!   analytic counts;
//! * **functional executors** ([`functional`]) — run the same WS/OS
//!   schedules over real tensors and must bit-match the reference
//!   convolution from `codesign-tensor`.
//!
//! # Examples
//!
//! ```
//! use codesign_arch::{AcceleratorConfig, DataflowPolicy};
//! use codesign_dnn::zoo;
//! use codesign_sim::{simulate_network, SimOptions};
//!
//! let cfg = AcceleratorConfig::paper_default();
//! let net = zoo::squeezenet_v1_0();
//! let perf = simulate_network(&net, &cfg, DataflowPolicy::PerLayer, SimOptions::default());
//! assert!(perf.total_cycles() > 0);
//! ```

#![warn(missing_docs)]
// The worker pool (and the workspace's one documented `unsafe` block)
// moved to the `codesign-parallel` crate; this crate is unsafe-free.
#![forbid(unsafe_code)]

pub mod batch;
pub mod bounds;
pub mod cache;
pub mod cancel;
pub mod compression;
pub mod cycle;
pub mod dram;
pub mod engine;
pub mod error;
pub mod event;
pub mod faultinject;
pub mod fsio;
pub mod functional;
pub mod multicore;
pub mod nlr;
pub mod os;
pub mod parallel;
pub mod perf;
pub mod program;
pub mod rs;
pub mod simd;
pub mod snapshot;
pub mod sparsity;
pub mod taxonomy;
pub mod tiling;
pub mod validate;
pub mod workload;
pub mod ws;

pub use batch::{
    simulate_layer_batched, simulate_network_batched, try_simulate_layer_batched,
    try_simulate_network_batched,
};
pub use bounds::{layer_traffic_floor, network_traffic_floor};
pub use cache::{CacheStats, SimCache};
pub use cancel::CancelToken;
pub use compression::WeightCompression;
pub use engine::{
    aggregate_cache_stats, compare_dataflows, record_network, simulate_conv, simulate_layer,
    simulate_network, try_compare_dataflows, try_simulate_conv, try_simulate_layer,
    try_simulate_network, SimOptions, Simulator, TrafficModel,
};
pub use error::{SimError, SimResult};
pub use event::{
    simulate_layer_event, simulate_network_event, try_simulate_layer_event,
    try_simulate_network_event, try_simulate_network_event_mode, EventLayerResult, EventResult,
    TimeSkip,
};
pub use faultinject::{run_corpus, CaseOutcome, FaultCase, FaultReport};
pub use fsio::{
    atomic_write, generation_path, recover_cache, scan_generations, write_generation,
    LoadedSnapshot, RefusedSnapshot, SnapshotRecovery,
};
pub use functional::{
    conv2d_os, conv2d_os_jobs, conv2d_os_spec, conv2d_ws, conv2d_ws_jobs, conv2d_ws_spec, fc_ws,
    fc_ws_jobs, fc_ws_spec, run_network_on_accelerator, run_network_on_accelerator_jobs,
};
pub use multicore::{
    schedule_branch_parallel, simulate_network_multicore, try_simulate_network_multicore,
    BranchParallelResult, MultiCoreConfig,
};
pub use nlr::simulate_nlr;
pub use os::{simulate_os, OsModelOptions, SparsityModel};
pub use parallel::{
    max_jobs, par_map, par_map_catch, par_map_catch_range, par_map_range, pool_size, resolve_jobs,
    MAX_POOL_WORKERS,
};
pub use perf::{ComputePerf, LayerPerf, NetworkPerf, PhaseCycles};
pub use program::{Command, LayerProgram, Program};
pub use rs::simulate_rs;
pub use snapshot::{SnapshotError, SnapshotStats, SNAPSHOT_VERSION};
pub use sparsity::{measure_sparsity, simulate_network_measured, SparsityMap};
pub use taxonomy::{compare_taxonomy, try_compare_taxonomy, TaxonomyComparison, TaxonomyDataflow};
pub use tiling::{
    optimize_tiling, optimize_tiling_exhaustive, traffic_lower_bound, LoopOrder, Tiling, TilingPlan,
};
pub use validate::{validate_network, validate_network_all, ValidationIssue};
pub use workload::{ConvWork, WorkKind};
pub use ws::simulate_ws;
