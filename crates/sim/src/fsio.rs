//! Crash-safe file output and generational snapshot persistence.
//!
//! Two layers of defense against torn and stale files:
//!
//! * [`atomic_write`] — every output file (cache snapshots, traces,
//!   metrics, bench reports) is written to a temporary sibling, fsynced,
//!   and renamed into place, so no path is ever observable half-written.
//!   A `kill -9` at any byte offset leaves either the old file or the
//!   new one, never a hybrid.
//! * generational snapshots — a long-running server autosaves its cache
//!   into rotating `<base>.gen-K` files ([`write_generation`]) and
//!   recovers at boot by scanning the generations newest-first
//!   ([`recover_cache`]), warm-starting from the newest snapshot that
//!   validates (magic, version, checksum, record structure). Torn or
//!   corrupt generations are reported and skipped — never trusted,
//!   never fatal while an older valid generation survives.
//!
//! Rename-based atomicity means our *own* writer cannot produce a torn
//! generation; the recovery scan defends against everything else:
//! non-atomic writers, filesystem corruption, truncation in transit,
//! and operators editing files by hand.

use std::fs::{self, File};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::engine::Simulator;
use crate::snapshot::SnapshotStats;

/// Distinguishes concurrent in-process writers of the same target path;
/// the pid in the temp name distinguishes concurrent processes.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// Writes `bytes` to `path` atomically: temp sibling → `fsync` →
/// `rename`. On any failure the temp file is removed and `path` is left
/// exactly as it was (either the previous contents or absent).
///
/// # Errors
///
/// Propagates the underlying I/O error (create, write, sync, or rename).
pub fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let file_name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
    let tmp = path.with_file_name(format!(
        ".{}.tmp-{}-{}",
        file_name.to_string_lossy(),
        std::process::id(),
        TMP_SEQ.fetch_add(1, Ordering::Relaxed),
    ));
    let result = (|| {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        // Flush file contents to stable storage *before* the rename
        // publishes the path: rename-then-crash must not expose a file
        // whose data never hit disk.
        f.sync_all()?;
        drop(f);
        fs::rename(&tmp, path)?;
        // Best-effort directory sync so the rename itself is durable.
        // Not all platforms allow opening a directory; the rename is
        // still atomic without it.
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            if let Ok(d) = File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

/// The path of generation `generation` for snapshot base `base`:
/// `<base>.gen-K`.
pub fn generation_path(base: &Path, generation: u64) -> PathBuf {
    let name = base.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default();
    base.with_file_name(format!("{name}.gen-{generation}"))
}

/// Every `<base>.gen-K` file next to `base`, sorted by ascending
/// generation number. Files whose suffix is not a whole number are not
/// generations and are ignored. A missing directory scans as empty.
pub fn scan_generations(base: &Path) -> Vec<(u64, PathBuf)> {
    let dir = match base.parent() {
        Some(d) if !d.as_os_str().is_empty() => d.to_path_buf(),
        _ => PathBuf::from("."),
    };
    let Some(file_name) = base.file_name() else {
        return Vec::new();
    };
    let prefix = format!("{}.gen-", file_name.to_string_lossy());
    let Ok(entries) = fs::read_dir(&dir) else {
        return Vec::new();
    };
    let mut generations: Vec<(u64, PathBuf)> = entries
        .filter_map(Result::ok)
        .filter_map(|entry| {
            let name = entry.file_name().to_string_lossy().into_owned();
            let gen: u64 = name.strip_prefix(&prefix)?.parse().ok()?;
            Some((gen, entry.path()))
        })
        .collect();
    generations.sort_unstable_by_key(|(generation, _)| *generation);
    generations
}

/// Atomically writes snapshot `bytes` as generation `generation` of
/// `base`, then prunes the oldest generations so at most `keep` remain.
/// Returns the generation file's path.
///
/// # Errors
///
/// Propagates the [`atomic_write`] error; pruning failures are ignored
/// (a leftover old generation is harmless — it is older than the one
/// just written and will be pruned by a later rotation).
pub fn write_generation(
    base: &Path,
    generation: u64,
    bytes: &[u8],
    keep: usize,
) -> io::Result<PathBuf> {
    let path = generation_path(base, generation);
    atomic_write(&path, bytes)?;
    let generations = scan_generations(base);
    if generations.len() > keep {
        for (_, old) in &generations[..generations.len() - keep] {
            let _ = fs::remove_file(old);
        }
    }
    Ok(path)
}

/// One snapshot candidate the recovery scan refused, with the typed
/// reason it was not trusted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RefusedSnapshot {
    /// The refused file.
    pub path: PathBuf,
    /// Why it was refused (checksum mismatch, truncation, bad magic,
    /// unreadable, ...).
    pub reason: String,
}

/// The snapshot the recovery scan warm-started from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadedSnapshot {
    /// The file that validated and loaded.
    pub path: PathBuf,
    /// Its generation number (`None` when the plain base file loaded).
    pub generation: Option<u64>,
    /// What the load brought in.
    pub stats: SnapshotStats,
}

/// Outcome of a generation-scan recovery: at most one loaded snapshot
/// plus every newer candidate that had to be refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotRecovery {
    /// The newest candidate that validated, if any did.
    pub loaded: Option<LoadedSnapshot>,
    /// Candidates refused before (or instead of) the loaded one, newest
    /// first. Candidates older than the loaded snapshot are never read.
    pub refused: Vec<RefusedSnapshot>,
}

/// Warm-starts `sim` from the newest valid snapshot among `base`'s
/// generation files and `base` itself.
///
/// Candidates are tried newest-first: `<base>.gen-K` by descending `K`,
/// then the plain `base` file. The first candidate that validates
/// end-to-end (magic, version, length, checksum, record tags) is loaded
/// and the scan stops; every candidate refused on the way is recorded
/// with its reason. A refused snapshot is *never* partially loaded —
/// [`crate::cache::SimCache::load_snapshot`] validates everything before
/// inserting anything.
///
/// # Errors
///
/// `Err` only when there is nothing to recover at all: neither `base`
/// nor any generation file exists. Corrupt-but-present candidates are
/// reported in [`SnapshotRecovery::refused`], not as an `Err`, so one
/// torn autosave can never mask an older valid generation.
pub fn recover_cache(sim: &Simulator, base: &Path) -> io::Result<SnapshotRecovery> {
    let mut candidates: Vec<(Option<u64>, PathBuf)> = scan_generations(base)
        .into_iter()
        .rev()
        .map(|(generation, path)| (Some(generation), path))
        .collect();
    if base.exists() {
        candidates.push((None, base.to_path_buf()));
    }
    if candidates.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!("no snapshot or generation files at {}", base.display()),
        ));
    }

    let mut refused = Vec::new();
    for (generation, path) in candidates {
        let bytes = match fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) => {
                refused.push(RefusedSnapshot { path, reason: format!("unreadable: {e}") });
                continue;
            }
        };
        match sim.load_cache_snapshot(&bytes) {
            Ok(stats) => {
                return Ok(SnapshotRecovery {
                    loaded: Some(LoadedSnapshot { path, generation, stats }),
                    refused,
                })
            }
            Err(e) => refused.push(RefusedSnapshot { path, reason: e.to_string() }),
        }
    }
    Ok(SnapshotRecovery { loaded: None, refused })
}

#[cfg(test)]
mod tests {
    use super::*;

    use codesign_arch::{AcceleratorConfig, DataflowPolicy};
    use codesign_dnn::zoo;

    use crate::engine::SimOptions;

    /// A unique scratch directory per test, removed on drop.
    struct Scratch(PathBuf);

    impl Scratch {
        fn new(tag: &str) -> Self {
            let dir =
                std::env::temp_dir().join(format!("codesign-fsio-{tag}-{}", std::process::id()));
            fs::create_dir_all(&dir).expect("scratch dir");
            Scratch(dir)
        }

        fn path(&self, name: &str) -> PathBuf {
            self.0.join(name)
        }
    }

    impl Drop for Scratch {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    /// A snapshot with real cache entries (tiny-darknet on the paper
    /// default config).
    fn populated_snapshot() -> Vec<u8> {
        let sim = Simulator::new();
        let cfg = AcceleratorConfig::paper_default();
        sim.try_simulate_network(
            &zoo::tiny_darknet(),
            &cfg,
            DataflowPolicy::PerLayer,
            SimOptions::paper_default(),
        )
        .expect("tiny-darknet simulates");
        let snap = sim.cache_snapshot().expect("cached simulator snapshots");
        assert!(snap.len() > 64, "snapshot has entries");
        snap
    }

    #[test]
    fn atomic_write_round_trips_and_replaces() {
        let scratch = Scratch::new("atomic");
        let path = scratch.path("out.bin");
        atomic_write(&path, b"first").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"first");
        atomic_write(&path, b"second, longer contents").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"second, longer contents");
        // No temp litter left behind.
        let names: Vec<String> = fs::read_dir(&scratch.0)
            .unwrap()
            .filter_map(Result::ok)
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, vec!["out.bin".to_owned()], "{names:?}");
    }

    #[test]
    fn atomic_write_failure_leaves_the_old_file() {
        let scratch = Scratch::new("atomic-fail");
        let path = scratch.path("keep.bin");
        atomic_write(&path, b"precious").unwrap();
        // Writing *into* a path whose parent is a regular file must fail
        // without touching anything.
        let bad = path.join("impossible");
        assert!(atomic_write(&bad, b"x").is_err());
        assert_eq!(fs::read(&path).unwrap(), b"precious");
    }

    #[test]
    fn generation_paths_scan_sorted_and_ignore_strangers() {
        let scratch = Scratch::new("scan");
        let base = scratch.path("cache.snap");
        assert!(scan_generations(&base).is_empty(), "empty dir scans empty");
        for generation in [3u64, 1, 12] {
            atomic_write(&generation_path(&base, generation), b"g").unwrap();
        }
        // Non-generation siblings are ignored.
        atomic_write(&scratch.path("cache.snap.gen-x"), b"?").unwrap();
        atomic_write(&scratch.path("other.snap.gen-4"), b"?").unwrap();
        atomic_write(&base, b"base").unwrap();
        let gens: Vec<u64> = scan_generations(&base).into_iter().map(|(g, _)| g).collect();
        assert_eq!(gens, vec![1, 3, 12], "numeric sort, not lexicographic");
    }

    #[test]
    fn write_generation_rotates_keeping_the_newest() {
        let scratch = Scratch::new("rotate");
        let base = scratch.path("cache.snap");
        for generation in 1..=5u64 {
            write_generation(&base, generation, b"snapshot", 3).unwrap();
        }
        let gens: Vec<u64> = scan_generations(&base).into_iter().map(|(g, _)| g).collect();
        assert_eq!(gens, vec![3, 4, 5]);
    }

    #[test]
    fn recovery_prefers_the_newest_valid_generation() {
        let scratch = Scratch::new("recover-newest");
        let base = scratch.path("cache.snap");
        let snap = populated_snapshot();
        write_generation(&base, 1, &snap, 8).unwrap();
        write_generation(&base, 2, &snap, 8).unwrap();
        let rec = recover_cache(&Simulator::new(), &base).unwrap();
        let loaded = rec.loaded.expect("a valid generation loads");
        assert_eq!(loaded.generation, Some(2));
        assert!(loaded.stats.entries() > 0);
        assert!(rec.refused.is_empty());
    }

    #[test]
    fn torn_newest_generation_is_refused_and_older_one_loads() {
        let scratch = Scratch::new("recover-torn");
        let base = scratch.path("cache.snap");
        let snap = populated_snapshot();
        write_generation(&base, 1, &snap, 8).unwrap();
        // Generation 2 torn at every byte offset: whatever prefix a
        // crashed (non-atomic) writer left behind, recovery must refuse
        // it and warm-start from generation 1.
        for cut in [0, 1, 7, 8, 11, 12, snap.len() / 2, snap.len() - 1] {
            atomic_write(&generation_path(&base, 2), &snap[..cut]).unwrap();
            let sim = Simulator::new();
            let rec = recover_cache(&sim, &base).unwrap();
            let loaded = rec.loaded.expect("generation 1 still loads");
            assert_eq!(loaded.generation, Some(1), "cut={cut}");
            assert_eq!(rec.refused.len(), 1, "cut={cut}");
            assert!(rec.refused[0].path.ends_with("cache.snap.gen-2"));
        }
    }

    #[test]
    fn bit_flipped_generation_is_refused_by_checksum() {
        let scratch = Scratch::new("recover-flip");
        let base = scratch.path("cache.snap");
        let snap = populated_snapshot();
        write_generation(&base, 1, &snap, 8).unwrap();
        let mut flipped = snap.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x10;
        atomic_write(&generation_path(&base, 2), &flipped).unwrap();
        let rec = recover_cache(&Simulator::new(), &base).unwrap();
        assert_eq!(rec.loaded.expect("gen 1 loads").generation, Some(1));
        assert_eq!(rec.refused.len(), 1);
        assert!(rec.refused[0].reason.contains("checksum"), "{}", rec.refused[0].reason);
    }

    #[test]
    fn all_generations_torn_leaves_nothing_loaded() {
        let scratch = Scratch::new("recover-all-torn");
        let base = scratch.path("cache.snap");
        let snap = populated_snapshot();
        atomic_write(&generation_path(&base, 1), &snap[..snap.len() / 3]).unwrap();
        atomic_write(&generation_path(&base, 2), b"").unwrap();
        let rec = recover_cache(&Simulator::new(), &base).unwrap();
        assert_eq!(rec.loaded, None);
        assert_eq!(rec.refused.len(), 2, "{:?}", rec.refused);
    }

    #[test]
    fn zero_length_generation_is_skipped() {
        let scratch = Scratch::new("recover-empty");
        let base = scratch.path("cache.snap");
        let snap = populated_snapshot();
        write_generation(&base, 4, &snap, 8).unwrap();
        atomic_write(&generation_path(&base, 5), b"").unwrap();
        let rec = recover_cache(&Simulator::new(), &base).unwrap();
        assert_eq!(rec.loaded.expect("gen 4 loads").generation, Some(4));
        assert_eq!(rec.refused.len(), 1);
    }

    #[test]
    fn base_file_is_the_fallback_candidate() {
        let scratch = Scratch::new("recover-base");
        let base = scratch.path("cache.snap");
        let snap = populated_snapshot();
        atomic_write(&base, &snap).unwrap();
        atomic_write(&generation_path(&base, 9), &snap[..9]).unwrap();
        let rec = recover_cache(&Simulator::new(), &base).unwrap();
        let loaded = rec.loaded.expect("base file loads");
        assert_eq!(loaded.generation, None);
        assert_eq!(rec.refused.len(), 1);
    }

    #[test]
    fn nothing_to_recover_is_an_io_error() {
        let scratch = Scratch::new("recover-nothing");
        let base = scratch.path("absent.snap");
        let err = recover_cache(&Simulator::new(), &base).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
    }

    #[test]
    fn recovered_cache_answers_without_misses() {
        let scratch = Scratch::new("recover-warm");
        let base = scratch.path("cache.snap");
        write_generation(&base, 1, &populated_snapshot(), 8).unwrap();
        let sim = Simulator::new();
        recover_cache(&sim, &base).unwrap().loaded.expect("loads");
        let cfg = AcceleratorConfig::paper_default();
        sim.try_simulate_network(
            &zoo::tiny_darknet(),
            &cfg,
            DataflowPolicy::PerLayer,
            SimOptions::paper_default(),
        )
        .expect("simulates");
        let stats = sim.stats();
        assert_eq!(stats.misses, 0, "warm start answers purely from the snapshot: {stats}");
        assert!(stats.hits > 0);
    }
}
