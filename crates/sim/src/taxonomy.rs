//! The full §3.2 dataflow taxonomy, side by side.
//!
//! The paper's Squeezelerator chooses between **two** dataflows (WS, OS).
//! The taxonomy it cites has four — WS, OS, RS, NLR. This module
//! evaluates all four per layer and asks the design question the paper
//! leaves open: how much would a hybrid that also offered RS and NLR
//! gain over the shipped two-dataflow hybrid? (Answer, reproduced by the
//! report's T3 table: nothing at all on SqueezeNet v1.0 — the network
//! the accelerator was designed for — and ≤ 5 % on the SqueezeNet/
//! SqueezeNext family, evidence *for* the paper's choice to build only
//! two. RS would matter (~16 %) for depthwise-heavy MobileNet and for
//! AlexNet's mid-size dense stacks.)

use std::fmt;

use codesign_arch::AcceleratorConfig;
use codesign_dnn::{Layer, Network};

use crate::dram::combine_cycles;
use crate::engine::SimOptions;
use crate::error::{SimError, SimResult};
use crate::nlr::simulate_nlr;
use crate::os::simulate_os;
use crate::perf::ComputePerf;
use crate::rs::simulate_rs;
use crate::simd::simulate_simd;
use crate::workload::ConvWork;
use crate::ws::simulate_ws;

/// All four taxonomy dataflows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TaxonomyDataflow {
    /// Weight stationary.
    Ws,
    /// Output stationary.
    Os,
    /// Row stationary (Eyeriss).
    Rs,
    /// No local reuse (DianNao).
    Nlr,
}

impl TaxonomyDataflow {
    /// All four, in §3.2's order.
    pub const ALL: [TaxonomyDataflow; 4] =
        [TaxonomyDataflow::Ws, TaxonomyDataflow::Os, TaxonomyDataflow::Rs, TaxonomyDataflow::Nlr];

    /// Report tag.
    pub const fn tag(&self) -> &'static str {
        match self {
            TaxonomyDataflow::Ws => "WS",
            TaxonomyDataflow::Os => "OS",
            TaxonomyDataflow::Rs => "RS",
            TaxonomyDataflow::Nlr => "NLR",
        }
    }
}

impl fmt::Display for TaxonomyDataflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tag())
    }
}

/// Cycles for one layer under all four dataflows at once. Traffic is
/// dataflow independent, so the (expensive) tiling search runs once per
/// distinct [`ConvWork`] shape and its DRAM cycles are combined with all
/// four compute walks; repeated shapes (fire modules, depthwise ladders)
/// hit the `memo` instead of re-deriving anything.
fn layer_cycles_all(
    layer: &Layer,
    cfg: &AcceleratorConfig,
    opts: SimOptions,
    memo: &mut std::collections::HashMap<ConvWork, [u64; 4]>,
) -> SimResult<[u64; 4]> {
    match ConvWork::from_layer(layer) {
        Some(work) => {
            if let Some(&per) = memo.get(&work) {
                return Ok(per);
            }
            // Validation precedes the cycle models (RS and NLR assume
            // well-formed work, just like WS and OS).
            work.validate().map_err(|e| e.for_layer(&layer.name))?;
            let traffic = opts.layer_traffic(&work, cfg).map_err(|e| e.for_layer(&layer.name))?;
            let dram = cfg.dram().transfer_cycles(traffic.total());
            let per = [
                simulate_ws(&work, cfg),
                simulate_os(&work, cfg, opts.os),
                simulate_rs(&work, cfg),
                simulate_nlr(&work, cfg),
            ]
            .map(|perf| combine_cycles(perf.cycles(), dram, cfg));
            memo.insert(work, per);
            Ok(per)
        }
        None => {
            let compute: ComputePerf =
                simulate_simd(layer, cfg).map_err(|e: SimError| e.for_layer(&layer.name))?;
            let bytes = (layer.input.elements() + layer.output.elements()) as u64
                * cfg.bytes_per_element() as u64;
            let cycles = combine_cycles(compute.cycles(), cfg.dram().transfer_cycles(bytes), cfg);
            Ok([cycles; 4])
        }
    }
}

/// Whole-network cycles under each fixed dataflow plus the two- and
/// four-way per-layer hybrids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaxonomyComparison {
    /// Network name.
    pub network: String,
    /// Total cycles per fixed dataflow, indexed like
    /// [`TaxonomyDataflow::ALL`].
    pub fixed: [u64; 4],
    /// The paper's hybrid: per-layer min(WS, OS).
    pub hybrid2: u64,
    /// The hypothetical four-way hybrid: per-layer min over all four.
    pub hybrid4: u64,
    /// How many layers the four-way hybrid schedules differently
    /// (i.e. picks RS or NLR).
    pub extra_choices: usize,
}

impl TaxonomyComparison {
    /// Total cycles under one fixed dataflow.
    pub fn fixed_cycles(&self, d: TaxonomyDataflow) -> u64 {
        let idx = match d {
            TaxonomyDataflow::Ws => 0,
            TaxonomyDataflow::Os => 1,
            TaxonomyDataflow::Rs => 2,
            TaxonomyDataflow::Nlr => 3,
        };
        self.fixed[idx]
    }

    /// Speedup of the four-way hybrid over the paper's two-way hybrid.
    pub fn hybrid4_gain(&self) -> f64 {
        self.hybrid2 as f64 / self.hybrid4 as f64
    }
}

/// Evaluates the full taxonomy for one network.
///
/// # Errors
///
/// The first [`SimError`] any layer surfaces, attributed to that layer.
pub fn try_compare_taxonomy(
    network: &Network,
    cfg: &AcceleratorConfig,
    opts: SimOptions,
) -> SimResult<TaxonomyComparison> {
    let mut fixed = [0u64; 4];
    let mut hybrid2 = 0u64;
    let mut hybrid4 = 0u64;
    let mut extra_choices = 0usize;
    let mut memo = std::collections::HashMap::new();
    for layer in network.layers() {
        let per = layer_cycles_all(layer, cfg, opts, &mut memo)?;
        for (f, c) in fixed.iter_mut().zip(&per) {
            *f += c;
        }
        let two = per[0].min(per[1]);
        let four = per.iter().copied().fold(u64::MAX, u64::min);
        hybrid2 += two;
        hybrid4 += four;
        if layer.is_compute() && four < two {
            extra_choices += 1;
        }
    }
    Ok(TaxonomyComparison {
        network: network.name().to_owned(),
        fixed,
        hybrid2,
        hybrid4,
        extra_choices,
    })
}

/// Evaluates the full taxonomy for one network. Infallible wrapper over
/// [`try_compare_taxonomy`].
///
/// # Panics
///
/// Panics (through the crate's single panic site) if any layer is
/// degenerate or infeasible on this configuration.
pub fn compare_taxonomy(
    network: &Network,
    cfg: &AcceleratorConfig,
    opts: SimOptions,
) -> TaxonomyComparison {
    try_compare_taxonomy(network, cfg, opts).unwrap_or_else(|e| e.raise())
}

#[cfg(test)]
mod tests {
    use super::*;
    use codesign_dnn::zoo;

    fn setup() -> (AcceleratorConfig, SimOptions) {
        (AcceleratorConfig::paper_default(), SimOptions::paper_default())
    }

    #[test]
    fn hybrids_dominate_fixed_dataflows() {
        let (cfg, opts) = setup();
        for net in zoo::table_networks() {
            let t = compare_taxonomy(&net, &cfg, opts);
            for d in TaxonomyDataflow::ALL {
                assert!(t.hybrid4 <= t.fixed_cycles(d), "{} vs {d}", net.name());
            }
            assert!(t.hybrid4 <= t.hybrid2, "{}", net.name());
        }
    }

    #[test]
    fn two_dataflows_capture_most_of_the_benefit() {
        // The design question: what would adding RS and NLR buy?
        // Nothing on SqueezeNet v1.0 (the design target), <= 6% on the
        // rest of the SqueezeNet/SqueezeNext family — supporting the
        // two-dataflow design point. Depthwise-heavy MobileNet and
        // AlexNet's mid-size dense stacks would gain ~16% from RS.
        let (cfg, opts) = setup();
        for net in zoo::table_networks() {
            let t = compare_taxonomy(&net, &cfg, opts);
            let gain = t.hybrid4_gain();
            let bound = match net.name() {
                "SqueezeNet v1.0" => 1.001,
                "AlexNet" | "1.00-MobileNet-224" => 1.30,
                _ => 1.06,
            };
            assert!((1.0..bound).contains(&gain), "{}: hybrid4 gain {gain:.3}", net.name());
        }
    }

    #[test]
    fn nlr_starves_the_paper_array() {
        let (cfg, opts) = setup();
        let t = compare_taxonomy(&zoo::squeezenet_v1_0(), &cfg, opts);
        // NLR's port-bound supply makes it the worst fixed choice here.
        for d in [TaxonomyDataflow::Ws, TaxonomyDataflow::Os] {
            assert!(t.fixed_cycles(TaxonomyDataflow::Nlr) > t.fixed_cycles(d), "{d}");
        }
    }

    #[test]
    fn tags_are_stable() {
        assert_eq!(TaxonomyDataflow::ALL.map(|d| d.tag()), ["WS", "OS", "RS", "NLR"]);
    }
}
