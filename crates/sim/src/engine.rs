//! The layer- and network-level simulation driver: runs each layer under
//! a dataflow policy, folds in DRAM timing, and assembles whole-network
//! results.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use codesign_arch::{AcceleratorConfig, Dataflow, DataflowPolicy};
use codesign_dnn::{Layer, Network};
use codesign_trace::{Category, Tracer};

use crate::cache::{CacheStats, ComputeKey, SimCache, TrafficKey};
use crate::compression::WeightCompression;
use crate::dram::{combine_cycles, conv_traffic, simd_traffic};
use crate::error::{SimError, SimResult};
use crate::os::{simulate_os, OsModelOptions};
use crate::perf::{ComputePerf, LayerPerf, NetworkPerf};
use crate::simd::simulate_simd;
use crate::snapshot::{SnapshotError, SnapshotStats};
use crate::tiling::optimize_tiling;
use crate::workload::ConvWork;
use crate::ws::simulate_ws;

/// How per-layer DRAM traffic is derived.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TrafficModel {
    /// The documented closed-form approximation in [`crate::dram`].
    ClosedForm,
    /// The paper's tiling search ("the size of the tile and the order of
    /// loops that give the shortest execution time are selected").
    #[default]
    TilingSearch,
}

/// Simulation options shared by every experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimOptions {
    /// OS datapath model switches (sparsity, preload overlap, channel
    /// packing).
    pub os: OsModelOptions,
    /// DRAM traffic derivation.
    pub traffic: TrafficModel,
    /// Optional sparse weight encoding on the DMA path (`None` matches
    /// the paper, which streams dense weights).
    pub weight_compression: Option<WeightCompression>,
}

impl SimOptions {
    /// The paper's configuration: 40 % weight zeros skipped by OS,
    /// preload overlap and channel packing enabled, tiling search on,
    /// no weight compression.
    pub fn paper_default() -> Self {
        Self {
            os: OsModelOptions::paper_default(),
            traffic: TrafficModel::TilingSearch,
            weight_compression: None,
        }
    }

    /// The layer's DRAM traffic under these options.
    ///
    /// Fallible: the workload is validated first ([`ConvWork::validate`])
    /// and the tiling search reports infeasible buffers as
    /// [`SimError::InfeasibleTiling`] rather than guessing.
    pub(crate) fn layer_traffic(
        &self,
        work: &ConvWork,
        cfg: &AcceleratorConfig,
    ) -> SimResult<crate::dram::DramTraffic> {
        let raw = match self.traffic {
            TrafficModel::ClosedForm => {
                work.validate()?;
                conv_traffic(work, cfg)
            }
            TrafficModel::TilingSearch => optimize_tiling(work, cfg)?.traffic,
        };
        Ok(self.finish_traffic(raw, work, cfg))
    }

    /// Applies the optional weight compression to already-derived raw
    /// traffic. Lets consumers that have run the tiling search themselves
    /// (e.g. the event model's tile lowering) reuse its traffic without a
    /// second search.
    pub(crate) fn finish_traffic(
        &self,
        raw: crate::dram::DramTraffic,
        work: &ConvWork,
        cfg: &AcceleratorConfig,
    ) -> crate::dram::DramTraffic {
        match self.weight_compression {
            Some(c) => c.apply(
                raw,
                work.weight_elements(),
                self.os.sparsity.zero_fraction,
                cfg.bytes_per_element() as u64,
            ),
            None => raw,
        }
    }
}

impl Default for SimOptions {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Runs one convolution-shaped workload under a specific dataflow,
/// validating it first.
///
/// # Errors
///
/// [`SimError::InvalidWorkload`] / [`SimError::ArithmeticOverflow`] when
/// the workload fails [`ConvWork::validate`] — the gate that makes the
/// unchecked arithmetic inside the WS/OS cycle models safe.
pub fn try_simulate_conv(
    work: &ConvWork,
    cfg: &AcceleratorConfig,
    opts: SimOptions,
    dataflow: Dataflow,
) -> SimResult<ComputePerf> {
    work.validate()?;
    Ok(match dataflow {
        Dataflow::WeightStationary => simulate_ws(work, cfg),
        Dataflow::OutputStationary => simulate_os(work, cfg, opts.os),
    })
}

/// Runs one convolution-shaped workload under a specific dataflow.
/// Infallible wrapper over [`try_simulate_conv`]; panics (through the
/// crate's single panic site) on a degenerate workload.
pub fn simulate_conv(
    work: &ConvWork,
    cfg: &AcceleratorConfig,
    opts: SimOptions,
    dataflow: Dataflow,
) -> ComputePerf {
    try_simulate_conv(work, cfg, opts, dataflow).unwrap_or_else(|e| e.raise())
}

fn finish_layer(
    layer: &Layer,
    dataflow: Option<Dataflow>,
    mut compute: ComputePerf,
    dram_bytes: u64,
    cfg: &AcceleratorConfig,
) -> LayerPerf {
    let dram_cycles = cfg.dram().transfer_cycles(dram_bytes);
    let total_cycles = combine_cycles(compute.cycles(), dram_cycles, cfg);
    compute.accesses.dram += dram_bytes / cfg.bytes_per_element() as u64;
    let utilization = if total_cycles == 0 {
        0.0
    } else {
        compute.executed_macs as f64 / (total_cycles as f64 * cfg.pe_count() as f64)
    };
    LayerPerf {
        name: layer.name.clone(),
        dataflow,
        compute,
        dram_bytes,
        dram_cycles,
        total_cycles,
        utilization,
    }
}

/// Per-network deduplication memo: structurally identical layers (the
/// repeated fire/bottleneck blocks of SqueezeNet, SqueezeNext, and
/// MobileNet) map to the same `(ConvWork, Dataflow)` key, so each unique
/// layer shape is resolved once per network simulation — duplicates are
/// answered locally without even consulting the shared cache.
type LayerMemo = HashMap<(ConvWork, Dataflow), (ComputePerf, u64)>;

/// The memoizable part of one conv-shaped layer simulation: PE-array
/// work plus the DRAM traffic byte count (the layer name is re-attached
/// by the caller).
fn conv_layer_parts(
    work: &ConvWork,
    cfg: &AcceleratorConfig,
    opts: SimOptions,
    dataflow: Dataflow,
) -> SimResult<(ComputePerf, u64)> {
    let compute = try_simulate_conv(work, cfg, opts, dataflow)?;
    let traffic = opts.layer_traffic(work, cfg)?;
    Ok((compute, traffic.total()))
}

/// A simulation engine handle: the entry point every higher layer
/// (`codesign-core`'s DSE/co-design loops, the bench report, the CLI)
/// routes per-layer simulation through.
///
/// A `Simulator` optionally carries a shared, thread-safe, sharded
/// [`SimCache`] memoizing the cycle model and the DRAM traffic
/// derivation separately, each keyed by exactly the inputs that
/// influence it (see [`crate::cache`] for the keying) — one tiling
/// search serves both dataflows and every configuration sharing a
/// buffer size. On top of that, every network simulation deduplicates
/// structurally identical layers up front, so repeated fire/bottleneck
/// blocks resolve once per run. Cloning is cheap and shares the cache,
/// so one handle can fan out across the parallel sweep workers in
/// `codesign-core::dse`. Cached and uncached runs are bit-identical —
/// the cache only skips recomputation of deterministic functions.
///
/// # Examples
///
/// ```
/// use codesign_arch::{AcceleratorConfig, DataflowPolicy};
/// use codesign_dnn::zoo;
/// use codesign_sim::{SimOptions, Simulator};
///
/// let sim = Simulator::new();
/// let cfg = AcceleratorConfig::paper_default();
/// let opts = SimOptions::paper_default();
/// let net = zoo::squeezenet_v1_1();
/// let perf = sim.simulate_network(&net, &cfg, DataflowPolicy::PerLayer, opts);
/// assert!(perf.total_cycles() > 0);
/// // Traffic entries are dataflow-independent, so each unique layer's
/// // OS pass hit the entry its WS pass created.
/// assert!(sim.stats().hits > 0);
/// ```
///
/// A `Simulator` also carries a [`Tracer`] (disabled by default, so
/// tracing costs nothing unless requested). With an enabled tracer every
/// [`Simulator::simulate_network`] call publishes one track of per-layer
/// spans — duration in simulated cycles, with MACs, DRAM bytes/cycles,
/// phase breakdown, buffer occupancy, and cache-hit counters attached —
/// plus global `sim.*` counters. Tracing never changes simulation
/// results: the instrumented paths only *observe* values that are
/// computed anyway.
#[derive(Debug, Clone, Default)]
pub struct Simulator {
    cache: Option<Arc<SimCache>>,
    tracer: Tracer,
    cycles: Arc<AtomicU64>,
}

impl Simulator {
    /// A simulator with memoization enabled (an empty cache).
    pub fn new() -> Self {
        Self {
            cache: Some(Arc::new(SimCache::new())),
            tracer: Tracer::disabled(),
            cycles: Arc::new(AtomicU64::new(0)),
        }
    }

    /// A simulator that always recomputes — the baseline the determinism
    /// tests compare cached runs against.
    pub fn uncached() -> Self {
        Self { cache: None, tracer: Tracer::disabled(), cycles: Arc::new(AtomicU64::new(0)) }
    }

    /// A handle sharing this simulator's cache and tracer but carrying a
    /// fresh simulated-cycles odometer — the bench report forks one per
    /// experiment so per-experiment throughput can be attributed while
    /// memo entries stay shared.
    pub fn fork_counter(&self) -> Self {
        Self {
            cache: self.cache.clone(),
            tracer: self.tracer.clone(),
            cycles: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Total simulated cycles delivered through this handle (and its
    /// plain clones): the sum of `total_cycles` over every per-layer
    /// result returned, whether computed or answered from a memo.
    pub fn cycles_simulated(&self) -> u64 {
        self.cycles.load(Ordering::Relaxed)
    }

    /// Attaches a tracer; simulation spans and counters are recorded
    /// through it. Clones of this simulator share the tracer (and the
    /// cache), so parallel workers all feed one trace.
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// The attached tracer (disabled unless [`Simulator::with_tracer`]
    /// installed an enabled one).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Whether this handle memoizes.
    pub fn is_cached(&self) -> bool {
        self.cache.is_some()
    }

    /// Cache counters (all zero for an uncached simulator).
    pub fn stats(&self) -> CacheStats {
        self.cache.as_deref().map(SimCache::stats).unwrap_or_default()
    }

    /// Drops all cached entries and resets the counters.
    pub fn clear_cache(&self) {
        if let Some(cache) = self.cache.as_deref() {
            cache.clear();
        }
    }

    /// Whether this handle and `other` memoize through the same shared
    /// [`SimCache`] — true for clones and [`Simulator::fork_counter`]
    /// forks of one another, false for independently-built simulators
    /// (and for any uncached handle).
    pub fn shares_cache_with(&self, other: &Simulator) -> bool {
        match (&self.cache, &other.cache) {
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }

    /// Serializes the shared cache into a snapshot (see
    /// [`crate::snapshot`] for the format).
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Uncached`] when this handle does not memoize.
    pub fn cache_snapshot(&self) -> Result<Vec<u8>, SnapshotError> {
        self.cache.as_deref().map(SimCache::to_snapshot).ok_or(SnapshotError::Uncached)
    }

    /// Warm-starts the shared cache from snapshot bytes. Preloaded
    /// entries do not touch the hit/miss counters, so subsequent runs
    /// report pure hits — exactly as if an earlier run in this process
    /// had populated the cache.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Uncached`] when this handle does not memoize;
    /// otherwise any validation error from [`SimCache::load_snapshot`]
    /// (the cache is untouched on error).
    pub fn load_cache_snapshot(&self, bytes: &[u8]) -> Result<SnapshotStats, SnapshotError> {
        let cache = self.cache.as_deref().ok_or(SnapshotError::Uncached)?;
        cache.load_snapshot(bytes)
    }

    /// Bumps the `sim.error.<kind>` counter for a surfaced error, so
    /// traced sweeps expose *what kinds* of failures their space
    /// produced. Returns the error for `map_err` chaining.
    fn note_error(&self, e: SimError) -> SimError {
        if self.tracer.is_enabled() {
            self.tracer.add_counter(&format!("sim.error.{}", e.kind()), 1);
        }
        e
    }

    /// Simulates one layer under a forced dataflow (non-PE layers always
    /// take the SIMD path, regardless of `dataflow`).
    ///
    /// # Errors
    ///
    /// Any [`SimError`], attributed to the layer by name. With an
    /// enabled tracer, a surfaced error also bumps the matching
    /// `sim.error.<kind>` counter.
    pub fn try_simulate_layer(
        &self,
        layer: &Layer,
        cfg: &AcceleratorConfig,
        opts: SimOptions,
        dataflow: Dataflow,
    ) -> SimResult<LayerPerf> {
        Ok(self.try_simulate_layer_flagged(layer, cfg, opts, dataflow, None)?.0)
    }

    /// Simulates one layer under a forced dataflow (non-PE layers always
    /// take the SIMD path, regardless of `dataflow`). Infallible wrapper
    /// over [`Simulator::try_simulate_layer`].
    pub fn simulate_layer(
        &self,
        layer: &Layer,
        cfg: &AcceleratorConfig,
        opts: SimOptions,
        dataflow: Dataflow,
    ) -> LayerPerf {
        self.try_simulate_layer(layer, cfg, opts, dataflow).unwrap_or_else(|e| e.raise())
    }

    /// [`Simulator::try_simulate_layer`] plus a flag telling whether the
    /// result was answered from the per-network dedup memo, and an
    /// optional [`LayerMemo`] consulted *before* the shared cache so
    /// duplicate layer shapes within one network resolve locally. The
    /// flag deliberately ignores shared-cache hits: whether another sweep
    /// point already populated a shared entry is a race, while the dedup
    /// outcome is a pure function of the layer sequence — so the
    /// per-layer trace stays schedule-independent.
    fn try_simulate_layer_flagged(
        &self,
        layer: &Layer,
        cfg: &AcceleratorConfig,
        opts: SimOptions,
        dataflow: Dataflow,
        memo: Option<&mut LayerMemo>,
    ) -> SimResult<(LayerPerf, bool)> {
        // Shared-cache consultation outcomes for the tracer: memo answers
        // and uncached recomputes consult nothing and report (0, 0, 0).
        let mut sub_hits = 0u64;
        let mut sub_misses = 0u64;
        let mut sub_contended = 0u64;
        let result = match ConvWork::from_layer(layer) {
            Some(work) => {
                let memoized = memo.as_ref().and_then(|m| m.get(&(work, dataflow)).copied());
                let parts: SimResult<(ComputePerf, u64)> = match memoized {
                    Some(parts) => Ok(parts),
                    None => match self.cache.as_deref() {
                        Some(cache) => cache
                            .compute_or(ComputeKey::new(&work, cfg, &opts, dataflow), || {
                                try_simulate_conv(&work, cfg, opts, dataflow)
                            })
                            .and_then(|compute| {
                                sub_hits += compute.hit as u64;
                                sub_misses += !compute.hit as u64;
                                sub_contended += compute.contended;
                                let traffic = cache
                                    .traffic_or(TrafficKey::new(&work, cfg, &opts), || {
                                        opts.layer_traffic(&work, cfg).map(|t| t.total())
                                    })?;
                                sub_hits += traffic.hit as u64;
                                sub_misses += !traffic.hit as u64;
                                sub_contended += traffic.contended;
                                Ok((compute.value, traffic.value))
                            }),
                        None => conv_layer_parts(&work, cfg, opts, dataflow),
                    },
                };
                parts.map(|(compute, dram_bytes)| {
                    if let Some(m) = memo {
                        m.insert((work, dataflow), (compute, dram_bytes));
                    }
                    let dedup_hit = memoized.is_some();
                    (finish_layer(layer, Some(dataflow), compute, dram_bytes, cfg), dedup_hit)
                })
            }
            None => simulate_simd(layer, cfg).map(|compute| {
                let traffic = simd_traffic(
                    layer.input.elements() as u64,
                    layer.output.elements() as u64,
                    cfg,
                );
                (finish_layer(layer, None, compute, traffic.total(), cfg), false)
            }),
        };
        let (perf, answered) = result.map_err(|e| self.note_error(e.for_layer(&layer.name)))?;
        self.cycles.fetch_add(perf.total_cycles, Ordering::Relaxed);
        if self.tracer.is_enabled() {
            // Global counters. Note the cache.* triple is
            // schedule-dependent under parallel misses and lock timing
            // (see the [`SimCache`] docs); everything else is a pure
            // function of the work simulated.
            self.tracer.add_counter("sim.layer_sims", 1);
            self.tracer.add_counter("sim.dram.bytes", perf.dram_bytes);
            self.tracer.add_counter("sim.macs", perf.compute.executed_macs);
            if sub_hits > 0 {
                self.tracer.add_counter("sim.cache.hits", sub_hits);
            }
            if sub_misses > 0 {
                self.tracer.add_counter("sim.cache.misses", sub_misses);
            }
            if sub_contended > 0 {
                self.tracer.add_counter("sim.cache.contended", sub_contended);
            }
        }
        Ok((perf, answered))
    }

    /// Simulates one layer under both dataflows and returns
    /// `(ws, os, best)` where `best` is the faster of the two — the
    /// choice the Squeezelerator's static scheduler makes ("each layer
    /// configuration must be simulated to determine which architecture is
    /// best").
    ///
    /// # Errors
    ///
    /// Any [`SimError`], attributed to the layer by name.
    pub fn try_compare_dataflows(
        &self,
        layer: &Layer,
        cfg: &AcceleratorConfig,
        opts: SimOptions,
    ) -> SimResult<(LayerPerf, LayerPerf, Dataflow)> {
        let ws = self.try_simulate_layer(layer, cfg, opts, Dataflow::WeightStationary)?;
        let os = self.try_simulate_layer(layer, cfg, opts, Dataflow::OutputStationary)?;
        let best = if os.total_cycles < ws.total_cycles {
            Dataflow::OutputStationary
        } else {
            Dataflow::WeightStationary
        };
        Ok((ws, os, best))
    }

    /// Simulates one layer under both dataflows and returns
    /// `(ws, os, best)`. Infallible wrapper over
    /// [`Simulator::try_compare_dataflows`].
    pub fn compare_dataflows(
        &self,
        layer: &Layer,
        cfg: &AcceleratorConfig,
        opts: SimOptions,
    ) -> (LayerPerf, LayerPerf, Dataflow) {
        self.try_compare_dataflows(layer, cfg, opts).unwrap_or_else(|e| e.raise())
    }

    /// Simulates a whole network under the given dataflow policy.
    ///
    /// With [`DataflowPolicy::PerLayer`] each layer takes whichever
    /// dataflow simulates faster (no switching overhead, per the paper);
    /// with [`DataflowPolicy::Fixed`] every layer is forced onto one
    /// dataflow — the paper's reference WS and OS architectures.
    ///
    /// # Errors
    ///
    /// The first [`SimError`] any layer surfaces, attributed to that
    /// layer by name (simulation stops at the failing layer: partial
    /// network results would not be meaningful totals).
    pub fn try_simulate_network(
        &self,
        network: &Network,
        cfg: &AcceleratorConfig,
        policy: DataflowPolicy,
        opts: SimOptions,
    ) -> SimResult<NetworkPerf> {
        let mut dedup_hits = Vec::new();
        let mut layers = Vec::with_capacity(network.layers().len());
        // Per-network dedup memo: repeated layer shapes (fire modules,
        // depthwise blocks) resolve locally without touching the shared
        // cache again.
        let mut memo = LayerMemo::new();
        for layer in network.layers() {
            let (perf, hit) = match policy {
                DataflowPolicy::Fixed(d) => {
                    self.try_simulate_layer_flagged(layer, cfg, opts, d, Some(&mut memo))?
                }
                DataflowPolicy::PerLayer => {
                    let (ws, hit_ws) = self.try_simulate_layer_flagged(
                        layer,
                        cfg,
                        opts,
                        Dataflow::WeightStationary,
                        Some(&mut memo),
                    )?;
                    let (os, hit_os) = self.try_simulate_layer_flagged(
                        layer,
                        cfg,
                        opts,
                        Dataflow::OutputStationary,
                        Some(&mut memo),
                    )?;
                    if os.total_cycles < ws.total_cycles {
                        (os, hit_os)
                    } else {
                        (ws, hit_ws)
                    }
                }
            };
            dedup_hits.push(hit);
            layers.push(perf);
        }
        let perf = NetworkPerf { name: network.name().to_owned(), layers };
        if self.tracer.is_enabled() {
            record_network_impl(&self.tracer, network, &perf, cfg, policy, Some(&dedup_hits));
        }
        Ok(perf)
    }

    /// Simulates a whole network under the given dataflow policy.
    /// Infallible wrapper over [`Simulator::try_simulate_network`].
    pub fn simulate_network(
        &self,
        network: &Network,
        cfg: &AcceleratorConfig,
        policy: DataflowPolicy,
        opts: SimOptions,
    ) -> NetworkPerf {
        self.try_simulate_network(network, cfg, policy, opts).unwrap_or_else(|e| e.raise())
    }
}

/// Aggregates cache counters across simulator handles *without double
/// counting*: handles that share one [`SimCache`] (clones and
/// [`Simulator::fork_counter`] forks) contribute that cache's counters
/// exactly once, because the counters live on the shared cache — each
/// fork's `stats()` already reports the whole cache, not a per-fork
/// share. Summing `stats()` over forks would multiply hits, misses, and
/// contention by the fork count; this dedups by cache identity instead.
///
/// Uncached handles contribute nothing. The result is what a serve-mode
/// metrics endpoint should report for a set of per-request forks.
pub fn aggregate_cache_stats<'a>(sims: impl IntoIterator<Item = &'a Simulator>) -> CacheStats {
    let mut seen: Vec<*const SimCache> = Vec::new();
    let mut total = CacheStats::default();
    for sim in sims {
        if let Some(cache) = sim.cache.as_deref() {
            let ptr: *const SimCache = cache;
            if seen.contains(&ptr) {
                continue;
            }
            seen.push(ptr);
            let s = cache.stats();
            total.hits += s.hits;
            total.misses += s.misses;
            total.entries += s.entries;
            total.contended += s.contended;
        }
    }
    total
}

fn policy_tag(policy: DataflowPolicy) -> &'static str {
    match policy {
        DataflowPolicy::PerLayer => "hybrid",
        DataflowPolicy::Fixed(Dataflow::WeightStationary) => "ws",
        DataflowPolicy::Fixed(Dataflow::OutputStationary) => "os",
    }
}

/// Global-buffer bytes a layer occupies: its full operand footprint,
/// capped at the buffer capacity (larger layers stream through tiles).
fn layer_buffer_occupancy(layer: &Layer, cfg: &AcceleratorConfig) -> u64 {
    let weights = ConvWork::from_layer(layer).map(|w| w.weight_elements()).unwrap_or(0);
    let elements = layer.input.elements() as u64 + layer.output.elements() as u64 + weights;
    (elements * cfg.bytes_per_element() as u64).min(cfg.global_buffer_bytes() as u64)
}

fn record_network_impl(
    tracer: &Tracer,
    network: &Network,
    perf: &NetworkPerf,
    cfg: &AcceleratorConfig,
    policy: DataflowPolicy,
    dedup_hits: Option<&[bool]>,
) {
    if !tracer.is_enabled() {
        return;
    }
    let mut track = tracer.track(format!("sim:{}:{}", network.name(), policy_tag(policy)));
    track.open(network.name(), Category::Network);
    for (i, (layer, l)) in network.layers().iter().zip(&perf.layers).enumerate() {
        let mut counters = vec![
            ("macs", l.compute.executed_macs),
            ("cycles.load", l.compute.phases.load),
            ("cycles.compute", l.compute.phases.compute),
            ("cycles.drain", l.compute.phases.drain),
            ("dram.bytes", l.dram_bytes),
            ("dram.cycles", l.dram_cycles),
            ("buffer.bytes", layer_buffer_occupancy(layer, cfg)),
        ];
        if let Some(&hit) = dedup_hits.and_then(|h| h.get(i)) {
            counters.push(("dedup.hit", hit as u64));
        }
        track.leaf(&l.name, Category::Layer, l.total_cycles, &counters);
    }
    track.close_with(&[("total_cycles", perf.total_cycles())]);
}

/// Publishes one track of per-layer spans for an already-computed
/// network result — the post-hoc twin of the recording
/// [`Simulator::simulate_network`] does inline, for callers that obtained
/// a [`NetworkPerf`] through another path (batched or multi-core runs).
/// No-op on a disabled tracer.
pub fn record_network(
    tracer: &Tracer,
    network: &Network,
    perf: &NetworkPerf,
    cfg: &AcceleratorConfig,
    policy: DataflowPolicy,
) {
    record_network_impl(tracer, network, perf, cfg, policy, None);
}

/// Simulates one layer under a forced dataflow (non-PE layers always take
/// the SIMD path, regardless of `dataflow`). Uncached convenience wrapper
/// over [`Simulator::simulate_layer`].
pub fn simulate_layer(
    layer: &Layer,
    cfg: &AcceleratorConfig,
    opts: SimOptions,
    dataflow: Dataflow,
) -> LayerPerf {
    Simulator::uncached().simulate_layer(layer, cfg, opts, dataflow)
}

/// Fallible twin of [`simulate_layer`].
///
/// # Errors
///
/// Any [`SimError`], attributed to the layer by name.
pub fn try_simulate_layer(
    layer: &Layer,
    cfg: &AcceleratorConfig,
    opts: SimOptions,
    dataflow: Dataflow,
) -> SimResult<LayerPerf> {
    Simulator::uncached().try_simulate_layer(layer, cfg, opts, dataflow)
}

/// Simulates one layer under both dataflows and returns `(ws, os, best)`.
/// Uncached convenience wrapper over [`Simulator::compare_dataflows`].
pub fn compare_dataflows(
    layer: &Layer,
    cfg: &AcceleratorConfig,
    opts: SimOptions,
) -> (LayerPerf, LayerPerf, Dataflow) {
    Simulator::uncached().compare_dataflows(layer, cfg, opts)
}

/// Fallible twin of [`compare_dataflows`].
///
/// # Errors
///
/// Any [`SimError`], attributed to the layer by name.
pub fn try_compare_dataflows(
    layer: &Layer,
    cfg: &AcceleratorConfig,
    opts: SimOptions,
) -> SimResult<(LayerPerf, LayerPerf, Dataflow)> {
    Simulator::uncached().try_compare_dataflows(layer, cfg, opts)
}

/// Simulates a whole network under the given dataflow policy, routing
/// through a transient memoizing [`Simulator`] so repeated layer shapes
/// (e.g. SqueezeNet's fire modules) simulate once per dataflow.
pub fn simulate_network(
    network: &Network,
    cfg: &AcceleratorConfig,
    policy: DataflowPolicy,
    opts: SimOptions,
) -> NetworkPerf {
    Simulator::new().simulate_network(network, cfg, policy, opts)
}

/// Fallible twin of [`simulate_network`].
///
/// # Errors
///
/// The first [`SimError`] any layer surfaces, attributed to that layer.
pub fn try_simulate_network(
    network: &Network,
    cfg: &AcceleratorConfig,
    policy: DataflowPolicy,
    opts: SimOptions,
) -> SimResult<NetworkPerf> {
    Simulator::new().try_simulate_network(network, cfg, policy, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use codesign_dnn::{zoo, NetworkBuilder, Shape};

    fn cfg() -> AcceleratorConfig {
        AcceleratorConfig::paper_default()
    }

    #[test]
    fn hybrid_never_slower_than_fixed_per_layer() {
        let net = zoo::squeezenet_v1_1();
        let opts = SimOptions::paper_default();
        let hybrid = simulate_network(&net, &cfg(), DataflowPolicy::PerLayer, opts);
        let ws =
            simulate_network(&net, &cfg(), DataflowPolicy::Fixed(Dataflow::WeightStationary), opts);
        let os =
            simulate_network(&net, &cfg(), DataflowPolicy::Fixed(Dataflow::OutputStationary), opts);
        for ((h, w), o) in hybrid.layers.iter().zip(&ws.layers).zip(&os.layers) {
            assert!(h.total_cycles <= w.total_cycles, "{}", h.name);
            assert!(h.total_cycles <= o.total_cycles, "{}", h.name);
        }
        assert!(hybrid.total_cycles() <= ws.total_cycles().min(os.total_cycles()));
    }

    #[test]
    fn pointwise_prefers_ws_and_first_conv_prefers_os() {
        let net = NetworkBuilder::new("t", Shape::new(3, 227, 227))
            .conv("conv1", 96, 7, 2, 0)
            .max_pool("pool1", 3, 2)
            .pointwise_conv("pw", 64)
            .finish()
            .unwrap();
        let opts = SimOptions::paper_default();
        let (_, _, best1) = compare_dataflows(net.layer("conv1").unwrap(), &cfg(), opts);
        assert_eq!(best1, Dataflow::OutputStationary);
        let (_, _, best2) = compare_dataflows(net.layer("pw").unwrap(), &cfg(), opts);
        assert_eq!(best2, Dataflow::WeightStationary);
    }

    #[test]
    fn depthwise_strongly_prefers_os() {
        let net = NetworkBuilder::new("t", Shape::new(256, 28, 28))
            .conv("warmup", 256, 1, 1, 0) // make dw not the first conv
            .depthwise_conv("dw", 3, 1, 1)
            .finish()
            .unwrap();
        let (ws, os, best) =
            compare_dataflows(net.layer("dw").unwrap(), &cfg(), SimOptions::paper_default());
        assert_eq!(best, Dataflow::OutputStationary);
        let speedup = ws.total_cycles as f64 / os.total_cycles as f64;
        assert!(speedup > 5.0, "OS should crush WS on depthwise, got {speedup:.1}x");
    }

    #[test]
    fn non_pe_layers_have_no_dataflow() {
        let net = NetworkBuilder::new("t", Shape::new(4, 16, 16))
            .conv("c", 4, 3, 1, 1)
            .max_pool("p", 2, 2)
            .finish()
            .unwrap();
        let perf = simulate_network(&net, &cfg(), DataflowPolicy::PerLayer, SimOptions::default());
        assert!(perf.layer("c").unwrap().dataflow.is_some());
        assert!(perf.layer("p").unwrap().dataflow.is_none());
    }

    #[test]
    fn dram_accounted_in_totals() {
        let net =
            NetworkBuilder::new("t", Shape::new(4, 16, 16)).conv("c", 4, 3, 1, 1).finish().unwrap();
        let perf = simulate_network(&net, &cfg(), DataflowPolicy::PerLayer, SimOptions::default());
        let l = &perf.layers[0];
        assert!(l.dram_bytes > 0);
        assert!(l.total_cycles >= l.compute.cycles());
        assert!(l.compute.accesses.dram > 0);
    }

    #[test]
    fn tracing_records_layers_without_changing_results() {
        let net = zoo::squeezenet_v1_1();
        let opts = SimOptions::paper_default();
        let tracer = Tracer::enabled();
        let traced = Simulator::new().with_tracer(tracer.clone());
        let a = traced.simulate_network(&net, &cfg(), DataflowPolicy::PerLayer, opts);
        let b = Simulator::new().simulate_network(&net, &cfg(), DataflowPolicy::PerLayer, opts);
        assert_eq!(a, b, "tracing must not perturb simulation results");

        let data = tracer.snapshot();
        assert_eq!(data.tracks.len(), 1);
        let track = &data.tracks[0];
        assert!(track.name.starts_with("sim:") && track.name.ends_with(":hybrid"));
        track.check_nesting().expect("network/layer spans nest");
        // One network span plus one leaf per layer, tiling the timeline.
        assert_eq!(track.spans.len(), net.layers().len() + 1);
        assert_eq!(track.spans[0].counter("total_cycles"), Some(a.total_cycles()));
        assert_eq!(track.extent(), a.total_cycles());
        let span_macs: u64 = track.spans[1..].iter().filter_map(|s| s.counter("macs")).sum();
        assert_eq!(span_macs, a.total_macs());
        // Global counters: PerLayer simulates every layer twice (WS + OS),
        // and the cache pair accounts for every actual lookup.
        assert_eq!(data.counter("sim.layer_sims"), Some(2 * net.layers().len() as u64));
        let lookups = data.counter("sim.cache.hits").unwrap_or(0)
            + data.counter("sim.cache.misses").unwrap_or(0);
        assert_eq!(lookups, traced.stats().lookups());
        // Every layer span carries a dedup-hit flag, and the repeated
        // fire-module shapes make at least one of them a hit.
        assert!(track.spans[1..].iter().all(|s| s.counter("dedup.hit").is_some()));
        assert!(track.spans[1..].iter().any(|s| s.counter("dedup.hit") == Some(1)));
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let net = zoo::squeezenet_v1_1();
        let sim = Simulator::new();
        assert!(!sim.tracer().is_enabled());
        sim.simulate_network(&net, &cfg(), DataflowPolicy::PerLayer, SimOptions::paper_default());
        assert!(sim.tracer().snapshot().tracks.is_empty());
    }

    #[test]
    fn fc_layer_is_weight_movement_bound() {
        // Batch-1 FC reuses nothing: the 16.8 M weights must all move
        // through DRAM and the preload port, so the layer is
        // weight-movement bound and PE utilization is negligible —
        // "the fully-connected layers ... cannot take advantage of
        // hardware acceleration by either dataflow architecture".
        let net = NetworkBuilder::new("t", Shape::new(4096, 1, 1))
            .fully_connected("fc", 4096)
            .finish()
            .unwrap();
        let l = simulate_layer(
            net.layer("fc").unwrap(),
            &cfg(),
            SimOptions::default(),
            Dataflow::WeightStationary,
        );
        // Preload (weight loading) dominates streaming by far.
        assert!(l.compute.phases.load > 10 * l.compute.phases.compute);
        // DRAM traffic is the full weight matrix.
        assert!(l.dram_bytes >= 4096 * 4096 * 2);
        assert!(l.utilization < 0.05, "util = {}", l.utilization);
        assert_eq!(l.total_cycles, l.compute.cycles().max(l.dram_cycles) + 100);
    }

    #[test]
    fn fc_only_network_simulates_on_the_pe_path() {
        // Regression for the old `expect("non-conv layers take the SIMD
        // path")` routing: a network of nothing but FC layers must
        // simulate fine under every policy (FC work goes to the PE array,
        // not the SIMD unit).
        let net = NetworkBuilder::new("fc-only", Shape::new(256, 1, 1))
            .fully_connected("fc1", 128)
            .fully_connected("fc2", 10)
            .finish()
            .unwrap();
        let opts = SimOptions::paper_default();
        for policy in [
            DataflowPolicy::PerLayer,
            DataflowPolicy::Fixed(Dataflow::WeightStationary),
            DataflowPolicy::Fixed(Dataflow::OutputStationary),
        ] {
            let perf = Simulator::new().try_simulate_network(&net, &cfg(), policy, opts).unwrap();
            assert_eq!(perf.layers.len(), 2);
            assert!(perf.total_cycles() > 0);
            assert!(perf.layers.iter().all(|l| l.dataflow.is_some()));
        }
    }

    #[test]
    fn fork_stats_aggregate_without_double_counting() {
        // Serve-mode metrics fold per-request fork odometers together.
        // Forks share one cache, and each fork's `stats()` reads that
        // whole shared cache — summing them would multiply every counter
        // by the fork count. Identity-aware aggregation must not.
        let net = zoo::squeezenet_v1_1();
        let opts = SimOptions::paper_default();
        let base = Simulator::new();
        let fork_a = base.fork_counter();
        let fork_b = base.fork_counter();
        fork_a.simulate_network(&net, &cfg(), DataflowPolicy::PerLayer, opts);
        fork_b.simulate_network(
            &net,
            &cfg(),
            DataflowPolicy::Fixed(Dataflow::WeightStationary),
            opts,
        );

        let shared = base.stats();
        assert!(shared.hits > 0 && shared.misses > 0, "{shared}");
        assert_eq!(fork_a.stats(), shared, "every fork reads the same shared cache");
        assert_eq!(fork_b.stats(), shared);

        // Pin hits/lookups/contended across the two forks: the aggregate
        // equals the shared picture exactly once, not twice.
        let agg = aggregate_cache_stats([&base, &fork_a, &fork_b]);
        assert_eq!(agg, shared);
        assert_eq!(agg.hits, shared.hits);
        assert_eq!(agg.lookups(), shared.lookups());
        assert_eq!(agg.contended, shared.contended);

        // Distinct caches do sum.
        let other = Simulator::new();
        other.simulate_network(&net, &cfg(), DataflowPolicy::PerLayer, opts);
        let two = aggregate_cache_stats([&fork_a, &other]);
        assert_eq!(two.lookups(), shared.lookups() + other.stats().lookups());
        assert_eq!(two.entries, shared.entries + other.stats().entries);

        // Cache identity is observable, and uncached handles are inert.
        assert!(base.shares_cache_with(&fork_a));
        assert!(fork_a.shares_cache_with(&fork_b));
        assert!(!base.shares_cache_with(&other));
        let uncached = Simulator::uncached();
        assert!(!uncached.shares_cache_with(&uncached.clone()));
        assert_eq!(aggregate_cache_stats([&uncached]), CacheStats::default());
    }

    #[test]
    fn degenerate_layer_surfaces_named_error_and_counter() {
        // A 1x1 input under a 7x7 kernel is infeasible; the error names
        // the layer and the traced run bumps `sim.error.invalid_workload`.
        use codesign_dnn::{ConvSpec, Kernel, Layer, LayerOp};
        let layer = Layer {
            name: "bad7x7".into(),
            op: LayerOp::Conv(ConvSpec {
                out_channels: 4,
                kernel: Kernel::square(7),
                stride: 1,
                pad_h: 0,
                pad_w: 0,
                groups: 1,
            }),
            input: Shape::new(4, 1, 1),
            output: Shape::new(4, 1, 1),
            is_first_conv: false,
            primary_input: None,
            extra_input: None,
        };
        let tracer = Tracer::enabled();
        let sim = Simulator::new().with_tracer(tracer.clone());
        let err = sim
            .try_simulate_layer(
                &layer,
                &cfg(),
                SimOptions::paper_default(),
                Dataflow::WeightStationary,
            )
            .unwrap_err();
        assert_eq!(err.layer(), Some("bad7x7"));
        assert!(matches!(err, crate::error::SimError::InvalidWorkload { .. }), "{err}");
        assert_eq!(tracer.snapshot().counter("sim.error.invalid_workload"), Some(1));
    }
}
