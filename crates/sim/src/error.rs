//! The simulation error taxonomy.
//!
//! Analytical estimators must reject infeasible (layer, configuration)
//! pairs deterministically rather than crash mid-sweep: one degenerate
//! point must not abort a whole parallel DSE run. Every fallible entry
//! point in this crate (`try_*` APIs) returns a typed [`SimError`];
//! the infallible convenience wrappers keep their historical signatures
//! and funnel through the single [`SimError::raise`] choke point so the
//! crate carries exactly one deliberate panic site.
//!
//! Error kinds map one-to-one onto the `sim.error.<kind>` trace
//! counters; [`SimError::kind`] returns the counter suffix.

use std::fmt;

/// Result alias used by every fallible simulation API.
pub type SimResult<T> = Result<T, SimError>;

/// Why a simulation request could not be answered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// No tiling of the convolution loop nest fits the working buffer —
    /// even the smallest candidate tile exceeds the budget.
    InfeasibleTiling {
        /// Layer name, when known at the failure site.
        layer: Option<String>,
        /// Smallest achievable on-chip working set, in bytes.
        working_set: u64,
        /// The working-buffer budget it had to fit, in bytes.
        buffer: u64,
    },
    /// The layer's operation has no model on the requested path.
    UnsupportedLayer {
        /// Layer name.
        layer: String,
        /// The operation that has no model.
        op: String,
    },
    /// A cycle/traffic/MAC count does not fit the modeling range
    /// (64-bit with headroom for derived quantities).
    ArithmeticOverflow {
        /// Layer name, when known at the failure site.
        layer: Option<String>,
        /// Which computation overflowed.
        context: &'static str,
    },
    /// An on-chip resource requirement exceeds the hardware capacity.
    BufferExceeded {
        /// Layer name, when known at the failure site.
        layer: Option<String>,
        /// Bytes required.
        required: u64,
        /// Bytes available.
        capacity: u64,
    },
    /// The workload itself is malformed: zero or inconsistent
    /// dimensions, a kernel larger than its input, a zero batch…
    InvalidWorkload {
        /// Layer name, when known at the failure site.
        layer: Option<String>,
        /// Human-readable reason.
        reason: String,
    },
}

impl SimError {
    /// Stable machine-readable kind tag — also the suffix of the
    /// `sim.error.<kind>` trace counter bumped when a traced simulation
    /// surfaces this error.
    pub fn kind(&self) -> &'static str {
        match self {
            SimError::InfeasibleTiling { .. } => "infeasible_tiling",
            SimError::UnsupportedLayer { .. } => "unsupported_layer",
            SimError::ArithmeticOverflow { .. } => "arithmetic_overflow",
            SimError::BufferExceeded { .. } => "buffer_exceeded",
            SimError::InvalidWorkload { .. } => "invalid_workload",
        }
    }

    /// The layer this error is attributed to, if any.
    pub fn layer(&self) -> Option<&str> {
        match self {
            SimError::InfeasibleTiling { layer, .. }
            | SimError::ArithmeticOverflow { layer, .. }
            | SimError::BufferExceeded { layer, .. }
            | SimError::InvalidWorkload { layer, .. } => layer.as_deref(),
            SimError::UnsupportedLayer { layer, .. } => Some(layer),
        }
    }

    /// Attributes the error to `name` when the failure site did not know
    /// the layer (deeper layers work on anonymous [`crate::ConvWork`]s;
    /// the engine re-attaches the name on the way out).
    #[must_use]
    pub fn for_layer(mut self, name: &str) -> Self {
        match &mut self {
            SimError::InfeasibleTiling { layer, .. }
            | SimError::ArithmeticOverflow { layer, .. }
            | SimError::BufferExceeded { layer, .. }
            | SimError::InvalidWorkload { layer, .. } => {
                if layer.is_none() {
                    *layer = Some(name.to_owned());
                }
            }
            SimError::UnsupportedLayer { .. } => {}
        }
        self
    }

    /// Shorthand for an anonymous [`SimError::InvalidWorkload`].
    pub(crate) fn invalid(reason: impl Into<String>) -> Self {
        SimError::InvalidWorkload { layer: None, reason: reason.into() }
    }

    /// Shorthand for an anonymous [`SimError::ArithmeticOverflow`].
    pub(crate) fn overflow(context: &'static str) -> Self {
        SimError::ArithmeticOverflow { layer: None, context }
    }

    /// The crate's single deliberate panic site: the infallible
    /// convenience wrappers (kept for the paper-reproduction call sites,
    /// which only ever feed known-good workloads) delegate here when the
    /// underlying `try_*` API reports an error.
    #[allow(clippy::panic)]
    #[track_caller]
    pub(crate) fn raise(self) -> ! {
        panic!("{self}");
    }
}

fn with_layer(f: &mut fmt::Formatter<'_>, layer: &Option<String>) -> fmt::Result {
    match layer {
        Some(name) => write!(f, " in layer `{name}`"),
        None => Ok(()),
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InfeasibleTiling { layer, working_set, buffer } => {
                write!(f, "infeasible tiling")?;
                with_layer(f, layer)?;
                write!(
                    f,
                    ": smallest tile needs {working_set} B on chip but the working buffer \
                     holds {buffer} B"
                )
            }
            SimError::UnsupportedLayer { layer, op } => {
                write!(f, "unsupported layer `{layer}`: no model for {op} on this path")
            }
            SimError::ArithmeticOverflow { layer, context } => {
                write!(f, "arithmetic overflow")?;
                with_layer(f, layer)?;
                write!(f, ": {context} exceeds the 64-bit modeling range")
            }
            SimError::BufferExceeded { layer, required, capacity } => {
                write!(f, "buffer exceeded")?;
                with_layer(f, layer)?;
                write!(f, ": needs {required} B, capacity is {capacity} B")
            }
            SimError::InvalidWorkload { layer, reason } => {
                write!(f, "invalid workload")?;
                with_layer(f, layer)?;
                write!(f, ": {reason}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Checked product of a dimension list, as `u64`.
pub(crate) fn checked_product(factors: &[usize], context: &'static str) -> SimResult<u64> {
    factors
        .iter()
        .try_fold(1u64, |acc, &f| acc.checked_mul(f as u64))
        .ok_or(SimError::overflow(context))
}

/// Headroom divisor: validated quantities must stay below
/// `u64::MAX / HEADROOM` so the small constant multipliers in the cycle
/// models (phase splits, access-count fan-out, DMA byte widths) cannot
/// push derived counts past 64 bits.
pub(crate) const HEADROOM: u64 = 1 << 10;

/// Checked product that additionally reserves [`HEADROOM`] for derived
/// quantities.
pub(crate) fn bounded_product(factors: &[usize], context: &'static str) -> SimResult<u64> {
    let v = checked_product(factors, context)?;
    if v > u64::MAX / HEADROOM {
        return Err(SimError::overflow(context));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_stable() {
        let all = [
            SimError::InfeasibleTiling { layer: None, working_set: 1, buffer: 1 },
            SimError::UnsupportedLayer { layer: "l".into(), op: "conv".into() },
            SimError::ArithmeticOverflow { layer: None, context: "macs" },
            SimError::BufferExceeded { layer: None, required: 2, capacity: 1 },
            SimError::invalid("zero"),
        ];
        let kinds: Vec<_> = all.iter().map(SimError::kind).collect();
        assert_eq!(
            kinds,
            [
                "infeasible_tiling",
                "unsupported_layer",
                "arithmetic_overflow",
                "buffer_exceeded",
                "invalid_workload"
            ]
        );
    }

    #[test]
    fn for_layer_fills_only_missing_names() {
        let e = SimError::invalid("zero dims").for_layer("conv1");
        assert_eq!(e.layer(), Some("conv1"));
        // A second attribution does not overwrite the first.
        let e = e.for_layer("conv2");
        assert_eq!(e.layer(), Some("conv1"));
        assert!(e.to_string().contains("conv1"));
    }

    #[test]
    fn display_names_the_failure() {
        let e = SimError::InfeasibleTiling { layer: Some("c".into()), working_set: 10, buffer: 4 };
        let s = e.to_string();
        assert!(s.contains("infeasible tiling") && s.contains("10 B") && s.contains("4 B"));
    }

    #[test]
    fn products_check_overflow() {
        assert_eq!(checked_product(&[3, 4, 5], "t").unwrap(), 60);
        assert!(checked_product(&[usize::MAX, usize::MAX], "t").is_err());
        assert!(bounded_product(&[usize::MAX / 4], "t").is_err(), "headroom reserved");
    }
}
