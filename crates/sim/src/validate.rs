//! Pre-flight validation of a (network, accelerator) pair.
//!
//! Sweeps and CLI runs call [`validate_network`] before simulating so
//! that degenerate inputs surface as named, typed diagnostics *before*
//! any cycle model runs — the validation order is:
//!
//! 1. **configuration sanity** — the accelerator must have PEs and a
//!    non-empty working buffer;
//! 2. **per-layer workload sanity** — zero/absurd dimensions, kernels
//!    larger than their input, element counts beyond the 64-bit modeling
//!    range ([`crate::ConvWork::validate`]);
//! 3. **buffer feasibility** — the smallest candidate tile of every
//!    PE-array layer must fit the working buffer
//!    ([`crate::SimError::InfeasibleTiling`] otherwise);
//! 4. **path support** — every layer must have a model on the path that
//!    will execute it (PE array for conv/FC, SIMD for the rest; this is
//!    total today, so step 4 cannot fail for builder-produced networks
//!    but guards hand-constructed layers).
//!
//! The same checks run lazily inside the `try_*` simulation APIs; the
//! pre-flight pass exists so a whole-network report can list *all*
//! offending layers ([`validate_network_all`]) instead of stopping at
//! the first.

use std::fmt;

use codesign_arch::AcceleratorConfig;
use codesign_dnn::{Layer, Network};

use crate::error::{SimError, SimResult};
use crate::tiling::min_working_set;
use crate::workload::ConvWork;

/// One named validation failure inside a network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidationIssue {
    /// Name of the offending layer (empty for configuration-level
    /// issues).
    pub layer: String,
    /// What is wrong with it.
    pub error: SimError,
}

impl fmt::Display for ValidationIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.layer.is_empty() {
            write!(f, "configuration: {}", self.error)
        } else {
            write!(f, "{}", self.error)
        }
    }
}

fn validate_config(cfg: &AcceleratorConfig) -> SimResult<()> {
    if cfg.array_size() == 0 {
        return Err(SimError::invalid("accelerator has a 0x0 PE array"));
    }
    if cfg.bytes_per_element() == 0 {
        return Err(SimError::invalid("element width is zero bytes"));
    }
    if cfg.working_buffer_bytes() == 0 {
        return Err(SimError::invalid("working buffer holds zero bytes"));
    }
    Ok(())
}

/// Validates one layer against one configuration: workload sanity plus
/// buffer feasibility for PE-array layers.
///
/// # Errors
///
/// The first failing check's [`SimError`], attributed to the layer.
pub fn validate_layer(layer: &Layer, cfg: &AcceleratorConfig) -> SimResult<()> {
    let check = || -> SimResult<()> {
        match ConvWork::from_layer(layer) {
            Some(work) => {
                work.validate()?;
                let need = min_working_set(&work, cfg)?;
                let budget = cfg.working_buffer_bytes() as u64;
                if need > budget {
                    return Err(SimError::InfeasibleTiling {
                        layer: None,
                        working_set: need,
                        buffer: budget,
                    });
                }
                Ok(())
            }
            // Non-PE layers take the SIMD path, which models every
            // remaining `LayerOp`; nothing shape-dependent can
            // overflow there below the already-checked element counts.
            None => Ok(()),
        }
    };
    check().map_err(|e| e.for_layer(&layer.name))
}

/// Validates every layer of `network` against `cfg`, stopping at the
/// first problem.
///
/// # Errors
///
/// The first failing check's [`SimError`], attributed to the offending
/// layer (configuration-level errors carry no layer name).
pub fn validate_network(network: &Network, cfg: &AcceleratorConfig) -> SimResult<()> {
    validate_config(cfg)?;
    for layer in network.layers() {
        validate_layer(layer, cfg)?;
    }
    Ok(())
}

/// Validates every layer of `network` against `cfg` and returns *all*
/// failures, for whole-network diagnostics reports. An empty vector
/// means the pair is feasible.
pub fn validate_network_all(network: &Network, cfg: &AcceleratorConfig) -> Vec<ValidationIssue> {
    let mut issues = Vec::new();
    if let Err(error) = validate_config(cfg) {
        issues.push(ValidationIssue { layer: String::new(), error });
    }
    for layer in network.layers() {
        if let Err(error) = validate_layer(layer, cfg) {
            issues.push(ValidationIssue { layer: layer.name.clone(), error });
        }
    }
    issues
}

#[cfg(test)]
mod tests {
    use super::*;
    use codesign_dnn::{zoo, NetworkBuilder, Shape};

    #[test]
    fn paper_workloads_all_validate() {
        let cfg = AcceleratorConfig::paper_default();
        for net in [zoo::squeezenet_v1_0(), zoo::mobilenet_v1(), zoo::alexnet()] {
            assert_eq!(validate_network(&net, &cfg), Ok(()), "{}", net.name());
            assert!(validate_network_all(&net, &cfg).is_empty());
        }
    }

    #[test]
    fn tiny_buffer_fails_feasibility_with_layer_name() {
        let cfg = AcceleratorConfig::builder()
            .array_size(2)
            .global_buffer_bytes(64)
            .double_buffering(false)
            .build()
            .unwrap();
        let net = zoo::squeezenet_v1_0();
        let err = validate_network(&net, &cfg).unwrap_err();
        assert!(matches!(err, SimError::InfeasibleTiling { .. }), "{err}");
        assert!(err.layer().is_some(), "feasibility errors name their layer");
    }

    #[test]
    fn all_issues_are_collected_not_just_the_first() {
        let cfg = AcceleratorConfig::builder()
            .array_size(2)
            .global_buffer_bytes(64)
            .double_buffering(false)
            .build()
            .unwrap();
        let net = zoo::squeezenet_v1_0();
        let issues = validate_network_all(&net, &cfg);
        assert!(issues.len() > 1, "many layers cannot fit 64 B: {}", issues.len());
        for issue in &issues {
            assert_eq!(issue.error.layer(), Some(issue.layer.as_str()));
        }
    }

    #[test]
    fn small_network_on_default_config_is_feasible() {
        let net = NetworkBuilder::new("t", Shape::new(8, 16, 16))
            .conv("c", 16, 3, 1, 1)
            .max_pool("p", 2, 2)
            .fully_connected("fc", 10)
            .finish()
            .unwrap();
        assert_eq!(validate_network(&net, &AcceleratorConfig::paper_default()), Ok(()));
    }
}
