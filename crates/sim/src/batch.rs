//! Batched inference.
//!
//! The paper evaluates batch size 1 ("less opportunity for data reuse,
//! but reflects typical usage in embedded vision applications") — this
//! module quantifies exactly what that choice costs. Batching amortizes
//! stationary data:
//!
//! * **WS**: weight tiles stay resident while `B` images stream — the
//!   preload cost is paid once per tile instead of once per image. For
//!   FC layers at batch 1 the preload is ~97 % of the time, so this is
//!   dramatic.
//! * **OS**: partial sums are per-image, so every phase repeats per
//!   image — no amortization.
//! * **DRAM**: weights move once per batch; activations per image.

use codesign_arch::{AcceleratorConfig, Dataflow, DataflowPolicy};
use codesign_dnn::{Layer, Network};

use crate::dram::combine_cycles;
use crate::engine::{try_simulate_conv, SimOptions};
use crate::error::{SimError, SimResult};
use crate::perf::{LayerPerf, NetworkPerf, PhaseCycles};
use crate::simd::simulate_simd;
use crate::workload::ConvWork;

const SCALE_CTX: &str = "batched scaling";

fn mul(a: u64, b: u64) -> SimResult<u64> {
    a.checked_mul(b).ok_or(SimError::overflow(SCALE_CTX))
}

fn scale_counts(
    acc: codesign_arch::AccessCounts,
    batch: u64,
) -> SimResult<codesign_arch::AccessCounts> {
    Ok(codesign_arch::AccessCounts {
        macs: mul(acc.macs, batch)?,
        register_file: mul(acc.register_file, batch)?,
        inter_pe: mul(acc.inter_pe, batch)?,
        global_buffer: mul(acc.global_buffer, batch)?,
        dram: 0, // folded in separately (weights amortize)
    })
}

/// Simulates one layer over a batch of `batch` images under the given
/// dataflow, returning the **whole-batch** result (divide cycles by
/// `batch` for per-image numbers).
///
/// # Errors
///
/// [`SimError::InvalidWorkload`] when `batch == 0` or the layer itself
/// is degenerate; [`SimError::ArithmeticOverflow`] when the batch
/// multiplies any count past the 64-bit modeling range.
pub fn try_simulate_layer_batched(
    layer: &Layer,
    cfg: &AcceleratorConfig,
    opts: SimOptions,
    dataflow: Dataflow,
    batch: u64,
) -> SimResult<LayerPerf> {
    try_layer_batched_memo(layer, cfg, opts, dataflow, batch, &mut TrafficMemo::new())
}

/// Per-run cache of the (dataflow-independent) tiling-search traffic:
/// one search serves both dataflows of a layer and every repeat of its
/// shape across the network. Purely an accelerator — hits return the
/// exact bytes a fresh search would.
type TrafficMemo = std::collections::HashMap<ConvWork, crate::dram::DramTraffic>;

fn try_layer_batched_memo(
    layer: &Layer,
    cfg: &AcceleratorConfig,
    opts: SimOptions,
    dataflow: Dataflow,
    batch: u64,
    traffic_memo: &mut TrafficMemo,
) -> SimResult<LayerPerf> {
    if batch == 0 {
        return Err(SimError::invalid("batch size must be positive").for_layer(&layer.name));
    }
    let result = match ConvWork::from_layer(layer) {
        Some(work) => {
            let single = try_simulate_conv(&work, cfg, opts, dataflow)?;
            let phases = match dataflow {
                // Weights stay resident across the batch: loads once,
                // streaming scales.
                Dataflow::WeightStationary => PhaseCycles {
                    load: single.phases.load,
                    compute: mul(single.phases.compute, batch)?,
                    drain: mul(single.phases.drain, batch)?,
                },
                // Output-stationary state is per image: everything scales.
                Dataflow::OutputStationary => PhaseCycles {
                    load: mul(single.phases.load, batch)?,
                    compute: mul(single.phases.compute, batch)?,
                    drain: mul(single.phases.drain, batch)?,
                },
            };
            let mut compute = crate::perf::ComputePerf {
                phases,
                executed_macs: mul(single.executed_macs, batch)?,
                accesses: scale_counts(single.accesses, batch)?,
            };
            let traffic = match traffic_memo.get(&work) {
                Some(&t) => t,
                None => {
                    let t = opts.layer_traffic(&work, cfg)?;
                    traffic_memo.insert(work, t);
                    t
                }
            };
            // Weights once per batch; activations per image.
            let dram_bytes = traffic
                .input
                .checked_add(traffic.output)
                .and_then(|act| act.checked_mul(batch))
                .and_then(|act| act.checked_add(traffic.weights))
                .ok_or(SimError::overflow(SCALE_CTX))?;
            let dram_cycles = cfg.dram().transfer_cycles(dram_bytes);
            let total_cycles = combine_cycles(compute.cycles(), dram_cycles, cfg);
            compute.accesses.dram = dram_bytes / cfg.bytes_per_element() as u64;
            let utilization = if total_cycles == 0 {
                0.0
            } else {
                compute.executed_macs as f64 / (total_cycles as f64 * cfg.pe_count() as f64)
            };
            Ok(LayerPerf {
                name: layer.name.clone(),
                dataflow: Some(dataflow),
                compute,
                dram_bytes,
                dram_cycles,
                total_cycles,
                utilization,
            })
        }
        None => {
            let single = simulate_simd(layer, cfg)?;
            let mut compute = crate::perf::ComputePerf {
                phases: PhaseCycles {
                    load: 0,
                    compute: mul(single.phases.compute, batch)?,
                    drain: 0,
                },
                executed_macs: 0,
                accesses: scale_counts(single.accesses, batch)?,
            };
            let act = (layer.input.elements() as u64)
                .checked_add(layer.output.elements() as u64)
                .ok_or(SimError::overflow(SCALE_CTX))?;
            let dram_bytes = mul(mul(act, cfg.bytes_per_element() as u64)?, batch)?;
            let dram_cycles = cfg.dram().transfer_cycles(dram_bytes);
            let total_cycles = combine_cycles(compute.cycles(), dram_cycles, cfg);
            compute.accesses.dram = dram_bytes / cfg.bytes_per_element() as u64;
            Ok(LayerPerf {
                name: layer.name.clone(),
                dataflow: None,
                compute,
                dram_bytes,
                dram_cycles,
                total_cycles,
                utilization: 0.0,
            })
        }
    };
    result.map_err(|e: SimError| e.for_layer(&layer.name))
}

/// Simulates one layer over a batch of `batch` images. Infallible
/// wrapper over [`try_simulate_layer_batched`].
///
/// # Panics
///
/// Panics (through the crate's single panic site) if `batch == 0` or
/// the layer is degenerate.
pub fn simulate_layer_batched(
    layer: &Layer,
    cfg: &AcceleratorConfig,
    opts: SimOptions,
    dataflow: Dataflow,
    batch: u64,
) -> LayerPerf {
    try_simulate_layer_batched(layer, cfg, opts, dataflow, batch).unwrap_or_else(|e| e.raise())
}

/// Simulates a network over a batch; per-layer results are whole-batch.
///
/// # Errors
///
/// The first [`SimError`] any layer surfaces, attributed to that layer.
pub fn try_simulate_network_batched(
    network: &Network,
    cfg: &AcceleratorConfig,
    policy: DataflowPolicy,
    opts: SimOptions,
    batch: u64,
) -> SimResult<NetworkPerf> {
    let mut layers = Vec::with_capacity(network.layers().len());
    let mut memo = TrafficMemo::new();
    for layer in network.layers() {
        let perf = match policy {
            DataflowPolicy::Fixed(d) => {
                try_layer_batched_memo(layer, cfg, opts, d, batch, &mut memo)?
            }
            DataflowPolicy::PerLayer => {
                let ws = try_layer_batched_memo(
                    layer,
                    cfg,
                    opts,
                    Dataflow::WeightStationary,
                    batch,
                    &mut memo,
                )?;
                let os = try_layer_batched_memo(
                    layer,
                    cfg,
                    opts,
                    Dataflow::OutputStationary,
                    batch,
                    &mut memo,
                )?;
                if os.total_cycles < ws.total_cycles {
                    os
                } else {
                    ws
                }
            }
        };
        layers.push(perf);
    }
    Ok(NetworkPerf { name: network.name().to_owned(), layers })
}

/// Simulates a network over a batch. Infallible wrapper over
/// [`try_simulate_network_batched`].
///
/// # Panics
///
/// Panics (through the crate's single panic site) if `batch == 0` or
/// any layer is degenerate.
pub fn simulate_network_batched(
    network: &Network,
    cfg: &AcceleratorConfig,
    policy: DataflowPolicy,
    opts: SimOptions,
    batch: u64,
) -> NetworkPerf {
    try_simulate_network_batched(network, cfg, policy, opts, batch).unwrap_or_else(|e| e.raise())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::simulate_network;
    use codesign_dnn::zoo;

    fn setup() -> (AcceleratorConfig, SimOptions) {
        (AcceleratorConfig::paper_default(), SimOptions::paper_default())
    }

    #[test]
    fn batch_one_matches_the_plain_simulator() {
        let (cfg, opts) = setup();
        let net = zoo::squeezenet_v1_1();
        let plain = simulate_network(&net, &cfg, DataflowPolicy::PerLayer, opts);
        let batched = simulate_network_batched(&net, &cfg, DataflowPolicy::PerLayer, opts, 1);
        assert_eq!(plain.total_cycles(), batched.total_cycles());
    }

    #[test]
    fn batching_amortizes_alexnet_fc() {
        // At batch 1 AlexNet is FC/weight-movement bound; per-image time
        // at batch 16 must improve by well over 2x.
        let (cfg, opts) = setup();
        let net = zoo::alexnet();
        let b1 = simulate_network_batched(&net, &cfg, DataflowPolicy::PerLayer, opts, 1)
            .total_cycles() as f64;
        let b16 = simulate_network_batched(&net, &cfg, DataflowPolicy::PerLayer, opts, 16)
            .total_cycles() as f64
            / 16.0;
        assert!(b1 / b16 > 2.0, "per-image speedup = {:.2}", b1 / b16);
    }

    #[test]
    fn batching_barely_helps_conv_only_networks() {
        let (cfg, opts) = setup();
        let net = zoo::squeezenet_v1_0();
        let b1 = simulate_network_batched(&net, &cfg, DataflowPolicy::PerLayer, opts, 1)
            .total_cycles() as f64;
        let b16 = simulate_network_batched(&net, &cfg, DataflowPolicy::PerLayer, opts, 16)
            .total_cycles() as f64
            / 16.0;
        let speedup = b1 / b16;
        assert!(speedup < 1.5, "conv-dominated net should not gain much: {speedup:.2}");
        assert!(speedup >= 1.0);
    }

    #[test]
    fn per_image_cost_is_monotone_in_batch() {
        let (cfg, opts) = setup();
        let net = zoo::mobilenet_v1();
        let mut last = f64::INFINITY;
        for b in [1u64, 2, 4, 8] {
            let per_image = simulate_network_batched(&net, &cfg, DataflowPolicy::PerLayer, opts, b)
                .total_cycles() as f64
                / b as f64;
            assert!(per_image <= last * 1.0001, "batch {b}: {per_image} > {last}");
            last = per_image;
        }
    }

    #[test]
    #[should_panic(expected = "batch size must be positive")]
    fn zero_batch_rejected() {
        let (cfg, opts) = setup();
        let net = zoo::tiny_darknet();
        let _ = simulate_network_batched(&net, &cfg, DataflowPolicy::PerLayer, opts, 0);
    }

    #[test]
    fn zero_batch_is_a_typed_error_on_the_fallible_path() {
        let (cfg, opts) = setup();
        let net = zoo::tiny_darknet();
        let err = try_simulate_network_batched(&net, &cfg, DataflowPolicy::PerLayer, opts, 0)
            .unwrap_err();
        assert!(matches!(err, SimError::InvalidWorkload { .. }), "{err}");
    }

    #[test]
    fn overflow_scale_batch_is_a_typed_error() {
        let (cfg, opts) = setup();
        let net = zoo::alexnet();
        let err =
            try_simulate_network_batched(&net, &cfg, DataflowPolicy::PerLayer, opts, u64::MAX / 2)
                .unwrap_err();
        assert!(matches!(err, SimError::ArithmeticOverflow { .. }), "{err}");
    }
}
