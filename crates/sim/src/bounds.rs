//! Monotone DRAM-traffic lower bounds extracted from the tiling search.
//!
//! The streaming sweep's dominance branch-and-bound (in
//! `codesign-core`) prunes whole buffer-axis subtrees by evaluating one
//! *witness corner* per subtree. That is sound only because of two
//! monotonicity facts this module states as API and pins with tests:
//!
//! 1. **Traffic is non-increasing in the buffer budget.** A bigger
//!    working buffer admits a superset of feasible tilings, so the
//!    DRAM-minimal plan found by [`optimize_tiling`] can only improve
//!    (never regress) as the budget grows. The witness at a subtree's
//!    *largest* buffer therefore lower-bounds cycles and energy for
//!    every point in the subtree.
//! 2. **Traffic is bounded below by the operands-moved-once floor,**
//!    independent of the budget ([`traffic_lower_bound`]): no tiling
//!    moves less than each operand exactly once.
//!
//! [`optimize_tiling`]: crate::tiling::optimize_tiling

use codesign_arch::AcceleratorConfig;
use codesign_dnn::Network;

use crate::error::{SimError, SimResult};
use crate::tiling::traffic_lower_bound;
use crate::workload::ConvWork;

/// Budget-independent lower bound on the DRAM bytes any tiling of this
/// PE-array workload moves: every operand fetched or written exactly
/// once (plus nothing — the untiled plan has no halo, re-fetch, or
/// spill). See [`traffic_lower_bound`].
///
/// # Errors
///
/// [`SimError::InvalidWorkload`] / [`SimError::ArithmeticOverflow`] for
/// malformed or overflow-scale workloads.
pub fn layer_traffic_floor(work: &ConvWork, cfg: &AcceleratorConfig) -> SimResult<u64> {
    traffic_lower_bound(work, cfg)
}

/// Sum of [`layer_traffic_floor`] over every PE-array layer of the
/// network. Layers the array does not accelerate (pooling, element-wise,
/// concat) contribute nothing, so this is a *sound but loose* floor on
/// whole-network DRAM traffic at any buffer capacity.
///
/// # Errors
///
/// Propagates per-layer workload errors; [`SimError::ArithmeticOverflow`]
/// when the sum itself overflows.
pub fn network_traffic_floor(network: &Network, cfg: &AcceleratorConfig) -> SimResult<u64> {
    let mut total: u64 = 0;
    for layer in network.layers() {
        if let Some(work) = ConvWork::from_layer(layer) {
            let floor = layer_traffic_floor(&work, cfg).map_err(|e| e.for_layer(&layer.name))?;
            total =
                total.checked_add(floor).ok_or(SimError::overflow("network DRAM traffic floor"))?;
        }
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tiling::optimize_tiling;
    use crate::workload::WorkKind;
    use codesign_dnn::zoo;

    fn work(c: usize, k: usize, f: usize, hw: usize) -> ConvWork {
        ConvWork {
            kind: WorkKind::Dense,
            groups: 1,
            in_channels: c,
            out_channels: k,
            kernel_h: f,
            kernel_w: f,
            stride: 1,
            in_h: hw + f - 1,
            in_w: hw + f - 1,
            out_h: hw,
            out_w: hw,
        }
    }

    fn cfg_with_buffer(bytes: usize) -> AcceleratorConfig {
        AcceleratorConfig::builder()
            .global_buffer_bytes(bytes)
            .build()
            .expect("test buffer sizes are valid")
    }

    #[test]
    fn floor_bounds_every_budget_and_plans_are_monotone_in_budget() {
        // The two facts the sweep's branch-and-bound soundness argument
        // rests on, pinned across layer shapes and a sweep of budgets.
        let shapes = [
            work(16, 16, 3, 14),
            work(128, 128, 3, 56),
            work(512, 1000, 1, 13),
            work(64, 192, 3, 28),
        ];
        for w in &shapes {
            let mut prev: Option<u64> = None;
            for buf in [16 * 1024, 32 * 1024, 64 * 1024, 128 * 1024, 512 * 1024, 4 << 20] {
                let cfg = cfg_with_buffer(buf);
                let floor = layer_traffic_floor(w, &cfg).unwrap();
                let Ok(plan) = optimize_tiling(w, &cfg) else { continue };
                let total = plan.traffic.total();
                assert!(floor <= total, "floor {floor} > plan {total} for {w:?} at {buf}B");
                if let Some(p) = prev {
                    assert!(
                        total <= p,
                        "traffic regressed with a bigger budget for {w:?} at {buf}B: {total} > {p}"
                    );
                }
                prev = Some(total);
            }
        }
    }

    #[test]
    fn floor_is_reached_once_the_layer_fits_untiled() {
        // A small layer fits untiled in the paper-default buffer, so the
        // optimal plan *achieves* the operands-once floor exactly.
        let w = work(16, 16, 3, 14);
        let cfg = AcceleratorConfig::paper_default();
        let floor = layer_traffic_floor(&w, &cfg).unwrap();
        let plan = optimize_tiling(&w, &cfg).unwrap();
        assert_eq!(floor, plan.traffic.total());
        assert_eq!(floor, (w.input_elements() + w.weight_elements() + w.output_elements()) * 2);
    }

    #[test]
    fn network_floor_sums_pe_array_layers() {
        let net = zoo::tiny_darknet();
        let cfg = AcceleratorConfig::paper_default();
        let total = network_traffic_floor(&net, &cfg).unwrap();
        let by_hand: u64 = net
            .layers()
            .iter()
            .filter_map(ConvWork::from_layer)
            .map(|w| layer_traffic_floor(&w, &cfg).unwrap())
            .sum();
        assert_eq!(total, by_hand);
        assert!(total > 0, "tiny-darknet has conv layers");
    }

    #[test]
    fn network_floor_is_budget_independent() {
        let net = zoo::squeezenet_v1_1();
        let small = network_traffic_floor(&net, &cfg_with_buffer(64 * 1024)).unwrap();
        let large = network_traffic_floor(&net, &cfg_with_buffer(1 << 20)).unwrap();
        assert_eq!(small, large, "the floor never consults the budget");
    }
}
