//! Command-stream lowering: compile a network into the sequence of
//! accelerator commands the Squeezelerator's controller would execute.
//!
//! §4.1.2 describes the machine as configured "to select the dataflow
//! style (OS or WS) for each layer"; DNN inference "is statically
//! schedulable". This module makes that schedule concrete: a [`Program`]
//! is the per-layer command stream (dataflow mode set, DMA transfers,
//! preload/broadcast/drain phases), produced from the same cycle-machine
//! traces the validation suite checks. Replaying a program through
//! [`Program::estimate`] must reproduce the simulator's cycle counts
//! exactly — the compiled artifact and the performance model cannot
//! drift apart.

use std::fmt;

use codesign_arch::{AcceleratorConfig, Dataflow, DataflowPolicy};
use codesign_dnn::Network;

use crate::cycle::{trace_os, trace_ws, Phase};
use crate::dram::combine_cycles;
use crate::engine::{try_compare_dataflows, SimOptions};
use crate::error::SimResult;
use crate::simd::simulate_simd;
use crate::workload::ConvWork;

/// One controller command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Command {
    /// Select the dataflow mode for the coming layer (no cycle cost —
    /// "no overhead is incurred by switching between dataflow styles").
    SetDataflow(Dataflow),
    /// DMA transfer from DRAM into the global buffer.
    DmaLoad {
        /// Bytes moved.
        bytes: u64,
    },
    /// DMA transfer from the global buffer to DRAM.
    DmaStore {
        /// Bytes moved.
        bytes: u64,
    },
    /// Load stationary data into the PE array (weights in WS, input
    /// tiles in OS).
    Preload {
        /// Array cycles.
        cycles: u64,
    },
    /// MAC work (streaming in WS, broadcasts in OS).
    Compute {
        /// Array cycles.
        cycles: u64,
        /// Useful MACs performed.
        macs: u64,
    },
    /// Drain finished results to the global buffer.
    Drain {
        /// Array cycles.
        cycles: u64,
    },
    /// Vector-unit work for non-convolutional layers.
    Simd {
        /// Vector-unit cycles.
        cycles: u64,
    },
}

impl fmt::Display for Command {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Command::SetDataflow(d) => write!(f, "mode    {d}"),
            Command::DmaLoad { bytes } => write!(f, "dma.ld  {bytes} B"),
            Command::DmaStore { bytes } => write!(f, "dma.st  {bytes} B"),
            Command::Preload { cycles } => write!(f, "preload {cycles}"),
            Command::Compute { cycles, macs } => write!(f, "compute {cycles} ({macs} MACs)"),
            Command::Drain { cycles } => write!(f, "drain   {cycles}"),
            Command::Simd { cycles } => write!(f, "simd    {cycles}"),
        }
    }
}

/// The compiled command stream of one layer.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerProgram {
    /// Layer name.
    pub layer: String,
    /// Commands in issue order.
    pub commands: Vec<Command>,
}

impl LayerProgram {
    /// Total PE-array (or SIMD) cycles in this layer's stream.
    pub fn compute_cycles(&self) -> u64 {
        self.commands
            .iter()
            .map(|c| match c {
                Command::Preload { cycles }
                | Command::Compute { cycles, .. }
                | Command::Drain { cycles }
                | Command::Simd { cycles } => *cycles,
                _ => 0,
            })
            .sum()
    }

    /// Total DMA bytes in this layer's stream.
    pub fn dma_bytes(&self) -> u64 {
        self.commands
            .iter()
            .map(|c| match c {
                Command::DmaLoad { bytes } | Command::DmaStore { bytes } => *bytes,
                _ => 0,
            })
            .sum()
    }

    /// Total useful MACs.
    pub fn macs(&self) -> u64 {
        self.commands
            .iter()
            .map(|c| match c {
                Command::Compute { macs, .. } => *macs,
                _ => 0,
            })
            .sum()
    }
}

/// A compiled network: the static schedule as a command stream.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Network name.
    pub network: String,
    /// Per-layer streams in execution order.
    pub layers: Vec<LayerProgram>,
}

impl Program {
    /// Compiles a network under the given policy: per layer, picks the
    /// dataflow the scheduler would pick, walks the cycle machine's
    /// trace, and emits the merged command stream.
    ///
    /// # Errors
    ///
    /// The first [`SimError`] any layer surfaces, attributed to that
    /// layer.
    pub fn try_compile(
        network: &Network,
        cfg: &AcceleratorConfig,
        policy: DataflowPolicy,
        opts: SimOptions,
    ) -> SimResult<Program> {
        let mut layers = Vec::with_capacity(network.layers().len());
        for layer in network.layers() {
            let compiled = Self::compile_layer(layer, cfg, policy, opts)
                .map_err(|e| e.for_layer(&layer.name))?;
            layers.push(compiled);
        }
        Ok(Program { network: network.name().to_owned(), layers })
    }

    fn compile_layer(
        layer: &codesign_dnn::Layer,
        cfg: &AcceleratorConfig,
        policy: DataflowPolicy,
        opts: SimOptions,
    ) -> SimResult<LayerProgram> {
        let mut commands = Vec::new();
        match ConvWork::from_layer(layer) {
            Some(work) => {
                let dataflow = match policy {
                    DataflowPolicy::Fixed(d) => d,
                    DataflowPolicy::PerLayer => try_compare_dataflows(layer, cfg, opts)?.2,
                };
                // Validation precedes the cycle machines: trace_ws/trace_os
                // assume well-formed work, just like simulate_ws/simulate_os.
                work.validate()?;
                commands.push(Command::SetDataflow(dataflow));
                let traffic = opts.layer_traffic(&work, cfg)?;
                commands.push(Command::DmaLoad { bytes: traffic.input + traffic.weights });
                let trace = match dataflow {
                    Dataflow::WeightStationary => trace_ws(&work, cfg),
                    Dataflow::OutputStationary => trace_os(&work, cfg, opts.os),
                };
                // Merge consecutive same-phase segments into one
                // command each (the listing stays readable for
                // thousand-segment layers). Macro-segments fold their
                // whole repeat run into the command.
                for seg in trace.segments() {
                    let cycles = seg.total_cycles();
                    let macs = seg.total_macs();
                    match (seg.phase, commands.last_mut()) {
                        (Phase::Load, Some(Command::Preload { cycles: c })) => *c += cycles,
                        (Phase::Compute, Some(Command::Compute { cycles: c, macs: m })) => {
                            *c += cycles;
                            *m += macs;
                        }
                        (Phase::Drain, Some(Command::Drain { cycles: c })) => *c += cycles,
                        (Phase::Load, _) => commands.push(Command::Preload { cycles }),
                        (Phase::Compute, _) => {
                            commands.push(Command::Compute { cycles, macs });
                        }
                        (Phase::Drain, _) => commands.push(Command::Drain { cycles }),
                    }
                }
                commands.push(Command::DmaStore { bytes: traffic.output });
            }
            None => {
                let e = cfg.bytes_per_element() as u64;
                let perf = simulate_simd(layer, cfg)?;
                commands.push(Command::DmaLoad { bytes: layer.input.elements() as u64 * e });
                commands.push(Command::Simd { cycles: perf.cycles() });
                commands.push(Command::DmaStore { bytes: layer.output.elements() as u64 * e });
            }
        }
        Ok(LayerProgram { layer: layer.name.clone(), commands })
    }

    /// Compiles a network under the given policy. Infallible wrapper
    /// over [`Program::try_compile`].
    ///
    /// # Panics
    ///
    /// Panics (through the crate's single panic site) if any layer is
    /// degenerate or infeasible on this configuration.
    pub fn compile(
        network: &Network,
        cfg: &AcceleratorConfig,
        policy: DataflowPolicy,
        opts: SimOptions,
    ) -> Program {
        Self::try_compile(network, cfg, policy, opts).unwrap_or_else(|e| e.raise())
    }

    /// Replays the program against a hardware configuration and returns
    /// the end-to-end cycle estimate. Matches
    /// [`crate::simulate_network`]'s totals exactly — asserted by the
    /// integration tests.
    pub fn estimate(&self, cfg: &AcceleratorConfig) -> u64 {
        self.layers
            .iter()
            .map(|l| {
                let dram_cycles = cfg.dram().transfer_cycles(l.dma_bytes());
                combine_cycles(l.compute_cycles(), dram_cycles, cfg)
            })
            .sum()
    }

    /// Total commands across all layers.
    pub fn len(&self) -> usize {
        self.layers.iter().map(|l| l.commands.len()).sum()
    }

    /// Whether the program has no commands.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Renders an assembly-like listing.
    pub fn listing(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "; program for {}", self.network);
        for l in &self.layers {
            let _ = writeln!(out, "{}:", l.layer);
            for c in &l.commands {
                let _ = writeln!(out, "    {c}");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::simulate_network;
    use codesign_dnn::zoo;

    fn setup() -> (AcceleratorConfig, SimOptions) {
        (AcceleratorConfig::paper_default(), SimOptions::paper_default())
    }

    #[test]
    fn replay_matches_the_simulator_exactly() {
        let (cfg, opts) = setup();
        for net in [zoo::squeezenet_v1_1(), zoo::mobilenet_v1()] {
            for policy in [
                DataflowPolicy::PerLayer,
                DataflowPolicy::Fixed(Dataflow::WeightStationary),
                DataflowPolicy::Fixed(Dataflow::OutputStationary),
            ] {
                let program = Program::compile(&net, &cfg, policy, opts);
                let simulated = simulate_network(&net, &cfg, policy, opts);
                assert_eq!(
                    program.estimate(&cfg),
                    simulated.total_cycles(),
                    "{} under {policy}",
                    net.name()
                );
            }
        }
    }

    #[test]
    fn per_layer_macs_match_the_model() {
        let (cfg, opts) = setup();
        let net = zoo::squeezenet_v1_1();
        let program =
            Program::compile(&net, &cfg, DataflowPolicy::Fixed(Dataflow::WeightStationary), opts);
        for (lp, layer) in program.layers.iter().zip(net.layers()) {
            if layer.is_compute() {
                assert_eq!(lp.macs(), layer.macs(), "{}", layer.name);
            }
        }
    }

    #[test]
    fn streams_begin_with_mode_and_dma() {
        let (cfg, opts) = setup();
        let net = zoo::tiny_darknet();
        let program = Program::compile(&net, &cfg, DataflowPolicy::PerLayer, opts);
        let first = &program.layers[0];
        assert!(matches!(first.commands[0], Command::SetDataflow(_)));
        assert!(matches!(first.commands[1], Command::DmaLoad { .. }));
        assert!(matches!(first.commands.last(), Some(Command::DmaStore { .. })));
    }

    #[test]
    fn listing_is_assembly_like() {
        let (cfg, opts) = setup();
        let net = zoo::squeezenet_v1_1();
        let program = Program::compile(&net, &cfg, DataflowPolicy::PerLayer, opts);
        let listing = program.listing();
        assert!(listing.contains("conv1:"));
        assert!(listing.contains("mode    OS"));
        assert!(listing.contains("dma.ld"));
        assert!(listing.contains("compute"));
        assert!(!program.is_empty());
    }

    #[test]
    fn merging_keeps_streams_compact() {
        // fire layers have hundreds of machine segments; merged command
        // streams stay in the tens.
        let (cfg, opts) = setup();
        let net = zoo::squeezenet_v1_0();
        let program = Program::compile(&net, &cfg, DataflowPolicy::PerLayer, opts);
        let avg = program.len() as f64 / program.layers.len() as f64;
        assert!(avg < 600.0, "average commands per layer = {avg:.0}");
    }
}
