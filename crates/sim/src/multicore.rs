//! Multi-core accelerator configurations (§3.2 lists "multi-core
//! configuration" among the distinguishing features of NN accelerators).
//!
//! Model: `cores` identical Squeezelerator cores behind one shared DRAM
//! channel. Each layer is data-parallel across cores — spatial layers
//! split their output rows, vector-shaped layers (FC, global pooling
//! results) split output channels. Weights are multicast (fetched from
//! DRAM once); activations are naturally partitioned. Compute scales
//! until the shared DRAM channel saturates.

use codesign_arch::{AcceleratorConfig, Dataflow, DataflowPolicy};
use codesign_dnn::{Layer, Network};

use crate::dram::{combine_cycles, simd_traffic};
use crate::engine::{try_simulate_conv, SimOptions};
use crate::error::{SimError, SimResult};
use crate::perf::{ComputePerf, LayerPerf, NetworkPerf};
use crate::simd::simulate_simd;
use crate::workload::ConvWork;

/// A homogeneous multi-core accelerator.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiCoreConfig {
    /// Per-core configuration.
    pub core: AcceleratorConfig,
    /// Number of cores sharing the DRAM channel.
    pub cores: usize,
}

impl MultiCoreConfig {
    /// A single-core "multi-core" — must behave exactly like the plain
    /// simulator.
    pub fn single(core: AcceleratorConfig) -> Self {
        Self { core, cores: 1 }
    }
}

/// Splits a layer's workload into the slice one core processes.
///
/// Spatial layers split output rows; vector layers (`out_h == 1`) split
/// output channels. Returns `None` when there are more cores than units
/// of work (the extra cores idle and the largest slice is returned by
/// [`core_slice`]'s caller anyway).
fn core_slice(work: &ConvWork, cores: usize) -> ConvWork {
    let mut slice = *work;
    if work.out_h > 1 {
        slice.out_h = work.out_h.div_ceil(cores).max(1);
        // The input rows a core needs shrink accordingly; keep in_h
        // consistent for tiling (halo included).
        slice.in_h = (slice.out_h - 1) * work.stride + work.kernel_h;
    } else {
        slice.out_channels = work.out_channels.div_ceil(cores).max(1);
    }
    slice
}

fn simulate_layer_multicore(
    layer: &Layer,
    mc: &MultiCoreConfig,
    opts: SimOptions,
    dataflow: Dataflow,
) -> SimResult<LayerPerf> {
    const CTX: &str = "multi-core scaling";
    if mc.cores == 0 {
        return Err(SimError::invalid("core count must be positive"));
    }
    let cfg = &mc.core;
    let cores = mc.cores as u64;
    let of = || SimError::overflow(CTX);
    let result = match ConvWork::from_layer(layer) {
        Some(work) => {
            // The slowest (largest) slice gates the layer.
            let slice = core_slice(&work, mc.cores);
            let slice_perf = try_simulate_conv(&slice, cfg, opts, dataflow)?;
            // Aggregate access counts: every core does its share; scale
            // the slice's counts by the core count (upper bound — the
            // last core's slice may be smaller).
            let mut compute = ComputePerf {
                phases: slice_perf.phases,
                executed_macs: slice_perf.executed_macs.checked_mul(cores).ok_or_else(of)?,
                accesses: codesign_arch::AccessCounts {
                    macs: slice_perf.accesses.macs.checked_mul(cores).ok_or_else(of)?,
                    register_file: slice_perf
                        .accesses
                        .register_file
                        .checked_mul(cores)
                        .ok_or_else(of)?,
                    inter_pe: slice_perf.accesses.inter_pe.checked_mul(cores).ok_or_else(of)?,
                    global_buffer: slice_perf
                        .accesses
                        .global_buffer
                        .checked_mul(cores)
                        .ok_or_else(of)?,
                    dram: 0,
                },
            };
            // Shared DRAM: weights once (multicast), activations split.
            let traffic = opts.layer_traffic(&work, cfg)?;
            let dram_bytes = traffic.total();
            let dram_cycles = cfg.dram().transfer_cycles(dram_bytes);
            let total_cycles = combine_cycles(compute.cycles(), dram_cycles, cfg);
            compute.accesses.dram = dram_bytes / cfg.bytes_per_element() as u64;
            let pes = cfg.pe_count() * mc.cores;
            let utilization = if total_cycles == 0 {
                0.0
            } else {
                compute.executed_macs as f64 / (total_cycles as f64 * pes as f64)
            };
            Ok(LayerPerf {
                name: layer.name.clone(),
                dataflow: Some(dataflow),
                compute,
                dram_bytes,
                dram_cycles,
                total_cycles,
                utilization,
            })
        }
        None => {
            // SIMD path: split evenly too.
            let compute = simulate_simd(layer, cfg)?;
            let traffic =
                simd_traffic(layer.input.elements() as u64, layer.output.elements() as u64, cfg);
            let mut compute = compute;
            compute.phases.compute = compute.phases.compute.div_ceil(cores);
            let dram_bytes = traffic.total();
            let dram_cycles = cfg.dram().transfer_cycles(dram_bytes);
            let total_cycles = combine_cycles(compute.cycles(), dram_cycles, cfg);
            compute.accesses.dram = dram_bytes / cfg.bytes_per_element() as u64;
            Ok(LayerPerf {
                name: layer.name.clone(),
                dataflow: None,
                compute,
                dram_bytes,
                dram_cycles,
                total_cycles,
                utilization: 0.0,
            })
        }
    };
    result.map_err(|e: SimError| e.for_layer(&layer.name))
}

/// Simulates a network on a multi-core accelerator.
///
/// # Errors
///
/// [`SimError::InvalidWorkload`] for a zero core count; otherwise the
/// first error any layer surfaces, attributed to that layer.
pub fn try_simulate_network_multicore(
    network: &Network,
    mc: &MultiCoreConfig,
    policy: DataflowPolicy,
    opts: SimOptions,
) -> SimResult<NetworkPerf> {
    let mut layers = Vec::with_capacity(network.layers().len());
    for layer in network.layers() {
        let perf = match policy {
            DataflowPolicy::Fixed(d) => simulate_layer_multicore(layer, mc, opts, d)?,
            DataflowPolicy::PerLayer => {
                let ws = simulate_layer_multicore(layer, mc, opts, Dataflow::WeightStationary)?;
                let os = simulate_layer_multicore(layer, mc, opts, Dataflow::OutputStationary)?;
                if os.total_cycles < ws.total_cycles {
                    os
                } else {
                    ws
                }
            }
        };
        layers.push(perf);
    }
    Ok(NetworkPerf { name: network.name().to_owned(), layers })
}

/// Simulates a network on a multi-core accelerator. Infallible wrapper
/// over [`try_simulate_network_multicore`].
pub fn simulate_network_multicore(
    network: &Network,
    mc: &MultiCoreConfig,
    policy: DataflowPolicy,
    opts: SimOptions,
) -> NetworkPerf {
    try_simulate_network_multicore(network, mc, policy, opts).unwrap_or_else(|e| e.raise())
}

/// Result of the branch-parallel schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BranchParallelResult {
    /// Network name.
    pub network: String,
    /// Makespan in cycles.
    pub makespan: u64,
    /// Sum of layer durations (the single-core serial time).
    pub serial_cycles: u64,
    /// Layers that ran concurrently with at least one other layer.
    pub overlapped_layers: usize,
}

impl BranchParallelResult {
    /// Serial time over makespan (1.0 = no inter-layer parallelism found).
    pub fn speedup(&self) -> f64 {
        self.serial_cycles as f64 / self.makespan as f64
    }
}

/// Schedules whole layers across cores, exploiting **inter-layer**
/// parallelism: independent branches (fire expands, residual shortcuts)
/// run on different cores concurrently. Each layer runs on one core with
/// its single-core duration; dependencies follow the IR's
/// `primary_input`/`extra_input` edges; DRAM contention between
/// concurrent layers is not modeled (documented optimism — the
/// data-parallel split in [`simulate_network_multicore`] is the
/// conservative counterpart).
pub fn schedule_branch_parallel(
    network: &Network,
    mc: &MultiCoreConfig,
    opts: SimOptions,
) -> BranchParallelResult {
    use std::collections::HashMap;

    let cfg = &mc.core;
    // Single-core duration and ready-time bookkeeping per layer.
    let durations: Vec<u64> = network
        .layers()
        .iter()
        .map(|layer| {
            let ws = crate::engine::simulate_layer(layer, cfg, opts, Dataflow::WeightStationary);
            let os = crate::engine::simulate_layer(layer, cfg, opts, Dataflow::OutputStationary);
            ws.total_cycles.min(os.total_cycles)
        })
        .collect();

    let mut finish: HashMap<&str, u64> = HashMap::new();
    let mut cores = vec![0u64; mc.cores.max(1)];
    let mut overlapped = 0usize;
    let mut makespan = 0u64;
    let mut intervals: Vec<(u64, u64)> = Vec::new();
    for (layer, &dur) in network.layers().iter().zip(&durations) {
        let dep = |name: &Option<String>| {
            name.as_deref().and_then(|n| finish.get(n)).copied().unwrap_or(0)
        };
        let ready = dep(&layer.primary_input).max(dep(&layer.extra_input));
        // Earliest-available core (`cores` is non-empty by construction:
        // `mc.cores.max(1)` above).
        let core = cores.iter().enumerate().min_by_key(|(_, &t)| t).map(|(i, _)| i).unwrap_or(0);
        let start = ready.max(cores[core]);
        let end = start + dur;
        cores[core] = end;
        finish.insert(&layer.name, end);
        if intervals.iter().any(|&(s, e)| start < e && s < end) {
            overlapped += 1;
        }
        intervals.push((start, end));
        makespan = makespan.max(end);
    }
    BranchParallelResult {
        network: network.name().to_owned(),
        makespan,
        serial_cycles: durations.iter().sum(),
        overlapped_layers: overlapped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::simulate_network;
    use codesign_dnn::zoo;

    fn opts() -> SimOptions {
        SimOptions::paper_default()
    }

    #[test]
    fn single_core_matches_the_plain_simulator() {
        let cfg = AcceleratorConfig::paper_default();
        let mc = MultiCoreConfig::single(cfg.clone());
        let net = zoo::squeezenet_v1_1();
        let plain = simulate_network(&net, &cfg, DataflowPolicy::PerLayer, opts());
        let multi = simulate_network_multicore(&net, &mc, DataflowPolicy::PerLayer, opts());
        assert_eq!(plain.total_cycles(), multi.total_cycles());
    }

    #[test]
    fn more_cores_never_slow_inference_down() {
        let cfg = AcceleratorConfig::paper_default();
        let net = zoo::squeezenet_v1_0();
        let mut last = u64::MAX;
        for cores in [1, 2, 4] {
            let mc = MultiCoreConfig { core: cfg.clone(), cores };
            let cycles = simulate_network_multicore(&net, &mc, DataflowPolicy::PerLayer, opts())
                .total_cycles();
            assert!(cycles <= last, "{cores} cores: {cycles} > {last}");
            last = cycles;
        }
    }

    #[test]
    fn scaling_saturates_at_the_dram_wall() {
        // AlexNet's FC layers are weight-movement bound: 4 cores barely
        // help the whole network compared to a compute-bound one.
        let cfg = AcceleratorConfig::paper_default();
        let mc4 = MultiCoreConfig { core: cfg.clone(), cores: 4 };
        let speedup = |net: &codesign_dnn::Network| {
            let one = simulate_network(net, &cfg, DataflowPolicy::PerLayer, opts()).total_cycles();
            let four = simulate_network_multicore(net, &mc4, DataflowPolicy::PerLayer, opts())
                .total_cycles();
            one as f64 / four as f64
        };
        let alex = speedup(&zoo::alexnet());
        let tiny = speedup(&zoo::tiny_darknet());
        assert!(tiny > alex, "compute-bound {tiny:.2} vs dram-bound {alex:.2}");
        assert!(alex < 2.0, "AlexNet cannot scale past the DRAM wall: {alex:.2}");
    }

    #[test]
    fn branch_parallel_matches_serial_on_one_core() {
        let cfg = AcceleratorConfig::paper_default();
        let mc = MultiCoreConfig::single(cfg.clone());
        let net = zoo::squeezenet_v1_1();
        let r = schedule_branch_parallel(&net, &mc, opts());
        assert_eq!(r.makespan, r.serial_cycles);
        assert!((r.speedup() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fire_branches_overlap_on_two_cores() {
        let cfg = AcceleratorConfig::paper_default();
        let mc = MultiCoreConfig { core: cfg.clone(), cores: 2 };
        let net = zoo::squeezenet_v1_0();
        let r = schedule_branch_parallel(&net, &mc, opts());
        // expand1x1 runs beside expand3x3 / shortcut work.
        assert!(r.overlapped_layers > 4, "overlapped = {}", r.overlapped_layers);
        assert!(r.makespan < r.serial_cycles);
        assert!(r.speedup() <= 2.0 + 1e-9);
    }

    #[test]
    fn linear_chains_cannot_overlap() {
        // Tiny Darknet is a pure chain: extra cores buy nothing at the
        // layer granularity.
        let cfg = AcceleratorConfig::paper_default();
        let mc = MultiCoreConfig { core: cfg.clone(), cores: 4 };
        let r = schedule_branch_parallel(&zoo::tiny_darknet(), &mc, opts());
        assert_eq!(r.overlapped_layers, 0);
        assert_eq!(r.makespan, r.serial_cycles);
    }

    #[test]
    fn branch_parallelism_is_modest_next_to_data_parallelism() {
        // The fire expands are unbalanced (3x3 dominates), so inter-layer
        // parallelism saves far less than splitting each layer spatially.
        let cfg = AcceleratorConfig::paper_default();
        let mc = MultiCoreConfig { core: cfg.clone(), cores: 2 };
        let net = zoo::squeezenet_v1_0();
        let branch = schedule_branch_parallel(&net, &mc, opts()).makespan;
        let data =
            simulate_network_multicore(&net, &mc, DataflowPolicy::PerLayer, opts()).total_cycles();
        assert!(data < branch, "data-parallel {data} should beat branch-parallel {branch}");
    }

    #[test]
    fn vector_layers_split_channels() {
        let work = ConvWork {
            kind: crate::workload::WorkKind::FullyConnected,
            groups: 1,
            in_channels: 1024,
            out_channels: 1000,
            kernel_h: 1,
            kernel_w: 1,
            stride: 1,
            in_h: 1,
            in_w: 1,
            out_h: 1,
            out_w: 1,
        };
        let slice = core_slice(&work, 4);
        assert_eq!(slice.out_channels, 250);
        assert_eq!(slice.out_h, 1);
    }

    #[test]
    fn spatial_layers_split_rows_with_halo() {
        let work = ConvWork {
            kind: crate::workload::WorkKind::Dense,
            groups: 1,
            in_channels: 16,
            out_channels: 16,
            kernel_h: 3,
            kernel_w: 3,
            stride: 2,
            in_h: 57,
            in_w: 57,
            out_h: 28,
            out_w: 28,
        };
        let slice = core_slice(&work, 4);
        assert_eq!(slice.out_h, 7);
        assert_eq!(slice.in_h, 6 * 2 + 3);
    }
}
