//! Discrete-event simulation of the accelerator's tile pipeline.
//!
//! The analytic model folds DRAM behind compute with
//! `max(compute, dram) + latency` (one number per layer). This module
//! checks that shortcut from below: it builds each layer's actual tile
//! sequence from the tiling plan, then plays the tiles through explicit
//! [`units::DmaUnit`] and [`units::ArrayUnit`] resources — the DMA
//! prefetches tile *i+1* into one half of the double buffer while the
//! array computes tile *i* from the other half, exactly the §4.1.3
//! scheme, and the next layer's weights (which have no data dependency)
//! stream during the current layer's compute. Pipeline bubbles — the
//! array waiting on data, single-tile layers that cannot hide their own
//! input load — fall out of the event order instead of being assumed
//! away, so the event totals run a documented few tens of percent above
//! the analytic estimate on networks dominated by small layers.
//!
//! # Time skipping
//!
//! The scheduler is a next-event queue over the two units: each step
//! jumps straight to the earliest completion time instead of advancing
//! cycle by cycle. On top of that, steady-state runs of identical tiles
//! are advanced in one arithmetic step: once two consecutive identical
//! tiles finish with the same uniform clock advance Δ (every unit clock
//! moved by exactly Δ and no constant clamp — layer start, pending
//! weights — was active), every following identical tile must repeat the
//! same pattern shifted by Δ, because the unit update rules only compare
//! clocks against each other. The remaining run then collapses to
//! `k · Δ` ([`units::DmaUnit::fast_forward`]). [`TimeSkip::Disabled`]
//! keeps the tile-by-tile walk as the executable baseline; the test
//! suite holds the two bit-identical across the zoo.

pub mod units;

use std::collections::HashMap;

use codesign_arch::{AcceleratorConfig, Dataflow, DataflowPolicy};
use codesign_dnn::{Layer, Network};

use crate::dram::conv_traffic;
use crate::engine::{try_simulate_conv, SimOptions, Simulator, TrafficModel};
use crate::error::{SimError, SimResult};
use crate::simd::simulate_simd;
use crate::tiling::optimize_tiling;
use crate::workload::ConvWork;

use units::{ArrayUnit, Cycle, DmaUnit};

/// Whether steady-state runs of identical tiles are advanced in one
/// arithmetic step or played tile by tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TimeSkip {
    /// Fast-forward identical-tile runs (the default).
    #[default]
    Enabled,
    /// Walk every tile — the executable baseline the fast path is
    /// property-tested against.
    Disabled,
}

/// One layer's outcome under the event model.
#[derive(Debug, Clone, PartialEq)]
pub struct EventLayerResult {
    /// Layer name.
    pub name: String,
    /// End-to-end cycles of this layer (its tiles' span).
    pub cycles: Cycle,
    /// Cycles the array sat idle waiting for data within the layer.
    pub array_stall_cycles: Cycle,
    /// Number of tiles executed.
    pub tiles: u64,
}

/// Whole-network event-simulation result.
#[derive(Debug, Clone, PartialEq)]
pub struct EventResult {
    /// Network name.
    pub network: String,
    /// Per-layer outcomes.
    pub layers: Vec<EventLayerResult>,
}

impl EventResult {
    /// Total inference cycles.
    pub fn total_cycles(&self) -> Cycle {
        self.layers.iter().map(|l| l.cycles).sum()
    }

    /// Total array stall cycles (the cost the analytic `max()` hides).
    pub fn total_stalls(&self) -> Cycle {
        self.layers.iter().map(|l| l.array_stall_cycles).sum()
    }
}

/// A tile transaction: dependent input bytes in, compute, bytes out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct TileTxn {
    input_bytes: u64,
    compute_cycles: Cycle,
    store_bytes: u64,
}

/// A layer lowered to the event model: a weight prefetch (no data
/// dependency — it may stream during the *previous* layer's compute,
/// the inter-layer half of the double-buffering scheme) plus the
/// dependent tile pipeline.
#[derive(Debug, Clone, PartialEq)]
struct LayerTxns {
    weight_bytes: u64,
    tiles: Vec<TileTxn>,
}

/// Builds a layer's tile sequence: the tiling plan fixes the tile count
/// and total traffic; the analytic model fixes total compute. Both are
/// spread evenly across tiles (remainders on the last tile). The single
/// `optimize_tiling` search serves both the tile count and the traffic
/// totals — the lowering never runs the §4.1.3 search twice.
fn tile_sequence(
    work: &ConvWork,
    cfg: &AcceleratorConfig,
    opts: SimOptions,
    dataflow: Dataflow,
) -> SimResult<LayerTxns> {
    let plan = optimize_tiling(work, cfg)?;
    let compute = try_simulate_conv(work, cfg, opts, dataflow)?.cycles();
    let tiles = (work.out_h.div_ceil(plan.tiling.out_rows)
        * work.out_channels.div_ceil(plan.tiling.out_channels)
        * work.in_channels.div_ceil(plan.tiling.in_channels)
        * work.groups) as u64;
    let tiles = tiles.max(1);
    let raw = match opts.traffic {
        TrafficModel::ClosedForm => {
            work.validate()?;
            conv_traffic(work, cfg)
        }
        TrafficModel::TilingSearch => plan.traffic,
    };
    let traffic = opts.finish_traffic(raw, work, cfg);
    let spread = |total: u64, i: u64| {
        let base = total / tiles;
        if i == tiles - 1 {
            base + total % tiles
        } else {
            base
        }
    };
    // Weights that fit a buffer half are prefetched whole across the
    // layer boundary; larger weight sets (FC layers, late convs) stream
    // tile by tile and pipeline with compute like inputs do.
    let weights_fit = traffic.weights <= cfg.working_buffer_bytes() as u64 / 2;
    let (prefetch_weights, streamed_weights) =
        if weights_fit { (traffic.weights, 0) } else { (0, traffic.weights) };
    Ok(LayerTxns {
        weight_bytes: prefetch_weights,
        tiles: (0..tiles)
            .map(|i| TileTxn {
                input_bytes: spread(traffic.input, i) + spread(streamed_weights, i),
                compute_cycles: spread(compute, i),
                store_bytes: spread(traffic.output, i),
            })
            .collect(),
    })
}

/// Pipeline state carried across layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PipelineState {
    /// When the previous layer's compute began — the earliest moment its
    /// successor's weights may start streaming (the buffer half frees).
    prev_compute_start: Cycle,
    /// When the previous layer fully finished (inputs depend on it).
    finished: Cycle,
}

/// End-of-iteration snapshot used to detect the steady state: all unit
/// clocks plus the accumulated counters, and whether a constant clamp
/// (pending weights) still shaped this iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct IterSnap {
    loaded: Cycle,
    dma_free: Cycle,
    array_free: Cycle,
    finish: Cycle,
    stalls: Cycle,
    dma_busy: Cycle,
    dma_bursts: u64,
    array_busy: Cycle,
    weights_pending: bool,
}

/// Per-iteration advance once the pipeline is periodic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct IterDelta {
    dt: Cycle,
    stalls: Cycle,
    dma_busy: Cycle,
    dma_bursts: u64,
    array_busy: Cycle,
}

/// Detects the steady state from three consecutive snapshots: the two
/// iteration deltas must match field for field, every clock must have
/// advanced by the same Δ (a uniform time translation), and no constant
/// clamp may have been active. Under those conditions the unit update
/// rules — which only compare clocks against each other — commute with
/// the translation, so every later identical tile repeats the pattern.
fn steady_delta(a: &IterSnap, b: &IterSnap, c: &IterSnap) -> Option<IterDelta> {
    if b.weights_pending || c.weights_pending {
        return None;
    }
    let delta = |x: &IterSnap, y: &IterSnap| {
        Some(IterDelta {
            dt: y.loaded.checked_sub(x.loaded)?,
            stalls: y.stalls.checked_sub(x.stalls)?,
            dma_busy: y.dma_busy.checked_sub(x.dma_busy)?,
            dma_bursts: y.dma_bursts.checked_sub(x.dma_bursts)?,
            array_busy: y.array_busy.checked_sub(x.array_busy)?,
        })
    };
    let d1 = delta(a, b)?;
    let d2 = delta(b, c)?;
    let uniform = c.dma_free.checked_sub(b.dma_free) == Some(d2.dt)
        && c.array_free.checked_sub(b.array_free) == Some(d2.dt)
        && c.finish.checked_sub(b.finish) == Some(d2.dt)
        && b.dma_free.checked_sub(a.dma_free) == Some(d1.dt)
        && b.array_free.checked_sub(a.array_free) == Some(d1.dt)
        && b.finish.checked_sub(a.finish) == Some(d1.dt);
    (d1 == d2 && uniform).then_some(d2)
}

/// The longest run of leading identical tiles that a steady-state jump
/// may cover: iteration `i` both consumes `tiles[i]` and (when double
/// buffering) prefetches `tiles[i + 1]`, so both must equal the base
/// tile for the iteration to be periodic.
fn steady_window_end(tiles: &[TileTxn]) -> Option<usize> {
    let base = tiles.first()?;
    let prefix = tiles.iter().take_while(|t| *t == base).count();
    if prefix < 3 {
        return None; // nothing beyond the detection iterations
    }
    Some((prefix - 2).min(tiles.len() - 2))
}

/// Plays one layer's transactions through the units; returns the updated
/// pipeline state plus `(stall cycles, tile count)`.
fn play_layer(
    txns: &LayerTxns,
    dma: &mut DmaUnit,
    array: &mut ArrayUnit,
    state: PipelineState,
    double_buffering: bool,
    skip: TimeSkip,
) -> (PipelineState, Cycle, u64) {
    let now = state.finished;
    let mut stalls = 0;
    let mut finish = now;
    let mut first_compute_start = now;
    let n = txns.tiles.len();
    let window_end = match skip {
        TimeSkip::Enabled => steady_window_end(&txns.tiles),
        TimeSkip::Disabled => None,
    };
    let mut prev_snaps: (Option<IterSnap>, Option<IterSnap>) = (None, None);
    if double_buffering {
        // Weights have no data dependency: stream them as soon as the
        // previous layer's compute frees a buffer half.
        let weights_done = dma.transfer(state.prev_compute_start, txns.weight_bytes);
        // Prefetch pipeline over the dependent input tiles: tile i+1's
        // load is issued the moment tile i's compute begins (one buffer
        // half frees), so it runs under that compute; stores ride the
        // DMA afterwards and may themselves overlap later tiles.
        let mut loaded = dma.transfer(now, txns.tiles[0].input_bytes);
        let mut i = 0usize;
        while i < n {
            let t = txns.tiles[i];
            let ready = loaded.max(weights_done);
            let start = ready.max(array.free_at()).max(now);
            stalls += start.saturating_sub(array.free_at().max(now));
            if i == 0 {
                first_compute_start = start;
            }
            if let Some(next) = txns.tiles.get(i + 1) {
                loaded = dma.transfer(start, next.input_bytes);
            }
            let done = array.run(start, t.compute_cycles);
            finish = dma.transfer(done, t.store_bytes).max(done);

            if let Some(we) = window_end.filter(|&we| i <= we) {
                let cur = IterSnap {
                    loaded,
                    dma_free: dma.free_at(),
                    array_free: array.free_at(),
                    finish,
                    stalls,
                    dma_busy: dma.busy_cycles(),
                    dma_bursts: dma.bursts(),
                    array_busy: array.busy_cycles(),
                    weights_pending: weights_done > loaded,
                };
                if let (Some(a), Some(b)) = (prev_snaps.0, prev_snaps.1) {
                    if let Some(d) = steady_delta(&a, &b, &cur) {
                        let k = (we - i) as u64;
                        if k > 0 {
                            loaded += k * d.dt;
                            finish += k * d.dt;
                            stalls += k * d.stalls;
                            dma.fast_forward(k * d.dt, k * d.dma_busy, k * d.dma_bursts);
                            array.fast_forward(k * d.dt, k * d.array_busy);
                            prev_snaps = (None, None);
                            i = we + 1;
                            continue;
                        }
                    }
                }
                prev_snaps = (prev_snaps.1, Some(cur));
            }
            i += 1;
        }
    } else {
        let weights_done = dma.transfer(now, txns.weight_bytes);
        finish = finish.max(weights_done);
        let mut i = 0usize;
        while i < n {
            let t = txns.tiles[i];
            let loaded = dma.transfer(finish, t.input_bytes);
            let start = loaded.max(array.free_at());
            if i == 0 {
                first_compute_start = start;
            }
            let done = array.run(start, t.compute_cycles);
            finish = dma.transfer(done, t.store_bytes).max(done);

            if let Some(we) = window_end.filter(|&we| i <= we) {
                let cur = IterSnap {
                    loaded,
                    dma_free: dma.free_at(),
                    array_free: array.free_at(),
                    finish,
                    stalls,
                    dma_busy: dma.busy_cycles(),
                    dma_bursts: dma.bursts(),
                    array_busy: array.busy_cycles(),
                    weights_pending: false,
                };
                if let (Some(a), Some(b)) = (prev_snaps.0, prev_snaps.1) {
                    if let Some(d) = steady_delta(&a, &b, &cur) {
                        let k = (we - i) as u64;
                        if k > 0 {
                            finish += k * d.dt;
                            dma.fast_forward(k * d.dt, k * d.dma_busy, k * d.dma_bursts);
                            array.fast_forward(k * d.dt, k * d.array_busy);
                            prev_snaps = (None, None);
                            i = we + 1;
                            continue;
                        }
                    }
                }
                prev_snaps = (prev_snaps.1, Some(cur));
            }
            i += 1;
        }
    }
    (
        PipelineState { prev_compute_start: first_compute_start, finished: finish },
        stalls,
        txns.tiles.len() as u64,
    )
}

/// Per-network lowering context: a memoizing [`Simulator`] for the
/// dataflow decision plus a shape-keyed cache of lowered tile sequences,
/// so repeated layer shapes (fire modules, depthwise ladders) lower
/// once.
struct Lowering {
    sim: Simulator,
    txns: HashMap<(ConvWork, Dataflow), LayerTxns>,
    best: HashMap<ConvWork, Dataflow>,
}

impl Lowering {
    fn new() -> Self {
        Self { sim: Simulator::new(), txns: HashMap::new(), best: HashMap::new() }
    }

    fn lower_layer(
        &mut self,
        layer: &Layer,
        cfg: &AcceleratorConfig,
        opts: SimOptions,
        policy: DataflowPolicy,
    ) -> SimResult<LayerTxns> {
        let lowered = match ConvWork::from_layer(layer) {
            Some(work) => {
                let dataflow = match policy {
                    DataflowPolicy::Fixed(d) => d,
                    DataflowPolicy::PerLayer => match self.best.get(&work) {
                        Some(&d) => d,
                        None => {
                            let d = self.sim.try_compare_dataflows(layer, cfg, opts)?.2;
                            self.best.insert(work, d);
                            d
                        }
                    },
                };
                match self.txns.get(&(work, dataflow)) {
                    Some(t) => Ok(t.clone()),
                    None => {
                        let t = tile_sequence(&work, cfg, opts, dataflow)?;
                        self.txns.insert((work, dataflow), t.clone());
                        Ok(t)
                    }
                }
            }
            None => simulate_simd(layer, cfg).map(|perf| {
                let e = cfg.bytes_per_element() as u64;
                LayerTxns {
                    weight_bytes: 0,
                    tiles: vec![TileTxn {
                        input_bytes: layer.input.elements() as u64 * e,
                        compute_cycles: perf.cycles(),
                        store_bytes: layer.output.elements() as u64 * e,
                    }],
                }
            }),
        };
        lowered.map_err(|e: SimError| e.for_layer(&layer.name))
    }
}

/// Runs a whole network through the event model with an explicit
/// [`TimeSkip`] mode. Layers execute back to back (the paper's
/// layer-by-layer operation), each with its own tile pipeline.
///
/// # Errors
///
/// The first [`SimError`] any layer surfaces, attributed to that layer.
pub fn try_simulate_network_event_mode(
    network: &Network,
    cfg: &AcceleratorConfig,
    policy: DataflowPolicy,
    opts: SimOptions,
    skip: TimeSkip,
) -> SimResult<EventResult> {
    let mut lowering = Lowering::new();
    let mut dma = DmaUnit::new(cfg.dram());
    let mut array = ArrayUnit::new();
    let mut state = PipelineState { prev_compute_start: 0, finished: 0 };
    let mut layers = Vec::with_capacity(network.layers().len());
    for layer in network.layers() {
        let start = state.finished;
        let txns = lowering.lower_layer(layer, cfg, opts, policy)?;
        let (next, stalls, tiles) =
            play_layer(&txns, &mut dma, &mut array, state, cfg.double_buffering(), skip);
        layers.push(EventLayerResult {
            name: layer.name.clone(),
            cycles: next.finished - start,
            array_stall_cycles: stalls,
            tiles,
        });
        state = next;
    }
    Ok(EventResult { network: network.name().to_owned(), layers })
}

/// Runs a whole network through the event model (time skipping on).
///
/// # Errors
///
/// The first [`SimError`] any layer surfaces, attributed to that layer.
pub fn try_simulate_network_event(
    network: &Network,
    cfg: &AcceleratorConfig,
    policy: DataflowPolicy,
    opts: SimOptions,
) -> SimResult<EventResult> {
    try_simulate_network_event_mode(network, cfg, policy, opts, TimeSkip::Enabled)
}

/// Runs a whole network through the event model. Infallible wrapper
/// over [`try_simulate_network_event`].
pub fn simulate_network_event(
    network: &Network,
    cfg: &AcceleratorConfig,
    policy: DataflowPolicy,
    opts: SimOptions,
) -> EventResult {
    try_simulate_network_event(network, cfg, policy, opts).unwrap_or_else(|e| e.raise())
}

/// Helper for one standalone layer (unit tests, calibration).
///
/// # Errors
///
/// Any [`SimError`] the layer surfaces.
pub fn try_simulate_layer_event(
    layer: &Layer,
    cfg: &AcceleratorConfig,
    opts: SimOptions,
    dataflow: Dataflow,
) -> SimResult<EventLayerResult> {
    let mut dma = DmaUnit::new(cfg.dram());
    let mut array = ArrayUnit::new();
    let txns = Lowering::new().lower_layer(layer, cfg, opts, DataflowPolicy::Fixed(dataflow))?;
    let state = PipelineState { prev_compute_start: 0, finished: 0 };
    let (next, stalls, tiles) =
        play_layer(&txns, &mut dma, &mut array, state, cfg.double_buffering(), TimeSkip::Enabled);
    Ok(EventLayerResult {
        name: layer.name.clone(),
        cycles: next.finished,
        array_stall_cycles: stalls,
        tiles,
    })
}

/// Helper for one standalone layer (unit tests, calibration).
/// Infallible wrapper over [`try_simulate_layer_event`].
pub fn simulate_layer_event(
    layer: &Layer,
    cfg: &AcceleratorConfig,
    opts: SimOptions,
    dataflow: Dataflow,
) -> EventLayerResult {
    try_simulate_layer_event(layer, cfg, opts, dataflow).unwrap_or_else(|e| e.raise())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::simulate_network;
    use codesign_dnn::zoo;

    fn setup() -> (AcceleratorConfig, SimOptions) {
        (AcceleratorConfig::paper_default(), SimOptions::paper_default())
    }

    #[test]
    fn event_totals_track_the_analytic_model() {
        // The analytic combine is max(compute, dram) + latency per layer;
        // the event pipeline adds the bubbles that shortcut hides — in
        // particular, a layer that fits the buffer in one tile cannot
        // overlap its own (dependent) input load with its own compute,
        // so networks dominated by small layers run up to ~35% over the
        // analytic estimate. The band below documents that honest gap.
        let (cfg, opts) = setup();
        for net in [zoo::squeezenet_v1_1(), zoo::tiny_darknet(), zoo::mobilenet_v1()] {
            let analytic =
                simulate_network(&net, &cfg, DataflowPolicy::PerLayer, opts).total_cycles() as f64;
            let event = simulate_network_event(&net, &cfg, DataflowPolicy::PerLayer, opts)
                .total_cycles() as f64;
            let ratio = event / analytic;
            assert!((0.8..1.4).contains(&ratio), "{}: event/analytic = {ratio:.3}", net.name());
        }
    }

    #[test]
    fn time_skip_matches_the_tile_by_tile_baseline_on_the_zoo() {
        // The fast-forward jump must be invisible: identical per-layer
        // cycles, stalls, and tile counts on every zoo network, under
        // both dataflow policies.
        let (cfg, opts) = setup();
        for net in zoo::table_networks() {
            for policy in [
                DataflowPolicy::PerLayer,
                DataflowPolicy::Fixed(Dataflow::WeightStationary),
                DataflowPolicy::Fixed(Dataflow::OutputStationary),
            ] {
                let fast =
                    try_simulate_network_event_mode(&net, &cfg, policy, opts, TimeSkip::Enabled)
                        .expect("fast event sim");
                let spec =
                    try_simulate_network_event_mode(&net, &cfg, policy, opts, TimeSkip::Disabled)
                        .expect("baseline event sim");
                assert_eq!(fast, spec, "{} under {policy}", net.name());
            }
        }
    }

    #[test]
    fn time_skip_matches_baseline_without_double_buffering() {
        let opts = SimOptions::paper_default();
        let cfg = AcceleratorConfig::builder()
            .double_buffering(false)
            .global_buffer_bytes(64 * 1024)
            .build()
            .unwrap();
        for net in [zoo::squeezenet_v1_1(), zoo::alexnet()] {
            let fast = try_simulate_network_event_mode(
                &net,
                &cfg,
                DataflowPolicy::PerLayer,
                opts,
                TimeSkip::Enabled,
            )
            .expect("fast event sim");
            let spec = try_simulate_network_event_mode(
                &net,
                &cfg,
                DataflowPolicy::PerLayer,
                opts,
                TimeSkip::Disabled,
            )
            .expect("baseline event sim");
            assert_eq!(fast, spec, "{}", net.name());
        }
    }

    #[test]
    fn event_is_never_faster_than_the_compute_floor() {
        let (cfg, opts) = setup();
        let net = zoo::squeezenet_v1_0();
        let event = simulate_network_event(&net, &cfg, DataflowPolicy::PerLayer, opts);
        let analytic = simulate_network(&net, &cfg, DataflowPolicy::PerLayer, opts);
        for (e, a) in event.layers.iter().zip(&analytic.layers) {
            assert!(
                e.cycles + 1 >= a.compute.cycles(),
                "{}: event {} below compute floor {}",
                e.name,
                e.cycles,
                a.compute.cycles()
            );
        }
    }

    #[test]
    fn double_buffering_hides_loads_in_the_event_model_too() {
        let (cfg, opts) = setup();
        let no_db = AcceleratorConfig::builder()
            .double_buffering(false)
            .global_buffer_bytes(64 * 1024)
            .build()
            .unwrap();
        let net = zoo::squeezenet_v1_1();
        let with_db =
            simulate_network_event(&net, &cfg, DataflowPolicy::PerLayer, opts).total_cycles();
        let without =
            simulate_network_event(&net, &no_db, DataflowPolicy::PerLayer, opts).total_cycles();
        assert!(with_db < without, "{with_db} !< {without}");
    }

    #[test]
    fn stalls_appear_on_memory_bound_layers() {
        // AlexNet FC: DMA-limited; the array must stall.
        let (cfg, opts) = setup();
        let net = zoo::alexnet();
        let r = simulate_network_event(&net, &cfg, DataflowPolicy::PerLayer, opts);
        let fc6 = r.layers.iter().find(|l| l.name == "fc6").unwrap();
        assert!(fc6.array_stall_cycles > 0);
    }

    #[test]
    fn compute_bound_layers_barely_stall() {
        let (cfg, opts) = setup();
        let net = zoo::squeezenet_v1_0();
        let r = simulate_network_event(&net, &cfg, DataflowPolicy::PerLayer, opts);
        let conv1 = r.layers.iter().find(|l| l.name == "conv1").unwrap();
        // conv1 is strongly compute bound: stalls are a small fraction.
        assert!(
            (conv1.array_stall_cycles as f64) < 0.25 * conv1.cycles as f64,
            "stalls {} of {}",
            conv1.array_stall_cycles,
            conv1.cycles
        );
    }

    #[test]
    fn tile_counts_are_positive() {
        let (cfg, opts) = setup();
        let net = zoo::squeezenet_v1_1();
        let r = simulate_network_event(&net, &cfg, DataflowPolicy::PerLayer, opts);
        assert!(r.layers.iter().all(|l| l.tiles >= 1));
        assert!(r.total_stalls() < r.total_cycles());
    }
}
