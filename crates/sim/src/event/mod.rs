//! Discrete-event simulation of the accelerator's tile pipeline.
//!
//! The analytic model folds DRAM behind compute with
//! `max(compute, dram) + latency` (one number per layer). This module
//! checks that shortcut from below: it builds each layer's actual tile
//! sequence from the tiling plan, then plays the tiles through explicit
//! [`units::DmaUnit`] and [`units::ArrayUnit`] resources — the DMA
//! prefetches tile *i+1* into one half of the double buffer while the
//! array computes tile *i* from the other half, exactly the §4.1.3
//! scheme, and the next layer's weights (which have no data dependency)
//! stream during the current layer's compute. Pipeline bubbles — the
//! array waiting on data, single-tile layers that cannot hide their own
//! input load — fall out of the event order instead of being assumed
//! away, so the event totals run a documented few tens of percent above
//! the analytic estimate on networks dominated by small layers.

pub mod units;

use codesign_arch::{AcceleratorConfig, Dataflow, DataflowPolicy};
use codesign_dnn::{Layer, Network};

use crate::engine::{try_simulate_conv, SimOptions};
use crate::error::{SimError, SimResult};
use crate::simd::simulate_simd;
use crate::tiling::optimize_tiling;
use crate::workload::ConvWork;

use units::{ArrayUnit, Cycle, DmaUnit};

/// One layer's outcome under the event model.
#[derive(Debug, Clone, PartialEq)]
pub struct EventLayerResult {
    /// Layer name.
    pub name: String,
    /// End-to-end cycles of this layer (its tiles' span).
    pub cycles: Cycle,
    /// Cycles the array sat idle waiting for data within the layer.
    pub array_stall_cycles: Cycle,
    /// Number of tiles executed.
    pub tiles: u64,
}

/// Whole-network event-simulation result.
#[derive(Debug, Clone, PartialEq)]
pub struct EventResult {
    /// Network name.
    pub network: String,
    /// Per-layer outcomes.
    pub layers: Vec<EventLayerResult>,
}

impl EventResult {
    /// Total inference cycles.
    pub fn total_cycles(&self) -> Cycle {
        self.layers.iter().map(|l| l.cycles).sum()
    }

    /// Total array stall cycles (the cost the analytic `max()` hides).
    pub fn total_stalls(&self) -> Cycle {
        self.layers.iter().map(|l| l.array_stall_cycles).sum()
    }
}

/// A tile transaction: dependent input bytes in, compute, bytes out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct TileTxn {
    input_bytes: u64,
    compute_cycles: Cycle,
    store_bytes: u64,
}

/// A layer lowered to the event model: a weight prefetch (no data
/// dependency — it may stream during the *previous* layer's compute,
/// the inter-layer half of the double-buffering scheme) plus the
/// dependent tile pipeline.
#[derive(Debug, Clone, PartialEq)]
struct LayerTxns {
    weight_bytes: u64,
    tiles: Vec<TileTxn>,
}

/// Builds a layer's tile sequence: the tiling plan fixes the tile count
/// and total traffic; the analytic model fixes total compute. Both are
/// spread evenly across tiles (remainders on the last tile).
fn tile_sequence(
    work: &ConvWork,
    cfg: &AcceleratorConfig,
    opts: SimOptions,
    dataflow: Dataflow,
) -> SimResult<LayerTxns> {
    let plan = optimize_tiling(work, cfg)?;
    let compute = try_simulate_conv(work, cfg, opts, dataflow)?.cycles();
    let tiles = (work.out_h.div_ceil(plan.tiling.out_rows)
        * work.out_channels.div_ceil(plan.tiling.out_channels)
        * work.in_channels.div_ceil(plan.tiling.in_channels)
        * work.groups) as u64;
    let tiles = tiles.max(1);
    let traffic = opts.layer_traffic(work, cfg)?;
    let spread = |total: u64, i: u64| {
        let base = total / tiles;
        if i == tiles - 1 {
            base + total % tiles
        } else {
            base
        }
    };
    // Weights that fit a buffer half are prefetched whole across the
    // layer boundary; larger weight sets (FC layers, late convs) stream
    // tile by tile and pipeline with compute like inputs do.
    let weights_fit = traffic.weights <= cfg.working_buffer_bytes() as u64 / 2;
    let (prefetch_weights, streamed_weights) =
        if weights_fit { (traffic.weights, 0) } else { (0, traffic.weights) };
    Ok(LayerTxns {
        weight_bytes: prefetch_weights,
        tiles: (0..tiles)
            .map(|i| TileTxn {
                input_bytes: spread(traffic.input, i) + spread(streamed_weights, i),
                compute_cycles: spread(compute, i),
                store_bytes: spread(traffic.output, i),
            })
            .collect(),
    })
}

/// Pipeline state carried across layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PipelineState {
    /// When the previous layer's compute began — the earliest moment its
    /// successor's weights may start streaming (the buffer half frees).
    prev_compute_start: Cycle,
    /// When the previous layer fully finished (inputs depend on it).
    finished: Cycle,
}

/// Plays one layer's transactions through the units; returns the updated
/// pipeline state plus `(stall cycles, tile count)`.
fn play_layer(
    txns: &LayerTxns,
    dma: &mut DmaUnit,
    array: &mut ArrayUnit,
    state: PipelineState,
    double_buffering: bool,
) -> (PipelineState, Cycle, u64) {
    let now = state.finished;
    let mut stalls = 0;
    let mut finish = now;
    let mut first_compute_start = now;
    if double_buffering {
        // Weights have no data dependency: stream them as soon as the
        // previous layer's compute frees a buffer half.
        let weights_done = dma.transfer(state.prev_compute_start, txns.weight_bytes);
        // Prefetch pipeline over the dependent input tiles: tile i+1's
        // load is issued the moment tile i's compute begins (one buffer
        // half frees), so it runs under that compute; stores ride the
        // DMA afterwards and may themselves overlap later tiles.
        let mut loaded = dma.transfer(now, txns.tiles[0].input_bytes);
        for (i, t) in txns.tiles.iter().enumerate() {
            let ready = loaded.max(weights_done);
            let start = ready.max(array.free_at()).max(now);
            stalls += start.saturating_sub(array.free_at().max(now));
            if i == 0 {
                first_compute_start = start;
            }
            if let Some(next) = txns.tiles.get(i + 1) {
                loaded = dma.transfer(start, next.input_bytes);
            }
            let done = array.run(start, t.compute_cycles);
            finish = dma.transfer(done, t.store_bytes).max(done);
        }
    } else {
        let weights_done = dma.transfer(now, txns.weight_bytes);
        finish = finish.max(weights_done);
        for (i, t) in txns.tiles.iter().enumerate() {
            let loaded = dma.transfer(finish, t.input_bytes);
            let start = loaded.max(array.free_at());
            if i == 0 {
                first_compute_start = start;
            }
            let done = array.run(start, t.compute_cycles);
            finish = dma.transfer(done, t.store_bytes).max(done);
        }
    }
    (
        PipelineState { prev_compute_start: first_compute_start, finished: finish },
        stalls,
        txns.tiles.len() as u64,
    )
}

/// Runs a whole network through the event model. Layers execute back to
/// back (the paper's layer-by-layer operation), each with its own tile
/// pipeline.
///
/// # Errors
///
/// The first [`SimError`] any layer surfaces, attributed to that layer.
pub fn try_simulate_network_event(
    network: &Network,
    cfg: &AcceleratorConfig,
    policy: DataflowPolicy,
    opts: SimOptions,
) -> SimResult<EventResult> {
    let mut dma = DmaUnit::new(cfg.dram());
    let mut array = ArrayUnit::new();
    let mut state = PipelineState { prev_compute_start: 0, finished: 0 };
    let mut layers = Vec::with_capacity(network.layers().len());
    for layer in network.layers() {
        let start = state.finished;
        let txns = lower_layer(layer, cfg, opts, policy)?;
        let (next, stalls, tiles) =
            play_layer(&txns, &mut dma, &mut array, state, cfg.double_buffering());
        layers.push(EventLayerResult {
            name: layer.name.clone(),
            cycles: next.finished - start,
            array_stall_cycles: stalls,
            tiles,
        });
        state = next;
    }
    Ok(EventResult { network: network.name().to_owned(), layers })
}

/// Runs a whole network through the event model. Infallible wrapper
/// over [`try_simulate_network_event`].
pub fn simulate_network_event(
    network: &Network,
    cfg: &AcceleratorConfig,
    policy: DataflowPolicy,
    opts: SimOptions,
) -> EventResult {
    try_simulate_network_event(network, cfg, policy, opts).unwrap_or_else(|e| e.raise())
}

fn lower_layer(
    layer: &Layer,
    cfg: &AcceleratorConfig,
    opts: SimOptions,
    policy: DataflowPolicy,
) -> SimResult<LayerTxns> {
    let lowered = match ConvWork::from_layer(layer) {
        Some(work) => {
            let dataflow = match policy {
                DataflowPolicy::Fixed(d) => d,
                DataflowPolicy::PerLayer => {
                    crate::engine::try_compare_dataflows(layer, cfg, opts)?.2
                }
            };
            tile_sequence(&work, cfg, opts, dataflow)
        }
        None => simulate_simd(layer, cfg).map(|perf| {
            let e = cfg.bytes_per_element() as u64;
            LayerTxns {
                weight_bytes: 0,
                tiles: vec![TileTxn {
                    input_bytes: layer.input.elements() as u64 * e,
                    compute_cycles: perf.cycles(),
                    store_bytes: layer.output.elements() as u64 * e,
                }],
            }
        }),
    };
    lowered.map_err(|e: SimError| e.for_layer(&layer.name))
}

/// Helper for one standalone layer (unit tests, calibration).
///
/// # Errors
///
/// Any [`SimError`] the layer surfaces.
pub fn try_simulate_layer_event(
    layer: &Layer,
    cfg: &AcceleratorConfig,
    opts: SimOptions,
    dataflow: Dataflow,
) -> SimResult<EventLayerResult> {
    let mut dma = DmaUnit::new(cfg.dram());
    let mut array = ArrayUnit::new();
    let txns = lower_layer(layer, cfg, opts, DataflowPolicy::Fixed(dataflow))?;
    let state = PipelineState { prev_compute_start: 0, finished: 0 };
    let (next, stalls, tiles) =
        play_layer(&txns, &mut dma, &mut array, state, cfg.double_buffering());
    Ok(EventLayerResult {
        name: layer.name.clone(),
        cycles: next.finished,
        array_stall_cycles: stalls,
        tiles,
    })
}

/// Helper for one standalone layer (unit tests, calibration).
/// Infallible wrapper over [`try_simulate_layer_event`].
pub fn simulate_layer_event(
    layer: &Layer,
    cfg: &AcceleratorConfig,
    opts: SimOptions,
    dataflow: Dataflow,
) -> EventLayerResult {
    try_simulate_layer_event(layer, cfg, opts, dataflow).unwrap_or_else(|e| e.raise())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::simulate_network;
    use codesign_dnn::zoo;

    fn setup() -> (AcceleratorConfig, SimOptions) {
        (AcceleratorConfig::paper_default(), SimOptions::paper_default())
    }

    #[test]
    fn event_totals_track_the_analytic_model() {
        // The analytic combine is max(compute, dram) + latency per layer;
        // the event pipeline adds the bubbles that shortcut hides — in
        // particular, a layer that fits the buffer in one tile cannot
        // overlap its own (dependent) input load with its own compute,
        // so networks dominated by small layers run up to ~35% over the
        // analytic estimate. The band below documents that honest gap.
        let (cfg, opts) = setup();
        for net in [zoo::squeezenet_v1_1(), zoo::tiny_darknet(), zoo::mobilenet_v1()] {
            let analytic =
                simulate_network(&net, &cfg, DataflowPolicy::PerLayer, opts).total_cycles() as f64;
            let event = simulate_network_event(&net, &cfg, DataflowPolicy::PerLayer, opts)
                .total_cycles() as f64;
            let ratio = event / analytic;
            assert!((0.8..1.4).contains(&ratio), "{}: event/analytic = {ratio:.3}", net.name());
        }
    }

    #[test]
    fn event_is_never_faster_than_the_compute_floor() {
        let (cfg, opts) = setup();
        let net = zoo::squeezenet_v1_0();
        let event = simulate_network_event(&net, &cfg, DataflowPolicy::PerLayer, opts);
        let analytic = simulate_network(&net, &cfg, DataflowPolicy::PerLayer, opts);
        for (e, a) in event.layers.iter().zip(&analytic.layers) {
            assert!(
                e.cycles + 1 >= a.compute.cycles(),
                "{}: event {} below compute floor {}",
                e.name,
                e.cycles,
                a.compute.cycles()
            );
        }
    }

    #[test]
    fn double_buffering_hides_loads_in_the_event_model_too() {
        let (cfg, opts) = setup();
        let no_db = AcceleratorConfig::builder()
            .double_buffering(false)
            .global_buffer_bytes(64 * 1024)
            .build()
            .unwrap();
        let net = zoo::squeezenet_v1_1();
        let with_db =
            simulate_network_event(&net, &cfg, DataflowPolicy::PerLayer, opts).total_cycles();
        let without =
            simulate_network_event(&net, &no_db, DataflowPolicy::PerLayer, opts).total_cycles();
        assert!(with_db < without, "{with_db} !< {without}");
    }

    #[test]
    fn stalls_appear_on_memory_bound_layers() {
        // AlexNet FC: DMA-limited; the array must stall.
        let (cfg, opts) = setup();
        let net = zoo::alexnet();
        let r = simulate_network_event(&net, &cfg, DataflowPolicy::PerLayer, opts);
        let fc6 = r.layers.iter().find(|l| l.name == "fc6").unwrap();
        assert!(fc6.array_stall_cycles > 0);
    }

    #[test]
    fn compute_bound_layers_barely_stall() {
        let (cfg, opts) = setup();
        let net = zoo::squeezenet_v1_0();
        let r = simulate_network_event(&net, &cfg, DataflowPolicy::PerLayer, opts);
        let conv1 = r.layers.iter().find(|l| l.name == "conv1").unwrap();
        // conv1 is strongly compute bound: stalls are a small fraction.
        assert!(
            (conv1.array_stall_cycles as f64) < 0.25 * conv1.cycles as f64,
            "stalls {} of {}",
            conv1.array_stall_cycles,
            conv1.cycles
        );
    }

    #[test]
    fn tile_counts_are_positive() {
        let (cfg, opts) = setup();
        let net = zoo::squeezenet_v1_1();
        let r = simulate_network_event(&net, &cfg, DataflowPolicy::PerLayer, opts);
        assert!(r.layers.iter().all(|l| l.tiles >= 1));
        assert!(r.total_stalls() < r.total_cycles());
    }
}
