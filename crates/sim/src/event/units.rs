//! Hardware units of the discrete-event model.
//!
//! Each unit is a single-server resource with a busy-until clock; the
//! event loop in [`crate::event`] sequences transactions through them.

use codesign_arch::DramModel;

/// A cycle timestamp.
pub type Cycle = u64;

/// The DMA engine: serializes DRAM bursts at the modeled bandwidth, with
/// the access latency charged once per burst.
#[derive(Debug, Clone, PartialEq)]
pub struct DmaUnit {
    model: DramModel,
    free_at: Cycle,
    busy_cycles: Cycle,
    bursts: u64,
}

impl DmaUnit {
    /// Creates an idle DMA unit.
    pub fn new(model: DramModel) -> Self {
        Self { model, free_at: 0, busy_cycles: 0, bursts: 0 }
    }

    /// Issues a burst of `bytes` no earlier than `earliest`; returns the
    /// completion time. Zero-byte bursts are free.
    ///
    /// The access latency is charged on idle-to-busy transitions only:
    /// a stream of back-to-back bursts pipelines its row activations,
    /// so queued bursts pay pure transfer time.
    pub fn transfer(&mut self, earliest: Cycle, bytes: u64) -> Cycle {
        if bytes == 0 {
            return earliest.max(self.free_at);
        }
        let start = earliest.max(self.free_at);
        let pipelined = self.bursts > 0 && start == self.free_at;
        let latency = if pipelined { 0 } else { self.model.latency_cycles };
        let duration = latency + self.model.transfer_cycles(bytes);
        self.free_at = start + duration;
        self.busy_cycles += duration;
        self.bursts += 1;
        self.free_at
    }

    /// When the unit next becomes idle.
    pub fn free_at(&self) -> Cycle {
        self.free_at
    }

    /// Total cycles spent transferring (including per-burst latency).
    pub fn busy_cycles(&self) -> Cycle {
        self.busy_cycles
    }

    /// Number of bursts issued.
    pub fn bursts(&self) -> u64 {
        self.bursts
    }

    /// Advances the unit over a steady-state run in one step: the
    /// busy-until clock shifts by `dt` while the accumulated busy time
    /// and burst count grow by the run's per-iteration totals. Sound
    /// only when the skipped iterations are exact time translations of
    /// an observed one ([`crate::event::TimeSkip`]).
    pub fn fast_forward(&mut self, dt: Cycle, busy: Cycle, bursts: u64) {
        self.free_at += dt;
        self.busy_cycles += busy;
        self.bursts += bursts;
    }
}

/// The PE array (or SIMD unit): executes compute quanta serially.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ArrayUnit {
    free_at: Cycle,
    busy_cycles: Cycle,
}

impl ArrayUnit {
    /// Creates an idle array.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs `cycles` of work no earlier than `earliest`; returns the
    /// completion time.
    pub fn run(&mut self, earliest: Cycle, cycles: Cycle) -> Cycle {
        let start = earliest.max(self.free_at);
        self.free_at = start + cycles;
        self.busy_cycles += cycles;
        self.free_at
    }

    /// When the unit next becomes idle.
    pub fn free_at(&self) -> Cycle {
        self.free_at
    }

    /// Total busy cycles.
    pub fn busy_cycles(&self) -> Cycle {
        self.busy_cycles
    }

    /// Advances the unit over a steady-state run in one step; see
    /// [`DmaUnit::fast_forward`].
    pub fn fast_forward(&mut self, dt: Cycle, busy: Cycle) {
        self.free_at += dt;
        self.busy_cycles += busy;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dram() -> DramModel {
        DramModel { latency_cycles: 100, bytes_per_cycle: 80.0 }
    }

    #[test]
    fn dma_serializes_bursts_and_pipelines_latency() {
        let mut dma = DmaUnit::new(dram());
        let t1 = dma.transfer(0, 800); // 100 latency + 10 transfer
        assert_eq!(t1, 110);
        // Queued back-to-back: no second activation latency.
        let t2 = dma.transfer(50, 80);
        assert_eq!(t2, 110 + 1);
        // After an idle gap the latency is charged again.
        let t3 = dma.transfer(500, 80);
        assert_eq!(t3, 500 + 101);
        assert_eq!(dma.bursts(), 3);
        assert_eq!(dma.busy_cycles(), 110 + 1 + 101);
    }

    #[test]
    fn zero_bytes_are_free() {
        let mut dma = DmaUnit::new(dram());
        assert_eq!(dma.transfer(7, 0), 7);
        assert_eq!(dma.bursts(), 0);
    }

    #[test]
    fn array_respects_readiness() {
        let mut array = ArrayUnit::new();
        assert_eq!(array.run(10, 5), 15);
        // Next quantum cannot start before the unit frees.
        assert_eq!(array.run(0, 5), 20);
        assert_eq!(array.busy_cycles(), 10);
    }
}
