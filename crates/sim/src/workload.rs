//! Translation of IR layers into the workload form the dataflow models
//! consume.

use codesign_dnn::{Layer, LayerOp};

use crate::error::{bounded_product, SimError, SimResult};

/// How the PE array treats the layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkKind {
    /// Dense (or grouped) convolution: full input-channel × output-channel
    /// weight matrix per group.
    Dense,
    /// Depthwise convolution: one filter per channel, no cross-channel
    /// reduction.
    Depthwise,
    /// Fully-connected layer (matrix-vector at batch 1).
    FullyConnected,
}

/// A convolution-shaped unit of PE-array work.
///
/// Grouped convolutions are represented by per-group channel counts with
/// `groups` sequential repetitions; depthwise convolutions keep the full
/// channel count with [`WorkKind::Depthwise`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConvWork {
    /// PE-array treatment.
    pub kind: WorkKind,
    /// Sequential group repetitions (1 for dense and depthwise).
    pub groups: usize,
    /// Input channels per group (total channels for depthwise).
    pub in_channels: usize,
    /// Output channels per group (equals `in_channels` for depthwise).
    pub out_channels: usize,
    /// Kernel height.
    pub kernel_h: usize,
    /// Kernel width.
    pub kernel_w: usize,
    /// Spatial stride.
    pub stride: usize,
    /// Input feature-map height.
    pub in_h: usize,
    /// Input feature-map width.
    pub in_w: usize,
    /// Output feature-map height.
    pub out_h: usize,
    /// Output feature-map width.
    pub out_w: usize,
}

impl ConvWork {
    /// Extracts the PE-array workload from a layer, or `None` for layers
    /// the array does not accelerate (pooling, element-wise, concat).
    pub fn from_layer(layer: &Layer) -> Option<Self> {
        match &layer.op {
            LayerOp::Conv(spec) => {
                if layer.is_depthwise() {
                    Some(Self {
                        kind: WorkKind::Depthwise,
                        groups: 1,
                        in_channels: layer.input.channels,
                        out_channels: layer.output.channels,
                        kernel_h: spec.kernel.height,
                        kernel_w: spec.kernel.width,
                        stride: spec.stride,
                        in_h: layer.input.height,
                        in_w: layer.input.width,
                        out_h: layer.output.height,
                        out_w: layer.output.width,
                    })
                } else {
                    // `groups == 0` must survive extraction so `validate`
                    // can reject it with a typed error instead of a
                    // divide-by-zero here.
                    let per_group = spec.groups.max(1);
                    Some(Self {
                        kind: WorkKind::Dense,
                        groups: spec.groups,
                        in_channels: layer.input.channels / per_group,
                        out_channels: spec.out_channels / per_group,
                        kernel_h: spec.kernel.height,
                        kernel_w: spec.kernel.width,
                        stride: spec.stride,
                        in_h: layer.input.height,
                        in_w: layer.input.width,
                        out_h: layer.output.height,
                        out_w: layer.output.width,
                    })
                }
            }
            LayerOp::FullyConnected { out_features } => Some(Self {
                kind: WorkKind::FullyConnected,
                groups: 1,
                in_channels: layer.input.elements(),
                out_channels: *out_features,
                kernel_h: 1,
                kernel_w: 1,
                stride: 1,
                in_h: 1,
                in_w: 1,
                out_h: 1,
                out_w: 1,
            }),
            _ => None,
        }
    }

    /// Checks that the workload is well-formed and within the modeling
    /// range — the gate every fallible simulation path passes before
    /// trusting the unchecked arithmetic of the cycle models.
    ///
    /// Rejects zero dimensions, kernels larger than their input, and
    /// shapes whose MAC or element counts overflow 64 bits (with
    /// headroom reserved for the constant multipliers of derived
    /// quantities).
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidWorkload`] for malformed dimensions,
    /// [`SimError::ArithmeticOverflow`] for overflow-scale shapes. The
    /// layer name is attached by the caller ([`SimError::for_layer`]).
    pub fn validate(&self) -> SimResult<()> {
        let dims = [
            (self.groups, "groups"),
            (self.in_channels, "input channels"),
            (self.out_channels, "output channels"),
            (self.kernel_h, "kernel height"),
            (self.kernel_w, "kernel width"),
            (self.stride, "stride"),
            (self.in_h, "input height"),
            (self.in_w, "input width"),
            (self.out_h, "output height"),
            (self.out_w, "output width"),
        ];
        for (v, name) in dims {
            if v == 0 {
                return Err(SimError::invalid(format!("{name} is zero")));
            }
        }
        if self.kernel_h > self.in_h || self.kernel_w > self.in_w {
            return Err(SimError::invalid(format!(
                "kernel {}x{} does not fit the {}x{} input",
                self.kernel_h, self.kernel_w, self.in_h, self.in_w
            )));
        }
        let reduce = if self.kind == WorkKind::Depthwise { 1 } else { self.in_channels };
        bounded_product(
            &[
                self.out_h,
                self.out_w,
                self.kernel_h,
                self.kernel_w,
                self.out_channels,
                reduce,
                self.groups,
            ],
            "MAC count",
        )?;
        bounded_product(
            &[self.kernel_h, self.kernel_w, reduce, self.out_channels, self.groups],
            "weight element count",
        )?;
        bounded_product(&[self.in_channels, self.groups, self.in_h, self.in_w], "input elements")?;
        bounded_product(
            &[self.out_channels, self.groups, self.out_h, self.out_w],
            "output elements",
        )?;
        Ok(())
    }

    /// Useful (algorithmic) MACs — the dense count before any sparsity
    /// skipping, matching [`Layer::macs`].
    pub fn macs(&self) -> u64 {
        let per_group = self.out_h
            * self.out_w
            * self.kernel_h
            * self.kernel_w
            * self.out_channels
            * if self.kind == WorkKind::Depthwise { 1 } else { self.in_channels };
        (per_group * self.groups) as u64
    }

    /// Kernel taps.
    pub fn taps(&self) -> usize {
        self.kernel_h * self.kernel_w
    }

    /// Output pixels per channel plane.
    pub fn out_plane(&self) -> usize {
        self.out_h * self.out_w
    }

    /// Weight elements across all groups.
    pub fn weight_elements(&self) -> u64 {
        let per_filter =
            self.taps() * if self.kind == WorkKind::Depthwise { 1 } else { self.in_channels };
        (per_filter * self.out_channels * self.groups) as u64
    }

    /// Input elements across all groups.
    pub fn input_elements(&self) -> u64 {
        (self.in_channels * self.groups * self.in_h * self.in_w) as u64
    }

    /// Output elements across all groups.
    pub fn output_elements(&self) -> u64 {
        (self.out_channels * self.groups * self.out_h * self.out_w) as u64
    }
}

/// Splits `total` into chunks of at most `chunk` (e.g. channel tiles over
/// the PE array edge). The last chunk carries the remainder.
pub fn split(total: usize, chunk: usize) -> Vec<usize> {
    assert!(chunk > 0, "chunk must be positive");
    if total == 0 {
        return Vec::new();
    }
    let mut v = vec![chunk; total / chunk];
    if !total.is_multiple_of(chunk) {
        v.push(total % chunk);
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use codesign_dnn::{NetworkBuilder, Shape};

    fn layers() -> Vec<Layer> {
        NetworkBuilder::new("t", Shape::new(8, 16, 16))
            .conv("dense", 16, 3, 1, 1)
            .depthwise_conv("dw", 3, 1, 1)
            .grouped_conv("grp", 32, 3, 1, 1, 2)
            .max_pool("pool", 2, 2)
            .global_avg_pool("gap")
            .fully_connected("fc", 10)
            .finish()
            .unwrap()
            .layers()
            .to_vec()
    }

    #[test]
    fn dense_extraction() {
        let ls = layers();
        let w = ConvWork::from_layer(&ls[0]).unwrap();
        assert_eq!(w.kind, WorkKind::Dense);
        assert_eq!((w.in_channels, w.out_channels, w.groups), (8, 16, 1));
        assert_eq!(w.macs(), ls[0].macs());
    }

    #[test]
    fn depthwise_extraction() {
        let ls = layers();
        let w = ConvWork::from_layer(&ls[1]).unwrap();
        assert_eq!(w.kind, WorkKind::Depthwise);
        assert_eq!(w.in_channels, 16);
        assert_eq!(w.macs(), ls[1].macs());
        assert_eq!(w.weight_elements(), ls[1].params());
    }

    #[test]
    fn grouped_extraction() {
        let ls = layers();
        let w = ConvWork::from_layer(&ls[2]).unwrap();
        assert_eq!(w.groups, 2);
        assert_eq!(w.in_channels, 8);
        assert_eq!(w.out_channels, 16);
        assert_eq!(w.macs(), ls[2].macs());
        assert_eq!(w.weight_elements(), ls[2].params());
    }

    #[test]
    fn pool_is_not_pe_work() {
        let ls = layers();
        assert!(ConvWork::from_layer(&ls[3]).is_none());
        assert!(ConvWork::from_layer(&ls[4]).is_none());
    }

    #[test]
    fn fc_extraction() {
        let ls = layers();
        let w = ConvWork::from_layer(&ls[5]).unwrap();
        assert_eq!(w.kind, WorkKind::FullyConnected);
        assert_eq!(w.in_channels, 32); // 32 channels x 1 x 1 after GAP
        assert_eq!(w.out_channels, 10);
        assert_eq!(w.macs(), ls[5].macs());
    }

    #[test]
    fn split_covers_total() {
        assert_eq!(split(96, 32), vec![32, 32, 32]);
        assert_eq!(split(70, 32), vec![32, 32, 6]);
        assert_eq!(split(5, 32), vec![5]);
        assert_eq!(split(0, 32), Vec::<usize>::new());
        assert_eq!(split(64, 16).iter().sum::<usize>(), 64);
    }

    #[test]
    #[should_panic(expected = "chunk must be positive")]
    fn split_rejects_zero_chunk() {
        let _ = split(4, 0);
    }
}
