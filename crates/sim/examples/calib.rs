use codesign_arch::{AcceleratorConfig, Dataflow, DataflowPolicy, EnergyModel};
use codesign_dnn::zoo;
use codesign_sim::{simulate_network, SimOptions};

fn main() {
    let cfg = AcceleratorConfig::paper_default();
    let opts = SimOptions::paper_default();
    let em = EnergyModel::default();
    println!(
        "{:<20} {:>10} {:>8} {:>8} {:>8} {:>8} {:>7} {:>7}",
        "network", "hyb_cyc", "vsOS", "vsWS", "E_vsOS", "E_vsWS", "dramE%", "fc_cyc%"
    );
    for net in zoo::table_networks() {
        let hyb = simulate_network(&net, &cfg, DataflowPolicy::PerLayer, opts);
        let ws =
            simulate_network(&net, &cfg, DataflowPolicy::Fixed(Dataflow::WeightStationary), opts);
        let os =
            simulate_network(&net, &cfg, DataflowPolicy::Fixed(Dataflow::OutputStationary), opts);
        let e_h = hyb.total_energy(&em);
        let e_w = ws.total_energy(&em);
        let e_o = os.total_energy(&em);
        let fc_frac = hyb.cycle_fraction(|l| l.name.starts_with("fc"));
        println!(
            "{:<20} {:>10} {:>8.2} {:>8.2} {:>7.0}% {:>7.0}% {:>6.0}% {:>6.0}%",
            net.name(),
            hyb.total_cycles(),
            os.total_cycles() as f64 / hyb.total_cycles() as f64,
            ws.total_cycles() as f64 / hyb.total_cycles() as f64,
            100.0 * (1.0 - e_h / e_o),
            100.0 * (1.0 - e_h / e_w),
            100.0 * hyb.total_accesses().dram as f64 * em.dram / e_h,
            100.0 * fc_frac
        );
    }
    // headline: SqueezeNext vs SqueezeNet v1.0 and AlexNet on hybrid
    let sq = simulate_network(&zoo::squeezenet_v1_0(), &cfg, DataflowPolicy::PerLayer, opts);
    let sx = simulate_network(&zoo::squeezenext(), &cfg, DataflowPolicy::PerLayer, opts);
    let ax = simulate_network(&zoo::alexnet(), &cfg, DataflowPolicy::PerLayer, opts);
    println!(
        "\nSqNxt vs SqNet1.0: speed {:.2}x energy {:.2}x",
        sq.total_cycles() as f64 / sx.total_cycles() as f64,
        sq.total_energy(&em) / sx.total_energy(&em)
    );
    println!(
        "SqNxt vs AlexNet:  speed {:.2}x energy {:.2}x",
        ax.total_cycles() as f64 / sx.total_cycles() as f64,
        ax.total_energy(&em) / sx.total_energy(&em)
    );
}
