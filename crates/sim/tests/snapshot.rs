//! Snapshot persistence properties: save→load round trips are lossless
//! and deterministic, warm-started runs are bit-identical to warm
//! in-memory runs, damaged snapshots are refused with typed errors, and
//! concurrent clients sharing one cache do strictly less simulation work
//! than the same clients running serially cold.

use codesign_arch::{AcceleratorConfig, DataflowPolicy};
use codesign_dnn::{zoo, Network, NetworkBuilder, Shape};
use codesign_sim::{SimOptions, Simulator, SnapshotError, SNAPSHOT_VERSION};
use proptest::prelude::*;

/// Same FNV-1a the snapshot uses, reimplemented here so corruption tests
/// can re-seal a deliberately patched payload with a *valid* checksum
/// (exercising record-level validation, not just the checksum).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Recomputes the trailing checksum over a patched snapshot.
fn reseal(mut bytes: Vec<u8>) -> Vec<u8> {
    let payload = bytes.len() - 8;
    let checksum = fnv1a(&bytes[..payload]);
    bytes[payload..].copy_from_slice(&checksum.to_le_bytes());
    bytes
}

fn paper_cfg() -> AcceleratorConfig {
    AcceleratorConfig::paper_default()
}

/// A populated cache to corrupt: one hybrid SqueezeNet run.
fn sample_snapshot() -> Vec<u8> {
    let sim = Simulator::new();
    sim.simulate_network(
        &zoo::squeezenet_v1_1(),
        &paper_cfg(),
        DataflowPolicy::PerLayer,
        SimOptions::paper_default(),
    );
    sim.cache_snapshot().expect("cached simulator snapshots")
}

fn small_network() -> impl Strategy<Value = Network> {
    (
        1usize..=8,                                    // input channels
        prop_oneof![Just(8usize), Just(12), Just(16)], // input H=W
        1usize..=16,                                   // conv out channels
        prop_oneof![Just(1usize), Just(3)],            // kernel
        0usize..=1,                                    // include a depthwise stage?
        1usize..=10,                                   // fc classes
    )
        .prop_map(|(c, hw, out_c, k, dw, classes)| {
            let mut b = NetworkBuilder::new("prop-net", Shape::new(c, hw, hw));
            b.conv("c1", out_c, k, 1, k / 2);
            if dw == 1 {
                b.depthwise_conv("dw", 3, 1, 1);
            }
            b.max_pool("pool", 2, 2)
                .global_avg_pool("gap")
                .fully_connected("fc", classes)
                .finish()
                .expect("generated shapes are valid")
        })
}

fn small_config() -> impl Strategy<Value = AcceleratorConfig> {
    (
        prop_oneof![Just(8usize), Just(16)],
        prop_oneof![Just(8usize), Just(16)],
        prop_oneof![Just(64usize), Just(128), Just(256)],
    )
        .prop_map(|(array, rf, kib)| {
            AcceleratorConfig::builder()
                .array_size(array)
                .rf_depth(rf)
                .global_buffer_bytes(kib * 1024)
                .build()
                .expect("sweep-grid configs are valid")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// save → load → re-save is byte-identical, and a warm-started
    /// simulator reproduces the cold run bit-for-bit with zero misses —
    /// exactly like a warm in-memory run.
    #[test]
    fn snapshot_round_trip(net in small_network(), cfg in small_config()) {
        let opts = SimOptions::paper_default();
        let cold = Simulator::new();
        let baseline = match cold.try_simulate_network(&net, &cfg, DataflowPolicy::PerLayer, opts) {
            Ok(perf) => perf,
            // Degenerate shape for this config: nothing to snapshot.
            Err(_) => return Ok(()),
        };
        let snap = cold.cache_snapshot().expect("cached simulator snapshots");
        prop_assert_eq!(&snap, &cold.cache_snapshot().expect("snapshot"), "snapshots are deterministic");

        // A warm in-memory re-run on the cold simulator: the reference
        // the snapshot-warmed run must match in both results and stats.
        let warm_in_memory = cold.try_simulate_network(&net, &cfg, DataflowPolicy::PerLayer, opts)
            .expect("re-run succeeds");
        prop_assert_eq!(&warm_in_memory, &baseline);

        let warmed = Simulator::new();
        let stats = warmed.load_cache_snapshot(&snap).expect("round trip loads");
        prop_assert_eq!(stats.entries(), cold.stats().entries, "every entry survives the trip");
        prop_assert_eq!(stats.bytes, snap.len());
        prop_assert_eq!(
            warmed.cache_snapshot().expect("snapshot"),
            snap,
            "load → save reproduces the same bytes"
        );

        let from_disk = warmed.try_simulate_network(&net, &cfg, DataflowPolicy::PerLayer, opts)
            .expect("warm run succeeds");
        prop_assert_eq!(&from_disk, &baseline, "snapshot-warmed == cold == warm in-memory");
        let ws = warmed.stats();
        prop_assert_eq!(ws.misses, 0, "a warm-started run answers everything from cache: {}", ws);
        prop_assert!(ws.hits > 0, "{}", ws);
    }
}

#[test]
fn flipped_payload_byte_is_a_checksum_mismatch() {
    let mut snap = sample_snapshot();
    assert!(snap.len() > 64, "sample snapshot holds records");
    snap[40] ^= 0x01;
    let fresh = Simulator::new();
    match fresh.load_cache_snapshot(&snap) {
        Err(SnapshotError::ChecksumMismatch { stored, computed }) => assert_ne!(stored, computed),
        other => panic!("expected ChecksumMismatch, got {other:?}"),
    }
    assert_eq!(fresh.stats().entries, 0, "a refused snapshot loads nothing");
}

#[test]
fn truncated_snapshot_is_rejected() {
    let snap = sample_snapshot();
    let fresh = Simulator::new();
    for keep in [snap.len() - 3, 30, 20, 5] {
        match fresh.load_cache_snapshot(&snap[..keep]) {
            Err(SnapshotError::Truncated { expected, actual }) => {
                assert_eq!(actual, keep);
                assert!(expected > actual, "{expected} > {actual}");
            }
            other => panic!("expected Truncated at {keep} bytes, got {other:?}"),
        }
    }
    assert_eq!(fresh.stats().entries, 0);
}

#[test]
fn wrong_version_is_rejected_by_name() {
    let mut snap = sample_snapshot();
    snap[8..12].copy_from_slice(&(SNAPSHOT_VERSION + 1).to_le_bytes());
    // Even with a re-sealed (valid) checksum the version gate fires
    // first, so the error names the schema mismatch, not corruption.
    let resealed = reseal(snap);
    match Simulator::new().load_cache_snapshot(&resealed) {
        Err(SnapshotError::WrongVersion { found, expected }) => {
            assert_eq!(found, SNAPSHOT_VERSION + 1);
            assert_eq!(expected, SNAPSHOT_VERSION);
        }
        other => panic!("expected WrongVersion, got {other:?}"),
    }
}

#[test]
fn bad_magic_and_garbage_are_rejected() {
    let mut snap = sample_snapshot();
    snap[2] ^= 0xff;
    assert!(matches!(
        Simulator::new().load_cache_snapshot(&reseal(snap)),
        Err(SnapshotError::BadMagic)
    ));
    assert!(matches!(
        Simulator::new().load_cache_snapshot(b"definitely not a snapshot"),
        Err(SnapshotError::BadMagic)
    ));
}

#[test]
fn corrupt_record_tag_is_rejected_even_with_valid_checksum() {
    let mut snap = sample_snapshot();
    // First word of the first compute record is the work-kind tag.
    snap[28..36].copy_from_slice(&99u64.to_le_bytes());
    match Simulator::new().load_cache_snapshot(&reseal(snap)) {
        Err(SnapshotError::Corrupted(what)) => assert!(what.contains("kind"), "{what}"),
        other => panic!("expected Corrupted, got {other:?}"),
    }
}

#[test]
fn trailing_bytes_are_rejected() {
    let mut snap = sample_snapshot();
    snap.push(0);
    assert!(matches!(
        Simulator::new().load_cache_snapshot(&snap),
        Err(SnapshotError::Corrupted(_))
    ));
}

#[test]
fn uncached_simulator_refuses_snapshots() {
    let uncached = Simulator::uncached();
    assert_eq!(uncached.cache_snapshot(), Err(SnapshotError::Uncached));
    assert_eq!(uncached.load_cache_snapshot(&sample_snapshot()), Err(SnapshotError::Uncached));
}

/// N=4 clients sweeping overlapping config slices through one shared
/// cache must do strictly fewer simulations (cache misses) than the same
/// four client workloads run serially, each from a cold cache — the
/// serve-mode payoff the tentpole exists for.
#[test]
fn concurrent_overlapping_clients_miss_less_than_serial_cold_runs() {
    let opts = SimOptions::paper_default();
    let net = zoo::squeezenet_v1_1();
    let grid: Vec<AcceleratorConfig> =
        [(8, 8, 64), (16, 16, 128), (16, 8, 64), (32, 16, 256), (8, 16, 128), (16, 16, 64)]
            .iter()
            .map(|&(array, rf, kib)| {
                AcceleratorConfig::builder()
                    .array_size(array)
                    .rf_depth(rf)
                    .global_buffer_bytes(kib * 1024)
                    .build()
                    .expect("grid configs are valid")
            })
            .collect();
    let clients = 4usize;
    // Client i sweeps configs {i, i+1, i+2}: adjacent clients overlap in
    // two of their three configs.
    let slice = |i: usize| [&grid[i], &grid[i + 1], &grid[i + 2]];

    let mut serial_misses = 0u64;
    for i in 0..clients {
        let cold = Simulator::new();
        for cfg in slice(i) {
            cold.simulate_network(&net, cfg, DataflowPolicy::PerLayer, opts);
        }
        serial_misses += cold.stats().misses;
    }

    let shared = Simulator::new();
    std::thread::scope(|scope| {
        for i in 0..clients {
            let worker = shared.fork_counter();
            let net = &net;
            let configs = slice(i);
            scope.spawn(move || {
                for cfg in configs {
                    worker.simulate_network(net, cfg, DataflowPolicy::PerLayer, opts);
                }
            });
        }
    });
    let concurrent = shared.stats();
    assert!(
        concurrent.misses < serial_misses,
        "shared cache must dedup overlapping work: {} concurrent misses vs {serial_misses} serial",
        concurrent.misses
    );
    assert!(concurrent.hits > 0, "{concurrent}");
}
