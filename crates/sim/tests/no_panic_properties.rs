//! Property-based panic-freedom tests: the fallible simulation API must
//! return `Ok` or a typed [`codesign_sim::SimError`] for *any* layer ×
//! configuration pair — including shapes no parser would ever emit
//! (zero-sized planes, zero groups, kernels larger than the input,
//! overflow-scale channel counts). A panic anywhere in the `try_*` path
//! fails the property.

use codesign_arch::{AcceleratorConfig, Dataflow, DataflowPolicy};
use codesign_dnn::{ConvSpec, Kernel, Layer, LayerOp, NetworkBuilder, PoolKind, Shape};
use codesign_sim::{
    try_compare_taxonomy, try_simulate_layer, try_simulate_layer_event, try_simulate_network,
    SimOptions,
};
use proptest::prelude::*;

/// A possibly-degenerate feature-map shape. Zero extents are in-range on
/// every axis: the simulator must reject them, not divide by them.
fn arb_shape() -> impl Strategy<Value = Shape> {
    (0usize..=64, 0usize..=64, 0usize..=64).prop_map(|(c, h, w)| Shape::new(c, h, w))
}

/// A possibly-degenerate layer operation. Conv kernel/stride/groups all
/// range down to 0 and up past any plausible input extent; the vendored
/// proptest's `prop_oneof!` is homogeneous, so the op kind is drawn as a
/// discriminant and mapped in one place.
fn arb_op() -> impl Strategy<Value = LayerOp> {
    (
        0usize..4, // discriminant: conv | fc | pool | gap
        0usize..=512,
        prop_oneof![Just(1usize), Just(3), Just(7), Just(11)],
        0usize..=4,
        0usize..=3,
        0usize..=4,
        0usize..=4096,
    )
        .prop_map(|(kind, out_channels, k, stride, pad, groups, out_features)| match kind {
            0 => LayerOp::Conv(ConvSpec {
                out_channels,
                kernel: Kernel::square(k),
                stride,
                pad_h: pad,
                pad_w: pad,
                groups,
            }),
            1 => LayerOp::FullyConnected { out_features },
            2 => LayerOp::Pool { kind: PoolKind::Max, kernel: k, stride, pad },
            _ => LayerOp::GlobalAvgPool,
        })
}

/// A layer whose input/output shapes need not be consistent with its op:
/// hostile by construction.
fn arb_layer() -> impl Strategy<Value = (Layer, bool)> {
    (arb_op(), arb_shape(), arb_shape(), any::<bool>()).prop_map(|(op, input, output, first)| {
        let layer = Layer {
            name: "hostile".to_owned(),
            op,
            input,
            output,
            is_first_conv: first,
            primary_input: None,
            extra_input: None,
        };
        (layer, first)
    })
}

/// A hardware point drawn from the builder's full accepted range plus
/// out-of-range values (which must surface as a builder error, never a
/// panic downstream).
fn arb_config() -> impl Strategy<Value = Option<AcceleratorConfig>> {
    (
        prop_oneof![Just(2usize), Just(4), Just(8), Just(32), Just(0), Just(1000)],
        prop_oneof![Just(1usize), Just(4), Just(16), Just(0)],
        prop_oneof![Just(1usize), Just(2), Just(8), Just(0)],
        prop_oneof![Just(1usize), Just(8), Just(1024), Just(128 * 1024)],
        any::<bool>(),
    )
        .prop_map(|(array, rf, bpe, buffer, double)| {
            let mut b = AcceleratorConfig::builder();
            b.array_size(array)
                .rf_depth(rf)
                .bytes_per_element(bpe)
                .global_buffer_bytes(buffer)
                .double_buffering(double);
            // An invalid point is a valid outcome: the builder rejected
            // it before the simulator ever saw it.
            b.build().ok()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Any layer on any buildable configuration either simulates or is
    /// rejected with a typed error — under both dataflows, in both the
    /// analytic and event-driven engines.
    #[test]
    fn simulation_never_panics((layer, _) in arb_layer(), cfg in arb_config()) {
        let Some(cfg) = cfg else { return Ok(()) };
        let opts = SimOptions::paper_default();
        for dataflow in [Dataflow::WeightStationary, Dataflow::OutputStationary] {
            let _ = try_simulate_layer(&layer, &cfg, opts, dataflow);
            let _ = try_simulate_layer_event(&layer, &cfg, opts, dataflow);
        }
    }

    /// A rejection must identify itself: non-empty message, known kind.
    #[test]
    fn errors_are_self_describing((layer, _) in arb_layer(), cfg in arb_config()) {
        let Some(cfg) = cfg else { return Ok(()) };
        let opts = SimOptions::paper_default();
        if let Err(e) = try_simulate_layer(&layer, &cfg, opts, Dataflow::WeightStationary) {
            prop_assert!(!e.to_string().is_empty());
            prop_assert!([
                "infeasible_tiling",
                "unsupported_layer",
                "arithmetic_overflow",
                "buffer_exceeded",
                "invalid_workload",
            ].contains(&e.kind()));
        }
    }

    /// Whole parser-built networks (always shape-consistent) never panic
    /// either, on arbitrary hardware.
    #[test]
    fn well_formed_networks_never_panic(
        c in 1usize..=16, hw in 1usize..=32, k in prop_oneof![Just(1usize), Just(3), Just(7)],
        out in 1usize..=32, cfg in arb_config(),
    ) {
        let Some(cfg) = cfg else { return Ok(()) };
        let net = NetworkBuilder::new("prop", Shape::new(c, hw, hw))
            .conv("c1", out, k, 1, k / 2)
            .global_avg_pool("gap")
            .fully_connected("fc", 10)
            .finish();
        // Builder may reject (e.g. kernel larger than padded input) —
        // also a non-panic outcome.
        if let Ok(net) = net {
            let opts = SimOptions::paper_default();
            let _ = try_simulate_network(&net, &cfg, DataflowPolicy::PerLayer, opts);
            let _ = try_compare_taxonomy(&net, &cfg, opts);
        }
    }
}

/// The three degenerate cases the issue names, pinned as plain tests so
/// they run on every `cargo test` regardless of proptest seeds.
mod pinned {
    use super::*;

    fn conv(name: &str, input: Shape, output: Shape, spec: ConvSpec) -> Layer {
        Layer {
            name: name.to_owned(),
            op: LayerOp::Conv(spec),
            input,
            output,
            is_first_conv: false,
            primary_input: None,
            extra_input: None,
        }
    }

    #[test]
    fn zero_channel_layer_is_rejected_not_panicked() {
        let cfg = AcceleratorConfig::paper_default();
        let layer = conv(
            "zero-ch",
            Shape::new(0, 8, 8),
            Shape::new(16, 8, 8),
            ConvSpec {
                out_channels: 16,
                kernel: Kernel::square(3),
                stride: 1,
                pad_h: 1,
                pad_w: 1,
                groups: 1,
            },
        );
        let err = try_simulate_layer(
            &layer,
            &cfg,
            SimOptions::paper_default(),
            Dataflow::WeightStationary,
        )
        .expect_err("zero input channels must be rejected");
        assert_eq!(err.kind(), "invalid_workload");
    }

    #[test]
    fn seven_by_seven_filter_on_one_by_one_input_is_rejected() {
        let cfg = AcceleratorConfig::paper_default();
        let layer = conv(
            "big-k",
            Shape::new(3, 1, 1),
            Shape::new(16, 1, 1),
            ConvSpec {
                out_channels: 16,
                kernel: Kernel::square(7),
                stride: 1,
                pad_h: 0,
                pad_w: 0,
                groups: 1,
            },
        );
        for dataflow in [Dataflow::WeightStationary, Dataflow::OutputStationary] {
            let err = try_simulate_layer(&layer, &cfg, SimOptions::paper_default(), dataflow)
                .expect_err("7x7 kernel cannot slide over a 1x1 plane");
            assert_eq!(err.kind(), "invalid_workload");
        }
    }

    #[test]
    fn one_byte_buffer_is_rejected_by_the_builder() {
        // The builder's floor (double the smallest array's working set)
        // makes a 1-byte global buffer unrepresentable — the config is
        // refused before any simulation can divide by it.
        let mut b = AcceleratorConfig::builder();
        b.array_size(2).bytes_per_element(1).global_buffer_bytes(1);
        assert!(b.build().is_err());
    }
}
