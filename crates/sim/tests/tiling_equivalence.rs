//! Property test: the pruned (branch-and-bound) tiling search is
//! observationally identical to the exhaustive search it replaced.
//!
//! For arbitrary `ConvWork` shapes and working-buffer sizes, both
//! searches must return the same `TilingPlan` (tiling, traffic,
//! working set) — or fail with the same error. Pinned regressions
//! cover the depthwise and single-strip shapes called out in the
//! issue, which exercise the bound's edge cases (diagonal-only reuse
//! and an r-candidate list of length one).

use codesign_arch::AcceleratorConfig;
use codesign_sim::{optimize_tiling, optimize_tiling_exhaustive, ConvWork, WorkKind};
use proptest::prelude::*;

fn kind() -> impl Strategy<Value = WorkKind> {
    prop_oneof![Just(WorkKind::Dense), Just(WorkKind::Depthwise), Just(WorkKind::FullyConnected),]
}

/// Arbitrary convolution-ish work. Output extents are derived from the
/// input extents so shapes stay plausible, but nothing here guarantees
/// the search finds a feasible tiling — infeasible shapes must fail
/// identically in both searches, which is exactly what we assert.
fn conv_work() -> impl Strategy<Value = ConvWork> {
    (
        kind(),
        1usize..4,    // groups
        1usize..512,  // in_channels
        1usize..1024, // out_channels
        prop_oneof![Just(1usize), Just(3), Just(5), Just(7), Just(11)],
        1usize..4,   // stride
        1usize..128, // out_h seed
        1usize..128, // out_w seed
    )
        .prop_map(|(kind, groups, c, k, f, stride, oh, ow)| {
            let (kernel_h, kernel_w, out_h, out_w) = match kind {
                WorkKind::FullyConnected => (1, 1, 1, 1),
                _ => (f, f, oh, ow),
            };
            let (out_channels, groups) = match kind {
                // Depthwise layers carry one filter per channel.
                WorkKind::Depthwise => (c, 1),
                WorkKind::FullyConnected => (k, 1),
                WorkKind::Dense => (k, groups),
            };
            ConvWork {
                kind,
                groups,
                in_channels: c,
                out_channels,
                kernel_h,
                kernel_w,
                stride,
                in_h: (out_h - 1) * stride + kernel_h,
                in_w: (out_w - 1) * stride + kernel_w,
                out_h,
                out_w,
            }
        })
}

fn buffer_kib() -> impl Strategy<Value = usize> {
    prop_oneof![Just(8usize), Just(16), Just(32), Just(64), Just(128), Just(256), Just(1024),]
}

fn assert_equivalent(work: &ConvWork, cfg: &AcceleratorConfig) -> Result<(), TestCaseError> {
    let pruned = optimize_tiling(work, cfg);
    let exhaustive = optimize_tiling_exhaustive(work, cfg);
    match (&pruned, &exhaustive) {
        (Ok(p), Ok(e)) => prop_assert_eq!(p, e, "plan mismatch for {:?} on {}", work, cfg),
        (Err(p), Err(e)) => prop_assert_eq!(
            format!("{p:?}"),
            format!("{e:?}"),
            "error mismatch for {:?} on {}",
            work,
            cfg
        ),
        _ => prop_assert!(
            false,
            "feasibility mismatch for {:?}: pruned={:?} exhaustive={:?}",
            work,
            pruned,
            exhaustive
        ),
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn pruned_search_matches_exhaustive(work in conv_work(), buf_kib in buffer_kib()) {
        let cfg = match AcceleratorConfig::builder().global_buffer_bytes(buf_kib * 1024).build() {
            Ok(cfg) => cfg,
            // Buffer too small for this PE array: nothing to compare.
            Err(_) => return Ok(()),
        };
        assert_equivalent(&work, &cfg)?;
    }

    #[test]
    fn pruned_search_matches_exhaustive_across_arrays(
        work in conv_work(),
        array in prop_oneof![Just(8usize), Just(16), Just(32)],
        rf in prop_oneof![Just(8usize), Just(16), Just(32)],
    ) {
        let cfg = match AcceleratorConfig::builder()
            .array_size(array)
            .rf_depth(rf)
            .build()
        {
            Ok(cfg) => cfg,
            Err(_) => return Ok(()),
        };
        assert_equivalent(&work, &cfg)?;
    }
}

mod pinned {
    use super::*;

    fn check(work: &ConvWork, cfg: &AcceleratorConfig) {
        let pruned = optimize_tiling(work, cfg);
        let exhaustive = optimize_tiling_exhaustive(work, cfg);
        match (&pruned, &exhaustive) {
            (Ok(p), Ok(e)) => assert_eq!(p, e, "plan mismatch for {work:?}"),
            (Err(p), Err(e)) => {
                assert_eq!(format!("{p:?}"), format!("{e:?}"), "error mismatch for {work:?}");
            }
            _ => panic!("feasibility mismatch for {work:?}: {pruned:?} vs {exhaustive:?}"),
        }
    }

    /// Depthwise layers reuse no input across filters, which makes the
    /// channel dimension of the bound degenerate — pruning must not cut
    /// the channel loop short.
    #[test]
    fn depthwise_regression() {
        let work = ConvWork {
            kind: WorkKind::Depthwise,
            groups: 1,
            in_channels: 512,
            out_channels: 512,
            kernel_h: 3,
            kernel_w: 3,
            stride: 1,
            in_h: 16,
            in_w: 16,
            out_h: 14,
            out_w: 14,
        };
        for buf in [16 * 1024, 64 * 1024, 256 * 1024] {
            if let Ok(cfg) = AcceleratorConfig::builder().global_buffer_bytes(buf).build() {
                check(&work, &cfg);
            }
        }
    }

    /// A classifier-head layer with a 1×1 output plane admits exactly
    /// one row-strip candidate; the strip loop must still visit it
    /// rather than prune on the (equal) lower bound.
    #[test]
    fn single_strip_regression() {
        let work = ConvWork {
            kind: WorkKind::Dense,
            groups: 1,
            in_channels: 512,
            out_channels: 1000,
            kernel_h: 1,
            kernel_w: 1,
            stride: 1,
            in_h: 1,
            in_w: 1,
            out_h: 1,
            out_w: 1,
        };
        for buf in [16 * 1024, 64 * 1024, 1024 * 1024] {
            if let Ok(cfg) = AcceleratorConfig::builder().global_buffer_bytes(buf).build() {
                check(&work, &cfg);
            }
        }
    }
}
