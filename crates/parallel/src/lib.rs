//! Deterministic fan-out over a persistent work-stealing worker pool.
//!
//! The design-space sweep, the Table-2 evaluation, the bench report, and
//! the GEMM-backed functional executor all map an independent, pure
//! function over a work list. Rayon is unavailable in the offline build
//! environment, so this crate provides the primitives those call sites
//! need: [`par_map`] / [`par_map_range`], pool-backed maps whose output
//! order is always the input order — parallel runs are bit-identical to
//! serial runs, just faster.
//!
//! This lives in its own dependency-free crate (rather than inside
//! `codesign-sim`, where it started) so the functional tensor layer can
//! parallelize convolution output channels over the *same* process-wide
//! pool the sweep engine uses — one thread budget, one high-water mark,
//! no second pool fighting the first for cores.
//!
//! # Pool lifecycle
//!
//! Worker threads are spawned on demand and live for the rest of the
//! process — repeated sweep iterations reuse them instead of paying
//! thread spawn/join per call. The pool's size tracks the *high-water
//! mark* of `jobs - 1` across every call so far (capped at
//! [`MAX_POOL_WORKERS`]): a call requesting more parallelism than any
//! before it grows the pool first, so a long-lived server that starts
//! with `--jobs 2` requests is never stuck under-parallelized when a
//! `--jobs 8` request arrives later. [`pool_size`] reports the current
//! count. Each call submits a *job* to a shared injector; idle workers
//! attach to the first job that still has unclaimed items and has fewer
//! helpers than its `--jobs` cap. The calling thread always participates
//! in its own job, which bounds concurrency at `jobs` threads per call
//! and makes nested calls (and a zero-worker pool) deadlock-free: the
//! caller alone can always drain the job.
//!
//! # Work stealing
//!
//! A job block-partitions its item indices across per-participant
//! deques. Each participant pops from the front of its own deque and,
//! when empty, steals from the back of a sibling's — uneven item costs
//! rebalance without a central counter becoming the only queue. Results
//! carry their input index and are reassembled in input order, so the
//! stealing schedule can never leak into the output.
//!
//! # Panics
//!
//! A panicking item cancels the job's remaining unclaimed items and the
//! payload is re-raised on the calling thread as
//! `"parallel worker panicked: …"` once every participant has stopped —
//! a worker panic can never hang or kill the pool. [`par_map_catch`]
//! additionally isolates each item with [`catch_unwind`] so one bad item
//! degrades into a per-item `Err` instead of cancelling its siblings.

#![warn(missing_docs)]
// `deny` rather than `forbid`: the pool carries the workspace's single,
// documented `unsafe` block (a lifetime erasure so persistent pool
// threads can run borrowed closures). Any new site needs an explicit,
// reviewable `#[allow]`.
#![deny(unsafe_code)]

use std::collections::VecDeque;
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};

/// Number of worker threads the host supports (`1` when undetectable).
pub fn max_jobs() -> usize {
    std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
}

/// Resolves a user-facing `--jobs` value: `0` means "one per core".
pub fn resolve_jobs(jobs: usize) -> usize {
    if jobs == 0 {
        max_jobs()
    } else {
        jobs
    }
}

/// Locks a mutex, recovering from poisoning: every structure guarded
/// here (deques, result buckets, the injector) is only ever mutated
/// through complete push/pop/retain operations, so a panic on another
/// thread cannot leave it torn.
fn lock_recovered<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

type PanicPayload = Box<dyn std::any::Any + Send + 'static>;
type ErasedItemFn = Arc<dyn Fn(usize) + Send + Sync + 'static>;

/// Erases the borrow lifetime of a job's per-item closure so the pool's
/// `'static` worker threads can hold and call it.
///
/// SAFETY: `Arc<dyn Fn(usize) + Send + Sync + 'a>` and its `'static`
/// counterpart have identical layout (a fat pointer to the same
/// allocation); only the borrow checker distinguishes them. The closure
/// is never *called* after `'a` ends: [`par_map_range`] returns only
/// after the job's deques are empty and `in_flight == 0`, every claim is
/// made by a participant counted in `in_flight` at claim time, and a
/// straggler worker attaching later finds the deques empty and calls
/// nothing. After that point the erased `Arc` is at most *dropped*,
/// which is a no-op for the captured references.
#[allow(unsafe_code)]
fn erase_lifetime<'a>(run: Arc<dyn Fn(usize) + Send + Sync + 'a>) -> ErasedItemFn {
    unsafe { std::mem::transmute(run) }
}

/// One `par_map` invocation in flight: the claimable item indices, the
/// type-erased per-item closure, and the completion/panic bookkeeping.
struct Job {
    /// Per-participant index deques (slot 0 is the calling thread).
    deques: Vec<Mutex<VecDeque<usize>>>,
    /// Unclaimed items across all deques — the injector's cheap
    /// eligibility check.
    pending: AtomicUsize,
    /// Participants (caller + attached workers) still running.
    in_flight: AtomicUsize,
    /// Workers ever attached; capped at `max_helpers`.
    helpers: AtomicUsize,
    /// `jobs - 1`: the caller brings total concurrency to `jobs`.
    max_helpers: usize,
    /// The lifetime-erased "run item `i`" closure.
    run: ErasedItemFn,
    /// First panic payload observed, re-raised by the caller.
    panic: Mutex<Option<PanicPayload>>,
    done: Mutex<()>,
    done_cv: Condvar,
}

impl Job {
    fn new(len: usize, participants: usize, run: ErasedItemFn) -> Self {
        // Block-partition the indices: slot p owns [p·len/n, (p+1)·len/n),
        // so claims start contiguous and stealing only kicks in when a
        // participant's own block runs dry.
        let deques = (0..participants)
            .map(|p| {
                let block = (p * len / participants)..((p + 1) * len / participants);
                Mutex::new(block.collect::<VecDeque<usize>>())
            })
            .collect();
        Self {
            deques,
            pending: AtomicUsize::new(len),
            in_flight: AtomicUsize::new(1), // the caller
            helpers: AtomicUsize::new(0),
            max_helpers: participants - 1,
            run,
            panic: Mutex::new(None),
            done: Mutex::new(()),
            done_cv: Condvar::new(),
        }
    }

    /// Claims the next item for participant `slot`: own deque first
    /// (front), then steal from a sibling (back). `None` means the job
    /// has no unclaimed work left.
    fn claim(&self, slot: usize) -> Option<usize> {
        if let Some(deque) = self.deques.get(slot) {
            if let Some(i) = lock_recovered(deque).pop_front() {
                self.pending.fetch_sub(1, Ordering::Relaxed);
                return Some(i);
            }
        }
        for deque in &self.deques {
            if let Some(i) = lock_recovered(deque).pop_back() {
                self.pending.fetch_sub(1, Ordering::Relaxed);
                return Some(i);
            }
        }
        None
    }

    /// Records the first panic payload and cancels all unclaimed items,
    /// so the job winds down instead of running work whose output the
    /// caller will discard by re-panicking.
    fn cancel_with(&self, payload: PanicPayload) {
        let mut slot = lock_recovered(&self.panic);
        if slot.is_none() {
            *slot = Some(payload);
        }
        drop(slot);
        for deque in &self.deques {
            lock_recovered(deque).clear();
        }
        self.pending.store(0, Ordering::Relaxed);
    }

    /// Runs items until the job is drained, then signs off. The caller
    /// of `participate` must already be counted in `in_flight`.
    fn participate(&self, slot: usize) {
        while let Some(i) = self.claim(slot) {
            let run = &self.run;
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| run(i))) {
                self.cancel_with(payload);
            }
        }
        if self.in_flight.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last participant out: wake the caller. Taking the lock
            // orders the notify after the caller's `while` check, so the
            // wakeup cannot be lost.
            let _guard = lock_recovered(&self.done);
            self.done_cv.notify_all();
        }
    }

    /// Blocks until every participant (including stragglers that
    /// attached mid-drain) has signed off.
    fn wait_done(&self) {
        let mut guard = lock_recovered(&self.done);
        while self.in_flight.load(Ordering::Acquire) > 0 {
            guard = self.done_cv.wait(guard).unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// Hard ceiling on pool threads, far above any sane `--jobs`: a runaway
/// request cannot exhaust the process's thread quota, it just caps out
/// and the callers share the workers that exist.
pub const MAX_POOL_WORKERS: usize = 256;

/// The process-wide worker pool: an injector of live jobs plus parked
/// worker threads.
#[derive(Default)]
struct Pool {
    injector: Mutex<Vec<Arc<Job>>>,
    work_cv: Condvar,
    /// Worker threads spawned so far. Guarded by a mutex (not an atomic)
    /// so concurrent growers serialize and never overshoot the target.
    workers: Mutex<usize>,
}

impl Pool {
    fn submit(&self, job: &Arc<Job>) {
        lock_recovered(&self.injector).push(Arc::clone(job));
        self.work_cv.notify_all();
    }

    fn retire(&self, job: &Arc<Job>) {
        lock_recovered(&self.injector).retain(|j| !Arc::ptr_eq(j, job));
    }

    /// A worker's whole life: park until a job wants help, attach as
    /// helper `h` (participant slot `h + 1`), drain it, repeat.
    fn worker_loop(&self) {
        loop {
            let (job, slot) = {
                let mut guard = lock_recovered(&self.injector);
                loop {
                    // Admission happens under the injector lock, so the
                    // helpers counter never races past its cap.
                    let eligible = guard.iter().find(|j| {
                        j.pending.load(Ordering::Relaxed) > 0
                            && j.helpers.load(Ordering::Relaxed) < j.max_helpers
                    });
                    if let Some(job) = eligible {
                        let h = job.helpers.fetch_add(1, Ordering::Relaxed);
                        job.in_flight.fetch_add(1, Ordering::AcqRel);
                        break (Arc::clone(job), h + 1);
                    }
                    guard = self.work_cv.wait(guard).unwrap_or_else(PoisonError::into_inner);
                }
            };
            job.participate(slot);
        }
    }
}

/// The lazily-started process-wide pool. Worker threads are detached:
/// they idle on the injector condvar between jobs and die with the
/// process.
fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(Pool::default)
}

/// Grows the pool to at least `target` workers (capped at
/// [`MAX_POOL_WORKERS`]). The pool used to be sized once by its first
/// caller, which silently under-parallelized any later call with a
/// larger `--jobs` — fatal for a long-lived server; growing to the
/// high-water mark instead makes pool capacity independent of request
/// arrival order. Spawn failure is tolerable: the caller participates
/// in every job, so fewer (or zero) workers only costs parallelism,
/// never correctness.
fn ensure_workers(target: usize) {
    let target = target.min(MAX_POOL_WORKERS);
    let shared = pool();
    let mut count = lock_recovered(&shared.workers);
    while *count < target {
        let builder = std::thread::Builder::new().name(format!("codesign-worker-{count}"));
        if builder.spawn(|| pool().worker_loop()).is_err() {
            break;
        }
        *count += 1;
    }
}

/// Current worker-thread count of the process-wide pool: the high-water
/// mark of `jobs - 1` across every parallel call so far (zero before the
/// first parallel call). Total concurrency for a call is `jobs` — the
/// caller's thread participates alongside at most `jobs - 1` workers.
pub fn pool_size() -> usize {
    *lock_recovered(&pool().workers)
}

/// Re-raises a worker panic on the calling thread with the payload
/// message attached.
// Deliberate panic propagation through the crate's documented parallel
// contract; `par_map_catch` is the non-panicking alternative.
#[allow(clippy::panic)]
fn repanic(payload: PanicPayload) -> ! {
    let msg = if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    };
    panic!("parallel worker panicked: {msg}");
}

/// Maps `f` over `0..len` on up to `jobs` threads (`0` = one per core)
/// from the persistent pool, returning results in index order.
///
/// This is the allocation-light primitive behind [`par_map`] for
/// callers whose work list is an indexable space rather than a
/// materialized slice (e.g. a sweep grid). Panics in `f` propagate
/// after all participants stop.
pub fn par_map_range<R, F>(jobs: usize, len: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let jobs = resolve_jobs(jobs).min(len);
    if jobs <= 1 {
        return (0..len).map(f).collect();
    }
    // Grow the pool before submitting, so this call can actually reach
    // its requested concurrency even if earlier calls asked for less.
    ensure_workers(jobs - 1);

    let results: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(len));
    let run = |i: usize| {
        let r = f(i);
        lock_recovered(&results).push((i, r));
    };
    let job = Arc::new(Job::new(len, jobs, erase_lifetime(Arc::new(run))));
    let pool = pool();
    pool.submit(&job);
    job.participate(0);
    job.wait_done();
    pool.retire(&job);
    if let Some(payload) = lock_recovered(&job.panic).take() {
        repanic(payload);
    }

    // Reassemble in input order regardless of which participant ran
    // what. Every index was claimed exactly once, so after sorting the
    // result is a permutation-free 0..len list.
    let mut tagged = results.into_inner().unwrap_or_else(PoisonError::into_inner);
    tagged.sort_unstable_by_key(|&(i, _)| i);
    tagged.into_iter().map(|(_, r)| r).collect()
}

/// Maps `f` over `items` on up to `jobs` threads (`0` = one per core),
/// returning results in input order.
///
/// Work is block-partitioned across participants and rebalanced by
/// stealing, so uneven item costs spread across workers. `f` receives
/// the item index alongside the item. Panics in `f` propagate after all
/// participants stop.
pub fn par_map<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_range(jobs, items.len(), |i| {
        // Claimed indices come from deques seeded with 0..len, so the
        // lookup cannot fail; `get` keeps the no-panic lint honest.
        items.get(i).map(|item| f(i, item))
    })
    .into_iter()
    .flatten()
    .collect()
}

/// [`par_map_range`] with per-item panic isolation — see
/// [`par_map_catch`].
pub fn par_map_catch_range<R, F>(jobs: usize, len: usize, f: F) -> Vec<Result<R, String>>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    par_map_range(jobs, len, |i| {
        catch_unwind(AssertUnwindSafe(|| f(i))).map_err(|payload| {
            if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_owned()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "worker panicked with a non-string payload".to_owned()
            }
        })
    })
}

/// [`par_map`] with per-item panic isolation: each application of `f`
/// runs under [`catch_unwind`], so one panicking item cannot poison its
/// siblings or the caller — it degrades into an `Err` carrying the panic
/// message while every other item completes normally.
///
/// This is the worker primitive behind degradation-tolerant sweeps: the
/// `try_*` simulation APIs make panics unreachable for well-formed
/// inputs, and this catches anything that slips through (including
/// future bugs), converting it into a per-item diagnostic.
///
/// Output order is input order; serial (`jobs == 1`) and parallel runs
/// are bit-identical.
pub fn par_map_catch<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<Result<R, String>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map(jobs, items, |i, item| {
        catch_unwind(AssertUnwindSafe(|| f(i, item))).map_err(|payload| {
            if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_owned()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "worker panicked with a non-string payload".to_owned()
            }
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..257).collect();
        let out = par_map(4, &items, |i, &x| {
            assert_eq!(i, x);
            x * 2
        });
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let items: Vec<u64> = (0..100).collect();
        let f = |_: usize, &x: &u64| x.wrapping_mul(0x9E3779B97F4A7C15).rotate_left(13);
        assert_eq!(par_map(1, &items, f), par_map(8, &items, f));
    }

    #[test]
    fn empty_and_single_items() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(8, &empty, |_, &x| x).is_empty());
        assert_eq!(par_map(8, &[7u32], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn zero_jobs_means_auto() {
        assert!(resolve_jobs(0) >= 1);
        assert_eq!(resolve_jobs(3), 3);
        let items: Vec<u32> = (0..16).collect();
        assert_eq!(par_map(0, &items, |_, &x| x), items);
    }

    #[test]
    fn range_map_matches_slice_map() {
        let items: Vec<u64> = (0..97).collect();
        assert_eq!(
            par_map_range(4, items.len(), |i| i as u64 * 3),
            par_map(4, &items, |_, &x| x * 3),
        );
        assert!(par_map_range(4, 0, |i| i).is_empty());
    }

    #[test]
    fn pool_grows_to_the_jobs_high_water_mark() {
        // Regression: the pool used to be sized by its *first* caller,
        // so a `--jobs 2` run followed by a `--jobs 8` run left the
        // second under-parallelized for the rest of the process. The
        // pool must now grow to each call's requested concurrency.
        let items: Vec<u64> = (0..96).collect();
        let f = |_: usize, &x: &u64| x.wrapping_mul(0x9E37_79B9).rotate_left(7);
        let small = par_map(2, &items, f);
        assert!(pool_size() >= 1, "a jobs=2 call needs at least one worker");
        let big = par_map(8, &items, f);
        assert!(
            pool_size() >= 7,
            "a later jobs=8 call must grow the pool to 7 workers, got {}",
            pool_size()
        );
        assert_eq!(small, big, "pool growth must not change results");
    }

    #[test]
    fn pool_is_reused_across_calls() {
        // Many small jobs back to back: each must complete and the pool
        // must stay serviceable (no leaked helpers or stuck workers).
        for round in 0..50u64 {
            let items: Vec<u64> = (0..17).collect();
            let out = par_map(3, &items, |_, &x| x + round);
            assert_eq!(out, items.iter().map(|x| x + round).collect::<Vec<_>>());
        }
    }

    #[test]
    fn concurrent_calls_share_the_pool() {
        // par_map from several threads at once: jobs coexist in the
        // injector without crosstalk.
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                scope.spawn(move || {
                    let items: Vec<u64> = (0..64).collect();
                    let out = par_map(4, &items, |_, &x| x * (t + 1));
                    assert_eq!(out, items.iter().map(|x| x * (t + 1)).collect::<Vec<_>>());
                });
            }
        });
    }

    #[test]
    fn nested_calls_do_not_deadlock() {
        // The caller participates in its own job, so inner calls make
        // progress even when every pool worker is busy with outer jobs.
        let outer: Vec<u64> = (0..8).collect();
        let out = par_map(4, &outer, |_, &x| {
            let inner: Vec<u64> = (0..8).collect();
            par_map(4, &inner, |_, &y| x * 10 + y).into_iter().sum::<u64>()
        });
        let expect: Vec<u64> =
            outer.iter().map(|x| (0..8).map(|y| x * 10 + y).sum::<u64>()).collect();
        assert_eq!(out, expect);
    }

    #[test]
    #[should_panic(expected = "parallel worker panicked")]
    fn worker_panics_propagate() {
        let items: Vec<u32> = (0..16).collect();
        let _ = par_map(2, &items, |_, &x| {
            assert!(x < 8, "boom");
            x
        });
    }

    #[test]
    fn panicking_job_leaves_pool_serviceable() {
        let items: Vec<u32> = (0..16).collect();
        let poisoned = std::panic::catch_unwind(|| {
            par_map(4, &items, |_, &x| {
                assert!(x != 3, "poisoned worker");
                x
            })
        });
        assert!(poisoned.is_err());
        // The next job runs normally on the same pool.
        let out = par_map(4, &items, |_, &x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn catch_isolates_panicking_items() {
        let items: Vec<u32> = (0..16).collect();
        let out = par_map_catch(4, &items, |_, &x| {
            assert!(x != 7, "item 7 exploded");
            x * 2
        });
        assert_eq!(out.len(), 16);
        for (i, r) in out.iter().enumerate() {
            if i == 7 {
                let msg = r.as_ref().unwrap_err();
                assert!(msg.contains("item 7 exploded"), "{msg}");
            } else {
                assert_eq!(r.as_ref().unwrap(), &(i as u32 * 2));
            }
        }
    }

    #[test]
    fn catch_is_schedule_independent() {
        let items: Vec<u32> = (0..64).collect();
        let f = |_: usize, &x: &u32| {
            assert!(!x.is_multiple_of(13), "multiple of 13");
            x
        };
        assert_eq!(par_map_catch(1, &items, f), par_map_catch(8, &items, f));
    }
}
