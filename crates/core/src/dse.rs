//! Design-space exploration: tailoring the accelerator to a DNN
//! (§4.1, "a careful tuning of the accelerator architecture to a DNN
//! model can lead to a 1.9–6.3× improvement in speed").

use std::fmt;

use codesign_arch::{area, AcceleratorConfig, AreaModel, DataflowPolicy, EnergyModel};
use codesign_dnn::Network;
use codesign_sim::{par_map_catch_range, CancelToken, SimError, SimOptions, Simulator};

/// The swept hardware parameters of one design point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DesignParams {
    /// PE array edge length.
    pub array_size: usize,
    /// Register-file depth.
    pub rf_depth: usize,
    /// Global buffer bytes.
    pub global_buffer_bytes: usize,
}

impl fmt::Display for DesignParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}x{}/rf{}/{}KB",
            self.array_size,
            self.array_size,
            self.rf_depth,
            self.global_buffer_bytes / 1024
        )
    }
}

/// One evaluated design point.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignPoint {
    /// The hardware parameters.
    pub params: DesignParams,
    /// Inference cycles on the hybrid architecture.
    pub cycles: u64,
    /// Energy in MAC-normalized units.
    pub energy: f64,
    /// Average PE utilization.
    pub utilization: f64,
    /// Silicon area in MAC-normalized units (dual-dataflow array).
    pub area: f64,
}

impl DesignPoint {
    /// Builds a design point, rejecting degenerate evaluations: zero
    /// cycles, non-finite energy/utilization/area, or non-positive
    /// utilization. Such points would otherwise poison every downstream
    /// comparison (`best_by_energy_delay`, the Pareto front).
    pub fn checked(
        params: DesignParams,
        cycles: u64,
        energy: f64,
        utilization: f64,
        area: f64,
    ) -> Option<Self> {
        let finite = energy.is_finite() && utilization.is_finite() && area.is_finite();
        if !finite || cycles == 0 || utilization <= 0.0 {
            return None;
        }
        Some(Self { params, cycles, energy, utilization, area })
    }

    /// Energy-delay product — the single-number figure of merit used to
    /// rank design points.
    pub fn energy_delay(&self) -> f64 {
        self.energy * self.cycles as f64
    }
}

/// The swept parameter grid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepSpace {
    /// Array sizes to try (paper: 8..=32).
    pub array_sizes: Vec<usize>,
    /// RF depths to try (paper tune-up: 8 -> 16).
    pub rf_depths: Vec<usize>,
    /// Buffer capacities to try.
    pub buffer_bytes: Vec<usize>,
}

impl SweepSpace {
    /// The space the paper discusses: N ∈ {8, 16, 32}, RF ∈ {8, 16, 32},
    /// buffer ∈ {64 KB, 128 KB, 256 KB}.
    pub fn paper_default() -> Self {
        Self {
            array_sizes: vec![8, 16, 32],
            rf_depths: vec![8, 16, 32],
            buffer_bytes: vec![64 * 1024, 128 * 1024, 256 * 1024],
        }
    }

    /// Number of grid points.
    pub fn len(&self) -> usize {
        self.array_sizes.len() * self.rf_depths.len() * self.buffer_bytes.len()
    }

    /// Whether the space has no grid points, i.e. *any* axis is empty
    /// (checked per axis rather than via [`Self::len`], whose product
    /// could in principle wrap for absurdly large axes).
    pub fn is_empty(&self) -> bool {
        self.array_sizes.is_empty() || self.rf_depths.is_empty() || self.buffer_bytes.is_empty()
    }

    /// The grid point at flat index `i` in deterministic row-major order
    /// (array size → RF depth → buffer bytes), or `None` past the end.
    ///
    /// The mixed-radix decode lets the sweep fan out over `0..len()`
    /// without ever materializing the grid.
    pub fn point(&self, i: usize) -> Option<DesignParams> {
        let (nrf, nbuf) = (self.rf_depths.len(), self.buffer_bytes.len());
        if nrf == 0 || nbuf == 0 {
            return None;
        }
        Some(DesignParams {
            array_size: *self.array_sizes.get(i / (nrf * nbuf))?,
            rf_depth: *self.rf_depths.get(i / nbuf % nrf)?,
            global_buffer_bytes: *self.buffer_bytes.get(i % nbuf)?,
        })
    }

    /// The grid in deterministic row-major order
    /// (array size → RF depth → buffer bytes), lazily — nothing is
    /// materialized ahead of iteration.
    pub fn grid(&self) -> impl Iterator<Item = DesignParams> + '_ {
        (0..self.len()).filter_map(|i| self.point(i))
    }
}

impl Default for SweepSpace {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Why a sweep could not run at all.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SweepError {
    /// The sweep space has an empty axis, so there are no grid points to
    /// evaluate. The payload names the empty axis.
    EmptySpace(&'static str),
    /// The sweep's [`CancelToken`] fired (deadline passed or explicit
    /// cancel) before every chunk completed. Events already delivered to
    /// the observer remain valid — they are a prefix of the uncancelled
    /// run — but no [`SweepOutcome`] is produced.
    Cancelled,
    /// A checkpointing streaming sweep could not write (or clear) its
    /// checkpoint files. Losing checkpoints silently would defeat the
    /// point of asking for them, so the sweep stops instead.
    Checkpoint(String),
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::EmptySpace(axis) => {
                write!(f, "sweep space is empty: the {axis} axis has no values")
            }
            Self::Cancelled => write!(f, "sweep cancelled before completion"),
            Self::Checkpoint(detail) => write!(f, "sweep checkpoint failed: {detail}"),
        }
    }
}

impl std::error::Error for SweepError {}

impl SweepSpace {
    /// `Err` naming the first empty axis, `Ok` otherwise.
    pub(crate) fn check_non_empty(&self) -> Result<(), SweepError> {
        if self.array_sizes.is_empty() {
            Err(SweepError::EmptySpace("array-size"))
        } else if self.rf_depths.is_empty() {
            Err(SweepError::EmptySpace("rf-depth"))
        } else if self.buffer_bytes.is_empty() {
            Err(SweepError::EmptySpace("buffer-bytes"))
        } else {
            Ok(())
        }
    }
}

/// Evaluates one grid point. `Ok(None)` when the configuration is
/// invalid (e.g. a buffer too small for the array) or the evaluation
/// degenerates — skipped, exactly as before; `Err` when the simulator
/// rejects the point with a typed error — reported as a
/// [`PointFailure`] diagnostic.
pub(crate) fn evaluate_point(
    sim: &Simulator,
    network: &Network,
    params: DesignParams,
    opts: SimOptions,
    energy_model: &EnergyModel,
) -> Result<Option<DesignPoint>, SimError> {
    let Ok(cfg) = AcceleratorConfig::builder()
        .array_size(params.array_size)
        .rf_depth(params.rf_depth)
        .global_buffer_bytes(params.global_buffer_bytes)
        .build()
    else {
        return Ok(None);
    };
    let perf = sim.try_simulate_network(network, &cfg, DataflowPolicy::PerLayer, opts)?;
    if sim.tracer().is_enabled() {
        let mut track = sim.tracer().track(format!("sweep:{}:{}", network.name(), params));
        track.leaf(
            &params.to_string(),
            codesign_trace::Category::Sweep,
            perf.total_cycles(),
            &[("cycles", perf.total_cycles()), ("macs", perf.total_macs())],
        );
    }
    Ok(DesignPoint::checked(
        params,
        perf.total_cycles(),
        perf.total_energy(energy_model),
        perf.average_utilization(cfg.pe_count()),
        area(&cfg, &AreaModel::default(), true).total(),
    ))
}

/// Diagnostic for one grid point that could not be evaluated: the
/// simulator rejected it with a typed error, or (defensively) a worker
/// panicked. Skipped-invalid configurations are *not* failures — they
/// are silently dropped exactly as before.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PointFailure {
    /// The grid point that failed.
    pub params: DesignParams,
    /// Human-readable reason, straight from the surfaced error.
    pub reason: String,
}

impl fmt::Display for PointFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.params, self.reason)
    }
}

/// Result of a degradation-tolerant sweep: every point that evaluated,
/// plus a diagnostic per point that failed. One bad grid point no
/// longer aborts the other n−1.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepOutcome {
    /// Successfully evaluated points, in deterministic grid order.
    pub points: Vec<DesignPoint>,
    /// Per-point diagnostics, in deterministic grid order.
    pub failures: Vec<PointFailure>,
}

impl SweepOutcome {
    /// One-line failure summary (empty string when everything passed).
    pub fn failure_summary(&self) -> String {
        if self.failures.is_empty() {
            return String::new();
        }
        let listed: Vec<String> = self.failures.iter().map(PointFailure::to_string).collect();
        format!(
            "{} of {} points failed: {}",
            self.failures.len(),
            self.points.len() + self.failures.len(),
            listed.join("; ")
        )
    }
}

/// Evaluates every design point in `space` for `network` on the hybrid
/// architecture, fanning out across `jobs` worker threads (`0` = one per
/// core) through the shared `sim` handle. Invalid or degenerate
/// configurations are skipped; the result order is the deterministic
/// grid order regardless of `jobs`.
///
/// # Errors
///
/// [`SweepError::EmptySpace`] when any sweep axis is empty — an empty
/// space is a caller bug (a misconfigured sweep silently producing zero
/// points is indistinguishable from "every config was invalid").
pub fn sweep_with(
    sim: &Simulator,
    network: &Network,
    space: &SweepSpace,
    opts: SimOptions,
    energy_model: &EnergyModel,
    jobs: usize,
) -> Result<Vec<DesignPoint>, SweepError> {
    Ok(sweep_full_with(sim, network, space, opts, energy_model, jobs)?.points)
}

/// Degradation-tolerant variant of [`sweep_with`]: evaluates every grid
/// point with per-point isolation (typed simulation errors *and* worker
/// panics are caught per point), so the sweep completes with partial
/// results plus one diagnostic per failed point instead of aborting.
/// Results and diagnostics are in deterministic grid order — bit
/// identical across `jobs` settings.
///
/// # Errors
///
/// [`SweepError::EmptySpace`] when any sweep axis is empty.
pub fn sweep_full_with(
    sim: &Simulator,
    network: &Network,
    space: &SweepSpace,
    opts: SimOptions,
    energy_model: &EnergyModel,
    jobs: usize,
) -> Result<SweepOutcome, SweepError> {
    // One chunk covering the whole grid, no observer: the batch sweep is
    // the streaming sweep with nobody watching.
    sweep_streaming_with(sim, network, space, opts, energy_model, jobs, usize::MAX, |_| {})
}

/// One completed evaluation of a streaming sweep, delivered to the
/// observer in deterministic grid order (chunk by chunk).
#[derive(Debug, Clone, PartialEq)]
pub enum SweepEvent<'a> {
    /// The grid point at flat index `index` evaluated successfully.
    Point {
        /// Flat grid index (row-major, see [`SweepSpace::point`]).
        index: usize,
        /// The evaluated design point.
        point: &'a DesignPoint,
    },
    /// The grid point was invalid or degenerate and was skipped.
    Skipped {
        /// Flat grid index.
        index: usize,
        /// The skipped parameters.
        params: DesignParams,
    },
    /// The grid point failed with a diagnostic.
    Failure {
        /// Flat grid index.
        index: usize,
        /// The per-point diagnostic.
        failure: &'a PointFailure,
    },
}

/// [`sweep_full_with`] with partial-result streaming: the grid is
/// evaluated in chunks of `chunk` points (still `jobs`-wide inside each
/// chunk), and after each chunk completes `on_event` observes every
/// point of that chunk in deterministic grid order. `codesign serve`
/// sits Pareto-frontier delta streaming on top of this; smaller chunks
/// trade a little fan-out efficiency for earlier partial results.
///
/// The returned outcome is bit-identical to [`sweep_full_with`] on the
/// same inputs, whatever `chunk` or `jobs` — chunking changes only
/// *when* results become observable, never what they are.
///
/// # Errors
///
/// [`SweepError::EmptySpace`] when any sweep axis is empty.
#[allow(clippy::too_many_arguments)]
pub fn sweep_streaming_with(
    sim: &Simulator,
    network: &Network,
    space: &SweepSpace,
    opts: SimOptions,
    energy_model: &EnergyModel,
    jobs: usize,
    chunk: usize,
    on_event: impl FnMut(SweepEvent<'_>),
) -> Result<SweepOutcome, SweepError> {
    sweep_streaming_cancellable_with(
        sim,
        network,
        space,
        opts,
        energy_model,
        jobs,
        chunk,
        &CancelToken::never(),
        on_event,
    )
}

/// [`sweep_streaming_with`] with cooperative cancellation: `cancel` is
/// polled once per chunk, *between* chunks, so every chunk that starts
/// also finishes and fires its events. When the token fires the sweep
/// stops with [`SweepError::Cancelled`] — and because chunks complete
/// atomically in deterministic grid order, the events delivered before
/// the cancellation are **bit-identical to a prefix** of the uncancelled
/// run's event stream, whatever `jobs` is.
///
/// A token that is already cancelled on entry yields zero events (the
/// empty prefix).
///
/// # Errors
///
/// [`SweepError::EmptySpace`] when any sweep axis is empty (checked
/// before the token, so an empty space is always reported as such);
/// [`SweepError::Cancelled`] when `cancel` fires before the last chunk.
#[allow(clippy::too_many_arguments)]
pub fn sweep_streaming_cancellable_with(
    sim: &Simulator,
    network: &Network,
    space: &SweepSpace,
    opts: SimOptions,
    energy_model: &EnergyModel,
    jobs: usize,
    chunk: usize,
    cancel: &CancelToken,
    mut on_event: impl FnMut(SweepEvent<'_>),
) -> Result<SweepOutcome, SweepError> {
    space.check_non_empty()?;
    let len = space.len();
    let chunk = chunk.max(1);
    let mut points = Vec::new();
    let mut failures = Vec::new();
    let mut start = 0usize;
    while start < len {
        if cancel.is_cancelled() {
            return Err(SweepError::Cancelled);
        }
        let count = chunk.min(len - start);
        // Range-based fan-out: workers decode grid points from their
        // flat index, so the grid is never materialized ahead of the
        // sweep.
        let evals = par_map_catch_range(jobs, count, |j| {
            let i = start + j;
            // Test-only fault injection: a magic network name poisons the
            // worker evaluating grid point 0, proving a panicking worker
            // degrades to a `PointFailure` instead of hanging the pool.
            #[cfg(test)]
            #[allow(clippy::panic)]
            if network.name() == "__poison_point_0__" && i == 0 {
                panic!("injected worker poison");
            }
            match space.point(i) {
                Some(params) => evaluate_point(sim, network, params, opts, energy_model),
                // Unreachable once `check_non_empty` passed: every
                // i < len() decodes. Treated as a skipped point rather
                // than a panic.
                None => Ok(None),
            }
        });
        for (j, eval) in evals.into_iter().enumerate() {
            let i = start + j;
            let Some(params) = space.point(i) else { continue };
            match eval {
                Ok(Ok(Some(point))) => {
                    points.push(point);
                    if let Some(point) = points.last() {
                        on_event(SweepEvent::Point { index: i, point });
                    }
                }
                // Invalid or degenerate config: skipped from the
                // outcome, but still observable as an event.
                Ok(Ok(None)) => on_event(SweepEvent::Skipped { index: i, params }),
                Ok(Err(e)) => {
                    failures.push(PointFailure { params, reason: e.to_string() });
                    if let Some(failure) = failures.last() {
                        on_event(SweepEvent::Failure { index: i, failure });
                    }
                }
                Err(panic_msg) => {
                    failures.push(PointFailure {
                        params,
                        reason: format!("worker panicked: {panic_msg}"),
                    });
                    if let Some(failure) = failures.last() {
                        on_event(SweepEvent::Failure { index: i, failure });
                    }
                }
            }
        }
        start += count;
    }
    Ok(SweepOutcome { points, failures })
}

/// Evaluates every design point in `space` for `network` on the hybrid
/// architecture with a fresh memoizing [`Simulator`] and one worker per
/// core. See [`sweep_with`].
///
/// # Errors
///
/// [`SweepError::EmptySpace`] when any sweep axis is empty.
pub fn sweep(
    network: &Network,
    space: &SweepSpace,
    opts: SimOptions,
    energy_model: &EnergyModel,
) -> Result<Vec<DesignPoint>, SweepError> {
    sweep_with(&Simulator::new(), network, space, opts, energy_model, 0)
}

/// The design point with the lowest energy-delay product.
///
/// Uses [`f64::total_cmp`], so the result is well-defined for every
/// input (NaN cannot panic the comparison; [`DesignPoint::checked`]
/// keeps such points out of sweep results in the first place).
pub fn best_by_energy_delay(points: &[DesignPoint]) -> Option<&DesignPoint> {
    points.iter().min_by(|a, b| a.energy_delay().total_cmp(&b.energy_delay()))
}

/// The Pareto-optimal hardware designs over (cycles, energy, area): a
/// point survives unless some other point is no worse on all three axes
/// and strictly better on at least one. Returned sorted by ascending
/// cycles.
///
/// Runs in O(n log n): a sweep over ascending cycles with a 2-D
/// (energy, area) staircase replaces the former all-pairs scan, but the
/// survivor set, their relative order, and hence the output bytes are
/// identical to it.
pub fn pareto_designs(points: &[DesignPoint]) -> Vec<DesignPoint> {
    let dominated = dominated_mask(points);
    let mut front: Vec<DesignPoint> =
        points.iter().zip(&dominated).filter(|(_, d)| !**d).map(|(p, _)| p.clone()).collect();
    front.sort_by_key(|p| p.cycles);
    front
}

/// For each point, whether some *other* point strictly dominates it —
/// exactly the all-pairs predicate of the former O(n²) scan, computed
/// in O(n log n).
///
/// Points are visited in ascending-cycles groups. A 2-D staircase holds,
/// for every energy level, the minimum area achieved by any point with
/// *strictly smaller* cycles; against those the test is non-strict on
/// energy and area (the cycles axis supplies the strictness). Points
/// sharing the point's cycle count are handled inside the group, where
/// strictness must come from energy or area. NaN coordinates compare
/// false on every axis, so such points neither dominate nor are
/// dominated — they bypass both the staircase and the group scan, as in
/// the all-pairs version.
fn dominated_mask(points: &[DesignPoint]) -> Vec<bool> {
    let mut order: Vec<usize> = (0..points.len()).collect();
    order.sort_by(|&a, &b| {
        points[a]
            .cycles
            .cmp(&points[b].cycles)
            .then(points[a].energy.total_cmp(&points[b].energy))
            .then(points[a].area.total_cmp(&points[b].area))
    });
    let mut dominated = vec![false; points.len()];
    // (energy, area) pairs: strictly increasing energy, strictly
    // decreasing area, NaN-free.
    let mut stairs: Vec<(f64, f64)> = Vec::new();
    let mut i = 0;
    while i < order.len() {
        let cycles = points[order[i]].cycles;
        let mut j = i + 1;
        while j < order.len() && points[order[j]].cycles == cycles {
            j += 1;
        }
        let group = &order[i..j];
        // Dominators with strictly smaller cycles: non-strict staircase
        // query.
        for &pi in group {
            let p = &points[pi];
            if p.energy.is_nan() || p.area.is_nan() {
                continue;
            }
            let pos = stairs.partition_point(|&(e, _)| e <= p.energy);
            if pos > 0 && stairs[pos - 1].1 <= p.area {
                dominated[pi] = true;
            }
        }
        // Dominators within the equal-cycles group: the sort placed the
        // group in ascending (energy, area), so runs of numerically
        // equal energy are contiguous (total_cmp splits -0.0/0.0, but
        // the == grouping below re-merges them). Strictness comes from a
        // strictly smaller energy or, within a run, a strictly smaller
        // area.
        let mut min_area_smaller_energy = f64::INFINITY;
        let mut k = 0;
        while k < group.len() {
            let energy = points[group[k]].energy;
            let mut m = k + 1;
            while m < group.len() && points[group[m]].energy == energy {
                m += 1;
            }
            let run = &group[k..m];
            if !energy.is_nan() {
                let run_min_area = points[run[0]].area;
                for &pi in run {
                    let p = &points[pi];
                    if p.area.is_nan() {
                        continue;
                    }
                    if min_area_smaller_energy <= p.area || run_min_area < p.area {
                        dominated[pi] = true;
                    }
                }
                if run_min_area < min_area_smaller_energy {
                    min_area_smaller_energy = run_min_area;
                }
            }
            k = m;
        }
        // Fold the whole group into the staircase for later (larger
        // cycles) groups. Dominated members are folded too: they can
        // still dominate, exactly as in the all-pairs scan.
        for &pi in group {
            let p = &points[pi];
            if !(p.energy.is_nan() || p.area.is_nan()) {
                stair_insert(&mut stairs, p.energy, p.area);
            }
        }
        i = j;
    }
    dominated
}

/// Inserts `(energy, area)` into the staircase, preserving the
/// strictly-increasing-energy / strictly-decreasing-area invariant.
fn stair_insert(stairs: &mut Vec<(f64, f64)>, energy: f64, area: f64) {
    let pos = stairs.partition_point(|&(e, _)| e < energy);
    // Useless if an entry at no more energy already has no more area.
    if pos > 0 && stairs[pos - 1].1 <= area {
        return;
    }
    if pos < stairs.len() && stairs[pos].0 == energy && stairs[pos].1 <= area {
        return;
    }
    stairs.insert(pos, (energy, area));
    // Drop now-covered entries at >= energy with >= area.
    let mut end = pos + 1;
    while end < stairs.len() && stairs[end].1 >= area {
        end += 1;
    }
    stairs.drain(pos + 1..end);
}

/// An online Pareto frontier over (cycles, energy, area) with exactly
/// [`pareto_designs`]' dominance semantics: inserting every evaluated
/// point and calling [`OnlineFrontier::into_sorted`] yields bit-identical
/// output to `pareto_designs` over the same points — while retaining
/// only the live frontier in memory. This is the bounded-memory heart of
/// the streaming sweep.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OnlineFrontier {
    /// Live members in insertion order (the sweep's grid order).
    members: Vec<DesignPoint>,
    /// High-water mark of `members.len()` — the quantity the bench's
    /// bounded-memory assertion watches.
    peak: usize,
}

fn strictly_dominates(q: &DesignPoint, p: &DesignPoint) -> bool {
    q.cycles <= p.cycles
        && q.energy <= p.energy
        && q.area <= p.area
        && (q.cycles < p.cycles || q.energy < p.energy || q.area < p.area)
}

impl OnlineFrontier {
    /// An empty frontier.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuilds a frontier from checkpointed members (insertion order)
    /// and the recorded peak.
    pub(crate) fn from_members(members: Vec<DesignPoint>, peak: usize) -> Self {
        let peak = peak.max(members.len());
        Self { members, peak }
    }

    /// Live members, in insertion order.
    pub fn members(&self) -> &[DesignPoint] {
        &self.members
    }

    /// Number of live members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the frontier is empty.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// High-water mark of the member count over the frontier's lifetime.
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Offers a point. Returns `true` when the point enters the frontier
    /// (a *frontier delta* — evicted members leave silently), `false`
    /// when an existing member strictly dominates it. Duplicates of a
    /// member enter, matching [`pareto_designs`] (which keeps exact
    /// duplicates: neither strictly dominates the other).
    pub fn insert(&mut self, p: &DesignPoint) -> bool {
        if self.members.iter().any(|q| strictly_dominates(q, p)) {
            return false;
        }
        self.members.retain(|q| !strictly_dominates(p, q));
        self.members.push(p.clone());
        self.peak = self.peak.max(self.members.len());
        true
    }

    /// Whether some member strictly dominates the componentwise lower
    /// bound `(cycles, energy, area)` — the branch-and-bound prune test.
    /// Requiring *strict* dominance of the bound means a subtree whose
    /// best corner merely ties a member (an exact duplicate) is never
    /// pruned, preserving `pareto_designs`' keep-duplicates semantics.
    pub fn strictly_dominates_bound(&self, cycles: u64, energy: f64, area: f64) -> bool {
        self.members.iter().any(|q| {
            q.cycles <= cycles
                && q.energy <= energy
                && q.area <= area
                && (q.cycles < cycles || q.energy < energy || q.area < area)
        })
    }

    /// Finishes the frontier: members sorted by ascending cycles. Because
    /// members are kept in insertion order and the sort is stable, the
    /// result is bit-identical to [`pareto_designs`] over every point
    /// ever offered.
    pub fn into_sorted(mut self) -> Vec<DesignPoint> {
        self.members.sort_by_key(|p| p.cycles);
        self.members
    }
}

/// Isolated effect of the paper's register-file tune-up (8 -> 16) on a
/// network: returns `(cycles at rf 8, cycles at rf 16)`.
pub fn rf_tuneup_effect(network: &Network, opts: SimOptions) -> (u64, u64) {
    let sim = Simulator::new();
    let mk = |rf: usize| {
        // Both depths sit inside the builder's validated range.
        let cfg = AcceleratorConfig::builder()
            .rf_depth(rf)
            .build()
            .unwrap_or_else(|e| unreachable!("rf{rf} sweep point is valid: {e}"));
        sim.simulate_network(network, &cfg, DataflowPolicy::PerLayer, opts).total_cycles()
    };
    (mk(8), mk(16))
}

#[cfg(test)]
mod tests {
    use super::*;
    use codesign_dnn::zoo;

    #[test]
    fn sweep_covers_the_grid() {
        let space = SweepSpace {
            array_sizes: vec![8, 16],
            rf_depths: vec![8],
            buffer_bytes: vec![64 * 1024],
        };
        let pts =
            sweep(&zoo::squeezenet_v1_1(), &space, SimOptions::default(), &EnergyModel::default())
                .unwrap();
        assert_eq!(pts.len(), 2);
        assert!(pts.iter().all(|p| p.cycles > 0 && p.energy > 0.0));
    }

    #[test]
    fn bigger_arrays_are_faster_for_big_nets() {
        let space = SweepSpace {
            array_sizes: vec![8, 32],
            rf_depths: vec![16],
            buffer_bytes: vec![128 * 1024],
        };
        let pts =
            sweep(&zoo::squeezenet_v1_0(), &space, SimOptions::default(), &EnergyModel::default())
                .unwrap();
        let n8 = pts.iter().find(|p| p.params.array_size == 8).unwrap();
        let n32 = pts.iter().find(|p| p.params.array_size == 32).unwrap();
        assert!(n32.cycles < n8.cycles);
        // But small arrays utilize better.
        assert!(n8.utilization > n32.utilization);
    }

    #[test]
    fn rf_tuneup_helps_squeezenext() {
        // §4.2: "fine-tuned the hardware utilization by doubling the
        // register file size from 8 to 16".
        let (rf8, rf16) = rf_tuneup_effect(&zoo::squeezenext(), SimOptions::default());
        assert!(rf16 < rf8, "rf16 {rf16} should beat rf8 {rf8}");
    }

    #[test]
    fn best_point_exists_and_minimizes_edp() {
        let space = SweepSpace {
            array_sizes: vec![8, 16],
            rf_depths: vec![8, 16],
            buffer_bytes: vec![128 * 1024],
        };
        let pts =
            sweep(&zoo::tiny_darknet(), &space, SimOptions::default(), &EnergyModel::default())
                .unwrap();
        let best = best_by_energy_delay(&pts).unwrap();
        for p in &pts {
            assert!(best.energy_delay() <= p.energy_delay());
        }
    }

    #[test]
    fn pareto_designs_drop_dominated_points() {
        let space = SweepSpace {
            array_sizes: vec![8, 16, 32],
            rf_depths: vec![8, 16],
            buffer_bytes: vec![128 * 1024],
        };
        let pts =
            sweep(&zoo::squeezenet_v1_1(), &space, SimOptions::default(), &EnergyModel::default())
                .unwrap();
        let front = pareto_designs(&pts);
        assert!(!front.is_empty() && front.len() <= pts.len());
        // No front point dominates another front point.
        for a in &front {
            for b in &front {
                if a.params != b.params {
                    let dominates = a.cycles <= b.cycles
                        && a.energy <= b.energy
                        && a.area <= b.area
                        && (a.cycles < b.cycles || a.energy < b.energy || a.area < b.area);
                    assert!(!dominates, "{} dominates {}", a.params, b.params);
                }
            }
        }
        // Sorted by cycles.
        assert!(front.windows(2).all(|w| w[0].cycles <= w[1].cycles));
    }

    #[test]
    fn invalid_points_are_skipped() {
        let space = SweepSpace {
            array_sizes: vec![64],
            rf_depths: vec![8],
            buffer_bytes: vec![1024], // too small for a 64x64 array
        };
        let pts =
            sweep(&zoo::tiny_darknet(), &space, SimOptions::default(), &EnergyModel::default())
                .unwrap();
        assert!(pts.is_empty());
        assert!(best_by_energy_delay(&pts).is_none());
    }

    #[test]
    fn empty_axis_is_an_error_not_an_empty_vec() {
        for (i, axis) in ["array-size", "rf-depth", "buffer-bytes"].iter().enumerate() {
            let mut space = SweepSpace::paper_default();
            match i {
                0 => space.array_sizes.clear(),
                1 => space.rf_depths.clear(),
                _ => space.buffer_bytes.clear(),
            }
            assert!(space.is_empty());
            let err =
                sweep(&zoo::tiny_darknet(), &space, SimOptions::default(), &EnergyModel::default())
                    .unwrap_err();
            assert_eq!(err, SweepError::EmptySpace(axis));
            assert!(err.to_string().contains(axis));
        }
    }

    #[test]
    fn checked_rejects_degenerate_points() {
        let params = DesignParams { array_size: 16, rf_depth: 16, global_buffer_bytes: 128 * 1024 };
        assert!(DesignPoint::checked(params, 100, 1.0, 0.5, 2.0).is_some());
        assert!(DesignPoint::checked(params, 0, 1.0, 0.5, 2.0).is_none(), "zero cycles");
        assert!(DesignPoint::checked(params, 100, f64::NAN, 0.5, 2.0).is_none(), "NaN energy");
        assert!(DesignPoint::checked(params, 100, 1.0, 0.0, 2.0).is_none(), "zero utilization");
        assert!(
            DesignPoint::checked(params, 100, 1.0, 0.5, f64::INFINITY).is_none(),
            "infinite area"
        );
    }

    #[test]
    fn best_by_energy_delay_tolerates_nan() {
        let params = DesignParams { array_size: 16, rf_depth: 16, global_buffer_bytes: 128 * 1024 };
        // A hand-built NaN point (impossible via `checked`) must not panic
        // the comparison; total_cmp orders NaN after every real number.
        let good = DesignPoint { params, cycles: 10, energy: 1.0, utilization: 0.5, area: 1.0 };
        let nan = DesignPoint { params, cycles: 10, energy: f64::NAN, utilization: 0.5, area: 1.0 };
        let pts = vec![nan, good.clone()];
        assert_eq!(best_by_energy_delay(&pts), Some(&good));
    }

    #[test]
    fn space_len() {
        assert_eq!(SweepSpace::paper_default().len(), 27);
        assert!(!SweepSpace::paper_default().is_empty());
        assert_eq!(SweepSpace::paper_default().grid().count(), 27);
    }

    #[test]
    fn grid_decode_is_row_major_and_total() {
        let space = SweepSpace::paper_default();
        // point(i) enumerates exactly the nested-loop order.
        let mut expect = Vec::new();
        for &n in &space.array_sizes {
            for &rf in &space.rf_depths {
                for &buf in &space.buffer_bytes {
                    expect.push(DesignParams {
                        array_size: n,
                        rf_depth: rf,
                        global_buffer_bytes: buf,
                    });
                }
            }
        }
        let got: Vec<DesignParams> = space.grid().collect();
        assert_eq!(got, expect);
        assert_eq!(space.point(space.len()), None, "decode is bounded");
        // Ragged axis lengths exercise the mixed-radix arithmetic.
        let ragged = SweepSpace {
            array_sizes: vec![8, 16],
            rf_depths: vec![8, 16, 32, 64],
            buffer_bytes: vec![64 * 1024, 256 * 1024, 512 * 1024],
        };
        assert_eq!(ragged.grid().count(), ragged.len());
        let via_point: Vec<_> = (0..ragged.len()).filter_map(|i| ragged.point(i)).collect();
        assert_eq!(via_point, ragged.grid().collect::<Vec<_>>());
    }

    #[test]
    fn traced_sweep_metrics_are_schedule_independent() {
        use codesign_trace::{Category, MetricsSnapshot, Tracer};
        let space = SweepSpace {
            array_sizes: vec![8, 16],
            rf_depths: vec![8, 16],
            buffer_bytes: vec![64 * 1024],
        };
        let net = zoo::tiny_darknet();
        let opts = SimOptions::default();
        let em = EnergyModel::default();
        let run = |jobs: usize| {
            let tracer = Tracer::enabled();
            let sim = Simulator::new().with_tracer(tracer.clone());
            sweep_with(&sim, &net, &space, opts, &em, jobs).unwrap();
            MetricsSnapshot::of(&tracer.snapshot())
        };
        let serial = run(1);
        let parallel = run(4);
        // Span-derived aggregates are bit-identical however the grid was
        // scheduled. (Global cache counters are deliberately excluded:
        // racing misses make them schedule-dependent.)
        assert_eq!(serial.categories, parallel.categories);
        assert_eq!(serial.tracks, parallel.tracks);
        assert_eq!(serial.category(Category::Sweep).expect("sweep spans").spans, 4);
    }

    #[test]
    fn one_infeasible_point_degrades_instead_of_aborting() {
        // A 256-byte buffer builds (it holds two 8x8 tiles) but leaves
        // the tiling search no feasible plan for real layers — the sweep
        // must complete with n-1 points plus one named diagnostic.
        let space = SweepSpace {
            array_sizes: vec![8],
            rf_depths: vec![16],
            buffer_bytes: vec![256, 64 * 1024, 128 * 1024],
        };
        let net = zoo::tiny_darknet();
        let outcome = sweep_full_with(
            &Simulator::new(),
            &net,
            &space,
            SimOptions::default(),
            &EnergyModel::default(),
            0,
        )
        .unwrap();
        assert_eq!(outcome.points.len(), 2, "{:?}", outcome.failures);
        assert_eq!(outcome.failures.len(), 1);
        let failure = &outcome.failures[0];
        assert_eq!(failure.params.global_buffer_bytes, 256);
        assert!(failure.reason.contains("infeasible tiling"), "{}", failure.reason);
        assert!(outcome.failure_summary().contains("1 of 3 points failed"));
        // The tolerant path and the plain path agree on the survivors.
        let plain = sweep_with(
            &Simulator::new(),
            &net,
            &space,
            SimOptions::default(),
            &EnergyModel::default(),
            1,
        )
        .unwrap();
        assert_eq!(outcome.points, plain);
    }

    #[test]
    fn degraded_sweep_is_schedule_independent() {
        let space = SweepSpace {
            array_sizes: vec![8, 16],
            rf_depths: vec![8, 16],
            buffer_bytes: vec![256, 64 * 1024],
        };
        let net = zoo::tiny_darknet();
        let run = |jobs: usize| {
            sweep_full_with(
                &Simulator::uncached(),
                &net,
                &space,
                SimOptions::default(),
                &EnergyModel::default(),
                jobs,
            )
            .unwrap()
        };
        let serial = run(1);
        let parallel = run(8);
        assert_eq!(serial, parallel);
        assert!(!serial.failures.is_empty());
    }

    #[test]
    fn poisoned_worker_degrades_to_point_failure() {
        // A worker panic mid-sweep must neither hang the persistent pool
        // nor abort the sweep: the poisoned point surfaces as a
        // diagnostic and every other point still evaluates.
        use codesign_dnn::{NetworkBuilder, Shape};
        let net = NetworkBuilder::new("__poison_point_0__", Shape::new(16, 16, 16))
            .conv("c1", 16, 3, 1, 1)
            .finish()
            .unwrap();
        let space = SweepSpace {
            array_sizes: vec![8, 16],
            rf_depths: vec![16],
            buffer_bytes: vec![64 * 1024, 128 * 1024],
        };
        for jobs in [1, 2, 8] {
            let outcome = sweep_full_with(
                &Simulator::new(),
                &net,
                &space,
                SimOptions::default(),
                &EnergyModel::default(),
                jobs,
            )
            .unwrap();
            assert_eq!(outcome.points.len(), 3, "jobs={jobs}");
            assert_eq!(outcome.failures.len(), 1, "jobs={jobs}");
            let failure = &outcome.failures[0];
            assert_eq!(Some(failure.params), space.point(0));
            assert!(
                failure.reason.contains("worker panicked: injected worker poison"),
                "{}",
                failure.reason
            );
        }
    }

    #[test]
    fn sweep_is_jobs_invariant() {
        // The pool contract across the user-facing --jobs range: 1, 2,
        // and 8 workers produce bit-identical outcomes.
        let space = SweepSpace {
            array_sizes: vec![8, 16],
            rf_depths: vec![8, 16],
            buffer_bytes: vec![64 * 1024, 128 * 1024],
        };
        let net = zoo::tiny_darknet();
        let opts = SimOptions::default();
        let em = EnergyModel::default();
        let runs: Vec<SweepOutcome> = [1usize, 2, 8]
            .iter()
            .map(|&jobs| sweep_full_with(&Simulator::new(), &net, &space, opts, &em, jobs).unwrap())
            .collect();
        assert_eq!(runs[0], runs[1]);
        assert_eq!(runs[0], runs[2]);
        assert!(runs[0].failures.is_empty());
    }

    #[test]
    fn streaming_sweep_is_chunk_and_jobs_invariant() {
        // Chunking changes when results become observable, never what
        // they are: every (chunk, jobs) combination reproduces the batch
        // outcome bit-for-bit and fires exactly one event per grid
        // point, in grid order — including a failure event for the
        // infeasible 256-byte-buffer point.
        let space = SweepSpace {
            array_sizes: vec![8, 16],
            rf_depths: vec![16],
            buffer_bytes: vec![256, 64 * 1024, 128 * 1024],
        };
        let net = zoo::tiny_darknet();
        let opts = SimOptions::default();
        let em = EnergyModel::default();
        let batch =
            sweep_full_with(&Simulator::new(), &net, &space, opts, &EnergyModel::default(), 1)
                .unwrap();
        assert!(!batch.failures.is_empty(), "space includes an infeasible point");
        for chunk in [0usize, 1, 3, usize::MAX] {
            for jobs in [1usize, 4] {
                let mut indices = Vec::new();
                let mut seen_points = Vec::new();
                let mut seen_failures = Vec::new();
                let outcome = sweep_streaming_with(
                    &Simulator::new(),
                    &net,
                    &space,
                    opts,
                    &em,
                    jobs,
                    chunk,
                    |event| match event {
                        SweepEvent::Point { index, point } => {
                            indices.push(index);
                            seen_points.push(point.clone());
                        }
                        SweepEvent::Skipped { index, .. } => indices.push(index),
                        SweepEvent::Failure { index, failure } => {
                            indices.push(index);
                            seen_failures.push(failure.clone());
                        }
                    },
                )
                .unwrap();
                assert_eq!(outcome, batch, "chunk={chunk} jobs={jobs}");
                assert_eq!(
                    indices,
                    (0..space.len()).collect::<Vec<_>>(),
                    "one event per grid point, in grid order (chunk={chunk} jobs={jobs})"
                );
                assert_eq!(seen_points, outcome.points);
                assert_eq!(seen_failures, outcome.failures);
            }
        }
    }

    #[test]
    fn cancelled_token_on_entry_yields_the_empty_prefix() {
        let mut fired = 0usize;
        let token = CancelToken::never();
        token.cancel();
        let err = sweep_streaming_cancellable_with(
            &Simulator::new(),
            &zoo::tiny_darknet(),
            &SweepSpace::paper_default(),
            SimOptions::default(),
            &EnergyModel::default(),
            1,
            1,
            &token,
            |_| fired += 1,
        )
        .unwrap_err();
        assert_eq!(err, SweepError::Cancelled);
        assert_eq!(fired, 0);
    }

    #[test]
    fn cancel_mid_sweep_delivers_a_prefix_of_the_full_run() {
        // The tentpole determinism guarantee: whatever chunk size, jobs
        // count, and cancel point, the events delivered before the token
        // fires are bit-identical to a prefix of the uncancelled run's
        // event stream.
        let space = SweepSpace {
            array_sizes: vec![8, 16],
            rf_depths: vec![16],
            buffer_bytes: vec![256, 64 * 1024, 128 * 1024],
        };
        let net = zoo::tiny_darknet();
        let opts = SimOptions::default();
        let em = EnergyModel::default();
        let describe = |event: &SweepEvent<'_>| match event {
            SweepEvent::Point { index, point } => format!("{index}:point:{point:?}"),
            SweepEvent::Skipped { index, params } => format!("{index}:skip:{params}"),
            SweepEvent::Failure { index, failure } => format!("{index}:fail:{failure}"),
        };
        let mut full = Vec::new();
        sweep_full_with(&Simulator::new(), &net, &space, opts, &em, 1).unwrap();
        sweep_streaming_with(&Simulator::new(), &net, &space, opts, &em, 1, 1, |e| {
            full.push(describe(&e))
        })
        .unwrap();
        assert_eq!(full.len(), space.len());
        for chunk in [1usize, 2, 4] {
            for jobs in [1usize, 4] {
                for cancel_after in [1usize, 2, 5] {
                    let token = CancelToken::never();
                    let mut delivered = Vec::new();
                    let result = sweep_streaming_cancellable_with(
                        &Simulator::new(),
                        &net,
                        &space,
                        opts,
                        &em,
                        jobs,
                        chunk,
                        &token,
                        |e| {
                            delivered.push(describe(&e));
                            if delivered.len() >= cancel_after {
                                token.cancel();
                            }
                        },
                    );
                    let tag = format!("chunk={chunk} jobs={jobs} cancel_after={cancel_after}");
                    assert_eq!(
                        delivered,
                        full[..delivered.len()],
                        "delivered events are a prefix ({tag})"
                    );
                    if delivered.len() < full.len() {
                        assert_eq!(result.unwrap_err(), SweepError::Cancelled, "{tag}");
                        // The whole current chunk completed before the
                        // between-chunk poll noticed the cancel.
                        assert_eq!(delivered.len() % chunk, 0, "{tag}");
                    } else {
                        // Cancel fired during the final chunk: the sweep
                        // was already complete.
                        assert!(result.is_ok(), "{tag}");
                    }
                }
            }
        }
    }

    #[test]
    fn streaming_sweep_rejects_empty_spaces_before_any_event() {
        let mut space = SweepSpace::paper_default();
        space.rf_depths.clear();
        let mut fired = 0usize;
        let err = sweep_streaming_with(
            &Simulator::new(),
            &zoo::tiny_darknet(),
            &space,
            SimOptions::default(),
            &EnergyModel::default(),
            1,
            1,
            |_| fired += 1,
        )
        .unwrap_err();
        assert_eq!(err, SweepError::EmptySpace("rf-depth"));
        assert_eq!(fired, 0, "no events before validation");
    }

    #[test]
    fn parallel_cached_sweep_matches_serial_uncached() {
        // The tentpole contract: `jobs` and the cache change wall-time,
        // never results or order.
        let space = SweepSpace {
            array_sizes: vec![8, 16],
            rf_depths: vec![8, 16],
            buffer_bytes: vec![64 * 1024, 128 * 1024],
        };
        let net = zoo::squeezenet_v1_1();
        let opts = SimOptions::default();
        let em = EnergyModel::default();
        let serial = sweep_with(&Simulator::uncached(), &net, &space, opts, &em, 1).unwrap();
        let parallel = sweep_with(&Simulator::new(), &net, &space, opts, &em, 4).unwrap();
        assert_eq!(serial, parallel);
    }
}
