//! Design-space exploration: tailoring the accelerator to a DNN
//! (§4.1, "a careful tuning of the accelerator architecture to a DNN
//! model can lead to a 1.9–6.3× improvement in speed").

use std::fmt;

use codesign_arch::{area, AcceleratorConfig, AreaModel, DataflowPolicy, EnergyModel};
use codesign_dnn::Network;
use codesign_sim::{simulate_network, SimOptions};

/// The swept hardware parameters of one design point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DesignParams {
    /// PE array edge length.
    pub array_size: usize,
    /// Register-file depth.
    pub rf_depth: usize,
    /// Global buffer bytes.
    pub global_buffer_bytes: usize,
}

impl fmt::Display for DesignParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}x{}/rf{}/{}KB",
            self.array_size,
            self.array_size,
            self.rf_depth,
            self.global_buffer_bytes / 1024
        )
    }
}

/// One evaluated design point.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignPoint {
    /// The hardware parameters.
    pub params: DesignParams,
    /// Inference cycles on the hybrid architecture.
    pub cycles: u64,
    /// Energy in MAC-normalized units.
    pub energy: f64,
    /// Average PE utilization.
    pub utilization: f64,
    /// Silicon area in MAC-normalized units (dual-dataflow array).
    pub area: f64,
}

impl DesignPoint {
    /// Energy-delay product — the single-number figure of merit used to
    /// rank design points.
    pub fn energy_delay(&self) -> f64 {
        self.energy * self.cycles as f64
    }
}

/// The swept parameter grid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepSpace {
    /// Array sizes to try (paper: 8..=32).
    pub array_sizes: Vec<usize>,
    /// RF depths to try (paper tune-up: 8 -> 16).
    pub rf_depths: Vec<usize>,
    /// Buffer capacities to try.
    pub buffer_bytes: Vec<usize>,
}

impl SweepSpace {
    /// The space the paper discusses: N ∈ {8, 16, 32}, RF ∈ {8, 16, 32},
    /// buffer ∈ {64 KB, 128 KB, 256 KB}.
    pub fn paper_default() -> Self {
        Self {
            array_sizes: vec![8, 16, 32],
            rf_depths: vec![8, 16, 32],
            buffer_bytes: vec![64 * 1024, 128 * 1024, 256 * 1024],
        }
    }

    /// Number of grid points.
    pub fn len(&self) -> usize {
        self.array_sizes.len() * self.rf_depths.len() * self.buffer_bytes.len()
    }

    /// Whether the space is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for SweepSpace {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Evaluates every design point in `space` for `network` on the hybrid
/// architecture. Invalid configurations (e.g. a buffer too small for the
/// array) are skipped.
pub fn sweep(
    network: &Network,
    space: &SweepSpace,
    opts: SimOptions,
    energy_model: &EnergyModel,
) -> Vec<DesignPoint> {
    let mut points = Vec::with_capacity(space.len());
    for &n in &space.array_sizes {
        for &rf in &space.rf_depths {
            for &buf in &space.buffer_bytes {
                let Ok(cfg) = AcceleratorConfig::builder()
                    .array_size(n)
                    .rf_depth(rf)
                    .global_buffer_bytes(buf)
                    .build()
                else {
                    continue;
                };
                let perf = simulate_network(network, &cfg, DataflowPolicy::PerLayer, opts);
                points.push(DesignPoint {
                    params: DesignParams { array_size: n, rf_depth: rf, global_buffer_bytes: buf },
                    cycles: perf.total_cycles(),
                    energy: perf.total_energy(energy_model),
                    utilization: perf.average_utilization(cfg.pe_count()),
                    area: area(&cfg, &AreaModel::default(), true).total(),
                });
            }
        }
    }
    points
}

/// The design point with the lowest energy-delay product.
pub fn best_by_energy_delay(points: &[DesignPoint]) -> Option<&DesignPoint> {
    points.iter().min_by(|a, b| {
        a.energy_delay().partial_cmp(&b.energy_delay()).expect("energy-delay is finite")
    })
}

/// The Pareto-optimal hardware designs over (cycles, energy, area): a
/// point survives unless some other point is no worse on all three axes
/// and strictly better on at least one. Returned sorted by ascending
/// cycles.
pub fn pareto_designs(points: &[DesignPoint]) -> Vec<DesignPoint> {
    let dominated = |p: &DesignPoint| {
        points.iter().any(|q| {
            q.cycles <= p.cycles
                && q.energy <= p.energy
                && q.area <= p.area
                && (q.cycles < p.cycles || q.energy < p.energy || q.area < p.area)
        })
    };
    let mut front: Vec<DesignPoint> =
        points.iter().filter(|p| !dominated(p)).cloned().collect();
    front.sort_by_key(|p| p.cycles);
    front
}

/// Isolated effect of the paper's register-file tune-up (8 -> 16) on a
/// network: returns `(cycles at rf 8, cycles at rf 16)`.
pub fn rf_tuneup_effect(network: &Network, opts: SimOptions) -> (u64, u64) {
    let mk = |rf: usize| {
        let cfg = AcceleratorConfig::builder().rf_depth(rf).build().expect("valid rf sweep point");
        simulate_network(network, &cfg, DataflowPolicy::PerLayer, opts).total_cycles()
    };
    (mk(8), mk(16))
}

#[cfg(test)]
mod tests {
    use super::*;
    use codesign_dnn::zoo;

    #[test]
    fn sweep_covers_the_grid() {
        let space = SweepSpace {
            array_sizes: vec![8, 16],
            rf_depths: vec![8],
            buffer_bytes: vec![64 * 1024],
        };
        let pts = sweep(
            &zoo::squeezenet_v1_1(),
            &space,
            SimOptions::default(),
            &EnergyModel::default(),
        );
        assert_eq!(pts.len(), 2);
        assert!(pts.iter().all(|p| p.cycles > 0 && p.energy > 0.0));
    }

    #[test]
    fn bigger_arrays_are_faster_for_big_nets() {
        let space = SweepSpace {
            array_sizes: vec![8, 32],
            rf_depths: vec![16],
            buffer_bytes: vec![128 * 1024],
        };
        let pts = sweep(&zoo::squeezenet_v1_0(), &space, SimOptions::default(), &EnergyModel::default());
        let n8 = pts.iter().find(|p| p.params.array_size == 8).unwrap();
        let n32 = pts.iter().find(|p| p.params.array_size == 32).unwrap();
        assert!(n32.cycles < n8.cycles);
        // But small arrays utilize better.
        assert!(n8.utilization > n32.utilization);
    }

    #[test]
    fn rf_tuneup_helps_squeezenext() {
        // §4.2: "fine-tuned the hardware utilization by doubling the
        // register file size from 8 to 16".
        let (rf8, rf16) = rf_tuneup_effect(&zoo::squeezenext(), SimOptions::default());
        assert!(rf16 < rf8, "rf16 {rf16} should beat rf8 {rf8}");
    }

    #[test]
    fn best_point_exists_and_minimizes_edp() {
        let space = SweepSpace {
            array_sizes: vec![8, 16],
            rf_depths: vec![8, 16],
            buffer_bytes: vec![128 * 1024],
        };
        let pts = sweep(&zoo::tiny_darknet(), &space, SimOptions::default(), &EnergyModel::default());
        let best = best_by_energy_delay(&pts).unwrap();
        for p in &pts {
            assert!(best.energy_delay() <= p.energy_delay());
        }
    }

    #[test]
    fn pareto_designs_drop_dominated_points() {
        let space = SweepSpace {
            array_sizes: vec![8, 16, 32],
            rf_depths: vec![8, 16],
            buffer_bytes: vec![128 * 1024],
        };
        let pts = sweep(&zoo::squeezenet_v1_1(), &space, SimOptions::default(), &EnergyModel::default());
        let front = pareto_designs(&pts);
        assert!(!front.is_empty() && front.len() <= pts.len());
        // No front point dominates another front point.
        for a in &front {
            for b in &front {
                if a.params != b.params {
                    let dominates = a.cycles <= b.cycles
                        && a.energy <= b.energy
                        && a.area <= b.area
                        && (a.cycles < b.cycles || a.energy < b.energy || a.area < b.area);
                    assert!(!dominates, "{} dominates {}", a.params, b.params);
                }
            }
        }
        // Sorted by cycles.
        assert!(front.windows(2).all(|w| w[0].cycles <= w[1].cycles));
    }

    #[test]
    fn invalid_points_are_skipped() {
        let space = SweepSpace {
            array_sizes: vec![64],
            rf_depths: vec![8],
            buffer_bytes: vec![1024], // too small for a 64x64 array
        };
        let pts = sweep(&zoo::tiny_darknet(), &space, SimOptions::default(), &EnergyModel::default());
        assert!(pts.is_empty());
        assert!(best_by_energy_delay(&pts).is_none());
    }

    #[test]
    fn space_len() {
        assert_eq!(SweepSpace::paper_default().len(), 27);
        assert!(!SweepSpace::paper_default().is_empty());
    }
}
