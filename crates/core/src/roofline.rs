//! Roofline / arithmetic-intensity analysis.
//!
//! §4.2 motivates SqueezeNext by "avoiding MobileNet's depthwise
//! separable convolutions that have poor Arithmetic Intensity (Ops/MAC
//! per byte of memory accessed)". This module computes exactly that
//! quantity per layer and per network, and classifies layers against the
//! machine balance point (peak MACs/cycle over DRAM bytes/cycle).

use codesign_arch::{AcceleratorConfig, Dataflow, DataflowPolicy};
use codesign_dnn::{LayerClass, Network};
use codesign_sim::{simulate_network, NetworkPerf, SimOptions};

/// Whether a layer sits left or right of the machine's balance point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Bound {
    /// Arithmetic intensity below the balance point: DRAM-bandwidth
    /// limited.
    MemoryBound,
    /// At or above the balance point: PE-array limited.
    ComputeBound,
}

/// Arithmetic-intensity numbers for one layer.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerRoofline {
    /// Layer name.
    pub name: String,
    /// Table-1 class.
    pub class: LayerClass,
    /// Algorithmic MACs.
    pub macs: u64,
    /// DRAM bytes moved (including tiling re-fetches).
    pub dram_bytes: u64,
    /// MACs per DRAM byte.
    pub intensity: f64,
    /// Side of the balance point.
    pub bound: Bound,
}

/// Whole-network roofline summary.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkRoofline {
    /// Network name.
    pub network: String,
    /// The machine balance point in MACs per byte.
    pub balance: f64,
    /// Per-layer entries (compute layers only).
    pub layers: Vec<LayerRoofline>,
}

impl NetworkRoofline {
    /// Network-level arithmetic intensity: total MACs over total DRAM
    /// bytes.
    pub fn intensity(&self) -> f64 {
        let macs: u64 = self.layers.iter().map(|l| l.macs).sum();
        let bytes: u64 = self.layers.iter().map(|l| l.dram_bytes).sum();
        if bytes == 0 {
            0.0
        } else {
            macs as f64 / bytes as f64
        }
    }

    /// Fraction of MACs that live in memory-bound layers.
    pub fn memory_bound_mac_fraction(&self) -> f64 {
        let total: u64 = self.layers.iter().map(|l| l.macs).sum();
        if total == 0 {
            return 0.0;
        }
        let mem: u64 =
            self.layers.iter().filter(|l| l.bound == Bound::MemoryBound).map(|l| l.macs).sum();
        mem as f64 / total as f64
    }

    /// Mean intensity of layers in the given class, if any exist.
    pub fn class_intensity(&self, class: LayerClass) -> Option<f64> {
        let of_class: Vec<&LayerRoofline> =
            self.layers.iter().filter(|l| l.class == class).collect();
        if of_class.is_empty() {
            return None;
        }
        let macs: u64 = of_class.iter().map(|l| l.macs).sum();
        let bytes: u64 = of_class.iter().map(|l| l.dram_bytes).sum();
        (bytes > 0).then(|| macs as f64 / bytes as f64)
    }
}

/// The machine balance point: peak MAC throughput over DRAM bandwidth,
/// in MACs per byte. Layers below it cannot keep the array fed.
pub fn machine_balance(cfg: &AcceleratorConfig) -> f64 {
    cfg.pe_count() as f64 / cfg.dram().bytes_per_cycle
}

fn from_perf(network: &Network, perf: &NetworkPerf, balance: f64) -> NetworkRoofline {
    let layers = network
        .layers()
        .iter()
        .zip(&perf.layers)
        .filter(|(l, _)| l.is_compute())
        .map(|(layer, lp)| {
            let macs = layer.macs();
            let intensity =
                if lp.dram_bytes == 0 { f64::INFINITY } else { macs as f64 / lp.dram_bytes as f64 };
            LayerRoofline {
                name: layer.name.clone(),
                class: layer.class(),
                macs,
                dram_bytes: lp.dram_bytes,
                intensity,
                bound: if intensity < balance { Bound::MemoryBound } else { Bound::ComputeBound },
            }
        })
        .collect();
    NetworkRoofline { network: network.name().to_owned(), balance, layers }
}

/// Computes the roofline profile of a network on the hybrid architecture.
pub fn roofline(network: &Network, cfg: &AcceleratorConfig, opts: SimOptions) -> NetworkRoofline {
    let perf = simulate_network(network, cfg, DataflowPolicy::PerLayer, opts);
    from_perf(network, &perf, machine_balance(cfg))
}

/// Computes the roofline profile under a forced dataflow (the traffic is
/// dataflow independent in this model, but the perf context matters for
/// callers correlating with cycle results).
pub fn roofline_fixed(
    network: &Network,
    cfg: &AcceleratorConfig,
    opts: SimOptions,
    dataflow: Dataflow,
) -> NetworkRoofline {
    let perf = simulate_network(network, cfg, DataflowPolicy::Fixed(dataflow), opts);
    from_perf(network, &perf, machine_balance(cfg))
}

#[cfg(test)]
mod tests {
    use super::*;
    use codesign_dnn::zoo;

    fn ctx() -> (AcceleratorConfig, SimOptions) {
        (AcceleratorConfig::paper_default(), SimOptions::paper_default())
    }

    #[test]
    fn balance_point_is_pe_over_bandwidth() {
        let cfg = AcceleratorConfig::paper_default();
        // 1024 PEs over 80 B/cycle = 12.8 MACs/byte.
        assert!((machine_balance(&cfg) - 12.8).abs() < 1e-9);
    }

    #[test]
    fn depthwise_layers_have_poor_intensity() {
        // The paper's §4.2 claim: depthwise (and pointwise) layers have
        // poor arithmetic intensity compared to dense 3x3 layers.
        let (cfg, opts) = ctx();
        let r = roofline(&zoo::mobilenet_v1(), &cfg, opts);
        let dw = r.class_intensity(LayerClass::Depthwise).unwrap();
        let pw = r.class_intensity(LayerClass::Pointwise).unwrap();
        assert!(dw < pw, "dw {dw:.2} should be below 1x1 {pw:.2}");
        let r_sq = roofline(&zoo::squeezenet_v1_0(), &cfg, opts);
        let fxf = r_sq.class_intensity(LayerClass::Spatial).unwrap();
        assert!(dw < fxf, "dw {dw:.2} should be far below 3x3 {fxf:.2}");
    }

    #[test]
    fn fc_layers_are_memory_bound() {
        let (cfg, opts) = ctx();
        let r = roofline(&zoo::alexnet(), &cfg, opts);
        for l in r.layers.iter().filter(|l| l.class == LayerClass::FullyConnected) {
            assert_eq!(l.bound, Bound::MemoryBound, "{}", l.name);
            assert!(l.intensity < 1.0, "{}: {:.3}", l.name, l.intensity);
        }
    }

    #[test]
    fn mobilenet_has_lower_intensity_than_squeezenext() {
        // Why SqueezeNext avoids depthwise separable convolutions.
        let (cfg, opts) = ctx();
        let mobile = roofline(&zoo::mobilenet_v1(), &cfg, opts).intensity();
        let sqnxt = roofline(&zoo::squeezenext(), &cfg, opts).intensity();
        let squeeze = roofline(&zoo::squeezenet_v1_0(), &cfg, opts).intensity();
        assert!(squeeze > mobile, "SqueezeNet {squeeze:.1} vs MobileNet {mobile:.1}");
        let _ = sqnxt; // SqueezeNext's bottleneck 1x1s keep it lower than
                       // SqueezeNet but its spatial convs beat depthwise.
    }

    #[test]
    fn memory_bound_fraction_is_a_fraction() {
        let (cfg, opts) = ctx();
        for net in zoo::table_networks() {
            let r = roofline(&net, &cfg, opts);
            let f = r.memory_bound_mac_fraction();
            assert!((0.0..=1.0).contains(&f), "{}: {f}", net.name());
        }
    }

    #[test]
    fn missing_class_yields_none() {
        let (cfg, opts) = ctx();
        let r = roofline(&zoo::alexnet(), &cfg, opts);
        assert!(r.class_intensity(LayerClass::Depthwise).is_none());
    }
}
