//! Per-layer dataflow schedules: the data behind Figures 1 and 3.
//!
//! "As the DNN inference computation is statically schedulable,
//! simulation results can be used to determine the dataflow approach (WS
//! or OS) that best executes [each layer]."

use std::fmt;

use codesign_arch::{AcceleratorConfig, Dataflow};
use codesign_dnn::{LayerClass, Network};
use codesign_sim::{SimOptions, Simulator};

/// One row of a per-layer schedule: both dataflows' costs plus the static
/// choice.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerScheduleEntry {
    /// Layer name.
    pub name: String,
    /// Table-1 class of the layer.
    pub class: LayerClass,
    /// Cycles under the fixed-WS reference.
    pub ws_cycles: u64,
    /// Cycles under the fixed-OS reference.
    pub os_cycles: u64,
    /// The dataflow the Squeezelerator selects (`None` for SIMD-path
    /// layers, whose cost is dataflow independent).
    pub chosen: Option<Dataflow>,
    /// Cycles on the Squeezelerator (min of the two).
    pub hybrid_cycles: u64,
    /// PE utilization of the chosen execution.
    pub utilization: f64,
}

impl fmt::Display for LayerScheduleEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<24} {:>6} ws={:<9} os={:<9} -> {} ({:.0}% util)",
            self.name,
            self.class.to_string(),
            self.ws_cycles,
            self.os_cycles,
            self.chosen.map_or("SIMD", |d| d.tag()),
            100.0 * self.utilization
        )
    }
}

/// The full static schedule of a network on the Squeezelerator.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkSchedule {
    /// Network name.
    pub network: String,
    /// Per-layer entries in execution order.
    pub entries: Vec<LayerScheduleEntry>,
}

impl NetworkSchedule {
    /// Builds the schedule by simulating every layer under both dataflows.
    pub fn build(network: &Network, cfg: &AcceleratorConfig, opts: SimOptions) -> Self {
        // A per-call memoizing simulator: repeated layer shapes (fire
        // modules, depthwise ladders) simulate once. Cached and uncached
        // runs are bit-identical, so the schedule is unchanged.
        Self::build_with(&Simulator::new(), network, cfg, opts)
    }

    /// [`NetworkSchedule::build`] against a caller-provided simulator, so
    /// sweeps over many option sets (e.g. the sparsity-robustness probes)
    /// share one result cache.
    pub fn build_with(
        sim: &Simulator,
        network: &Network,
        cfg: &AcceleratorConfig,
        opts: SimOptions,
    ) -> Self {
        let entries = network
            .layers()
            .iter()
            .map(|layer| {
                let (ws, os, best) = sim.compare_dataflows(layer, cfg, opts);
                let chosen = if layer.is_compute() { Some(best) } else { None };
                let (hybrid_cycles, utilization) = match best {
                    Dataflow::WeightStationary => (ws.total_cycles, ws.utilization),
                    Dataflow::OutputStationary => (os.total_cycles, os.utilization),
                };
                LayerScheduleEntry {
                    name: layer.name.clone(),
                    class: layer.class(),
                    ws_cycles: ws.total_cycles,
                    os_cycles: os.total_cycles,
                    chosen,
                    hybrid_cycles,
                    utilization,
                }
            })
            .collect();
        Self { network: network.name().to_owned(), entries }
    }

    /// Entries for layers of a given class.
    pub fn entries_of_class(&self, class: LayerClass) -> impl Iterator<Item = &LayerScheduleEntry> {
        self.entries.iter().filter(move |e| e.class == class)
    }

    /// Total hybrid cycles.
    pub fn total_cycles(&self) -> u64 {
        self.entries.iter().map(|e| e.hybrid_cycles).sum()
    }

    /// Fraction of compute layers that chose the given dataflow.
    pub fn dataflow_share(&self, dataflow: Dataflow) -> f64 {
        let compute: Vec<_> = self.entries.iter().filter(|e| e.chosen.is_some()).collect();
        if compute.is_empty() {
            return 0.0;
        }
        compute.iter().filter(|e| e.chosen == Some(dataflow)).count() as f64 / compute.len() as f64
    }

    /// Looks up an entry by layer name.
    pub fn entry(&self, name: &str) -> Option<&LayerScheduleEntry> {
        self.entries.iter().find(|e| e.name == name)
    }
}

/// How robust the static schedule is to the sparsity assumption: the
/// paper picks each layer's dataflow assuming 40 % zero weights — if the
/// deployed model's real sparsity differs, do any choices flip?
///
/// Returns, for each probe sparsity, the number of compute layers whose
/// best dataflow differs from the schedule chosen at `baseline` sparsity.
pub fn schedule_sparsity_robustness(
    network: &Network,
    cfg: &AcceleratorConfig,
    baseline: codesign_sim::SparsityModel,
    probes: &[f64],
) -> Vec<(f64, usize)> {
    // One simulator across the baseline and every probe: the WS walk and
    // the tiling-search traffic are sparsity independent, so all probes
    // hit their cache entries and only the OS walks re-run.
    schedule_sparsity_robustness_with(&Simulator::new(), network, cfg, baseline, probes)
}

/// [`schedule_sparsity_robustness`] against a caller-provided simulator,
/// so the probe schedules also share entries with any other work the
/// caller has already simulated on it.
pub fn schedule_sparsity_robustness_with(
    sim: &Simulator,
    network: &Network,
    cfg: &AcceleratorConfig,
    baseline: codesign_sim::SparsityModel,
    probes: &[f64],
) -> Vec<(f64, usize)> {
    let base_opts = SimOptions {
        os: codesign_sim::OsModelOptions::paper_default().with_sparsity(baseline),
        ..SimOptions::paper_default()
    };
    let base = NetworkSchedule::build_with(sim, network, cfg, base_opts);
    probes
        .iter()
        .map(|&z| {
            let opts = SimOptions {
                os: codesign_sim::OsModelOptions::paper_default()
                    .with_sparsity(codesign_sim::SparsityModel { zero_fraction: z, exploit: true }),
                ..SimOptions::paper_default()
            };
            let probe = NetworkSchedule::build_with(sim, network, cfg, opts);
            let flips = base
                .entries
                .iter()
                .zip(&probe.entries)
                .filter(|(a, b)| a.chosen.is_some() && a.chosen != b.chosen)
                .count();
            (z, flips)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use codesign_dnn::zoo;

    fn schedule(net: &Network) -> NetworkSchedule {
        NetworkSchedule::build(net, &AcceleratorConfig::paper_default(), SimOptions::default())
    }

    #[test]
    fn squeezenet_schedule_matches_figure_1_narrative() {
        let net = zoo::squeezenet_v1_0();
        let s = schedule(&net);
        // "the performance of the first layer is noticeably improved":
        // conv1 picks OS.
        assert_eq!(s.entry("conv1").unwrap().chosen, Some(Dataflow::OutputStationary));
        // Squeeze/expand 1x1 layers pick WS.
        assert_eq!(s.entry("fire2/squeeze1x1").unwrap().chosen, Some(Dataflow::WeightStationary));
        // Late 3x3 expands see OS degraded by the feature-map mismatch:
        // fire9 runs 13x13 on a 32x32 array.
        let fire9 = s.entry("fire9/expand3x3").unwrap();
        assert!(fire9.os_cycles > fire9.ws_cycles);
        // Hybrid = min per layer.
        for e in &s.entries {
            assert_eq!(e.hybrid_cycles, e.ws_cycles.min(e.os_cycles), "{}", e.name);
        }
    }

    #[test]
    fn early_layers_beat_late_layers_in_utilization_for_squeezenext() {
        // Figure 3's narrative: initial layers have very low utilization.
        let net = zoo::squeezenext_variant(1);
        let s = schedule(&net);
        let early = s.entry("s1b1/reduce1").unwrap().utilization;
        let late = s.entry("s3b1/expand").unwrap().utilization;
        assert!(early < late, "early {early:.3} should be below late {late:.3}");
    }

    #[test]
    fn mobilenet_splits_by_class() {
        let net = zoo::mobilenet_v1();
        let s = schedule(&net);
        for e in s.entries_of_class(codesign_dnn::LayerClass::Depthwise) {
            assert_eq!(e.chosen, Some(Dataflow::OutputStationary), "{}", e.name);
        }
        for e in s.entries_of_class(codesign_dnn::LayerClass::Pointwise) {
            assert_eq!(e.chosen, Some(Dataflow::WeightStationary), "{}", e.name);
        }
        let ws_share = s.dataflow_share(Dataflow::WeightStationary);
        assert!(ws_share > 0.4 && ws_share < 0.9);
    }

    #[test]
    fn simd_layers_have_no_choice() {
        let net = zoo::squeezenet_v1_0();
        let s = schedule(&net);
        assert_eq!(s.entry("pool1").unwrap().chosen, None);
        assert_eq!(s.entry("fire2/concat").unwrap().chosen, None);
    }

    #[test]
    fn schedule_is_robust_near_the_assumed_sparsity() {
        // Choices made at 40% zeros barely move for nearby sparsities,
        // and flip more as the assumption degrades to fully dense.
        let net = zoo::squeezenet_v1_0();
        let cfg = AcceleratorConfig::paper_default();
        let rows = schedule_sparsity_robustness(
            &net,
            &cfg,
            codesign_sim::SparsityModel::paper_default(),
            &[0.4, 0.3, 0.0],
        );
        assert_eq!(rows[0], (0.4, 0));
        let compute_layers = net.compute_layers().count();
        assert!(rows[1].1 <= compute_layers / 4, "0.3 flips {} layers", rows[1].1);
        assert!(rows[2].1 >= rows[1].1, "dense should flip at least as many");
    }

    #[test]
    fn totals_are_sum_of_entries() {
        let net = zoo::squeezenet_v1_1();
        let s = schedule(&net);
        let total: u64 = s.entries.iter().map(|e| e.hybrid_cycles).sum();
        assert_eq!(s.total_cycles(), total);
        assert!(total > 0);
    }
}
