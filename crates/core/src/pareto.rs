//! Accuracy / energy / latency spectra — the data behind Figure 4.

use std::fmt;

use codesign_arch::{AcceleratorConfig, DataflowPolicy, EnergyModel};
use codesign_dnn::Network;
use codesign_sim::{SimOptions, Simulator};

/// One model's position in the accuracy-vs-cost space.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelPoint {
    /// Model name.
    pub name: String,
    /// ImageNet top-1 accuracy (published metadata).
    pub accuracy: f64,
    /// Inference time in milliseconds on the hybrid architecture.
    pub time_ms: f64,
    /// Energy in MAC-normalized units.
    pub energy: f64,
}

impl fmt::Display for ModelPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {:.1}% top-1, {:.2} ms, {:.1} MMAC-eq energy",
            self.name,
            self.accuracy,
            self.time_ms,
            self.energy / 1e6
        )
    }
}

/// Simulates each network and returns its spectrum point. Networks with
/// no accuracy metadata are skipped (they cannot be placed in Figure 4).
/// Routes through a transient memoizing simulator; use
/// [`spectrum_with`] to share an engine handle across experiments.
pub fn spectrum(
    networks: &[Network],
    cfg: &AcceleratorConfig,
    opts: SimOptions,
    energy_model: &EnergyModel,
) -> Vec<ModelPoint> {
    spectrum_with(&Simulator::new(), networks, cfg, opts, energy_model)
}

/// [`spectrum`] through a caller-supplied engine handle, so repeated
/// layer shapes across the model families (and across experiments
/// sharing `sim`) are memoized once.
pub fn spectrum_with(
    sim: &Simulator,
    networks: &[Network],
    cfg: &AcceleratorConfig,
    opts: SimOptions,
    energy_model: &EnergyModel,
) -> Vec<ModelPoint> {
    networks
        .iter()
        .filter_map(|net| {
            let accuracy = net.top1_accuracy()?;
            let perf = sim.simulate_network(net, cfg, DataflowPolicy::PerLayer, opts);
            Some(ModelPoint {
                name: net.name().to_owned(),
                accuracy,
                time_ms: cfg.cycles_to_ms(perf.total_cycles()),
                energy: perf.total_energy(energy_model),
            })
        })
        .collect()
}

/// The cost axis of a Pareto query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CostAxis {
    /// Inference time.
    Time,
    /// Energy.
    Energy,
}

/// Returns the Pareto-optimal subset: points for which no other point has
/// both higher accuracy and lower cost. The result is sorted by ascending
/// cost.
pub fn pareto_front(points: &[ModelPoint], axis: CostAxis) -> Vec<ModelPoint> {
    let cost = |p: &ModelPoint| match axis {
        CostAxis::Time => p.time_ms,
        CostAxis::Energy => p.energy,
    };
    // q dominates p: no worse on both axes, strictly better on one.
    let mut front: Vec<ModelPoint> = points
        .iter()
        .filter(|p| {
            !points.iter().any(|q| {
                q.accuracy >= p.accuracy
                    && cost(q) <= cost(p)
                    && (q.accuracy > p.accuracy || cost(q) < cost(p))
            })
        })
        .cloned()
        .collect();
    front.sort_by(|a, b| cost(a).total_cmp(&cost(b)));
    front.dedup_by(|a, b| a.name == b.name);
    front
}

#[cfg(test)]
mod tests {
    use super::*;
    use codesign_dnn::zoo;

    fn point(name: &str, acc: f64, time: f64, energy: f64) -> ModelPoint {
        ModelPoint { name: name.into(), accuracy: acc, time_ms: time, energy }
    }

    #[test]
    fn front_drops_dominated_points() {
        let pts = vec![
            point("good", 60.0, 1.0, 100.0),
            point("dominated", 55.0, 2.0, 200.0),
            point("accurate-slow", 70.0, 5.0, 500.0),
        ];
        let front = pareto_front(&pts, CostAxis::Time);
        let names: Vec<&str> = front.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, ["good", "accurate-slow"]);
    }

    #[test]
    fn ties_prefer_cheaper_and_more_accurate() {
        let pts = vec![
            point("a", 60.0, 1.0, 1.0),
            point("same-acc-slower", 60.0, 2.0, 1.0),
            point("same-time-worse-acc", 59.0, 1.0, 1.0),
        ];
        let front = pareto_front(&pts, CostAxis::Time);
        assert_eq!(front.len(), 1);
        assert_eq!(front[0].name, "a");
    }

    #[test]
    fn figure_4_narrative_squeezenext_dominates_squeezenet() {
        // "SqueezeNext shows superior performance (higher and to the
        // left)": SqueezeNet v1.0 must not be on the Pareto front once
        // the SqueezeNext family is present.
        let cfg = AcceleratorConfig::paper_default();
        let mut nets = zoo::squeezenext_family();
        nets.push(zoo::squeezenet_v1_0());
        nets.push(zoo::squeezenet_v1_1());
        let pts = spectrum(&nets, &cfg, SimOptions::default(), &EnergyModel::default());
        for axis in [CostAxis::Time, CostAxis::Energy] {
            let front = pareto_front(&pts, axis);
            assert!(
                !front.iter().any(|p| p.name == "SqueezeNet v1.0"),
                "SqueezeNet v1.0 should be dominated on {axis:?}"
            );
            assert!(
                front.iter().any(|p| p.name.contains("SqNxt")),
                "a SqueezeNext model should sit on the {axis:?} front"
            );
        }
    }

    #[test]
    fn spectrum_skips_models_without_accuracy() {
        let cfg = AcceleratorConfig::paper_default();
        let unnamed =
            codesign_dnn::NetworkBuilder::new("anon", codesign_dnn::Shape::new(3, 32, 32))
                .conv("c", 8, 3, 1, 1)
                .finish()
                .unwrap();
        let pts = spectrum(&[unnamed], &cfg, SimOptions::default(), &EnergyModel::default());
        assert!(pts.is_empty());
    }

    #[test]
    fn display_mentions_accuracy() {
        let p = point("x", 59.2, 1.5, 2e6);
        assert!(p.to_string().contains("59.2"));
    }
}
