//! Accuracy / energy / latency spectra — the data behind Figure 4.

use std::fmt;

use codesign_arch::{AcceleratorConfig, DataflowPolicy, EnergyModel};
use codesign_dnn::Network;
use codesign_sim::{SimOptions, Simulator};

/// One model's position in the accuracy-vs-cost space.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelPoint {
    /// Model name.
    pub name: String,
    /// ImageNet top-1 accuracy (published metadata).
    pub accuracy: f64,
    /// Inference time in milliseconds on the hybrid architecture.
    pub time_ms: f64,
    /// Energy in MAC-normalized units.
    pub energy: f64,
}

impl fmt::Display for ModelPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {:.1}% top-1, {:.2} ms, {:.1} MMAC-eq energy",
            self.name,
            self.accuracy,
            self.time_ms,
            self.energy / 1e6
        )
    }
}

/// Simulates each network and returns its spectrum point. Networks with
/// no accuracy metadata are skipped (they cannot be placed in Figure 4).
/// Routes through a transient memoizing simulator; use
/// [`spectrum_with`] to share an engine handle across experiments.
pub fn spectrum(
    networks: &[Network],
    cfg: &AcceleratorConfig,
    opts: SimOptions,
    energy_model: &EnergyModel,
) -> Vec<ModelPoint> {
    spectrum_with(&Simulator::new(), networks, cfg, opts, energy_model)
}

/// [`spectrum`] through a caller-supplied engine handle, so repeated
/// layer shapes across the model families (and across experiments
/// sharing `sim`) are memoized once.
pub fn spectrum_with(
    sim: &Simulator,
    networks: &[Network],
    cfg: &AcceleratorConfig,
    opts: SimOptions,
    energy_model: &EnergyModel,
) -> Vec<ModelPoint> {
    networks
        .iter()
        .filter_map(|net| {
            let accuracy = net.top1_accuracy()?;
            let perf = sim.simulate_network(net, cfg, DataflowPolicy::PerLayer, opts);
            Some(ModelPoint {
                name: net.name().to_owned(),
                accuracy,
                time_ms: cfg.cycles_to_ms(perf.total_cycles()),
                energy: perf.total_energy(energy_model),
            })
        })
        .collect()
}

/// The cost axis of a Pareto query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CostAxis {
    /// Inference time.
    Time,
    /// Energy.
    Energy,
}

/// Returns the Pareto-optimal subset: points for which no other point has
/// both higher accuracy and lower cost. The result is sorted by ascending
/// cost.
///
/// Runs in O(n log n): one cost-ascending scan tracking the best
/// accuracy among strictly cheaper points replaces the former all-pairs
/// test, but the survivor set, their relative order, and hence the
/// output bytes are identical to it.
pub fn pareto_front(points: &[ModelPoint], axis: CostAxis) -> Vec<ModelPoint> {
    let cost = |p: &ModelPoint| match axis {
        CostAxis::Time => p.time_ms,
        CostAxis::Energy => p.energy,
    };
    let dominated = dominated_model_mask(points, axis);
    let mut front: Vec<ModelPoint> =
        points.iter().zip(&dominated).filter(|(_, d)| !**d).map(|(p, _)| p.clone()).collect();
    front.sort_by(|a, b| cost(a).total_cmp(&cost(b)));
    front.dedup_by(|a, b| a.name == b.name);
    front
}

/// `dominated[i]` ⇔ some point is no worse than `points[i]` on both
/// axes and strictly better on one — exactly the all-pairs test, in
/// O(n log n).
///
/// Scan points in ascending cost. Groups are *numerically* equal costs
/// (adjacent after a [`f64::total_cmp`] sort; numeric `==` merges the
/// −0.0/0.0 pair that `total_cmp` splits). A point is dominated iff a
/// strictly cheaper point has accuracy ≥ its own, or an equal-cost point
/// has accuracy strictly above it. NaN coordinates compare false in
/// every direction of the all-pairs test, so NaN-cost points form their
/// own inert groups and NaN accuracies neither dominate nor get
/// dominated — `Option` maxima keep them out.
fn dominated_model_mask(points: &[ModelPoint], axis: CostAxis) -> Vec<bool> {
    let cost = |p: &ModelPoint| match axis {
        CostAxis::Time => p.time_ms,
        CostAxis::Energy => p.energy,
    };
    let n = points.len();
    let mut dominated = vec![false; n];
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| cost(&points[a]).total_cmp(&cost(&points[b])));
    // Best accuracy among points with numerically strictly smaller cost.
    let mut best_cheaper: Option<f64> = None;
    let mut g = 0;
    while g < n {
        let group_cost = cost(&points[order[g]]);
        if group_cost.is_nan() {
            // Incomparable: never dominated, dominates nothing.
            g += 1;
            continue;
        }
        let mut end = g;
        while end < n && cost(&points[order[end]]) == group_cost {
            end += 1;
        }
        let mut group_best: Option<f64> = None;
        for &i in &order[g..end] {
            let acc = points[i].accuracy;
            if !acc.is_nan() && group_best.is_none_or(|b| acc > b) {
                group_best = Some(acc);
            }
        }
        for &i in &order[g..end] {
            let acc = points[i].accuracy;
            dominated[i] =
                best_cheaper.is_some_and(|b| b >= acc) || group_best.is_some_and(|b| b > acc);
        }
        if let Some(b) = group_best {
            if best_cheaper.is_none_or(|c| b > c) {
                best_cheaper = Some(b);
            }
        }
        g = end;
    }
    dominated
}

#[cfg(test)]
mod tests {
    use super::*;
    use codesign_dnn::zoo;

    fn point(name: &str, acc: f64, time: f64, energy: f64) -> ModelPoint {
        ModelPoint { name: name.into(), accuracy: acc, time_ms: time, energy }
    }

    #[test]
    fn front_drops_dominated_points() {
        let pts = vec![
            point("good", 60.0, 1.0, 100.0),
            point("dominated", 55.0, 2.0, 200.0),
            point("accurate-slow", 70.0, 5.0, 500.0),
        ];
        let front = pareto_front(&pts, CostAxis::Time);
        let names: Vec<&str> = front.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, ["good", "accurate-slow"]);
    }

    #[test]
    fn ties_prefer_cheaper_and_more_accurate() {
        let pts = vec![
            point("a", 60.0, 1.0, 1.0),
            point("same-acc-slower", 60.0, 2.0, 1.0),
            point("same-time-worse-acc", 59.0, 1.0, 1.0),
        ];
        let front = pareto_front(&pts, CostAxis::Time);
        assert_eq!(front.len(), 1);
        assert_eq!(front[0].name, "a");
    }

    #[test]
    fn figure_4_narrative_squeezenext_dominates_squeezenet() {
        // "SqueezeNext shows superior performance (higher and to the
        // left)": SqueezeNet v1.0 must not be on the Pareto front once
        // the SqueezeNext family is present.
        let cfg = AcceleratorConfig::paper_default();
        let mut nets = zoo::squeezenext_family();
        nets.push(zoo::squeezenet_v1_0());
        nets.push(zoo::squeezenet_v1_1());
        let pts = spectrum(&nets, &cfg, SimOptions::default(), &EnergyModel::default());
        for axis in [CostAxis::Time, CostAxis::Energy] {
            let front = pareto_front(&pts, axis);
            assert!(
                !front.iter().any(|p| p.name == "SqueezeNet v1.0"),
                "SqueezeNet v1.0 should be dominated on {axis:?}"
            );
            assert!(
                front.iter().any(|p| p.name.contains("SqNxt")),
                "a SqueezeNext model should sit on the {axis:?} front"
            );
        }
    }

    #[test]
    fn spectrum_skips_models_without_accuracy() {
        let cfg = AcceleratorConfig::paper_default();
        let unnamed =
            codesign_dnn::NetworkBuilder::new("anon", codesign_dnn::Shape::new(3, 32, 32))
                .conv("c", 8, 3, 1, 1)
                .finish()
                .unwrap();
        let pts = spectrum(&[unnamed], &cfg, SimOptions::default(), &EnergyModel::default());
        assert!(pts.is_empty());
    }

    #[test]
    fn display_mentions_accuracy() {
        let p = point("x", 59.2, 1.5, 2e6);
        assert!(p.to_string().contains("59.2"));
    }

    /// The former all-pairs implementation, kept as the oracle for the
    /// O(n log n) scan.
    fn pareto_front_quadratic(points: &[ModelPoint], axis: CostAxis) -> Vec<ModelPoint> {
        let cost = |p: &ModelPoint| match axis {
            CostAxis::Time => p.time_ms,
            CostAxis::Energy => p.energy,
        };
        let mut front: Vec<ModelPoint> = points
            .iter()
            .filter(|p| {
                !points.iter().any(|q| {
                    q.accuracy >= p.accuracy
                        && cost(q) <= cost(p)
                        && (q.accuracy > p.accuracy || cost(q) < cost(p))
                })
            })
            .cloned()
            .collect();
        front.sort_by(|a, b| cost(a).total_cmp(&cost(b)));
        front.dedup_by(|a, b| a.name == b.name);
        front
    }

    #[test]
    fn scan_matches_the_all_pairs_oracle_bit_for_bit() {
        // Deterministic LCG over a coarse value lattice: plenty of exact
        // ties on both axes, plus hand-placed NaN and signed-zero edge
        // cases the staircase must reproduce exactly.
        let mut state: u64 = 0x2545_F491_4F6C_DD1D;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as f64
        };
        for round in 0..40 {
            let n = (round % 13) + 2;
            let mut pts: Vec<ModelPoint> = (0..n)
                .map(|i| {
                    point(
                        &format!("m{i}"),
                        (next() as u64 % 5) as f64 * 10.0,
                        (next() as u64 % 4) as f64,
                        (next() as u64 % 4) as f64 * 100.0,
                    )
                })
                .collect();
            if round % 3 == 0 {
                pts.push(point("nan-cost", 50.0, f64::NAN, f64::NAN));
                pts.push(point("nan-acc", f64::NAN, 1.0, 100.0));
                pts.push(point("neg-zero", 30.0, -0.0, -0.0));
                pts.push(point("pos-zero", 20.0, 0.0, 0.0));
            }
            for axis in [CostAxis::Time, CostAxis::Energy] {
                // Bitwise comparison: `PartialEq` would call any result
                // containing NaN unequal to itself.
                let bits = |front: Vec<ModelPoint>| -> Vec<(String, u64, u64, u64)> {
                    front
                        .into_iter()
                        .map(|p| {
                            (p.name, p.accuracy.to_bits(), p.time_ms.to_bits(), p.energy.to_bits())
                        })
                        .collect()
                };
                assert_eq!(
                    bits(pareto_front(&pts, axis)),
                    bits(pareto_front_quadratic(&pts, axis)),
                    "round {round}, {axis:?}: {pts:?}"
                );
            }
        }
    }
}
