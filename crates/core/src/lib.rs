//! # codesign-core — the co-design engine
//!
//! The paper's primary contribution, built on the substrates: per-layer
//! hybrid dataflow scheduling (the Squeezelerator), whole-network
//! architecture comparison (Table 2), design-space exploration and the
//! RF tune-up, hardware-aware model transformations (the Figure-3
//! SqueezeNext variant ladder), accuracy/cost spectra and Pareto fronts
//! (Figure 4), and the per-layer-class dataflow advantage ranges
//! (§4.1.1).
//!
//! # Examples
//!
//! ```
//! use codesign_arch::{AcceleratorConfig, EnergyModel};
//! use codesign_core::ArchitectureComparison;
//! use codesign_dnn::zoo;
//! use codesign_sim::SimOptions;
//!
//! let cfg = AcceleratorConfig::paper_default();
//! let row = ArchitectureComparison::evaluate(
//!     &zoo::squeezenet_v1_1(),
//!     &cfg,
//!     SimOptions::paper_default(),
//!     EnergyModel::default(),
//! );
//! // The Squeezelerator is never slower than either fixed reference.
//! assert!(row.speedup_vs_os() >= 1.0 && row.speedup_vs_ws() >= 1.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod checkpoint;
pub mod codesign;
pub mod dse;
pub mod evaluate;
pub mod fusion;
pub mod pareto;
pub mod ranges;
pub mod roofline;
pub mod schedule;
pub mod select;
pub mod stream;

pub use codesign::{
    evaluate_variant, evaluate_variant_with, CodesignStudy, ModelTransform, VariantResult,
};
pub use dse::{
    best_by_energy_delay, pareto_designs, rf_tuneup_effect, sweep, sweep_full_with,
    sweep_streaming_cancellable_with, sweep_streaming_with, sweep_with, DesignParams, DesignPoint,
    OnlineFrontier, PointFailure, SweepError, SweepEvent, SweepOutcome, SweepSpace,
};
pub use evaluate::{
    compare_all, compare_networks, compare_networks_with, ArchitectureComparison, RelativeResult,
};
pub use fusion::{fusion_savings, fusion_savings_with, plan_fusion, FusionGroup, FusionSavings};
pub use pareto::{pareto_front, spectrum, spectrum_with, CostAxis, ModelPoint};
pub use ranges::{advantage_range, advantage_range_with, AdvantageRange};
pub use roofline::{machine_balance, roofline, Bound, LayerRoofline, NetworkRoofline};
pub use schedule::{
    schedule_sparsity_robustness, schedule_sparsity_robustness_with, LayerScheduleEntry,
    NetworkSchedule,
};
pub use select::{select_model, Constraints};
pub use stream::{
    sweep_frontier_with, CheckpointConfig, FrontierConfig, FrontierEvent, FrontierOutcome,
    SweepCounters,
};
