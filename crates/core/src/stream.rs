//! Bounded-memory streaming sweeps: online Pareto pruning, dominance
//! branch-and-bound, and crash-safe checkpoint/resume.
//!
//! [`sweep_streaming_cancellable_with`](crate::dse::sweep_streaming_cancellable_with)
//! still accumulates every evaluated point, so a 10M-point sweep holds
//! 10M [`DesignPoint`]s before the Pareto filter ever runs. The
//! [`sweep_frontier_with`] pipeline in this module never does: grid
//! points are decoded from their flat index chunk by chunk, each
//! evaluated point is offered to an [`OnlineFrontier`] that retains only
//! the live Pareto set, and everything else is dropped on the spot.
//! Peak memory is `O(frontier + chunk + retained failures)` regardless
//! of the space's size.
//!
//! Three cooperating mechanisms:
//!
//! * **Online dominance filter** — every evaluated point is offered to
//!   the frontier immediately; survivors stream out as
//!   [`FrontierEvent::Entered`] deltas. The final sorted frontier is
//!   bit-identical to batch [`pareto_designs`] over the same points.
//! * **Dominance branch-and-bound** — before evaluating a buffer-axis
//!   segment, the engine evaluates one *witness corner* at the segment's
//!   largest buffer. DRAM traffic (hence cycles and energy) is
//!   non-increasing in the buffer budget (`codesign-sim`'s
//!   [`bounds`](codesign_sim::bounds) module pins this), and area is
//!   increasing in every axis, so `(witness cycles, witness energy,
//!   area at the smallest buildable buffer)` lower-bounds every point in
//!   the segment componentwise. If a frontier member *strictly*
//!   dominates that bound, the whole segment is pruned — it could never
//!   contribute a frontier member. Strictness means a segment whose best
//!   corner merely ties a member is still evaluated, preserving
//!   `pareto_designs`' keep-duplicates semantics, so the final frontier
//!   is bit-identical with pruning on or off.
//! * **Checkpoint/resume** — at configurable progress intervals the
//!   engine persists its complete state (position, counters, frontier,
//!   diagnostics) through `codesign-sim`'s atomic generation writer. A
//!   killed sweep resumes from the newest intact generation and
//!   produces a bit-identical final frontier; torn or foreign
//!   checkpoint files are detected by checksum/fingerprint and skipped.
//!
//! [`pareto_designs`]: crate::dse::pareto_designs

use std::path::PathBuf;

use codesign_arch::{area, AcceleratorConfig, AreaModel, EnergyModel};
use codesign_dnn::Network;
use codesign_sim::{par_map_catch_range, CancelToken, SimOptions, Simulator};

use crate::checkpoint::{self, CheckpointState};
use crate::dse::{
    best_by_energy_delay, evaluate_point, DesignParams, DesignPoint, OnlineFrontier, PointFailure,
    SweepError, SweepSpace,
};

/// Where and how often a streaming sweep checkpoints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointConfig {
    /// Base path for the generation files (`<base>.gen-K`).
    pub base: PathBuf,
    /// Minimum number of newly completed grid points between
    /// checkpoints (clamped to at least 1).
    pub every_points: u64,
    /// How many generations to keep on disk (clamped to at least 1).
    pub keep: usize,
}

/// Tuning knobs for [`sweep_frontier_with`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrontierConfig {
    /// Worker count for point evaluation (0 = one per core). The result
    /// is jobs-invariant.
    pub jobs: usize,
    /// Evaluation chunk size: segments at most this large are evaluated
    /// directly; larger ones are prune-tested and bisected. Also bounds
    /// the in-flight evaluation memory. Clamped to at least 1.
    pub chunk: usize,
    /// Enable dominance branch-and-bound over buffer-axis segments. The
    /// final frontier is bit-identical either way; pruning only skips
    /// evaluations (and their skip/failure diagnostics) that provably
    /// cannot contribute frontier members.
    pub prune: bool,
    /// Retain at most this many [`PointFailure`] diagnostics (the
    /// `failed` counter still counts all of them).
    pub max_failures: usize,
    /// Checkpoint persistence; `None` disables checkpointing.
    pub checkpoint: Option<CheckpointConfig>,
    /// Resume from the newest intact, fingerprint-matching checkpoint
    /// generation under `checkpoint.base`. Without a usable generation
    /// the sweep starts from the beginning. When `false` and
    /// checkpointing is configured, stale generations are cleared first
    /// so a later `resume` cannot pick up a different run's state.
    pub resume: bool,
}

impl Default for FrontierConfig {
    fn default() -> Self {
        Self {
            jobs: 0,
            chunk: 64,
            prune: false,
            max_failures: 1024,
            checkpoint: None,
            resume: false,
        }
    }
}

/// Aggregate accounting for one streaming sweep. The four disposition
/// counters partition the grid: `evaluated + skipped + failed + pruned
/// == total`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SweepCounters {
    /// Grid points in the swept space.
    pub total: u64,
    /// Points that evaluated to a [`DesignPoint`].
    pub evaluated: u64,
    /// Points skipped as invalid/degenerate configurations.
    pub skipped: u64,
    /// Points that failed with a diagnostic.
    pub failed: u64,
    /// Points skipped by dominance branch-and-bound.
    pub pruned: u64,
    /// High-water mark of the live frontier size — the bounded-memory
    /// guarantee, measured.
    pub peak_frontier: u64,
    /// Checkpoint generations written by this run.
    pub checkpoints_written: u64,
    /// When resuming: the grid position the run restarted from.
    pub resumed_at: Option<u64>,
    /// When resuming: the checkpoint generation the run restarted from.
    pub resumed_generation: Option<u64>,
}

/// Streamed observation from [`sweep_frontier_with`], delivered in
/// strictly ascending grid order and invariant to `jobs`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FrontierEvent<'a> {
    /// An evaluated point entered the live frontier (a *frontier
    /// delta*). Members it evicted leave silently; the final frontier is
    /// the subset of entered points never later evicted.
    Entered {
        /// Flat grid index of the point.
        index: usize,
        /// The entering point.
        point: &'a DesignPoint,
    },
    /// A point failed with a diagnostic (fired even past the
    /// `max_failures` retention cap).
    Failure {
        /// Flat grid index of the point.
        index: usize,
        /// The diagnostic.
        failure: &'a PointFailure,
    },
    /// Branch-and-bound proved the half-open grid-index segment
    /// `[from, until)` cannot contribute frontier members and skipped
    /// it wholesale.
    Pruned {
        /// First pruned flat grid index.
        from: usize,
        /// One past the last pruned flat grid index.
        until: usize,
    },
}

/// Final product of a streaming sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontierOutcome {
    /// The Pareto frontier over (cycles, energy, area), sorted by
    /// ascending cycles — bit-identical to
    /// [`pareto_designs`](crate::dse::pareto_designs) over every
    /// evaluated point.
    pub frontier: Vec<DesignPoint>,
    /// The frontier member with the lowest energy-delay product (the
    /// minimum over *all* evaluated points is always attained on the
    /// frontier). `None` only when the frontier is empty.
    pub best: Option<DesignPoint>,
    /// Retained failure diagnostics, in grid order, capped at
    /// `max_failures`.
    pub failures: Vec<PointFailure>,
    /// Aggregate accounting.
    pub counters: SweepCounters,
}

/// Identity of a sweep for checkpoint compatibility: a resume is only
/// accepted against a checkpoint written by a sweep with the same
/// network shape, space, simulation options, energy model, and prune
/// setting.
fn sweep_fingerprint(
    network: &Network,
    space: &SweepSpace,
    opts: SimOptions,
    energy_model: &EnergyModel,
    prune: bool,
) -> u64 {
    let canonical = format!(
        "net={};layers={};arrays={:?};rfs={:?};buffers={:?};opts={:?};energy={:?};prune={}",
        network.name(),
        network.layers().len(),
        space.array_sizes,
        space.rf_depths,
        space.buffer_bytes,
        opts,
        energy_model,
        prune,
    );
    checkpoint::fnv1a(canonical.as_bytes())
}

struct CkptRuntime {
    cfg: CheckpointConfig,
    fingerprint: u64,
    /// Last generation number written (or resumed from).
    generation: u64,
    /// Grid position of the last checkpoint written (or resumed from).
    last_pos: u64,
}

struct Engine<'a> {
    sim: &'a Simulator,
    network: &'a Network,
    space: &'a SweepSpace,
    opts: SimOptions,
    energy_model: &'a EnergyModel,
    jobs: usize,
    chunk: usize,
    prune: bool,
    max_failures: usize,
    cancel: &'a CancelToken,
    frontier: OnlineFrontier,
    failures: Vec<PointFailure>,
    counters: SweepCounters,
    ckpt: Option<CkptRuntime>,
}

type EventSink<'s> = dyn FnMut(FrontierEvent<'_>) + 's;

impl Engine<'_> {
    /// Processes `[pos, len)` one buffer run at a time. Each run is a
    /// contiguous block of grid indices sharing (array size, RF depth),
    /// within which only the buffer axis varies — the shape the
    /// branch-and-bound's monotone bounds are stated over.
    fn run(
        &mut self,
        mut pos: usize,
        len: usize,
        on_event: &mut EventSink<'_>,
    ) -> Result<(), SweepError> {
        let nbuf = self.space.buffer_bytes.len();
        while pos < len {
            let run_end = len.min(pos - pos % nbuf + nbuf);
            self.segment(pos, run_end, on_event)?;
            pos = run_end;
        }
        Ok(())
    }

    /// Recursively processes the grid-index segment `[lo, hi)` (within
    /// one buffer run): prune-test oversized segments, bisect on
    /// failure, evaluate chunk-sized leaves. Left halves complete before
    /// right halves, so progress is always a contiguous prefix and
    /// events fire in strictly ascending grid order.
    fn segment(
        &mut self,
        lo: usize,
        hi: usize,
        on_event: &mut EventSink<'_>,
    ) -> Result<(), SweepError> {
        if self.cancel.is_cancelled() {
            return Err(SweepError::Cancelled);
        }
        let n = hi - lo;
        if n > self.chunk {
            if self.prune && !self.frontier.is_empty() && self.segment_is_dominated(lo, hi) {
                self.counters.pruned += n as u64;
                on_event(FrontierEvent::Pruned { from: lo, until: hi });
                return self.maybe_checkpoint(hi, false);
            }
            let mid = lo + n / 2;
            self.segment(lo, mid, on_event)?;
            return self.segment(mid, hi, on_event);
        }
        self.leaf(lo, hi, on_event);
        self.maybe_checkpoint(hi, false)
    }

    /// The branch-and-bound test: does some frontier member strictly
    /// dominate a componentwise lower bound on every evaluable point in
    /// `[lo, hi)`?
    ///
    /// The bound: DRAM traffic — hence cycles and energy — is
    /// non-increasing in the buffer budget (everything else in the
    /// segment is fixed), so the *witness* evaluation at the segment's
    /// largest buffer value lower-bounds both; area is increasing in the
    /// buffer, so the area at the segment's smallest *buildable* buffer
    /// value lower-bounds it. Any failure to establish the bound
    /// (unbuildable witness, simulator error) falls back to evaluating
    /// the segment — pruning is an optimization, never a semantics
    /// change.
    fn segment_is_dominated(&self, lo: usize, hi: usize) -> bool {
        let nbuf = self.space.buffer_bytes.len();
        let start = lo % nbuf;
        let Some(slice) = self.space.buffer_bytes.get(start..start + (hi - lo)) else {
            return false;
        };
        let Some(&buf_hi) = slice.iter().max() else { return false };
        let Some(base) = self.space.point(lo) else { return false };
        let witness = DesignParams { global_buffer_bytes: buf_hi, ..base };
        let Ok(Some(w)) =
            evaluate_point(self.sim, self.network, witness, self.opts, self.energy_model)
        else {
            return false;
        };
        // The witness was buildable, so its config's element width is
        // the run's; the smallest buildable buffer in the segment gives
        // the area floor.
        let Ok(cfg_hi) = AcceleratorConfig::builder()
            .array_size(base.array_size)
            .rf_depth(base.rf_depth)
            .global_buffer_bytes(buf_hi)
            .build()
        else {
            return false;
        };
        let min_buildable =
            AcceleratorConfig::min_global_buffer_bytes(base.array_size, cfg_hi.bytes_per_element());
        let Some(&buf_lo) = slice.iter().filter(|&&b| b >= min_buildable).min() else {
            return false;
        };
        let Ok(cfg_lo) = AcceleratorConfig::builder()
            .array_size(base.array_size)
            .rf_depth(base.rf_depth)
            .global_buffer_bytes(buf_lo)
            .build()
        else {
            return false;
        };
        let area_floor = area(&cfg_lo, &AreaModel::default(), true).total();
        self.frontier.strictly_dominates_bound(w.cycles, w.energy, area_floor)
    }

    /// Evaluates the chunk-sized segment `[lo, hi)` in parallel and
    /// folds the results — in grid order — into the frontier, counters,
    /// and diagnostics.
    fn leaf(&mut self, lo: usize, hi: usize, on_event: &mut EventSink<'_>) {
        let (sim, network, space) = (self.sim, self.network, self.space);
        let (opts, energy_model) = (self.opts, self.energy_model);
        let evals = par_map_catch_range(self.jobs, hi - lo, |j| match space.point(lo + j) {
            Some(params) => evaluate_point(sim, network, params, opts, energy_model),
            // Unreachable once `check_non_empty` passed; treated as a
            // skipped point rather than a panic.
            None => Ok(None),
        });
        for (j, eval) in evals.into_iter().enumerate() {
            let i = lo + j;
            let Some(params) = space.point(i) else { continue };
            match eval {
                Ok(Ok(Some(point))) => {
                    self.counters.evaluated += 1;
                    if self.frontier.insert(&point) {
                        on_event(FrontierEvent::Entered { index: i, point: &point });
                    }
                }
                Ok(Ok(None)) => self.counters.skipped += 1,
                Ok(Err(e)) => self.record_failure(i, params, e.to_string(), on_event),
                Err(panic_msg) => self.record_failure(
                    i,
                    params,
                    format!("worker panicked: {panic_msg}"),
                    on_event,
                ),
            }
        }
    }

    fn record_failure(
        &mut self,
        index: usize,
        params: DesignParams,
        reason: String,
        on_event: &mut EventSink<'_>,
    ) {
        self.counters.failed += 1;
        let failure = PointFailure { params, reason };
        on_event(FrontierEvent::Failure { index, failure: &failure });
        if self.failures.len() < self.max_failures {
            self.failures.push(failure);
        }
    }

    /// Persists a checkpoint once enough new progress has accumulated
    /// (`force` writes regardless, for the final checkpoint). `done` is
    /// the end of the completed prefix `[0, done)`.
    fn maybe_checkpoint(&mut self, done: usize, force: bool) -> Result<(), SweepError> {
        let done = done as u64;
        let Some(ck) = &self.ckpt else { return Ok(()) };
        let due = done.saturating_sub(ck.last_pos) >= ck.cfg.every_points.max(1);
        if done == ck.last_pos || (!force && !due) {
            return Ok(());
        }
        let state = CheckpointState {
            pos: done,
            evaluated: self.counters.evaluated,
            skipped: self.counters.skipped,
            failed: self.counters.failed,
            pruned: self.counters.pruned,
            peak_frontier: self.frontier.peak() as u64,
            frontier: self.frontier.members().to_vec(),
            failures: self.failures.clone(),
        };
        let Some(ck) = self.ckpt.as_mut() else { return Ok(()) };
        ck.generation += 1;
        checkpoint::save(&ck.cfg.base, ck.generation, ck.fingerprint, &state, ck.cfg.keep.max(1))
            .map_err(|e| {
            SweepError::Checkpoint(format!("writing generation {}: {e}", ck.generation))
        })?;
        ck.last_pos = done;
        self.counters.checkpoints_written += 1;
        Ok(())
    }

    fn into_outcome(mut self) -> FrontierOutcome {
        self.counters.peak_frontier = self.frontier.peak() as u64;
        let frontier = std::mem::take(&mut self.frontier).into_sorted();
        // Computed from the final frontier rather than tracked online:
        // the minimum energy-delay product over all evaluated points is
        // always attained on the frontier (anything off it is dominated
        // by a member with no-worse cycles *and* energy), and deriving
        // it from the deterministic frontier keeps the identity of the
        // winner stable across chunking, pruning, and resume — online
        // tracking would make plateau EDP ties order-dependent.
        let best = best_by_energy_delay(&frontier).cloned();
        FrontierOutcome { frontier, best, failures: self.failures, counters: self.counters }
    }
}

/// Runs the bounded-memory streaming sweep over `space` for `network`:
/// online Pareto filtering (frontier deltas streamed through
/// `on_event`), optional dominance branch-and-bound, optional
/// crash-safe checkpoint/resume. See the [module docs](self) for the
/// memory model and the pruning soundness argument.
///
/// Determinism contract, for a fixed (network, space, options, energy
/// model, prune):
///
/// * events fire in strictly ascending grid order and are invariant to
///   `jobs`;
/// * the final `frontier` (and `best`) are bit-identical to batch
///   [`pareto_designs`](crate::dse::pareto_designs) +
///   [`best_by_energy_delay`](crate::dse::best_by_energy_delay) over
///   the full sweep, whatever `chunk`, `prune`, or resume history;
/// * with pruning off, `counters` and `failures` are also bit-identical
///   across runs; with pruning on, diagnostics inside pruned segments
///   are omitted and the evaluated/pruned split may vary with `chunk`.
///
/// # Errors
///
/// [`SweepError::EmptySpace`] when any sweep axis is empty;
/// [`SweepError::Cancelled`] when `cancel` fires (events already
/// delivered remain a valid prefix); [`SweepError::Checkpoint`] when a
/// configured checkpoint cannot be written or cleared.
#[allow(clippy::too_many_arguments)]
pub fn sweep_frontier_with(
    sim: &Simulator,
    network: &Network,
    space: &SweepSpace,
    opts: SimOptions,
    energy_model: &EnergyModel,
    config: &FrontierConfig,
    cancel: &CancelToken,
    mut on_event: impl FnMut(FrontierEvent<'_>),
) -> Result<FrontierOutcome, SweepError> {
    space.check_non_empty()?;
    let len = space.len();
    let mut engine = Engine {
        sim,
        network,
        space,
        opts,
        energy_model,
        jobs: config.jobs,
        chunk: config.chunk.max(1),
        prune: config.prune,
        max_failures: config.max_failures,
        cancel,
        frontier: OnlineFrontier::new(),
        failures: Vec::new(),
        counters: SweepCounters { total: len as u64, ..SweepCounters::default() },
        ckpt: None,
    };
    let mut start_pos = 0usize;
    if let Some(ckcfg) = &config.checkpoint {
        let fingerprint = sweep_fingerprint(network, space, opts, energy_model, config.prune);
        let mut runtime =
            CkptRuntime { cfg: ckcfg.clone(), fingerprint, generation: 0, last_pos: 0 };
        if config.resume {
            let (loaded, _skipped) = checkpoint::load_latest(&ckcfg.base, fingerprint);
            if let Some((generation, state)) = loaded {
                start_pos = (state.pos as usize).min(len);
                engine.counters.evaluated = state.evaluated;
                engine.counters.skipped = state.skipped;
                engine.counters.failed = state.failed;
                engine.counters.pruned = state.pruned;
                engine.counters.resumed_at = Some(state.pos.min(len as u64));
                engine.counters.resumed_generation = Some(generation);
                engine.frontier =
                    OnlineFrontier::from_members(state.frontier, state.peak_frontier as usize);
                engine.failures = state.failures;
                runtime.generation = generation;
                runtime.last_pos = state.pos;
            }
        } else {
            checkpoint::clear_generations(&ckcfg.base)
                .map_err(|e| SweepError::Checkpoint(format!("clearing stale generations: {e}")))?;
        }
        engine.ckpt = Some(runtime);
    }
    engine.run(start_pos, len, &mut on_event)?;
    engine.maybe_checkpoint(len, true)?;
    Ok(engine.into_outcome())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dse::{pareto_designs, sweep_with, SweepSpace};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn tiny_network() -> Network {
        codesign_dnn::NetworkBuilder::new("stream-test-net", codesign_dnn::Shape::new(8, 16, 16))
            .conv("c1", 16, 3, 1, 1)
            .finish()
            .expect("tiny test network builds")
    }

    fn small_space() -> SweepSpace {
        SweepSpace {
            array_sizes: vec![8, 16],
            rf_depths: vec![8],
            // 256 B is below every array's minimum buffer: exercises the
            // skipped path.
            buffer_bytes: vec![256, 48 * 1024, 64 * 1024, 96 * 1024, 128 * 1024],
        }
    }

    /// A buffer axis long enough to have a saturated plateau the
    /// branch-and-bound can prune.
    fn plateau_space() -> SweepSpace {
        SweepSpace {
            array_sizes: vec![8],
            rf_depths: vec![8],
            buffer_bytes: (0..64).map(|i| 32 * 1024 + 4096 * i).collect(),
        }
    }

    fn temp_base(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "codesign-stream-test-{}-{}-{}",
            std::process::id(),
            tag,
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir.join("sweep.ck")
    }

    fn run_plain(config: &FrontierConfig) -> FrontierOutcome {
        sweep_frontier_with(
            &Simulator::new(),
            &tiny_network(),
            &small_space(),
            SimOptions::default(),
            &EnergyModel::default(),
            config,
            &CancelToken::never(),
            |_| {},
        )
        .expect("sweep runs")
    }

    #[test]
    fn frontier_matches_batch_pareto_bit_for_bit() {
        let net = tiny_network();
        let space = small_space();
        let batch = sweep_with(
            &Simulator::new(),
            &net,
            &space,
            SimOptions::default(),
            &EnergyModel::default(),
            0,
        )
        .expect("batch sweep runs");
        let expected = pareto_designs(&batch);
        for chunk in [1, 2, 3, 64] {
            for prune in [false, true] {
                let out = run_plain(&FrontierConfig { chunk, prune, ..FrontierConfig::default() });
                assert_eq!(out.frontier, expected, "chunk={chunk} prune={prune}");
                assert_eq!(
                    out.best.as_ref(),
                    best_by_energy_delay(&expected),
                    "chunk={chunk} prune={prune}"
                );
                let c = out.counters;
                assert_eq!(c.evaluated + c.skipped + c.failed + c.pruned, c.total);
                assert!(c.peak_frontier as usize >= expected.len());
            }
        }
    }

    #[test]
    fn events_arrive_in_ascending_grid_order_and_are_jobs_invariant() {
        let net = tiny_network();
        let space = small_space();
        let capture = |jobs: usize| {
            let mut seen: Vec<String> = Vec::new();
            let config = FrontierConfig { jobs, chunk: 2, ..FrontierConfig::default() };
            sweep_frontier_with(
                &Simulator::new(),
                &net,
                &space,
                SimOptions::default(),
                &EnergyModel::default(),
                &config,
                &CancelToken::never(),
                |ev| seen.push(format!("{ev:?}")),
            )
            .expect("sweep runs");
            seen
        };
        let serial = capture(1);
        assert!(!serial.is_empty(), "expected frontier deltas");
        assert_eq!(capture(4), serial, "event stream must be jobs-invariant");
    }

    #[test]
    fn pruning_skips_plateau_segments_without_changing_the_frontier() {
        let net = tiny_network();
        let space = plateau_space();
        let run = |prune: bool| {
            sweep_frontier_with(
                &Simulator::new(),
                &net,
                &space,
                SimOptions::default(),
                &EnergyModel::default(),
                &FrontierConfig { chunk: 4, prune, ..FrontierConfig::default() },
                &CancelToken::never(),
                |_| {},
            )
            .expect("sweep runs")
        };
        let off = run(false);
        let on = run(true);
        assert_eq!(off.counters.pruned, 0);
        assert!(
            on.counters.pruned > 0,
            "saturated buffer plateau should prune (counters: {:?})",
            on.counters
        );
        assert_eq!(on.frontier, off.frontier, "pruning must not change the frontier");
        assert_eq!(on.best, off.best);
        assert_eq!(
            on.counters.evaluated + on.counters.pruned + on.counters.skipped + on.counters.failed,
            on.counters.total
        );
    }

    #[test]
    fn cancelled_mid_run_then_resumed_matches_the_uninterrupted_run() {
        let net = tiny_network();
        let space = small_space();
        let uninterrupted = run_plain(&FrontierConfig::default());

        let base = temp_base("resume");
        let ckpt = CheckpointConfig { base: base.clone(), every_points: 2, keep: 3 };
        let config = FrontierConfig {
            chunk: 2,
            checkpoint: Some(ckpt.clone()),
            ..FrontierConfig::default()
        };
        // First run: cancel after the first couple of events — past at
        // least one checkpoint boundary.
        let cancel = CancelToken::never();
        let mut deltas = 0u32;
        let err = sweep_frontier_with(
            &Simulator::new(),
            &net,
            &space,
            SimOptions::default(),
            &EnergyModel::default(),
            &config,
            &cancel,
            |_| {
                deltas += 1;
                if deltas >= 2 {
                    cancel.cancel();
                }
            },
        )
        .expect_err("cancel token fired");
        assert_eq!(err, SweepError::Cancelled);

        // Second run: resume from the surviving checkpoint.
        let resumed = sweep_frontier_with(
            &Simulator::new(),
            &net,
            &space,
            SimOptions::default(),
            &EnergyModel::default(),
            &FrontierConfig { resume: true, ..config },
            &CancelToken::never(),
            |_| {},
        )
        .expect("resumed sweep runs");
        assert!(resumed.counters.resumed_at.is_some(), "expected an actual resume");
        assert!(resumed.counters.resumed_at.unwrap() > 0);
        assert_eq!(resumed.frontier, uninterrupted.frontier);
        assert_eq!(resumed.best, uninterrupted.best);
        assert_eq!(resumed.counters.evaluated, uninterrupted.counters.evaluated);
        assert_eq!(resumed.counters.skipped, uninterrupted.counters.skipped);
        assert_eq!(resumed.failures, uninterrupted.failures);
        if let Some(dir) = base.parent() {
            std::fs::remove_dir_all(dir).ok();
        }
    }

    #[test]
    fn foreign_checkpoints_are_ignored_and_the_sweep_starts_fresh() {
        let net = tiny_network();
        let base = temp_base("foreign");
        let ckpt = CheckpointConfig { base: base.clone(), every_points: 1, keep: 2 };
        // Complete a checkpointed sweep over one space...
        let config = FrontierConfig {
            chunk: 2,
            checkpoint: Some(ckpt.clone()),
            ..FrontierConfig::default()
        };
        let first = sweep_frontier_with(
            &Simulator::new(),
            &net,
            &plateau_space(),
            SimOptions::default(),
            &EnergyModel::default(),
            &config,
            &CancelToken::never(),
            |_| {},
        )
        .expect("first sweep runs");
        assert!(first.counters.checkpoints_written > 0);
        // ...then "resume" over a *different* space: the fingerprint
        // mismatch must be detected and the sweep must start from zero.
        let second = sweep_frontier_with(
            &Simulator::new(),
            &net,
            &small_space(),
            SimOptions::default(),
            &EnergyModel::default(),
            &FrontierConfig { resume: true, ..config },
            &CancelToken::never(),
            |_| {},
        )
        .expect("second sweep runs");
        assert_eq!(second.counters.resumed_at, None);
        assert_eq!(second.frontier, run_plain(&FrontierConfig::default()).frontier);
        if let Some(dir) = base.parent() {
            std::fs::remove_dir_all(dir).ok();
        }
    }

    #[test]
    fn fresh_checkpointing_run_clears_stale_generations() {
        let net = tiny_network();
        let base = temp_base("clear");
        let ckpt = CheckpointConfig { base: base.clone(), every_points: 1, keep: 10 };
        let config =
            FrontierConfig { chunk: 2, checkpoint: Some(ckpt), ..FrontierConfig::default() };
        let run = || {
            sweep_frontier_with(
                &Simulator::new(),
                &net,
                &small_space(),
                SimOptions::default(),
                &EnergyModel::default(),
                &config,
                &CancelToken::never(),
                |_| {},
            )
            .expect("sweep runs")
        };
        let first = run();
        let second = run();
        // The second run cleared the first's generations before writing
        // its own, so generation numbering restarted.
        assert_eq!(first.counters.checkpoints_written, second.counters.checkpoints_written);
        let gens = codesign_sim::scan_generations(&base);
        assert_eq!(gens.len() as u64, second.counters.checkpoints_written.min(10));
        if let Some(dir) = base.parent() {
            std::fs::remove_dir_all(dir).ok();
        }
    }
}
