//! Layer-class dataflow-advantage ranges — the §4.1.1 in-text numbers:
//!
//! * `1×1` layers are 1.4–7.0× faster on WS than OS;
//! * the first conv layer is 1.6–6.3× faster on OS than WS;
//! * depthwise layers are 19–96× faster on OS than WS.
//!
//! "Depending on the size of the feature map and the number of channels"
//! — so the range is measured over the layer shapes that actually occur
//! in the zoo networks.

use codesign_arch::{AcceleratorConfig, Dataflow};
use codesign_dnn::{LayerClass, Network};
use codesign_sim::{SimOptions, Simulator};

/// Observed WS-vs-OS advantage range for one layer class.
#[derive(Debug, Clone, PartialEq)]
pub struct AdvantageRange {
    /// The layer class measured.
    pub class: LayerClass,
    /// The dataflow whose advantage is reported.
    pub winner: Dataflow,
    /// Smallest observed speedup of `winner` over the other dataflow.
    pub min: f64,
    /// Largest observed speedup.
    pub max: f64,
    /// Number of layers measured.
    pub samples: usize,
}

/// Measures the `winner`-over-loser cycle ratio for every layer of
/// `class` across `networks`, returning the observed range (or `None` if
/// no such layer exists). Routes through a transient memoizing
/// simulator; use [`advantage_range_with`] to share an engine handle.
pub fn advantage_range(
    networks: &[Network],
    class: LayerClass,
    winner: Dataflow,
    cfg: &AcceleratorConfig,
    opts: SimOptions,
) -> Option<AdvantageRange> {
    advantage_range_with(&Simulator::new(), networks, class, winner, cfg, opts)
}

/// [`advantage_range`] through a caller-supplied engine handle, so the
/// repeated layer shapes across the zoo resolve from the memo.
pub fn advantage_range_with(
    sim: &Simulator,
    networks: &[Network],
    class: LayerClass,
    winner: Dataflow,
    cfg: &AcceleratorConfig,
    opts: SimOptions,
) -> Option<AdvantageRange> {
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    let mut samples = 0;
    for net in networks {
        for layer in net.layers() {
            if layer.class() != class || !layer.is_compute() {
                continue;
            }
            let (ws, os, _) = sim.compare_dataflows(layer, cfg, opts);
            let ratio = match winner {
                Dataflow::WeightStationary => os.total_cycles as f64 / ws.total_cycles as f64,
                Dataflow::OutputStationary => ws.total_cycles as f64 / os.total_cycles as f64,
            };
            min = min.min(ratio);
            max = max.max(ratio);
            samples += 1;
        }
    }
    (samples > 0).then_some(AdvantageRange { class, winner, min, max, samples })
}

#[cfg(test)]
mod tests {
    use super::*;
    use codesign_dnn::zoo;

    fn setup() -> (Vec<Network>, AcceleratorConfig, SimOptions) {
        (zoo::table_networks(), AcceleratorConfig::paper_default(), SimOptions::default())
    }

    #[test]
    fn pointwise_layers_mostly_favor_ws() {
        // Paper: 1.4x to 7.0x faster on WS. Our range must show a solid
        // WS advantage at the top end; the low end may dip below 1 for a
        // few early layers (documented deviation).
        let (nets, cfg, opts) = setup();
        let r =
            advantage_range(&nets, LayerClass::Pointwise, Dataflow::WeightStationary, &cfg, opts)
                .unwrap();
        assert!(r.samples > 20);
        assert!(r.max > 2.0, "max = {:.2}", r.max);
        assert!(r.min > 0.5, "min = {:.2}", r.min);
    }

    #[test]
    fn first_conv_favors_os() {
        // Paper: 1.6x to 6.3x faster on OS.
        let (nets, cfg, opts) = setup();
        let r =
            advantage_range(&nets, LayerClass::FirstConv, Dataflow::OutputStationary, &cfg, opts)
                .unwrap();
        assert_eq!(r.samples, nets.len());
        assert!(r.min > 1.0, "min = {:.2}", r.min);
        assert!(r.max > 3.0, "max = {:.2}", r.max);
    }

    #[test]
    fn depthwise_overwhelmingly_favors_os() {
        // Paper: 19x to 96x faster on OS.
        let (nets, cfg, opts) = setup();
        let r =
            advantage_range(&nets, LayerClass::Depthwise, Dataflow::OutputStationary, &cfg, opts)
                .unwrap();
        assert!(r.samples >= 13, "MobileNet has 13 depthwise layers");
        assert!(r.max > 10.0, "max = {:.1}", r.max);
        assert!(r.min > 1.0, "min = {:.2}", r.min);
    }

    #[test]
    fn missing_class_returns_none() {
        let (_, cfg, opts) = setup();
        let nets = vec![zoo::alexnet()];
        assert!(advantage_range(
            &nets,
            LayerClass::Depthwise,
            Dataflow::OutputStationary,
            &cfg,
            opts
        )
        .is_none());
    }
}
