//! Crash-safe on-disk checkpoints for resumable streaming sweeps.
//!
//! A checkpoint captures everything the bounded-memory sweep engine
//! holds at a completed-prefix boundary: the next unprocessed flat grid
//! index, the counters, the live frontier (insertion order), and the
//! retained failure diagnostics. Files are written through
//! `codesign-sim`'s generation machinery ([`write_generation`]:
//! atomic-rename publication, oldest generations pruned), so a crash can
//! at worst leave a torn *newest* generation — which recovery detects by
//! checksum and skips, falling back to the previous one.
//!
//! ## Format (all integers little-endian)
//!
//! ```text
//! magic      8 B   b"CDSWEEP1"
//! version    u32   1
//! fingerprint u64  FNV-1a of the sweep identity (network, space, options,
//!                  energy model, prune flag) — a resume against a
//!                  different sweep is refused
//! pos        u64   next unprocessed flat grid index (prefix [0, pos) done)
//! evaluated  u64 ─┐
//! skipped    u64  │ counters
//! failed     u64  │
//! pruned     u64  │
//! peak       u64 ─┘ frontier high-water mark
//! frontier   u32 count, then per point:
//!            array u64, rf u64, buffer u64, cycles u64,
//!            energy f64-bits, utilization f64-bits, area f64-bits
//! failures   u32 count, then per failure:
//!            array u64, rf u64, buffer u64, reason (u32 len + UTF-8)
//! checksum   u64   FNV-1a of every preceding byte
//! ```

use std::io;
use std::path::{Path, PathBuf};

use codesign_sim::{scan_generations, write_generation};

use crate::dse::{DesignParams, DesignPoint, PointFailure};

const MAGIC: &[u8; 8] = b"CDSWEEP1";
const VERSION: u32 = 1;
/// Serialized size of one frontier point (3 params + cycles + 3 floats).
const POINT_BYTES: usize = 7 * 8;
/// Minimum serialized size of one failure (params + empty reason).
const FAILURE_MIN_BYTES: usize = 3 * 8 + 4;

/// Engine state captured by (and restored from) one checkpoint.
#[derive(Debug, Clone, PartialEq, Default)]
pub(crate) struct CheckpointState {
    /// Next unprocessed flat grid index: the prefix `[0, pos)` is done.
    pub pos: u64,
    pub evaluated: u64,
    pub skipped: u64,
    pub failed: u64,
    pub pruned: u64,
    pub peak_frontier: u64,
    /// Live frontier members in insertion (grid) order.
    pub frontier: Vec<DesignPoint>,
    /// Retained failure diagnostics (capped by the sweep config).
    pub failures: Vec<PointFailure>,
}

/// FNV-1a over `bytes` — same algorithm (and test vectors) as the sim
/// crate's snapshot checksums, re-stated here because it is part of this
/// file format's definition, not an implementation detail to share.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_point(out: &mut Vec<u8>, p: &DesignPoint) {
    put_u64(out, p.params.array_size as u64);
    put_u64(out, p.params.rf_depth as u64);
    put_u64(out, p.params.global_buffer_bytes as u64);
    put_u64(out, p.cycles);
    put_u64(out, p.energy.to_bits());
    put_u64(out, p.utilization.to_bits());
    put_u64(out, p.area.to_bits());
}

pub(crate) fn encode(fingerprint: u64, s: &CheckpointState) -> Vec<u8> {
    let mut out =
        Vec::with_capacity(MAGIC.len() + 4 + 7 * 8 + 8 + s.frontier.len() * POINT_BYTES + 8);
    out.extend_from_slice(MAGIC);
    put_u32(&mut out, VERSION);
    put_u64(&mut out, fingerprint);
    put_u64(&mut out, s.pos);
    put_u64(&mut out, s.evaluated);
    put_u64(&mut out, s.skipped);
    put_u64(&mut out, s.failed);
    put_u64(&mut out, s.pruned);
    put_u64(&mut out, s.peak_frontier);
    put_u32(&mut out, s.frontier.len() as u32);
    for p in &s.frontier {
        put_point(&mut out, p);
    }
    put_u32(&mut out, s.failures.len() as u32);
    for f in &s.failures {
        put_u64(&mut out, f.params.array_size as u64);
        put_u64(&mut out, f.params.rf_depth as u64);
        put_u64(&mut out, f.params.global_buffer_bytes as u64);
        put_u32(&mut out, f.reason.len() as u32);
        out.extend_from_slice(f.reason.as_bytes());
    }
    let checksum = fnv1a(&out);
    put_u64(&mut out, checksum);
    out
}

/// Bounds-checked byte reader for [`decode`].
struct Cursor<'a> {
    bytes: &'a [u8],
    off: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self.off.checked_add(n).filter(|&e| e <= self.bytes.len());
        let Some(end) = end else {
            return Err(format!("truncated at byte {}", self.off));
        };
        let slice = &self.bytes[self.off..end];
        self.off = end;
        Ok(slice)
    }

    fn u32(&mut self) -> Result<u32, String> {
        let b = self.take(4)?;
        let arr: [u8; 4] = b.try_into().map_err(|_| "u32 read".to_owned())?;
        Ok(u32::from_le_bytes(arr))
    }

    fn u64(&mut self) -> Result<u64, String> {
        let b = self.take(8)?;
        let arr: [u8; 8] = b.try_into().map_err(|_| "u64 read".to_owned())?;
        Ok(u64::from_le_bytes(arr))
    }

    fn f64(&mut self) -> Result<f64, String> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn params(&mut self) -> Result<DesignParams, String> {
        Ok(DesignParams {
            array_size: self.u64()? as usize,
            rf_depth: self.u64()? as usize,
            global_buffer_bytes: self.u64()? as usize,
        })
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.off
    }
}

pub(crate) fn decode(bytes: &[u8], fingerprint: u64) -> Result<CheckpointState, String> {
    if bytes.len() < MAGIC.len() + 4 + 8 + 8 {
        return Err(format!("too short ({} bytes)", bytes.len()));
    }
    let (body, tail) = bytes.split_at(bytes.len() - 8);
    let stored: [u8; 8] = tail.try_into().map_err(|_| "checksum read".to_owned())?;
    let stored = u64::from_le_bytes(stored);
    let computed = fnv1a(body);
    if stored != computed {
        return Err(format!("checksum mismatch (stored {stored:#x}, computed {computed:#x})"));
    }
    let mut c = Cursor { bytes: body, off: 0 };
    if c.take(MAGIC.len())? != MAGIC {
        return Err("bad magic".to_owned());
    }
    let version = c.u32()?;
    if version != VERSION {
        return Err(format!("unsupported version {version}"));
    }
    let fp = c.u64()?;
    if fp != fingerprint {
        return Err(format!(
            "fingerprint mismatch (checkpoint {fp:#x}, this sweep {fingerprint:#x}): \
             checkpoint belongs to a different sweep"
        ));
    }
    let mut s = CheckpointState {
        pos: c.u64()?,
        evaluated: c.u64()?,
        skipped: c.u64()?,
        failed: c.u64()?,
        pruned: c.u64()?,
        peak_frontier: c.u64()?,
        ..CheckpointState::default()
    };
    let n_front = c.u32()? as usize;
    if n_front > c.remaining() / POINT_BYTES {
        return Err(format!("frontier count {n_front} exceeds payload"));
    }
    s.frontier.reserve_exact(n_front);
    for _ in 0..n_front {
        let params = c.params()?;
        s.frontier.push(DesignPoint {
            params,
            cycles: c.u64()?,
            energy: c.f64()?,
            utilization: c.f64()?,
            area: c.f64()?,
        });
    }
    let n_fail = c.u32()? as usize;
    if n_fail > c.remaining() / FAILURE_MIN_BYTES {
        return Err(format!("failure count {n_fail} exceeds payload"));
    }
    s.failures.reserve_exact(n_fail);
    for _ in 0..n_fail {
        let params = c.params()?;
        let len = c.u32()? as usize;
        let reason = std::str::from_utf8(c.take(len)?)
            .map_err(|_| "failure reason is not UTF-8".to_owned())?
            .to_owned();
        s.failures.push(PointFailure { params, reason });
    }
    if c.remaining() != 0 {
        return Err(format!("{} trailing bytes", c.remaining()));
    }
    Ok(s)
}

/// Writes one checkpoint generation (atomic publish, oldest pruned past
/// `keep`).
pub(crate) fn save(
    base: &Path,
    generation: u64,
    fingerprint: u64,
    state: &CheckpointState,
    keep: usize,
) -> io::Result<PathBuf> {
    write_generation(base, generation, &encode(fingerprint, state), keep)
}

/// Loads the newest decodable generation of `base` matching
/// `fingerprint`. Returns the loaded `(generation, state)` (or `None`
/// when no generation is usable) plus one human-readable reason per
/// generation that was skipped (torn, foreign, unreadable) — newest
/// first, mirroring the probe order.
pub(crate) fn load_latest(
    base: &Path,
    fingerprint: u64,
) -> (Option<(u64, CheckpointState)>, Vec<String>) {
    let mut skipped = Vec::new();
    for (generation, path) in scan_generations(base).into_iter().rev() {
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) => {
                skipped.push(format!("{}: unreadable: {e}", path.display()));
                continue;
            }
        };
        match decode(&bytes, fingerprint) {
            Ok(state) => return (Some((generation, state)), skipped),
            Err(reason) => skipped.push(format!("{}: {reason}", path.display())),
        }
    }
    (None, skipped)
}

/// Removes every existing generation of `base` — a sweep starting fresh
/// with checkpointing must not leave stale generations a later
/// `--resume` could pick up.
pub(crate) fn clear_generations(base: &Path) -> io::Result<()> {
    for (_, path) in scan_generations(base) {
        match std::fs::remove_file(&path) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state() -> CheckpointState {
        let params =
            |buf: usize| DesignParams { array_size: 16, rf_depth: 8, global_buffer_bytes: buf };
        CheckpointState {
            pos: 42,
            evaluated: 30,
            skipped: 5,
            failed: 2,
            pruned: 5,
            peak_frontier: 3,
            frontier: vec![
                DesignPoint {
                    params: params(64 * 1024),
                    cycles: 1000,
                    energy: 1.5,
                    utilization: 0.75,
                    area: 2048.0,
                },
                DesignPoint {
                    params: params(128 * 1024),
                    cycles: 900,
                    energy: 1.25,
                    utilization: 0.5,
                    area: 4096.0,
                },
            ],
            failures: vec![PointFailure {
                params: params(256),
                reason: "infeasible tiling: naïve working set".to_owned(),
            }],
        }
    }

    #[test]
    fn fnv1a_matches_the_reference_vectors() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn encode_decode_round_trips() {
        let s = state();
        let bytes = encode(0xdead_beef, &s);
        assert_eq!(decode(&bytes, 0xdead_beef).unwrap(), s);
    }

    #[test]
    fn torn_bytes_are_refused_at_every_length() {
        let s = state();
        let bytes = encode(7, &s);
        for cut in 0..bytes.len() {
            assert!(decode(&bytes[..cut], 7).is_err(), "torn at {cut} accepted");
        }
    }

    #[test]
    fn corrupt_byte_is_refused_everywhere() {
        let s = state();
        let bytes = encode(7, &s);
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            assert!(decode(&bad, 7).is_err(), "flip at {i} accepted");
        }
    }

    #[test]
    fn foreign_fingerprint_is_refused() {
        let bytes = encode(1, &state());
        let err = decode(&bytes, 2).unwrap_err();
        assert!(err.contains("fingerprint mismatch"), "{err}");
    }

    #[test]
    fn generation_recovery_skips_the_torn_newest() {
        let dir = std::env::temp_dir().join(format!(
            "codesign-ckpt-test-{}-{}",
            std::process::id(),
            line!()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("sweep.ck");
        let mut s = state();
        save(&base, 1, 9, &s, 3).unwrap();
        s.pos = 84;
        let newest = save(&base, 2, 9, &s, 3).unwrap();
        // Tear the newest generation mid-write.
        let full = std::fs::read(&newest).unwrap();
        std::fs::write(&newest, &full[..full.len() / 2]).unwrap();
        let (loaded, skipped) = load_latest(&base, 9);
        let (generation, recovered) = loaded.unwrap();
        assert_eq!(generation, 1);
        assert_eq!(recovered.pos, 42);
        assert_eq!(skipped.len(), 1, "{skipped:?}");
        // And a fresh start clears both.
        clear_generations(&base).unwrap();
        assert!(load_latest(&base, 9).0.is_none());
        std::fs::remove_dir_all(&dir).ok();
    }
}
