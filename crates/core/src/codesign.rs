//! The co-design loop of §4.2: hardware-aware model transformations plus
//! the accelerator tune-up, reproducing the Figure-3 variant study and
//! the SqueezeNext headline numbers.

use std::fmt;

use codesign_arch::{AcceleratorConfig, DataflowPolicy, EnergyModel};
use codesign_dnn::zoo::SqueezeNextConfig;
use codesign_dnn::Network;
use codesign_sim::{par_map, SimOptions, Simulator};

/// A hardware-aware model transformation, as applied between the Figure-3
/// variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelTransform {
    /// Reduce the first layer's filter size (7×7 → 5×5): "this layer has
    /// significant impact on inference time as its input feature map is
    /// relatively large".
    ShrinkFirstFilter {
        /// New first-layer kernel size.
        kernel: usize,
    },
    /// Move blocks from the low-utilization early stages to the
    /// high-utilization late stages, keeping total MACs roughly constant.
    ReallocateStages {
        /// New per-stage block counts.
        stage_blocks: [usize; 4],
    },
}

impl ModelTransform {
    /// Applies the transformation to a SqueezeNext configuration.
    pub fn apply(&self, config: &SqueezeNextConfig) -> SqueezeNextConfig {
        let mut next = config.clone();
        match *self {
            ModelTransform::ShrinkFirstFilter { kernel } => next.conv1_kernel = kernel,
            ModelTransform::ReallocateStages { stage_blocks } => next.stage_blocks = stage_blocks,
        }
        next
    }
}

impl fmt::Display for ModelTransform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelTransform::ShrinkFirstFilter { kernel } => {
                write!(f, "shrink first filter to {kernel}x{kernel}")
            }
            ModelTransform::ReallocateStages { stage_blocks } => {
                write!(f, "reallocate stages to {stage_blocks:?}")
            }
        }
    }
}

/// Evaluation of one model variant on one hardware configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct VariantResult {
    /// Variant name (e.g. `"1.0-SqNxt-23v3"`).
    pub name: String,
    /// Inference cycles on the hybrid architecture.
    pub cycles: u64,
    /// Energy in MAC-normalized units.
    pub energy: f64,
    /// Average PE utilization.
    pub utilization: f64,
    /// Total model MACs (should stay roughly constant across variants).
    pub macs: u64,
    /// Top-1 accuracy metadata.
    pub accuracy: Option<f64>,
}

/// Evaluates a network variant on the hybrid architecture with a fresh
/// memoizing [`Simulator`].
pub fn evaluate_variant(
    network: &Network,
    cfg: &AcceleratorConfig,
    opts: SimOptions,
    energy_model: &EnergyModel,
) -> VariantResult {
    evaluate_variant_with(&Simulator::new(), network, cfg, opts, energy_model)
}

/// Evaluates a network variant on the hybrid architecture through `sim`.
pub fn evaluate_variant_with(
    sim: &Simulator,
    network: &Network,
    cfg: &AcceleratorConfig,
    opts: SimOptions,
    energy_model: &EnergyModel,
) -> VariantResult {
    let perf = sim.simulate_network(network, cfg, DataflowPolicy::PerLayer, opts);
    if sim.tracer().is_enabled() {
        let mut track =
            sim.tracer().track(format!("codesign:{}:rf{}", network.name(), cfg.rf_depth()));
        track.leaf(
            network.name(),
            codesign_trace::Category::Codesign,
            perf.total_cycles(),
            &[("cycles", perf.total_cycles()), ("macs", perf.total_macs())],
        );
    }
    VariantResult {
        name: network.name().to_owned(),
        cycles: perf.total_cycles(),
        energy: perf.total_energy(energy_model),
        utilization: perf.average_utilization(cfg.pe_count()),
        macs: network.total_macs(),
        accuracy: network.top1_accuracy(),
    }
}

/// The full co-design study: the v1..v5 model-transformation ladder of
/// Figure 3, evaluated before and after the RF 8→16 hardware tune-up.
#[derive(Debug, Clone, PartialEq)]
pub struct CodesignStudy {
    /// v1..v5 on the initial hardware (RF 8).
    pub before_tuneup: Vec<VariantResult>,
    /// v1..v5 on the tuned hardware (RF 16).
    pub after_tuneup: Vec<VariantResult>,
}

impl CodesignStudy {
    /// Runs the study with a fresh memoizing [`Simulator`] and one worker
    /// per core. See [`Self::run_with`].
    pub fn run(opts: SimOptions, energy_model: &EnergyModel) -> Self {
        Self::run_with(&Simulator::new(), opts, energy_model, 0)
    }

    /// Runs the study: builds the five variants by applying the paper's
    /// transformations to the baseline configuration and simulates each
    /// on both hardware points — the ten (variant × RF depth)
    /// evaluations fan out across `jobs` worker threads (`0` = one per
    /// core) through the shared `sim` handle, in deterministic order.
    pub fn run_with(
        sim: &Simulator,
        opts: SimOptions,
        energy_model: &EnergyModel,
        jobs: usize,
    ) -> Self {
        let baseline = SqueezeNextConfig::baseline();
        let transforms: [&[ModelTransform]; 5] = [
            &[],
            &[ModelTransform::ShrinkFirstFilter { kernel: 5 }],
            &[
                ModelTransform::ShrinkFirstFilter { kernel: 5 },
                ModelTransform::ReallocateStages { stage_blocks: [4, 8, 8, 1] },
            ],
            &[
                ModelTransform::ShrinkFirstFilter { kernel: 5 },
                ModelTransform::ReallocateStages { stage_blocks: [2, 10, 8, 1] },
            ],
            &[
                ModelTransform::ShrinkFirstFilter { kernel: 5 },
                ModelTransform::ReallocateStages { stage_blocks: [2, 4, 14, 1] },
            ],
        ];
        let variants: Vec<Network> = transforms
            .iter()
            .enumerate()
            .map(|(i, ts)| {
                let mut config = baseline.clone();
                config.name = format!("1.0-SqNxt-23v{}", i + 1);
                for t in *ts {
                    config = t.apply(&config);
                }
                config.build()
            })
            .collect();

        // Both depths sit inside the builder's validated range.
        let rf8 = AcceleratorConfig::builder()
            .rf_depth(8)
            .build()
            .unwrap_or_else(|e| unreachable!("rf8 config is valid: {e}"));
        let rf16 = AcceleratorConfig::builder()
            .rf_depth(16)
            .build()
            .unwrap_or_else(|e| unreachable!("rf16 config is valid: {e}"));
        // Flatten the (hardware point × variant) grid into one work list
        // so a single fan-out covers all ten evaluations.
        let work: Vec<(&AcceleratorConfig, &Network)> = [&rf8, &rf16]
            .into_iter()
            .flat_map(|cfg| variants.iter().map(move |v| (cfg, v)))
            .collect();
        let mut results = par_map(jobs, &work, |_, &(cfg, net)| {
            evaluate_variant_with(sim, net, cfg, opts, energy_model)
        });
        let after_tuneup = results.split_off(variants.len());
        Self { before_tuneup: results, after_tuneup }
    }

    /// End-to-end gain of the co-design loop: v1 on untuned hardware vs
    /// v5 on tuned hardware. Returns `(speedup, energy gain)`, or
    /// `(1.0, 1.0)` if the study is somehow empty.
    pub fn end_to_end_gain(&self) -> (f64, f64) {
        match (self.before_tuneup.first(), self.after_tuneup.last()) {
            (Some(start), Some(end)) => {
                (start.cycles as f64 / end.cycles as f64, start.energy / end.energy)
            }
            _ => (1.0, 1.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn study() -> CodesignStudy {
        CodesignStudy::run(SimOptions::default(), &EnergyModel::default())
    }

    #[test]
    fn transforms_apply() {
        let base = SqueezeNextConfig::baseline();
        let shrunk = ModelTransform::ShrinkFirstFilter { kernel: 5 }.apply(&base);
        assert_eq!(shrunk.conv1_kernel, 5);
        assert_eq!(shrunk.stage_blocks, base.stage_blocks);
        let moved = ModelTransform::ReallocateStages { stage_blocks: [2, 4, 14, 1] }.apply(&base);
        assert_eq!(moved.stage_blocks, [2, 4, 14, 1]);
        assert_eq!(moved.conv1_kernel, base.conv1_kernel);
    }

    #[test]
    fn each_transform_step_improves_inference_time() {
        // Figure 3: v1 -> v5 is a descending staircase of inference time.
        let s = study();
        for w in s.after_tuneup.windows(2) {
            assert!(
                w[1].cycles <= w[0].cycles,
                "{} ({}) should not be slower than {} ({})",
                w[1].name,
                w[1].cycles,
                w[0].name,
                w[0].cycles
            );
        }
    }

    #[test]
    fn macs_stay_roughly_constant() {
        // "a very small change in the overall MACs used in inference".
        let s = study();
        let base = s.after_tuneup[0].macs as f64;
        for v in &s.after_tuneup {
            assert!((v.macs as f64 / base - 1.0).abs() < 0.3, "{}", v.name);
        }
    }

    #[test]
    fn rf_tuneup_improves_every_variant() {
        let s = study();
        for (b, a) in s.before_tuneup.iter().zip(&s.after_tuneup) {
            assert!(a.cycles <= b.cycles, "{}", a.name);
        }
    }

    #[test]
    fn end_to_end_gain_is_substantial() {
        let (speed, energy) = study().end_to_end_gain();
        assert!(speed > 1.15, "speedup = {speed:.2}");
        assert!(energy > 1.0, "energy gain = {energy:.2}");
    }

    #[test]
    fn parallel_cached_run_matches_serial_uncached() {
        let opts = SimOptions::default();
        let em = EnergyModel::default();
        let serial = CodesignStudy::run_with(&Simulator::uncached(), opts, &em, 1);
        let parallel = CodesignStudy::run_with(&Simulator::new(), opts, &em, 4);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn transform_display() {
        assert_eq!(
            ModelTransform::ShrinkFirstFilter { kernel: 5 }.to_string(),
            "shrink first filter to 5x5"
        );
        assert!(ModelTransform::ReallocateStages { stage_blocks: [2, 4, 14, 1] }
            .to_string()
            .contains("[2, 4, 14, 1]"));
    }
}
