//! Cross-layer fusion: on-chip forwarding of intermediate feature maps.
//!
//! The paper's estimator (and our analytic model) round-trips every
//! intermediate feature map through DRAM. When consecutive layers'
//! working sets fit the global buffer together, the producer's output can
//! stay on chip and feed the consumer directly — the discrete-event
//! model (`codesign_sim::event`) showed exactly this serialization gap.
//! This module plans such fusions and quantifies the DRAM traffic and
//! energy they save. It is a beyond-paper extension (DESIGN.md §5, L4);
//! the paper's own numbers are produced *without* fusion.
//!
//! At the paper's 128 KB buffer almost nothing fuses — ImageNet-scale
//! intermediate maps are hundreds of KB — so the interesting question is
//! how much buffer on-chip forwarding would need, which the report's L4
//! table sweeps.

use codesign_arch::{AcceleratorConfig, DataflowPolicy, EnergyModel};
use codesign_dnn::Network;
use codesign_sim::{NetworkPerf, SimOptions, Simulator};

/// A run of consecutive layers whose intermediates stay on chip.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FusionGroup {
    /// Names of the fused layers, in execution order.
    pub layers: Vec<String>,
}

impl FusionGroup {
    /// Number of DRAM round-trips elided (intermediate tensors kept on
    /// chip).
    pub fn elided_tensors(&self) -> usize {
        self.layers.len().saturating_sub(1)
    }
}

/// Plans fusion groups greedily: extend the current group while the live
/// input and output fit in half the working buffer. Only straight-line
/// segments fuse — a layer whose output has more than one consumer
/// (branch points, merge operands) ends its group, since the tensor must
/// stay live beyond the next layer.
pub fn plan_fusion(network: &Network, cfg: &AcceleratorConfig) -> Vec<FusionGroup> {
    let bytes = cfg.bytes_per_element();
    let budget = cfg.working_buffer_bytes() / 2;
    // A tensor must die at its consumer for its producer to fuse: any
    // layer whose output is read more than once (branch points, merge
    // operands) ends its group.
    let mut consumers: std::collections::HashMap<&str, usize> = std::collections::HashMap::new();
    for l in network.layers() {
        if let Some(p) = l.primary_input.as_deref() {
            *consumers.entry(p).or_insert(0) += 1;
        }
        if let Some(p) = l.extra_input.as_deref() {
            *consumers.entry(p).or_insert(0) += 1;
        }
    }
    let multi_consumer = |name: &str| consumers.get(name).copied().unwrap_or(0) > 1;

    let mut groups: Vec<FusionGroup> = Vec::new();
    let mut current: Vec<String> = Vec::new();
    let layers = network.layers();
    for (i, layer) in layers.iter().enumerate() {
        if current.is_empty() {
            current.push(layer.name.clone());
        } else {
            // The next layer must consume exactly the previous layer's
            // output (straight line).
            let prev = &current[current.len() - 1];
            let consumes_prev = layer.primary_input.as_deref() == Some(prev.as_str());
            let fits = layer.input.bytes(bytes) + layer.output.bytes(bytes) <= budget;
            if consumes_prev && fits {
                current.push(layer.name.clone());
            } else {
                groups.push(FusionGroup { layers: std::mem::take(&mut current) });
                current.push(layer.name.clone());
            }
        }
        // A multiply-consumed output must remain live: close the group.
        let last = i + 1 == layers.len();
        if multi_consumer(&layer.name) || last {
            groups.push(FusionGroup { layers: std::mem::take(&mut current) });
        }
    }
    groups.retain(|g| !g.layers.is_empty());
    groups
}

/// The effect of a fusion plan on a simulated run.
#[derive(Debug, Clone, PartialEq)]
pub struct FusionSavings {
    /// Baseline (unfused) run.
    pub baseline: NetworkPerf,
    /// DRAM bytes elided by keeping intermediates on chip.
    pub elided_dram_bytes: u64,
    /// Number of intermediate tensors kept on chip.
    pub elided_tensors: usize,
    /// Energy saved, in MAC-normalized units.
    pub energy_saved: f64,
}

impl FusionSavings {
    /// Fraction of the baseline's total DRAM traffic elided.
    pub fn dram_fraction_saved(&self) -> f64 {
        let total: u64 = self.baseline.layers.iter().map(|l| l.dram_bytes).sum();
        if total == 0 {
            0.0
        } else {
            self.elided_dram_bytes as f64 / total as f64
        }
    }

    /// Fraction of the baseline's energy saved.
    pub fn energy_fraction_saved(&self, energy_model: &EnergyModel) -> f64 {
        let total = self.baseline.total_energy(energy_model);
        if total == 0.0 {
            0.0
        } else {
            self.energy_saved / total
        }
    }
}

/// Quantifies what a fusion plan saves: every fused intermediate tensor
/// skips one DRAM write (producer) and one DRAM read (consumer).
pub fn fusion_savings(
    network: &Network,
    cfg: &AcceleratorConfig,
    opts: SimOptions,
    energy_model: &EnergyModel,
) -> FusionSavings {
    fusion_savings_with(&Simulator::new(), network, cfg, opts, energy_model)
}

/// [`fusion_savings`] against a caller-provided simulator. The compute
/// walks do not depend on the buffer size, so a buffer sweep sharing one
/// simulator re-runs only the per-buffer tiling searches.
pub fn fusion_savings_with(
    sim: &Simulator,
    network: &Network,
    cfg: &AcceleratorConfig,
    opts: SimOptions,
    energy_model: &EnergyModel,
) -> FusionSavings {
    let baseline = sim.simulate_network(network, cfg, DataflowPolicy::PerLayer, opts);
    let groups = plan_fusion(network, cfg);
    let bytes = cfg.bytes_per_element() as u64;
    let mut elided_dram_bytes = 0u64;
    let mut elided_tensors = 0usize;
    for g in &groups {
        for name in &g.layers[..g.layers.len().saturating_sub(1)] {
            // The plan is built from this network, so the lookup only
            // misses if a caller mixes plans across networks — such
            // entries contribute no savings rather than aborting.
            let Some(layer) = network.layer(name) else { continue };
            // One write + one read of the intermediate map.
            elided_dram_bytes += 2 * layer.output.elements() as u64 * bytes;
            elided_tensors += 1;
        }
    }
    let energy_saved = (elided_dram_bytes / bytes) as f64 * energy_model.dram;
    FusionSavings { baseline, elided_dram_bytes, elided_tensors, energy_saved }
}

#[cfg(test)]
mod tests {
    use super::*;
    use codesign_dnn::zoo;

    fn setup() -> (AcceleratorConfig, SimOptions, EnergyModel) {
        (AcceleratorConfig::paper_default(), SimOptions::paper_default(), EnergyModel::default())
    }

    #[test]
    fn groups_cover_every_layer_exactly_once() {
        let (cfg, _, _) = setup();
        for net in zoo::table_networks() {
            let groups = plan_fusion(&net, &cfg);
            let covered: Vec<&str> =
                groups.iter().flat_map(|g| g.layers.iter().map(String::as_str)).collect();
            let expected: Vec<&str> = net.layers().iter().map(|l| l.name.as_str()).collect();
            assert_eq!(covered, expected, "{}", net.name());
        }
    }

    #[test]
    fn early_large_maps_do_not_fuse() {
        // SqueezeNet conv1 output is 2.3 MB: cannot stay on chip.
        let (cfg, _, _) = setup();
        let net = zoo::squeezenet_v1_0();
        let groups = plan_fusion(&net, &cfg);
        let first = &groups[0];
        assert_eq!(first.layers, vec!["conv1".to_owned()]);
    }

    fn big_buffer(kib: usize) -> AcceleratorConfig {
        AcceleratorConfig::builder().global_buffer_bytes(kib * 1024).build().unwrap()
    }

    #[test]
    fn the_paper_buffer_barely_fuses() {
        // At 128 KB the intermediate maps are too large to forward —
        // the headline finding of this study.
        let (cfg, opts, em) = setup();
        let s = fusion_savings(&zoo::squeezenet_v1_0(), &cfg, opts, &em);
        assert!(s.dram_fraction_saved() < 0.05, "saved {:.3}", s.dram_fraction_saved());
    }

    #[test]
    fn a_megabyte_buffer_fuses_plenty() {
        let cfg = big_buffer(2 * 1024);
        let (_, opts, em) = setup();
        for net in [zoo::squeezenet_v1_0(), zoo::mobilenet_v1()] {
            let s = fusion_savings(&net, &cfg, opts, &em);
            assert!(s.elided_tensors > 5, "{}: {} tensors", net.name(), s.elided_tensors);
            let dram = s.dram_fraction_saved();
            assert!((0.05..0.9).contains(&dram), "{}: {dram:.3}", net.name());
            let energy = s.energy_fraction_saved(&em);
            assert!((0.0..0.6).contains(&energy), "{}: {energy:.3}", net.name());
        }
    }

    #[test]
    fn branch_points_stay_live() {
        // fire squeeze outputs feed both expands; expand1x1 feeds the
        // concat — neither may fuse into its first consumer.
        let cfg = big_buffer(8 * 1024);
        let groups = plan_fusion(&zoo::squeezenet_v1_0(), &cfg);
        for g in &groups {
            for name in &g.layers[..g.layers.len() - 1] {
                assert!(
                    !name.ends_with("squeeze1x1") && !name.ends_with("expand1x1"),
                    "multi-consumer {name} fused past its group end"
                );
            }
        }
    }

    #[test]
    fn savings_grow_with_buffer_size() {
        let (_, opts, em) = setup();
        let net = zoo::mobilenet_v1();
        let mut last = -1.0f64;
        for kib in [128, 512, 2048, 8192] {
            let s = fusion_savings(&net, &big_buffer(kib), opts, &em);
            let frac = s.dram_fraction_saved();
            assert!(frac >= last, "{kib} KiB: {frac:.3} < {last:.3}");
            last = frac;
        }
        assert!(last > 0.1, "8 MiB should forward most of MobileNet: {last:.3}");
    }
}
