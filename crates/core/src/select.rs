//! Constraint-driven model selection.
//!
//! §4.2's payoff: the SqueezeNext family "allows the user to select the
//! right DNN from this family based on the target application's
//! constraints" — §2 frames those constraints as a required accuracy, a
//! real-time latency bound, and energy/power budgets.

use std::fmt;

use crate::pareto::ModelPoint;

/// An embedded application's requirements (§2): any field may be left
/// unconstrained.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Constraints {
    /// Maximum inference latency in milliseconds (real-time bound).
    pub max_time_ms: Option<f64>,
    /// Maximum energy per inference, in MAC-normalized units.
    pub max_energy: Option<f64>,
    /// Minimum acceptable top-1 accuracy in percent.
    pub min_accuracy: Option<f64>,
}

impl Constraints {
    /// No constraints.
    pub fn none() -> Self {
        Self::default()
    }

    /// A real-time latency bound (e.g. `33.3` for 30 fps).
    pub fn real_time_ms(max_time_ms: f64) -> Self {
        Self { max_time_ms: Some(max_time_ms), ..Self::default() }
    }

    /// Whether a model point satisfies the constraints.
    pub fn admits(&self, point: &ModelPoint) -> bool {
        self.max_time_ms.is_none_or(|t| point.time_ms <= t)
            && self.max_energy.is_none_or(|e| point.energy <= e)
            && self.min_accuracy.is_none_or(|a| point.accuracy >= a)
    }
}

impl fmt::Display for Constraints {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts = Vec::new();
        if let Some(t) = self.max_time_ms {
            parts.push(format!("time <= {t:.2} ms"));
        }
        if let Some(e) = self.max_energy {
            parts.push(format!("energy <= {e:.0}"));
        }
        if let Some(a) = self.min_accuracy {
            parts.push(format!("top-1 >= {a:.1}%"));
        }
        if parts.is_empty() {
            f.write_str("unconstrained")
        } else {
            f.write_str(&parts.join(", "))
        }
    }
}

/// Picks the most accurate model admitted by the constraints; among
/// equally accurate candidates, the fastest wins. Returns `None` when no
/// model qualifies (the constraints are infeasible for this family).
///
/// Comparisons use [`f64::total_cmp`], so a NaN accuracy or latency in
/// the input can never panic the selection (NaN simply sorts after every
/// real number on each axis).
pub fn select_model<'a>(
    points: &'a [ModelPoint],
    constraints: &Constraints,
) -> Option<&'a ModelPoint> {
    points
        .iter()
        .filter(|p| constraints.admits(p))
        .max_by(|a, b| a.accuracy.total_cmp(&b.accuracy).then(b.time_ms.total_cmp(&a.time_ms)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(name: &str, acc: f64, time: f64, energy: f64) -> ModelPoint {
        ModelPoint { name: name.into(), accuracy: acc, time_ms: time, energy }
    }

    fn family() -> Vec<ModelPoint> {
        vec![
            point("small", 55.0, 1.0, 100.0),
            point("medium", 60.0, 2.5, 250.0),
            point("large", 65.0, 5.0, 600.0),
        ]
    }

    #[test]
    fn unconstrained_picks_the_most_accurate() {
        let f = family();
        assert_eq!(select_model(&f, &Constraints::none()).unwrap().name, "large");
    }

    #[test]
    fn latency_bound_prunes_large_models() {
        let f = family();
        let c = Constraints::real_time_ms(3.0);
        assert_eq!(select_model(&f, &c).unwrap().name, "medium");
    }

    #[test]
    fn combined_constraints() {
        let f = family();
        let c = Constraints {
            max_time_ms: Some(10.0),
            max_energy: Some(300.0),
            min_accuracy: Some(56.0),
        };
        assert_eq!(select_model(&f, &c).unwrap().name, "medium");
    }

    #[test]
    fn infeasible_constraints_return_none() {
        let f = family();
        let c = Constraints { min_accuracy: Some(90.0), ..Constraints::default() };
        assert!(select_model(&f, &c).is_none());
    }

    #[test]
    fn accuracy_ties_break_on_speed() {
        let f = vec![point("slow", 60.0, 5.0, 1.0), point("fast", 60.0, 1.0, 1.0)];
        assert_eq!(select_model(&f, &Constraints::none()).unwrap().name, "fast");
    }

    #[test]
    fn display_lists_active_constraints() {
        let c = Constraints::real_time_ms(33.3);
        assert!(c.to_string().contains("33.30 ms"));
        assert_eq!(Constraints::none().to_string(), "unconstrained");
    }
}
